// Hadamard-alphabet obfuscation on an interference-style circuit — the
// paper's prescription for non-arithmetic workloads ("for circuits such as
// those implementing Grover's algorithm, we opted to insert Hadamard gates").
//
//   $ ./grover_masking [n] [marked]      (defaults: n=4, marked=11)
//
// Shows that (1) the H-insertion still costs zero depth, (2) the masked
// circuit's output distribution no longer peaks on the marked state, and
// (3) the de-obfuscated split compilation finds the marked state as reliably
// as the unprotected compile.

#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "compiler/target.h"
#include "lock/deobfuscate.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "metrics/metrics.h"
#include "qir/library.h"
#include "sim/sampler.h"

int main(int argc, char** argv) {
  using namespace tetris;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t marked =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 11 % (1u << n);

  auto iterations = qir::library::grover_optimal_iterations(n);
  auto circuit = qir::library::grover(n, marked, iterations);
  std::cout << "Grover search: " << n << " qubits, marked state |"
            << sim::bitstring(marked, n) << ">, " << iterations
            << " iterations, " << circuit.gate_count() << " gates, depth "
            << circuit.depth() << "\n\n";

  // Obfuscate with the Hadamard alphabet. Grover circuits are busy from
  // layer 0, so enable the mid-circuit gap-insertion mode.
  Rng rng(2025);
  lock::InsertionConfig cfg;
  cfg.alphabet = lock::InsertionAlphabet::Hadamard;
  cfg.allow_gap_insertion = true;
  lock::Obfuscator obfuscator(cfg);
  auto obf = obfuscator.obfuscate(circuit, rng);
  std::cout << "inserted " << obf.inserted_gates()
            << " H gates (depth overhead "
            << obf.circuit.depth() - circuit.depth() << ")\n";

  // What the adversary's side computes: the masked circuit R.C.
  auto reference = sim::ideal_distribution(circuit);
  auto masked_dist = sim::ideal_distribution(obf.masked());
  std::cout << "masked-circuit TVD vs true output: "
            << fmt_double(metrics::tvd(masked_dist, reference), 3) << "\n";
  auto peak = [&](const std::map<std::string, double>& d) {
    auto best = d.begin();
    for (auto it = d.begin(); it != d.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    return best;
  };
  auto true_peak = peak(reference);
  auto masked_peak = peak(masked_dist);
  std::cout << "true peak outcome   : " << true_peak->first << " (p="
            << fmt_double(true_peak->second, 3) << ")\n";
  std::cout << "masked peak outcome : " << masked_peak->first << " (p="
            << fmt_double(masked_peak->second, 3) << ")  "
            << (masked_peak->first == true_peak->first
                    ? "!! still reveals the marked state"
                    : "-> marked state hidden")
            << "\n\n";

  // Full split-compile flow on a noisy device.
  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  auto target = compiler::device_for(n);
  compiler::CompileOptions first(target);
  compiler::CompileOptions second(target);
  second.layout = compiler::LayoutStrategy::Trivial;
  lock::Deobfuscator deob;
  auto recombined = deob.run(pair, n, first, second);

  std::vector<int> phys;
  for (int q = 0; q < n; ++q) {
    phys.push_back(recombined.orig_to_phys[static_cast<std::size_t>(q)]);
  }
  sim::SampleOptions opts;
  opts.shots = 1000;
  opts.measured = phys;
  Rng sample_rng(7);
  auto counts = sim::sample(recombined.circuit, target.noise, sample_rng, opts);
  std::string target_key = sim::bitstring(marked, n);
  std::cout << "restored split compilation, 1000 noisy shots: marked state "
               "found in "
            << counts.count(target_key) << " shots ("
            << fmt_double(
                   100.0 * static_cast<double>(counts.count(target_key)) /
                       static_cast<double>(opts.shots),
                   1)
            << "%)\n";
  return counts.count(target_key) > opts.shots / 2 ? 0 : 1;
}
