// Quickstart: protect one circuit with TetrisLock in ~30 lines.
//
//   $ ./quickstart
//
// Builds a small reversible circuit, obfuscates it (random gates in empty
// slots, zero depth overhead), splits it along an interlocking boundary,
// split-compiles the parts with two independent compiler instances, and
// verifies the recombined result still computes the original function.

#include <iostream>

#include "common/rng.h"
#include "compiler/target.h"
#include "lock/deobfuscate.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "qir/render.h"
#include "sim/sampler.h"

int main() {
  using namespace tetris;

  // 1. The secret design: a 4-qubit full adder (the circuit IP to protect).
  qir::Circuit adder(4, "adder");
  adder.ccx(0, 1, 3).cx(0, 1).ccx(1, 2, 3).x(0).cx(1, 2).x(3).cx(0, 1);
  std::cout << "original circuit (depth " << adder.depth() << "):\n"
            << qir::render(adder) << "\n";

  // 2. Obfuscate: insert a random circuit R and its inverse into empty slots.
  Rng rng(42);
  lock::Obfuscator obfuscator;
  auto obf = obfuscator.obfuscate(adder, rng);
  std::cout << "obfuscated (depth " << obf.circuit.depth() << ", +"
            << obf.inserted_gates() << " gates, depth overhead 0):\n"
            << qir::render(obf.circuit) << "\n";

  // 3. Split along an interlocking (jagged) boundary.
  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  std::cout << "split 1: " << pair.first.circuit.num_qubits() << " qubits, "
            << pair.first.circuit.gate_count() << " gates\n";
  std::cout << "split 2: " << pair.second.circuit.num_qubits() << " qubits, "
            << pair.second.circuit.gate_count() << " gates\n\n";

  // 4. Split compilation by two untrusted compilers + de-obfuscation.
  auto target = compiler::device_for(adder.num_qubits());
  compiler::CompileOptions c1{target, compiler::LayoutStrategy::GreedyDegree,
                              true, std::nullopt};
  compiler::CompileOptions c2{target, compiler::LayoutStrategy::Trivial, true,
                              std::nullopt};
  lock::Deobfuscator deob;
  auto recombined = deob.run(pair, adder.num_qubits(), c1, c2);

  // 5. Verify: the recombined compiled circuit computes the same function.
  std::vector<int> all{0, 1, 2, 3};
  std::string expected = sim::classical_outcome(adder, all);
  std::vector<int> phys;
  for (int o : all) phys.push_back(recombined.orig_to_phys[static_cast<std::size_t>(o)]);
  sim::SampleOptions opts;
  opts.shots = 100;
  opts.measured = phys;
  Rng sample_rng(7);
  auto counts = sim::sample(recombined.circuit, sim::NoiseModel::ideal(),
                            sample_rng, opts);
  std::cout << "expected outcome " << expected << ", recombined circuit gives "
            << counts.mode() << " in " << counts.count(expected) << "/100 shots\n";
  std::cout << (counts.count(expected) == 100 ? "OK: function restored\n"
                                              : "ERROR: mismatch\n");
  return counts.count(expected) == 100 ? 0 : 1;
}
