// Quickstart: protect a circuit through the service facade.
//
//   $ ./example_quickstart
//
// Builds a small reversible circuit (the IP to protect), submits it to
// tetris::service::Service — the async programmatic API over the whole
// obfuscate -> interlock-split -> split-compile -> recombine -> verify
// pipeline — polls for completion, prints the verification metrics, and
// then submits the same job again to show the result cache serving it.

#include <iostream>

#include "lock/pipeline.h"
#include "service/serialize.h"
#include "service/service.h"

int main() {
  using namespace tetris;

  // 1. The secret design: a 4-qubit full adder (the circuit IP to protect).
  qir::Circuit adder(4, "adder");
  adder.ccx(0, 1, 3).cx(0, 1).ccx(1, 2, 3).x(0).cx(1, 2).x(3).cx(0, 1);

  // 2. A service: worker pool + result cache + structured errors. This is
  //    the one object a front-end holds on to.
  service::ServiceConfig config;
  config.base_seed = 42;
  config.cache_capacity = 16;
  service::Service svc(config);

  // 3. Async submission. make_flow_job picks a device for the circuit width
  //    and measures all qubits; the handle is immediately pollable.
  auto handle = svc.submit(lock::make_flow_job("adder", adder));
  std::cout << "submitted job " << handle.id() << ", state: "
            << service::job_state_name(handle.poll()) << "\n";

  // 4. Wait for the outcome. Errors never throw out of the service; they
  //    arrive as a status code + message on the outcome.
  service::JobOutcome outcome = handle.wait();
  if (outcome.state != service::JobState::kDone) {
    std::cerr << "flow failed ["
              << service::status_code_name(outcome.status.code)
              << "]: " << outcome.status.message << "\n";
    return 1;
  }
  const lock::FlowResult& r = outcome.result;
  std::cout << "depth " << r.depth_original << " -> " << r.depth_obfuscated
            << " (zero overhead), gates " << r.gates_original << " -> "
            << r.gates_obfuscated << "\n";
  std::cout << "split widths " << r.splits.first.circuit.num_qubits() << " / "
            << r.splits.second.circuit.num_qubits()
            << ", restored accuracy " << r.accuracy_restored << "\n";

  // 5. Resubmit the identical job: same circuit hash + seed + config, so the
  //    service answers from the cache with a bit-identical result.
  service::JobOutcome again = svc.submit(lock::make_flow_job("adder", adder)).wait();
  std::cout << "second submission served from cache: "
            << (again.cache_hit ? "yes" : "no") << "\n";

  // 6. Results serialize to JSON for front-ends and shell pipelines.
  std::cout << "\n" << service::to_json(outcome, /*include_timing=*/false)
            << "\n";

  // accuracy_restored is the fraction of noisy shots on which the
  // recombined split-compiled circuit still computes the adder's correct
  // output — the end-to-end functional check (well above 0.9 on this
  // device; ~0 would mean recombination broke the function).
  const bool ok = r.depth_obfuscated == r.depth_original &&
                  r.accuracy_restored >= 0.9 &&
                  again.cache_hit &&
                  again.result.tvd_restored == r.tvd_restored;
  std::cout << (ok ? "\nOK: function protected, verified, and cached\n"
                   : "\nERROR: unexpected service behaviour\n");
  return ok ? 0 : 1;
}
