// The full designer workflow of the paper's Fig. 2, narrated step by step on
// a Table-I benchmark, including what each (untrusted) party gets to see and
// the noisy-backend metrics the paper reports.
//
//   $ ./split_compile_workflow [benchmark]     (default: rd53)

#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "compiler/target.h"
#include "lock/pipeline.h"
#include "qir/render.h"
#include "revlib/benchmarks.h"

int main(int argc, char** argv) {
  using namespace tetris;
  std::string name = argc > 1 ? argv[1] : "rd53";
  const auto& b = revlib::get_benchmark(name);

  std::cout << "=== TetrisLock split-compilation workflow: " << b.name
            << " ===\n\n";
  std::cout << "[designer] original circuit: " << b.circuit.num_qubits()
            << " qubits, " << b.circuit.gate_count() << " gates, depth "
            << b.circuit.depth() << "\n";

  auto target = compiler::device_for(b.circuit.num_qubits());
  std::cout << "[designer] target device: " << target.name << " ("
            << target.num_qubits() << " qubits, noise model '"
            << target.noise.name << "')\n\n";

  lock::FlowConfig cfg;
  cfg.shots = 1000;
  Rng rng(2025);
  auto r = lock::run_flow(b.circuit, b.measured, target, cfg, rng);

  std::cout << "[designer] random circuit R (" << r.obf.random.size()
            << " gates):\n";
  for (const auto& g : r.obf.random.gates()) {
    std::cout << "    " << g.to_string() << "\n";
  }
  std::cout << "[designer] obfuscated R^-1.R.C: " << r.gates_obfuscated
            << " gates (+" << r.obf.inserted_gates() << "), depth "
            << r.depth_obfuscated << " (unchanged: "
            << (r.depth_obfuscated == r.depth_original ? "yes" : "NO") << ")\n\n";

  std::cout << "[compiler A sees] split 1 = R^-1 | Cl: "
            << r.splits.first.circuit.num_qubits() << " qubits, "
            << r.splits.first.circuit.gate_count() << " gates\n";
  std::cout << qir::render(r.splits.first.circuit) << "\n";
  std::cout << "[compiler B sees] split 2 = R | Cr: "
            << r.splits.second.circuit.num_qubits() << " qubits, "
            << r.splits.second.circuit.gate_count() << " gates\n";
  std::cout << qir::render(r.splits.second.circuit) << "\n";
  std::cout << "note: neither compiler holds the full design, the splits "
               "interlock, and their\nqubit counts ("
            << r.splits.first.circuit.num_qubits() << " vs "
            << r.splits.second.circuit.num_qubits()
            << ") need not match — the anti-collusion property.\n\n";

  std::cout << "[compiler A returns] " << r.recombined.first.result.circuit.gate_count()
            << " basis gates (" << r.recombined.first.result.stats.swaps_inserted
            << " routing swaps)\n";
  std::cout << "[compiler B returns] " << r.recombined.second.result.circuit.gate_count()
            << " basis gates (" << r.recombined.second.result.stats.swaps_inserted
            << " routing swaps, initial layout pinned by designer)\n\n";

  std::cout << "[designer] recombined circuit: "
            << r.recombined.circuit.gate_count() << " gates on "
            << r.recombined.circuit.num_qubits() << " physical qubits\n\n";

  std::cout << "metrics (1000 shots, " << target.noise.name << "):\n";
  std::cout << "  accuracy, unprotected compile : "
            << fmt_double(r.accuracy_original, 3) << "\n";
  std::cout << "  accuracy, restored TetrisLock : "
            << fmt_double(r.accuracy_restored, 3) << "\n";
  std::cout << "  TVD of obfuscated circuit R.C : "
            << fmt_double(r.tvd_obfuscated, 3) << "  (functional corruption)\n";
  std::cout << "  TVD of restored circuit       : "
            << fmt_double(r.tvd_restored, 3) << "  (noise floor)\n";
  return 0;
}
