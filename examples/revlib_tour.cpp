// Tour of the RevLib benchmark substrate: lists every Table-I circuit with
// its statistics, round-trips one through the .real format, and renders the
// smallest ones as circuit diagrams.
//
//   $ ./revlib_tour

#include <iostream>

#include "common/strings.h"
#include "qir/layers.h"
#include "qir/qasm.h"
#include "qir/render.h"
#include "revlib/benchmarks.h"
#include "revlib/real_format.h"
#include "sim/sampler.h"

int main() {
  using namespace tetris;

  std::cout << "=== RevLib Table-I benchmarks ===\n\n";
  std::cout << pad_right("name", 12) << pad_right("qubits", 8)
            << pad_right("gates", 7) << pad_right("depth", 7)
            << pad_right("slack", 7) << pad_right("outputs", 9)
            << "correct outcome\n";
  std::cout << std::string(64, '-') << "\n";
  for (const auto& b : revlib::table1_benchmarks()) {
    qir::LayerSchedule sched(b.circuit);
    std::cout << pad_right(b.name, 12)
              << pad_right(std::to_string(b.circuit.num_qubits()), 8)
              << pad_right(std::to_string(b.circuit.gate_count()), 7)
              << pad_right(std::to_string(b.circuit.depth()), 7)
              << pad_right(std::to_string(sched.total_slack()), 7)
              << pad_right(std::to_string(b.measured.size()), 9)
              << sim::classical_outcome(b.circuit, b.measured) << "\n";
  }

  std::cout << "\n=== 4mod5 as a circuit diagram ===\n";
  std::cout << qir::render(revlib::build_4mod5());

  std::cout << "\n=== 1bit_adder in RevLib .real format ===\n";
  std::cout << revlib::to_real(revlib::build_1bit_adder());

  std::cout << "\n=== 4gt13 in OpenQASM 2.0 ===\n";
  std::cout << qir::to_qasm(revlib::build_4gt13());

  std::cout << "\n=== round-trip check (.real parser) ===\n";
  auto original = revlib::build_rd53();
  auto round = revlib::from_real(revlib::to_real(original));
  std::cout << "rd53: " << original.gate_count() << " gates -> .real -> "
            << round.gate_count() << " gates, depth " << original.depth()
            << " -> " << round.depth() << " : "
            << (round == original ? "identical" : "MISMATCH") << "\n";
  return round == original ? 0 : 1;
}
