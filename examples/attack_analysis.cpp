// Adversary's-eye view: what an untrusted compiler (or a colluding pair) can
// and cannot do against TetrisLock, demonstrated concretely.
//
//   $ ./attack_analysis
//
// Part 1 - boundary identification: the prefix-insertion baseline leaks its
//          R|C boundary through a depth footprint; TetrisLock does not.
// Part 2 - collusion: exhaustive qubit-matching cost against a cascade split
//          vs a TetrisLock split on the same circuit.
// Part 3 - Eq. 1 at device scale: the search space sizes for real backends.

#include <iostream>

#include "attack/boundary.h"
#include "attack/collusion.h"
#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "common/combinatorics.h"
#include "common/rng.h"
#include "common/strings.h"
#include "lock/complexity.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "revlib/benchmarks.h"

int main() {
  using namespace tetris;
  Rng rng(7);

  std::cout << "=== Part 1: boundary identification ===\n";
  const auto& adder = revlib::get_benchmark("1bit_adder");
  auto das = baselines::prefix_obfuscate(adder.circuit, 3, rng);
  auto das_scan =
      attack::scan_prefix_boundary(das.obfuscated, das.random.gate_count());
  std::cout << "prefix-insertion baseline: true boundary flagged? "
            << (das_scan.true_prefix_flagged ? "YES (design exposed)" : "no")
            << ", false positives " << das_scan.false_positives << "\n";

  lock::Obfuscator obfuscator;
  auto obf = obfuscator.obfuscate(adder.circuit, rng);
  auto tetris_scan =
      attack::scan_prefix_boundary(obf.masked(), obf.random.size());
  std::cout << "tetrislock slot-filling:   true boundary flagged? "
            << (tetris_scan.true_prefix_flagged ? "YES" : "no (hidden)")
            << "\n\n";

  std::cout << "=== Part 2: colluding compilers, exhaustive matching ===\n";
  auto cascade = baselines::cascade_split(adder.circuit, 0.5);
  auto cascade_result = attack::cascade_collusion_attack(
      cascade.first, cascade.second, adder.circuit, 1'000'000);
  std::cout << "cascade split (equal qubit counts): space "
            << cascade_result.search_space << ", broken after "
            << cascade_result.mappings_tried << " tries\n";

  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  auto tetris_result = attack::collusion_attack(
      pair.first.circuit, pair.second.circuit, adder.circuit,
      pair.first.local_to_orig, 1'000'000);
  std::cout << "tetrislock split (" << pair.first.circuit.num_qubits()
            << " vs " << pair.second.circuit.num_qubits()
            << " qubits): space " << tetris_result.search_space
            << ", oracle match after " << tetris_result.mappings_tried
            << " tries\n";
  std::cout << "(the oracle knows the original unitary — a real attacker "
               "does not even have\n a success test, so these tries are a "
               "lower bound)\n\n";

  std::cout << "=== Part 3: Eq. 1 at device scale (log10 candidates) ===\n";
  for (int n : {5, 12}) {
    double cascade_c = lock::log_attack_complexity_cascade(n, 1.0);
    double tetris_127 = lock::log_attack_complexity_tetrislock(n, 127, 1.0);
    std::cout << "  n = " << pad_left(std::to_string(n), 2)
              << ": cascade 10^" << fmt_double(log_to_log10(cascade_c), 1)
              << "   tetrislock(nmax=127) 10^"
              << fmt_double(log_to_log10(tetris_127), 1) << "\n";
  }
  return 0;
}
