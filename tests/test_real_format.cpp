#include "revlib/real_format.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/unitary.h"

namespace tetris::revlib {
namespace {

const char* kSample = R"(# toy adder
.version 2.0
.numvars 4
.variables a b c d
.inputs a b c d
.outputs a b c s
.begin
t1 a
t2 a b
t3 a b d
f2 c d
f3 a c d
t4 a b c d
.end
)";

TEST(RealFormat, ParsesGates) {
  auto c = from_real(kSample);
  EXPECT_EQ(c.num_qubits(), 4);
  ASSERT_EQ(c.size(), 6u);
  EXPECT_EQ(c.gate(0).kind, qir::GateKind::X);
  EXPECT_EQ(c.gate(1).kind, qir::GateKind::CX);
  EXPECT_EQ(c.gate(2).kind, qir::GateKind::CCX);
  EXPECT_EQ(c.gate(3).kind, qir::GateKind::SWAP);
  EXPECT_EQ(c.gate(4).kind, qir::GateKind::CSWAP);
  EXPECT_EQ(c.gate(5).kind, qir::GateKind::MCX);
  EXPECT_EQ(c.gate(2).qubits, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(c.name(), "toy adder");
}

TEST(RealFormat, DefaultVariableNames) {
  const char* text = ".numvars 2\n.begin\nt2 x0 x1\n.end\n";
  auto c = from_real(text);
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_EQ(c.gate(0).kind, qir::GateKind::CX);
}

TEST(RealFormat, RoundTrip) {
  auto c = from_real(kSample);
  auto back = from_real(to_real(c));
  EXPECT_EQ(back.num_qubits(), c.num_qubits());
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.gate(i).kind, c.gate(i).kind) << i;
    EXPECT_EQ(back.gate(i).qubits, c.gate(i).qubits) << i;
  }
  EXPECT_TRUE(sim::circuits_equivalent(back, c));
}

TEST(RealFormat, ErrorMissingEnd) {
  EXPECT_THROW(from_real(".numvars 2\n.begin\nt1 x0\n"), ParseError);
}

TEST(RealFormat, ErrorUnknownVariable) {
  EXPECT_THROW(from_real(".numvars 2\n.variables a b\n.begin\nt1 zz\n.end\n"),
               ParseError);
}

TEST(RealFormat, ErrorWrongLineCount) {
  EXPECT_THROW(from_real(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n"),
               ParseError);
}

TEST(RealFormat, ErrorUnknownFamily) {
  EXPECT_THROW(from_real(".numvars 2\n.variables a b\n.begin\nv a b\n.end\n"),
               ParseError);
}

TEST(RealFormat, ErrorGateBeforeBegin) {
  EXPECT_THROW(from_real(".numvars 2\n.variables a b\nt1 a\n.begin\n.end\n"),
               ParseError);
}

TEST(RealFormat, ErrorDuplicateVariable) {
  EXPECT_THROW(from_real(".numvars 2\n.variables a a\n.begin\n.end\n"),
               ParseError);
}

TEST(RealFormat, ErrorBadNumvars) {
  EXPECT_THROW(from_real(".numvars zero\n.begin\n.end\n"), ParseError);
  EXPECT_THROW(from_real(".numvars 0\n.begin\n.end\n"), ParseError);
}

TEST(RealFormat, ErrorWideFredkin) {
  EXPECT_THROW(
      from_real(".numvars 4\n.variables a b c d\n.begin\nf4 a b c d\n.end\n"),
      ParseError);
}

TEST(RealFormat, WriterRejectsNonClassical) {
  qir::Circuit c(1);
  c.h(0);
  EXPECT_THROW(to_real(c), InvalidArgument);
}

TEST(RealFormat, MetadataDirectivesIgnored) {
  const char* text =
      ".version 2.0\n.numvars 1\n.variables a\n.inputs a\n.outputs a\n"
      ".constants -\n.garbage -\n.begin\nt1 a\n.end\n";
  auto c = from_real(text);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace tetris::revlib
