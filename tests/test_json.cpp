#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "common/error.h"
#include "service/serialize.h"

namespace tetris::json {
namespace {

TEST(JsonWriter, FlatObject) {
  Writer w(0);
  w.begin_object();
  w.key("name").value("rd53");
  w.key("qubits").value(7);
  w.key("ok").value(true);
  w.key("nothing").null_value();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"rd53\",\"qubits\":7,\"ok\":true,\"nothing\":null}");
}

TEST(JsonWriter, NestedStructures) {
  Writer w(0);
  w.begin_object();
  w.key("sweep").begin_array();
  w.begin_object().key("threads").value(1u).end_object();
  w.begin_object().key("threads").value(4u).end_object();
  w.end_array();
  w.key("empty_array").begin_array().end_array();
  w.key("empty_object").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"sweep\":[{\"threads\":1},{\"threads\":4}],"
            "\"empty_array\":[],\"empty_object\":{}}");
}

TEST(JsonWriter, PrettyPrintingIndents) {
  Writer w(2);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-3.0), "-3");
  // Shortest form that round-trips: 0.1 has no exact binary representation
  // but "0.1" parses back to the same double.
  EXPECT_EQ(format_double(0.1), "0.1");
  double awkward = 0.9929999999999999;
  double parsed = 0.0;
  sscanf(format_double(awkward).c_str(), "%lf", &parsed);
  EXPECT_EQ(parsed, awkward);
  // Non-finite values serialize as null (no JSON representation).
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonWriter, DeterministicAcrossWriters) {
  auto build = [] {
    Writer w;
    w.begin_object();
    w.key("tvd").value(0.9929999999999999);
    w.key("count").value(std::size_t{384});
    w.end_object();
    return w.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    Writer w;
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key outside object
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), InvalidArgument);  // mismatched close
  }
  {
    Writer w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), InvalidArgument);  // dangling key
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.str(), InvalidArgument);  // incomplete document
  }
  {
    Writer w;
    w.value(1);
    EXPECT_THROW(w.value(2), InvalidArgument);  // two top-level values
  }
}

TEST(JsonWriter, TopLevelScalar) {
  Writer w;
  w.value("only");
  EXPECT_EQ(w.str(), "\"only\"");
}

// ----------------------------------------------------------------- parser

TEST(JsonParser, ScalarsAndContainers) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("0.5").as_number(), 0.5);
  EXPECT_EQ(parse("-1.25e2").as_number(), -125.0);
  EXPECT_EQ(parse("1E+2").as_number(), 100.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");

  Value doc = parse(R"(  {"a": [1, 2.5, "x"], "b": {"c": null}}  )");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 2u);
  const Value& a = doc.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.as_array()[0].as_int(), 1);
  EXPECT_EQ(a.as_array()[1].as_number(), 2.5);
  EXPECT_EQ(a.as_array()[2].as_string(), "x");
  EXPECT_TRUE(doc.at("b").at("c").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), InvalidArgument);
}

TEST(JsonParser, IntegerVersusDoubleClassification) {
  EXPECT_TRUE(parse("7").is_integer());
  EXPECT_FALSE(parse("7.0").is_integer());
  EXPECT_FALSE(parse("7e0").is_integer());
  EXPECT_THROW(parse("7.0").as_int(), InvalidArgument);
  EXPECT_EQ(parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  // One past int64: still a valid JSON number, but only as a double.
  Value big = parse("9223372036854775808");
  EXPECT_FALSE(big.is_integer());
  EXPECT_EQ(big.as_number(), 9223372036854775808.0);
}

TEST(JsonParser, StringEscapesIncludingUnicode) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse(R"("\b\f\n\r\t")").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(parse(R"("\u0041")").as_string(), "A");
  // 2- and 3-byte UTF-8 from BMP escapes.
  EXPECT_EQ(parse(R"("\u00e9")").as_string(), "\xc3\xa9");        // é
  EXPECT_EQ(parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");    // €
  // Surrogate pair -> 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parse("\"caf\xc3\xa9\"").as_string(), "caf\xc3\xa9");
}

TEST(JsonParser, MalformedInputThrowsParseError) {
  const char* cases[] = {
      "",             // empty input
      "   ",          // whitespace only
      "{",            // unterminated object
      "[1, 2",        // unterminated array
      "{\"a\" 1}",    // missing colon
      "{\"a\": 1,}",  // trailing comma
      "[1,, 2]",      // double comma
      "{a: 1}",       // unquoted key
      "\"abc",        // unterminated string
      "tru",          // truncated literal
      "nulll",        // trailing junk on literal
      "1 2",          // two top-level values
      "01",           // leading zero
      "1.",           // missing fraction digits
      "1e",           // missing exponent digits
      "+1",           // leading plus
      "-",            // bare minus
      ".5",           // missing integer part
      "1e999",        // double overflow
      "\"\\x\"",      // invalid escape
      "\"\\u12\"",    // truncated \u escape
      "\"\\u123g\"",  // non-hex \u digit
      "\"\\ud800\"",  // lone high surrogate
      "\"\\ude00\"",  // lone low surrogate
      "\"\\ud83d\\u0041\"",  // high surrogate + non-surrogate
      "\"\x01\"",     // unescaped control character
      "{\"a\": }",    // missing value
      "// comment",   // comments are not JSON
  };
  for (const char* text : cases) {
    EXPECT_THROW(parse(text), ParseError) << "accepted: " << text;
  }
}

TEST(JsonParser, DepthLimitRejectsDeepNesting) {
  ParseOptions options;
  options.max_depth = 8;
  std::string shallow = "[[[[[[[1]]]]]]]";                  // depth 7: fine
  std::string deep = "[[[[[[[[[1]]]]]]]]]";                 // depth 9: rejected
  EXPECT_NO_THROW(parse(shallow, options));
  EXPECT_THROW(parse(deep, options), ParseError);
  // The default guards against the classic stack-exhaustion payload.
  EXPECT_THROW(parse(std::string(100000, '['), ParseOptions{}), ParseError);
}

TEST(JsonParser, ByteLimitRejectsOversizedDocuments) {
  ParseOptions options;
  options.max_bytes = 16;
  EXPECT_NO_THROW(parse("{\"a\": 1}", options));
  EXPECT_THROW(parse("{\"a\": \"0123456789abc\"}", options), ParseError);
}

TEST(JsonParser, DuplicateKeysKeepFirst) {
  Value doc = parse(R"({"k": 1, "k": 2})");
  EXPECT_EQ(doc.size(), 2u);       // both are retained...
  EXPECT_EQ(doc.at("k").as_int(), 1);  // ...find/at answer the first
}

TEST(JsonParser, TypeMismatchesThrowInvalidArgument) {
  Value doc = parse(R"({"n": 1})");
  EXPECT_THROW(doc.as_array(), InvalidArgument);
  EXPECT_THROW(doc.as_string(), InvalidArgument);
  EXPECT_THROW(doc.at("n").as_bool(), InvalidArgument);
  EXPECT_THROW(doc.at("n").as_object(), InvalidArgument);
  EXPECT_THROW(parse("[1]").find("k"), InvalidArgument);
}

TEST(JsonParser, WriterDocumentsRoundTrip) {
  Writer w(2);
  w.begin_object();
  w.key("name").value("rd53 \"quoted\" \t");
  w.key("tvd").value(0.9929999999999999);
  w.key("count").value(std::uint64_t{18446744073709551615ull});
  w.key("neg").value(-42);
  w.key("flags").begin_array().value(true).value(false).null_value()
      .end_array();
  w.key("nested").begin_object().key("empty").begin_array().end_array()
      .end_object();
  w.end_object();

  Value doc = parse(w.str());
  EXPECT_EQ(doc.at("name").as_string(), "rd53 \"quoted\" \t");
  EXPECT_EQ(doc.at("tvd").as_number(), 0.9929999999999999);
  // uint64 max does not fit int64; the parser keeps it as a double.
  EXPECT_FALSE(doc.at("count").is_integer());
  EXPECT_EQ(doc.at("neg").as_int(), -42);
  ASSERT_EQ(doc.at("flags").size(), 3u);
  EXPECT_EQ(doc.at("flags").as_array()[0].as_bool(), true);
  EXPECT_TRUE(doc.at("flags").as_array()[2].is_null());
  EXPECT_EQ(doc.at("nested").at("empty").size(), 0u);
}

// Round trip of every serialize.h producer: what the service writes, the
// parser must read back field-for-field (this is exactly what a REST
// consumer of the network front-end does).
TEST(JsonParser, SerializeOutputsRoundTrip) {
  lock::FlowResult result;
  result.depth_original = 5;
  result.depth_obfuscated = 5;
  result.gates_original = 6;
  result.gates_obfuscated = 8;
  result.tvd_obfuscated = 0.975;
  result.tvd_restored = 0.02;
  result.accuracy_original = 0.98;
  result.accuracy_restored = 0.97;

  Value flow = parse(service::to_json(result));
  EXPECT_EQ(flow.at("depth_original").as_int(), 5);
  EXPECT_EQ(flow.at("gates_obfuscated").as_int(), 8);
  EXPECT_EQ(flow.at("tvd_restored").as_number(), 0.02);
  EXPECT_EQ(flow.at("split_widths").size(), 2u);

  service::JobOutcome done;
  done.id = 3;
  done.name = "rd53";
  done.seed = 99;
  done.state = service::JobState::kDone;
  done.shots = 1000;
  done.fusion = true;
  done.seconds = 1.5;
  done.result = result;
  for (int indent : {0, 2}) {
    Value doc =
        parse(service::to_json(done, /*include_timing=*/true, indent));
    EXPECT_EQ(doc.at("id").as_int(), 3);
    EXPECT_EQ(doc.at("name").as_string(), "rd53");
    EXPECT_EQ(doc.at("state").as_string(), "done");
    EXPECT_EQ(doc.at("status").at("code").as_string(), "ok");
    EXPECT_EQ(doc.at("sampler").at("shots").as_int(), 1000);
    EXPECT_EQ(doc.at("sampler").at("fusion").as_bool(), true);
    EXPECT_EQ(doc.at("seconds").as_number(), 1.5);
    EXPECT_EQ(doc.at("result").at("accuracy_restored").as_number(), 0.97);
  }
  // Timing off: the field disappears entirely.
  EXPECT_EQ(parse(service::to_json(done, false)).find("seconds"), nullptr);

  service::JobOutcome failed;
  failed.id = 4;
  failed.name = "broken";
  failed.state = service::JobState::kFailed;
  failed.status = {service::StatusCode::kCompileError, "no route"};

  Value batch = parse(service::batch_to_json({done, failed}, /*threads=*/4,
                                             /*wall_seconds=*/2.0));
  EXPECT_EQ(batch.at("schema").as_string(), "tetrislock.batch.v1");
  EXPECT_EQ(batch.at("jobs").as_int(), 2);
  EXPECT_EQ(batch.at("failures").as_int(), 1);
  ASSERT_EQ(batch.at("items").size(), 2u);
  const Value& item1 = batch.at("items").as_array()[1];
  EXPECT_EQ(item1.at("state").as_string(), "failed");
  EXPECT_EQ(item1.at("status").at("code").as_string(), "compile_error");
  EXPECT_EQ(item1.at("status").at("message").as_string(), "no route");
  EXPECT_EQ(item1.find("result"), nullptr);
}

}  // namespace
}  // namespace tetris::json
