#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "common/error.h"

namespace tetris::json {
namespace {

TEST(JsonWriter, FlatObject) {
  Writer w(0);
  w.begin_object();
  w.key("name").value("rd53");
  w.key("qubits").value(7);
  w.key("ok").value(true);
  w.key("nothing").null_value();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"rd53\",\"qubits\":7,\"ok\":true,\"nothing\":null}");
}

TEST(JsonWriter, NestedStructures) {
  Writer w(0);
  w.begin_object();
  w.key("sweep").begin_array();
  w.begin_object().key("threads").value(1u).end_object();
  w.begin_object().key("threads").value(4u).end_object();
  w.end_array();
  w.key("empty_array").begin_array().end_array();
  w.key("empty_object").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"sweep\":[{\"threads\":1},{\"threads\":4}],"
            "\"empty_array\":[],\"empty_object\":{}}");
}

TEST(JsonWriter, PrettyPrintingIndents) {
  Writer w(2);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-3.0), "-3");
  // Shortest form that round-trips: 0.1 has no exact binary representation
  // but "0.1" parses back to the same double.
  EXPECT_EQ(format_double(0.1), "0.1");
  double awkward = 0.9929999999999999;
  double parsed = 0.0;
  sscanf(format_double(awkward).c_str(), "%lf", &parsed);
  EXPECT_EQ(parsed, awkward);
  // Non-finite values serialize as null (no JSON representation).
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonWriter, DeterministicAcrossWriters) {
  auto build = [] {
    Writer w;
    w.begin_object();
    w.key("tvd").value(0.9929999999999999);
    w.key("count").value(std::size_t{384});
    w.end_object();
    return w.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    Writer w;
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key outside object
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), InvalidArgument);  // mismatched close
  }
  {
    Writer w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), InvalidArgument);  // dangling key
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.str(), InvalidArgument);  // incomplete document
  }
  {
    Writer w;
    w.value(1);
    EXPECT_THROW(w.value(2), InvalidArgument);  // two top-level values
  }
}

TEST(JsonWriter, TopLevelScalar) {
  Writer w;
  w.value("only");
  EXPECT_EQ(w.str(), "\"only\"");
}

}  // namespace
}  // namespace tetris::json
