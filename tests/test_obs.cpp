// Telemetry tests (src/obs/ + its service/net integration): instrument
// registry semantics, Prometheus text-format grammar of GET /metrics, stage
// tracing via GET /v1/jobs/{id}/trace, and — the contract the subsystem is
// built around — that turning telemetry and tracing on changes no job
// output byte.

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "lock/pipeline.h"
#include "net/http.h"
#include "net/server.h"
#include "obs/trace.h"
#include "revlib/benchmarks.h"
#include "service/serialize.h"
#include "service/service.h"

namespace tetris::obs {
namespace {

// ------------------------------------------------------------ instruments

TEST(ObsRegistry, CounterAndGaugeRoundTrip) {
  Registry reg;
  Counter& hits = reg.counter("hits_total", "Hits.", {{"tier", "memory"}});
  hits.inc();
  hits.inc(4);
  // Same (name, labels) resolves to the same instrument.
  EXPECT_EQ(&reg.counter("hits_total", "Hits.", {{"tier", "memory"}}), &hits);
  EXPECT_EQ(hits.value(), 5u);

  Gauge& depth = reg.gauge("queue_depth", "Depth.");
  depth.set(3.0);
  depth.add(-1.0);
  EXPECT_DOUBLE_EQ(depth.value(), 2.0);

  auto families = reg.collect();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].name, "hits_total");
  EXPECT_EQ(families[0].kind, Kind::kCounter);
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_DOUBLE_EQ(families[0].samples[0].value, 5.0);
  EXPECT_EQ(families[1].name, "queue_depth");
  EXPECT_DOUBLE_EQ(families[1].samples[0].value, 2.0);
}

TEST(ObsRegistry, DistinctLabelSetsAreDistinctSeries) {
  Registry reg;
  Counter& a = reg.counter("req_total", "Requests.", {{"route", "/a"}});
  Counter& b = reg.counter("req_total", "Requests.", {{"route", "/b"}});
  EXPECT_NE(&a, &b);
  a.inc(2);
  b.inc(7);
  auto families = reg.collect();
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(families[0].samples[0].value, 2.0);
  EXPECT_DOUBLE_EQ(families[0].samples[1].value, 7.0);
}

TEST(ObsRegistry, KindMismatchOnOneNameThrows) {
  Registry reg;
  reg.counter("x_total", "X.");
  EXPECT_THROW(reg.gauge("x_total", "X."), tetris::Error);
}

TEST(ObsRegistry, HistogramBucketsFollowLeSemantics) {
  Registry reg;
  Histogram& h =
      reg.histogram("lat_seconds", "Latency.", {0.01, 0.1, 1.0});
  h.observe(0.01);  // on a bound: le="0.01" includes it
  h.observe(0.05);
  h.observe(0.5);
  h.observe(99.0);  // overflow -> +Inf only

  const auto counts = h.bucket_counts();  // non-cumulative, +Inf last
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 99.56, 1e-9);

  auto families = reg.collect();
  ASSERT_EQ(families[0].histograms.size(), 1u);
  const HistogramSample& s = families[0].histograms[0];
  ASSERT_EQ(s.cumulative.size(), 3u);
  EXPECT_EQ(s.cumulative[0], 1u);  // cumulative in the snapshot
  EXPECT_EQ(s.cumulative[1], 2u);
  EXPECT_EQ(s.cumulative[2], 3u);
  EXPECT_EQ(s.count, 4u);
}

TEST(ObsRegistry, RejectsUnsortedBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("h", "H.", {1.0, 0.5}), tetris::Error);
  EXPECT_THROW(reg.histogram("h2", "H.", {1.0, 1.0}), tetris::Error);
}

TEST(ObsRegistry, CollectorFamiliesAppendAfterInstruments) {
  Registry reg;
  reg.counter("a_total", "A.").inc();
  reg.add_collector([](std::vector<Family>& out) {
    Family f;
    f.name = "external_gauge";
    f.kind = Kind::kGauge;
    f.samples.push_back(Sample{{}, 42.0});
    out.push_back(std::move(f));
  });
  auto families = reg.collect();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[1].name, "external_gauge");
  EXPECT_DOUBLE_EQ(families[1].samples[0].value, 42.0);
}

TEST(ObsRegistry, ConcurrentObservesNeverBreakHistogramInvariant) {
  Registry reg;
  Histogram& h = reg.histogram("h_seconds", "H.", {0.5});
  std::thread writer([&h] {
    for (int i = 0; i < 20000; ++i) h.observe(i % 2 == 0 ? 0.1 : 0.9);
  });
  // Scrape while the writer runs: +Inf (== count in the rendered form) must
  // never fall below the last cumulative bucket.
  for (int i = 0; i < 50; ++i) {
    auto families = reg.collect();
    const HistogramSample& s = families[0].histograms[0];
    EXPECT_GE(s.count, s.cumulative.back());
  }
  writer.join();
  auto families = reg.collect();
  EXPECT_EQ(families[0].histograms[0].count, 20000u);
}

// ------------------------------------------------------- exposition format

/// Minimal line-level parser for the subset of the text format our renderer
/// emits; returns per-line diagnostics (empty = grammar-clean).
std::vector<std::string> lint_prometheus(const std::string& body) {
  std::vector<std::string> errors;
  std::set<std::string> typed;       // families with a TYPE line seen
  std::set<std::string> closed;      // families whose block ended
  std::set<std::string> samples;     // full sample keys, duplicate check
  std::string current;
  // family -> labels-without-le -> le -> value, for histogram consistency.
  std::map<std::string, std::map<std::string, std::map<double, double>>> b;
  std::map<std::string, std::map<std::string, double>> counts;

  auto family_of = [](const std::string& name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };

  std::size_t pos = 0;
  int lineno = 0;
  while (pos < body.size()) {
    ++lineno;
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) {
      errors.push_back("missing trailing newline");
      eol = body.size();
    }
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const std::string at = "line " + std::to_string(lineno) + ": ";
    if (line.empty()) {
      errors.push_back(at + "blank line");
      continue;
    }
    if (line[0] == '#') {
      std::string name;
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const std::size_t end = line.find(' ', 7);
        name = line.substr(7, end == std::string::npos ? std::string::npos
                                                       : end - 7);
        if (line.rfind("# TYPE ", 0) == 0) typed.insert(name);
      } else {
        errors.push_back(at + "malformed comment: " + line);
        continue;
      }
      if (closed.count(name) > 0) {
        errors.push_back(at + "family reopened: " + name);
      }
      if (!current.empty() && current != name) closed.insert(current);
      current = name;
      continue;
    }
    // Sample: name, optional {labels}, space, value.
    std::size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0 || (std::isdigit(static_cast<unsigned char>(line[0])) != 0)) {
      errors.push_back(at + "bad metric name: " + line);
      continue;
    }
    const std::string name = line.substr(0, i);
    std::string labels;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.rfind('}');
      if (close == std::string::npos || close < i) {
        errors.push_back(at + "unterminated label block");
        continue;
      }
      labels = line.substr(i + 1, close - i - 1);
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      errors.push_back(at + "missing value separator: " + line);
      continue;
    }
    const std::string value_text = line.substr(i + 1);
    double value = 0.0;
    if (value_text == "+Inf") {
      value = std::numeric_limits<double>::infinity();
    } else {
      try {
        std::size_t used = 0;
        value = std::stod(value_text, &used);
        if (used != value_text.size()) throw std::invalid_argument("tail");
      } catch (const std::exception&) {
        errors.push_back(at + "bad value: '" + value_text + "'");
        continue;
      }
    }
    const std::string family = family_of(name);
    if (typed.count(family) == 0) {
      errors.push_back(at + "sample precedes TYPE: " + name);
    }
    if (!current.empty() && current != family) {
      closed.insert(current);
      if (closed.count(family) > 0) {
        errors.push_back(at + "family reopened: " + family);
      }
      current = family;
    }
    if (!samples.insert(name + "{" + labels + "}").second) {
      errors.push_back(at + "duplicate sample: " + line);
    }
    // Histogram bookkeeping: peel le="..." out of the label text.
    const std::string le_marker = "le=\"";
    if (name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      const std::size_t le = labels.rfind(le_marker);
      if (le == std::string::npos) {
        errors.push_back(at + "bucket without le label: " + line);
        continue;
      }
      const std::size_t le_end = labels.find('"', le + le_marker.size());
      const std::string le_text =
          labels.substr(le + le_marker.size(), le_end - le - le_marker.size());
      std::string rest = labels.substr(0, le);
      if (!rest.empty() && rest.back() == ',') rest.pop_back();
      const double le_value = le_text == "+Inf"
                                  ? std::numeric_limits<double>::infinity()
                                  : std::stod(le_text);
      b[family][rest][le_value] = value;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0 &&
               b.count(family) > 0) {
      counts[family][labels] = value;
    }
  }

  for (const auto& family : b) {
    for (const auto& series : family.second) {
      double prev = 0.0;
      for (const auto& bucket : series.second) {  // map: ascending le
        if (bucket.second < prev) {
          errors.push_back(family.first + "{" + series.first +
                           "}: buckets not cumulative");
        }
        prev = bucket.second;
      }
      const auto inf =
          series.second.find(std::numeric_limits<double>::infinity());
      if (inf == series.second.end()) {
        errors.push_back(family.first + "{" + series.first +
                         "}: no +Inf bucket");
        continue;
      }
      const auto count_it = counts[family.first].find(series.first);
      if (count_it == counts[family.first].end()) {
        errors.push_back(family.first + "{" + series.first +
                         "}: missing _count");
      } else if (count_it->second != inf->second) {
        errors.push_back(family.first + "{" + series.first +
                         "}: +Inf != _count");
      }
    }
  }
  return errors;
}

TEST(ObsRender, EscapesLabelValues) {
  Registry reg;
  reg.counter("c_total", "C.", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string body = render_prometheus(reg.collect());
  EXPECT_NE(body.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos) << body;
  EXPECT_TRUE(lint_prometheus(body).empty());
}

TEST(ObsRender, MergesSameNameFamiliesIntoOneBlock) {
  Registry a;
  a.counter("shared_total", "S.", {{"src", "a"}}).inc();
  Registry other;
  other.counter("shared_total", "S.", {{"src", "b"}}).inc(2);
  auto families = a.collect();
  auto more = other.collect();
  families.insert(families.end(), more.begin(), more.end());
  const std::string body = render_prometheus(families);
  // One HELP/TYPE pair, both series under it, grammar-clean.
  EXPECT_EQ(body.find("# TYPE shared_total"),
            body.rfind("# TYPE shared_total"));
  EXPECT_NE(body.find("shared_total{src=\"a\"} 1"), std::string::npos);
  EXPECT_NE(body.find("shared_total{src=\"b\"} 2"), std::string::npos);
  const auto errors = lint_prometheus(body);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(ObsRender, HistogramLinesAreCumulativeWithInfEqualCount) {
  Registry reg;
  Histogram& h = reg.histogram("d_seconds", "D.", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string body = render_prometheus(reg.collect());
  EXPECT_NE(body.find("d_seconds_bucket{le=\"0.1\"} 1\n"), std::string::npos)
      << body;
  EXPECT_NE(body.find("d_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(body.find("d_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(body.find("d_seconds_count 3\n"), std::string::npos);
  const auto errors = lint_prometheus(body);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

// ----------------------------------------------------------------- tracing

TEST(ObsTrace, ScopedSpanRecordsSequentialSpansWithAttrs) {
  Trace trace;
  {
    ScopedSpan span(&trace, "first");
    span.attr("qubits", std::uint64_t{5}).attr("view", "obfuscated");
  }
  {
    ScopedSpan span(&trace, "second");
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  const Span& first = trace.spans()[0];
  EXPECT_EQ(first.name, "first");
  ASSERT_EQ(first.attrs.size(), 2u);
  EXPECT_EQ(first.attrs[0].first, "qubits");
  EXPECT_EQ(first.attrs[0].second, "5");
  EXPECT_EQ(first.attrs[1].second, "obfuscated");
  // Sequential scopes: the second span starts no earlier than the first
  // ends, and every duration fits inside the trace's elapsed window.
  const Span& second = trace.spans()[1];
  EXPECT_GE(second.start_seconds,
            first.start_seconds + first.duration_seconds - 1e-9);
  EXPECT_LE(first.duration_seconds + second.duration_seconds,
            trace.elapsed() + 1e-9);
}

TEST(ObsTrace, NullTraceDisablesRecordingCheaply) {
  ScopedSpan span(nullptr, "ignored");
  span.attr("k", "v");
  span.finish();  // no-op, no crash
}

TEST(ObsTrace, FinishIsIdempotent) {
  Trace trace;
  ScopedSpan span(&trace, "once");
  span.finish();
  span.finish();
  EXPECT_EQ(trace.spans().size(), 1u);
}

// ------------------------------------------------- service + net contract

const char* kExpectedStages[] = {"lock.obfuscate", "lock.split",
                                 "lock.recombine", "compile",
                                 "sim.reference",  "sim.sample"};

service::ServiceConfig obs_service_config() {
  service::ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.base_seed = 2025;
  cfg.cache_capacity = 4;
  return cfg;
}

lock::FlowJob obs_job(std::size_t shots = 64) {
  const auto& b = revlib::get_benchmark("4mod5");
  lock::FlowConfig cfg;
  cfg.shots = shots;
  return lock::make_flow_job(b.name, b.circuit, b.measured, cfg);
}

TEST(ObsService, TraceCoversPipelineAndStaysWithinJobSeconds) {
  service::Service svc(obs_service_config());
  const auto outcome = svc.submit(obs_job()).wait();
  ASSERT_EQ(outcome.state, service::JobState::kDone);
  ASSERT_FALSE(outcome.trace.empty());

  std::set<std::string> names;
  double stage_sum = 0.0;
  for (const Span& span : outcome.trace.spans()) {
    names.insert(span.name);
    EXPECT_GE(span.duration_seconds, 0.0);
    stage_sum += span.duration_seconds;
  }
  for (const char* stage : kExpectedStages) {
    EXPECT_EQ(names.count(stage), 1u) << "missing span " << stage;
  }
  // Spans run back-to-back inside the window Service measures as
  // JobOutcome::seconds, so their durations can never sum past it.
  EXPECT_LE(stage_sum, outcome.seconds + 1e-6);
}

TEST(ObsService, CacheHitTraceSkipsPipelineStages) {
  service::Service svc(obs_service_config());
  (void)svc.submit(obs_job(), 7).wait();
  const auto hit = svc.submit(obs_job(), 7).wait();
  ASSERT_EQ(hit.state, service::JobState::kDone);
  std::set<std::string> names;
  for (const Span& span : hit.trace.spans()) names.insert(span.name);
  EXPECT_EQ(names.count("cache.lookup"), 1u);
  EXPECT_EQ(names.count("lock.obfuscate"), 0u);
}

TEST(ObsService, TracingLeavesJobDocumentBytesUntouched) {
  service::Service a(obs_service_config());
  service::Service other(obs_service_config());
  const auto first = a.submit(obs_job()).wait();
  const auto second = other.submit(obs_job()).wait();
  // Identical submissions produce byte-identical documents with timing off,
  // and the document never mentions the trace (it lives in its own
  // endpoint/serializer).
  const std::string doc = service::to_json(first, /*include_timing=*/false);
  EXPECT_EQ(doc, service::to_json(second, /*include_timing=*/false));
  EXPECT_EQ(doc.find("trace"), std::string::npos);
  EXPECT_EQ(doc.find("span"), std::string::npos);

  const std::string trace_doc = service::trace_to_json(first);
  const json::Value parsed = json::parse(trace_doc);
  EXPECT_EQ(parsed.at("schema").as_string(), "tetrislock.trace.v1");
  EXPECT_GE(parsed.at("spans").as_array().size(), 6u);
}

net::http::Request make_request(const std::string& method,
                                const std::string& target) {
  net::http::Request req;
  req.method = method;
  req.target = target;
  req.version = "HTTP/1.1";
  const std::size_t q = target.find('?');
  req.path = target.substr(0, q);
  if (q != std::string::npos) {
    // Only the timing=0 form is used here.
    req.query.emplace_back("timing", "0");
  }
  return req;
}

/// Server driven through handle() directly — no sockets, no event loop.
class RoutedServer {
 public:
  RoutedServer() : service_(obs_service_config()), server_(service_) {}

  net::http::Response get(const std::string& target) {
    return server_.handle(make_request("GET", target));
  }
  std::uint64_t submit() {
    json::Writer w(0);
    w.begin_object();
    w.key("benchmark").value("4mod5");
    w.key("seed").value(2025);
    w.key("config").begin_object();
    w.key("shots").value(64);
    w.end_object();
    w.end_object();
    auto req = make_request("POST", "/v1/jobs");
    req.body = w.str();
    auto res = server_.handle(req);
    EXPECT_EQ(res.status, 202);
    return static_cast<std::uint64_t>(json::parse(res.body).at("id").as_int());
  }
  std::string wait_terminal(std::uint64_t id) {
    for (int i = 0; i < 3000; ++i) {
      auto res = get("/v1/jobs/" + std::to_string(id));
      EXPECT_EQ(res.status, 200);
      const std::string state = json::parse(res.body).at("state").as_string();
      if (state == "done" || state == "failed" || state == "cancelled") {
        return state;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "job " << id << " never became terminal";
    return "timeout";
  }

 private:
  service::Service service_;
  net::Server server_;
};

TEST(ObsServer, MetricsEndpointIsGrammarCleanAndCoversSubsystems) {
  RoutedServer srv;
  const std::uint64_t id = srv.submit();
  ASSERT_EQ(srv.wait_terminal(id), "done");

  auto res = srv.get("/metrics");
  ASSERT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "text/plain; version=0.0.4; charset=utf-8");
  const auto errors = lint_prometheus(res.body);
  EXPECT_TRUE(errors.empty()) << errors.front() << "\n" << res.body;

  // One family per instrumented subsystem must be present.
  for (const char* name :
       {"tetris_jobs_submitted_total", "tetris_jobs_terminal_total",
        "tetris_cache_hits_total", "tetris_pool_threads",
        "tetris_job_stage_seconds_bucket", "tetris_http_requests_total",
        "tetris_http_request_seconds_bucket"}) {
    EXPECT_NE(res.body.find(name), std::string::npos)
        << "missing family " << name;
  }
  // Stage histogram series exist for the pipeline stages.
  EXPECT_NE(res.body.find("stage=\"lock.obfuscate\""), std::string::npos);
  EXPECT_NE(res.body.find("stage=\"sim.sample\""), std::string::npos);
}

TEST(ObsServer, TraceEndpointGatesOnTerminalState) {
  RoutedServer srv;
  EXPECT_EQ(srv.get("/v1/jobs/999/trace").status, 404);
  const std::uint64_t id = srv.submit();
  ASSERT_EQ(srv.wait_terminal(id), "done");
  auto res = srv.get("/v1/jobs/" + std::to_string(id) + "/trace");
  ASSERT_EQ(res.status, 200);
  const json::Value doc = json::parse(res.body);
  EXPECT_EQ(doc.at("schema").as_string(), "tetrislock.trace.v1");
  EXPECT_EQ(doc.at("id").as_int(), static_cast<std::int64_t>(id));
  EXPECT_GE(doc.at("spans").as_array().size(), 6u);
}

TEST(ObsServer, StatusReportsPoolRequestAndUptimeTelemetry) {
  RoutedServer srv;
  (void)srv.get("/v1/status");
  auto res = srv.get("/v1/status");
  ASSERT_EQ(res.status, 200);
  const json::Value doc = json::parse(res.body);
  const json::Value& server = doc.at("server");
  EXPECT_GT(server.at("started_unix").as_int(), 0);
  EXPECT_GE(server.at("uptime_seconds").as_number(), 0.0);
  // The first /v1/status GET above is already tallied by route and class.
  EXPECT_GE(
      server.at("requests_total").at("/v1/status").at("2xx").as_int(), 1);
  const json::Value& pool = doc.at("job_pool");
  EXPECT_EQ(pool.at("threads").as_int(), 2);
  EXPECT_GE(pool.at("tasks_submitted").as_int(), 0);
}

TEST(ObsServer, TelemetryOffKeepsEndpointsAndFreezesHttpSeries) {
  service::Service service(obs_service_config());
  net::ServerConfig config;
  config.telemetry = false;
  net::Server server(service, config);
  (void)server.handle(make_request("GET", "/v1/status"));
  auto res = server.handle(make_request("GET", "/metrics"));
  ASSERT_EQ(res.status, 200);
  EXPECT_TRUE(lint_prometheus(res.body).empty());
  // The route counter exists but did not move.
  EXPECT_NE(
      res.body.find("tetris_http_requests_total{route=\"/v1/status\",class=\"2xx\"} 0"),
      std::string::npos)
      << res.body;
}

}  // namespace
}  // namespace tetris::obs
