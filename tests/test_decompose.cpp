#include "compiler/decompose.h"

#include <gtest/gtest.h>

#include "compiler/target.h"
#include "sim/unitary.h"

namespace tetris::compiler {
namespace {

/// Every rewrite rule must preserve the unitary up to global phase.
class DecomposeRule : public ::testing::TestWithParam<qir::Gate> {};

TEST_P(DecomposeRule, ExpansionIsEquivalent) {
  const qir::Gate& g = GetParam();
  int width = 0;
  for (int q : g.qubits) width = std::max(width, q + 1);

  qir::Circuit original(width);
  original.add(g);

  DecomposePass pass;  // IBM basis
  qir::Circuit lowered = pass.run(original);

  // Fully lowered: only basis kinds remain.
  for (const auto& lg : lowered.gates()) {
    EXPECT_TRUE(ibm_basis().count(lg.kind))
        << "non-basis gate " << lg.name() << " from " << g.name();
  }
  EXPECT_TRUE(sim::circuits_equivalent(lowered, original))
      << "rule broken for " << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, DecomposeRule,
    ::testing::Values(
        qir::Gate(qir::GateKind::I, {0}), qir::make_y(0), qir::make_z(0),
        qir::make_h(0), qir::make_s(0), qir::make_sdg(0), qir::make_t(0),
        qir::make_tdg(0), qir::make_sxdg(0), qir::make_p(0.7, 0),
        qir::make_rx(0.4, 0), qir::make_rx(-2.9, 0), qir::make_ry(1.3, 0),
        qir::make_ry(-0.2, 0), qir::make_cy(0, 1), qir::make_cz(0, 1),
        qir::make_ch(0, 1), qir::make_cp(0.9, 0, 1),
        qir::make_cp(-2.2, 0, 1), qir::make_crz(1.1, 0, 1),
        qir::make_swap(0, 1), qir::make_ccx(0, 1, 2),
        qir::make_ccx(2, 0, 1), qir::make_cswap(0, 1, 2),
        qir::make_mcx({0, 1, 2}, 3), qir::make_mcx({3, 1, 0}, 2),
        qir::make_mcx({0, 1, 2, 3}, 4)),
    [](const ::testing::TestParamInfo<qir::Gate>& info) {
      return info.param.name() + "_" + std::to_string(info.index);
    });

TEST(Decompose, BasisGatesPassThrough) {
  DecomposePass pass;
  qir::Circuit c(2);
  c.x(0).sx(1).rz(0.5, 0).cx(0, 1);
  qir::Circuit out = pass.run(c);
  EXPECT_TRUE(out == c);
}

TEST(Decompose, BarriersAreDropped) {
  DecomposePass pass;
  qir::Circuit c(2);
  c.x(0).barrier().x(1);
  qir::Circuit out = pass.run(c);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Decompose, ExpandSingleStep) {
  DecomposePass pass;
  auto expanded = pass.expand(qir::make_z(0));
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0].kind, qir::GateKind::RZ);
}

TEST(Decompose, IdentityExpandsToNothing) {
  DecomposePass pass;
  EXPECT_TRUE(pass.expand(qir::Gate(qir::GateKind::I, {0})).empty());
}

TEST(Decompose, CustomBasisKeepsCliffords) {
  std::set<qir::GateKind> clifford_t = {
      qir::GateKind::H, qir::GateKind::S, qir::GateKind::Sdg,
      qir::GateKind::T, qir::GateKind::Tdg, qir::GateKind::CX,
      qir::GateKind::X};
  DecomposePass pass(clifford_t);
  qir::Circuit c(3);
  c.ccx(0, 1, 2);
  qir::Circuit out = pass.run(c);
  for (const auto& g : out.gates()) {
    EXPECT_TRUE(clifford_t.count(g.kind)) << g.name();
  }
  EXPECT_TRUE(sim::circuits_equivalent(out, c));
}

TEST(Decompose, MczParityNetworkMatchesCz) {
  // The parity-phase construction on 2 qubits must equal CZ.
  qir::Circuit direct(2);
  direct.cz(0, 1);
  qir::Circuit network(2);
  for (const auto& g : mcz_parity_network({0, 1})) network.add(g);
  EXPECT_TRUE(sim::circuits_equivalent(network, direct));
}

TEST(Decompose, MczParityNetworkMatchesCcz) {
  // 3 qubits: must equal H(t) CCX H(t) conjugation, i.e. CCZ.
  qir::Circuit direct(3);
  direct.h(2).ccx(0, 1, 2).h(2);
  qir::Circuit network(3);
  for (const auto& g : mcz_parity_network({0, 1, 2})) network.add(g);
  EXPECT_TRUE(sim::circuits_equivalent(network, direct));
}

TEST(Decompose, WholeBenchmarkLowersAndStaysEquivalent) {
  qir::Circuit c(4);
  c.ccx(0, 1, 3).cx(0, 1).ccx(1, 2, 3).x(0).cx(1, 2).x(3).cx(0, 1);
  DecomposePass pass;
  qir::Circuit out = pass.run(c);
  EXPECT_TRUE(sim::circuits_equivalent(out, c));
  // Toffoli-heavy circuit: lowering must multiply the gate count.
  EXPECT_GT(out.gate_count(), c.gate_count());
}

}  // namespace
}  // namespace tetris::compiler
