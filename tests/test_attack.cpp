#include <gtest/gtest.h>

#include "attack/boundary.h"
#include "attack/collusion.h"
#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "common/combinatorics.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "revlib/benchmarks.h"

namespace tetris::attack {
namespace {

TEST(CascadeCollusion, TrivialAlignmentFoundFast) {
  // Unpermuted cascade splits: the identity mapping works and is found
  // within the first few candidates — the vulnerability the paper describes.
  auto c = revlib::build_1bit_adder();
  auto split = baselines::cascade_split(c, 0.5);
  auto result =
      cascade_collusion_attack(split.first, split.second, c, 1'000'000);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.mappings_tried, 1u);  // identity is the first permutation
  EXPECT_EQ(result.search_space, factorial_exact(4));
}

TEST(CascadeCollusion, SwapNetworkDefeatsExactMatchButSpaceIsTiny) {
  auto c = revlib::build_1bit_adder();
  Rng rng(5);
  auto split = baselines::cascade_split_with_swap_network(c, rng, 0.5);
  // With the swap network in place, no qubit bijection reproduces the exact
  // original unitary (the residual output permutation remains), so the naive
  // exact-match oracle sweeps the whole space — but that space is just n!,
  // which is the quantitative weakness TetrisLock's unequal splits remove.
  auto result =
      cascade_collusion_attack(split.first, split.second, c, 1'000'000);
  EXPECT_EQ(result.search_space, 24u);
  EXPECT_LE(result.mappings_tried, 24u);
}

TEST(TetrisCollusion, SearchSpaceMatchesEq1Term) {
  // For split widths (n1, n2) the enumerated space must equal
  // sum_j C(n1,j) C(n2,j) j! (Eq. 1 inner sum with k = 1).
  Rng rng(3);
  lock::Obfuscator obf;
  auto o = obf.obfuscate(revlib::build_4mod5(), rng);
  lock::InterlockSplitter splitter;
  auto pair = splitter.split(o, rng);

  auto result = collusion_attack(pair.first.circuit, pair.second.circuit,
                                 o.original, pair.first.local_to_orig,
                                 /*max_tries=*/0);  // just enumerate the space
  std::uint64_t expected = 0;
  int n1 = pair.first.circuit.num_qubits();
  int n2 = pair.second.circuit.num_qubits();
  for (int j = 0; j <= std::min(n1, n2); ++j) {
    expected +=
        binomial_exact(n1, j) * binomial_exact(n2, j) * factorial_exact(j);
  }
  EXPECT_EQ(result.search_space, expected);
  EXPECT_FALSE(result.success);  // zero tries allowed
}

TEST(TetrisCollusion, OracleAttackEventuallySucceedsOnTinyCase) {
  // With the attacker-favorable oracle the true stitching is in the space,
  // so an exhaustive sweep must find *some* functionally-correct match.
  Rng rng(11);
  lock::Obfuscator obf;
  auto o = obf.obfuscate(revlib::build_4gt13(), rng);
  lock::InterlockSplitter splitter;
  auto pair = splitter.split(o, rng);

  auto result = collusion_attack(pair.first.circuit, pair.second.circuit,
                                 o.original, pair.first.local_to_orig,
                                 5'000'000);
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.mappings_tried, 1u);
}

TEST(TetrisCollusion, CostExceedsCascadeCost) {
  // Same circuit, both defenses, same oracle: TetrisLock forces more tries.
  auto c = revlib::build_4gt13();

  auto cascade = baselines::cascade_split(c, 0.5);
  auto cascade_result =
      cascade_collusion_attack(cascade.first, cascade.second, c, 5'000'000);
  ASSERT_TRUE(cascade_result.success);

  Rng rng(11);
  lock::Obfuscator obf;
  auto o = obf.obfuscate(c, rng);
  lock::InterlockSplitter splitter;
  auto pair = splitter.split(o, rng);
  auto tetris_result = collusion_attack(
      pair.first.circuit, pair.second.circuit, c, pair.first.local_to_orig,
      5'000'000);
  ASSERT_TRUE(tetris_result.success);

  EXPECT_GT(tetris_result.search_space, cascade_result.search_space);
  EXPECT_GT(tetris_result.mappings_tried, cascade_result.mappings_tried);
}

TEST(TetrisCollusion, ValidatesInput) {
  qir::Circuit a(2), b(2), orig(2);
  EXPECT_THROW(collusion_attack(a, b, orig, {0}, 10), InvalidArgument);
}

TEST(Boundary, PrefixInsertionIsDetected) {
  auto c = revlib::build_4gt13();
  Rng rng(3);
  auto obf = baselines::prefix_obfuscate(c, 3, rng);
  auto scan =
      scan_prefix_boundary(obf.obfuscated, obf.random.gate_count());
  EXPECT_TRUE(scan.true_prefix_flagged)
      << "prefix-insertion boundary should be structurally visible";
}

TEST(Boundary, TetrisLockLeavesNoDepthFootprint) {
  // Scan the masked circuit R.C the adversary holds: slot-filled insertion
  // must never produce a depth-consistent prefix candidate.
  Rng rng(7);
  lock::Obfuscator obf;
  auto o = obf.obfuscate(revlib::build_rd53(), rng);
  ASSERT_GE(o.random.size(), 1u);
  qir::Circuit masked = o.masked();
  auto scan = scan_prefix_boundary(masked, o.random.size());
  EXPECT_FALSE(scan.true_prefix_flagged)
      << "slot-filled insertion must not leave a depth footprint at the "
         "true boundary";
}

TEST(Boundary, ValidatesPrefixLength) {
  qir::Circuit c(2);
  c.x(0);
  EXPECT_THROW(scan_prefix_boundary(c, 5), InvalidArgument);
}

TEST(Boundary, ScanAcrossSeedsDasAlwaysLeaks) {
  auto c = revlib::build_4mod5();
  int detected = 0;
  const int trials = 8;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    Rng rng(seed);
    auto obf = baselines::prefix_obfuscate(c, 3, rng);
    auto scan = scan_prefix_boundary(obf.obfuscated, obf.random.gate_count());
    if (scan.true_prefix_flagged) ++detected;
  }
  EXPECT_EQ(detected, trials);
}

}  // namespace
}  // namespace tetris::attack
