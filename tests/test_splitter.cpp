#include "lock/splitter.h"

#include <gtest/gtest.h>

#include <set>

#include "revlib/benchmarks.h"
#include "sim/unitary.h"

namespace tetris::lock {
namespace {

struct Prepared {
  ObfuscatedCircuit obf;
  SplitPair pair;
};

Prepared prepare(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  Obfuscator obfuscator;
  Prepared p;
  p.obf = obfuscator.obfuscate(revlib::get_benchmark(name).circuit, rng);
  InterlockSplitter splitter;
  p.pair = splitter.split(p.obf, rng);
  return p;
}

TEST(Splitter, SplitsPartitionGates) {
  auto p = prepare("rd53", 3);
  EXPECT_EQ(p.pair.first.gate_indices.size() + p.pair.second.gate_indices.size(),
            p.obf.circuit.size());
  // validate() ran inside split(); re-run explicitly for the API contract.
  EXPECT_NO_THROW(InterlockSplitter::validate(p.obf, p.pair));
}

TEST(Splitter, LocalToOrigMapsAreInjectiveAndInRange) {
  auto p = prepare("rd73", 5);
  for (const Split* s : {&p.pair.first, &p.pair.second}) {
    std::set<int> seen;
    for (int o : s->local_to_orig) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, p.obf.circuit.num_qubits());
      EXPECT_TRUE(seen.insert(o).second);
    }
    EXPECT_EQ(static_cast<int>(s->local_to_orig.size()),
              s->circuit.num_qubits());
  }
}

TEST(Splitter, OrigToLocalInverts) {
  auto p = prepare("4gt11", 7);
  const Split& s = p.pair.second;
  for (std::size_t l = 0; l < s.local_to_orig.size(); ++l) {
    EXPECT_EQ(s.orig_to_local(s.local_to_orig[l]), static_cast<int>(l));
  }
  // A qubit not in the split maps to -1.
  std::set<int> used(s.local_to_orig.begin(), s.local_to_orig.end());
  for (int q = 0; q < p.obf.circuit.num_qubits(); ++q) {
    if (!used.count(q)) {
      EXPECT_EQ(s.orig_to_local(q), -1);
    }
  }
}

TEST(Splitter, FirstSplitHoldsInversePrefixAndCl) {
  // Interlocking (originals in the first split) is stochastic per seed; it
  // must occur across a handful of seeds, and R^-1 must be in the first
  // split on every seed.
  std::size_t seeds_with_interlock = 0;
  for (std::uint64_t seed = 11; seed < 19; ++seed) {
    auto p = prepare("rd53", seed);
    ASSERT_GE(p.obf.random.size(), 1u);
    std::size_t originals_in_first = 0;
    for (std::size_t i : p.pair.first.gate_indices) {
      if (p.obf.origin[i] == GateOrigin::Original) ++originals_in_first;
    }
    if (originals_in_first > 0) ++seeds_with_interlock;
    for (std::size_t i : p.obf.indices_of(GateOrigin::RandomInverse)) {
      EXPECT_NE(std::find(p.pair.first.gate_indices.begin(),
                          p.pair.first.gate_indices.end(), i),
                p.pair.first.gate_indices.end());
    }
  }
  EXPECT_GT(seeds_with_interlock, 0u) << "no interlocking across 8 seeds";
}

TEST(Splitter, ValidationCatchesTamperedPartition) {
  auto p = prepare("4mod5", 13);
  SplitPair bad = p.pair;
  ASSERT_FALSE(bad.second.gate_indices.empty());
  // Duplicate a gate into the first split -> partition violated.
  bad.first.gate_indices.push_back(bad.second.gate_indices.front());
  EXPECT_THROW(InterlockSplitter::validate(p.obf, bad), LockError);
}

TEST(Splitter, ValidationCatchesLeakedRandomGate) {
  auto p = prepare("rd53", 17);
  ASSERT_GE(p.obf.random.size(), 1u);
  SplitPair bad = p.pair;
  // Move an R gate from second into first.
  auto r_indices = p.obf.indices_of(GateOrigin::Random);
  std::size_t r0 = r_indices.front();
  auto it = std::find(bad.second.gate_indices.begin(),
                      bad.second.gate_indices.end(), r0);
  ASSERT_NE(it, bad.second.gate_indices.end());
  bad.second.gate_indices.erase(it);
  bad.first.gate_indices.push_back(r0);
  EXPECT_THROW(InterlockSplitter::validate(p.obf, bad), LockError);
}

/// Core correctness property, swept: structural recombination of the two
/// splits is functionally the original circuit.
class SplitterProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SplitterProperty, RecombinationRestoresFunction) {
  const auto& [name, seed] = GetParam();
  auto p = prepare(name, static_cast<std::uint64_t>(seed));
  if (p.obf.circuit.num_qubits() > 10) GTEST_SKIP() << "oracle too large";
  qir::Circuit recombined = InterlockSplitter::recombine_structural(
      p.pair, p.obf.circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, p.obf.original)) << name;
}

TEST_P(SplitterProperty, InvariantsHold) {
  const auto& [name, seed] = GetParam();
  auto p = prepare(name, static_cast<std::uint64_t>(seed));
  EXPECT_NO_THROW(InterlockSplitter::validate(p.obf, p.pair));
}

TEST_P(SplitterProperty, NeitherSplitIsWholeCircuit) {
  const auto& [name, seed] = GetParam();
  auto p = prepare(name, static_cast<std::uint64_t>(seed));
  if (p.obf.random.empty()) GTEST_SKIP() << "no insertion possible";
  EXPECT_FALSE(p.pair.first.gate_indices.empty());
  EXPECT_FALSE(p.pair.second.gate_indices.empty());
  EXPECT_LT(p.pair.first.gate_indices.size(), p.obf.circuit.size());
  EXPECT_LT(p.pair.second.gate_indices.size(), p.obf.circuit.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitterProperty,
    ::testing::Combine(::testing::ValuesIn(revlib::benchmark_names()),
                       ::testing::Values(1, 7, 2024)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Splitter, SplitsOftenHaveDifferentQubitCounts) {
  // The headline structural difference vs the cascade baseline (Fig. 3):
  // across seeds the two splits regularly differ in register width.
  int differing = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto p = prepare("rd53", seed);
    if (p.pair.first.circuit.num_qubits() !=
        p.pair.second.circuit.num_qubits()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(Splitter, SecondSplitAloneIsNotTheOriginal) {
  auto p = prepare("4mod5", 21);
  ASSERT_GE(p.obf.random.size(), 1u);
  // Expand split2 to the full register; it must NOT match the original —
  // this is exactly what the untrusted compiler holds.
  qir::Circuit second_only(p.obf.circuit.num_qubits());
  second_only.append_mapped(p.pair.second.circuit,
                            p.pair.second.local_to_orig);
  EXPECT_FALSE(sim::circuits_equivalent(second_only, p.obf.original));
}

}  // namespace
}  // namespace tetris::lock
