#include "compiler/coupling.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tetris::compiler {
namespace {

TEST(Coupling, LineDistances) {
  auto m = CouplingMap::line(5);
  EXPECT_EQ(m.num_qubits(), 5);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_FALSE(m.connected(0, 2));
  EXPECT_EQ(m.distance(0, 4), 4);
  EXPECT_EQ(m.distance(2, 2), 0);
  EXPECT_TRUE(m.is_connected());
}

TEST(Coupling, RingWrapsAround) {
  auto m = CouplingMap::ring(6);
  EXPECT_EQ(m.distance(0, 5), 1);
  EXPECT_EQ(m.distance(0, 3), 3);
  EXPECT_THROW(CouplingMap::ring(2), InvalidArgument);
}

TEST(Coupling, GridDistances) {
  auto m = CouplingMap::grid(3, 4);
  EXPECT_EQ(m.num_qubits(), 12);
  // Manhattan distance between corners.
  EXPECT_EQ(m.distance(0, 11), 5);
  EXPECT_TRUE(m.connected(0, 4));   // vertical neighbor
  EXPECT_TRUE(m.connected(0, 1));   // horizontal neighbor
  EXPECT_FALSE(m.connected(0, 5));  // diagonal
}

TEST(Coupling, StarCenter) {
  auto m = CouplingMap::star(5);
  EXPECT_EQ(m.degrees()[0], 4);
  EXPECT_EQ(m.distance(1, 2), 2);
}

TEST(Coupling, FullIsAllAdjacent) {
  auto m = CouplingMap::full(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_TRUE(m.connected(a, b));
      }
    }
  }
}

TEST(Coupling, ValenciaTopology) {
  auto m = CouplingMap::valencia();
  EXPECT_EQ(m.num_qubits(), 5);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_TRUE(m.connected(1, 2));
  EXPECT_TRUE(m.connected(1, 3));
  EXPECT_TRUE(m.connected(3, 4));
  EXPECT_FALSE(m.connected(0, 2));
  EXPECT_EQ(m.distance(2, 4), 3);
  EXPECT_EQ(m.degrees()[1], 3);
}

TEST(Coupling, ShortestPathEndsMatch) {
  auto m = CouplingMap::valencia();
  auto path = m.shortest_path(0, 4);
  ASSERT_EQ(path.size(), 4u);  // 0-1-3-4
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(m.connected(path[i], path[i + 1]));
  }
}

TEST(Coupling, SelfLoopRejected) {
  EXPECT_THROW(CouplingMap(2, {{0, 0}}), InvalidArgument);
}

TEST(Coupling, OutOfRangeEdgeRejected) {
  EXPECT_THROW(CouplingMap(2, {{0, 2}}), InvalidArgument);
}

TEST(Coupling, DisconnectedDetected) {
  CouplingMap m(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(m.is_connected());
  EXPECT_THROW(m.distance(0, 2), InvalidArgument);
}

TEST(Coupling, DuplicateEdgesDeduped) {
  CouplingMap m(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(m.neighbors(0).size(), 1u);
}

}  // namespace
}  // namespace tetris::compiler
