#include "sim/statevector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace tetris::sim {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(1, 0)), 0.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i]), 0.0, kTol);
  }
}

TEST(StateVector, WidthLimits) {
  EXPECT_NO_THROW(StateVector(0));
  EXPECT_THROW(StateVector(-1), InvalidArgument);
  EXPECT_THROW(StateVector(29), InvalidArgument);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(1));
  // little-endian: qubit 1 set -> index 2
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(s, 0)), 0.0, kTol);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  qir::Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 0.0, kTol);
}

TEST(StateVector, CxControlOff) {
  StateVector sv(2);
  sv.apply_gate(qir::make_cx(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, CxControlOn) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_cx(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, ToffoliTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_ccx(0, 1, 2));
    unsigned expected = input;
    if ((input & 1u) && (input & 2u)) expected ^= 4u;
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, McxTruthTable) {
  for (unsigned input = 0; input < 16; ++input) {
    StateVector sv(4);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_mcx({0, 1, 2}, 3));
    unsigned expected = input;
    if ((input & 7u) == 7u) expected ^= 8u;
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(0));    // |01> little-endian index 1
  sv.apply_gate(qir::make_swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, CswapTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_cswap(0, 1, 2));
    unsigned expected = input;
    if (input & 1u) {
      bool b1 = input & 2u, b2 = input & 4u;
      expected = (input & 1u) | (b2 ? 2u : 0u) | (b1 ? 4u : 0u);
    }
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, ZPhasesOne) {
  StateVector sv(1);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_z(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(-1, 0)), 0.0, kTol);
}

TEST(StateVector, SGateGivesI) {
  StateVector sv(1);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_s(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(0, 1)), 0.0, kTol);
}

TEST(StateVector, TSquaredIsS) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_h(0));
  a.apply_gate(qir::make_t(0));
  a.apply_gate(qir::make_t(0));
  b.apply_gate(qir::make_h(0));
  b.apply_gate(qir::make_s(0));
  EXPECT_NEAR(a.max_abs_diff(b), 0.0, kTol);
}

TEST(StateVector, SxSquaredIsX) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_sx(0));
  a.apply_gate(qir::make_sx(0));
  b.apply_gate(qir::make_x(0));
  // Global phase may differ; compare probabilities + fidelity.
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-10);
}

TEST(StateVector, RzIsDiagonalPhase) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  sv.apply_gate(qir::make_rz(M_PI / 2, 0));
  // RZ(pi/2) = diag(e^{-i pi/4}, e^{i pi/4}).
  const double s = 1.0 / std::sqrt(2.0);
  cplx expected0 = s * std::exp(cplx(0, -M_PI / 4));
  cplx expected1 = s * std::exp(cplx(0, M_PI / 4));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - expected0), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - expected1), 0.0, kTol);
}

TEST(StateVector, GateAdjointRoundTripsState) {
  // Apply G then G^dagger and recover the input for every 1q kind.
  using qir::GateKind;
  std::vector<qir::Gate> gates = {
      qir::make_x(0),  qir::make_y(0),    qir::make_z(0),  qir::make_h(0),
      qir::make_s(0),  qir::make_sdg(0),  qir::make_t(0),  qir::make_tdg(0),
      qir::make_sx(0), qir::make_sxdg(0), qir::make_rx(0.3, 0),
      qir::make_ry(-0.9, 0), qir::make_rz(1.7, 0), qir::make_p(0.4, 0)};
  for (const auto& g : gates) {
    StateVector sv(1);
    sv.apply_gate(qir::make_h(0));  // non-trivial input
    StateVector ref = sv;
    sv.apply_gate(g);
    sv.apply_gate(g.adjoint());
    EXPECT_NEAR(sv.max_abs_diff(ref), 0.0, 1e-10) << g.name();
  }
}

TEST(StateVector, PauliInjection) {
  StateVector sv(2);
  sv.apply_pauli('X', 1);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
  sv.apply_pauli('I', 0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
  EXPECT_THROW(sv.apply_pauli('Q', 0), InvalidArgument);
}

TEST(StateVector, ProbabilitiesSumToOne) {
  StateVector sv(3);
  qir::Circuit c(3);
  c.h(0).cx(0, 1).t(1).h(2).cx(2, 0);
  sv.apply_circuit(c);
  auto p = sv.probabilities();
  double sum = 0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(StateVector, SampleMatchesDistribution) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  Rng rng(17);
  int ones = 0;
  const int shots = 20000;
  for (int i = 0; i < shots; ++i) {
    ones += static_cast<int>(sv.sample(rng));
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, 0.5, 0.02);
}

TEST(StateVector, InnerAndFidelity) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_h(0));
  EXPECT_NEAR(std::abs(a.inner(b) - cplx(1.0 / std::sqrt(2.0), 0)), 0.0, kTol);
  EXPECT_NEAR(a.fidelity(b), 0.5, 1e-10);
  EXPECT_THROW(a.inner(StateVector(2)), InvalidArgument);
}

TEST(StateVector, NormalizeRestoresUnitNorm) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  // Simulate drift by re-normalizing (should be no-op for exact states).
  sv.normalize();
  auto p = sv.probabilities();
  EXPECT_NEAR(p[0] + p[1], 1.0, kTol);
}

TEST(StateVector, ApplyCircuitWidthGuard) {
  StateVector sv(1);
  qir::Circuit wide(3);
  wide.x(2);
  EXPECT_THROW(sv.apply_circuit(wide), InvalidArgument);
}

}  // namespace
}  // namespace tetris::sim
