#include "sim/statevector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "sim/fusion.h"

namespace tetris::sim {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(1, 0)), 0.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i]), 0.0, kTol);
  }
}

TEST(StateVector, WidthLimits) {
  EXPECT_NO_THROW(StateVector(0));
  EXPECT_THROW(StateVector(-1), InvalidArgument);
  EXPECT_THROW(StateVector(29), InvalidArgument);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(1));
  // little-endian: qubit 1 set -> index 2
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(s, 0)), 0.0, kTol);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  qir::Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - cplx(s, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 0.0, kTol);
}

TEST(StateVector, CxControlOff) {
  StateVector sv(2);
  sv.apply_gate(qir::make_cx(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, CxControlOn) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_cx(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, ToffoliTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_ccx(0, 1, 2));
    unsigned expected = input;
    if ((input & 1u) && (input & 2u)) expected ^= 4u;
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, McxTruthTable) {
  for (unsigned input = 0; input < 16; ++input) {
    StateVector sv(4);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_mcx({0, 1, 2}, 3));
    unsigned expected = input;
    if ((input & 7u) == 7u) expected ^= 8u;
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.apply_gate(qir::make_x(0));    // |01> little-endian index 1
  sv.apply_gate(qir::make_swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
}

TEST(StateVector, CswapTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    sv.set_basis_state(input);
    sv.apply_gate(qir::make_cswap(0, 1, 2));
    unsigned expected = input;
    if (input & 1u) {
      bool b1 = input & 2u, b2 = input & 4u;
      expected = (input & 1u) | (b2 ? 2u : 0u) | (b1 ? 4u : 0u);
    }
    EXPECT_NEAR(std::abs(sv.amplitudes()[expected] - cplx(1, 0)), 0.0, kTol)
        << "input=" << input;
  }
}

TEST(StateVector, ZPhasesOne) {
  StateVector sv(1);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_z(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(-1, 0)), 0.0, kTol);
}

TEST(StateVector, SGateGivesI) {
  StateVector sv(1);
  sv.apply_gate(qir::make_x(0));
  sv.apply_gate(qir::make_s(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(0, 1)), 0.0, kTol);
}

TEST(StateVector, TSquaredIsS) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_h(0));
  a.apply_gate(qir::make_t(0));
  a.apply_gate(qir::make_t(0));
  b.apply_gate(qir::make_h(0));
  b.apply_gate(qir::make_s(0));
  EXPECT_NEAR(a.max_abs_diff(b), 0.0, kTol);
}

TEST(StateVector, SxSquaredIsX) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_sx(0));
  a.apply_gate(qir::make_sx(0));
  b.apply_gate(qir::make_x(0));
  // Global phase may differ; compare probabilities + fidelity.
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-10);
}

TEST(StateVector, RzIsDiagonalPhase) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  sv.apply_gate(qir::make_rz(M_PI / 2, 0));
  // RZ(pi/2) = diag(e^{-i pi/4}, e^{i pi/4}).
  const double s = 1.0 / std::sqrt(2.0);
  cplx expected0 = s * std::exp(cplx(0, -M_PI / 4));
  cplx expected1 = s * std::exp(cplx(0, M_PI / 4));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - expected0), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - expected1), 0.0, kTol);
}

TEST(StateVector, GateAdjointRoundTripsState) {
  // Apply G then G^dagger and recover the input for every 1q kind.
  using qir::GateKind;
  std::vector<qir::Gate> gates = {
      qir::make_x(0),  qir::make_y(0),    qir::make_z(0),  qir::make_h(0),
      qir::make_s(0),  qir::make_sdg(0),  qir::make_t(0),  qir::make_tdg(0),
      qir::make_sx(0), qir::make_sxdg(0), qir::make_rx(0.3, 0),
      qir::make_ry(-0.9, 0), qir::make_rz(1.7, 0), qir::make_p(0.4, 0)};
  for (const auto& g : gates) {
    StateVector sv(1);
    sv.apply_gate(qir::make_h(0));  // non-trivial input
    StateVector ref = sv;
    sv.apply_gate(g);
    sv.apply_gate(g.adjoint());
    EXPECT_NEAR(sv.max_abs_diff(ref), 0.0, 1e-10) << g.name();
  }
}

TEST(StateVector, PauliInjection) {
  StateVector sv(2);
  sv.apply_pauli('X', 1);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
  sv.apply_pauli('I', 0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2] - cplx(1, 0)), 0.0, kTol);
  EXPECT_THROW(sv.apply_pauli('Q', 0), InvalidArgument);
}

TEST(StateVector, ProbabilitiesSumToOne) {
  StateVector sv(3);
  qir::Circuit c(3);
  c.h(0).cx(0, 1).t(1).h(2).cx(2, 0);
  sv.apply_circuit(c);
  auto p = sv.probabilities();
  double sum = 0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(StateVector, SampleMatchesDistribution) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  Rng rng(17);
  int ones = 0;
  const int shots = 20000;
  for (int i = 0; i < shots; ++i) {
    ones += static_cast<int>(sv.sample(rng));
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, 0.5, 0.02);
}

TEST(StateVector, InnerAndFidelity) {
  StateVector a(1), b(1);
  a.apply_gate(qir::make_h(0));
  EXPECT_NEAR(std::abs(a.inner(b) - cplx(1.0 / std::sqrt(2.0), 0)), 0.0, kTol);
  EXPECT_NEAR(a.fidelity(b), 0.5, 1e-10);
  EXPECT_THROW(a.inner(StateVector(2)), InvalidArgument);
}

TEST(StateVector, NormalizeRestoresUnitNorm) {
  StateVector sv(1);
  sv.apply_gate(qir::make_h(0));
  // Simulate drift by re-normalizing (should be no-op for exact states).
  sv.normalize();
  auto p = sv.probabilities();
  EXPECT_NEAR(p[0] + p[1], 1.0, kTol);
}

TEST(StateVector, ApplyCircuitWidthGuard) {
  StateVector sv(1);
  qir::Circuit wide(3);
  wide.x(2);
  EXPECT_THROW(sv.apply_circuit(wide), InvalidArgument);
}

// ------------------------------------------------------- apply_two_qubit

/// Prepares a non-trivial product+entangled state on `n` qubits.
StateVector scrambled_state(int n, std::uint64_t seed) {
  StateVector sv(n);
  Rng rng(seed);
  for (int q = 0; q < n; ++q) {
    sv.apply_gate(qir::make_h(q));
    sv.apply_gate(qir::make_rz(rng.uniform() * 3.0, q));
  }
  for (int q = 0; q + 1 < n; ++q) sv.apply_gate(qir::make_cx(q, q + 1));
  return sv;
}

/// out = lhs * rhs for the 4x4 local matrices of apply_two_qubit.
void matmul4(const cplx lhs[4][4], const cplx rhs[4][4], cplx out[4][4]) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < 4; ++k) acc += lhs[r][k] * rhs[k][c];
      out[r][c] = acc;
    }
  }
}

TEST(ApplyTwoQubit, MatchesGateKernelsOnAdjacentAndNonAdjacentPairs) {
  // Every 2q kind, on an adjacent pair, a non-adjacent pair, and with the
  // (a, b) roles swapped — the matrix convention must track the argument
  // order, not the wire order.
  const std::vector<qir::Gate> gates = {
      qir::make_cx(0, 1),       qir::make_cx(1, 0),
      qir::make_cz(0, 2),       qir::make_cy(2, 0),
      qir::make_ch(1, 3),       qir::make_cp(0.8, 3, 1),
      qir::make_crz(1.1, 0, 3), qir::make_swap(1, 2)};
  for (const auto& g : gates) {
    const int a = g.qubits[0];
    const int b = g.qubits[1];
    cplx m[4][4];
    two_qubit_matrix(g, a, b, m);

    StateVector via_matrix = scrambled_state(4, 5);
    StateVector via_gate = scrambled_state(4, 5);
    via_matrix.apply_two_qubit(m, a, b);
    via_gate.apply_gate(g);
    EXPECT_LT(via_matrix.max_abs_diff(via_gate), 1e-12) << g.to_string();

    // Same matrix addressed with swapped (a, b) arguments must equal the
    // gate embedded with swapped roles.
    cplx swapped[4][4];
    two_qubit_matrix(g, b, a, swapped);
    StateVector via_swapped = scrambled_state(4, 5);
    via_swapped.apply_two_qubit(swapped, b, a);
    EXPECT_LT(via_swapped.max_abs_diff(via_gate), 1e-12) << g.to_string();
  }
}

TEST(ApplyTwoQubit, HighAndLowBitOrderings) {
  // a above b and b above a, including the top wire, on a 5-qubit register.
  for (auto [a, b] : std::vector<std::pair<int, int>>{{4, 0}, {0, 4}, {3, 1}}) {
    auto g = qir::make_cx(a, b);
    cplx m[4][4];
    two_qubit_matrix(g, a, b, m);
    StateVector via_matrix = scrambled_state(5, 9);
    StateVector via_gate = scrambled_state(5, 9);
    via_matrix.apply_two_qubit(m, a, b);
    via_gate.apply_gate(g);
    EXPECT_LT(via_matrix.max_abs_diff(via_gate), 1e-12)
        << "a=" << a << " b=" << b;
  }
}

TEST(ApplyTwoQubit, ProductMatrixEqualsTwoGateDecomposition) {
  // m = U_h(b) * U_cz: one fused 4x4 application == cz then h(b), the
  // textbook two-gate decomposition check.
  const int a = 2, b = 0;
  cplx m_cz[4][4], m_h[4][4], m[4][4];
  two_qubit_matrix(qir::make_cz(a, b), a, b, m_cz);
  two_qubit_matrix(qir::make_h(b), a, b, m_h);
  matmul4(m_h, m_cz, m);

  StateVector fused = scrambled_state(3, 21);
  StateVector stepwise = scrambled_state(3, 21);
  fused.apply_two_qubit(m, a, b);
  stepwise.apply_gate(qir::make_cz(a, b));
  stepwise.apply_gate(qir::make_h(b));
  EXPECT_LT(fused.max_abs_diff(stepwise), 1e-12);
}

TEST(ApplyTwoQubit, ParallelMatchesSerialAboveThreshold) {
  cplx m[4][4];
  two_qubit_matrix(qir::make_cx(6, 2), 6, 2, m);

  StateVector serial = scrambled_state(9, 33);
  serial.set_parallel_threshold(10);  // pin serial
  StateVector parallel = scrambled_state(9, 33);
  runtime::ThreadPool::set_global_threads(4);
  parallel.set_parallel_threshold(0);  // force parallel kernels
  parallel.set_parallel_grain(8);      // force real multi-chunk sweeps

  serial.apply_two_qubit(m, 6, 2);
  parallel.apply_two_qubit(m, 6, 2);
  EXPECT_EQ(parallel.max_abs_diff(serial), 0.0);  // bit-identical
  runtime::ThreadPool::set_global_threads(0);
}

TEST(ApplyTwoQubit, ValidatesItsArguments) {
  StateVector sv(3);
  cplx m[4][4] = {};
  for (int i = 0; i < 4; ++i) m[i][i] = 1.0;
  EXPECT_THROW(sv.apply_two_qubit(m, 1, 1), InvalidArgument);
  EXPECT_THROW(sv.apply_two_qubit(m, 0, 3), InvalidArgument);
  EXPECT_THROW(sv.apply_two_qubit(m, -1, 2), InvalidArgument);
  EXPECT_NO_THROW(sv.apply_two_qubit(m, 2, 0));
}

TEST(ApplyMatrix, MatchesNamedKind) {
  cplx m[2][2];
  single_qubit_matrix(qir::GateKind::H, {}, m);
  StateVector via_matrix(2), via_gate(2);
  via_matrix.apply_matrix(m, 1);
  via_gate.apply_gate(qir::make_h(1));
  EXPECT_EQ(via_matrix.max_abs_diff(via_gate), 0.0);
  EXPECT_THROW(via_matrix.apply_matrix(m, 2), InvalidArgument);
}

}  // namespace
}  // namespace tetris::sim
