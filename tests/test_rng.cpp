#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tetris {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(Rng, IndexCoversFullRange) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(11);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ChoiceReturnsMember) {
  Rng rng(5);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int c = rng.choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(Rng, ChoiceRejectsEmpty) {
  Rng rng(5);
  std::vector<int> v;
  EXPECT_THROW(rng.choice(v), InvalidArgument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  double frac1 = static_cast<double>(counts[1]) / n;
  EXPECT_NEAR(frac1, 0.25, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(23);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), InvalidArgument);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), InvalidArgument);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace tetris
