#include "compiler/optimize.h"

#include <gtest/gtest.h>

#include "sim/unitary.h"

namespace tetris::compiler {
namespace {

TEST(Optimize, CancelsAdjacentSelfInversePairs) {
  qir::Circuit c(2);
  c.x(0).x(0).cx(0, 1).cx(0, 1).h(1).h(1);
  OptimizeStats stats;
  qir::Circuit out = optimize(c, &stats);
  EXPECT_EQ(out.gate_count(), 0u);
  EXPECT_EQ(stats.cancelled_pairs, 3u);
}

TEST(Optimize, CancelsDaggerPairs) {
  qir::Circuit c(1);
  c.s(0).sdg(0).t(0).tdg(0).sx(0).sxdg(0);
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimize, CancelsOppositeRotations) {
  qir::Circuit c(1);
  c.rz(0.7, 0).rz(-0.7, 0);
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimize, MergesRotations) {
  qir::Circuit c(1);
  c.rz(0.25, 0).rz(0.5, 0);
  OptimizeStats stats;
  qir::Circuit out = optimize(c, &stats);
  ASSERT_EQ(out.gate_count(), 1u);
  EXPECT_NEAR(out.gate(0).params[0], 0.75, 1e-12);
  EXPECT_EQ(stats.merged_rotations, 1u);
}

TEST(Optimize, MergedFullTurnDisappears) {
  qir::Circuit c(1);
  c.rz(M_PI, 0).rz(M_PI, 0);  // 2*pi total
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimize, DropsIdentities) {
  qir::Circuit c(2);
  c.id(0).rz(0.0, 1).x(0);
  OptimizeStats stats;
  qir::Circuit out = optimize(c, &stats);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_EQ(stats.dropped_identities, 2u);
}

TEST(Optimize, InterveningGateBlocksCancellation) {
  qir::Circuit c(2);
  c.x(0).cx(0, 1).x(0);  // CX touches q0 between the two X's
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 3u);
}

TEST(Optimize, DisjointGateDoesNotBlock) {
  qir::Circuit c(2);
  c.x(0).x(1).x(0);  // x(1) shares no wire with the X pair on q0
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_EQ(out.gate(0).qubits[0], 1);
}

TEST(Optimize, CxDirectionMatters) {
  qir::Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 2u);  // not inverses of each other
}

TEST(Optimize, CascadingCancellation) {
  // Removing the inner pair exposes the outer pair; needs the fixpoint loop.
  qir::Circuit c(1);
  c.h(0).x(0).x(0).h(0);
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimize, SwapChainCollapses) {
  qir::Circuit c(2);
  c.swap(0, 1).swap(0, 1);
  qir::Circuit out = optimize(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimize, PreservesSemantics) {
  qir::Circuit c(3);
  c.h(0).t(0).tdg(0).cx(0, 1).x(2).x(2).cx(0, 1).rz(0.3, 1).rz(0.4, 1)
      .ccx(0, 1, 2).s(0);
  qir::Circuit out = optimize(c);
  EXPECT_LT(out.gate_count(), c.gate_count());
  EXPECT_TRUE(sim::circuits_equivalent(out, c));
}

TEST(Optimize, BarrierSurvives) {
  qir::Circuit c(2);
  c.x(0).barrier().x(0);
  qir::Circuit out = optimize(c);
  // Conservative: the barrier blocks nothing wire-wise in our model, but it
  // must not be deleted.
  bool has_barrier = false;
  for (const auto& g : out.gates()) {
    has_barrier = has_barrier || g.kind == qir::GateKind::Barrier;
  }
  EXPECT_TRUE(has_barrier);
}

TEST(Optimize, NoOpOnIrreducible) {
  qir::Circuit c(2);
  c.h(0).cx(0, 1).t(1);
  qir::Circuit out = optimize(c);
  EXPECT_TRUE(out == c);
}

}  // namespace
}  // namespace tetris::compiler
