#include "revlib/benchmarks.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "qir/layers.h"
#include "revlib/real_format.h"
#include "sim/sampler.h"

namespace tetris::revlib {
namespace {

/// Table-I pins: each reconstruction must match the paper's size stats.
class BenchmarkShape : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkShape, MatchesTable1Statistics) {
  const Benchmark& b = get_benchmark(GetParam());
  EXPECT_EQ(static_cast<int>(b.circuit.gate_count()), b.expected_gates);
  EXPECT_EQ(b.circuit.depth(), b.expected_depth);
}

TEST_P(BenchmarkShape, IsClassicalReversible) {
  const Benchmark& b = get_benchmark(GetParam());
  EXPECT_TRUE(b.circuit.is_classical());
}

TEST_P(BenchmarkShape, MeasuredQubitsInRange) {
  const Benchmark& b = get_benchmark(GetParam());
  EXPECT_FALSE(b.measured.empty());
  for (int q : b.measured) {
    EXPECT_GE(q, 0);
    EXPECT_LT(q, b.circuit.num_qubits());
  }
}

TEST_P(BenchmarkShape, HasDeterministicOutcome) {
  const Benchmark& b = get_benchmark(GetParam());
  EXPECT_NO_THROW(sim::classical_outcome(b.circuit, b.measured));
}

TEST_P(BenchmarkShape, HasLeadingSlackForInsertion) {
  // Algorithm 1 needs at least one qubit with >= 2 leading idle layers to
  // host an X + X^-1 pair without depth growth.
  const Benchmark& b = get_benchmark(GetParam());
  qir::LayerSchedule sched(b.circuit);
  int best = 0;
  for (int q = 0; q < b.circuit.num_qubits(); ++q) {
    best = std::max(best, sched.leading_capacity(q));
  }
  EXPECT_GE(best, 2) << b.name;
}

TEST_P(BenchmarkShape, SerializesToRealFormat) {
  const Benchmark& b = get_benchmark(GetParam());
  auto round = from_real(to_real(b.circuit));
  EXPECT_EQ(round.gate_count(), b.circuit.gate_count());
  EXPECT_EQ(round.depth(), b.circuit.depth());
}

INSTANTIATE_TEST_SUITE_P(Table1, BenchmarkShape,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Benchmarks, TableHasEightEntriesInPaperOrder) {
  auto names = benchmark_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "mini_alu");
  EXPECT_EQ(names[1], "4mod5");
  EXPECT_EQ(names[2], "1bit_adder");
  EXPECT_EQ(names[3], "4gt11");
  EXPECT_EQ(names[4], "4gt13");
  EXPECT_EQ(names[5], "rd53");
  EXPECT_EQ(names[6], "rd73");
  EXPECT_EQ(names[7], "rd84");
}

TEST(Benchmarks, QubitCountsSpanPaperRange) {
  EXPECT_EQ(get_benchmark("1bit_adder").circuit.num_qubits(), 4);
  EXPECT_EQ(get_benchmark("4mod5").circuit.num_qubits(), 5);
  EXPECT_EQ(get_benchmark("rd53").circuit.num_qubits(), 7);
  EXPECT_EQ(get_benchmark("rd73").circuit.num_qubits(), 10);
  EXPECT_EQ(get_benchmark("rd84").circuit.num_qubits(), 12);
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(get_benchmark("nonexistent"), InvalidArgument);
}

TEST(Benchmarks, GateCountRangeMatchesPaperClaim) {
  // "number of gates ranging from 4 to 32"
  for (const auto& b : table1_benchmarks()) {
    EXPECT_GE(b.expected_gates, 4);
    EXPECT_LE(b.expected_gates, 32);
  }
}

}  // namespace
}  // namespace tetris::revlib
