#include "lock/multisplit.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "revlib/benchmarks.h"
#include "sim/sampler.h"
#include "sim/unitary.h"

namespace tetris::lock {
namespace {

ObfuscatedCircuit obfuscate(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  Obfuscator obfuscator;
  return obfuscator.obfuscate(revlib::get_benchmark(name).circuit, rng);
}

TEST(MultiSplit, TwoWayDegeneratesToPairSplit) {
  auto obf = obfuscate("rd53", 3);
  Rng rng(7);
  auto split = multi_split(obf, 2, rng);
  ASSERT_EQ(split.segments.size(), 2u);
  EXPECT_NO_THROW(validate_multi_split(obf, split));
}

TEST(MultiSplit, RequestedSegmentCount) {
  auto obf = obfuscate("rd53", 3);
  for (int k : {3, 4, 5}) {
    Rng rng(static_cast<std::uint64_t>(k));
    auto split = multi_split(obf, k, rng);
    EXPECT_EQ(split.segments.size(), static_cast<std::size_t>(k));
  }
}

TEST(MultiSplit, Validation) {
  auto obf = obfuscate("4mod5", 5);
  Rng rng(1);
  EXPECT_THROW(multi_split(obf, 1, rng), InvalidArgument);
  // Far more segments than layers must fail cleanly.
  EXPECT_THROW(multi_split(obf, 50, rng), InvalidArgument);
}

TEST(MultiSplit, SegmentsHaveVaryingWidths) {
  auto obf = obfuscate("rd84", 3);
  Rng rng(11);
  auto split = multi_split(obf, 4, rng);
  std::set<int> widths;
  for (const auto& seg : split.segments) {
    widths.insert(seg.circuit.num_qubits());
  }
  EXPECT_GE(widths.size(), 2u) << "all segments had identical qubit counts";
}

TEST(MultiSplit, TamperedPartitionDetected) {
  auto obf = obfuscate("rd53", 9);
  Rng rng(2);
  auto split = multi_split(obf, 3, rng);
  auto bad = split;
  ASSERT_FALSE(bad.segments[2].gate_indices.empty());
  bad.segments[1].gate_indices.push_back(bad.segments[2].gate_indices.front());
  EXPECT_THROW(validate_multi_split(obf, bad), LockError);
}

class MultiSplitProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(MultiSplitProperty, StructuralRecombinationRestoresFunction) {
  const auto& [name, k] = GetParam();
  auto obf = obfuscate(name, 17);
  Rng rng(23);
  auto split = multi_split(obf, k, rng);
  if (obf.circuit.num_qubits() > 10) GTEST_SKIP() << "oracle too large";
  auto recombined =
      multi_recombine_structural(split, obf.circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, obf.original));
}

TEST_P(MultiSplitProperty, StagedCompilationRestoresFunction) {
  const auto& [name, k] = GetParam();
  const auto& b = revlib::get_benchmark(name);
  auto obf = obfuscate(name, 29);
  Rng rng(31);
  auto split = multi_split(obf, k, rng);

  auto target = compiler::device_for(b.circuit.num_qubits());
  target.noise = sim::NoiseModel::ideal();
  compiler::CompileOptions options(target);
  auto recombined =
      multi_deobfuscate(split, b.circuit.num_qubits(), options);

  std::vector<int> all(static_cast<std::size_t>(b.circuit.num_qubits()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  std::string expected = sim::classical_outcome(b.circuit, all);

  std::vector<int> phys;
  for (int o : all) {
    phys.push_back(recombined.orig_to_phys[static_cast<std::size_t>(o)]);
  }
  Rng sample_rng(1);
  sim::SampleOptions opts;
  opts.shots = 16;
  opts.measured = phys;
  auto counts =
      sim::sample(recombined.circuit, sim::NoiseModel::ideal(), sample_rng, opts);
  EXPECT_EQ(counts.count(expected), opts.shots)
      << name << " k=" << k << " got " << counts.mode();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiSplitProperty,
    ::testing::Combine(::testing::Values("4gt11", "rd53", "rd73", "rd84"),
                       ::testing::Values(2, 3, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MultiSplit, OrigToPhysInjectiveAfterStagedCompile) {
  const auto& b = revlib::get_benchmark("rd73");
  auto obf = obfuscate("rd73", 41);
  Rng rng(43);
  auto split = multi_split(obf, 3, rng);
  auto target = compiler::device_for(b.circuit.num_qubits());
  compiler::CompileOptions options(target);
  auto recombined = multi_deobfuscate(split, b.circuit.num_qubits(), options);
  std::set<int> seen;
  for (int p : recombined.orig_to_phys) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, target.num_qubits());
    EXPECT_TRUE(seen.insert(p).second);
  }
}

}  // namespace
}  // namespace tetris::lock
