#include "qir/layers.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tetris::qir {
namespace {

TEST(Layers, EmptyCircuit) {
  Circuit c(3);
  LayerSchedule s(c);
  EXPECT_EQ(s.num_layers(), 0);
  EXPECT_EQ(s.num_qubits(), 3);
  EXPECT_EQ(s.first_use(0), 0);   // == num_layers for never-used
  EXPECT_EQ(s.last_use(0), -1);
  EXPECT_TRUE(s.empty_slots().empty());
}

TEST(Layers, AsapAssignment) {
  Circuit c(3);
  c.x(0)        // layer 0
      .cx(0, 1) // layer 1
      .x(2)     // layer 0 (parallel)
      .cx(1, 2) // layer 2
      .x(0);    // layer 2 (q0 free after layer 1)
  LayerSchedule s(c);
  EXPECT_EQ(s.num_layers(), 3);
  EXPECT_EQ(s.layer_of(0), 0);
  EXPECT_EQ(s.layer_of(1), 1);
  EXPECT_EQ(s.layer_of(2), 0);
  EXPECT_EQ(s.layer_of(3), 2);
  EXPECT_EQ(s.layer_of(4), 2);
}

TEST(Layers, DepthMatchesCircuitDepth) {
  Circuit c(4);
  c.ccx(0, 1, 3).cx(0, 1).ccx(1, 2, 3).x(0).cx(1, 2).x(3).cx(0, 1);
  LayerSchedule s(c);
  EXPECT_EQ(s.num_layers(), c.depth());
}

TEST(Layers, BusyGrid) {
  Circuit c(3);
  c.cx(0, 1).x(2);
  LayerSchedule s(c);
  EXPECT_TRUE(s.busy(0, 0));
  EXPECT_TRUE(s.busy(0, 1));
  EXPECT_TRUE(s.busy(0, 2));
  EXPECT_THROW(s.busy(1, 0), InvalidArgument);
  EXPECT_THROW(s.busy(0, 3), InvalidArgument);
}

TEST(Layers, EmptySlotsSortedAndComplete) {
  Circuit c(3);
  c.x(0).cx(0, 1);  // layers: 0 busy q0; 1 busy q0,q1
  LayerSchedule s(c);
  auto slots = s.empty_slots();
  // layer0: q1,q2 free; layer1: q2 free.
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0], (Slot{0, 1}));
  EXPECT_EQ(slots[1], (Slot{0, 2}));
  EXPECT_EQ(slots[2], (Slot{1, 2}));
  EXPECT_EQ(s.total_slack(), 3u);
}

TEST(Layers, EmptyQubitsInLayer) {
  Circuit c(4);
  c.cx(0, 1).x(0);
  LayerSchedule s(c);
  EXPECT_EQ(s.empty_qubits_in_layer(0), (std::vector<int>{2, 3}));
  EXPECT_EQ(s.empty_qubits_in_layer(1), (std::vector<int>{1, 2, 3}));
}

TEST(Layers, FirstAndLastUse) {
  Circuit c(4);
  c.x(0)          // q0: layer 0
      .cx(0, 1)   // q1 first at layer 1
      .cx(1, 2);  // q2 first at layer 2
  LayerSchedule s(c);
  EXPECT_EQ(s.first_use(0), 0);
  EXPECT_EQ(s.first_use(1), 1);
  EXPECT_EQ(s.first_use(2), 2);
  EXPECT_EQ(s.first_use(3), 3);  // never used -> num_layers
  EXPECT_EQ(s.last_use(0), 1);
  EXPECT_EQ(s.last_use(3), -1);
  EXPECT_EQ(s.leading_capacity(2), 2);
  EXPECT_EQ(s.leading_capacity(3), 3);
}

TEST(Layers, GatesInLayerPreservesOrder) {
  Circuit c(4);
  c.x(0).x(1).cx(0, 1).x(2);
  LayerSchedule s(c);
  EXPECT_EQ(s.gates_in_layer(0), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(s.gates_in_layer(1), (std::vector<std::size_t>{2}));
  EXPECT_THROW(s.gates_in_layer(2), InvalidArgument);
}

TEST(Layers, BarrierForcesNewLayer) {
  Circuit c(2);
  c.x(0).barrier().x(1);
  LayerSchedule s(c);
  EXPECT_EQ(s.num_layers(), 2);
  // x(1) is pushed behind the barrier even though q1 was idle at layer 0.
  EXPECT_EQ(s.layer_of(2), 1);
}

}  // namespace
}  // namespace tetris::qir
