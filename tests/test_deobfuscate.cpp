#include "lock/deobfuscate.h"

#include <gtest/gtest.h>

#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "revlib/benchmarks.h"
#include "sim/sampler.h"
#include "test_util.h"

namespace tetris::lock {
namespace {

struct FullRun {
  ObfuscatedCircuit obf;
  SplitPair pair;
  RecombinedCircuit recombined;
};

FullRun run_benchmark(const std::string& name, std::uint64_t seed,
                      const compiler::Target& target) {
  Rng rng(seed);
  FullRun out;
  Obfuscator obfuscator;
  out.obf = obfuscator.obfuscate(revlib::get_benchmark(name).circuit, rng);
  InterlockSplitter splitter;
  out.pair = splitter.split(out.obf, rng);

  compiler::CompileOptions first{target, compiler::LayoutStrategy::GreedyDegree,
                                 true, std::nullopt};
  compiler::CompileOptions second{target, compiler::LayoutStrategy::Trivial,
                                  true, std::nullopt};
  Deobfuscator deob;
  out.recombined =
      deob.run(out.pair, out.obf.circuit.num_qubits(), first, second);
  return out;
}

/// The decisive end-to-end check: simulate the recombined *compiled* circuit
/// noiselessly and compare the measured original-qubit outcome with the
/// original circuit's deterministic outcome.
void expect_restores_function(const std::string& name, std::uint64_t seed) {
  const auto& b = revlib::get_benchmark(name);
  auto target = compiler::device_for(b.circuit.num_qubits());
  target.noise = sim::NoiseModel::ideal();
  auto run = run_benchmark(name, seed, target);

  std::vector<int> all(static_cast<std::size_t>(b.circuit.num_qubits()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  std::string expected = sim::classical_outcome(b.circuit, all);

  std::vector<int> phys_measured;
  for (int o : all) {
    phys_measured.push_back(
        run.recombined.orig_to_phys[static_cast<std::size_t>(o)]);
  }
  Rng rng(seed + 1);
  sim::SampleOptions opts;
  opts.shots = 32;
  opts.measured = phys_measured;
  auto counts =
      sim::sample(run.recombined.circuit, sim::NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count(expected), opts.shots)
      << name << " seed " << seed << ": got " << counts.mode();
}

class DeobfuscateProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DeobfuscateProperty, RecombinedCompiledCircuitRestoresFunction) {
  const auto& [name, seed] = GetParam();
  expect_restores_function(name, static_cast<std::uint64_t>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeobfuscateProperty,
    ::testing::Combine(::testing::ValuesIn(revlib::benchmark_names()),
                       ::testing::Values(1, 9, 77)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Deobfuscate, OrigToPhysIsInjective) {
  const auto& b = revlib::get_benchmark("rd53");
  auto target = compiler::device_for(b.circuit.num_qubits());
  auto run = run_benchmark("rd53", 5, target);
  std::set<int> seen;
  for (int p : run.recombined.orig_to_phys) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, target.num_qubits());
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(Deobfuscate, SecondCompileIsPinnedToFirstFinalLayout) {
  const auto& b = revlib::get_benchmark("4gt11");
  auto target = compiler::device_for(b.circuit.num_qubits());
  auto run = run_benchmark("4gt11", 3, target);
  // For each original qubit in both splits, split2's initial wire must equal
  // split1's final wire.
  for (std::size_t l1 = 0; l1 < run.recombined.first.local_to_orig.size();
       ++l1) {
    int o = run.recombined.first.local_to_orig[l1];
    int l2 = run.pair.second.orig_to_local(o);
    if (l2 < 0) continue;
    EXPECT_EQ(run.recombined.second.result.initial_layout[static_cast<std::size_t>(l2)],
              run.recombined.first.result.final_layout[l1]);
  }
}

TEST(Deobfuscate, MismatchedTargetsRejected) {
  auto run_bad = [] {
    Rng rng(1);
    Obfuscator obfuscator;
    auto obf = obfuscator.obfuscate(revlib::build_4mod5(), rng);
    InterlockSplitter splitter;
    auto pair = splitter.split(obf, rng);
    compiler::CompileOptions first{compiler::line_device(5),
                                   compiler::LayoutStrategy::Trivial, true,
                                   std::nullopt};
    compiler::CompileOptions second{compiler::line_device(6),
                                    compiler::LayoutStrategy::Trivial, true,
                                    std::nullopt};
    Deobfuscator deob;
    deob.run(pair, 5, first, second);
  };
  EXPECT_THROW(run_bad(), InvalidArgument);
}

TEST(Deobfuscate, CompiledSplitsStayInBasisAndOnDevice) {
  const auto& b = revlib::get_benchmark("rd73");
  auto target = compiler::device_for(b.circuit.num_qubits());
  auto run = run_benchmark("rd73", 7, target);
  for (const auto* cs : {&run.recombined.first, &run.recombined.second}) {
    for (const auto& g : cs->result.circuit.gates()) {
      EXPECT_TRUE(target.in_basis(g.kind)) << g.name();
    }
  }
  EXPECT_EQ(run.recombined.circuit.num_qubits(), target.num_qubits());
}

}  // namespace
}  // namespace tetris::lock
