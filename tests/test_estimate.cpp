#include "sim/estimate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/target.h"
#include "metrics/metrics.h"
#include "revlib/benchmarks.h"
#include "sim/sampler.h"

namespace tetris::sim {
namespace {

TEST(Estimate, IdealNoiseGivesOne) {
  qir::Circuit c(3);
  c.x(0).cx(0, 1).ccx(0, 1, 2);
  auto e = estimate_accuracy(c, NoiseModel::ideal(), 3);
  EXPECT_DOUBLE_EQ(e.estimate, 1.0);
  EXPECT_DOUBLE_EQ(e.p_no_gate_error, 1.0);
  EXPECT_DOUBLE_EQ(e.expected_gate_errors, 0.0);
}

TEST(Estimate, HandComputedCase) {
  qir::Circuit c(2);
  c.x(0).cx(0, 1);  // one 1q, one 2q gate
  NoiseModel nm;
  nm.p1 = 0.1;
  nm.p2 = 0.2;
  nm.readout = 0.5;
  auto e = estimate_accuracy(c, nm, 1, /*error_miss_rate=*/1.0);
  EXPECT_NEAR(e.p_no_gate_error, 0.9 * 0.8, 1e-12);
  EXPECT_NEAR(e.p_clean_readout, 0.5, 1e-12);
  EXPECT_NEAR(e.estimate, 0.9 * 0.8 * 0.5, 1e-12);
  EXPECT_NEAR(e.expected_gate_errors, 0.3, 1e-12);
}

TEST(Estimate, MonotoneInNoise) {
  qir::Circuit c(2);
  for (int i = 0; i < 10; ++i) c.cx(0, 1);
  double prev = 1.1;
  for (double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    auto nm = NoiseModel::fake_valencia().scaled(scale);
    double est = estimate_accuracy(c, nm, 2).estimate;
    EXPECT_LT(est, prev);
    prev = est;
  }
}

TEST(Estimate, Validation) {
  qir::Circuit c(1);
  EXPECT_THROW(estimate_accuracy(c, NoiseModel::ideal(), -1), InvalidArgument);
  EXPECT_THROW(estimate_accuracy(c, NoiseModel::ideal(), 1, 1.5),
               InvalidArgument);
}

TEST(ShotSizing, StandardErrorMatchesBinomialFormula) {
  EXPECT_NEAR(accuracy_standard_error(0.5, 1000),
              std::sqrt(0.25 / 1000.0), 1e-15);
  EXPECT_NEAR(accuracy_standard_error(0.9, 4000),
              std::sqrt(0.09 / 4000.0), 1e-15);
  // Degenerate accuracies have no sampling variance at all.
  EXPECT_DOUBLE_EQ(accuracy_standard_error(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(accuracy_standard_error(1.0, 100), 0.0);
  // Quadrupling the shots halves the error bar.
  EXPECT_NEAR(accuracy_standard_error(0.7, 4000),
              accuracy_standard_error(0.7, 1000) / 2.0, 1e-15);
}

TEST(ShotSizing, ShotsForTargetInvertsTheFormula) {
  EXPECT_EQ(shots_for_standard_error(0.5, 0.01), 2500u);
  EXPECT_EQ(shots_for_standard_error(0.5, 0.5), 1u);
  // Round-trip: the returned count actually achieves the target.
  for (double accuracy : {0.3, 0.5, 0.95}) {
    for (double target : {0.02, 0.005}) {
      std::size_t shots = shots_for_standard_error(accuracy, target);
      EXPECT_LE(accuracy_standard_error(accuracy, shots), target);
      // ...and it is minimal: one shot fewer misses it (unless already 1).
      if (shots > 1) {
        EXPECT_GT(accuracy_standard_error(accuracy, shots - 1), target);
      }
    }
  }
}

TEST(ShotSizing, Validation) {
  EXPECT_THROW(accuracy_standard_error(-0.1, 100), InvalidArgument);
  EXPECT_THROW(accuracy_standard_error(1.1, 100), InvalidArgument);
  EXPECT_THROW(accuracy_standard_error(0.5, 0), InvalidArgument);
  EXPECT_THROW(shots_for_standard_error(2.0, 0.1), InvalidArgument);
  EXPECT_THROW(shots_for_standard_error(0.5, 0.0), InvalidArgument);
  EXPECT_THROW(shots_for_standard_error(0.5, -1.0), InvalidArgument);
  // Targets needing more shots than a size_t can hold are rejected, not
  // silently wrapped through a float-to-integer overflow.
  EXPECT_THROW(shots_for_standard_error(0.5, 1e-10), InvalidArgument);
}

/// The estimator must track the sampled accuracy on the real compiled
/// workloads — that is its whole purpose.
class EstimateVsSampled : public ::testing::TestWithParam<std::string> {};

TEST_P(EstimateVsSampled, WithinFivePercentOfSampledAccuracy) {
  const auto& b = revlib::get_benchmark(GetParam());
  auto target = compiler::device_for(b.circuit.num_qubits());
  compiler::CompileOptions opts(target);
  auto compiled = compiler::Compiler(opts).compile(b.circuit);

  auto est = estimate_accuracy(compiled.circuit, target.noise,
                               static_cast<int>(b.measured.size()));

  std::vector<int> phys;
  for (int o : b.measured) {
    phys.push_back(compiled.final_layout[static_cast<std::size_t>(o)]);
  }
  std::string correct = sim::classical_outcome(b.circuit, b.measured);
  SampleOptions sopts;
  sopts.shots = 4000;
  sopts.measured = phys;
  Rng rng(11);
  auto counts = sample(compiled.circuit, target.noise, rng, sopts);
  double sampled = metrics::accuracy(counts, correct);

  EXPECT_NEAR(est.estimate, sampled, 0.05)
      << GetParam() << ": estimate " << est.estimate << " vs sampled "
      << sampled;
}

INSTANTIATE_TEST_SUITE_P(Table1, EstimateVsSampled,
                         ::testing::ValuesIn(revlib::benchmark_names()));

}  // namespace
}  // namespace tetris::sim
