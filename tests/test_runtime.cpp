#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "lock/pipeline.h"
#include "revlib/benchmarks.h"
#include "runtime/batch_runner.h"
#include "runtime/shard.h"
#include "sim/statevector.h"

namespace tetris::runtime {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  constexpr int kTasks = 200;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, SizeRespectsRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(ThreadPool(0).size(), 1u);  // 0 = hardware default, at least one
}

TEST(ThreadPool, WorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  EXPECT_TRUE(pool.submit([] { return ThreadPool::on_worker_thread(); }).get());
}

// -------------------------------------------------------------- parallel_for

TEST(ParallelFor, MatchesSerialLoop) {
  constexpr std::size_t kCount = 100000;
  std::vector<double> serial(kCount), parallel(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  ThreadPool pool(4);
  ParallelForOptions options;
  options.pool = &pool;
  options.grain = 1000;
  parallel_for(
      0, kCount,
      [&parallel](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
        }
      },
      options);
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 54321;  // not a multiple of any grain
  std::vector<std::atomic<int>> visits(kCount);
  ThreadPool pool(4);
  ParallelForOptions options;
  options.pool = &pool;
  options.grain = 128;
  parallel_for(
      7, kCount,
      [&visits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
      },
      options);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(visits[i].load(), 0);
  for (std::size_t i = 7; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  auto count_calls = [&calls](std::size_t, std::size_t) { ++calls; };
  parallel_for(5, 5, count_calls);
  EXPECT_EQ(calls, 0);
  parallel_for(10, 5, count_calls);  // inverted range is a no-op
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, count_calls);  // below grain: single serial call
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.pool = &pool;
  options.grain = 10;
  EXPECT_THROW(
      parallel_for(
          0, 10000,
          [](std::size_t begin, std::size_t) {
            if (begin >= 5000) throw InvalidArgument("boom");
          },
          options),
      InvalidArgument);
}

// --------------------------------------------------------------- run_chunked

TEST(RunChunked, VisitsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 37;
  std::vector<std::atomic<int>> visits(kChunks);
  run_chunked(pool, kChunks, 4, [&](std::size_t c) { ++visits[c]; });
  for (std::size_t c = 0; c < kChunks; ++c) EXPECT_EQ(visits[c].load(), 1);
}

TEST(RunChunked, SerialWidthAndEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  run_chunked(pool, 0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  run_chunked(pool, 5, 1, [&](std::size_t) { ++calls; });  // width 1: serial
  EXPECT_EQ(calls, 5);
}

TEST(RunChunked, PropagatesFirstExceptionAndSkipsRemainingWork) {
  // One worker + the caller: after chunk 0 throws, chunks claimed later are
  // counted but not executed, so a failing run does not pay for the tail.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  EXPECT_THROW(run_chunked(pool, 64, 1u + pool.size(),
                           [&](std::size_t c) {
                             if (c == 0) throw InvalidArgument("boom");
                             ++executed;
                           }),
               InvalidArgument);
  // At most the chunks already in flight when the failure landed ran; with
  // two participants that is far below the full 63 remaining chunks.
  EXPECT_LT(executed.load(), 63);
}

TEST(RunChunked, NestedInsideWorkerDoesNotDeadlock) {
  // run_chunked from a pool task fans out over that same pool: the calling
  // worker participates, helpers queue behind it, nothing blocks.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto future = pool.submit([&] {
    run_chunked(pool, 16, 8, [&](std::size_t) { ++total; });
  });
  future.get();
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelFor, NestedCallRunsSerially) {
  // A body that itself calls parallel_for must not deadlock the fixed pool.
  ThreadPool pool(2);
  ParallelForOptions options;
  options.pool = &pool;
  options.grain = 1;
  std::atomic<int> total{0};
  parallel_for(
      0, 8,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          parallel_for(
              0, 4,
              [&total](std::size_t b, std::size_t e) {
                total += static_cast<int>(e - b);
              },
              {1, nullptr});
        }
      },
      options);
  EXPECT_EQ(total.load(), 8 * 4);
}

// --------------------------------------------------- statevector equivalence

/// A random circuit mixing every kernel family: single-qubit rotations,
/// controlled singles, SWAP and Toffoli.
qir::Circuit random_circuit(int num_qubits, int num_gates, Rng& rng) {
  qir::Circuit c(num_qubits, "random");
  for (int g = 0; g < num_gates; ++g) {
    int q0 = rng.uniform_int(0, num_qubits - 1);
    int q1 = rng.uniform_int(0, num_qubits - 2);
    if (q1 >= q0) ++q1;  // distinct second qubit
    switch (rng.uniform_int(0, 7)) {
      case 0: c.h(q0); break;
      case 1: c.t(q0); break;
      case 2: c.rx(rng.uniform() * 3.1, q0); break;
      case 3: c.rz(rng.uniform() * 3.1, q0); break;
      case 4: c.cx(q0, q1); break;
      case 5: c.swap(q0, q1); break;
      case 6: c.add(qir::make_cp(rng.uniform() * 3.1, q0, q1)); break;
      default: {
        int q2 = rng.uniform_int(0, num_qubits - 1);
        if (q2 == q0 || q2 == q1) {
          c.cx(q0, q1);
        } else {
          c.add(qir::make_ccx(q0, q1, q2));
        }
        break;
      }
    }
  }
  return c;
}

TEST(StateVectorParallel, BitIdenticalToSerialOnRandomCircuits) {
  // Force genuine multi-chunk, multi-worker execution: with the default
  // grain (2^12) an 8-12 qubit register fits in one chunk and parallel_for
  // would quietly serialize, and on a 1-core box the default global pool has
  // a single worker. Shrink the grain and widen the pool so the parallel
  // path really runs chunked across threads.
  ThreadPool::set_global_threads(4);
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    const int num_qubits = 8 + (trial % 5);  // 8..12
    auto circuit = random_circuit(num_qubits, 60, rng);

    sim::StateVector serial(num_qubits);
    serial.set_parallel_threshold(num_qubits + 1);  // pin serial kernels
    serial.apply_circuit(circuit);

    sim::StateVector parallel(num_qubits);
    parallel.set_parallel_threshold(0);  // force parallel kernels
    parallel.set_parallel_grain(64);     // many chunks even at 8 qubits
    parallel.apply_circuit(circuit);

    // Exact equality, not a tolerance: the parallel kernels perform the same
    // arithmetic per amplitude, only partitioned differently.
    EXPECT_EQ(parallel.max_abs_diff(serial), 0.0)
        << "trial " << trial << " on " << num_qubits << " qubits";
    EXPECT_EQ(parallel.probabilities(), serial.probabilities());
  }
  ThreadPool::set_global_threads(0);  // restore default sizing
}

TEST(StateVectorParallel, ThresholdDefaultsKeepSmallRegistersSerial) {
  sim::StateVector sv(4);
  EXPECT_EQ(sv.parallel_threshold(),
            sim::StateVector::kDefaultParallelThresholdQubits);
}

// --------------------------------------------------------------- BatchRunner

TEST(BatchRunner, RunsAllJobsAndTimesThem) {
  BatchConfig config;
  config.num_threads = 4;
  BatchRunner runner(config);
  std::vector<int> results(50, 0);
  auto statuses = runner.run(results.size(), [&](std::size_t i, Rng& rng) {
    results[i] = rng.uniform_int(0, 1000000);
  });
  ASSERT_EQ(statuses.size(), 50u);
  for (const auto& s : statuses) {
    EXPECT_TRUE(s.ok) << s.error;
    EXPECT_GE(s.seconds, 0.0);
  }
  EXPECT_EQ(runner.stats().jobs, 50u);
  EXPECT_EQ(runner.stats().failures, 0u);
  EXPECT_GT(runner.stats().wall_seconds, 0.0);
}

TEST(BatchRunner, PerJobRngIndependentOfThreadCount) {
  auto draw_all = [](unsigned threads) {
    BatchConfig config;
    config.num_threads = threads;
    config.base_seed = 1234;
    BatchRunner runner(config);
    std::vector<std::uint64_t> draws(64);
    runner.run(draws.size(),
               [&](std::size_t i, Rng& rng) { draws[i] = rng.next_u64(); });
    return draws;
  };
  auto serial = draw_all(1);
  auto parallel = draw_all(4);
  EXPECT_EQ(serial, parallel);

  // And a different base seed shifts every stream.
  BatchConfig other;
  other.num_threads = 1;
  other.base_seed = 4321;
  BatchRunner runner(other);
  std::vector<std::uint64_t> draws(64);
  runner.run(draws.size(),
             [&](std::size_t i, Rng& rng) { draws[i] = rng.next_u64(); });
  EXPECT_NE(serial, draws);
}

TEST(BatchRunner, CapturesJobExceptions) {
  BatchConfig config;
  config.num_threads = 2;
  BatchRunner runner(config);
  auto statuses = runner.run(10, [](std::size_t i, Rng&) {
    if (i == 3) throw InvalidArgument("job 3 is broken");
  });
  EXPECT_FALSE(statuses[3].ok);
  EXPECT_NE(statuses[3].error.find("job 3 is broken"), std::string::npos);
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (i != 3) {
      EXPECT_TRUE(statuses[i].ok);
    }
  }
  EXPECT_EQ(runner.stats().failures, 1u);
}

TEST(BatchRunner, EmptyBatch) {
  BatchRunner runner;
  auto statuses = runner.run(0, [](std::size_t, Rng&) { FAIL(); });
  EXPECT_TRUE(statuses.empty());
  EXPECT_EQ(runner.stats().jobs, 0u);
}

// ------------------------------------------------------------ run_flow_batch

TEST(FlowBatch, MatchesAcrossThreadCountsOnRevLib) {
  // Two small RevLib circuits through the full flow at 1 and at 3 threads:
  // per-job metrics must agree exactly (determinism is seed+index only).
  std::vector<lock::FlowJob> jobs;
  lock::FlowConfig cfg;
  cfg.shots = 64;  // keep the test fast; determinism is shot-count agnostic
  for (const char* name : {"4mod5", "4gt13"}) {
    const auto& b = revlib::get_benchmark(name);
    jobs.push_back(lock::make_flow_job(b.name, b.circuit, b.measured, cfg));
  }
  auto one = lock::run_flow_batch(jobs, 77, 1);
  auto three = lock::run_flow_batch(jobs, 77, 3);
  ASSERT_EQ(one.items.size(), jobs.size());
  ASSERT_EQ(one.failures, 0u);
  ASSERT_EQ(three.failures, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(one.items[i].result.tvd_obfuscated,
              three.items[i].result.tvd_obfuscated);
    EXPECT_EQ(one.items[i].result.tvd_restored,
              three.items[i].result.tvd_restored);
    EXPECT_EQ(one.items[i].result.accuracy_restored,
              three.items[i].result.accuracy_restored);
    EXPECT_EQ(one.items[i].result.gates_obfuscated,
              three.items[i].result.gates_obfuscated);
    EXPECT_EQ(one.items[i].result.depth_obfuscated,
              one.items[i].result.depth_original);
  }
}

TEST(FlowBatch, OversizedCircuitSurfacesInItemErrorWithoutDisturbingSiblings) {
  // Job 1's circuit needs more qubits than its target offers; the failure
  // must land in that item's error while the siblings complete normally.
  lock::FlowConfig cfg;
  cfg.shots = 64;
  std::vector<lock::FlowJob> jobs;
  const auto& ok_bench = revlib::get_benchmark("4mod5");
  jobs.push_back(
      lock::make_flow_job(ok_bench.name, ok_bench.circuit, ok_bench.measured, cfg));

  qir::Circuit wide(6, "too_wide");
  wide.x(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(4, 5);
  lock::FlowJob bad;
  bad.name = "too_wide";
  bad.circuit = wide;
  for (int q = 0; q < 6; ++q) bad.measured.push_back(q);
  bad.target = compiler::fake_valencia();  // 5 physical qubits
  bad.config = cfg;
  jobs.push_back(bad);

  jobs.push_back(
      lock::make_flow_job(ok_bench.name, ok_bench.circuit, ok_bench.measured, cfg));

  auto batch = lock::run_flow_batch(jobs, 7, 2);
  ASSERT_EQ(batch.items.size(), 3u);
  EXPECT_EQ(batch.failures, 1u);

  EXPECT_FALSE(batch.items[1].ok);
  EXPECT_FALSE(batch.items[1].error.empty());

  EXPECT_TRUE(batch.items[0].ok) << batch.items[0].error;
  EXPECT_TRUE(batch.items[2].ok) << batch.items[2].error;
  // Jobs 0 and 2 are the same circuit on the same seed-derived stream only
  // if their indices match — they don't, so their metrics may differ; what
  // must hold is that both completed and kept the depth invariant.
  EXPECT_EQ(batch.items[0].result.depth_obfuscated,
            batch.items[0].result.depth_original);
  EXPECT_EQ(batch.items[2].result.depth_obfuscated,
            batch.items[2].result.depth_original);
}

}  // namespace
}  // namespace tetris::runtime
