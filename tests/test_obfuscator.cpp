#include "lock/obfuscator.h"

#include <gtest/gtest.h>

#include "revlib/benchmarks.h"
#include "sim/unitary.h"

namespace tetris::lock {
namespace {

ObfuscatedCircuit obfuscate_benchmark(const std::string& name,
                                      std::uint64_t seed) {
  Rng rng(seed);
  Obfuscator obf;
  return obf.obfuscate(revlib::get_benchmark(name).circuit, rng);
}

TEST(Obfuscator, OriginBookkeeping) {
  auto obf = obfuscate_benchmark("rd53", 11);
  EXPECT_EQ(obf.origin.size(), obf.circuit.size());
  const std::size_t k = obf.random.size();
  EXPECT_EQ(obf.indices_of(GateOrigin::RandomInverse).size(), k);
  EXPECT_EQ(obf.indices_of(GateOrigin::Random).size(), k);
  EXPECT_EQ(obf.indices_of(GateOrigin::Original).size(), obf.original.size());
  EXPECT_EQ(obf.inserted_gates(), static_cast<int>(2 * k));
}

TEST(Obfuscator, InsertsAtLeastOneGateWhenSlackExists) {
  auto obf = obfuscate_benchmark("4gt11", 2);
  EXPECT_GE(obf.random.size(), 1u);
}

TEST(Obfuscator, MaskedDropsOnlyInversePrefix) {
  auto obf = obfuscate_benchmark("4mod5", 5);
  qir::Circuit masked = obf.masked();
  EXPECT_EQ(masked.size(), obf.circuit.size() - obf.random.size());
}

TEST(Obfuscator, MaskedDiffersFunctionallyWhenRandomNonEmpty) {
  auto obf = obfuscate_benchmark("rd53", 23);
  ASSERT_GE(obf.random.size(), 1u);
  EXPECT_FALSE(sim::circuits_equivalent(obf.masked(), obf.original));
}

/// The three headline structural invariants, swept over benchmarks x seeds.
class ObfuscatorProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ObfuscatorProperty, DepthIsUnchanged) {
  const auto& [name, seed] = GetParam();
  auto obf = obfuscate_benchmark(name, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(obf.circuit.depth(), obf.original.depth()) << name;
}

TEST_P(ObfuscatorProperty, FunctionallyEquivalentToOriginal) {
  const auto& [name, seed] = GetParam();
  auto obf = obfuscate_benchmark(name, static_cast<std::uint64_t>(seed));
  if (obf.circuit.num_qubits() > 10) {
    GTEST_SKIP() << "unitary oracle too large";
  }
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, obf.original)) << name;
}

TEST_P(ObfuscatorProperty, InsertedGateCountInPaperBand) {
  const auto& [name, seed] = GetParam();
  auto obf = obfuscate_benchmark(name, static_cast<std::uint64_t>(seed));
  // Paper: 1-4 gates inserted in total (R plus R^-1), limit |R| <= 2.
  EXPECT_LE(obf.inserted_gates(), 4);
  EXPECT_GE(obf.inserted_gates(), 0);
}

TEST_P(ObfuscatorProperty, InsertedGatesPrecedeOriginalsOnSharedWires) {
  const auto& [name, seed] = GetParam();
  auto obf = obfuscate_benchmark(name, static_cast<std::uint64_t>(seed));
  // In gate-list order, all non-original gates come first by construction;
  // verify the stronger wire-level claim: on every wire touched by an
  // inserted gate, no original gate appears earlier in the list.
  std::vector<bool> wire_has_original(
      static_cast<std::size_t>(obf.circuit.num_qubits()), false);
  for (std::size_t i = 0; i < obf.circuit.size(); ++i) {
    const auto& g = obf.circuit.gate(i);
    if (obf.origin[i] == GateOrigin::Original) {
      for (int q : g.qubits) wire_has_original[static_cast<std::size_t>(q)] = true;
    } else {
      for (int q : g.qubits) {
        EXPECT_FALSE(wire_has_original[static_cast<std::size_t>(q)])
            << "inserted gate " << i << " follows an original gate on wire " << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObfuscatorProperty,
    ::testing::Combine(::testing::ValuesIn(revlib::benchmark_names()),
                       ::testing::Values(1, 42, 1234)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Obfuscator, HonorsConfig) {
  InsertionConfig cfg;
  cfg.max_random_gates = 1;
  cfg.alphabet = InsertionAlphabet::XOnly;
  Obfuscator obf(cfg);
  Rng rng(4);
  auto result = obf.obfuscate(revlib::build_rd84(), rng);
  EXPECT_LE(result.random.size(), 1u);
  for (const auto& g : result.random.gates()) {
    EXPECT_EQ(g.kind, qir::GateKind::X);
  }
  EXPECT_EQ(obf.config().max_random_gates, 1);
}

TEST(Obfuscator, EmptyCircuit) {
  qir::Circuit empty(3);
  Obfuscator obf;
  Rng rng(1);
  auto result = obf.obfuscate(empty, rng);
  // No layers -> no leading slots -> nothing inserted.
  EXPECT_TRUE(result.random.empty());
  EXPECT_TRUE(result.circuit.empty());
}

}  // namespace
}  // namespace tetris::lock
