#include "qir/render.h"

#include <gtest/gtest.h>

namespace tetris::qir {
namespace {

TEST(Render, OneLinePerQubit) {
  Circuit c(4);
  c.h(0).cx(0, 1);
  auto art = render(c);
  int newlines = 0;
  for (char ch : art) {
    if (ch == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 4);
}

TEST(Render, ShowsGateGlyphs) {
  Circuit c(3);
  c.h(0).cx(0, 2);
  auto art = render(c);
  EXPECT_NE(art.find("[h]"), std::string::npos);
  EXPECT_NE(art.find(" # "), std::string::npos);   // control
  EXPECT_NE(art.find("(+)"), std::string::npos);   // target
  EXPECT_NE(art.find(" | "), std::string::npos);   // connector through q1
}

TEST(Render, LabelsQubits) {
  Circuit c(2);
  c.x(1);
  auto art = render(c);
  EXPECT_NE(art.find("q0:"), std::string::npos);
  EXPECT_NE(art.find("q1:"), std::string::npos);
}

TEST(Render, IncludesCircuitName) {
  Circuit c(1, "fancy");
  c.x(0);
  auto art = render(c);
  EXPECT_NE(art.find("fancy"), std::string::npos);
}

TEST(Render, EmptyRegister) {
  Circuit c(0);
  EXPECT_EQ(render(c), "");
}

TEST(Render, SwapGlyph) {
  Circuit c(2);
  c.swap(0, 1);
  auto art = render(c);
  // Two 'x' marks, one per wire.
  EXPECT_NE(art.find(" x "), std::string::npos);
}

}  // namespace
}  // namespace tetris::qir
