// Additional rendering/IO regression tests: glyph collisions, wide circuits,
// and the exact pictures the examples print (so example output stays stable).

#include <gtest/gtest.h>

#include "qir/library.h"
#include "qir/qasm.h"
#include "qir/render.h"
#include "revlib/benchmarks.h"
#include "revlib/real_format.h"

namespace tetris::qir {
namespace {

TEST(RenderExtra, ConnectorDoesNotOverwriteGateGlyph) {
  // A gate on q1 shares a column with the CCX(0,2,3) connector through q1;
  // the gate glyph must win.
  Circuit c(4);
  c.x(1).ccx(0, 2, 3);
  auto art = render(c);
  // The [x] on q1 must survive; the connector appears on no wire that hosts
  // a gate in that column.
  EXPECT_NE(art.find("[x]"), std::string::npos);
}

TEST(RenderExtra, EveryBenchmarkRendersOneRowPerQubit) {
  for (const auto& b : revlib::table1_benchmarks()) {
    auto art = render(b.circuit);
    int rows = 0;
    for (char ch : art) {
      if (ch == '\n') ++rows;
    }
    // name line + one line per qubit
    EXPECT_EQ(rows, b.circuit.num_qubits() + 1) << b.name;
  }
}

TEST(RenderExtra, DeepCircuitRendersAllLayers) {
  auto c = qir::library::grover(3, 5, 1);
  auto art = render(c);
  EXPECT_GT(art.size(), 100u);
  EXPECT_NE(art.find("q0:"), std::string::npos);
  EXPECT_NE(art.find("q2:"), std::string::npos);
}

TEST(RenderExtra, BarrierIsInvisibleButHarmless) {
  Circuit c(2);
  c.x(0).barrier().x(1);
  EXPECT_NO_THROW(render(c));
}

TEST(IoExtra, QasmOfEveryBenchmarkRoundTrips) {
  for (const auto& b : revlib::table1_benchmarks()) {
    auto back = from_qasm(to_qasm(b.circuit));
    EXPECT_TRUE(back == b.circuit) << b.name;
  }
}

TEST(IoExtra, RealAndQasmAgreeOnStructure) {
  for (const auto& b : revlib::table1_benchmarks()) {
    auto via_real = revlib::from_real(revlib::to_real(b.circuit));
    auto via_qasm = from_qasm(to_qasm(b.circuit));
    EXPECT_TRUE(via_real == via_qasm) << b.name;
  }
}

TEST(IoExtra, LibraryCircuitsSerializeWhenRepresentable) {
  // QFT uses cp gates -> qasm ok; swap ok.
  auto qft = qir::library::qft(4);
  EXPECT_NO_THROW(to_qasm(qft));
  auto back = from_qasm(to_qasm(qft));
  EXPECT_TRUE(back.approx_equal(qft, 1e-12));
}

}  // namespace
}  // namespace tetris::qir
