#include "qir/qasm.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tetris::qir {
namespace {

TEST(Qasm, WriteContainsHeaderAndGates) {
  Circuit c(3, "demo");
  c.h(0).cx(0, 1).rz(0.25, 2).ccx(0, 1, 2);
  auto text = to_qasm(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(text.find("rz(0.25) q[2];"), std::string::npos);
  EXPECT_NE(text.find("ccx q[0],q[1],q[2];"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesCircuit) {
  Circuit c(4, "roundtrip");
  c.h(0).x(1).s(2).tdg(3).cx(0, 1).cz(1, 2).swap(2, 3).ccx(0, 1, 3)
      .rz(0.5, 0).rx(-1.25, 1).cp(0.75, 0, 2);
  Circuit back = from_qasm(to_qasm(c));
  EXPECT_EQ(back.num_qubits(), 4);
  ASSERT_EQ(back.size(), c.size());
  EXPECT_TRUE(back.approx_equal(c, 1e-12));
}

TEST(Qasm, RoundTripMcxAsC3x) {
  Circuit c(5);
  c.mcx({0, 1, 2}, 4);
  Circuit back = from_qasm(to_qasm(c));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.gate(0).kind, GateKind::MCX);
  EXPECT_EQ(back.gate(0).qubits, (std::vector<int>{0, 1, 2, 4}));
}

TEST(Qasm, WideMcxRejected) {
  Circuit c(7);
  c.mcx({0, 1, 2, 3, 4}, 6);
  EXPECT_THROW(to_qasm(c), InvalidArgument);
}

TEST(Qasm, BarrierRoundTrip) {
  Circuit c(2);
  c.x(0).barrier().x(1);
  Circuit back = from_qasm(to_qasm(c));
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.gate(1).kind, GateKind::Barrier);
}

TEST(Qasm, ParseIgnoresCregAndMeasure) {
  const char* text = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
x q[0];
measure q[0] -> c[0];
)";
  Circuit c = from_qasm(text);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).kind, GateKind::X);
}

TEST(Qasm, ParseErrorsCarryLineInfo) {
  EXPECT_THROW(from_qasm("OPENQASM 2.0;\nx q[0];\n"), ParseError);  // no qreg
  EXPECT_THROW(from_qasm("qreg q[2];\nfrobnicate q[0];\n"), ParseError);
  EXPECT_THROW(from_qasm("qreg q[2];\nrz(abc) q[0];\n"), ParseError);
  EXPECT_THROW(from_qasm("qreg q[2];\nx q0;\n"), ParseError);  // bad operand
  EXPECT_THROW(from_qasm(""), InvalidArgument);                // no qreg at all
}

TEST(Qasm, NameCommentSurvivesRoundTrip) {
  Circuit c(2, "my_circuit");
  c.x(0);
  Circuit back = from_qasm(to_qasm(c));
  EXPECT_EQ(back.name(), "my_circuit");
}

}  // namespace
}  // namespace tetris::qir
