#include "lock/complexity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/combinatorics.h"
#include "common/error.h"

namespace tetris::lock {
namespace {

/// Brute-force reference of Eq. 1 for small parameters.
double reference_eq1(int n, int nmax, double k) {
  double total = 0.0;
  for (int i = 1; i <= nmax; ++i) {
    double inner = 0.0;
    for (int j = 0; j <= std::min(n, i); ++j) {
      inner += static_cast<double>(binomial_exact(n, j)) *
               static_cast<double>(binomial_exact(i, j)) *
               static_cast<double>(factorial_exact(j));
    }
    total += k * inner;
  }
  return total;
}

TEST(Complexity, CascadeMatchesClosedForm) {
  // k_n * n!
  EXPECT_NEAR(log_attack_complexity_cascade(5, 1.0), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_attack_complexity_cascade(4, 3.0), std::log(3.0 * 24.0), 1e-9);
}

TEST(Complexity, CascadeValidates) {
  EXPECT_THROW(log_attack_complexity_cascade(0, 1.0), InvalidArgument);
  EXPECT_THROW(log_attack_complexity_cascade(3, 0.5), InvalidArgument);
}

TEST(Complexity, Eq1MatchesBruteForceSmall) {
  for (int n = 1; n <= 6; ++n) {
    for (int nmax = 1; nmax <= 8; ++nmax) {
      double expected = std::log(reference_eq1(n, nmax, 1.0));
      EXPECT_NEAR(log_attack_complexity_tetrislock(n, nmax, 1.0), expected,
                  1e-9)
          << "n=" << n << " nmax=" << nmax;
    }
  }
}

TEST(Complexity, Eq1ScalesLinearlyInUniformK) {
  double base = log_attack_complexity_tetrislock(5, 10, 1.0);
  double k4 = log_attack_complexity_tetrislock(5, 10, 4.0);
  EXPECT_NEAR(k4 - base, std::log(4.0), 1e-9);
}

TEST(Complexity, Eq1PerIndexKVector) {
  // k = {0, ..., 0, 1 at i=n}: only the i=n term remains, which dominates
  // the cascade formula's n! term (it includes j=n plus smaller-j terms).
  int n = 4, nmax = 6;
  std::vector<double> k(static_cast<std::size_t>(nmax), 0.0);
  k[static_cast<std::size_t>(n - 1)] = 1.0;
  double only_n = log_attack_complexity_tetrislock(n, nmax, k);
  double cascade = log_attack_complexity_cascade(n, 1.0);
  EXPECT_GT(only_n, cascade);
}

TEST(Complexity, TetrisLockDominatesCascade) {
  // The paper's claim: the cascade complexity is a minor fraction of Eq. 1.
  for (int n : {4, 5, 7, 10, 12}) {
    double cascade = log_attack_complexity_cascade(n, 1.0);
    double tetris = log_attack_complexity_tetrislock(n, 27, 1.0);
    EXPECT_GT(tetris, cascade) << "n=" << n;
  }
}

TEST(Complexity, MonotoneInNmax) {
  double prev = -1e18;
  for (int nmax = 1; nmax <= 20; ++nmax) {
    double v = log_attack_complexity_tetrislock(6, nmax, 1.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Complexity, MonotoneInN) {
  double prev = -1e18;
  for (int n = 1; n <= 12; ++n) {
    double v = log_attack_complexity_tetrislock(n, 12, 1.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Complexity, HandlesLargeDeviceBudgets) {
  // 127-qubit device (IBM Eagle scale): must not overflow.
  double v = log_attack_complexity_tetrislock(12, 127, 2.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(log_to_log10(v), 10.0);  // astronomically large
}

TEST(Complexity, Validation) {
  EXPECT_THROW(log_attack_complexity_tetrislock(0, 5, 1.0), InvalidArgument);
  EXPECT_THROW(log_attack_complexity_tetrislock(3, 0, 1.0), InvalidArgument);
  EXPECT_THROW(
      log_attack_complexity_tetrislock(3, 5, std::vector<double>{}),
      InvalidArgument);
  EXPECT_THROW(log_attack_complexity_tetrislock(3, 5, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace tetris::lock
