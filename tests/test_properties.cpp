// Cross-module property suites: independent implementations of the same
// quantity must agree on random inputs (classical propagation vs state-vector
// simulation, schedule bookkeeping vs circuit stats, extreme-noise behavior).

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "qir/layers.h"
#include "qir/library.h"
#include "sim/sampler.h"
#include "sim/statevector.h"

namespace tetris {
namespace {

class PropertySeed : public ::testing::TestWithParam<int> {};

TEST_P(PropertySeed, ClassicalOutcomeAgreesWithStateVector) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto c = qir::library::random_reversible(6, 25, rng);
  // classical_outcome uses bit propagation; the state vector is the oracle.
  auto dist = sim::ideal_distribution(c);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist.begin()->first, sim::classical_outcome(c));
}

TEST_P(PropertySeed, LayerScheduleAccountsForEveryGate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  auto c = qir::library::random_universal(5, 30, rng);
  qir::LayerSchedule sched(c);
  EXPECT_EQ(sched.num_layers(), c.depth());
  std::size_t total = 0;
  for (int l = 0; l < sched.num_layers(); ++l) {
    total += sched.gates_in_layer(l).size();
    // No two gates in one layer may share a qubit.
    std::set<int> used;
    for (std::size_t gi : sched.gates_in_layer(l)) {
      for (int q : c.gate(gi).qubits) {
        EXPECT_TRUE(used.insert(q).second) << "layer " << l;
      }
    }
  }
  EXPECT_EQ(total, c.gate_count());
}

TEST_P(PropertySeed, SlackPlusBusyEqualsGridArea) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  auto c = qir::library::random_reversible(5, 15, rng);
  qir::LayerSchedule sched(c);
  std::size_t busy = 0;
  for (const auto& g : c.gates()) {
    busy += static_cast<std::size_t>(g.num_qubits());
  }
  EXPECT_EQ(sched.total_slack() + busy,
            static_cast<std::size_t>(sched.num_layers()) *
                static_cast<std::size_t>(c.num_qubits()));
}

TEST_P(PropertySeed, InverseCircuitUndoesStateEvolution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 150);
  auto c = qir::library::random_universal(4, 20, rng);
  sim::StateVector sv(4);
  sv.apply_circuit(c);
  sv.apply_circuit(c.inverse());
  sim::StateVector ref(4);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-9);
}

TEST_P(PropertySeed, SamplingMatchesIdealDistribution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  auto c = qir::library::random_universal(3, 12, rng);
  auto ideal = sim::ideal_distribution(c);
  sim::SampleOptions opts;
  opts.shots = 20000;
  Rng sample_rng(99);
  auto counts = sim::sample(c, sim::NoiseModel::ideal(), sample_rng, opts);
  // Empirical distribution converges: TVD against the exact one is small.
  EXPECT_LT(metrics::tvd(counts, ideal), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed, ::testing::Range(1, 9));

TEST(ExtremeNoise, CertainReadoutFlipInvertsDeterministicOutcome) {
  qir::Circuit c(2);  // stays |00>
  sim::NoiseModel nm;
  nm.readout = 1.0;   // every bit flips with certainty
  Rng rng(5);
  sim::SampleOptions opts;
  opts.shots = 100;
  auto counts = sim::sample(c, nm, rng, opts);
  EXPECT_EQ(counts.count("11"), 100u);
}

TEST(ExtremeNoise, FullDepolarizingStillNormalized) {
  qir::Circuit c(2);
  for (int i = 0; i < 5; ++i) c.x(0).cx(0, 1);
  sim::NoiseModel nm;
  nm.p1 = 1.0;
  nm.p2 = 1.0;
  Rng rng(7);
  sim::SampleOptions opts;
  opts.shots = 500;
  auto counts = sim::sample(c, nm, rng, opts);
  std::size_t total = 0;
  for (const auto& [k, v] : counts.histogram) total += v;
  EXPECT_EQ(total, 500u);
}

TEST(ExtremeNoise, ScaledModelClampsRates) {
  auto nm = sim::NoiseModel::fake_valencia().scaled(1e9);
  EXPECT_LE(nm.p1, 1.0);
  EXPECT_LE(nm.p2, 1.0);
  EXPECT_LE(nm.readout, 1.0);
  EXPECT_THROW(nm.scaled(-1.0), InvalidArgument);
  auto zero = nm.scaled(0.0);
  EXPECT_TRUE(zero.is_ideal());
}

}  // namespace
}  // namespace tetris
