#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/decompose.h"
#include "compiler/layout.h"
#include "compiler/routing.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris::compiler {
namespace {

TEST(Layout, TrivialIsIdentity) {
  qir::Circuit c(3);
  c.cx(0, 2);
  auto layout = choose_layout(c, CouplingMap::line(5), LayoutStrategy::Trivial);
  EXPECT_EQ(layout, (std::vector<int>{0, 1, 2}));
}

TEST(Layout, GreedyPutsBusiestOnBestConnected) {
  // q2 participates in all two-qubit gates; valencia's hub is physical 1.
  qir::Circuit c(3);
  c.cx(2, 0).cx(2, 1).cx(1, 2).cx(0, 2);
  auto layout =
      choose_layout(c, CouplingMap::valencia(), LayoutStrategy::GreedyDegree);
  EXPECT_EQ(layout[2], 1);
}

TEST(Layout, GreedyIsInjective) {
  qir::Circuit c(5);
  c.cx(0, 1).cx(2, 3).cx(3, 4).cx(1, 2);
  auto layout =
      choose_layout(c, CouplingMap::valencia(), LayoutStrategy::GreedyDegree);
  EXPECT_NO_THROW(validate_layout(layout, 5, 5));
}

TEST(Layout, RejectsWideCircuit) {
  qir::Circuit c(6);
  EXPECT_THROW(choose_layout(c, CouplingMap::line(5), LayoutStrategy::Trivial),
               InvalidArgument);
}

TEST(Layout, ValidateCatchesDuplicates) {
  EXPECT_THROW(validate_layout({0, 0}, 2, 3), InvalidArgument);
  EXPECT_THROW(validate_layout({0, 5}, 2, 3), InvalidArgument);
  EXPECT_THROW(validate_layout({0}, 2, 3), InvalidArgument);
  EXPECT_NO_THROW(validate_layout({2, 0}, 2, 3));
}

TEST(Routing, AdjacentGateUnchanged) {
  qir::Circuit c(2);
  c.cx(0, 1);
  auto r = route(c, CouplingMap::line(2), {0, 1});
  EXPECT_EQ(r.swaps_inserted, 0u);
  EXPECT_EQ(r.circuit.gate_count(), 1u);
  EXPECT_EQ(r.final_layout, (std::vector<int>{0, 1}));
}

TEST(Routing, DistantGateGetsSwaps) {
  qir::Circuit c(2);
  c.cx(0, 1);
  // Place the operands at the ends of a 4-qubit line.
  auto r = route(c, CouplingMap::line(4), {0, 3});
  EXPECT_GE(r.swaps_inserted, 2u);
  EXPECT_TRUE(is_coupling_compliant(r.circuit, CouplingMap::line(4)));
}

TEST(Routing, TracksFinalLayout) {
  qir::Circuit c(2);
  c.cx(0, 1).cx(0, 1);
  auto r = route(c, CouplingMap::line(4), {0, 3});
  // Second CX is free: operands already adjacent after the first routing.
  EXPECT_TRUE(is_coupling_compliant(r.circuit, CouplingMap::line(4)));
  EXPECT_TRUE(r.final_layout[0] != 0 || r.final_layout[1] != 3);
}

TEST(Routing, WirePermutationConsistentWithLayouts) {
  qir::Circuit c(3);
  c.cx(0, 2).cx(1, 2).cx(0, 1);
  std::vector<int> init{0, 2, 4};
  auto r = route(c, CouplingMap::line(5), init);
  // Logical q starts on init[q]; the content of that wire must end where the
  // final layout says the logical qubit lives.
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(r.wire_permutation[static_cast<std::size_t>(init[static_cast<std::size_t>(l)])],
              r.final_layout[static_cast<std::size_t>(l)]);
  }
  // And the permutation is a bijection.
  std::vector<char> seen(5, 0);
  for (int p : r.wire_permutation) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 5);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(Routing, RejectsWideGates) {
  qir::Circuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW(route(c, CouplingMap::line(3), {0, 1, 2}), CompileError);
}

TEST(Routing, RoutedCircuitIsFunctionallyOriginalPlusPermutation) {
  // decompose -> route; compiled == embed(original) followed by the wire
  // permutation the router reports.
  qir::Circuit c(3);
  c.ccx(0, 1, 2).cx(0, 2).x(1).cx(2, 0);
  DecomposePass pass;
  qir::Circuit lowered = pass.run(c);

  auto coupling = CouplingMap::line(4);
  std::vector<int> init{1, 3, 0};
  auto r = route(lowered, coupling, init);
  EXPECT_TRUE(is_coupling_compliant(r.circuit, coupling));

  qir::Circuit reference = testutil::embed(c, init, 4);
  testutil::apply_wire_permutation(reference, r.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(r.circuit, reference));
}

TEST(Routing, ValenciaEndToEndEquivalence) {
  qir::Circuit c(5);
  c.cx(0, 4).cx(2, 3).cx(4, 2).cx(0, 2);
  auto coupling = CouplingMap::valencia();
  std::vector<int> init{0, 1, 2, 3, 4};
  auto r = route(c, coupling, init);
  EXPECT_TRUE(is_coupling_compliant(r.circuit, coupling));

  qir::Circuit reference = testutil::embed(c, init, 5);
  testutil::apply_wire_permutation(reference, r.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(r.circuit, reference));
}

}  // namespace
}  // namespace tetris::compiler
