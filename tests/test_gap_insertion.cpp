// Tests for mid-circuit gap insertion (allow_gap_insertion): the Algorithm-1
// extension that makes the scheme applicable to interference-style circuits
// whose wires are all busy from layer 0.

#include <gtest/gtest.h>

#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "qir/library.h"
#include "revlib/benchmarks.h"
#include "sim/unitary.h"

namespace tetris::lock {
namespace {

InsertionConfig gap_config(InsertionAlphabet alphabet,
                           int max_gates = 3) {
  InsertionConfig cfg;
  cfg.alphabet = alphabet;
  cfg.max_random_gates = max_gates;
  cfg.allow_gap_insertion = true;
  return cfg;
}

TEST(GapInsertion, FindsWindowsInGroverCircuit) {
  // Grover has no leading slack at all; only gap insertion can fire.
  auto circuit = qir::library::grover(4, 11, 2);
  Rng rng(3);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::Hadamard));
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_TRUE(obf.has_gap_pairs);
  EXPECT_GE(obf.inserted_gates(), 2);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
}

TEST(GapInsertion, GapPairsPreserveFunction) {
  auto circuit = qir::library::grover(3, 5, 1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Obfuscator obfuscator(gap_config(InsertionAlphabet::Hadamard));
    auto obf = obfuscator.obfuscate(circuit, rng);
    EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit)) << seed;
    EXPECT_EQ(obf.circuit.depth(), circuit.depth()) << seed;
  }
}

TEST(GapInsertion, MaskedCircuitDiffersWhenPairsExist) {
  auto circuit = qir::library::grover(3, 6, 1);
  Rng rng(5);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::Hadamard));
  auto obf = obfuscator.obfuscate(circuit, rng);
  if (!obf.has_gap_pairs) GTEST_SKIP() << "no window found for this seed";
  EXPECT_FALSE(sim::circuits_equivalent(obf.masked(), circuit));
}

TEST(GapInsertion, SplitSeparatesPairMembers) {
  auto circuit = qir::library::grover(4, 9, 2);
  Rng rng(7);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::Hadamard));
  auto obf = obfuscator.obfuscate(circuit, rng);
  ASSERT_TRUE(obf.has_gap_pairs);

  InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  // No R member may ever reach split 1; R^-1 members are in split 1 unless
  // their pair was demoted (then the pair sits intact in split 2).
  std::vector<char> in_first(obf.circuit.size(), 0);
  for (std::size_t i : pair.first.gate_indices) in_first[i] = 1;
  std::size_t separated = 0;
  for (std::size_t i = 0; i < obf.circuit.size(); ++i) {
    if (obf.origin[i] == GateOrigin::Random) {
      EXPECT_FALSE(in_first[i]);
    }
    if (obf.origin[i] == GateOrigin::RandomInverse) {
      if (in_first[i]) {
        ++separated;
      } else {
        // Demoted pair: the partner must be right behind it, also in split 2.
        ASSERT_LT(i + 1, obf.circuit.size());
        EXPECT_EQ(obf.origin[i + 1], GateOrigin::Random);
        EXPECT_FALSE(in_first[i + 1]);
      }
    }
  }
  EXPECT_GE(separated, 1u) << "no pair was separated by the boundary";
}

TEST(GapInsertion, SplitRecombinesToOriginal) {
  auto circuit = qir::library::grover(3, 2, 1);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed + 100);
    Obfuscator obfuscator(gap_config(InsertionAlphabet::Hadamard));
    auto obf = obfuscator.obfuscate(circuit, rng);
    InterlockSplitter splitter;
    auto pair = splitter.split(obf, rng);
    auto recombined = InterlockSplitter::recombine_structural(
        pair, obf.circuit.num_qubits());
    EXPECT_TRUE(sim::circuits_equivalent(recombined, circuit)) << seed;
  }
}

TEST(GapInsertion, WorksOnReversibleBenchmarksToo) {
  // On RevLib circuits gap insertion adds to the leading prefix budget.
  const auto& b = revlib::get_benchmark("rd53");
  Rng rng(9);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::Mixed, 4));
  auto obf = obfuscator.obfuscate(b.circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), b.circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, b.circuit));
  EXPECT_LE(obf.inserted_gates(), 8);

  InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  auto recombined =
      InterlockSplitter::recombine_structural(pair, obf.circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, b.circuit));
}

TEST(GapInsertion, CxOnlyAlphabetSkipsGapMode) {
  const auto& b = revlib::get_benchmark("rd53");
  Rng rng(11);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::CXOnly, 4));
  auto obf = obfuscator.obfuscate(b.circuit, rng);
  EXPECT_FALSE(obf.has_gap_pairs);
}

TEST(GapInsertion, NoWindowsMeansNoPairs) {
  // A dense circuit with no idle slots anywhere.
  qir::Circuit dense(2);
  for (int i = 0; i < 4; ++i) dense.cx(0, 1);
  Rng rng(13);
  Obfuscator obfuscator(gap_config(InsertionAlphabet::Mixed));
  auto obf = obfuscator.obfuscate(dense, rng);
  EXPECT_FALSE(obf.has_gap_pairs);
  EXPECT_EQ(obf.inserted_gates(), 0);
}

}  // namespace
}  // namespace tetris::lock
