#include "qir/gate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace tetris::qir {
namespace {

TEST(Gate, ArityTable) {
  EXPECT_EQ(gate_arity(GateKind::X), 1);
  EXPECT_EQ(gate_arity(GateKind::RZ), 1);
  EXPECT_EQ(gate_arity(GateKind::CX), 2);
  EXPECT_EQ(gate_arity(GateKind::SWAP), 2);
  EXPECT_EQ(gate_arity(GateKind::CCX), 3);
  EXPECT_EQ(gate_arity(GateKind::CSWAP), 3);
  EXPECT_EQ(gate_arity(GateKind::MCX), -1);
  EXPECT_EQ(gate_arity(GateKind::Barrier), -1);
}

TEST(Gate, ParamCountTable) {
  EXPECT_EQ(gate_param_count(GateKind::X), 0);
  EXPECT_EQ(gate_param_count(GateKind::RX), 1);
  EXPECT_EQ(gate_param_count(GateKind::CP), 1);
  EXPECT_EQ(gate_param_count(GateKind::CCX), 0);
}

TEST(Gate, NameRoundTrip) {
  for (int k = static_cast<int>(GateKind::I);
       k <= static_cast<int>(GateKind::Barrier); ++k) {
    auto kind = static_cast<GateKind>(k);
    EXPECT_EQ(gate_kind_from_name(gate_kind_name(kind)), kind);
  }
}

TEST(Gate, NameParseIsCaseInsensitive) {
  EXPECT_EQ(gate_kind_from_name("CX"), GateKind::CX);
  EXPECT_EQ(gate_kind_from_name("Sdg"), GateKind::Sdg);
}

TEST(Gate, UnknownNameThrows) {
  EXPECT_THROW(gate_kind_from_name("notagate"), ParseError);
}

TEST(Gate, AdjointSelfInverseKinds) {
  for (auto g : {make_x(0), make_z(1), make_h(2), make_cx(0, 1),
                 make_ccx(0, 1, 2), make_swap(0, 1), make_cz(0, 1)}) {
    EXPECT_TRUE(g.is_self_inverse()) << g.name();
    EXPECT_EQ(g.adjoint(), g) << g.name();
  }
}

TEST(Gate, AdjointDaggerPairs) {
  EXPECT_EQ(make_s(0).adjoint().kind, GateKind::Sdg);
  EXPECT_EQ(make_sdg(0).adjoint().kind, GateKind::S);
  EXPECT_EQ(make_t(0).adjoint().kind, GateKind::Tdg);
  EXPECT_EQ(make_tdg(0).adjoint().kind, GateKind::T);
  EXPECT_EQ(make_sx(0).adjoint().kind, GateKind::SXdg);
  EXPECT_EQ(make_sxdg(0).adjoint().kind, GateKind::SX);
}

TEST(Gate, AdjointNegatesRotationAngles) {
  EXPECT_DOUBLE_EQ(make_rz(0.7, 0).adjoint().params[0], -0.7);
  EXPECT_DOUBLE_EQ(make_rx(-0.2, 0).adjoint().params[0], 0.2);
  EXPECT_DOUBLE_EQ(make_cp(1.1, 0, 1).adjoint().params[0], -1.1);
  EXPECT_DOUBLE_EQ(make_crz(0.3, 0, 1).adjoint().params[0], -0.3);
}

TEST(Gate, AdjointIsInvolution) {
  for (auto g : {make_rz(0.7, 0), make_s(1), make_sx(2), make_t(0),
                 make_cp(0.4, 0, 1)}) {
    EXPECT_TRUE(g.adjoint().adjoint().approx_equal(g)) << g.name();
  }
}

TEST(Gate, IsControlled) {
  EXPECT_TRUE(make_cx(0, 1).is_controlled());
  EXPECT_TRUE(make_ccx(0, 1, 2).is_controlled());
  EXPECT_TRUE(make_mcx({0, 1, 2}, 3).is_controlled());
  EXPECT_FALSE(make_x(0).is_controlled());
  EXPECT_FALSE(make_swap(0, 1).is_controlled());
}

TEST(Gate, IsDiagonal) {
  EXPECT_TRUE(make_z(0).is_diagonal());
  EXPECT_TRUE(make_rz(0.3, 0).is_diagonal());
  EXPECT_TRUE(make_cz(0, 1).is_diagonal());
  EXPECT_FALSE(make_x(0).is_diagonal());
  EXPECT_FALSE(make_h(0).is_diagonal());
  EXPECT_FALSE(make_cx(0, 1).is_diagonal());
}

TEST(Gate, IsClassical) {
  EXPECT_TRUE(make_x(0).is_classical());
  EXPECT_TRUE(make_cx(0, 1).is_classical());
  EXPECT_TRUE(make_ccx(0, 1, 2).is_classical());
  EXPECT_TRUE(make_swap(0, 1).is_classical());
  EXPECT_FALSE(make_h(0).is_classical());
  EXPECT_FALSE(make_t(0).is_classical());
  EXPECT_FALSE(make_cz(0, 1).is_classical());
}

TEST(Gate, McxFactoryRequiresThreeControls) {
  EXPECT_THROW(make_mcx({0, 1}, 2), InvalidArgument);
  Gate g = make_mcx({0, 1, 2}, 3);
  EXPECT_EQ(g.kind, GateKind::MCX);
  ASSERT_EQ(g.num_qubits(), 4);
  EXPECT_EQ(g.qubits.back(), 3);
}

TEST(Gate, ToStringFormats) {
  EXPECT_EQ(make_cx(1, 3).to_string(), "cx q1, q3");
  EXPECT_EQ(make_x(0).to_string(), "x q0");
  auto s = make_rz(0.5, 2).to_string();
  EXPECT_NE(s.find("rz(0.5)"), std::string::npos);
  EXPECT_NE(s.find("q2"), std::string::npos);
}

TEST(Gate, IsCliffordFixedKinds) {
  // Every fixed (parameter-free) kind, in enum order.
  EXPECT_TRUE(Gate(GateKind::I, {0}).is_clifford());
  EXPECT_TRUE(make_x(0).is_clifford());
  EXPECT_TRUE(make_y(0).is_clifford());
  EXPECT_TRUE(make_z(0).is_clifford());
  EXPECT_TRUE(make_h(0).is_clifford());
  EXPECT_TRUE(make_s(0).is_clifford());
  EXPECT_TRUE(make_sdg(0).is_clifford());
  EXPECT_FALSE(make_t(0).is_clifford());
  EXPECT_FALSE(make_tdg(0).is_clifford());
  EXPECT_TRUE(make_sx(0).is_clifford());
  EXPECT_TRUE(make_sxdg(0).is_clifford());
  EXPECT_TRUE(make_cx(0, 1).is_clifford());
  EXPECT_TRUE(make_cy(0, 1).is_clifford());
  EXPECT_TRUE(make_cz(0, 1).is_clifford());
  EXPECT_FALSE(make_ch(0, 1).is_clifford());
  EXPECT_TRUE(make_swap(0, 1).is_clifford());
  EXPECT_FALSE(make_ccx(0, 1, 2).is_clifford());
  EXPECT_FALSE(make_cswap(0, 1, 2).is_clifford());
  EXPECT_FALSE(make_mcx({0, 1, 2}, 3).is_clifford());
  EXPECT_TRUE(Gate(GateKind::Barrier, {}).is_clifford());
}

TEST(Gate, IsCliffordParametricOnQuarterTurnLattice) {
  const double half_pi = M_PI / 2;
  // RX/RY/RZ/P qualify exactly at multiples of pi/2.
  for (double theta : {0.0, half_pi, M_PI, -half_pi, 2 * M_PI}) {
    EXPECT_TRUE(make_rx(theta, 0).is_clifford()) << theta;
    EXPECT_TRUE(make_ry(theta, 0).is_clifford()) << theta;
    EXPECT_TRUE(make_rz(theta, 0).is_clifford()) << theta;
    EXPECT_TRUE(make_p(theta, 0).is_clifford()) << theta;
  }
  for (double theta : {M_PI / 4, 0.3, 1.0}) {
    EXPECT_FALSE(make_rx(theta, 0).is_clifford()) << theta;
    EXPECT_FALSE(make_ry(theta, 0).is_clifford()) << theta;
    EXPECT_FALSE(make_rz(theta, 0).is_clifford()) << theta;
    EXPECT_FALSE(make_p(theta, 0).is_clifford()) << theta;
  }
  // CP needs a multiple of pi (CP(pi) = CZ); CP(pi/2) is the T-class CS.
  EXPECT_TRUE(make_cp(0.0, 0, 1).is_clifford());
  EXPECT_TRUE(make_cp(M_PI, 0, 1).is_clifford());
  EXPECT_TRUE(make_cp(-M_PI, 0, 1).is_clifford());
  EXPECT_FALSE(make_cp(half_pi, 0, 1).is_clifford());
  // CRZ needs a multiple of 2*pi; CRZ(pi) is already non-Clifford.
  EXPECT_TRUE(make_crz(0.0, 0, 1).is_clifford());
  EXPECT_TRUE(make_crz(2 * M_PI, 0, 1).is_clifford());
  EXPECT_FALSE(make_crz(M_PI, 0, 1).is_clifford());
  EXPECT_FALSE(make_crz(half_pi, 0, 1).is_clifford());
}

TEST(Gate, QuarterTurnsFoldsAndTolerance) {
  int turns = -1;
  EXPECT_TRUE(quarter_turns(0.0, &turns));
  EXPECT_EQ(turns, 0);
  EXPECT_TRUE(quarter_turns(M_PI / 2, &turns));
  EXPECT_EQ(turns, 1);
  EXPECT_TRUE(quarter_turns(M_PI, &turns));
  EXPECT_EQ(turns, 2);
  EXPECT_TRUE(quarter_turns(3 * M_PI / 2, &turns));
  EXPECT_EQ(turns, 3);
  EXPECT_TRUE(quarter_turns(2 * M_PI, &turns));
  EXPECT_EQ(turns, 0);
  // Negative angles fold into [0, 3].
  EXPECT_TRUE(quarter_turns(-M_PI / 2, &turns));
  EXPECT_EQ(turns, 3);
  EXPECT_TRUE(quarter_turns(-M_PI, &turns));
  EXPECT_EQ(turns, 2);
  // Compiler-accumulated drift (sums of pi/2 literals) stays inside the
  // default tolerance; T's pi/4 stays far outside it.
  double accumulated = 0.0;
  for (int i = 0; i < 6; ++i) accumulated += M_PI / 2;
  EXPECT_TRUE(quarter_turns(accumulated, &turns));
  EXPECT_EQ(turns, 2);
  EXPECT_FALSE(quarter_turns(M_PI / 4));
  // Off-lattice beyond atol rejects; a wider explicit atol accepts.
  EXPECT_FALSE(quarter_turns(M_PI / 2 + 1e-6, &turns));
  EXPECT_TRUE(quarter_turns(M_PI / 2 + 1e-6, &turns, 1e-5));
  EXPECT_EQ(turns, 1);
}

TEST(Gate, ApproxEqualTolerance) {
  auto a = make_rz(1.0, 0);
  auto b = make_rz(1.0 + 1e-14, 0);
  auto c = make_rz(1.1, 0);
  EXPECT_TRUE(a.approx_equal(b));
  EXPECT_FALSE(a.approx_equal(c));
  EXPECT_FALSE(a.approx_equal(make_rx(1.0, 0)));
  EXPECT_FALSE(a.approx_equal(make_rz(1.0, 1)));
}

}  // namespace
}  // namespace tetris::qir
