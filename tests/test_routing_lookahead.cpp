#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "compiler/routing.h"
#include "qir/library.h"
#include "revlib/benchmarks.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris::compiler {
namespace {

RoutingOptions lookahead() {
  RoutingOptions o;
  o.strategy = RoutingStrategy::Lookahead;
  return o;
}

TEST(LookaheadRouting, ProducesCompliantCircuit) {
  qir::Circuit c(4);
  c.cx(0, 3).cx(1, 2).cx(0, 2).cx(3, 1);
  auto coupling = CouplingMap::line(4);
  auto r = route(c, coupling, {0, 1, 2, 3}, lookahead());
  EXPECT_TRUE(is_coupling_compliant(r.circuit, coupling));
}

TEST(LookaheadRouting, PreservesFunction) {
  qir::Circuit c(4);
  c.cx(0, 3).cx(1, 2).cx(0, 2).cx(3, 1).cx(2, 0);
  auto coupling = CouplingMap::line(5);
  std::vector<int> init{0, 2, 3, 4};
  auto r = route(c, coupling, init, lookahead());
  qir::Circuit reference = testutil::embed(c, init, 5);
  testutil::apply_wire_permutation(reference, r.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(r.circuit, reference));
}

TEST(LookaheadRouting, NeverWorseOnRepeatedDistantPairs) {
  // A pattern lookahead is built for: the same distant pair interacts
  // repeatedly; lookahead parks the operands adjacently once.
  qir::Circuit c(2);
  for (int i = 0; i < 6; ++i) c.cx(0, 1);
  auto coupling = CouplingMap::line(6);
  auto greedy = route(c, coupling, {0, 5});
  auto smart = route(c, coupling, {0, 5}, lookahead());
  EXPECT_LE(smart.swaps_inserted, greedy.swaps_inserted);
}

TEST(LookaheadRouting, HelpsOnRandomReversibleWorkloads) {
  // Aggregate: across seeds, lookahead inserts no more swaps than greedy on
  // average (it may tie on easy instances).
  std::size_t greedy_total = 0, smart_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    auto c = qir::library::random_reversible(6, 20, rng);
    DecomposePass pass;
    auto lowered = pass.run(c);
    auto coupling = CouplingMap::line(6);
    std::vector<int> init{0, 1, 2, 3, 4, 5};
    greedy_total += route(lowered, coupling, init).swaps_inserted;
    smart_total += route(lowered, coupling, init, lookahead()).swaps_inserted;
  }
  EXPECT_LE(smart_total, greedy_total);
}

TEST(LookaheadRouting, FunctionPreservedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed + 40);
    auto c = qir::library::random_universal(4, 15, rng);
    auto coupling = CouplingMap::ring(5);
    std::vector<int> init{0, 1, 2, 3};
    auto r = route(c, coupling, init, lookahead());
    EXPECT_TRUE(is_coupling_compliant(r.circuit, coupling));
    qir::Circuit reference = testutil::embed(c, init, 5);
    testutil::apply_wire_permutation(reference, r.wire_permutation);
    EXPECT_TRUE(sim::circuits_equivalent(r.circuit, reference)) << seed;
  }
}

TEST(LookaheadRouting, CompilerIntegration) {
  const auto& b = revlib::get_benchmark("rd53");
  auto target = device_for(b.circuit.num_qubits());
  CompileOptions opts{target, LayoutStrategy::GreedyDegree, true, std::nullopt};
  opts.routing = lookahead();
  auto result = Compiler(opts).compile(b.circuit);
  EXPECT_TRUE(is_coupling_compliant(result.circuit, target.coupling));
  qir::Circuit reference =
      testutil::embed(b.circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST(CommutationInCompiler, ReducesGateCount) {
  const auto& b = revlib::get_benchmark("4gt11");
  auto target = device_for(b.circuit.num_qubits());
  CompileOptions with{target, LayoutStrategy::GreedyDegree, true, std::nullopt};
  with.use_commutation = true;
  CompileOptions without = with;
  without.use_commutation = false;
  auto on = Compiler(with).compile(b.circuit);
  auto off = Compiler(without).compile(b.circuit);
  EXPECT_LE(on.circuit.gate_count(), off.circuit.gate_count());
  // Both must be correct regardless.
  for (const auto* r : {&on, &off}) {
    qir::Circuit reference =
        testutil::embed(b.circuit, r->initial_layout, target.num_qubits());
    testutil::apply_wire_permutation(reference, r->wire_permutation);
    EXPECT_TRUE(sim::circuits_equivalent(r->circuit, reference));
  }
}

}  // namespace
}  // namespace tetris::compiler
