#include "compiler/commute.h"

#include <gtest/gtest.h>

#include "qir/library.h"
#include "sim/unitary.h"

namespace tetris::compiler {
namespace {

/// Property: whenever gates_commute claims [A,B] = 0, the dense unitaries of
/// AB and BA must agree.
class CommutePair
    : public ::testing::TestWithParam<std::pair<qir::Gate, qir::Gate>> {};

TEST_P(CommutePair, ClaimedCommutersActuallyCommute) {
  const auto& [a, b] = GetParam();
  ASSERT_TRUE(gates_commute(a, b));
  ASSERT_TRUE(gates_commute(b, a));  // symmetry
  int width = 0;
  for (int q : a.qubits) width = std::max(width, q + 1);
  for (int q : b.qubits) width = std::max(width, q + 1);
  qir::Circuit ab(width), ba(width);
  ab.add(a).add(b);
  ba.add(b).add(a);
  EXPECT_TRUE(sim::circuits_equivalent(ab, ba))
      << a.to_string() << " vs " << b.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Rules, CommutePair,
    ::testing::Values(
        // Disjoint supports.
        std::make_pair(qir::make_h(0), qir::make_x(1)),
        std::make_pair(qir::make_cx(0, 1), qir::make_cx(2, 3)),
        // Both diagonal, shared wires.
        std::make_pair(qir::make_rz(0.3, 0), qir::make_t(0)),
        std::make_pair(qir::make_cz(0, 1), qir::make_rz(0.9, 1)),
        std::make_pair(qir::make_cp(0.4, 0, 1), qir::make_cz(1, 0)),
        // Diagonal on a CX control.
        std::make_pair(qir::make_rz(1.1, 0), qir::make_cx(0, 1)),
        std::make_pair(qir::make_t(2), qir::make_ccx(2, 0, 1)),
        std::make_pair(qir::make_s(1), qir::make_mcx({1, 2, 3}, 0)),
        // X family on a CX target.
        std::make_pair(qir::make_x(1), qir::make_cx(0, 1)),
        std::make_pair(qir::make_sx(1), qir::make_cx(0, 1)),
        std::make_pair(qir::make_rx(0.7, 2), qir::make_ccx(0, 1, 2)),
        // X family pairs on one wire.
        std::make_pair(qir::make_x(0), qir::make_sx(0)),
        std::make_pair(qir::make_rx(0.5, 0), qir::make_rx(-1.0, 0))),
    [](const auto& info) { return "pair" + std::to_string(info.index); });

TEST(GatesCommute, NonCommutingPairsRejected) {
  EXPECT_FALSE(gates_commute(qir::make_x(0), qir::make_z(0)));
  EXPECT_FALSE(gates_commute(qir::make_h(0), qir::make_x(0)));
  EXPECT_FALSE(gates_commute(qir::make_rz(0.3, 1), qir::make_cx(0, 1)));  // on target
  EXPECT_FALSE(gates_commute(qir::make_x(0), qir::make_cx(0, 1)));        // on control
  EXPECT_FALSE(gates_commute(qir::make_cx(0, 1), qir::make_cx(1, 0)));
  EXPECT_FALSE(gates_commute(qir::make_swap(0, 1), qir::make_x(0)));
}

TEST(GatesCommute, BarriersNeverCommute) {
  qir::Gate barrier(qir::GateKind::Barrier, {0, 1});
  EXPECT_FALSE(gates_commute(barrier, qir::make_x(0)));
}

TEST(CommuteCancel, CancelsThroughCommutingWall) {
  // RZ ... CX(control on same wire) ... RZ(-theta): peephole can't see it,
  // commutation-aware cancellation can.
  qir::Circuit c(2);
  c.rz(0.8, 0).cx(0, 1).rz(-0.8, 0);
  OptimizeStats stats;
  auto out = commute_cancel(c, &stats);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_EQ(stats.cancelled_pairs, 1u);
  EXPECT_TRUE(sim::circuits_equivalent(out, c));
}

TEST(CommuteCancel, XThroughCxTarget) {
  qir::Circuit c(2);
  c.x(1).cx(0, 1).x(1);
  auto out = commute_cancel(c);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_TRUE(sim::circuits_equivalent(out, c));
}

TEST(CommuteCancel, BlockedByNonCommuter) {
  qir::Circuit c(2);
  c.rz(0.8, 0).h(0).rz(-0.8, 0);  // H does not commute with RZ
  auto out = commute_cancel(c);
  EXPECT_EQ(out.gate_count(), 3u);
}

TEST(CommuteCancel, CascadesToFixpoint) {
  qir::Circuit c(2);
  // Outer X pair becomes cancellable only after the inner RZ pair vanishes.
  c.x(1).rz(0.5, 1).rz(-0.5, 1).cx(0, 1).x(1);
  auto out = commute_cancel(c);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_EQ(out.gate(0).kind, qir::GateKind::CX);
}

TEST(CommuteCancel, PreservesRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto c = qir::library::random_universal(4, 30, rng);
    auto out = commute_cancel(c);
    EXPECT_LE(out.gate_count(), c.gate_count());
    EXPECT_TRUE(sim::circuits_equivalent(out, c)) << "seed " << seed;
  }
}

TEST(CommuteCancel, NoOpOnIrreducible) {
  qir::Circuit c(2);
  c.h(0).cx(0, 1).t(1);
  auto out = commute_cancel(c);
  EXPECT_TRUE(out == c);
}

}  // namespace
}  // namespace tetris::compiler
