#include "lock/insertion.h"

#include <gtest/gtest.h>

#include "revlib/benchmarks.h"

namespace tetris::lock {
namespace {

TEST(PrefixFits, EmptyPrefixAlwaysFits) {
  std::vector<int> first_use{3, 0, 2};
  EXPECT_TRUE(prefix_fits({}, first_use, nullptr));
}

TEST(PrefixFits, SingleGateNeedsOneLeadingLayer) {
  std::vector<int> first_use{1, 0};
  EXPECT_TRUE(prefix_fits({qir::make_x(0)}, first_use, nullptr));
  EXPECT_FALSE(prefix_fits({qir::make_x(1)}, first_use, nullptr));
}

TEST(PrefixFits, PairNeedsTwoLayers) {
  std::vector<int> first_use{2, 1};
  std::vector<qir::Gate> pair{qir::make_x(0), qir::make_x(0)};
  EXPECT_TRUE(prefix_fits(pair, first_use, nullptr));
  std::vector<qir::Gate> too_tall{qir::make_x(1), qir::make_x(1)};
  EXPECT_FALSE(prefix_fits(too_tall, first_use, nullptr));
}

TEST(PrefixFits, CxNeedsBothWires) {
  std::vector<int> first_use{2, 2, 1};
  EXPECT_TRUE(prefix_fits({qir::make_cx(0, 1)}, first_use, nullptr));
  EXPECT_FALSE(prefix_fits({qir::make_cx(0, 2), qir::make_cx(0, 2)},
                           first_use, nullptr));
}

TEST(PrefixFits, ReportsAsapLayers) {
  std::vector<int> first_use{4, 4};
  std::vector<qir::Gate> prefix{qir::make_x(0), qir::make_cx(0, 1),
                                qir::make_x(1)};
  std::vector<int> layers;
  ASSERT_TRUE(prefix_fits(prefix, first_use, &layers));
  EXPECT_EQ(layers, (std::vector<int>{0, 1, 2}));
}

TEST(Insertion, ZeroLimitGivesEmptyPlan) {
  InsertionConfig cfg;
  cfg.max_random_gates = 0;
  Rng rng(1);
  auto plan = plan_insertion(revlib::build_rd53(), cfg, rng);
  EXPECT_TRUE(plan.random.empty());
  EXPECT_TRUE(plan.prefix.empty());
}

TEST(Insertion, RespectsGateLimit) {
  InsertionConfig cfg;
  cfg.max_random_gates = 2;
  Rng rng(5);
  auto plan = plan_insertion(revlib::build_rd53(), cfg, rng);
  EXPECT_LE(plan.random.size(), 2u);
  EXPECT_EQ(plan.prefix.size(), 2 * plan.random.size());
}

TEST(Insertion, PrefixIsInverseThenForward) {
  InsertionConfig cfg;
  cfg.max_random_gates = 2;
  Rng rng(7);
  auto plan = plan_insertion(revlib::build_4gt11(), cfg, rng);
  const std::size_t k = plan.random.size();
  ASSERT_GE(k, 1u);
  for (std::size_t i = 0; i < k; ++i) {
    // prefix[i] is the adjoint of random[k-1-i]; prefix[k+i] == random[i].
    EXPECT_TRUE(plan.prefix[i].approx_equal(
        plan.random.gate(k - 1 - i).adjoint()));
    EXPECT_TRUE(plan.prefix[k + i].approx_equal(plan.random.gate(i)));
  }
}

TEST(Insertion, AlphabetXOnly) {
  InsertionConfig cfg;
  cfg.alphabet = InsertionAlphabet::XOnly;
  cfg.max_random_gates = 2;
  Rng rng(3);
  auto plan = plan_insertion(revlib::build_rd73(), cfg, rng);
  for (const auto& g : plan.random.gates()) {
    EXPECT_EQ(g.kind, qir::GateKind::X);
  }
}

TEST(Insertion, AlphabetHadamard) {
  InsertionConfig cfg;
  cfg.alphabet = InsertionAlphabet::Hadamard;
  cfg.max_random_gates = 2;
  Rng rng(3);
  auto plan = plan_insertion(revlib::build_rd73(), cfg, rng);
  EXPECT_GE(plan.random.size(), 1u);
  for (const auto& g : plan.random.gates()) {
    EXPECT_EQ(g.kind, qir::GateKind::H);
  }
}

TEST(Insertion, AlphabetCXOnly) {
  InsertionConfig cfg;
  cfg.alphabet = InsertionAlphabet::CXOnly;
  cfg.max_random_gates = 2;
  Rng rng(3);
  auto plan = plan_insertion(revlib::build_rd84(), cfg, rng);
  for (const auto& g : plan.random.gates()) {
    EXPECT_EQ(g.kind, qir::GateKind::CX);
  }
}

TEST(Insertion, NoLeadingSlackMeansNoInsertion) {
  // Every qubit used at layer 0: nothing can be prepended without depth.
  qir::Circuit c(2);
  c.cx(0, 1);
  InsertionConfig cfg;
  cfg.max_random_gates = 4;
  Rng rng(9);
  auto plan = plan_insertion(c, cfg, rng);
  EXPECT_TRUE(plan.random.empty());
}

/// Property sweep: for every benchmark and many seeds, the accepted prefix
/// always fits the leading region.
class InsertionProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(InsertionProperty, PrefixAlwaysFitsLeadingRegion) {
  const auto& [name, seed] = GetParam();
  const auto& b = revlib::get_benchmark(name);
  InsertionConfig cfg;
  cfg.max_random_gates = 2;
  Rng rng(static_cast<std::uint64_t>(seed));
  auto plan = plan_insertion(b.circuit, cfg, rng);

  qir::LayerSchedule sched(b.circuit);
  std::vector<int> first_use(static_cast<std::size_t>(b.circuit.num_qubits()));
  for (int q = 0; q < b.circuit.num_qubits(); ++q) {
    first_use[static_cast<std::size_t>(q)] = sched.first_use(q);
  }
  EXPECT_TRUE(prefix_fits(plan.prefix, first_use, nullptr));
  EXPECT_EQ(plan.prefix_layers.size(), plan.prefix.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InsertionProperty,
    ::testing::Combine(::testing::ValuesIn(revlib::benchmark_names()),
                       ::testing::Values(1, 2, 3, 17, 99)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tetris::lock
