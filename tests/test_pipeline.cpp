#include "lock/pipeline.h"

#include <gtest/gtest.h>

#include "revlib/benchmarks.h"

namespace tetris::lock {
namespace {

FlowResult run_on(const std::string& name, const compiler::Target& target,
                  std::uint64_t seed, std::size_t shots = 400) {
  const auto& b = revlib::get_benchmark(name);
  FlowConfig cfg;
  cfg.shots = shots;
  Rng rng(seed);
  return run_flow(b.circuit, b.measured, target, cfg, rng);
}

TEST(Pipeline, IdealBackendGivesPerfectRestoration) {
  auto target = compiler::device_for(5);
  target.noise = sim::NoiseModel::ideal();
  auto r = run_on("4mod5", target, 3);
  EXPECT_DOUBLE_EQ(r.accuracy_original, 1.0);
  EXPECT_DOUBLE_EQ(r.accuracy_restored, 1.0);
  EXPECT_DOUBLE_EQ(r.tvd_restored, 0.0);
}

TEST(Pipeline, ObfuscatedOutputDiffersEvenIdeally) {
  auto target = compiler::device_for(7);
  target.noise = sim::NoiseModel::ideal();
  auto r = run_on("rd53", target, 5);
  ASSERT_GE(r.obf.random.size(), 1u);
  EXPECT_GT(r.tvd_obfuscated, 0.3);
}

TEST(Pipeline, DepthNeverIncreases) {
  for (const auto& name : revlib::benchmark_names()) {
    auto target = compiler::device_for(
        revlib::get_benchmark(name).circuit.num_qubits());
    target.noise = sim::NoiseModel::ideal();
    auto r = run_on(name, target, 11, 64);
    EXPECT_EQ(r.depth_obfuscated, r.depth_original) << name;
  }
}

TEST(Pipeline, GateOverheadWithinPaperBand) {
  auto target = compiler::device_for(5);
  target.noise = sim::NoiseModel::ideal();
  auto r = run_on("4mod5", target, 17, 64);
  std::size_t inserted = r.gates_obfuscated - r.gates_original;
  EXPECT_LE(inserted, 4u);
}

TEST(Pipeline, NoisyBackendKeepsRestoredAccuracyHigh) {
  auto target = compiler::device_for(5);  // fake_valencia noise
  auto r = run_on("1bit_adder", target, 23, 1000);
  EXPECT_GT(r.accuracy_restored, 0.8);
  EXPECT_GT(r.accuracy_original, 0.8);
  // Restoration penalty stays small (paper: < ~1%; we allow sampling slack).
  EXPECT_LT(r.accuracy_original - r.accuracy_restored, 0.1);
  // Restored TVD is near the noise floor, far below the obfuscated TVD.
  EXPECT_LT(r.tvd_restored, 0.3);
}

TEST(Pipeline, ObfuscatedTvdExceedsRestoredTvd) {
  auto target = compiler::device_for(7);
  auto r = run_on("rd53", target, 29, 600);
  ASSERT_GE(r.obf.random.size(), 1u);
  EXPECT_GT(r.tvd_obfuscated, r.tvd_restored);
}

TEST(Pipeline, ResultCarriesArtifacts) {
  auto target = compiler::device_for(5);
  target.noise = sim::NoiseModel::ideal();
  auto r = run_on("4gt13", target, 31, 64);
  EXPECT_EQ(r.obf.original.gate_count(), 4u);
  EXPECT_FALSE(r.splits.second.gate_indices.empty());
  EXPECT_EQ(r.recombined.circuit.num_qubits(), target.num_qubits());
  EXPECT_EQ(r.baseline.circuit.num_qubits(), target.num_qubits());
}

TEST(Pipeline, DeterministicForFixedSeed) {
  auto target = compiler::device_for(5);
  auto a = run_on("4mod5", target, 101, 200);
  auto b = run_on("4mod5", target, 101, 200);
  EXPECT_EQ(a.tvd_obfuscated, b.tvd_obfuscated);
  EXPECT_EQ(a.accuracy_restored, b.accuracy_restored);
  EXPECT_TRUE(a.obf.circuit == b.obf.circuit);
}

}  // namespace
}  // namespace tetris::lock
