#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "compiler/target.h"
#include "revlib/benchmarks.h"
#include "runtime/thread_pool.h"
#include "service/serialize.h"

namespace tetris::service {
namespace {

lock::FlowConfig small_config(std::size_t shots = 64) {
  lock::FlowConfig cfg;
  cfg.shots = shots;
  return cfg;
}

lock::FlowJob benchmark_job(const char* name, std::size_t shots = 64) {
  const auto& b = revlib::get_benchmark(name);
  return lock::make_flow_job(b.name, b.circuit, b.measured,
                             small_config(shots));
}

std::vector<lock::FlowJob> suite_jobs(std::size_t shots = 64) {
  std::vector<lock::FlowJob> jobs;
  for (const auto& b : revlib::table1_benchmarks()) {
    jobs.push_back(
        lock::make_flow_job(b.name, b.circuit, b.measured, small_config(shots)));
  }
  return jobs;
}

/// A job the pipeline must reject: more logical qubits than the target has.
lock::FlowJob oversized_job() {
  qir::Circuit wide(6, "too_wide");
  wide.x(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(4, 5);
  lock::FlowJob job;
  job.name = "too_wide";
  job.circuit = wide;
  for (int q = 0; q < 6; ++q) job.measured.push_back(q);
  job.target = compiler::fake_valencia();  // 5 physical qubits
  job.config = small_config();
  return job;
}

// ------------------------------------------------------------ basic lifecycle

TEST(Service, SubmitWaitHappyPath) {
  Service svc;
  auto handle = svc.submit(benchmark_job("4mod5"));
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.id(), 1u);

  JobOutcome outcome = handle.wait();
  EXPECT_EQ(outcome.state, JobState::kDone);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.name, "4mod5");
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_EQ(outcome.result.depth_obfuscated, outcome.result.depth_original);
  EXPECT_GT(outcome.result.gates_obfuscated, outcome.result.gates_original);
}

TEST(Service, PollReportsTerminalStateAfterWait) {
  Service svc;
  auto handle = svc.submit(benchmark_job("4gt13"));
  handle.wait();
  EXPECT_EQ(handle.poll(), JobState::kDone);
}

TEST(Service, WaitAllPreservesSubmissionOrder) {
  Service svc;
  svc.submit_all({benchmark_job("4mod5"), benchmark_job("4gt13")});
  EXPECT_EQ(svc.jobs_submitted(), 2u);
  auto outcomes = svc.wait_all();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].name, "4mod5");
  EXPECT_EQ(outcomes[1].name, "4gt13");
  EXPECT_EQ(outcomes[0].id, 1u);
  EXPECT_EQ(outcomes[1].id, 2u);
}

TEST(Service, DrainStreamsInSubmissionOrderExactlyOnce) {
  ServiceConfig config;
  config.num_threads = 3;
  Service svc(config);
  svc.submit_all(
      {benchmark_job("4mod5"), benchmark_job("4gt13"), benchmark_job("4gt11")});

  std::vector<std::string> names;
  std::size_t delivered = svc.drain(
      [&](const JobOutcome& out) { names.push_back(out.name); });
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(names, (std::vector<std::string>{"4mod5", "4gt13", "4gt11"}));

  // Already drained: nothing more to deliver.
  EXPECT_EQ(svc.drain([](const JobOutcome&) { FAIL(); }), 0u);

  // A later submission is picked up by the next drain.
  svc.submit(benchmark_job("4mod5"));
  std::size_t more = svc.drain(
      [&](const JobOutcome& out) { EXPECT_EQ(out.name, "4mod5"); });
  EXPECT_EQ(more, 1u);
}

TEST(Service, ConcurrentDrainsDeliverEachJobExactlyOnce) {
  // Two drains racing on the same service: the cursor, not a captured
  // record, anchors delivery, so between them they must hand out every job
  // exactly once (in order overall, split arbitrarily between the sinks).
  ServiceConfig config;
  config.num_threads = 2;
  Service svc(config);
  std::vector<lock::FlowJob> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(benchmark_job(i % 2 == 0 ? "4mod5" : "4gt13"));
  }
  svc.submit_all(jobs);

  std::mutex m;
  std::vector<std::uint64_t> ids;
  auto drain_into = [&] {
    svc.drain([&](const JobOutcome& out) {
      std::lock_guard<std::mutex> g(m);
      ids.push_back(out.id);
    });
  };
  std::thread a(drain_into);
  std::thread b(drain_into);
  a.join();
  b.join();

  ASSERT_EQ(ids.size(), 10u);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1) << "job delivered twice or skipped";
  }
}

TEST(Service, UnknownJobIdThrows) {
  Service svc;
  EXPECT_THROW(svc.poll(JobHandle()), InvalidArgument);
}

TEST(Service, HandleLookupRebuildsHandlesFromIds) {
  ServiceConfig config;
  config.num_threads = 2;
  Service svc(config);
  auto submitted = svc.submit(benchmark_job("4mod5"));
  JobHandle looked_up = svc.handle(submitted.id());
  EXPECT_EQ(looked_up.id(), submitted.id());
  EXPECT_EQ(looked_up.wait().state, JobState::kDone);
  EXPECT_THROW(svc.handle(99), InvalidArgument);
  EXPECT_THROW(svc.handle(0), InvalidArgument);
}

TEST(Service, OutcomeIsRepeatableAndLeavesDrainCursorAlone) {
  // The regression the network front-end depends on: GET /v1/jobs/{id} maps
  // to outcome(), which must be callable any number of times — before and
  // after drain — without consuming drain's once-only delivery.
  ServiceConfig config;
  config.num_threads = 2;
  Service svc(config);
  auto handle = svc.submit(benchmark_job("4mod5"));

  // Non-terminal snapshots carry the metadata but never a result; whatever
  // state the job is in when sampled, the call must not block or throw.
  JobOutcome early = svc.outcome(handle);
  EXPECT_EQ(early.id, handle.id());
  EXPECT_EQ(early.name, "4mod5");
  if (!is_terminal(early.state)) {
    EXPECT_EQ(early.result.gates_obfuscated, 0u);
  }

  JobOutcome waited = handle.wait();
  ASSERT_EQ(waited.state, JobState::kDone);

  // Repeatable, and identical to wait()'s view of the job.
  JobOutcome first = svc.outcome(handle);
  JobOutcome second = handle.outcome();
  for (const JobOutcome* out : {&first, &second}) {
    EXPECT_EQ(out->state, JobState::kDone);
    EXPECT_EQ(out->seed, waited.seed);
    EXPECT_EQ(out->result.tvd_restored, waited.result.tvd_restored);
    EXPECT_EQ(out->result.gates_obfuscated, waited.result.gates_obfuscated);
  }
  EXPECT_EQ(to_json(first, false), to_json(second, false));

  // outcome() reads above must not have consumed the drain delivery...
  std::size_t drained = svc.drain([&](const JobOutcome& out) {
    EXPECT_EQ(out.id, handle.id());
  });
  EXPECT_EQ(drained, 1u);
  // ...and draining must not break later outcome() reads either.
  EXPECT_EQ(to_json(svc.outcome(handle), false), to_json(first, false));
  EXPECT_EQ(svc.drain([](const JobOutcome&) { FAIL(); }), 0u);
}

TEST(Service, SubmitFromWorkerThreadRunsInline) {
  // A service call from inside a global-pool worker must not deadlock the
  // fixed pool; the job executes inline and the handle is already terminal.
  Service svc;
  auto future = runtime::ThreadPool::global().submit([&svc] {
    auto handle = svc.submit(benchmark_job("4mod5"));
    return handle.poll();
  });
  JobState state = future.get();
  EXPECT_TRUE(state == JobState::kDone || state == JobState::kFailed);
  EXPECT_EQ(svc.wait_all().front().state, JobState::kDone);
}

// ----------------------------------------------------------------- failures

TEST(Service, OversizedCircuitFailsWithoutDisturbingSiblings) {
  ServiceConfig config;
  config.num_threads = 2;
  config.cache_capacity = 8;
  Service svc(config);
  svc.submit_all({benchmark_job("4mod5"), oversized_job(), benchmark_job("4gt13")});
  auto outcomes = svc.wait_all();
  ASSERT_EQ(outcomes.size(), 3u);

  EXPECT_EQ(outcomes[0].state, JobState::kDone);
  EXPECT_EQ(outcomes[2].state, JobState::kDone);

  EXPECT_EQ(outcomes[1].state, JobState::kFailed);
  EXPECT_NE(outcomes[1].status.code, StatusCode::kOk);
  EXPECT_FALSE(outcomes[1].status.message.empty());

  // The failure produced no cache entry: only the two successes are resident.
  EXPECT_EQ(svc.cache_stats().entries, 2u);
}

TEST(Service, OutcomeCarriesSamplerSettings) {
  Service svc;
  auto job = benchmark_job("4mod5");
  job.config.sample_threads = 2;
  auto outcome = svc.submit(std::move(job)).wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.shots, 64u);
  EXPECT_EQ(outcome.sample_threads, 2u);
  // The JSON document echoes the sampler settings the job ran with.
  std::string doc = to_json(outcome, /*include_timing=*/false, 0);
  EXPECT_NE(doc.find("\"sampler\":{\"shots\":64,\"threads\":2}"),
            std::string::npos)
      << doc;
}

TEST(Service, DeviceFallbackWarningReachesJson) {
  Service svc;
  // rd53 is 7 qubits — past the preset band, so make_flow_job records the
  // ring-topology fallback and the outcome document must surface it.
  auto wide = benchmark_job("rd53");
  ASSERT_EQ(wide.warnings.size(), 1u);
  EXPECT_NE(wide.warnings[0].find("ring7"), std::string::npos);
  auto outcome = svc.submit(std::move(wide)).wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  ASSERT_EQ(outcome.warnings.size(), 1u);
  std::string doc = to_json(outcome, /*include_timing=*/false, 0);
  EXPECT_NE(doc.find("\"warnings\":["), std::string::npos) << doc;
  EXPECT_NE(doc.find("ring7"), std::string::npos) << doc;

  // In-band jobs carry no warnings, and their JSON stays byte-identical to
  // the pre-warnings schema: no "warnings" key at all.
  auto narrow = benchmark_job("4mod5");
  EXPECT_TRUE(narrow.warnings.empty());
  auto outcome2 = svc.submit(std::move(narrow)).wait();
  ASSERT_EQ(outcome2.state, JobState::kDone);
  EXPECT_EQ(to_json(outcome2, /*include_timing=*/false, 0).find("\"warnings\""),
            std::string::npos);
}

TEST(Service, SamplerFanOutDoesNotChangeResults) {
  // sample_threads is a pure performance knob: flows configured serial and
  // sharded must serialize identically (minus the echoed setting itself),
  // and it is excluded from the cache fingerprint.
  auto serial_job = benchmark_job("rd53");
  serial_job.config.sample_threads = 1;
  auto sharded_job = benchmark_job("rd53");
  sharded_job.config.sample_threads = 8;
  EXPECT_EQ(flow_fingerprint(serial_job), flow_fingerprint(sharded_job));

  ServiceConfig config;
  config.num_threads = 4;
  Service svc(config);
  auto serial = svc.submit(serial_job, /*seed=*/77).wait();
  auto sharded = svc.submit(sharded_job, /*seed=*/77).wait();
  ASSERT_EQ(serial.state, JobState::kDone);
  ASSERT_EQ(sharded.state, JobState::kDone);
  EXPECT_EQ(to_json(serial.result), to_json(sharded.result));
}

TEST(Service, FailedOutcomeSerializesStatusNotResult) {
  Service svc;
  auto outcome = svc.submit(oversized_job()).wait();
  ASSERT_EQ(outcome.state, JobState::kFailed);
  std::string doc = to_json(outcome, /*include_timing=*/false, 0);
  EXPECT_NE(doc.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_EQ(doc.find("\"result\""), std::string::npos);
  EXPECT_NE(doc.find("\"message\""), std::string::npos);
}

// -------------------------------------------------------------- cancellation

TEST(Service, CancelOnFinishedJobIsRejected) {
  Service svc;
  auto handle = svc.submit(benchmark_job("4mod5"));
  handle.wait();
  EXPECT_FALSE(handle.cancel());
  EXPECT_EQ(handle.poll(), JobState::kDone);
}

TEST(Service, CancelledQueuedJobsNeverExecute) {
  // One worker: while it chews on the first job the rest sit queued, so at
  // least some cancellations must land; every cancel() == true must surface
  // as a kCancelled outcome, everything else must complete normally.
  ServiceConfig config;
  config.num_threads = 1;
  Service svc(config);
  std::vector<JobHandle> handles;
  handles.push_back(svc.submit(benchmark_job("rd84")));
  for (int i = 0; i < 6; ++i) handles.push_back(svc.submit(benchmark_job("4mod5")));

  std::vector<bool> cancelled;
  cancelled.push_back(false);  // never cancel the running head job
  for (std::size_t i = 1; i < handles.size(); ++i) {
    cancelled.push_back(handles[i].cancel());
  }

  for (std::size_t i = 0; i < handles.size(); ++i) {
    JobOutcome outcome = handles[i].wait();
    if (cancelled[i]) {
      EXPECT_EQ(outcome.state, JobState::kCancelled);
      EXPECT_EQ(outcome.status.code, StatusCode::kCancelled);
    } else {
      EXPECT_EQ(outcome.state, JobState::kDone);
    }
  }
}

// ------------------------------------------------------------------- caching

TEST(ServiceCache, RepeatSubmissionHitsWithBitIdenticalResult) {
  ServiceConfig config;
  config.cache_capacity = 8;
  Service svc(config);

  auto first = svc.submit(benchmark_job("4mod5")).wait();
  auto second = svc.submit(benchmark_job("4mod5")).wait();

  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(first.result.tvd_obfuscated, second.result.tvd_obfuscated);
  EXPECT_EQ(first.result.tvd_restored, second.result.tvd_restored);
  EXPECT_EQ(first.result.accuracy_original, second.result.accuracy_original);
  EXPECT_EQ(first.result.accuracy_restored, second.result.accuracy_restored);
  EXPECT_TRUE(first.result.recombined.circuit ==
              second.result.recombined.circuit);
  EXPECT_EQ(to_json(first.result), to_json(second.result));

  auto stats = svc.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServiceCache, KeyCoversCircuitSeedAndConfig) {
  ServiceConfig config;
  config.cache_capacity = 16;
  Service svc(config);
  svc.submit(benchmark_job("4mod5")).wait();  // warm entry

  // Different seed: miss.
  auto other_seed = svc.submit(benchmark_job("4mod5"), 12345).wait();
  EXPECT_FALSE(other_seed.cache_hit);

  // Different circuit: miss.
  auto other_circuit = svc.submit(benchmark_job("4gt13")).wait();
  EXPECT_FALSE(other_circuit.cache_hit);

  // Different flow config (shot count): miss.
  auto other_shots = svc.submit(benchmark_job("4mod5", 65)).wait();
  EXPECT_FALSE(other_shots.cache_hit);

  // Different measured list (4mod5 measures {4}; also read qubit 0): miss.
  auto measured_job = benchmark_job("4mod5");
  measured_job.measured.push_back(0);
  auto other_measured = svc.submit(measured_job).wait();
  EXPECT_FALSE(other_measured.cache_hit);

  // The original triple still hits.
  auto repeat = svc.submit(benchmark_job("4mod5")).wait();
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(svc.cache_stats().hits, 1u);
  EXPECT_EQ(svc.cache_stats().misses, 5u);
}

TEST(ServiceCache, FingerprintSeparatesConfigs) {
  auto job = benchmark_job("4mod5");
  auto same = benchmark_job("4mod5");
  EXPECT_EQ(flow_fingerprint(job), flow_fingerprint(same));

  auto shots = benchmark_job("4mod5", 128);
  EXPECT_NE(flow_fingerprint(job), flow_fingerprint(shots));

  auto insertion = benchmark_job("4mod5");
  insertion.config.insertion.max_random_gates = 4;
  EXPECT_NE(flow_fingerprint(job), flow_fingerprint(insertion));

  auto split = benchmark_job("4mod5");
  split.config.split.interlock_fraction = 0.5;
  EXPECT_NE(flow_fingerprint(job), flow_fingerprint(split));

  auto target = benchmark_job("4mod5");
  target.target = compiler::line_device(5);
  EXPECT_NE(flow_fingerprint(job), flow_fingerprint(target));
}

TEST(ServiceCache, EvictionRespectsCapacityBound) {
  ServiceConfig config;
  config.num_threads = 1;
  config.cache_capacity = 2;
  Service svc(config);

  // Sequential fills give a deterministic LRU order: after the third insert
  // the first entry is the least recently used and must be gone.
  svc.submit(benchmark_job("4mod5")).wait();
  svc.submit(benchmark_job("4gt13")).wait();
  svc.submit(benchmark_job("4gt11")).wait();

  auto stats = svc.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  EXPECT_TRUE(svc.submit(benchmark_job("4gt11")).wait().cache_hit);
  EXPECT_TRUE(svc.submit(benchmark_job("4gt13")).wait().cache_hit);
  // 4mod5 was evicted; it recomputes (and evicts 4gt11 in turn).
  EXPECT_FALSE(svc.submit(benchmark_job("4mod5")).wait().cache_hit);
  EXPECT_EQ(svc.cache_stats().entries, 2u);
  EXPECT_EQ(svc.cache_stats().evictions, 2u);
}

TEST(ServiceCache, ConcurrentIdenticalSubmissionsLeaveOneEntry) {
  // Cache stampede: many identical jobs in flight at once. Workers that
  // miss concurrently must not each insert — a duplicate list entry would
  // corrupt the LRU index on eviction. Afterwards exactly one entry is
  // resident and the triple still hits.
  ServiceConfig config;
  config.num_threads = 4;
  config.cache_capacity = 2;
  Service svc(config);
  std::vector<lock::FlowJob> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(benchmark_job("4mod5"));
  // Same seed for every copy so all eight share one cache key.
  std::vector<JobHandle> handles;
  for (auto& job : jobs) handles.push_back(svc.submit(std::move(job), 99));
  for (auto& h : handles) EXPECT_EQ(h.wait().state, JobState::kDone);

  auto stats = svc.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 8u);
  EXPECT_TRUE(svc.submit(benchmark_job("4mod5"), 99).wait().cache_hit);
}

TEST(ServiceCache, ClearCacheKeepsCounters) {
  ServiceConfig config;
  config.cache_capacity = 4;
  Service svc(config);
  svc.submit(benchmark_job("4mod5")).wait();
  svc.clear_cache();
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  EXPECT_EQ(svc.cache_stats().misses, 1u);
  EXPECT_FALSE(svc.submit(benchmark_job("4mod5")).wait().cache_hit);
}

TEST(ServiceCache, DisabledCacheNeverHits) {
  Service svc;  // cache_capacity = 0
  svc.submit(benchmark_job("4mod5")).wait();
  auto second = svc.submit(benchmark_job("4mod5")).wait();
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  EXPECT_EQ(svc.cache_stats().capacity, 0u);
}

// ------------------------------------------------- determinism / equivalence

/// Serializes a batch without run-dependent fields (timing, thread count).
std::string stable_json(const std::vector<JobOutcome>& outcomes) {
  return batch_to_json(outcomes, /*threads=*/0, /*wall_seconds=*/0.0,
                       /*cache=*/nullptr, /*include_timing=*/false);
}

TEST(ServiceDeterminism, SuiteJsonByteIdenticalAcrossThreadCounts) {
  // The RevLib Table-I suite via submit + drain at 1 and at 8 worker
  // threads: the serialized outcomes must match byte for byte (ISSUE 2
  // acceptance gate). drain() exercises the streaming path at width 8.
  auto run_at = [](unsigned threads) {
    ServiceConfig config;
    config.num_threads = threads;
    config.base_seed = 2025;
    Service svc(config);
    svc.submit_all(suite_jobs());
    std::vector<JobOutcome> outcomes;
    svc.drain([&](const JobOutcome& out) { outcomes.push_back(out); });
    return outcomes;
  };
  auto one = run_at(1);
  auto eight = run_at(8);
  ASSERT_EQ(one.size(), eight.size());
  for (const auto& out : one) ASSERT_EQ(out.state, JobState::kDone);
  EXPECT_EQ(stable_json(one), stable_json(eight));
}

TEST(ServiceDeterminism, SecondPassServedFromCacheIdentically) {
  ServiceConfig config;
  config.num_threads = 4;
  config.base_seed = 2025;
  config.cache_capacity = 64;
  Service svc(config);

  svc.submit_all(suite_jobs());
  auto first = svc.wait_all();
  svc.submit_all(suite_jobs());
  auto all = svc.wait_all();
  std::vector<JobOutcome> second(all.begin() + first.size(), all.end());

  std::size_t hits = 0;
  for (const auto& out : second) {
    if (out.cache_hit) ++hits;
  }
  // Every job of the second pass repeats a (circuit, seed, config) triple of
  // the first, so all of them must be hits (acceptance bar is >= 90%).
  EXPECT_EQ(hits, second.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(to_json(first[i].result), to_json(second[i].result)) << i;
  }
}

TEST(ServiceDeterminism, MatchesLegacyRunFlowBatch) {
  // The compatibility wrapper and the facade must agree bit for bit: same
  // seed derivation, same per-job results.
  auto jobs = [] {
    return std::vector<lock::FlowJob>{benchmark_job("4mod5"),
                                      benchmark_job("4gt13")};
  };
  auto legacy = lock::run_flow_batch(jobs(), 77, 2);

  ServiceConfig config;
  config.num_threads = 2;
  config.base_seed = 77;
  Service svc(config);
  svc.submit_all(jobs());
  auto outcomes = svc.wait_all();

  ASSERT_EQ(legacy.items.size(), outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(legacy.items[i].ok);
    ASSERT_EQ(outcomes[i].state, JobState::kDone);
    EXPECT_EQ(legacy.items[i].result.tvd_obfuscated,
              outcomes[i].result.tvd_obfuscated);
    EXPECT_EQ(legacy.items[i].result.tvd_restored,
              outcomes[i].result.tvd_restored);
    EXPECT_EQ(legacy.items[i].result.accuracy_restored,
              outcomes[i].result.accuracy_restored);
    EXPECT_EQ(legacy.items[i].result.gates_obfuscated,
              outcomes[i].result.gates_obfuscated);
  }
}

}  // namespace
}  // namespace tetris::service
