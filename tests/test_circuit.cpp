#include "qir/circuit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace tetris::qir {
namespace {

TEST(Circuit, EmptyCircuit) {
  Circuit c(3);
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.depth(), 0);
  EXPECT_EQ(c.gate_count(), 0u);
  EXPECT_TRUE(c.used_qubits().empty());
}

TEST(Circuit, NegativeWidthRejected) {
  EXPECT_THROW(Circuit(-1), InvalidArgument);
}

TEST(Circuit, BuilderChains) {
  Circuit c(3);
  c.h(0).cx(0, 1).ccx(0, 1, 2).x(2);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
}

TEST(Circuit, AddValidatesQubitRange) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), InvalidArgument);
  EXPECT_THROW(c.x(-1), InvalidArgument);
  EXPECT_THROW(c.cx(0, 5), InvalidArgument);
}

TEST(Circuit, AddValidatesDistinctQubits) {
  Circuit c(3);
  EXPECT_THROW(c.cx(1, 1), InvalidArgument);
  EXPECT_THROW(c.ccx(0, 2, 2), InvalidArgument);
}

TEST(Circuit, AddValidatesArityAndParams) {
  Circuit c(3);
  EXPECT_THROW(c.add(Gate(GateKind::CX, {0})), InvalidArgument);
  EXPECT_THROW(c.add(Gate(GateKind::X, {0}, {0.5})), InvalidArgument);
  EXPECT_THROW(c.add(Gate(GateKind::RZ, {0})), InvalidArgument);
  EXPECT_THROW(c.add(Gate(GateKind::MCX, {0, 1, 2})), InvalidArgument);
}

TEST(Circuit, DepthSerialVsParallel) {
  Circuit serial(2);
  serial.x(0).x(0).x(0);
  EXPECT_EQ(serial.depth(), 3);

  Circuit parallel(3);
  parallel.x(0).x(1).x(2);
  EXPECT_EQ(parallel.depth(), 1);

  Circuit mixed(2);
  mixed.x(0).cx(0, 1).x(1);
  EXPECT_EQ(mixed.depth(), 3);
}

TEST(Circuit, BarrierAlignsButAddsNoDepth) {
  Circuit c(2);
  c.x(0).barrier().x(1);
  // Without the barrier x(1) would be at layer 0; the barrier pushes it to 1.
  EXPECT_EQ(c.depth(), 2);
  EXPECT_EQ(c.gate_count(), 2u);  // barrier not counted
  Circuit nobar = c.without_barriers();
  EXPECT_EQ(nobar.size(), 2u);
  EXPECT_EQ(nobar.depth(), 1);
}

TEST(Circuit, AppendSameWidth) {
  Circuit a(2);
  a.x(0);
  Circuit b(2);
  b.cx(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.gate(1).kind, GateKind::CX);
}

TEST(Circuit, AppendNarrowerIsAllowedWiderIsNot) {
  Circuit wide(4);
  Circuit narrow(2);
  narrow.cx(0, 1);
  wide.append(narrow);  // ok
  EXPECT_EQ(wide.size(), 1u);
  Circuit tiny(1);
  EXPECT_THROW(tiny.append(wide), InvalidArgument);
}

TEST(Circuit, AppendMapped) {
  Circuit host(4);
  Circuit part(2);
  part.cx(0, 1).x(1);
  host.append_mapped(part, {3, 1});
  ASSERT_EQ(host.size(), 2u);
  EXPECT_EQ(host.gate(0).qubits, (std::vector<int>{3, 1}));
  EXPECT_EQ(host.gate(1).qubits, (std::vector<int>{1}));
}

TEST(Circuit, AppendMappedValidatesSize) {
  Circuit host(4);
  Circuit part(2);
  part.x(0);
  EXPECT_THROW(host.append_mapped(part, {1}), InvalidArgument);
}

TEST(Circuit, InverseReversesAndAdjoints) {
  Circuit c(2);
  c.h(0).s(0).cx(0, 1).rz(0.5, 1);
  Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv.gate(0).kind, GateKind::RZ);
  EXPECT_DOUBLE_EQ(inv.gate(0).params[0], -0.5);
  EXPECT_EQ(inv.gate(1).kind, GateKind::CX);
  EXPECT_EQ(inv.gate(2).kind, GateKind::Sdg);
  EXPECT_EQ(inv.gate(3).kind, GateKind::H);
}

TEST(Circuit, RemappedMovesQubits) {
  Circuit c(2);
  c.cx(0, 1);
  Circuit r = c.remapped({2, 0}, 3);
  EXPECT_EQ(r.num_qubits(), 3);
  EXPECT_EQ(r.gate(0).qubits, (std::vector<int>{2, 0}));
}

TEST(Circuit, RemappedValidates) {
  Circuit c(2);
  c.cx(0, 1);
  EXPECT_THROW(c.remapped({0}, 3), InvalidArgument);
  EXPECT_THROW(c.remapped({0, 5}, 3), InvalidArgument);
}

TEST(Circuit, SubcircuitPicksGates) {
  Circuit c(2);
  c.x(0).cx(0, 1).x(1).h(0);
  Circuit s = c.subcircuit({1, 3});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.gate(0).kind, GateKind::CX);
  EXPECT_EQ(s.gate(1).kind, GateKind::H);
}

TEST(Circuit, CountOps) {
  Circuit c(3);
  c.x(0).x(1).cx(0, 1).ccx(0, 1, 2).barrier();
  auto ops = c.count_ops();
  EXPECT_EQ(ops["x"], 2u);
  EXPECT_EQ(ops["cx"], 1u);
  EXPECT_EQ(ops["ccx"], 1u);
  EXPECT_EQ(ops.count("barrier"), 0u);
  EXPECT_EQ(c.multi_qubit_gate_count(), 2u);
}

TEST(Circuit, UsedQubits) {
  Circuit c(5);
  c.cx(1, 3);
  auto used = c.used_qubits();
  EXPECT_EQ(used.size(), 2u);
  EXPECT_TRUE(used.count(1));
  EXPECT_TRUE(used.count(3));
}

TEST(Circuit, IsClassical) {
  Circuit classical(3);
  classical.x(0).cx(0, 1).ccx(0, 1, 2).swap(0, 2);
  EXPECT_TRUE(classical.is_classical());
  classical.h(0);
  EXPECT_FALSE(classical.is_classical());
}

TEST(Circuit, EqualityIgnoresName) {
  Circuit a(2, "a");
  a.x(0);
  Circuit b(2, "b");
  b.x(0);
  EXPECT_TRUE(a == b);
  b.x(1);
  EXPECT_FALSE(a == b);
}

TEST(Circuit, ApproxEqualAngles) {
  Circuit a(1);
  a.rz(0.5, 0);
  Circuit b(1);
  b.rz(0.5 + 1e-14, 0);
  EXPECT_TRUE(a.approx_equal(b));
  Circuit c(1);
  c.rz(0.6, 0);
  EXPECT_FALSE(a.approx_equal(c));
}

TEST(Circuit, ToStringListsGates) {
  Circuit c(2, "demo");
  c.x(0).cx(0, 1);
  auto s = c.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("0: x q0"), std::string::npos);
  EXPECT_NE(s.find("1: cx q0, q1"), std::string::npos);
}

TEST(Circuit, ContentHashIgnoresNameOnly) {
  Circuit a(3, "alpha");
  a.h(0).cx(0, 1).rz(0.25, 2);
  Circuit b(3, "beta");
  b.h(0).cx(0, 1).rz(0.25, 2);
  EXPECT_EQ(a.content_hash(), b.content_hash());  // name is metadata
  EXPECT_EQ(a.content_hash(), a.content_hash());  // stable across calls
}

TEST(Circuit, ContentHashSeesEveryStructuralField) {
  Circuit base(3);
  base.h(0).cx(0, 1).rz(0.25, 2);
  const auto h = base.content_hash();

  Circuit other_kind(3);
  other_kind.x(0).cx(0, 1).rz(0.25, 2);
  EXPECT_NE(other_kind.content_hash(), h);

  Circuit other_qubit(3);
  other_qubit.h(1).cx(0, 1).rz(0.25, 2);
  EXPECT_NE(other_qubit.content_hash(), h);

  Circuit other_param(3);
  other_param.h(0).cx(0, 1).rz(0.25000001, 2);
  EXPECT_NE(other_param.content_hash(), h);

  Circuit other_width(4);
  other_width.h(0).cx(0, 1).rz(0.25, 2);
  EXPECT_NE(other_width.content_hash(), h);

  Circuit other_order(3);
  other_order.cx(0, 1).h(0).rz(0.25, 2);
  EXPECT_NE(other_order.content_hash(), h);
}

TEST(Circuit, IsCliffordIsConjunctionOverGates) {
  Circuit empty(3);
  EXPECT_TRUE(empty.is_clifford());

  Circuit cliff(3);
  cliff.h(0).s(1).cx(0, 1).barrier().swap(1, 2).rz(M_PI / 2, 2);
  EXPECT_TRUE(cliff.is_clifford());

  Circuit with_t = cliff;
  with_t.t(0);
  EXPECT_FALSE(with_t.is_clifford());

  Circuit with_offgrid = cliff;
  with_offgrid.rz(M_PI / 4, 0);
  EXPECT_FALSE(with_offgrid.is_clifford());

  // Classical (RevLib-style) circuits with Toffolis are NOT Clifford even
  // though they are exactly simulable classically — the two predicates are
  // independent.
  Circuit toffoli(3);
  toffoli.x(0).ccx(0, 1, 2);
  EXPECT_TRUE(toffoli.is_classical());
  EXPECT_FALSE(toffoli.is_clifford());
}

TEST(Circuit, ContentHashMatchesEqualityOnCopies) {
  Circuit a(3);
  a.ccx(0, 1, 2).swap(1, 2);  // exercise multi-qubit encoding too
  Circuit b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace tetris::qir
