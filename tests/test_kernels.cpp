#include "sim/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "qir/circuit.h"
#include "runtime/thread_pool.h"
#include "sim/fusion.h"
#include "sim/kernels/simd.h"
#include "sim/statevector.h"

namespace tetris::sim {
namespace {

using kernels::SimdMode;

/// Restores the process-wide SIMD mode on scope exit, so a test that forces
/// a mode cannot leak it into its siblings.
class ModeGuard {
 public:
  ModeGuard() : saved_(kernels::simd_mode()) {}
  ~ModeGuard() { kernels::set_simd_mode(saved_); }

 private:
  SimdMode saved_;
};

/// A dense circuit touching every qubit of an n-wide register: same-qubit
/// runs (1q fusion), distinct-qubit rows (gangs), 2q pair windows, and a CCX
/// passthrough — every kernel family fires.
qir::Circuit dense_circuit(int n, std::uint64_t seed) {
  qir::Circuit c(n);
  Rng rng(seed);
  for (int q = 0; q < n; ++q) {
    c.h(q);
    c.rz(rng.uniform() * 3.0, q);
  }
  for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (int q = 0; q < n; ++q) c.ry(rng.uniform() - 0.5, q);
  if (n >= 3) c.ccx(0, 1, n - 1);
  for (int q = 0; q < n; ++q) c.t(q);
  c.cz(0, n - 1);
  return c;
}

/// Runs `circuit` fused under a forced SIMD mode.
StateVector run_fused(const qir::Circuit& circuit, SimdMode mode) {
  ModeGuard guard;
  kernels::set_simd_mode(mode);
  StateVector sv(circuit.num_qubits());
  sv.apply_fused(FusionPlan::build(circuit));
  return sv;
}

/// Pseudorandom (but deterministic, mode-independent) amplitude fill.
std::vector<cplx> random_amps(std::size_t n, std::uint64_t seed) {
  std::vector<cplx> amps(n);
  Rng rng(seed);
  for (auto& a : amps) a = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
  return amps;
}

// ------------------------------------------------------------ mode plumbing

TEST(Simd, ModeQueryAndOverride) {
  ModeGuard guard;
  kernels::set_simd_mode(SimdMode::kScalar);
  EXPECT_EQ(kernels::simd_mode(), SimdMode::kScalar);
  EXPECT_STREQ(kernels::simd_mode_name(SimdMode::kScalar), "scalar");
  EXPECT_STREQ(kernels::simd_mode_name(SimdMode::kAvx2), "avx2");
  if (kernels::avx2_available()) {
    kernels::set_simd_mode(SimdMode::kAvx2);
    EXPECT_EQ(kernels::simd_mode(), SimdMode::kAvx2);
  } else {
    EXPECT_THROW(kernels::set_simd_mode(SimdMode::kAvx2), InvalidArgument);
  }
}

TEST(Simd, AvailabilityImpliesCompiled) {
  // avx2_available() must never claim kernels the build does not contain.
  if (kernels::avx2_available()) {
    EXPECT_TRUE(kernels::avx2_compiled());
  }
}

// ------------------------------------------- scalar-vs-AVX2 differential

// Whole-circuit differential at odd (non-power-of-friendly) widths: the two
// modes reassociate FP differently, so they agree to tolerance, not bits.
TEST(SimdDifferential, ScalarVsAvx2AtOddWidths) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  for (int n : {5, 7, 9, 11}) {
    auto c = dense_circuit(n, 101 + static_cast<std::uint64_t>(n));
    StateVector scalar = run_fused(c, SimdMode::kScalar);
    StateVector avx2 = run_fused(c, SimdMode::kAvx2);
    EXPECT_LT(scalar.max_abs_diff(avx2), 1e-9) << "n=" << n;
    EXPECT_NEAR(avx2.fidelity(scalar), 1.0, 1e-12) << "n=" << n;
  }
}

// Target qubit below the vector lane width (q=0: pairs interleave within one
// 256-bit lane, the deinterleave path) vs at/above it (contiguous runs).
TEST(SimdDifferential, TargetQubitInsideAndOutsideLaneWidth) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  for (int q : {0, 1, 2, 6}) {
    qir::Circuit c(7);
    c.h(q).rz(0.7, q).sx(q).ry(-1.3, q);
    StateVector scalar = run_fused(c, SimdMode::kScalar);
    StateVector avx2 = run_fused(c, SimdMode::kAvx2);
    EXPECT_LT(scalar.max_abs_diff(avx2), 1e-9) << "q=" << q;
  }
}

// The AVX2 kernels use a fixed per-element instruction sequence, so where a
// chunk boundary falls must not change a single bit — this is what makes
// parallel AVX2 sweeps bit-identical to serial ones. Split every kernel's
// index range at an odd point (vector body on one side, 128-bit tail on the
// other) and compare against the unsplit sweep.
TEST(SimdKernels, ChunkSplitIsBitIdentical) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  // 6 qubits: 64 amplitudes, 32 pairs, 16 quads.
  const kernels::M2 m{cplx(0.6, 0.1), cplx(-0.3, 0.7), cplx(0.7, 0.3),
                      cplx(0.1, -0.6)};
  for (int q : {0, 1, 4}) {
    auto whole = random_amps(64, 7);
    auto split = whole;
    kernels::sweep_1q_avx2(whole.data(), 0, 32, q, m);
    kernels::sweep_1q_avx2(split.data(), 0, 13, q, m);
    kernels::sweep_1q_avx2(split.data(), 13, 32, q, m);
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(whole[i], split[i]) << "1q q=" << q << " i=" << i;
    }
  }
  kernels::M4 m4{};
  Rng rng(11);
  for (auto& v : m4.v) v = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
  auto whole = random_amps(64, 9);
  auto split = whole;
  kernels::sweep_2q_avx2(whole.data(), 0, 16, 1, 3, m4);
  kernels::sweep_2q_avx2(split.data(), 0, 5, 1, 3, m4);
  kernels::sweep_2q_avx2(split.data(), 5, 16, 1, 3, m4);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i], split[i]) << "2q i=" << i;
  }
}

// A gang of k unmerged 2x2s must reproduce k consecutive 1q sweeps
// amplitude-for-amplitude IN BOTH MODES — the property the fused-prefix
// sampler fix leans on for its bit-identity pin.
TEST(SimdKernels, GangMatchesSequential1qSweepsBitwise) {
  std::vector<SingleQubitOp> ops;
  Rng rng(13);
  for (int q : {0, 2, 3}) {
    SingleQubitOp op;
    op.qubit = q;
    for (auto& row : op.m) {
      for (auto& v : row) v = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }
    ops.push_back(op);
  }
  const auto plan = kernels::make_gang_plan(ops.data(), ops.size());
  const std::size_t dim = 32;  // 5 qubits
  std::vector<SimdMode> modes = {SimdMode::kScalar};
  if (kernels::avx2_available()) modes.push_back(SimdMode::kAvx2);
  for (SimdMode mode : modes) {
    auto ganged = random_amps(dim, 17);
    auto stepwise = ganged;
    kernels::sweep_gang(mode, ganged.data(), 0, dim >> ops.size(), plan);
    for (const auto& op : ops) {
      const kernels::M2 m{op.m[0][0], op.m[0][1], op.m[1][0], op.m[1][1]};
      kernels::sweep_1q(mode, stepwise.data(), 0, dim >> 1, op.qubit, m);
    }
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(ganged[i], stepwise[i])
          << kernels::simd_mode_name(mode) << " i=" << i;
    }
  }
}

TEST(Kernels, MonomialDecompose) {
  kernels::M4 cxm{};  // CX with a=control: |b a> -> basis (b<<1)|a
  cxm.v[0 * 4 + 0] = 1.0;
  cxm.v[1 * 4 + 3] = 1.0;  // a=1,b=0 -> a=1,b=1
  cxm.v[2 * 4 + 2] = 1.0;
  cxm.v[3 * 4 + 1] = 1.0;
  int src[4];
  cplx coef[4];
  ASSERT_TRUE(kernels::monomial_decompose(cxm, src, coef));
  EXPECT_EQ(src[0], 0);
  EXPECT_EQ(src[1], 3);
  EXPECT_EQ(src[2], 2);
  EXPECT_EQ(src[3], 1);

  kernels::M4 dense{};  // a Hadamard row: two nonzeros -> not monomial
  dense.v[0] = dense.v[1] = cplx(0.5, 0.0);
  EXPECT_FALSE(kernels::monomial_decompose(dense, src, coef));
  kernels::M4 zero{};  // zero row -> not monomial
  EXPECT_FALSE(kernels::monomial_decompose(zero, src, coef));
}

// ------------------------------------------------------------ cache tiling

// Tiling only reorders traversal, so tiled output is bit-identical to
// untiled within a mode — at widths below, at, and above the tile width.
TEST(Tiling, TiledMatchesUntiledBitwise) {
  std::vector<SimdMode> modes = {SimdMode::kScalar};
  if (kernels::avx2_available()) modes.push_back(SimdMode::kAvx2);
  for (SimdMode mode : modes) {
    ModeGuard guard;
    kernels::set_simd_mode(mode);
    for (int n : {2, 3, 5, 8}) {  // tile=3: below, at, above, far above
      auto c = dense_circuit(n, 1000 + static_cast<std::uint64_t>(n));
      const auto plan = FusionPlan::build(c);
      StateVector untiled(n);
      untiled.set_tile_qubits(n);  // at-or-above width disables tiling
      untiled.apply_fused(plan);
      StateVector tiled(n);
      tiled.set_tile_qubits(3);
      tiled.apply_fused(plan);
      EXPECT_EQ(tiled.max_abs_diff(untiled), 0.0)
          << kernels::simd_mode_name(mode) << " n=" << n;
    }
  }
}

// High-qubit gates fence tile-local runs; the greedy splitter must still
// produce the same bits when tile-local runs are length 0, 1, and >= 2.
TEST(Tiling, MixedLocalAndGlobalOps) {
  ModeGuard guard;
  kernels::set_simd_mode(SimdMode::kScalar);
  qir::Circuit c(6);
  c.h(5);                      // never tile-local at tile=2
  c.h(0).rz(0.4, 1);           // local run of one gang
  c.cx(4, 5);                  // global fence
  c.h(1).t(0).sx(1).ry(0.2, 0);  // local pair-window run
  c.cx(0, 1);
  const auto plan = FusionPlan::build(c);
  StateVector untiled(6);
  untiled.set_tile_qubits(6);
  untiled.apply_fused(plan);
  StateVector tiled(6);
  tiled.set_tile_qubits(2);
  tiled.apply_fused(plan);
  EXPECT_EQ(tiled.max_abs_diff(untiled), 0.0);
}

// ------------------------------------------- parallel equivalence per mode

// Within one SIMD mode, 1-, 2- and 8-thread fused sweeps are bit-identical:
// disjoint chunks, position-independent per-element arithmetic. Ragged
// grains force chunk boundaries that are not multiples of the tile or
// vector width.
TEST(ParallelEquivalence, ThreadCountNeverChangesBits) {
  std::vector<SimdMode> modes = {SimdMode::kScalar};
  if (kernels::avx2_available()) modes.push_back(SimdMode::kAvx2);
  for (SimdMode mode : modes) {
    ModeGuard guard;
    kernels::set_simd_mode(mode);
    auto c = dense_circuit(8, 77);
    const auto plan = FusionPlan::build(c);

    StateVector serial(8);
    serial.set_parallel_threshold(9);  // pin serial
    serial.apply_fused(plan);

    for (unsigned threads : {1u, 2u, 8u}) {
      runtime::ThreadPool::set_global_threads(threads);
      StateVector parallel(8);
      parallel.set_parallel_threshold(0);  // force the parallel kernels
      parallel.set_parallel_grain(5);      // ragged multi-chunk sweeps
      parallel.set_tile_qubits(4);         // tiled runs go parallel too
      parallel.apply_fused(plan);
      EXPECT_EQ(parallel.max_abs_diff(serial), 0.0)
          << kernels::simd_mode_name(mode) << " threads=" << threads;
    }
    runtime::ThreadPool::set_global_threads(0);
  }
}

}  // namespace
}  // namespace tetris::sim
