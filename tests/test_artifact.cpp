// The durable-artifact stack, bottom-up: the binio primitives, the circuit
// and FlowResult codecs, the versioned envelope, the disk store, and the
// Service integration (warm start across a "restart"). The corruption sweeps
// are the load-bearing half: every stored byte is untrusted input, and every
// way of mangling an artifact must surface as a structured ParseError —
// never a crash (the suite runs under ASan/UBSan in CI) and never a
// silently-wrong result.

#include "service/artifact_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/error.h"
#include "common/rng.h"
#include "lock/pipeline.h"
#include "lock/serialize.h"
#include "qir/binary.h"
#include "qir/library.h"
#include "revlib/benchmarks.h"
#include "service/service.h"

namespace tetris {
namespace {

namespace fs = std::filesystem;

// Reference FNV-1a over raw bytes — the checksum docs/FORMATS.md specifies.
// Reimplemented here (not shared with the implementation) so the test pins
// the algorithm itself, not just self-consistency.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Replaces the trailing checksum so handcrafted corruption reaches the
// structural validators instead of stopping at the checksum gate.
std::string with_fixed_checksum(std::string bytes) {
  const std::size_t body = bytes.size() - 8;
  const std::uint64_t h = fnv1a(std::string_view(bytes).substr(0, body));
  for (int i = 0; i < 8; ++i) {
    bytes[body + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xff);
  }
  return bytes;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// One real FlowResult, computed once and shared: the flow is the expensive
// part of these tests and every codec case wants the same fully-populated
// document (obfuscation provenance, both splits, compiled layouts, metrics).
const lock::FlowResult& flow_result() {
  static const lock::FlowResult result = [] {
    const auto& b = revlib::get_benchmark("4mod5");
    lock::FlowConfig cfg;
    cfg.shots = 64;
    Rng rng(7);
    return lock::run_flow(b.circuit, b.measured,
                          compiler::device_for(b.circuit.num_qubits()), cfg,
                          rng);
  }();
  return result;
}

service::ArtifactKey test_key() { return {0x1111, 0x2222, 0x3333}; }

std::string test_artifact_bytes() {
  return service::encode_artifact(test_key(), flow_result());
}

void expect_equal_compile(const compiler::CompileResult& a,
                          const compiler::CompileResult& b) {
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.initial_layout, b.initial_layout);
  EXPECT_EQ(a.final_layout, b.final_layout);
  EXPECT_EQ(a.wire_permutation, b.wire_permutation);
  EXPECT_EQ(a.stats.input_gates, b.stats.input_gates);
  EXPECT_EQ(a.stats.output_gates, b.stats.output_gates);
  EXPECT_EQ(a.stats.swaps_inserted, b.stats.swaps_inserted);
  EXPECT_EQ(a.stats.input_depth, b.stats.input_depth);
  EXPECT_EQ(a.stats.output_depth, b.stats.output_depth);
  EXPECT_EQ(a.stats.optimize.cancelled_pairs, b.stats.optimize.cancelled_pairs);
  EXPECT_EQ(a.stats.optimize.merged_rotations,
            b.stats.optimize.merged_rotations);
  EXPECT_EQ(a.stats.optimize.dropped_identities,
            b.stats.optimize.dropped_identities);
}

// Full structural equality of two FlowResults — exact doubles on purpose:
// the codec ships bit patterns, so nothing may drift even in the last ulp.
void expect_equal_results(const lock::FlowResult& a, const lock::FlowResult& b) {
  EXPECT_EQ(a.obf.circuit, b.obf.circuit);
  EXPECT_EQ(a.obf.original, b.obf.original);
  EXPECT_EQ(a.obf.random, b.obf.random);
  EXPECT_EQ(a.obf.origin, b.obf.origin);
  EXPECT_EQ(a.obf.has_gap_pairs, b.obf.has_gap_pairs);
  for (const auto& [sa, sb] :
       {std::make_pair(&a.splits.first, &b.splits.first),
        std::make_pair(&a.splits.second, &b.splits.second)}) {
    EXPECT_EQ(sa->circuit, sb->circuit);
    EXPECT_EQ(sa->local_to_orig, sb->local_to_orig);
    EXPECT_EQ(sa->gate_indices, sb->gate_indices);
  }
  EXPECT_EQ(a.recombined.circuit, b.recombined.circuit);
  EXPECT_EQ(a.recombined.orig_to_phys, b.recombined.orig_to_phys);
  expect_equal_compile(a.recombined.first.result, b.recombined.first.result);
  EXPECT_EQ(a.recombined.first.local_to_orig, b.recombined.first.local_to_orig);
  expect_equal_compile(a.recombined.second.result, b.recombined.second.result);
  EXPECT_EQ(a.recombined.second.local_to_orig,
            b.recombined.second.local_to_orig);
  expect_equal_compile(a.baseline, b.baseline);
  EXPECT_EQ(a.depth_original, b.depth_original);
  EXPECT_EQ(a.depth_obfuscated, b.depth_obfuscated);
  EXPECT_EQ(a.gates_original, b.gates_original);
  EXPECT_EQ(a.gates_obfuscated, b.gates_obfuscated);
  EXPECT_EQ(a.tvd_obfuscated, b.tvd_obfuscated);
  EXPECT_EQ(a.tvd_restored, b.tvd_restored);
  EXPECT_EQ(a.accuracy_original, b.accuracy_original);
  EXPECT_EQ(a.accuracy_restored, b.accuracy_restored);
}

// A scratch directory per test, wiped on entry so reruns start clean.
std::string scratch_dir(const char* name) {
  fs::path dir = fs::path(testing::TempDir()) / "tetris_artifact" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// --------------------------------------------------------------------- binio

TEST(BinIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xab).u32(0xdeadbeef).u64(0x0123456789abcdefULL).i64(-42);
  w.f64(-0.1).str("hello").raw("MAGC", 4);
  const std::string bytes = std::move(w).take();
  // Fixed widths: 1 + 4 + 8 + 8 + 8 + (4 + 5) + 4.
  EXPECT_EQ(bytes.size(), 42u);

  ByteReader r(bytes);
  EXPECT_EQ(r.u8("a"), 0xab);
  EXPECT_EQ(r.u32("b"), 0xdeadbeefu);
  EXPECT_EQ(r.u64("c"), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64("d"), -42);
  EXPECT_EQ(r.f64("e"), -0.1);  // exact: bit pattern, not text
  EXPECT_EQ(r.str("f", 100), "hello");
  EXPECT_EQ(r.raw(4, "g"), "MAGC");
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end("tail"));
}

TEST(BinIo, LittleEndianOnTheWire) {
  ByteWriter w;
  w.u32(0x01020304);
  const std::string b = std::move(w).take();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(BinIo, TruncationNamesFieldAndOffset) {
  ByteWriter w;
  w.u32(7);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u32("first"), 7u);
  try {
    r.u64("second field");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("second field"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset 4"), std::string::npos) << msg;
  }
}

TEST(BinIo, CountRejectsOverLimitBeforeAllocating) {
  ByteWriter w;
  w.u32(1'000'000);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(r.count("gate count", 1000), ParseError);
}

TEST(BinIo, StringRejectsOversizedLength) {
  ByteWriter w;
  w.u32(0xffffffff);  // length prefix far beyond the buffer
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(r.str("name", 1 << 12), ParseError);
}

TEST(BinIo, ExpectEndRejectsTrailingBytes) {
  ByteWriter w;
  w.u8(1).u8(2);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  r.u8("x");
  EXPECT_THROW(r.expect_end("record"), ParseError);
}

// ------------------------------------------------------------- circuit codec

TEST(CircuitCodec, RandomCircuitsRoundTripExactly) {
  Rng rng(2025);
  for (int i = 0; i < 20; ++i) {
    qir::Circuit original = (i % 2 == 0)
                                ? qir::library::random_universal(4, 25, rng)
                                : qir::library::random_reversible(5, 25, rng);
    original.set_name("case_" + std::to_string(i));
    ByteWriter w;
    qir::write_circuit(w, original);
    const std::string bytes = std::move(w).take();

    ByteReader r(bytes);
    const qir::Circuit decoded = qir::read_circuit(r);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(decoded, original);
    EXPECT_EQ(decoded.name(), original.name());
    // The cache key survives the round trip — what lets a stored artifact be
    // re-verified against its provenance without re-running anything.
    EXPECT_EQ(decoded.content_hash(), original.content_hash());
  }
}

TEST(CircuitCodec, BarrierRoundTrips) {
  qir::Circuit c(3, "b");
  c.h(0).barrier().cx(0, 1);
  ByteWriter w;
  qir::write_circuit(w, c);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(qir::read_circuit(r), c);
}

TEST(CircuitCodec, RejectsUnknownGateKind) {
  ByteWriter w;
  w.u32(1).str("x").u32(1);
  w.u8(0xff).u32(1).u32(0).u8(0);  // kind 0xff does not exist
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(qir::read_circuit(r), ParseError);
}

TEST(CircuitCodec, RejectsOutOfRangeQubit) {
  qir::Circuit c(2, "");
  c.cx(0, 1);
  ByteWriter w;
  qir::write_circuit(w, c);
  std::string bytes = std::move(w).take();
  // The CX target qubit is the last u32 before the trailing param count;
  // rewrite it to 9 (register width is 2).
  bytes[bytes.size() - 5] = 9;
  ByteReader r(bytes);
  EXPECT_THROW(qir::read_circuit(r), ParseError);
}

TEST(CircuitCodec, RejectsOversizedQubitCount) {
  ByteWriter w;
  w.u32(qir::kMaxCircuitQubits + 1).str("").u32(0);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(qir::read_circuit(r), ParseError);
}

// ---------------------------------------------------------- FlowResult codec

TEST(FlowResultCodec, RealFlowRoundTripsExactly) {
  const lock::FlowResult& original = flow_result();
  ByteWriter w;
  lock::write_flow_result(w, original);
  const std::string bytes = std::move(w).take();

  ByteReader r(bytes);
  const lock::FlowResult decoded = lock::read_flow_result(r);
  EXPECT_TRUE(r.at_end());
  expect_equal_results(decoded, original);
}

TEST(FlowResultCodec, DefaultResultRoundTrips) {
  const lock::FlowResult empty;
  ByteWriter w;
  lock::write_flow_result(w, empty);
  const std::string bytes = std::move(w).take();
  ByteReader r(bytes);
  const lock::FlowResult decoded = lock::read_flow_result(r);
  EXPECT_TRUE(r.at_end());
  expect_equal_results(decoded, empty);
}

// ----------------------------------------------------------- artifact format

TEST(Artifact, EncodeIsDeterministic) {
  EXPECT_EQ(test_artifact_bytes(), test_artifact_bytes());
}

TEST(Artifact, RoundTripsKeyAndResult) {
  const std::string bytes = test_artifact_bytes();
  const service::Artifact artifact = service::decode_artifact(bytes);
  EXPECT_EQ(artifact.key, test_key());
  expect_equal_results(artifact.result, flow_result());
}

TEST(Artifact, ChecksumMatchesSpec) {
  // The trailing 8 bytes are little-endian FNV-1a over everything before
  // them — the independent reimplementation above must agree.
  const std::string bytes = test_artifact_bytes();
  const std::size_t body = bytes.size() - 8;
  ByteReader tail(std::string_view(bytes).substr(body));
  EXPECT_EQ(tail.u64("checksum"),
            fnv1a(std::string_view(bytes).substr(0, body)));
}

TEST(Artifact, EveryStrictPrefixIsRejected) {
  const std::string bytes = test_artifact_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(service::decode_artifact(std::string_view(bytes).substr(0, len)),
                 ParseError)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(Artifact, EverySingleByteFlipIsRejected) {
  const std::string original = test_artifact_bytes();
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::string mangled = original;
    mangled[i] = static_cast<char>(mangled[i] ^ 0x40);
    EXPECT_THROW(service::decode_artifact(mangled), ParseError)
        << "flip at byte " << i << " parsed";
  }
}

TEST(Artifact, RejectsBadMagicEvenWithValidChecksum) {
  std::string bytes = test_artifact_bytes();
  bytes[0] = 'X';
  try {
    service::decode_artifact(with_fixed_checksum(std::move(bytes)));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(Artifact, RejectsFutureVersion) {
  std::string bytes = test_artifact_bytes();
  bytes[4] = static_cast<char>(service::kArtifactVersion + 1);
  try {
    service::decode_artifact(with_fixed_checksum(std::move(bytes)));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Artifact, RejectsPayloadSizeMismatch) {
  std::string bytes = test_artifact_bytes();
  bytes[32] = static_cast<char>(bytes[32] + 1);  // payload_size low byte
  EXPECT_THROW(service::decode_artifact(with_fixed_checksum(std::move(bytes))),
               ParseError);
}

TEST(Artifact, RejectsTrailingGarbage) {
  std::string bytes = test_artifact_bytes();
  bytes.insert(bytes.size() - 8, "JUNK");
  EXPECT_THROW(service::decode_artifact(with_fixed_checksum(std::move(bytes))),
               ParseError);
}

TEST(Artifact, RejectsOversizedCountInsidePayload) {
  // Handcrafted envelope whose payload opens with an absurd qubit count —
  // must die at the count validator, before any allocation.
  ByteWriter payload;
  payload.u32(0xffffffff);
  const std::string payload_bytes = std::move(payload).take();
  ByteWriter w;
  w.raw(service::kArtifactMagic, 4);
  w.u32(service::kArtifactVersion);
  w.u64(1).u64(2).u64(3);
  w.u64(payload_bytes.size());
  w.raw(payload_bytes.data(), payload_bytes.size());
  w.u64(0);  // placeholder checksum
  try {
    service::decode_artifact(with_fixed_checksum(std::move(w).take()));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds limit"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ artifact store

TEST(ArtifactStore, MissThenStoreThenHit) {
  service::ArtifactStore store({scratch_dir("basic"), 0});
  const service::ArtifactKey key = test_key();
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_TRUE(store.store(key, flow_result()));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_equal_results(*loaded, flow_result());

  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ArtifactStore, FileNameEncodesTheKey) {
  service::ArtifactStore store({scratch_dir("naming"), 0});
  const std::string path = store.path_for({0xab, 0x1, 0xffff});
  EXPECT_NE(path.find("00000000000000ab-0000000000000001-000000000000ffff.tla"),
            std::string::npos)
      << path;
}

TEST(ArtifactStore, CorruptFileCountsAndRecovers) {
  service::ArtifactStore store({scratch_dir("corrupt"), 0});
  const service::ArtifactKey key = test_key();
  ASSERT_TRUE(store.store(key, flow_result()));

  // Truncate the file on disk behind the store's back.
  const std::string path = store.path_for(key);
  std::string bytes = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);

  // A rewrite heals it.
  ASSERT_TRUE(store.store(key, flow_result()));
  EXPECT_TRUE(store.load(key).has_value());
}

TEST(ArtifactStore, WrongEmbeddedKeyIsCorruptNotHit) {
  service::ArtifactStore store({scratch_dir("renamed"), 0});
  const service::ArtifactKey key_a = {1, 2, 3};
  const service::ArtifactKey key_b = {4, 5, 6};
  ASSERT_TRUE(store.store(key_a, flow_result()));
  // Simulate a mis-renamed file: key_a's bytes under key_b's name.
  fs::copy_file(store.path_for(key_a), store.path_for(key_b));
  EXPECT_FALSE(store.load(key_b).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_TRUE(store.load(key_a).has_value());
}

TEST(ArtifactStore, EvictsOldestPastCapacity) {
  service::ArtifactStore store({scratch_dir("evict"), 2});
  const lock::FlowResult empty;  // small artifacts; content is irrelevant
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.store({i, i, i}, empty));
  }
  const auto stats = store.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GE(stats.evictions, 2u);
}

// -------------------------------------------------------- service integration

lock::FlowJob small_job() {
  const auto& b = revlib::get_benchmark("4mod5");
  lock::FlowConfig cfg;
  cfg.shots = 64;
  return lock::make_flow_job(b.name, b.circuit, b.measured, cfg);
}

TEST(ServiceStore, WarmStartsAcrossRestart) {
  const std::string dir = scratch_dir("warm_start");
  service::ServiceConfig cfg;
  cfg.store_dir = dir;
  cfg.cache_capacity = 0;  // disk tier only: the hit must come from the store

  lock::FlowResult first_result;
  {
    service::Service svc(cfg);
    const auto out = svc.submit(small_job(), /*seed=*/42).wait();
    ASSERT_EQ(out.state, service::JobState::kDone);
    EXPECT_FALSE(out.cache_hit);
    first_result = out.result;
    ASSERT_NE(svc.artifact_store(), nullptr);
    EXPECT_EQ(svc.artifact_store()->stats().writes, 1u);
  }  // "restart": the first service (and its memory) is gone

  service::Service svc(cfg);
  const auto out = svc.submit(small_job(), /*seed=*/42).wait();
  ASSERT_EQ(out.state, service::JobState::kDone);
  EXPECT_TRUE(out.cache_hit);  // answered from disk, no recompute
  EXPECT_EQ(svc.artifact_store()->stats().hits, 1u);
  expect_equal_results(out.result, first_result);
}

TEST(ServiceStore, DiskHitPromotesIntoMemoryCache) {
  const std::string dir = scratch_dir("promote");
  service::ServiceConfig cfg;
  cfg.store_dir = dir;
  cfg.cache_capacity = 8;
  {
    service::Service warmup(cfg);
    ASSERT_EQ(warmup.submit(small_job(), 42).wait().state,
              service::JobState::kDone);
  }

  service::Service svc(cfg);
  EXPECT_TRUE(svc.submit(small_job(), 42).wait().cache_hit);  // from disk
  EXPECT_TRUE(svc.submit(small_job(), 42).wait().cache_hit);  // from memory
  EXPECT_EQ(svc.artifact_store()->stats().hits, 1u);  // disk touched only once
  EXPECT_EQ(svc.cache_stats().hits, 1u);
}

TEST(ServiceStore, ArtifactBytesMatchStoredFile) {
  const std::string dir = scratch_dir("bytes_match");
  service::ServiceConfig cfg;
  cfg.store_dir = dir;
  service::Service svc(cfg);

  lock::FlowJob job = small_job();
  const service::ArtifactKey key = service::artifact_key(job, 42);
  auto handle = svc.submit(std::move(job), 42);
  ASSERT_EQ(handle.wait().state, service::JobState::kDone);

  // The endpoint/CLI path (encoded on the fly) and the store's file must be
  // byte-identical — the acceptance check ISSUE.md names.
  const std::string via_service = svc.artifact_bytes(handle);
  const std::string via_disk = read_file(svc.artifact_store()->path_for(key));
  EXPECT_EQ(via_service, via_disk);

  const service::Artifact decoded = service::decode_artifact(via_service);
  EXPECT_EQ(decoded.key, key);
}

TEST(ServiceStore, ArtifactBytesStableAcrossThreadCounts) {
  // The determinism contract, extended to stored artifacts: sample_threads
  // shards the same trajectories over more workers and must not change a
  // single output bit, so the encoded artifact is byte-identical too.
  std::string bytes[2];
  int i = 0;
  for (unsigned threads : {1u, 2u}) {
    lock::FlowJob job = small_job();
    job.config.sample_threads = threads;
    const service::ArtifactKey key = service::artifact_key(job, 42);
    service::Service svc;
    auto handle = svc.submit(std::move(job), 42);
    ASSERT_EQ(handle.wait().state, service::JobState::kDone);
    EXPECT_EQ(key, service::artifact_key(small_job(), 42))
        << "sample_threads must not enter the artifact key";
    bytes[i++] = svc.artifact_bytes(handle);
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(ServiceStore, ArtifactBytesRequiresDoneJob) {
  service::Service svc;
  qir::Circuit wide(6, "too_wide");
  wide.x(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(4, 5);
  lock::FlowJob job;
  job.name = "too_wide";
  job.circuit = wide;
  for (int q = 0; q < 6; ++q) job.measured.push_back(q);
  job.target = compiler::fake_valencia();  // 5 physical qubits: must fail
  job.config.shots = 64;
  auto handle = svc.submit(std::move(job), 42);
  ASSERT_EQ(handle.wait().state, service::JobState::kFailed);
  EXPECT_THROW(svc.artifact_bytes(handle), InvalidArgument);
}

TEST(ServiceStore, CorruptStoreFileFallsBackToRecompute) {
  const std::string dir = scratch_dir("fallback");
  service::ServiceConfig cfg;
  cfg.store_dir = dir;
  {
    service::Service warmup(cfg);
    ASSERT_EQ(warmup.submit(small_job(), 42).wait().state,
              service::JobState::kDone);
  }
  // Flip one byte in the stored artifact.
  const std::string path =
      service::ArtifactStore({dir, 0}).path_for(
          service::artifact_key(small_job(), 42));
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  service::Service svc(cfg);
  const auto out = svc.submit(small_job(), 42).wait();
  ASSERT_EQ(out.state, service::JobState::kDone);
  EXPECT_FALSE(out.cache_hit);  // corrupt file must not answer the job
  EXPECT_EQ(svc.artifact_store()->stats().corrupt, 1u);
  // The recompute healed the file: a fresh service hits.
  service::Service again(cfg);
  EXPECT_TRUE(again.submit(small_job(), 42).wait().cache_hit);
}

}  // namespace
}  // namespace tetris
