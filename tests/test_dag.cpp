#include "qir/dag.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tetris::qir {
namespace {

Circuit chain_circuit() {
  Circuit c(3);
  c.x(0)        // 0
      .cx(0, 1) // 1: pred {0}
      .x(2)     // 2: no preds
      .cx(1, 2) // 3: preds {1, 2}
      .x(0);    // 4: pred {1}
  return c;
}

TEST(Dag, Predecessors) {
  CircuitDag dag(chain_circuit());
  EXPECT_TRUE(dag.predecessors(0).empty());
  EXPECT_EQ(dag.predecessors(1), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(dag.predecessors(2).empty());
  EXPECT_EQ(dag.predecessors(3), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(dag.predecessors(4), (std::vector<std::size_t>{1}));
}

TEST(Dag, Successors) {
  CircuitDag dag(chain_circuit());
  EXPECT_EQ(dag.successors(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.successors(1), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(dag.successors(2), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(dag.successors(3).empty());
  EXPECT_TRUE(dag.successors(4).empty());
}

TEST(Dag, SharedQubitPairDedup) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1);  // successor via both wires, listed once
  CircuitDag dag(c);
  EXPECT_EQ(dag.predecessors(1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.successors(0), (std::vector<std::size_t>{1}));
}

TEST(Dag, IsOrderIdeal) {
  CircuitDag dag(chain_circuit());
  EXPECT_TRUE(dag.is_order_ideal({1, 1, 1, 1, 1}));
  EXPECT_TRUE(dag.is_order_ideal({0, 0, 0, 0, 0}));
  EXPECT_TRUE(dag.is_order_ideal({1, 1, 0, 0, 0}));
  EXPECT_TRUE(dag.is_order_ideal({1, 0, 1, 0, 0}));
  // Gate 3 requires 1 and 2; gate 1 requires 0.
  EXPECT_FALSE(dag.is_order_ideal({1, 1, 0, 1, 0}));
  EXPECT_FALSE(dag.is_order_ideal({0, 1, 0, 0, 0}));
}

TEST(Dag, IsOrderIdealValidatesSize) {
  CircuitDag dag(chain_circuit());
  EXPECT_THROW(dag.is_order_ideal({1, 1}), InvalidArgument);
}

TEST(Dag, DownwardClosure) {
  CircuitDag dag(chain_circuit());
  auto closed = dag.downward_closure({0, 0, 0, 1, 0});
  EXPECT_EQ(closed, (std::vector<char>{1, 1, 1, 1, 0}));
  EXPECT_TRUE(dag.is_order_ideal(closed));
}

TEST(Dag, LargestIdealWithin) {
  CircuitDag dag(chain_circuit());
  // Seed includes gate 3 but not its predecessor 2 -> 3 must drop out.
  auto ideal = dag.largest_ideal_within({1, 1, 0, 1, 0});
  EXPECT_EQ(ideal, (std::vector<char>{1, 1, 0, 0, 0}));
  EXPECT_TRUE(dag.is_order_ideal(ideal));
}

TEST(Dag, LargestIdealCascades) {
  Circuit c(1);
  c.x(0).x(0).x(0);  // strict chain
  CircuitDag dag(c);
  // Dropping the head kills everything downstream in the seed.
  auto ideal = dag.largest_ideal_within({0, 1, 1});
  EXPECT_EQ(ideal, (std::vector<char>{0, 0, 0}));
}

TEST(Dag, ClosurePropertyRandomized) {
  // Property: for any seed, largest_ideal_within(seed) is an ideal contained
  // in seed, and downward_closure(seed) is an ideal containing seed.
  Circuit c(4);
  c.x(0).cx(0, 1).ccx(1, 2, 3).cx(3, 0).x(2).cx(2, 1).x(3);
  CircuitDag dag(c);
  for (unsigned mask = 0; mask < (1u << 7); ++mask) {
    std::vector<char> seed(7, 0);
    for (int b = 0; b < 7; ++b) seed[static_cast<std::size_t>(b)] = (mask >> b) & 1;
    auto lo = dag.largest_ideal_within(seed);
    auto hi = dag.downward_closure(seed);
    EXPECT_TRUE(dag.is_order_ideal(lo));
    EXPECT_TRUE(dag.is_order_ideal(hi));
    for (int b = 0; b < 7; ++b) {
      EXPECT_LE(lo[static_cast<std::size_t>(b)], seed[static_cast<std::size_t>(b)]);
      EXPECT_GE(hi[static_cast<std::size_t>(b)], seed[static_cast<std::size_t>(b)]);
    }
  }
}

}  // namespace
}  // namespace tetris::qir
