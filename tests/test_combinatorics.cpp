#include "common/combinatorics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace tetris {
namespace {

TEST(Combinatorics, FactorialExactSmall) {
  EXPECT_EQ(factorial_exact(0), 1u);
  EXPECT_EQ(factorial_exact(1), 1u);
  EXPECT_EQ(factorial_exact(5), 120u);
  EXPECT_EQ(factorial_exact(12), 479001600u);
  EXPECT_EQ(factorial_exact(20), 2432902008176640000u);
}

TEST(Combinatorics, FactorialExactRejectsLarge) {
  EXPECT_THROW(factorial_exact(21), InvalidArgument);
  EXPECT_THROW(factorial_exact(-1), InvalidArgument);
}

TEST(Combinatorics, LogFactorialMatchesExact) {
  for (int n = 0; n <= 20; ++n) {
    double expected = std::log(static_cast<double>(factorial_exact(n)));
    EXPECT_NEAR(log_factorial(n), expected, 1e-9) << "n=" << n;
  }
}

TEST(Combinatorics, BinomialExactValues) {
  EXPECT_EQ(binomial_exact(0, 0), 1u);
  EXPECT_EQ(binomial_exact(5, 2), 10u);
  EXPECT_EQ(binomial_exact(10, 5), 252u);
  EXPECT_EQ(binomial_exact(12, 0), 1u);
  EXPECT_EQ(binomial_exact(12, 12), 1u);
  EXPECT_EQ(binomial_exact(12, 13), 0u);
  EXPECT_EQ(binomial_exact(7, -1), 0u);
}

TEST(Combinatorics, BinomialPascalIdentity) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(binomial_exact(n, k),
                binomial_exact(n - 1, k - 1) + binomial_exact(n - 1, k))
          << n << " choose " << k;
    }
  }
}

TEST(Combinatorics, LogBinomialMatchesExact) {
  for (int n = 0; n <= 20; ++n) {
    for (int k = 0; k <= n; ++k) {
      double expected = std::log(static_cast<double>(binomial_exact(n, k)));
      EXPECT_NEAR(log_binomial(n, k), expected, 1e-8);
    }
  }
}

TEST(Combinatorics, LogBinomialOutOfRangeIsMinusInf) {
  EXPECT_TRUE(std::isinf(log_binomial(5, 6)));
  EXPECT_LT(log_binomial(5, 6), 0);
  EXPECT_TRUE(std::isinf(log_binomial(5, -1)));
}

TEST(Combinatorics, LogAddBasic) {
  double a = std::log(3.0);
  double b = std::log(4.0);
  EXPECT_NEAR(log_add(a, b), std::log(7.0), 1e-12);
}

TEST(Combinatorics, LogAddWithMinusInf) {
  double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log_add(ninf, std::log(2.0)), std::log(2.0), 1e-12);
  EXPECT_NEAR(log_add(std::log(2.0), ninf), std::log(2.0), 1e-12);
  EXPECT_TRUE(std::isinf(log_add(ninf, ninf)));
}

TEST(Combinatorics, LogAddLargeMagnitudes) {
  // 1e300 + 1e300 = 2e300 without overflow in log space.
  double l = std::log(1e300);
  EXPECT_NEAR(log_add(l, l), l + std::log(2.0), 1e-9);
}

TEST(Combinatorics, LogToLog10) {
  EXPECT_NEAR(log_to_log10(std::log(1000.0)), 3.0, 1e-12);
  EXPECT_NEAR(log_to_log10(0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace tetris
