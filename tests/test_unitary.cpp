#include "sim/unitary.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "qir/gate.h"

namespace tetris::sim {
namespace {

/// Parameterized unitarity check across all gate kinds.
class GateUnitarity : public ::testing::TestWithParam<qir::Gate> {};

TEST_P(GateUnitarity, EveryGateIsUnitary) {
  const qir::Gate& g = GetParam();
  int width = 0;
  for (int q : g.qubits) width = std::max(width, q + 1);
  qir::Circuit c(width);
  c.add(g);
  EXPECT_TRUE(is_unitary(build_unitary(c))) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GateUnitarity,
    ::testing::Values(
        qir::Gate(qir::GateKind::I, {0}), qir::make_x(0), qir::make_y(0),
        qir::make_z(0), qir::make_h(0), qir::make_s(0), qir::make_sdg(0),
        qir::make_t(0), qir::make_tdg(0), qir::make_sx(0), qir::make_sxdg(0),
        qir::make_rx(0.37, 0), qir::make_ry(-1.2, 0), qir::make_rz(2.5, 0),
        qir::make_p(0.9, 0), qir::make_cx(0, 1), qir::make_cy(0, 1),
        qir::make_cz(0, 1), qir::make_ch(0, 1), qir::make_cp(0.6, 0, 1),
        qir::make_crz(-0.8, 0, 1), qir::make_swap(0, 1),
        qir::make_ccx(0, 1, 2), qir::make_cswap(0, 1, 2),
        qir::make_mcx({0, 1, 2}, 3)),
    [](const ::testing::TestParamInfo<qir::Gate>& info) {
      return info.param.name() + "_" + std::to_string(info.index);
    });

TEST(Unitary, IdentityCircuit) {
  qir::Circuit c(2);
  Unitary u = build_unitary(c);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      EXPECT_NEAR(std::abs(u.at(r, col) - (r == col ? 1.0 : 0.0)), 0.0, 1e-12);
    }
  }
}

TEST(Unitary, CxMatrix) {
  qir::Circuit c(2);
  c.cx(0, 1);
  Unitary u = build_unitary(c);
  // Columns: |00>->|00>, |01>->|11>, |10>->|10>, |11>->|01>.
  EXPECT_NEAR(std::abs(u.at(0, 0) - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(3, 1) - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(2, 2) - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(1, 3) - 1.0), 0.0, 1e-12);
}

TEST(Unitary, EqualUpToPhaseDetectsPhase) {
  qir::Circuit a(1), b(1);
  a.z(0);        // diag(1, -1)
  b.rz(M_PI, 0); // diag(-i, i) = -i * diag(1, -1)
  EXPECT_TRUE(equal_up_to_phase(build_unitary(a), build_unitary(b)));
}

TEST(Unitary, EqualUpToPhaseRejectsDifferentGates) {
  qir::Circuit a(1), b(1);
  a.x(0);
  b.z(0);
  EXPECT_FALSE(equal_up_to_phase(build_unitary(a), build_unitary(b)));
}

TEST(Unitary, CircuitsEquivalentWidthMismatch) {
  qir::Circuit a(1), b(2);
  EXPECT_FALSE(circuits_equivalent(a, b));
}

TEST(Unitary, InverseComposesToIdentity) {
  qir::Circuit c(3);
  c.h(0).cx(0, 1).t(1).ccx(0, 1, 2).sx(2).rz(0.7, 0).swap(1, 2);
  qir::Circuit id(3);
  qir::Circuit composed(3);
  composed.append(c);
  composed.append(c.inverse());
  EXPECT_TRUE(circuits_equivalent(composed, id));
}

TEST(Unitary, WidthGuard) {
  qir::Circuit c(13);
  EXPECT_THROW(build_unitary(c), InvalidArgument);
}

TEST(Unitary, HViaZxBasisChange) {
  // HXH = Z.
  qir::Circuit a(1), b(1);
  a.h(0).x(0).h(0);
  b.z(0);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Unitary, SwapEqualsThreeCx) {
  qir::Circuit a(2), b(2);
  a.swap(0, 1);
  b.cx(0, 1).cx(1, 0).cx(0, 1);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

}  // namespace
}  // namespace tetris::sim
