// Tests for the pluggable simulator backends (src/sim/backend/): the
// registry/factory, the three engines, and — the load-bearing property —
// the differential harness proving the stabilizer engine reproduces the
// statevector's sampled counts SHOT FOR SHOT on Clifford circuits. The
// equality is exact, not statistical: Clifford amplitudes stay on the
// +/-(1/sqrt(2))^d grid where every squared magnitude rounds to an exact
// power of two, so both engines map the same uniform draw to the same
// basis index (see backend/stabilizer.h).

#include "sim/backend/backend.h"

#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "compiler/target.h"
#include "revlib/benchmarks.h"
#include "runtime/thread_pool.h"
#include "service/service.h"
#include "sim/backend/stabilizer.h"
#include "sim/backend/statevector_backend.h"
#include "sim/backend/unitary_backend.h"
#include "sim/sampler.h"
#include "sim/statevector.h"

namespace tetris::sim {
namespace {

constexpr double kHalfPi = 1.5707963267948966;

/// Random Clifford circuit over the FIXED-matrix Clifford gates (H, S, Sdg,
/// X, Y, Z, SX, SXdg, CX, CY, CZ, SWAP). Parametric quarter-turn gates are
/// deliberately excluded here: their statevector matrices go through libm
/// cos/sin, which is correct to <1 ulp but not guaranteed exactly on the
/// Clifford grid — the exact shot-for-shot harness needs the grid.
qir::Circuit random_clifford(int num_qubits, int num_gates, Rng& rng) {
  qir::Circuit c(num_qubits);
  for (int i = 0; i < num_gates; ++i) {
    const int a = static_cast<int>(rng.index(static_cast<std::size_t>(num_qubits)));
    const int b = num_qubits < 2
                      ? a
                      : (a + 1 +
                         static_cast<int>(rng.index(
                             static_cast<std::size_t>(num_qubits - 1)))) %
                            num_qubits;
    switch (rng.index(12)) {
      case 0: c.add(qir::make_h(a)); break;
      case 1: c.add(qir::make_s(a)); break;
      case 2: c.add(qir::make_sdg(a)); break;
      case 3: c.add(qir::make_x(a)); break;
      case 4: c.add(qir::make_y(a)); break;
      case 5: c.add(qir::make_z(a)); break;
      case 6: c.add(qir::make_sx(a)); break;
      case 7: c.add(qir::make_sxdg(a)); break;
      case 8: c.add(qir::make_cx(a, b)); break;
      case 9: c.add(qir::make_cy(a, b)); break;
      case 10: c.add(qir::make_cz(a, b)); break;
      default: c.add(qir::make_swap(a, b)); break;
    }
  }
  return c;
}

// ----------------------------------------------------------- kinds/registry

TEST(BackendKind, NamesRoundTrip) {
  for (BackendKind k : {BackendKind::kAuto, BackendKind::kStateVector,
                        BackendKind::kStabilizer, BackendKind::kUnitary}) {
    EXPECT_EQ(parse_backend_kind(backend_kind_name(k)), k);
  }
  EXPECT_THROW(parse_backend_kind("chp"), InvalidArgument);
  EXPECT_THROW(parse_backend_kind(""), InvalidArgument);
}

TEST(BackendRegistry, ListsAllEnginesWithCapabilities) {
  const auto& infos = registered_backends();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(std::string(infos[0].name), "statevector");
  EXPECT_FALSE(infos[0].caps.clifford_only);
  EXPECT_TRUE(infos[0].caps.supports_noise);
  EXPECT_EQ(std::string(infos[1].name), "stabilizer");
  EXPECT_TRUE(infos[1].caps.clifford_only);
  EXPECT_TRUE(infos[1].caps.supports_noise);
  EXPECT_GE(infos[1].caps.max_qubits, 50);
  EXPECT_EQ(std::string(infos[2].name), "unitary");
  EXPECT_FALSE(infos[2].caps.supports_noise);
}

TEST(BackendFactory, MakesEachKindAndRejectsAuto) {
  EXPECT_EQ(std::string(make_backend(BackendKind::kStateVector, 3)->name()),
            "statevector");
  EXPECT_EQ(std::string(make_backend(BackendKind::kStabilizer, 3)->name()),
            "stabilizer");
  EXPECT_EQ(std::string(make_backend(BackendKind::kUnitary, 3)->name()),
            "unitary");
  EXPECT_THROW(make_backend(BackendKind::kAuto, 3), InvalidArgument);
}

TEST(BackendResolve, AutoPicksStabilizerOnlyForWideClifford) {
  qir::Circuit narrow_clifford(4);
  narrow_clifford.h(0).cx(0, 1);
  qir::Circuit wide_clifford(kAutoStateVectorCeilingQubits + 1);
  wide_clifford.x(0).cx(0, 1);
  qir::Circuit wide_nonclifford(kAutoStateVectorCeilingQubits + 1);
  wide_nonclifford.add(qir::make_t(0));

  EXPECT_EQ(resolve_backend(BackendKind::kAuto, narrow_clifford),
            BackendKind::kStateVector);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, wide_clifford),
            BackendKind::kStabilizer);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, wide_nonclifford),
            BackendKind::kStateVector);
  // Explicit kinds pass through untouched.
  EXPECT_EQ(resolve_backend(BackendKind::kUnitary, wide_clifford),
            BackendKind::kUnitary);
  EXPECT_EQ(resolve_backend(BackendKind::kStateVector, wide_clifford),
            BackendKind::kStateVector);
}

// ------------------------------------------------------- engine equivalence

TEST(StateVectorBackend, MatchesRawStateVector) {
  Rng gen(11);
  qir::Circuit c = random_clifford(5, 40, gen);
  StateVectorBackend backend(5);
  backend.apply(c);
  StateVector sv(5);
  sv.apply_circuit(c);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(backend.probability(i), std::norm(sv.amplitudes()[i]));
  }
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(backend.sample_index(a), sv.sample(b));
  }
}

TEST(UnitaryBackend, MatchesStateVectorBitForBit) {
  Rng gen(12);
  qir::Circuit c = random_clifford(4, 30, gen);
  DenseUnitaryBackend unitary(4);
  unitary.apply(c);
  StateVectorBackend reference(4);
  reference.apply(c);
  // Unprepared const queries (local column-0 rebuild) and prepared ones
  // (column 0 of the materialized operator) must agree exactly — both run
  // the statevector kernels.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(unitary.probability(i), reference.probability(i));
  }
  unitary.prepare();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(unitary.probability(i), reference.probability(i));
  }
  reference.prepare();
  EXPECT_DOUBLE_EQ(unitary.fidelity_with(reference), 1.0);
  Rng a(3), b(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(unitary.sample_index(a), reference.sample_index(b));
  }
}

TEST(UnitaryBackend, RejectsPauliInjection) {
  DenseUnitaryBackend backend(2);
  EXPECT_THROW(backend.apply_pauli('X', 0), InvalidArgument);
}

TEST(UnitaryBackend, ExposesOperator) {
  DenseUnitaryBackend backend(1);
  backend.apply_gate(qir::make_x(0));
  EXPECT_THROW(backend.unitary(), InvalidArgument);  // requires prepare()
  backend.prepare();
  EXPECT_EQ(backend.unitary().at(1, 0), std::complex<double>(1.0, 0.0));
  EXPECT_EQ(backend.unitary().at(0, 0), std::complex<double>(0.0, 0.0));
}

TEST(BackendFidelity, StabilizerHasNoDenseState) {
  StateVectorBackend sv(2);
  StabilizerBackend stab(2);
  EXPECT_THROW(sv.fidelity_with(stab), InvalidArgument);
}

// ----------------------------------------------------------- stabilizer core

TEST(Stabilizer, ZeroStateIsPointMass) {
  StabilizerBackend backend(6);
  backend.prepare();
  EXPECT_EQ(backend.support_dim(), 0);
  EXPECT_EQ(backend.probability(0), 1.0);
  EXPECT_EQ(backend.probability(5), 0.0);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(backend.sample_index(rng), 0u);
}

TEST(Stabilizer, BellStateSupportAndDistribution) {
  StabilizerBackend backend(2);
  backend.apply_gate(qir::make_h(0));
  backend.apply_gate(qir::make_cx(0, 1));
  backend.prepare();
  EXPECT_EQ(backend.support_dim(), 1);
  EXPECT_EQ(backend.probability(0), 0.5);
  EXPECT_EQ(backend.probability(3), 0.5);
  EXPECT_EQ(backend.probability(1), 0.0);
  EXPECT_EQ(backend.probability(2), 0.0);
  auto dist = backend.distribution();
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist["00"], 0.5);
  EXPECT_EQ(dist["11"], 0.5);
}

TEST(Stabilizer, SignTrackingThroughPaulis) {
  // X then H gives |->: equal probabilities but a sign the sampler never
  // sees; X on |+> keeps |+>. Check with the parity-visible version: X(0)
  // alone flips the outcome bit.
  StabilizerBackend backend(3);
  backend.apply_gate(qir::make_x(1));
  backend.prepare();
  EXPECT_EQ(backend.probability(2), 1.0);
  Rng rng(5);
  EXPECT_EQ(backend.sample_index(rng), 2u);
  // apply_pauli is the sampler's noise-injection hook.
  backend.apply_pauli('X', 0);
  backend.apply_pauli('Z', 1);  // phase only: outcome unchanged
  EXPECT_EQ(backend.probability(3), 1.0);
}

TEST(Stabilizer, QuarterTurnRotationsAcceptedOffGridRejected) {
  StabilizerBackend backend(2);
  backend.apply_gate(qir::make_rz(kHalfPi, 0));        // S
  backend.apply_gate(qir::make_rx(2.0 * kHalfPi, 0));  // X up to phase
  backend.apply_gate(qir::make_ry(-kHalfPi, 1));
  backend.apply_gate(qir::make_p(3.0 * kHalfPi, 0));
  backend.apply_gate(qir::make_cp(2.0 * kHalfPi, 0, 1));  // CZ
  EXPECT_THROW(backend.apply_gate(qir::make_rz(0.3, 0)), UnsupportedGate);
  EXPECT_THROW(backend.apply_gate(qir::make_t(0)), UnsupportedGate);
  EXPECT_THROW(backend.apply_gate(qir::make_ccx(0, 1, 0)), UnsupportedGate);
}

TEST(Stabilizer, UnsupportedGateNamesGateAndIndex) {
  qir::Circuit c(2);
  c.h(0);
  c.add(qir::make_t(1));  // index 1: the offender
  c.cx(0, 1);
  StabilizerBackend backend(2);
  try {
    backend.apply(c);
    FAIL() << "expected UnsupportedGate";
  } catch (const UnsupportedGate& e) {
    EXPECT_EQ(e.backend(), "stabilizer");
    EXPECT_EQ(e.gate_index(), 1u);
    EXPECT_NE(e.gate().find('t'), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("at index 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("stabilizer"), std::string::npos);
  }
}

TEST(Stabilizer, WideRegisterSampling) {
  // 50 qubits: far past the statevector wall. X(0) + CX staircase gives a
  // deterministic all-ones outcome; one H fans it into a 2-element support.
  const int n = 50;
  StabilizerBackend backend(n);
  backend.apply_gate(qir::make_x(0));
  for (int q = 0; q + 1 < n; ++q) backend.apply_gate(qir::make_cx(q, q + 1));
  backend.prepare();
  EXPECT_EQ(backend.support_dim(), 0);
  const std::uint64_t all_ones = (std::uint64_t{1} << n) - 1;
  EXPECT_EQ(backend.probability(static_cast<std::size_t>(all_ones)), 1.0);
  Rng rng(9);
  auto counts = backend.sample(100, {0, 25, 49}, rng);
  EXPECT_EQ(counts["111"], 100u);
}

// ------------------------------------------------- the differential harness

TEST(BackendDifferential, CliffordCountsMatchStateVectorShotForShot) {
  // ISSUE 7 satellite: random Clifford circuits at 4..12 qubits; the
  // stabilizer histogram must equal the statevector histogram EXACTLY under
  // the same stream seeds — same keys, same counts, shot for shot.
  for (int num_qubits = 4; num_qubits <= 12; num_qubits += 2) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Rng gen(1000 * static_cast<std::uint64_t>(num_qubits) + seed);
      qir::Circuit c = random_clifford(num_qubits, 8 * num_qubits, gen);

      StateVectorBackend sv(num_qubits);
      sv.apply(c);
      StabilizerBackend stab(num_qubits);
      stab.apply(c);

      Rng rng_sv(77 + seed), rng_stab(77 + seed);
      auto counts_sv = sv.sample(500, {}, rng_sv);
      auto counts_stab = stab.sample(500, {}, rng_stab);
      EXPECT_EQ(counts_sv, counts_stab)
          << "divergence at " << num_qubits << " qubits, seed " << seed;
      // Both engines must also leave the caller's generator in the same
      // state (exactly one u64 consumed each).
      EXPECT_EQ(rng_sv.next_u64(), rng_stab.next_u64());

      // The measured marginal agrees to the last ulp. (Not bit-equal: the
      // statevector's marginal sums accumulate norms that can sit an ulp
      // off the exact 2^-k, while the stabilizer emits the exact power of
      // two — the counts above still match because a 1-ulp CDF offset only
      // moves draws on ~1e-16-wide boundary slivers, and none of the
      // pinned-seed draws land there.)
      std::vector<int> half;
      for (int q = 0; q < num_qubits; q += 2) half.push_back(q);
      const auto dist_sv = sv.distribution(half);
      const auto dist_stab = stab.distribution(half);
      ASSERT_EQ(dist_sv.size(), dist_stab.size());
      for (const auto& [key, p] : dist_stab) {
        auto it = dist_sv.find(key);
        ASSERT_NE(it, dist_sv.end()) << "missing key " << key;
        EXPECT_NEAR(it->second, p, 1e-12) << "key " << key;
      }
    }
  }
}

TEST(BackendDifferential, NoisyTrajectoriesMatchThroughSampler) {
  // Pauli injections are Clifford conjugations, so even errored shots must
  // agree exactly between the engines when driven by sim::sample.
  Rng gen(21);
  qir::Circuit c = random_clifford(6, 40, gen);
  NoiseModel noise;
  noise.p1 = 0.02;
  noise.p2 = 0.05;
  noise.readout = 0.01;

  SampleOptions opts;
  opts.shots = 400;
  opts.threads = 1;
  opts.backend = BackendKind::kStateVector;
  Rng rng_a(5);
  auto counts_sv = sample(c, noise, rng_a, opts);

  opts.backend = BackendKind::kStabilizer;
  Rng rng_b(5);
  auto counts_stab = sample(c, noise, rng_b, opts);

  EXPECT_EQ(counts_sv.histogram, counts_stab.histogram);
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(BackendDifferential, SamplerThreadInvarianceOnStabilizer) {
  // PR 3's determinism contract, extended to the new engine: identical
  // counts at 1, 2, and 8 workers, and exactly one u64 drawn from the
  // caller's generator whatever shots/threads are.
  Rng gen(33);
  qir::Circuit c = random_clifford(8, 60, gen);
  NoiseModel noise;
  noise.p1 = 0.01;

  auto run = [&](unsigned threads, std::size_t shots) {
    runtime::ThreadPool pool(threads);
    SampleOptions opts;
    opts.shots = shots;
    opts.threads = threads;
    opts.pool = &pool;
    opts.shots_per_chunk = 32;
    opts.backend = BackendKind::kStabilizer;
    Rng rng(123);
    auto counts = sample(c, noise, rng, opts);
    return std::make_pair(counts.histogram, rng.next_u64());
  };

  const auto serial = run(1, 600);
  EXPECT_EQ(run(2, 600), serial);
  EXPECT_EQ(run(8, 600), serial);

  // One u64 even at zero shots: the generator advance is shot-independent.
  runtime::ThreadPool pool(2);
  SampleOptions opts;
  opts.shots = 0;
  opts.pool = &pool;
  opts.backend = BackendKind::kStabilizer;
  Rng rng(123);
  sample(c, noise, rng, opts);
  EXPECT_EQ(rng.next_u64(), serial.second);
}

TEST(BackendDifferential, CompiledCliffordCircuitStaysClifford) {
  // The compiler's {X, SX, RZ, CX} output of a Clifford source stays on the
  // quarter-turn lattice, so flow-level auto-resolution (made on the source
  // circuit) remains valid for the compiled views it actually samples.
  Rng gen(8);
  qir::Circuit c = random_clifford(5, 25, gen);
  ASSERT_TRUE(c.is_clifford());
  compiler::CompileOptions options{compiler::device_for(5),
                                   compiler::LayoutStrategy::GreedyDegree,
                                   /*run_optimizer=*/true, std::nullopt};
  compiler::Compiler compiler(options);
  auto compiled = compiler.compile(c);
  EXPECT_TRUE(compiled.circuit.is_clifford());

  // And the two engines still agree exactly on the compiled circuit's
  // fixed-matrix subset? RZ matrices go through libm, so compiled circuits
  // are NOT part of the exact harness — sanity-check distributions within
  // tolerance instead.
  StateVectorBackend sv(compiled.circuit.num_qubits());
  sv.apply(compiled.circuit);
  StabilizerBackend stab(compiled.circuit.num_qubits());
  stab.apply(compiled.circuit);
  auto dist_sv = sv.distribution();
  auto dist_stab = stab.distribution();
  for (const auto& [key, p] : dist_stab) {
    EXPECT_NEAR(dist_sv[key], p, 1e-9) << "key " << key;
  }
}

// --------------------------------------------------- gate-noise capability

TEST(BackendSampler, UnitaryEngineRejectsGateNoise) {
  qir::Circuit c(2);
  c.h(0).cx(0, 1);
  NoiseModel noise;
  noise.p1 = 0.1;
  SampleOptions opts;
  opts.shots = 10;
  opts.backend = BackendKind::kUnitary;
  Rng rng(1);
  EXPECT_THROW(sample(c, noise, rng, opts), InvalidArgument);
  // Readout-only noise is fine: it never touches the register mid-circuit.
  noise.p1 = 0.0;
  noise.readout = 0.05;
  Rng rng2(1);
  auto counts = sample(c, noise, rng2, opts);
  EXPECT_EQ(counts.shots, 10u);
}

TEST(BackendSampler, ExplicitStabilizerOnNonCliffordFailsStructured) {
  qir::Circuit c(2);
  c.h(0);
  c.add(qir::make_t(0));
  SampleOptions opts;
  opts.shots = 10;
  opts.backend = BackendKind::kStabilizer;
  Rng rng(1);
  EXPECT_THROW(sample(c, NoiseModel::ideal(), rng, opts), UnsupportedGate);
}

// ------------------------------------------------------ service fingerprint

TEST(BackendFingerprint, MixedOnlyWhenResolvedOffDefault) {
  qir::Circuit c(4, "fp");
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  lock::FlowJob job = lock::make_flow_job("fp", c);

  job.config.backend = BackendKind::kAuto;
  const std::uint64_t fp_auto = service::flow_fingerprint(job);
  job.config.backend = BackendKind::kStateVector;
  const std::uint64_t fp_sv = service::flow_fingerprint(job);
  job.config.backend = BackendKind::kStabilizer;
  const std::uint64_t fp_stab = service::flow_fingerprint(job);
  job.config.backend = BackendKind::kUnitary;
  const std::uint64_t fp_unitary = service::flow_fingerprint(job);

  // auto resolves to the statevector on this narrow circuit: all default
  // spellings share the pre-backend fingerprint.
  EXPECT_EQ(fp_auto, fp_sv);
  EXPECT_NE(fp_stab, fp_sv);
  EXPECT_NE(fp_unitary, fp_sv);
  EXPECT_NE(fp_unitary, fp_stab);

  // On a wide Clifford circuit auto resolves to the stabilizer, and the
  // fingerprint follows the resolution, not the spelling.
  const auto& cliff = revlib::get_benchmark("cliff50");
  lock::FlowJob wide = lock::make_flow_job("cliff50", cliff.circuit,
                                           cliff.measured);
  wide.config.backend = BackendKind::kAuto;
  const std::uint64_t wide_auto = service::flow_fingerprint(wide);
  wide.config.backend = BackendKind::kStabilizer;
  EXPECT_EQ(service::flow_fingerprint(wide), wide_auto);
  wide.config.backend = BackendKind::kStateVector;
  EXPECT_NE(service::flow_fingerprint(wide), wide_auto);
}

// ------------------------------------------------------- the 50-qubit flow

TEST(BackendFlow, Cliff50BenchmarkIsSyntheticCliffordClassical) {
  const auto& b = revlib::get_benchmark("cliff50");
  EXPECT_EQ(b.circuit.num_qubits(), 50);
  EXPECT_TRUE(b.circuit.is_clifford());
  EXPECT_TRUE(b.circuit.is_classical());
  EXPECT_EQ(static_cast<int>(b.circuit.gate_count()), b.expected_gates);
  EXPECT_EQ(b.circuit.depth(), b.expected_depth);
  // benchmark_names() stays Table-I only: the parametrized paper-metric
  // suites must not pick up the synthetic scale circuit.
  for (const auto& name : revlib::benchmark_names()) {
    EXPECT_NE(name, "cliff50");
  }
  ASSERT_EQ(revlib::synthetic_benchmarks().size(), 1u);
  EXPECT_EQ(revlib::synthetic_benchmarks()[0].name, "cliff50");
}

TEST(BackendFlow, FiftyQubitLockedCliffordFlowEndToEnd) {
  // The tentpole acceptance: a 50-qubit Clifford circuit completes the full
  // protect flow — obfuscate, split, split-compile, recombine, noisy
  // verification — on the stabilizer engine.
  const auto& b = revlib::get_benchmark("cliff50");
  lock::FlowConfig config;
  config.shots = 64;
  config.backend = BackendKind::kAuto;  // resolves to the stabilizer at 50q
  config.insertion.alphabet = lock::InsertionAlphabet::Mixed;
  Rng rng(2025);
  lock::FlowResult result = lock::run_flow(
      b.circuit, b.measured, compiler::device_for(b.circuit.num_qubits()),
      config, rng);
  EXPECT_EQ(result.depth_obfuscated, result.depth_original);
  EXPECT_GT(result.gates_obfuscated, result.gates_original);
  // The restored circuit beats the masked one by construction; with the
  // valencia noise band the recombined accuracy stays well above zero.
  EXPECT_GT(result.accuracy_restored, 0.0);
  EXPECT_GE(result.tvd_obfuscated, result.tvd_restored);
}

}  // namespace
}  // namespace tetris::sim
