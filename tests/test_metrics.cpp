#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tetris::metrics {
namespace {

sim::Counts make_counts(std::map<std::string, std::size_t> h) {
  sim::Counts c;
  c.histogram = std::move(h);
  for (const auto& [k, v] : c.histogram) c.shots += v;
  return c;
}

TEST(Tvd, IdenticalDistributionsAreZero) {
  auto a = make_counts({{"00", 50}, {"11", 50}});
  EXPECT_NEAR(tvd(a, a), 0.0, 1e-12);
}

TEST(Tvd, DisjointSupportsAreOne) {
  auto a = make_counts({{"00", 100}});
  auto b = make_counts({{"11", 100}});
  EXPECT_NEAR(tvd(a, b), 1.0, 1e-12);
}

TEST(Tvd, PaperFormulaExample) {
  // Paper example style: {"0": 95, "1": 5} vs ideal {"0": 100}.
  auto observed = make_counts({{"0", 95}, {"1", 5}});
  std::map<std::string, double> reference{{"0", 1.0}};
  EXPECT_NEAR(tvd(observed, reference), 0.05, 1e-12);
}

TEST(Tvd, Symmetric) {
  auto a = make_counts({{"0", 70}, {"1", 30}});
  auto b = make_counts({{"0", 40}, {"1", 60}});
  EXPECT_NEAR(tvd(a, b), tvd(b, a), 1e-12);
  EXPECT_NEAR(tvd(a, b), 0.3, 1e-12);
}

TEST(Tvd, MissingKeysCountAsZero) {
  std::map<std::string, double> a{{"00", 0.5}, {"01", 0.5}};
  std::map<std::string, double> b{{"00", 0.5}, {"10", 0.5}};
  EXPECT_NEAR(tvd(a, b), 0.5, 1e-12);
}

TEST(Tvd, EmptyCountsRejected) {
  sim::Counts empty;
  std::map<std::string, double> ref{{"0", 1.0}};
  EXPECT_THROW(tvd(empty, ref), InvalidArgument);
}

TEST(Accuracy, CorrectFraction) {
  auto counts = make_counts({{"101", 970}, {"001", 20}, {"111", 10}});
  EXPECT_NEAR(accuracy(counts, "101"), 0.97, 1e-12);
  EXPECT_NEAR(accuracy(counts, "000"), 0.0, 1e-12);
}

TEST(Accuracy, EmptyRejected) {
  sim::Counts empty;
  EXPECT_THROW(accuracy(empty, "0"), InvalidArgument);
}

TEST(RunningStats, MeanStdMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.138089935299395, 1e-9);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, DegenerateCases) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

}  // namespace
}  // namespace tetris::metrics
