// Differential-testing harness for the gate-fusion engine (sim/fusion.h).
//
// The load-bearing properties, each pinned here:
//  - fused execution is tolerance-equal to unfused execution AND to the dense
//    sim::unitary reference, on randomized 4-12 qubit circuits;
//  - fused-vs-unfused agreement holds at 1, 2, and 8 worker threads, and the
//    parallel fused sweeps are bit-identical to the serial fused sweeps;
//  - a plan never merges across a Barrier gate or an explicit
//    FusionOptions::boundaries fence (the noise/measurement contract);
//  - fusion is opt-in: SampleOptions defaults to fuse == false, and the
//    default equals an explicit fuse=false run exactly. (Byte-identity of
//    fuse-off output against a literally pre-fusion build cannot be pinned
//    from inside one build; it was verified against a pre-PR binary — see
//    CHANGES.md — and the all-fences test below pins the in-build
//    equivalent: passthrough plans run the exact apply_circuit path.)

#include "sim/fusion.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "qir/circuit.h"
#include "runtime/thread_pool.h"
#include "sim/noise.h"
#include "sim/sampler.h"
#include "sim/statevector.h"
#include "sim/unitary.h"

namespace tetris::sim {
namespace {

/// Random circuit biased toward fusible structure: dense single-qubit runs,
/// repeated two-qubit pairs, plus the non-fusible kinds (CCX) and barriers
/// so every planner branch is exercised.
qir::Circuit random_fusible(int n, int gates, Rng& rng) {
  qir::Circuit c(n, "fusible");
  for (int g = 0; g < gates; ++g) {
    int q0 = rng.uniform_int(0, n - 1);
    int q1 = rng.uniform_int(0, n - 2);
    if (q1 >= q0) ++q1;
    switch (rng.uniform_int(0, 11)) {
      case 0: c.h(q0); break;
      case 1: c.t(q0); break;
      case 2: c.s(q0); break;
      case 3: c.x(q0); break;
      case 4: c.rx(rng.uniform() * 3.1, q0); break;
      case 5: c.rz(rng.uniform() * 3.1, q0); break;
      case 6: c.cx(q0, q1); break;
      case 7: c.cz(q0, q1); break;
      case 8: c.add(qir::make_cp(rng.uniform() * 3.1, q0, q1)); break;
      case 9: c.swap(q0, q1); break;
      case 10: {
        int q2 = rng.uniform_int(0, n - 1);
        if (q2 == q0 || q2 == q1 || n < 3) {
          c.cx(q0, q1);
        } else {
          c.add(qir::make_ccx(q0, q1, q2));
        }
        break;
      }
      default: c.barrier(); break;
    }
  }
  return c;
}

/// Max element-wise |a - b| over two equally-sized unitaries.
double unitary_max_diff(const Unitary& a, const Unitary& b) {
  EXPECT_EQ(a.num_qubits, b.num_qubits);
  double mx = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    mx = std::max(mx, std::abs(a.data[i] - b.data[i]));
  }
  return mx;
}

/// True when no fused op's source range [first_gate, first_gate+gate_count)
/// contains the fence index `fence` strictly inside it.
bool no_op_spans(const FusionPlan& plan, std::size_t fence) {
  for (const FusedOp& op : plan.ops()) {
    if (op.first_gate < fence && fence < op.first_gate + op.gate_count) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ plan structure

TEST(FusionPlan, SingleQubitRunFusesToOneOp) {
  qir::Circuit c(2);
  c.h(0).t(0).s(0);
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 1u);
  EXPECT_EQ(plan.ops()[0].kind, FusedOp::Kind::kSingle);
  EXPECT_EQ(plan.ops()[0].gate_count, 3u);
  EXPECT_EQ(plan.stats().gates_in, 3u);
  EXPECT_EQ(plan.stats().ops_out, 1u);
  EXPECT_EQ(plan.stats().gates_fused, 3u);
  EXPECT_NEAR(plan.stats().sweep_reduction(), 2.0 / 3.0, 1e-12);

  StateVector fused(2), unfused(2);
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_LT(fused.max_abs_diff(unfused), 1e-12);
}

TEST(FusionPlan, DistinctQubitsGangInStreamOrder) {
  qir::Circuit c(3);
  c.h(0).x(1).t(2);
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 1u);
  const FusedOp& op = plan.ops()[0];
  EXPECT_EQ(op.kind, FusedOp::Kind::kGang);
  ASSERT_EQ(op.gang.size(), 3u);
  EXPECT_EQ(op.gang[0].qubit, 0);
  EXPECT_EQ(op.gang[1].qubit, 1);
  EXPECT_EQ(op.gang[2].qubit, 2);

  StateVector fused(3), unfused(3);
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_LT(fused.max_abs_diff(unfused), 1e-12);
}

TEST(FusionPlan, GangWindowAlsoMergesSameQubitRuns) {
  // q0 appears twice inside the window: its entries multiply into one 2x2.
  qir::Circuit c(2);
  c.h(0).x(1).t(0);
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 1u);
  EXPECT_EQ(plan.ops()[0].kind, FusedOp::Kind::kGang);
  EXPECT_EQ(plan.ops()[0].gang.size(), 2u);
  EXPECT_EQ(plan.ops()[0].gate_count, 3u);

  StateVector fused(2), unfused(2);
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_LT(fused.max_abs_diff(unfused), 1e-12);
}

TEST(FusionPlan, PairWindowAbsorbsBothOrientationsAndLocalSingles) {
  qir::Circuit c(2);
  c.cx(0, 1).rz(0.7, 1).cx(1, 0).h(0);
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 1u);
  const FusedOp& op = plan.ops()[0];
  EXPECT_EQ(op.kind, FusedOp::Kind::kTwoQubit);
  EXPECT_EQ(op.gate_count, 4u);

  StateVector fused(2), unfused(2);
  fused.apply_gate(qir::make_h(0));
  unfused.apply_gate(qir::make_h(0));
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_LT(fused.max_abs_diff(unfused), 1e-12);
}

TEST(FusionPlan, LoneAndWideGatesPassThrough) {
  qir::Circuit c(3);
  c.ccx(0, 1, 2).cx(0, 1).ccx(1, 2, 0).h(2);
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 4u);
  for (const FusedOp& op : plan.ops()) {
    EXPECT_EQ(op.kind, FusedOp::Kind::kGate);
    EXPECT_EQ(op.gate_count, 1u);
  }
  EXPECT_EQ(plan.stats().gates_fused, 0u);
  EXPECT_DOUBLE_EQ(plan.stats().sweep_reduction(), 0.0);
}

TEST(FusionPlan, MaxGangQubitsCapsTheWindow) {
  qir::Circuit c(4);
  c.h(0).h(1).h(2).h(3);
  FusionOptions options;
  options.max_gang_qubits = 2;
  auto plan = FusionPlan::build(c, options);
  ASSERT_EQ(plan.ops().size(), 2u);
  EXPECT_EQ(plan.ops()[0].kind, FusedOp::Kind::kGang);
  EXPECT_EQ(plan.ops()[0].gang.size(), 2u);
  EXPECT_EQ(plan.ops()[1].kind, FusedOp::Kind::kGang);
  EXPECT_EQ(plan.ops()[1].gang.size(), 2u);
}

TEST(FusionPlan, OptionValidation) {
  qir::Circuit c(1);
  c.h(0);
  FusionOptions unsorted;
  unsorted.boundaries = {3, 1};
  EXPECT_THROW(FusionPlan::build(c, unsorted), InvalidArgument);
  FusionOptions too_big;
  too_big.max_gang_qubits = StateVector::kMaxGangQubits + 1;
  EXPECT_THROW(FusionPlan::build(c, too_big), InvalidArgument);
  FusionOptions zero;
  zero.max_gang_qubits = 0;
  EXPECT_THROW(FusionPlan::build(c, zero), InvalidArgument);
}

// ------------------------------------------------------ fences / boundaries

TEST(FusionPlan, BarrierIsAFusionFence) {
  qir::Circuit c(2);
  c.h(0).h(1).barrier().h(0).h(1);  // barrier at gate index 2
  auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 2u);
  EXPECT_EQ(plan.ops()[0].first_gate, 0u);
  EXPECT_EQ(plan.ops()[0].gate_count, 2u);
  EXPECT_EQ(plan.ops()[1].first_gate, 3u);
  EXPECT_EQ(plan.ops()[1].gate_count, 2u);
  EXPECT_EQ(plan.stats().barriers, 1u);
  EXPECT_TRUE(no_op_spans(plan, 2));

  StateVector fused(2), unfused(2);
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_LT(fused.max_abs_diff(unfused), 1e-12);
}

TEST(FusionPlan, ExplicitBoundaryIsAFusionFence) {
  // Same stream, no Barrier gate: the caller-supplied fence must split the
  // would-be 4-gate gang exactly like the barrier does. This is the sampler's
  // noise-site contract expressed directly.
  qir::Circuit c(2);
  c.h(0).h(1).h(0).h(1);
  FusionOptions options;
  options.boundaries = {2};
  auto plan = FusionPlan::build(c, options);
  ASSERT_EQ(plan.ops().size(), 2u);
  EXPECT_EQ(plan.ops()[0].first_gate, 0u);
  EXPECT_EQ(plan.ops()[0].gate_count, 2u);
  EXPECT_EQ(plan.ops()[1].first_gate, 2u);
  EXPECT_EQ(plan.ops()[1].gate_count, 2u);
  EXPECT_TRUE(no_op_spans(plan, 2));
}

TEST(FusionPlan, BoundaryFencesPairWindowsToo) {
  qir::Circuit c(2);
  c.cx(0, 1).cz(0, 1).cx(0, 1).cz(0, 1);
  FusionOptions options;
  options.boundaries = {2};
  auto plan = FusionPlan::build(c, options);
  ASSERT_EQ(plan.ops().size(), 2u);
  for (const FusedOp& op : plan.ops()) {
    EXPECT_EQ(op.kind, FusedOp::Kind::kTwoQubit);
    EXPECT_EQ(op.gate_count, 2u);
  }
  EXPECT_TRUE(no_op_spans(plan, 2));
}

TEST(FusionPlan, FenceBeforeEveryGateIsBitIdenticalToApplyCircuit) {
  // All-passthrough plans run the exact apply_gate code path, so this is an
  // exact (bitwise) check — the `--fuse` off-path contract in miniature.
  Rng rng(7);
  auto c = random_fusible(6, 80, rng);
  FusionOptions options;
  for (std::size_t i = 1; i < c.size(); ++i) options.boundaries.push_back(i);
  auto plan = FusionPlan::build(c, options);
  EXPECT_EQ(plan.stats().gates_fused, 0u);

  StateVector fused(6), unfused(6);
  fused.apply_fused(plan);
  unfused.apply_circuit(c);
  EXPECT_EQ(fused.max_abs_diff(unfused), 0.0);
}

// ------------------------------------------------------- differential sweep

TEST(FusionDifferential, RandomCircuitsFusedVsUnfusedVsDenseReference) {
  Rng rng(2025);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 4 + (trial % 9);  // 4..12 qubits
    auto c = random_fusible(n, 70, rng);
    auto plan = FusionPlan::build(c);
    EXPECT_LE(plan.stats().ops_out, plan.stats().gates_in);

    StateVector fused(n), unfused(n);
    fused.apply_fused(plan);
    unfused.apply_circuit(c);
    EXPECT_LT(fused.max_abs_diff(unfused), 1e-10)
        << "n=" << n << " trial=" << trial;

    // Dense operator-level reference where the O(4^n) build is affordable.
    if (n <= 7) {
      auto dense = build_unitary(c);
      auto dense_fused = build_unitary_fused(c, plan);
      EXPECT_LT(unitary_max_diff(dense_fused, dense), 1e-10)
          << "n=" << n << " trial=" << trial;
      // And the state the fused run produced is the reference column of |0>.
      double mx = 0.0;
      for (std::size_t i = 0; i < fused.dim(); ++i) {
        mx = std::max(mx, std::abs(fused.amplitudes()[i] - dense.at(i, 0)));
      }
      EXPECT_LT(mx, 1e-10) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(FusionDifferential, FusedAgreesAcrossOneTwoAndEightThreads) {
  Rng rng(404);
  auto c = random_fusible(9, 90, rng);
  auto plan = FusionPlan::build(c);

  // Serial fused reference (threshold above the width pins serial kernels).
  StateVector serial(9);
  serial.set_parallel_threshold(10);
  serial.apply_fused(plan);
  StateVector unfused(9);
  unfused.set_parallel_threshold(10);
  unfused.apply_circuit(c);
  EXPECT_LT(serial.max_abs_diff(unfused), 1e-10);

  for (unsigned threads : {1u, 2u, 8u}) {
    runtime::ThreadPool::set_global_threads(threads);
    StateVector parallel(9);
    parallel.set_parallel_threshold(0);  // force the parallel kernels
    parallel.set_parallel_grain(8);      // force real multi-chunk sweeps
    parallel.apply_fused(plan);
    // Parallel fused sweeps are bit-identical to serial fused sweeps —
    // disjoint chunks, no reassociation — at every thread count.
    EXPECT_EQ(parallel.max_abs_diff(serial), 0.0) << "threads=" << threads;
    EXPECT_LT(parallel.max_abs_diff(unfused), 1e-10) << "threads=" << threads;
  }
  runtime::ThreadPool::set_global_threads(0);
}

// ------------------------------------------------------------------ sampler

TEST(FusionSampler, FuseDefaultsOffAndEqualsExplicitOff) {
  Rng crng(11);
  auto c = random_fusible(6, 40, crng);
  NoiseModel noise = NoiseModel::fake_valencia();

  SampleOptions defaults_opts;
  defaults_opts.shots = 500;           // fuse left at its default
  EXPECT_FALSE(defaults_opts.fuse);    // fusion must stay opt-in
  SampleOptions off = defaults_opts;
  off.fuse = false;

  Rng rng_a(99), rng_b(99);
  auto counts_default = sample(c, noise, rng_a, defaults_opts);
  auto counts_off = sample(c, noise, rng_b, off);
  EXPECT_EQ(counts_default.histogram, counts_off.histogram);
}

TEST(FusionSampler, NoisyCircuitFusedCloseToUnfused) {
  // Noise channels fire between fusible gates on every trajectory; errored
  // shots re-simulate unfused, so a fused run may differ from the unfused
  // one only through FP round-off in the ideal run's amplitudes. The two
  // histograms must agree to far better than shot noise.
  Rng crng(31);
  qir::Circuit c(5);
  // Deep fusible runs with 2q gates interleaved — worst case for a planner
  // that (wrongly) fused across noise sites.
  for (int layer = 0; layer < 6; ++layer) {
    for (int q = 0; q < 5; ++q) c.h(q);
    for (int q = 0; q < 5; ++q) c.t(q);
    c.cx(0, 1).cx(2, 3).cz(3, 4);
  }
  NoiseModel noise;
  noise.p1 = 0.02;
  noise.p2 = 0.05;
  noise.readout = 0.01;
  noise.name = "stress";

  SampleOptions fused_opts, unfused_opts;
  fused_opts.shots = unfused_opts.shots = 3000;
  fused_opts.fuse = true;
  unfused_opts.fuse = false;

  Rng rng_a(123), rng_b(123);
  auto fused = sample(c, noise, rng_a, fused_opts);
  auto unfused = sample(c, noise, rng_b, unfused_opts);
  ASSERT_EQ(fused.shots, unfused.shots);

  auto da = fused.distribution();
  auto db = unfused.distribution();
  double tvd = 0.0;
  for (const auto& [k, v] : da) {
    auto it = db.find(k);
    tvd += std::abs(v - (it == db.end() ? 0.0 : it->second));
  }
  for (const auto& [k, v] : db) {
    if (da.find(k) == da.end()) tvd += v;
  }
  tvd *= 0.5;
  // FP round-off can flip a shot only when a uniform draw lands within
  // ~1e-13 of a bin boundary; any real fusion-across-noise bug shows up as
  // tens of percent here.
  EXPECT_LT(tvd, 0.02);
}

TEST(FusionSampler, FusedCountsBitIdenticalAcrossThreadCounts) {
  // With `fuse` fixed ON, the sharded sampler's determinism contract is
  // unchanged: identical histograms at any fan-out.
  Rng crng(47);
  auto c = random_fusible(6, 50, crng);
  NoiseModel noise = NoiseModel::fake_valencia();
  sim::Counts reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    runtime::ThreadPool pool(threads);
    SampleOptions opts;
    opts.shots = 600;
    opts.fuse = true;
    opts.threads = threads;
    opts.pool = &pool;
    opts.shots_per_chunk = 37;  // force multi-chunk sharding
    Rng rng(555);
    auto counts = sample(c, noise, rng, opts);
    if (threads == 1u) {
      reference = counts;
    } else {
      EXPECT_EQ(counts.histogram, reference.histogram)
          << "threads=" << threads;
    }
  }
}

// --------------------------------------------------------------- gang guard

TEST(ApplyGang, ValidatesItsInput) {
  StateVector sv(3);
  cplx h[2][2];
  single_qubit_matrix(qir::GateKind::H, {}, h);
  SingleQubitOp op;
  std::copy(&h[0][0], &h[0][0] + 4, &op.m[0][0]);

  std::vector<SingleQubitOp> dup(2, op);
  dup[0].qubit = dup[1].qubit = 1;
  EXPECT_THROW(sv.apply_gang(dup), InvalidArgument);

  std::vector<SingleQubitOp> range(1, op);
  range[0].qubit = 3;
  EXPECT_THROW(sv.apply_gang(range), InvalidArgument);

  std::vector<SingleQubitOp> too_many;
  for (int q = 0; q < StateVector::kMaxGangQubits + 1; ++q) {
    SingleQubitOp o = op;
    o.qubit = q;
    too_many.push_back(o);
  }
  StateVector wide(StateVector::kMaxGangQubits + 1);
  EXPECT_THROW(wide.apply_gang(too_many), InvalidArgument);

  EXPECT_NO_THROW(sv.apply_gang({}));  // empty gang is a no-op
}

TEST(ApplyFused, RejectsWiderPlans) {
  qir::Circuit c(3);
  c.h(0).h(1).h(2);
  auto plan = FusionPlan::build(c);
  StateVector narrow(2);
  EXPECT_THROW(narrow.apply_fused(plan), InvalidArgument);
}

// ------------------------------------------------------ apply_fused_prefix

TEST(ApplyFusedPrefix, PrefixPlusUnfusedTailEqualsFullRun) {
  // The errored-trajectory contract: replaying the fused prefix through any
  // boundary and finishing gate by gate from the returned index must equal
  // the full unfused run — whatever the boundary cuts through.
  Rng rng(71);
  qir::Circuit c = random_fusible(5, 60, rng);
  const auto plan = FusionPlan::build(c);
  StateVector unfused(5);
  unfused.apply_circuit(c);
  const auto& gates = c.gates();
  for (std::size_t gate_end = 0; gate_end <= gates.size(); ++gate_end) {
    StateVector sv(5);
    const std::size_t next = apply_fused_prefix(sv, plan, gate_end);
    EXPECT_LE(next, gate_end);
    for (std::size_t i = next; i < gates.size(); ++i) sv.apply_gate(gates[i]);
    EXPECT_LT(sv.max_abs_diff(unfused), 1e-9) << "gate_end=" << gate_end;
  }
}

TEST(ApplyFusedPrefix, StraddlingOpIsSkippedEntirely) {
  qir::Circuit c(2);
  c.h(0).t(0).sx(0);  // one same-qubit run: one op spanning gates [0, 3)
  c.barrier();        // gate index 3, dropped by the planner
  c.x(1);             // gate index 4, its own op
  const auto plan = FusionPlan::build(c);
  ASSERT_EQ(plan.ops().size(), 2u);
  ASSERT_EQ(plan.ops()[0].gate_count, 3u);

  // A boundary inside the run: NO fused arithmetic may cross it, so the
  // whole op is skipped and the state is untouched.
  StateVector sv(2);
  EXPECT_EQ(apply_fused_prefix(sv, plan, 2), 0u);
  EXPECT_EQ(sv.max_abs_diff(StateVector(2)), 0.0);

  // Boundary exactly after the run: the op applies, the x(1) op does not.
  StateVector after_run(2);
  EXPECT_EQ(apply_fused_prefix(after_run, plan, 3), 3u);
  StateVector run_only(2);
  run_only.apply_fused_op(plan.ops()[0]);
  EXPECT_EQ(after_run.max_abs_diff(run_only), 0.0);

  // Boundary on the barrier itself behaves like "after the run".
  StateVector on_barrier(2);
  EXPECT_EQ(apply_fused_prefix(on_barrier, plan, 4), 3u);
  EXPECT_EQ(on_barrier.max_abs_diff(run_only), 0.0);
}

TEST(ApplyFusedPrefix, FullPrefixIsBitIdenticalToApplyFused) {
  Rng rng(83);
  qir::Circuit c = random_fusible(6, 50, rng);
  const auto plan = FusionPlan::build(c);
  StateVector whole(6);
  whole.apply_fused(plan);
  // apply_fused may tile the traversal; the prefix path applies ops one by
  // one. Tiling is bit-identical to per-op execution, so the outputs still
  // match exactly.
  StateVector prefix(6);
  EXPECT_EQ(apply_fused_prefix(prefix, plan, c.gates().size()), c.gates().size());
  EXPECT_EQ(prefix.max_abs_diff(whole), 0.0);
}

}  // namespace
}  // namespace tetris::sim
