#include "attack/plausibility.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "revlib/benchmarks.h"

namespace tetris::attack {
namespace {

TEST(PlausibilityScore, ZeroForIrreducible) {
  qir::Circuit c(2);
  c.h(0).cx(0, 1).t(1);
  EXPECT_DOUBLE_EQ(plausibility_score(c), 0.0);
}

TEST(PlausibilityScore, OneForFullyCancelling) {
  qir::Circuit c(2);
  c.x(0).cx(0, 1).cx(0, 1).x(0);
  EXPECT_DOUBLE_EQ(plausibility_score(c), 1.0);
}

TEST(PlausibilityScore, EmptyCircuitIsZero) {
  EXPECT_DOUBLE_EQ(plausibility_score(qir::Circuit(3)), 0.0);
}

TEST(PlausibilityScore, DetectsSeparatedRandomPair) {
  // The leakage channel: R^-1 ... (commuting gates) ... R cancels.
  qir::Circuit c(3);
  c.x(2).cx(0, 1).x(0).x(2).cx(1, 0);
  // x(2) pair cancels through the disjoint gates.
  EXPECT_GT(plausibility_score(c), 0.0);
}

struct Setup {
  lock::ObfuscatedCircuit obf;
  lock::SplitPair pair;
};

Setup make_setup(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  lock::Obfuscator obfuscator;
  Setup s;
  s.obf = obfuscator.obfuscate(revlib::get_benchmark(name).circuit, rng);
  lock::InterlockSplitter splitter;
  s.pair = splitter.split(s.obf, rng);
  return s;
}

TEST(HeuristicAttack, TrueStitchingScoresAtLeastCancellation) {
  auto s = make_setup("4gt13", 3);
  ASSERT_GE(s.obf.random.size(), 1u);
  auto result = heuristic_collusion_attack(
      s.pair.first.circuit, s.pair.second.circuit, s.pair.first.local_to_orig,
      s.pair.second.local_to_orig, s.obf.circuit.num_qubits(), 1'000'000);
  // The true stitching re-joins R^-1 with R, which cancel -> nonzero score.
  EXPECT_GT(result.true_score, 0.0);
  EXPECT_GE(result.best_score, result.true_score);
  EXPECT_GE(result.candidates, 1u);
  EXPECT_GE(result.true_rank, 1u);
}

TEST(HeuristicAttack, RankIsBoundedByCandidates) {
  auto s = make_setup("1bit_adder", 7);
  auto result = heuristic_collusion_attack(
      s.pair.first.circuit, s.pair.second.circuit, s.pair.first.local_to_orig,
      s.pair.second.local_to_orig, s.obf.circuit.num_qubits(), 1'000'000);
  EXPECT_LE(result.true_rank, result.candidates);
}

TEST(HeuristicAttack, LeakageExistsAcrossSeeds) {
  // Aggregate: the true stitching usually ranks in the upper half — this is
  // the leakage the module documents (and motivates compiling splits before
  // any recombination attempt).
  int in_upper_half = 0;
  const int trials = 6;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    auto s = make_setup("4gt13", seed);
    auto result = heuristic_collusion_attack(
        s.pair.first.circuit, s.pair.second.circuit,
        s.pair.first.local_to_orig, s.pair.second.local_to_orig,
        s.obf.circuit.num_qubits(), 1'000'000);
    if (result.true_rank * 2 <= result.candidates + 1) ++in_upper_half;
  }
  EXPECT_GE(in_upper_half, trials / 2);
}

TEST(HeuristicAttack, ValidatesGroundTruthSizes) {
  auto s = make_setup("4gt13", 3);
  std::vector<int> bad{0};
  EXPECT_THROW(
      heuristic_collusion_attack(s.pair.first.circuit, s.pair.second.circuit,
                                 bad, s.pair.second.local_to_orig,
                                 s.obf.circuit.num_qubits(), 100),
      InvalidArgument);
}

}  // namespace
}  // namespace tetris::attack
