#include "common/strings.h"

#include <gtest/gtest.h>

namespace tetris {
namespace {

TEST(Strings, SplitWsBasic) {
  auto v = split_ws("  a  bb\tccc \n d ");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "bb");
  EXPECT_EQ(v[2], "ccc");
  EXPECT_EQ(v[3], "d");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n ").empty());
}

TEST(Strings, SplitCharPreservesEmptyFields) {
  auto v = split_char("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("OPENQASM 2.0", "OPENQASM"));
  EXPECT_FALSE(starts_with("OPEN", "OPENQASM"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("CxX"), "cxx");
  EXPECT_EQ(to_lower("already"), "already");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(0.5, 0), "0");  // rounds to even
  EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace tetris
