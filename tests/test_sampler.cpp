#include "sim/sampler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "qir/library.h"
#include "runtime/thread_pool.h"
#include "sim/kernels/simd.h"

namespace tetris::sim {
namespace {

TEST(Counts, Basics) {
  Counts c;
  c.shots = 10;
  c.histogram["00"] = 7;
  c.histogram["11"] = 3;
  EXPECT_EQ(c.count("00"), 7u);
  EXPECT_EQ(c.count("01"), 0u);
  EXPECT_EQ(c.mode(), "00");
  auto d = c.distribution();
  EXPECT_DOUBLE_EQ(d["00"], 0.7);
  EXPECT_DOUBLE_EQ(d["11"], 0.3);
}

TEST(Counts, ModeOnEmptyThrows) {
  Counts c;
  EXPECT_THROW(c.mode(), InvalidArgument);
}

TEST(Bitstring, MsbFirstConvention) {
  EXPECT_EQ(bitstring(0, 3), "000");
  EXPECT_EQ(bitstring(1, 3), "001");  // qubit 0 is rightmost
  EXPECT_EQ(bitstring(4, 3), "100");  // qubit 2 is leftmost
  EXPECT_EQ(bitstring(6, 4), "0110");
}

TEST(Sampler, DeterministicCircuitIdealNoise) {
  qir::Circuit c(3);
  c.x(0).x(2);
  Rng rng(1);
  SampleOptions opts;
  opts.shots = 200;
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count("101"), 200u);
}

TEST(Sampler, MeasuredSubsetProjects) {
  qir::Circuit c(3);
  c.x(0).x(2);
  Rng rng(1);
  SampleOptions opts;
  opts.shots = 50;
  opts.measured = {2};  // only qubit 2
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count("1"), 50u);
  opts.measured = {1};
  counts = sample(c, NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count("0"), 50u);
}

TEST(Sampler, MeasuredOrderMatchesConvention) {
  qir::Circuit c(2);
  c.x(0);  // qubit0 = 1, qubit1 = 0
  Rng rng(1);
  SampleOptions opts;
  opts.shots = 10;
  opts.measured = {0, 1};
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  // measured[0]=q0 is the last character.
  EXPECT_EQ(counts.count("01"), 10u);
}

TEST(Sampler, MeasuredOutOfRangeThrows) {
  qir::Circuit c(2);
  Rng rng(1);
  SampleOptions opts;
  opts.measured = {5};
  EXPECT_THROW(sample(c, NoiseModel::ideal(), rng, opts), InvalidArgument);
}

TEST(Sampler, SuperpositionRoughlyBalanced) {
  qir::Circuit c(1);
  c.h(0);
  Rng rng(99);
  SampleOptions opts;
  opts.shots = 20000;
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  double p1 = static_cast<double>(counts.count("1")) / 20000.0;
  EXPECT_NEAR(p1, 0.5, 0.02);
}

TEST(Sampler, ReadoutErrorFlipsBits) {
  qir::Circuit c(1);  // stays |0>
  NoiseModel nm;
  nm.readout = 0.1;
  Rng rng(7);
  SampleOptions opts;
  opts.shots = 20000;
  auto counts = sample(c, nm, rng, opts);
  double flip = static_cast<double>(counts.count("1")) / 20000.0;
  EXPECT_NEAR(flip, 0.1, 0.015);
}

TEST(Sampler, GateNoiseCorruptsDeterministicOutcome) {
  qir::Circuit c(2);
  for (int i = 0; i < 10; ++i) c.x(0);
  NoiseModel nm;
  nm.p1 = 0.05;
  Rng rng(3);
  SampleOptions opts;
  opts.shots = 4000;
  auto counts = sample(c, nm, rng, opts);
  // All-X circuit with 10 gates: ideal outcome "00" (even X count);
  // with gate noise some shots land elsewhere.
  EXPECT_GT(counts.count("00"), 2500u);
  EXPECT_LT(counts.count("00"), 4000u);
}

TEST(Sampler, NoiselessModelGivesIdealEvenWithManyGates) {
  qir::Circuit c(2);
  for (int i = 0; i < 9; ++i) c.x(1);
  Rng rng(3);
  SampleOptions opts;
  opts.shots = 500;
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count("10"), 500u);
}

TEST(IdealDistribution, PointMassForClassical) {
  qir::Circuit c(2);
  c.x(1);
  auto d = ideal_distribution(c);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.at("10"), 1.0);
}

TEST(IdealDistribution, MarginalizesSubset) {
  qir::Circuit c(2);
  c.h(0).cx(0, 1);  // Bell
  auto d = ideal_distribution(c, {0});
  EXPECT_NEAR(d.at("0"), 0.5, 1e-12);
  EXPECT_NEAR(d.at("1"), 0.5, 1e-12);
}

TEST(ClassicalOutcome, MatchesSimulation) {
  qir::Circuit c(4);
  c.x(0).cx(0, 1).ccx(0, 1, 2).swap(2, 3).x(2);
  std::string outcome = classical_outcome(c);
  auto d = ideal_distribution(c);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.begin()->first, outcome);
}

TEST(ClassicalOutcome, CswapAndMcx) {
  qir::Circuit c(5);
  c.x(0).x(1).x(2).mcx({0, 1, 2}, 4).cswap(4, 0, 3);
  // q4 flips (all controls set); then q0<->q3 swap since q4=1.
  std::string outcome = classical_outcome(c);
  auto d = ideal_distribution(c);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.begin()->first, outcome);
}

TEST(ClassicalOutcome, RejectsNonClassical) {
  qir::Circuit c(1);
  c.h(0);
  EXPECT_THROW(classical_outcome(c), InvalidArgument);
}

TEST(ClassicalOutcome, MeasuredSubset) {
  qir::Circuit c(3);
  c.x(1);
  EXPECT_EQ(classical_outcome(c, {1}), "1");
  EXPECT_EQ(classical_outcome(c, {0, 1}), "10");  // q1 first char (highest)
  EXPECT_EQ(classical_outcome(c, {2}), "0");
}

// ------------------------------------------------------- parallel sharding

NoiseModel test_noise() {
  NoiseModel nm;
  nm.p1 = 0.01;
  nm.p2 = 0.03;
  nm.readout = 0.02;
  return nm;
}

/// Samples `circuit` on a private pool of `threads` workers with a small
/// chunk grain, so even modest shot counts really shard.
Counts sample_at(const qir::Circuit& circuit, const NoiseModel& nm,
                 unsigned threads, std::size_t shots,
                 std::size_t shots_per_chunk = 16) {
  runtime::ThreadPool pool(threads);
  SampleOptions opts;
  opts.shots = shots;
  opts.threads = threads;
  opts.pool = &pool;
  opts.shots_per_chunk = shots_per_chunk;
  Rng rng(4242);
  return sample(circuit, nm, rng, opts);
}

TEST(SamplerParallel, BitIdenticalAcrossThreadCountsOnRandomCircuits) {
  // Random noisy 6-10q circuits: the histogram must match bit for bit at
  // 1, 2, and 8 worker threads (the ISSUE 3 acceptance gate).
  for (int seed = 1; seed <= 5; ++seed) {
    Rng crng(static_cast<std::uint64_t>(seed));
    const int qubits = 6 + (seed - 1) % 5;
    auto circuit = qir::library::random_universal(qubits, 40, crng);
    auto serial = sample_at(circuit, test_noise(), 1, 500);
    auto two = sample_at(circuit, test_noise(), 2, 500);
    auto eight = sample_at(circuit, test_noise(), 8, 500);
    EXPECT_EQ(serial.histogram, two.histogram) << "qubits=" << qubits;
    EXPECT_EQ(serial.histogram, eight.histogram) << "qubits=" << qubits;
    EXPECT_EQ(serial.shots, 500u);
  }
}

TEST(SamplerParallel, ChunkGrainNeverChangesCounts) {
  Rng crng(7);
  auto circuit = qir::library::random_universal(7, 30, crng);
  auto reference = sample_at(circuit, test_noise(), 4, 300, /*chunk=*/1);
  for (std::size_t grain : {std::size_t{2}, std::size_t{77},
                            std::size_t{100000}}) {
    auto counts = sample_at(circuit, test_noise(), 4, 300, grain);
    EXPECT_EQ(reference.histogram, counts.histogram) << "grain=" << grain;
  }
}

TEST(SamplerParallel, CallerRngAdvancesByOneDrawRegardlessOfEverything) {
  // sample() consumes exactly one u64 whatever shots/threads are, so the
  // caller's downstream randomness never depends on sampler settings.
  Rng crng(9);
  auto circuit = qir::library::random_universal(6, 20, crng);
  auto next_after = [&](std::size_t shots, unsigned threads) {
    runtime::ThreadPool pool(threads == 0 ? 1 : threads);
    SampleOptions opts;
    opts.shots = shots;
    opts.threads = threads;
    opts.pool = &pool;
    Rng rng(31337);
    sample(circuit, test_noise(), rng, opts);
    return rng.next_u64();
  };
  const std::uint64_t reference = next_after(0, 1);
  EXPECT_EQ(reference, next_after(100, 1));
  EXPECT_EQ(reference, next_after(2000, 4));
}

TEST(SamplerParallel, NestedInsidePoolWorkerIsSafeAndIdentical) {
  // A sampler running *on* a pool worker (exactly how service::Service flow
  // jobs call it) must neither deadlock nor change the counts, even when it
  // shards over its own pool.
  Rng crng(13);
  auto circuit = qir::library::random_universal(6, 25, crng);
  auto reference = sample_at(circuit, test_noise(), 1, 400);
  runtime::ThreadPool pool(2);
  auto future = pool.submit([&] {
    SampleOptions opts;
    opts.shots = 400;
    opts.threads = 0;  // auto: resolves to the worker's own pool
    opts.shots_per_chunk = 16;
    Rng rng(4242);
    return sample(circuit, test_noise(), rng, opts);
  });
  auto nested = future.get();
  EXPECT_EQ(reference.histogram, nested.histogram);
}

TEST(SamplerEdge, ZeroShotsGiveEmptyHistogram) {
  qir::Circuit c(3);
  c.x(0).h(1);
  Rng rng(1);
  SampleOptions opts;
  opts.shots = 0;
  auto counts = sample(c, test_noise(), rng, opts);
  EXPECT_EQ(counts.shots, 0u);
  EXPECT_TRUE(counts.histogram.empty());
  EXPECT_TRUE(counts.distribution().empty());
}

TEST(SamplerEdge, ZeroShotsStillValidateMeasured) {
  qir::Circuit c(2);
  Rng rng(1);
  SampleOptions opts;
  opts.shots = 0;
  opts.measured = {5};
  EXPECT_THROW(sample(c, NoiseModel::ideal(), rng, opts), InvalidArgument);
}

TEST(SamplerEdge, EmptyCircuitSamplesAllZeros) {
  qir::Circuit c(3);  // no gates at all
  Rng rng(2);
  SampleOptions opts;
  opts.shots = 50;
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  EXPECT_EQ(counts.count("000"), 50u);
}

TEST(SamplerFusedPrefix, NoisyHistogramBitIdenticalFusedVsUnfused) {
  // Pin of the errored-shot fused-prefix path on an EXACTLY fusible circuit:
  // rows where each qubit appears once (gangs of unmerged singles — the
  // exact per-amplitude arithmetic of the unfused stream), CCX passthroughs,
  // and lone CXs (the next gate is outside the pair, so no 4x4 matrix
  // product forms). With no inexact fusion anywhere, the ideal run, every
  // errored shot's fused prefix, and its unfused tail are all bit-identical
  // to the fuse=false path — the histograms must match EXACTLY, in both
  // SIMD modes. Before the fix, errored shots re-ran fully unfused, which
  // this test would not catch — but a prefix that drifted from the unfused
  // stream by even one ULP would flip threshold comparisons and fail it.
  qir::Circuit c(4);
  c.h(0).h(1).h(2).h(3);
  c.barrier();  // fences the rows so no same-qubit 2x2 product forms
  c.ry(0.3, 0).ry(0.7, 1).ry(1.1, 2).ry(0.2, 3);
  c.ccx(0, 1, 3);
  c.cx(1, 2);
  c.t(0);  // outside {1, 2}: keeps the cx a lone passthrough
  c.barrier();
  c.rz(0.5, 3).rz(1.3, 0).rz(0.9, 1).rz(2.1, 2);
  c.ccx(2, 3, 0);
  c.cx(0, 3);
  c.s(1);  // outside {0, 3}

  NoiseModel noise;
  noise.p1 = 0.03;  // ~half the 1000 shots carry at least one injection
  noise.p2 = 0.06;
  noise.readout = 0.01;
  noise.name = "pin";

  std::vector<kernels::SimdMode> modes = {kernels::SimdMode::kScalar};
  if (kernels::avx2_available()) modes.push_back(kernels::SimdMode::kAvx2);
  const kernels::SimdMode saved = kernels::simd_mode();
  for (kernels::SimdMode mode : modes) {
    kernels::set_simd_mode(mode);
    SampleOptions fused_opts, unfused_opts;
    fused_opts.shots = unfused_opts.shots = 1000;
    fused_opts.fuse = true;
    unfused_opts.fuse = false;
    Rng rng_a(555), rng_b(555);
    auto fused = sample(c, noise, rng_a, fused_opts);
    auto unfused = sample(c, noise, rng_b, unfused_opts);
    EXPECT_EQ(fused.histogram, unfused.histogram)
        << kernels::simd_mode_name(mode);
  }
  kernels::set_simd_mode(saved);
}

TEST(SamplerEdge, ZeroQubitCircuit) {
  qir::Circuit c(0);
  Rng rng(3);
  SampleOptions opts;
  opts.shots = 10;
  auto counts = sample(c, NoiseModel::ideal(), rng, opts);
  // The only outcome of an empty register is the empty bitstring.
  EXPECT_EQ(counts.count(""), 10u);
  EXPECT_EQ(counts.shots, 10u);
}

}  // namespace
}  // namespace tetris::sim
