#include "qir/library.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/error.h"
#include "sim/sampler.h"
#include "sim/statevector.h"
#include "sim/unitary.h"

namespace tetris::qir::library {
namespace {

TEST(Ghz, AmplitudesAreCatState) {
  for (int n : {1, 2, 4}) {
    sim::StateVector sv(n);
    sv.apply_circuit(ghz(n));
    const auto& amps = sv.amplitudes();
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(amps.front() - std::complex<double>(s, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(amps.back() - std::complex<double>(s, 0)), 0, 1e-12);
    for (std::size_t i = 1; i + 1 < amps.size(); ++i) {
      EXPECT_NEAR(std::abs(amps[i]), 0.0, 1e-12);
    }
  }
}

TEST(Qft, MatchesDftMatrix) {
  for (int n : {1, 2, 3}) {
    auto u = sim::build_unitary(qft(n));
    const std::size_t dim = u.dim();
    const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t col = 0; col < dim; ++col) {
        double angle = 2.0 * M_PI * static_cast<double>(r * col) /
                       static_cast<double>(dim);
        std::complex<double> expected =
            norm * std::exp(std::complex<double>(0, angle));
        EXPECT_NEAR(std::abs(u.at(r, col) - expected), 0.0, 1e-9)
            << "n=" << n << " (" << r << "," << col << ")";
      }
    }
  }
}

TEST(Qft, InverseComposesToIdentity) {
  auto c = qft(4);
  Circuit composed(4);
  composed.append(c);
  composed.append(c.inverse());
  EXPECT_TRUE(sim::circuits_equivalent(composed, Circuit(4)));
}

TEST(Grover, AmplifiesMarkedState) {
  const int n = 4;
  const std::size_t marked = 11;
  auto c = grover(n, marked, grover_optimal_iterations(n));
  sim::StateVector sv(n);
  sv.apply_circuit(c);
  auto probs = sv.probabilities();
  EXPECT_GT(probs[marked], 0.9);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (i != marked) {
      EXPECT_LT(probs[i], 0.05);
    }
  }
}

TEST(Grover, AnyMarkedStateWorks) {
  const int n = 3;
  for (std::size_t marked = 0; marked < 8; ++marked) {
    auto c = grover(n, marked, grover_optimal_iterations(n));
    sim::StateVector sv(n);
    sv.apply_circuit(c);
    auto probs = sv.probabilities();
    std::size_t best = 0;
    for (std::size_t i = 1; i < probs.size(); ++i) {
      if (probs[i] > probs[best]) best = i;
    }
    EXPECT_EQ(best, marked);
  }
}

TEST(Grover, Validation) {
  EXPECT_THROW(grover(1, 0, 1), InvalidArgument);
  EXPECT_THROW(grover(3, 8, 1), InvalidArgument);
  EXPECT_THROW(grover(3, 0, 0), InvalidArgument);
  EXPECT_GE(grover_optimal_iterations(2), 1);
  EXPECT_GT(grover_optimal_iterations(8), grover_optimal_iterations(4));
}

TEST(BernsteinVazirani, RecoversSecret) {
  for (std::vector<int> secret :
       {std::vector<int>{1, 0, 1}, std::vector<int>{0, 0, 0},
        std::vector<int>{1, 1, 1, 1}}) {
    auto c = bernstein_vazirani(secret);
    std::vector<int> measured(secret.size());
    for (std::size_t i = 0; i < secret.size(); ++i) measured[i] = static_cast<int>(i);
    auto dist = sim::ideal_distribution(c, measured);
    // The measured distribution must be a point mass on the secret
    // (MSB-first convention: secret bit i is qubit i).
    std::string expected(secret.size(), '0');
    for (std::size_t i = 0; i < secret.size(); ++i) {
      if (secret[i]) expected[secret.size() - 1 - i] = '1';
    }
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist.begin()->first, expected);
  }
}

TEST(BernsteinVazirani, Validation) {
  EXPECT_THROW(bernstein_vazirani({}), InvalidArgument);
  EXPECT_THROW(bernstein_vazirani({0, 2}), InvalidArgument);
}

TEST(RippleCarryAdder, AddsAllSmallOperands) {
  const int bits = 2;
  auto adder = ripple_carry_adder(bits);
  ASSERT_EQ(adder.num_qubits(), ripple_carry_adder_width(bits));
  for (int av = 0; av < 4; ++av) {
    for (int bv = 0; bv < 4; ++bv) {
      Circuit c(adder.num_qubits());
      for (int i = 0; i < bits; ++i) {
        if ((av >> i) & 1) c.x(1 + i);
        if ((bv >> i) & 1) c.x(1 + bits + i);
      }
      c.append(adder);
      // Read back b (sum) and the carry-out.
      std::vector<int> measured;
      for (int i = 0; i < bits; ++i) measured.push_back(1 + bits + i);
      measured.push_back(adder.num_qubits() - 1);
      std::string out = sim::classical_outcome(c, measured);
      int sum = 0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        sum = sum * 2 + (out[i] == '1');
      }
      EXPECT_EQ(sum, av + bv) << av << "+" << bv;
    }
  }
}

TEST(RippleCarryAdder, PreservesA) {
  const int bits = 3;
  auto adder = ripple_carry_adder(bits);
  Circuit c(adder.num_qubits());
  c.x(1).x(3);  // a = 0b101
  c.append(adder);
  std::vector<int> a_bits{3, 2, 1};
  EXPECT_EQ(sim::classical_outcome(c, a_bits), "101");
}

TEST(RandomReversible, IsClassicalWithExactCount) {
  Rng rng(5);
  auto c = random_reversible(5, 30, rng);
  EXPECT_TRUE(c.is_classical());
  EXPECT_EQ(c.gate_count(), 30u);
  EXPECT_EQ(c.num_qubits(), 5);
}

TEST(RandomReversible, SmallRegistersFallBack) {
  Rng rng(5);
  auto c1 = random_reversible(1, 10, rng);
  for (const auto& g : c1.gates()) EXPECT_EQ(g.kind, GateKind::X);
  auto c2 = random_reversible(2, 10, rng);
  for (const auto& g : c2.gates()) EXPECT_NE(g.kind, GateKind::CCX);
}

TEST(RandomUniversal, ProducesRequestedGates) {
  Rng rng(9);
  auto c = random_universal(4, 25, rng);
  EXPECT_EQ(c.gate_count(), 25u);
  EXPECT_FALSE(c.is_classical());  // overwhelmingly likely with 25 gates
}

TEST(RandomCircuits, DeterministicPerSeed) {
  Rng a(3), b(3);
  EXPECT_TRUE(random_reversible(4, 12, a) == random_reversible(4, 12, b));
  Rng c(3), d(4);
  EXPECT_FALSE(random_universal(4, 12, c) == random_universal(4, 12, d));
}

}  // namespace
}  // namespace tetris::qir::library
