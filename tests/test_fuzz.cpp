// Randomized end-to-end property suites ("fuzz" tests): every pipeline stage
// must preserve functional equivalence on arbitrary circuits, not just the
// hand-built benchmarks. Registers are kept small so the dense-unitary
// oracle stays cheap; seeds are fixed for reproducibility.

#include <gtest/gtest.h>

#include <string>

#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "common/json.h"
#include "compiler/compiler.h"
#include "compiler/optimize.h"
#include "compiler/routing.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "qir/library.h"
#include "qir/qasm.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, CompilerPreservesRandomUniversalCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto circuit = qir::library::random_universal(4, 20, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  EXPECT_TRUE(compiler::is_coupling_compliant(result.circuit, target.coupling));

  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, CompilerPreservesRandomReversibleCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  auto circuit = qir::library::random_reversible(5, 25, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, OptimizerPreservesRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  auto circuit = qir::library::random_universal(4, 30, rng);
  auto optimized = compiler::optimize(circuit);
  EXPECT_LE(optimized.gate_count(), circuit.gate_count());
  EXPECT_TRUE(sim::circuits_equivalent(optimized, circuit));
}

TEST_P(FuzzSeed, ObfuscateSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  // Random reversible circuit with guaranteed leading slack: keep one late
  // qubit idle by construction of the generator's distribution.
  auto circuit = qir::library::random_reversible(6, 12, rng);
  lock::Obfuscator obfuscator;
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));

  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  EXPECT_NO_THROW(lock::InterlockSplitter::validate(obf, pair));
  auto recombined =
      lock::InterlockSplitter::recombine_structural(pair, circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, circuit));
}

TEST_P(FuzzSeed, ObfuscateGroverWithHadamardAlphabet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  // The paper's prescription for interference-style circuits: H insertion.
  auto circuit = qir::library::grover(3, GetParam() % 8, 1);
  lock::InsertionConfig cfg;
  cfg.alphabet = lock::InsertionAlphabet::Hadamard;
  lock::Obfuscator obfuscator(cfg);
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));
}

TEST_P(FuzzSeed, CascadeSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  auto circuit = qir::library::random_reversible(5, 20, rng);
  auto split = baselines::cascade_split_with_swap_network(circuit, rng, 0.5);
  EXPECT_TRUE(
      sim::circuits_equivalent(baselines::cascade_recombine(split), circuit));
}

TEST_P(FuzzSeed, PrefixRestoreOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  auto circuit = qir::library::random_reversible(5, 15, rng);
  auto obf = baselines::prefix_obfuscate(circuit, 4, rng);
  EXPECT_TRUE(sim::circuits_equivalent(baselines::prefix_restore(obf), circuit));
}

TEST_P(FuzzSeed, QasmRoundTripOnRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  auto circuit = qir::library::random_universal(5, 25, rng);
  auto back = qir::from_qasm(qir::to_qasm(circuit));
  EXPECT_TRUE(back.approx_equal(circuit, 1e-12));
}

// ------------------------------------------------------- JSON parser fuzz

/// Emits a random JSON value of bounded depth through the Writer — the
/// generator side of the writer->parser round-trip property.
void random_json_value(json::Writer& w, Rng& rng, int depth) {
  const int kind = rng.uniform_int(0, depth > 0 ? 6 : 4);
  switch (kind) {
    case 0: w.null_value(); break;
    case 1: w.value(rng.bernoulli(0.5)); break;
    case 2: w.value(static_cast<long long>(rng.next_u64())); break;
    case 3: w.value(rng.uniform() * 1e6 - 5e5); break;
    case 4: {
      // Strings mixing printable ASCII, escapes, and raw UTF-8.
      std::string s;
      const int len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        switch (rng.uniform_int(0, 5)) {
          case 0: s += static_cast<char>(rng.uniform_int(0x20, 0x7e)); break;
          case 1: s += '"'; break;
          case 2: s += '\\'; break;
          case 3: s += '\n'; break;
          case 4: s += static_cast<char>(rng.uniform_int(0, 0x1f)); break;
          default: s += "\xc3\xa9"; break;  // é as raw UTF-8
        }
      }
      w.value(s);
      break;
    }
    case 5: {
      w.begin_array();
      const int items = rng.uniform_int(0, 4);
      for (int i = 0; i < items; ++i) random_json_value(w, rng, depth - 1);
      w.end_array();
      break;
    }
    default: {
      w.begin_object();
      const int items = rng.uniform_int(0, 4);
      for (int i = 0; i < items; ++i) {
        w.key("k" + std::to_string(i));
        random_json_value(w, rng, depth - 1);
      }
      w.end_object();
      break;
    }
  }
}

/// Re-serializes a parsed tree with the same Writer settings. Because the
/// parser preserves object order and number classification, this must
/// reproduce the original document byte for byte.
void rewrite_json(json::Writer& w, const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull: w.null_value(); break;
    case json::Value::Type::kBool: w.value(v.as_bool()); break;
    case json::Value::Type::kNumber:
      if (v.is_integer()) w.value(static_cast<long long>(v.as_int()));
      else w.value(v.as_number());
      break;
    case json::Value::Type::kString: w.value(v.as_string()); break;
    case json::Value::Type::kArray:
      w.begin_array();
      for (const json::Value& item : v.as_array()) rewrite_json(w, item);
      w.end_array();
      break;
    case json::Value::Type::kObject:
      w.begin_object();
      for (const auto& [key, value] : v.as_object()) {
        w.key(key);
        rewrite_json(w, value);
      }
      w.end_object();
      break;
  }
}

TEST_P(FuzzSeed, JsonWriterParserRoundTripOnRandomDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 8000);
  for (int iteration = 0; iteration < 25; ++iteration) {
    for (int indent : {0, 2}) {
      json::Writer w(indent);
      random_json_value(w, rng, 5);
      const std::string text = w.str();
      json::Value parsed = json::parse(text);
      json::Writer back(indent);
      rewrite_json(back, parsed);
      ASSERT_EQ(back.str(), text);
    }
  }
}

TEST_P(FuzzSeed, JsonParserSurvivesMutatedDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  // Seed corpus: a writer document plus handcrafted edge shapes.
  json::Writer w(0);
  random_json_value(w, rng, 4);
  const std::string corpus[] = {
      w.str(),
      R"({"a": [1, -2.5e3, "é😀"], "b": {"c": [true, null]}})",
      R"([{"k": 0.1}, "x", 1e-8, [[[]]]])",
  };
  // Mutated documents must parse or throw ParseError — never crash, hang,
  // or trip the sanitizers (this suite runs under ASan/UBSan in CI).
  for (const std::string& seed_doc : corpus) {
    for (int iteration = 0; iteration < 300; ++iteration) {
      std::string doc = seed_doc;
      const int mutations = rng.uniform_int(1, 4);
      for (int m = 0; m < mutations && !doc.empty(); ++m) {
        const std::size_t at = rng.index(doc.size());
        switch (rng.uniform_int(0, 3)) {
          case 0:
            doc[at] = static_cast<char>(rng.uniform_int(0, 255));
            break;
          case 1: doc.erase(at, 1); break;
          case 2:
            doc.insert(at, 1, static_cast<char>(rng.uniform_int(0, 255)));
            break;
          default:
            doc[at] = "{}[],:\"\\0123456789.eE+-"[rng.index(23)];
            break;
        }
      }
      try {
        json::Value v = json::parse(doc);
        (void)v.size();  // touching the result must be safe too
      } catch (const ParseError&) {
        // Expected for most mutations.
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 13));

}  // namespace
}  // namespace tetris
