// Randomized end-to-end property suites ("fuzz" tests): every pipeline stage
// must preserve functional equivalence on arbitrary circuits, not just the
// hand-built benchmarks. Registers are kept small so the dense-unitary
// oracle stays cheap; seeds are fixed for reproducibility.

#include <gtest/gtest.h>

#include <string>

#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "common/json.h"
#include "compiler/compiler.h"
#include "compiler/optimize.h"
#include "compiler/routing.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "net/client.h"
#include "net/http.h"
#include "net/server.h"
#include "qir/library.h"
#include "qir/qasm.h"
#include "service/service.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, CompilerPreservesRandomUniversalCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto circuit = qir::library::random_universal(4, 20, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  EXPECT_TRUE(compiler::is_coupling_compliant(result.circuit, target.coupling));

  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, CompilerPreservesRandomReversibleCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  auto circuit = qir::library::random_reversible(5, 25, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, OptimizerPreservesRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  auto circuit = qir::library::random_universal(4, 30, rng);
  auto optimized = compiler::optimize(circuit);
  EXPECT_LE(optimized.gate_count(), circuit.gate_count());
  EXPECT_TRUE(sim::circuits_equivalent(optimized, circuit));
}

TEST_P(FuzzSeed, ObfuscateSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  // Random reversible circuit with guaranteed leading slack: keep one late
  // qubit idle by construction of the generator's distribution.
  auto circuit = qir::library::random_reversible(6, 12, rng);
  lock::Obfuscator obfuscator;
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));

  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  EXPECT_NO_THROW(lock::InterlockSplitter::validate(obf, pair));
  auto recombined =
      lock::InterlockSplitter::recombine_structural(pair, circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, circuit));
}

TEST_P(FuzzSeed, ObfuscateGroverWithHadamardAlphabet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  // The paper's prescription for interference-style circuits: H insertion.
  auto circuit = qir::library::grover(3, GetParam() % 8, 1);
  lock::InsertionConfig cfg;
  cfg.alphabet = lock::InsertionAlphabet::Hadamard;
  lock::Obfuscator obfuscator(cfg);
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));
}

TEST_P(FuzzSeed, CascadeSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  auto circuit = qir::library::random_reversible(5, 20, rng);
  auto split = baselines::cascade_split_with_swap_network(circuit, rng, 0.5);
  EXPECT_TRUE(
      sim::circuits_equivalent(baselines::cascade_recombine(split), circuit));
}

TEST_P(FuzzSeed, PrefixRestoreOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  auto circuit = qir::library::random_reversible(5, 15, rng);
  auto obf = baselines::prefix_obfuscate(circuit, 4, rng);
  EXPECT_TRUE(sim::circuits_equivalent(baselines::prefix_restore(obf), circuit));
}

TEST_P(FuzzSeed, QasmRoundTripOnRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  auto circuit = qir::library::random_universal(5, 25, rng);
  auto back = qir::from_qasm(qir::to_qasm(circuit));
  EXPECT_TRUE(back.approx_equal(circuit, 1e-12));
}

// ------------------------------------------------------- JSON parser fuzz

/// Emits a random JSON value of bounded depth through the Writer — the
/// generator side of the writer->parser round-trip property.
void random_json_value(json::Writer& w, Rng& rng, int depth) {
  const int kind = rng.uniform_int(0, depth > 0 ? 6 : 4);
  switch (kind) {
    case 0: w.null_value(); break;
    case 1: w.value(rng.bernoulli(0.5)); break;
    case 2: w.value(static_cast<long long>(rng.next_u64())); break;
    case 3: w.value(rng.uniform() * 1e6 - 5e5); break;
    case 4: {
      // Strings mixing printable ASCII, escapes, and raw UTF-8.
      std::string s;
      const int len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        switch (rng.uniform_int(0, 5)) {
          case 0: s += static_cast<char>(rng.uniform_int(0x20, 0x7e)); break;
          case 1: s += '"'; break;
          case 2: s += '\\'; break;
          case 3: s += '\n'; break;
          case 4: s += static_cast<char>(rng.uniform_int(0, 0x1f)); break;
          default: s += "\xc3\xa9"; break;  // é as raw UTF-8
        }
      }
      w.value(s);
      break;
    }
    case 5: {
      w.begin_array();
      const int items = rng.uniform_int(0, 4);
      for (int i = 0; i < items; ++i) random_json_value(w, rng, depth - 1);
      w.end_array();
      break;
    }
    default: {
      w.begin_object();
      const int items = rng.uniform_int(0, 4);
      for (int i = 0; i < items; ++i) {
        w.key("k" + std::to_string(i));
        random_json_value(w, rng, depth - 1);
      }
      w.end_object();
      break;
    }
  }
}

/// Re-serializes a parsed tree with the same Writer settings. Because the
/// parser preserves object order and number classification, this must
/// reproduce the original document byte for byte.
void rewrite_json(json::Writer& w, const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull: w.null_value(); break;
    case json::Value::Type::kBool: w.value(v.as_bool()); break;
    case json::Value::Type::kNumber:
      if (v.is_integer()) w.value(static_cast<long long>(v.as_int()));
      else w.value(v.as_number());
      break;
    case json::Value::Type::kString: w.value(v.as_string()); break;
    case json::Value::Type::kArray:
      w.begin_array();
      for (const json::Value& item : v.as_array()) rewrite_json(w, item);
      w.end_array();
      break;
    case json::Value::Type::kObject:
      w.begin_object();
      for (const auto& [key, value] : v.as_object()) {
        w.key(key);
        rewrite_json(w, value);
      }
      w.end_object();
      break;
  }
}

TEST_P(FuzzSeed, JsonWriterParserRoundTripOnRandomDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 8000);
  for (int iteration = 0; iteration < 25; ++iteration) {
    for (int indent : {0, 2}) {
      json::Writer w(indent);
      random_json_value(w, rng, 5);
      const std::string text = w.str();
      json::Value parsed = json::parse(text);
      json::Writer back(indent);
      rewrite_json(back, parsed);
      ASSERT_EQ(back.str(), text);
    }
  }
}

TEST_P(FuzzSeed, JsonParserSurvivesMutatedDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  // Seed corpus: a writer document plus handcrafted edge shapes.
  json::Writer w(0);
  random_json_value(w, rng, 4);
  const std::string corpus[] = {
      w.str(),
      R"({"a": [1, -2.5e3, "é😀"], "b": {"c": [true, null]}})",
      R"([{"k": 0.1}, "x", 1e-8, [[[]]]])",
  };
  // Mutated documents must parse or throw ParseError — never crash, hang,
  // or trip the sanitizers (this suite runs under ASan/UBSan in CI).
  for (const std::string& seed_doc : corpus) {
    for (int iteration = 0; iteration < 300; ++iteration) {
      std::string doc = seed_doc;
      const int mutations = rng.uniform_int(1, 4);
      for (int m = 0; m < mutations && !doc.empty(); ++m) {
        const std::size_t at = rng.index(doc.size());
        switch (rng.uniform_int(0, 3)) {
          case 0:
            doc[at] = static_cast<char>(rng.uniform_int(0, 255));
            break;
          case 1: doc.erase(at, 1); break;
          case 2:
            doc.insert(at, 1, static_cast<char>(rng.uniform_int(0, 255)));
            break;
          default:
            doc[at] = "{}[],:\"\\0123456789.eE+-"[rng.index(23)];
            break;
        }
      }
      try {
        json::Value v = json::parse(doc);
        (void)v.size();  // touching the result must be safe too
      } catch (const ParseError&) {
        // Expected for most mutations.
      }
    }
  }
}

// ------------------------------------------------------- HTTP parser fuzz

/// The malformed-request corpus the one-shot server was hardened against;
/// re-used here both as mutation seeds and verbatim over a persistent
/// connection.
const std::vector<std::string>& malformed_http_corpus() {
  static const std::vector<std::string> corpus = {
      "GARBAGE\r\n\r\n",
      "GET /a b HTTP/1.1\r\n\r\n",
      "GET /x HTTP/2\r\n\r\n",
      "GET noslash HTTP/1.1\r\n\r\n",
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET /%zz HTTP/1.1\r\n\r\n",
      "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n"
      "\r\n",
  };
  return corpus;
}

/// Feeds `wire` to `parser` in random 1..7-byte chunks, emulating the
/// reactor's buffered advance loop: every chunk is appended to an in-buffer,
/// the parser consumes what it can, and completed requests are popped with
/// take(). Returns the completed requests; stops early on a protocol error
/// (a real connection closes there).
std::vector<net::http::Request> feed_in_random_chunks(
    net::http::RequestParser& parser, const std::string& wire, Rng& rng) {
  std::vector<net::http::Request> out;
  std::string in;
  std::size_t cursor = 0;
  while (cursor < wire.size() && !parser.failed()) {
    const std::size_t chunk = std::min(
        static_cast<std::size_t>(rng.uniform_int(1, 7)), wire.size() - cursor);
    in.append(wire, cursor, chunk);
    cursor += chunk;
    while (!in.empty()) {
      const std::size_t used = parser.consume(in.data(), in.size());
      in.erase(0, used);
      if (parser.done()) {
        out.push_back(parser.take());
        continue;  // surplus bytes may already hold the next request
      }
      break;  // incomplete (needs more bytes) or failed
    }
  }
  return out;
}

TEST_P(FuzzSeed, HttpParserReassemblesRandomlySplitRequests) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10000);
  for (int iteration = 0; iteration < 50; ++iteration) {
    // A random but valid pipelined pair: one bodyless request, one POST
    // whose body length is exact.
    const std::string path =
        "/v1/jobs/" + std::to_string(rng.uniform_int(1, 999)) +
        (rng.bernoulli(0.5) ? "?timing=0" : "");
    std::string body;
    const int body_len = rng.uniform_int(0, 40);
    for (int i = 0; i < body_len; ++i) {
      body += static_cast<char>(rng.uniform_int(0x20, 0x7e));
    }
    std::string wire = "GET " + path + " HTTP/1.1\r\nX-Tag: a b\r\n\r\n";
    wire += "POST /v1/jobs HTTP/1.1\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;

    net::http::RequestParser parser;
    auto requests = feed_in_random_chunks(parser, wire, rng);
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].method, "GET");
    EXPECT_EQ(requests[0].path, path.substr(0, path.find('?')));
    ASSERT_NE(requests[0].header("x-tag"), nullptr);
    EXPECT_EQ(*requests[0].header("x-tag"), "a b");
    EXPECT_EQ(requests[1].method, "POST");
    EXPECT_EQ(requests[1].body, body);
    EXPECT_FALSE(parser.failed());
  }
}

TEST_P(FuzzSeed, HttpParserMutatedRequestsParseOrRejectStructured) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 11000);
  std::vector<std::string> corpus = malformed_http_corpus();
  corpus.push_back("GET /v1/status HTTP/1.1\r\nHost: x\r\n\r\n");
  corpus.push_back(
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n");

  // Tight limits so the 431/413 rejection paths are reachable by mutation.
  net::http::RequestParser::Limits limits;
  limits.max_header_bytes = 256;
  limits.max_body_bytes = 64;

  for (const std::string& seed_doc : corpus) {
    for (int iteration = 0; iteration < 120; ++iteration) {
      std::string doc = seed_doc;
      const int mutations = rng.uniform_int(1, 4);
      for (int m = 0; m < mutations && !doc.empty(); ++m) {
        const std::size_t at = rng.index(doc.size());
        switch (rng.uniform_int(0, 3)) {
          case 0:
            doc[at] = static_cast<char>(rng.uniform_int(0, 255));
            break;
          case 1: doc.erase(at, 1); break;
          case 2:
            doc.insert(at, rng.index(64) + 1,
                       static_cast<char>(rng.uniform_int(0, 255)));
            break;
          default:
            doc[at] = "\r\n :/GETPOST0123456789"[rng.index(21)];
            break;
        }
      }
      // The incremental parser must digest arbitrary garbage in arbitrary
      // chunkings without throwing, crashing, or tripping the sanitizers —
      // every failure is a structured HttpError held in the parser.
      net::http::RequestParser parser(limits);
      feed_in_random_chunks(parser, doc, rng);
      if (parser.failed()) {
        const net::http::HttpError& e = parser.error();
        const int status = e.status();
        EXPECT_TRUE(status == 400 || status == 411 || status == 413 ||
                    status == 431 || status == 501)
            << status;
        EXPECT_FALSE(e.code().empty());
      }
    }
  }
}

TEST(HttpFuzzEndToEnd, MalformedCorpusOverPersistentConnections) {
  // The PR-5 malformed corpus replayed against a live server — but now each
  // entry rides in after a successful keep-alive request on the same
  // connection. The server must answer the good request, reject the bad
  // one with a structured error, and close — never wedge or carry parser
  // state across requests.
  service::ServiceConfig scfg;
  scfg.num_threads = 1;
  scfg.base_seed = 2025;
  service::Service service(scfg);
  net::ServerConfig config;
  config.port = 0;
  net::Server server(service, config);
  server.start();
  net::Client client("127.0.0.1", server.port());

  for (const std::string& malformed : malformed_http_corpus()) {
    const std::string wire =
        client.raw_exchange("GET /v1/status HTTP/1.1\r\n\r\n" + malformed);
    // First response: the healthy keep-alive request.
    ASSERT_EQ(wire.rfind("HTTP/1.1 200", 0), 0u) << malformed;
    // Second response: a structured 4xx/5xx, after which the peer closed
    // (raw_exchange returning at all proves the close).
    const std::size_t second = wire.find("HTTP/1.1 ", 12);
    ASSERT_NE(second, std::string::npos) << malformed;
    const int status = std::stoi(wire.substr(second + 9, 3));
    EXPECT_GE(status, 400) << malformed;
    EXPECT_LT(status, 600) << malformed;
    EXPECT_NE(wire.find("\"error\"", second), std::string::npos) << malformed;
  }

  // The server survives the whole corpus and still answers cleanly.
  EXPECT_EQ(client.get("/v1/status").status, 200);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 13));

}  // namespace
}  // namespace tetris
