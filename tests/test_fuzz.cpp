// Randomized end-to-end property suites ("fuzz" tests): every pipeline stage
// must preserve functional equivalence on arbitrary circuits, not just the
// hand-built benchmarks. Registers are kept small so the dense-unitary
// oracle stays cheap; seeds are fixed for reproducibility.

#include <gtest/gtest.h>

#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "compiler/compiler.h"
#include "compiler/optimize.h"
#include "compiler/routing.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "qir/library.h"
#include "qir/qasm.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, CompilerPreservesRandomUniversalCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto circuit = qir::library::random_universal(4, 20, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  EXPECT_TRUE(compiler::is_coupling_compliant(result.circuit, target.coupling));

  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, CompilerPreservesRandomReversibleCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  auto circuit = qir::library::random_reversible(5, 25, rng);
  compiler::Target target = compiler::fake_valencia();
  compiler::CompileOptions opts{target, compiler::LayoutStrategy::GreedyDegree,
                                true, std::nullopt};
  auto result = compiler::Compiler(opts).compile(circuit);
  qir::Circuit reference =
      testutil::embed(circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST_P(FuzzSeed, OptimizerPreservesRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  auto circuit = qir::library::random_universal(4, 30, rng);
  auto optimized = compiler::optimize(circuit);
  EXPECT_LE(optimized.gate_count(), circuit.gate_count());
  EXPECT_TRUE(sim::circuits_equivalent(optimized, circuit));
}

TEST_P(FuzzSeed, ObfuscateSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  // Random reversible circuit with guaranteed leading slack: keep one late
  // qubit idle by construction of the generator's distribution.
  auto circuit = qir::library::random_reversible(6, 12, rng);
  lock::Obfuscator obfuscator;
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));

  lock::InterlockSplitter splitter;
  auto pair = splitter.split(obf, rng);
  EXPECT_NO_THROW(lock::InterlockSplitter::validate(obf, pair));
  auto recombined =
      lock::InterlockSplitter::recombine_structural(pair, circuit.num_qubits());
  EXPECT_TRUE(sim::circuits_equivalent(recombined, circuit));
}

TEST_P(FuzzSeed, ObfuscateGroverWithHadamardAlphabet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  // The paper's prescription for interference-style circuits: H insertion.
  auto circuit = qir::library::grover(3, GetParam() % 8, 1);
  lock::InsertionConfig cfg;
  cfg.alphabet = lock::InsertionAlphabet::Hadamard;
  lock::Obfuscator obfuscator(cfg);
  auto obf = obfuscator.obfuscate(circuit, rng);
  EXPECT_EQ(obf.circuit.depth(), circuit.depth());
  EXPECT_TRUE(sim::circuits_equivalent(obf.circuit, circuit));
}

TEST_P(FuzzSeed, CascadeSplitRecombineOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  auto circuit = qir::library::random_reversible(5, 20, rng);
  auto split = baselines::cascade_split_with_swap_network(circuit, rng, 0.5);
  EXPECT_TRUE(
      sim::circuits_equivalent(baselines::cascade_recombine(split), circuit));
}

TEST_P(FuzzSeed, PrefixRestoreOnRandomReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  auto circuit = qir::library::random_reversible(5, 15, rng);
  auto obf = baselines::prefix_obfuscate(circuit, 4, rng);
  EXPECT_TRUE(sim::circuits_equivalent(baselines::prefix_restore(obf), circuit));
}

TEST_P(FuzzSeed, QasmRoundTripOnRandomCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  auto circuit = qir::library::random_universal(5, 25, rng);
  auto back = qir::from_qasm(qir::to_qasm(circuit));
  EXPECT_TRUE(back.approx_equal(circuit, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 13));

}  // namespace
}  // namespace tetris
