// End-to-end tests of the REST front-end (src/net/): a real server on an
// ephemeral loopback port driven by the real blocking client, plus direct
// unit tests of the HTTP message layer and the router. The key contract —
// a job submitted over the wire serializes byte-identically to the same
// job submitted in-process — is pinned here.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "net/client.h"
#include "net/dispatch.h"
#include "net/http.h"
#include "net/socket.h"
#include "qir/qasm.h"
#include "revlib/benchmarks.h"
#include "service/artifact_store.h"
#include "service/serialize.h"
#include "service/service.h"

namespace tetris::net {
namespace {

/// Small submit body for the built-in benchmark `name`. A non-empty
/// `backend` adds the config field ("auto"/"statevector"/"stabilizer"/
/// "unitary").
std::string submit_body(const std::string& name, std::uint64_t seed = 2025,
                        std::size_t shots = 64,
                        const std::string& backend = "") {
  json::Writer w(0);
  w.begin_object();
  w.key("benchmark").value(name);
  w.key("seed").value(seed);
  w.key("config").begin_object();
  w.key("shots").value(shots);
  if (!backend.empty()) w.key("backend").value(backend);
  w.end_object();
  w.end_object();
  return w.str();
}

/// The same job built in-process, for facade-vs-wire comparisons.
lock::FlowJob facade_job(const std::string& name, std::size_t shots = 64) {
  const auto& b = revlib::get_benchmark(name);
  lock::FlowConfig cfg;
  cfg.shots = shots;
  return lock::make_flow_job(b.name, b.circuit, b.measured, cfg);
}

/// Service config for the fixtures: `threads` private workers, seed 2025,
/// cache off (store fields default-empty).
service::ServiceConfig fixture_service_config(unsigned threads) {
  service::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.base_seed = 2025;
  cfg.cache_capacity = 0;
  return cfg;
}

/// A service (private 2-thread pool, so POSTs stay async) plus a started
/// server on an ephemeral port and a client pointed at it.
class ServerFixture {
 public:
  explicit ServerFixture(
      ServerConfig config = {},
      service::ServiceConfig service_config = fixture_service_config(2))
      : service_(service_config), server_(service_, with_port0(config)) {
    server_.start();
  }

  ~ServerFixture() { server_.stop(); }

  Client client() { return Client("127.0.0.1", server_.port()); }

  service::Service& service() { return service_; }
  Server& server() { return server_; }

 private:
  static ServerConfig with_port0(ServerConfig config) {
    config.port = 0;
    return config;
  }

  service::Service service_;
  Server server_;
};

std::string poll_until_terminal(Client& client, std::uint64_t id) {
  // 30s ceiling: heavy-shot jobs under sanitizers on an oversubscribed
  // test host can take >10s of wall time before turning terminal.
  for (int i = 0; i < 3000; ++i) {
    auto res = client.get("/v1/jobs/" + std::to_string(id));
    EXPECT_EQ(res.status, 200);
    std::string state = json::parse(res.body).at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " never became terminal";
  return "timeout";
}

// ----------------------------------------------------------- message layer

TEST(HttpMessages, ParsesRequestLineHeadersAndQuery) {
  auto req = http::parse_request_head(
      "GET /v1/jobs/7?timing=0&x=a%20b HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "X-Custom:  spaced value \r\n"
      "\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/v1/jobs/7");
  ASSERT_NE(req.query_param("timing"), nullptr);
  EXPECT_EQ(*req.query_param("timing"), "0");
  ASSERT_NE(req.query_param("x"), nullptr);
  EXPECT_EQ(*req.query_param("x"), "a b");
  ASSERT_NE(req.header("x-custom"), nullptr);
  EXPECT_EQ(*req.header("x-custom"), "spaced value");
  EXPECT_EQ(req.header("absent"), nullptr);
}

TEST(HttpMessages, RejectsMalformedRequests) {
  EXPECT_THROW(http::parse_request_head("GARBAGE\r\n\r\n"), http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /a b HTTP/1.1\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /x HTTP/2\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET noslash HTTP/1.1\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(
      http::parse_request_head("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
      http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /%zz HTTP/1.1\r\n\r\n"),
               http::HttpError);
}

TEST(HttpMessages, BodyLengthEnforcesLimitsAndChunkRejection) {
  auto with_headers = [](const std::string& lines) {
    return http::parse_request_head("POST /v1/jobs HTTP/1.1\r\n" + lines +
                                    "\r\n");
  };
  EXPECT_EQ(http::body_length(with_headers(""), 100), 0u);
  EXPECT_EQ(http::body_length(with_headers("Content-Length: 42\r\n"), 100),
            42u);
  try {
    http::body_length(with_headers("Content-Length: 101\r\n"), 100);
    FAIL() << "oversized body accepted";
  } catch (const http::HttpError& e) {
    EXPECT_EQ(e.status(), 413);
  }
  try {
    http::body_length(with_headers("Transfer-Encoding: chunked\r\n"), 100);
    FAIL() << "chunked encoding accepted";
  } catch (const http::HttpError& e) {
    EXPECT_EQ(e.status(), 411);
  }
  EXPECT_THROW(http::body_length(with_headers("Content-Length: nope\r\n"), 100),
               http::HttpError);
  EXPECT_THROW(
      http::body_length(with_headers("Content-Length: 1\r\n"
                                     "Content-Length: 2\r\n"),
                        100),
      http::HttpError);
}

TEST(HttpMessages, ResponseRoundTrip) {
  http::Response out;
  out.status = 404;
  out.body = "{\"error\":{}}";
  std::string wire = http::format_response(out);
  std::size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  auto parsed = http::parse_response_head(wire.substr(0, head_end + 4));
  EXPECT_EQ(parsed.status, 404);
  ASSERT_NE(parsed.header("content-length"), nullptr);
  EXPECT_EQ(*parsed.header("content-length"),
            std::to_string(out.body.size()));
  EXPECT_EQ(wire.substr(head_end + 4), out.body);
}

TEST(UrlParsing, AcceptsHostPortShapes) {
  auto url = parse_url("http://127.0.0.1:8080");
  EXPECT_EQ(url.host, "127.0.0.1");
  EXPECT_EQ(url.port, 8080);
  EXPECT_EQ(parse_url("http://localhost:1/").port, 1);
  EXPECT_EQ(parse_url("http://10.0.0.1").port, 80);
  EXPECT_THROW(parse_url("https://127.0.0.1:1"), InvalidArgument);
  EXPECT_THROW(parse_url("http://127.0.0.1:0"), InvalidArgument);
  EXPECT_THROW(parse_url("http://127.0.0.1:x"), InvalidArgument);
  EXPECT_THROW(parse_url("http://host:1/v1/jobs"), InvalidArgument);
}

// ------------------------------------------------------------- end to end

TEST(NetServer, StatusEndpointReportsCounters) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.get("/v1/status");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("schema").as_string(), "tetrislock.status.v1");
  EXPECT_EQ(doc.at("service").at("jobs_submitted").as_int(), 0);
  EXPECT_EQ(doc.at("service").at("threads").as_int(), 2);
  EXPECT_EQ(doc.at("cache").at("capacity").as_int(), 0);

  // A second status call sees the first one in the counters.
  auto doc2 = json::parse(client.get("/v1/status").body);
  EXPECT_GE(doc2.at("server").at("requests").as_int(), 1);
  EXPECT_GE(doc2.at("server").at("responses_2xx").as_int(), 1);
}

TEST(NetServer, SubmitPollResultRoundTrip) {
  ServerFixture fx;
  auto client = fx.client();

  auto posted = client.post("/v1/jobs", submit_body("4mod5"));
  ASSERT_EQ(posted.status, 202) << posted.body;
  auto accepted = json::parse(posted.body);
  EXPECT_EQ(accepted.at("id").as_int(), 1);
  EXPECT_EQ(accepted.at("url").as_string(), "/v1/jobs/1");

  EXPECT_EQ(poll_until_terminal(client, 1), "done");

  auto res = client.get("/v1/jobs/1");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("state").as_string(), "done");
  EXPECT_EQ(doc.at("seed").as_int(), 2025);
  EXPECT_EQ(doc.at("status").at("code").as_string(), "ok");
  const auto& result = doc.at("result");
  EXPECT_EQ(result.at("depth_original").as_int(),
            result.at("depth_obfuscated").as_int());
  EXPECT_GT(result.at("gates_obfuscated").as_int(),
            result.at("gates_original").as_int());
}

TEST(NetServer, ResultJsonByteIdenticalToInProcessFacade) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  auto res = client.get("/v1/jobs/1?timing=0");
  ASSERT_EQ(res.status, 200);

  // The same circuit, seed, and flow config through the in-process facade.
  service::Service svc(fixture_service_config(2));
  auto outcome = svc.submit(facade_job("4mod5"), 2025).wait();
  ASSERT_EQ(outcome.state, service::JobState::kDone);
  EXPECT_EQ(res.body, service::to_json(outcome, /*include_timing=*/false));
}

TEST(NetServer, QasmSubmissionMatchesBenchmarkSubmission) {
  // An inline-QASM body with explicit measured qubits must behave exactly
  // like the equivalent benchmark submission.
  const auto& b = revlib::get_benchmark("4mod5");
  json::Writer w(0);
  w.begin_object();
  w.key("qasm").value(qir::to_qasm(b.circuit));
  w.key("name").value(b.name);
  w.key("measured").begin_array();
  for (int q : b.measured) w.value(q);
  w.end_array();
  w.key("seed").value(2025);
  w.key("config").begin_object().key("shots").value(64).end_object();
  w.end_object();

  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", w.str()).status, 202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  ASSERT_EQ(poll_until_terminal(client, 2), "done");

  // Ids differ, so compare the result objects field by field.
  auto qasm_doc = json::parse(client.get("/v1/jobs/1?timing=0").body);
  auto bench_doc = json::parse(client.get("/v1/jobs/2?timing=0").body);
  EXPECT_EQ(qasm_doc.at("result").size(), bench_doc.at("result").size());
  for (const auto& [key, value] : qasm_doc.at("result").as_object()) {
    const json::Value& other = bench_doc.at("result").at(key);
    if (value.is_number()) {
      EXPECT_EQ(value.as_number(), other.as_number()) << key;
    }
  }
}

TEST(NetServer, RepeatedGetIsStableAndDoesNotDisturbDrain) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  const std::string first = client.get("/v1/jobs/1?timing=0").body;
  const std::string second = client.get("/v1/jobs/1?timing=0").body;
  EXPECT_EQ(first, second);

  // The HTTP reads above must not have consumed the drain cursor.
  std::size_t drained = fx.service().drain([](const service::JobOutcome&) {});
  EXPECT_EQ(drained, 1u);
  EXPECT_EQ(client.get("/v1/jobs/1?timing=0").body, first);
}

TEST(NetServer, ArtifactEndpointServesValidatedBytes) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  auto res = client.get("/v1/jobs/1/artifact");
  ASSERT_EQ(res.status, 200);
  ASSERT_NE(res.header("content-type"), nullptr);
  EXPECT_EQ(*res.header("content-type"), "application/octet-stream");

  // The bytes are a complete, valid artifact carrying the job's provenance.
  const service::Artifact artifact = service::decode_artifact(res.body);
  EXPECT_EQ(artifact.key.seed, 2025u);
  EXPECT_EQ(artifact.result.depth_original,
            artifact.result.depth_obfuscated);

  // Byte-identical to the in-process encoding of the same job — the
  // "fetch == store file" guarantee rides on this plus determinism.
  EXPECT_EQ(res.body, fx.service().artifact_bytes(fx.service().handle(1)));
  // And stable across repeated GETs.
  EXPECT_EQ(client.get("/v1/jobs/1/artifact").body, res.body);
}

TEST(NetServer, ArtifactEndpointRejectsUnknownAndUnfinishedJobs) {
  // One worker wedged by a slow job keeps a second submission queued long
  // enough to cancel it — giving a deterministic non-done terminal state.
  ServerFixture fx({}, fixture_service_config(1));
  auto client = fx.client();

  auto missing = client.get("/v1/jobs/99/artifact");
  EXPECT_EQ(missing.status, 404);

  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, /*shots=*/20000))
          .status,
      202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(client.del("/v1/jobs/2").status, 200);

  auto res = client.get("/v1/jobs/2/artifact");
  EXPECT_EQ(res.status, 409);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "no_artifact");

  EXPECT_EQ(poll_until_terminal(client, 1), "done");
}

TEST(NetServer, StatusReportsArtifactStoreCounters) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "tetris_net_store").string();
  std::filesystem::remove_all(dir);
  service::ServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.store_dir = dir;
  ServerFixture fx({}, scfg);
  auto client = fx.client();

  auto before = json::parse(client.get("/v1/status").body);
  EXPECT_TRUE(before.at("store").at("enabled").as_bool());
  EXPECT_EQ(before.at("store").at("writes").as_int(), 0);

  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  auto after = json::parse(client.get("/v1/status").body);
  EXPECT_EQ(after.at("store").at("writes").as_int(), 1);
  EXPECT_EQ(after.at("store").at("entries").as_int(), 1);

  // A store-less server reports the tier as disabled, not absent.
  ServerFixture plain;
  auto plain_client = plain.client();
  auto doc = json::parse(plain_client.get("/v1/status").body);
  EXPECT_FALSE(doc.at("store").at("enabled").as_bool());
}

TEST(NetServer, StatusListsBackendRegistryAndPerEngineTallies) {
  ServerFixture fx;
  auto client = fx.client();

  auto doc = json::parse(client.get("/v1/status").body);
  const auto& backends = doc.at("backends");
  ASSERT_EQ(backends.size(), 3u);
  EXPECT_FALSE(backends.at("statevector").at("clifford_only").as_bool());
  EXPECT_TRUE(backends.at("statevector").at("supports_noise").as_bool());
  EXPECT_TRUE(backends.at("stabilizer").at("clifford_only").as_bool());
  EXPECT_EQ(backends.at("stabilizer").at("max_qubits").as_int(), 64);
  EXPECT_EQ(backends.at("unitary").at("max_qubits").as_int(), 12);
  EXPECT_FALSE(backends.at("unitary").at("supports_noise").as_bool());
  for (const auto& [name, info] : backends.as_object()) {
    EXPECT_EQ(info.at("jobs_done").as_int(), 0) << name;
    EXPECT_EQ(info.at("jobs_failed").as_int(), 0) << name;
  }

  // A 50-qubit Clifford job over the wire lands on the stabilizer engine
  // and moves that engine's tally — and only that engine's.
  auto posted =
      client.post("/v1/jobs", submit_body("cliff50", 2025, 64, "stabilizer"));
  ASSERT_EQ(posted.status, 202) << posted.body;
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  auto after = json::parse(client.get("/v1/status").body);
  EXPECT_EQ(after.at("backends").at("stabilizer").at("jobs_done").as_int(), 1);
  EXPECT_EQ(after.at("backends").at("statevector").at("jobs_done").as_int(), 0);
  EXPECT_EQ(after.at("backends").at("stabilizer").at("jobs_failed").as_int(),
            0);
}

TEST(NetServer, BackendConfigEchoAndValidation) {
  ServerFixture fx;
  auto client = fx.client();

  // An off-default engine is echoed in the job document's sampler block;
  // the statevector default is omitted (documents stay byte-identical to
  // the pre-backend schema). `auto` on a wide Clifford circuit resolves to
  // stabilizer before the echo.
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("cliff50", 2025, 64, "auto"))
                .status,
            202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  ASSERT_EQ(poll_until_terminal(client, 2), "done");
  auto sv_doc = json::parse(client.get("/v1/jobs/1?timing=0").body);
  EXPECT_EQ(sv_doc.at("sampler").find("backend"), nullptr);
  auto stab_doc = json::parse(client.get("/v1/jobs/2?timing=0").body);
  ASSERT_NE(stab_doc.at("sampler").find("backend"), nullptr);
  EXPECT_EQ(stab_doc.at("sampler").at("backend").as_string(), "stabilizer");

  // Unknown engine names and non-string values are submit-time 400s.
  auto bad_name =
      client.post("/v1/jobs", submit_body("4mod5", 2025, 64, "warp"));
  EXPECT_EQ(bad_name.status, 400);
  EXPECT_EQ(json::parse(bad_name.body).at("error").at("code").as_string(),
            "invalid_argument");
  auto bad_type = client.post(
      "/v1/jobs",
      R"({"benchmark":"4mod5","seed":1,"config":{"backend":7}})");
  EXPECT_EQ(bad_type.status, 400);

  // Forcing the stabilizer onto a non-Clifford benchmark is accepted at
  // submit time but fails in the flow with the structured UnsupportedGate
  // message naming the engine and the offending gate (the compiled view of
  // 4mod5's Toffolis carries off-lattice rz angles).
  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, 64, "stabilizer"))
          .status,
      202);
  ASSERT_EQ(poll_until_terminal(client, 3), "failed");
  auto failed = json::parse(client.get("/v1/jobs/3").body);
  EXPECT_EQ(failed.at("status").at("code").as_string(), "invalid_argument");
  const std::string message = failed.at("status").at("message").as_string();
  EXPECT_NE(message.find("stabilizer"), std::string::npos) << message;
  EXPECT_NE(message.find("rz"), std::string::npos) << message;
}

TEST(NetServer, ConcurrentClientsGetUniqueIdsAndAnswers) {
  ServerConfig config;
  config.connection_threads = 4;  // genuine connection parallelism
  ServerFixture fx(config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::set<std::int64_t> ids;
  std::atomic<int> status_ok{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = fx.client();
      for (int i = 0; i < kPerClient; ++i) {
        auto posted = client.post("/v1/jobs", submit_body("4mod5"));
        ASSERT_EQ(posted.status, 202) << posted.body;
        auto id = json::parse(posted.body).at("id").as_int();
        {
          std::lock_guard<std::mutex> lk(mutex);
          ids.insert(id);
        }
        if (client.get("/v1/status").status == 200) ++status_ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), kClients * kPerClient);
  EXPECT_EQ(status_ok.load(), kClients * kPerClient);
  auto client = fx.client();
  for (int id = 1; id <= kClients * kPerClient; ++id) {
    EXPECT_EQ(poll_until_terminal(client, static_cast<std::uint64_t>(id)),
              "done");
  }
}

TEST(NetServer, DeleteCancelsQueuedJobs) {
  // One service worker: job 1 occupies it, job 2 sits queued and is
  // cancellable through the REST surface.
  ServerFixture fx({}, fixture_service_config(1));
  auto client = fx.client();
  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, /*shots=*/20000))
          .status,
      202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);

  auto res = client.del("/v1/jobs/2");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  if (doc.at("cancelled").as_bool()) {
    EXPECT_EQ(doc.at("state").as_string(), "cancelled");
    auto out = json::parse(client.get("/v1/jobs/2").body);
    EXPECT_EQ(out.at("state").as_string(), "cancelled");
    EXPECT_EQ(out.at("status").at("code").as_string(), "cancelled");
  } else {
    // The worker raced us and already picked the job up; it must finish.
    EXPECT_NE(poll_until_terminal(client, 2), "timeout");
  }
  EXPECT_EQ(poll_until_terminal(client, 1), "done");

  // Cancelling a finished job is a no-op reported as such.
  auto again = json::parse(client.del("/v1/jobs/1").body);
  EXPECT_FALSE(again.at("cancelled").as_bool());
  EXPECT_EQ(again.at("state").as_string(), "done");
}

// -------------------------------------------------------------- error paths

TEST(NetServer, BadJsonIs400WithParseErrorCode) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.post("/v1/jobs", "{not json");
  EXPECT_EQ(res.status, 400);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("error").at("code").as_string(), "parse_error");
}

TEST(NetServer, BadQasmIs400WithParseErrorCode) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.post(
      "/v1/jobs",
      R"({"qasm": "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n"})");
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "parse_error");
  // An unsupported QASM version is an invalid argument, still a 400.
  res = client.post("/v1/jobs", R"({"qasm": "OPENQASM 9.9; bogus"})");
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "invalid_argument");
}

TEST(NetServer, SubmitValidationRejections) {
  ServerFixture fx;
  auto client = fx.client();
  // Neither qasm nor benchmark.
  EXPECT_EQ(client.post("/v1/jobs", R"({"seed": 1})").status, 400);
  // Unknown top-level field.
  EXPECT_EQ(
      client.post("/v1/jobs", R"({"benchmark": "4mod5", "shot": 1})").status,
      400);
  // Unknown config field (typo of shots).
  EXPECT_EQ(client
                .post("/v1/jobs",
                      R"({"benchmark": "4mod5", "config": {"shot": 1}})")
                .status,
            400);
  // Zero shots.
  EXPECT_EQ(client
                .post("/v1/jobs",
                      R"({"benchmark": "4mod5", "config": {"shots": 0}})")
                .status,
            400);
  // Unknown benchmark.
  EXPECT_EQ(client.post("/v1/jobs", R"({"benchmark": "nope"})").status, 400);
  // Integer fields that would truncate into a *different* valid config
  // (2^32 + 2 cast to int is 2) must be rejected, not narrowed.
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"max_gates": 4294967298}})")
                .status,
            400);
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"sample_jobs": 4294967296}})")
                .status,
            400);
  // An absurd shot count would pin a job worker on an uncancellable run.
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"shots": 1000000000000}})")
                .status,
            400);
  // Measured qubit out of range.
  EXPECT_EQ(
      client.post("/v1/jobs", R"({"benchmark": "4mod5", "measured": [99]})")
          .status,
      400);
  // Non-object body.
  EXPECT_EQ(client.post("/v1/jobs", "[1,2]").status, 400);
  // Nothing was actually submitted.
  EXPECT_EQ(fx.service().jobs_submitted(), 0u);
}

TEST(NetServer, UnknownRoutesAndMethods) {
  ServerFixture fx;
  auto client = fx.client();
  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/v1/jobs/999").status, 404);
  EXPECT_EQ(client.get("/v1/jobs/abc").status, 404);
  EXPECT_EQ(client.del("/v1/jobs/7").status, 404);
  EXPECT_EQ(client.get("/v1/jobs").status, 405);
  EXPECT_EQ(client.del("/v1/status").status, 405);
  EXPECT_EQ(client.request("PATCH", "/v1/jobs/1").status, 405);
  auto doc = json::parse(client.get("/nope").body);
  EXPECT_EQ(doc.at("error").at("code").as_string(), "not_found");
}

TEST(NetServer, OversizedBodyIs413) {
  ServerConfig config;
  config.max_body_bytes = 512;
  ServerFixture fx(config);
  auto client = fx.client();
  auto res = client.post("/v1/jobs", std::string(1024, 'x'));
  EXPECT_EQ(res.status, 413);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "payload_too_large");
}

TEST(NetServer, SlowRequestHits408Deadline) {
  // A peer that sends a partial head and then goes silent must be answered
  // 408 when the whole-request deadline expires — it cannot hold a
  // connection worker for the full (much longer) idle timeout.
  ServerConfig config;
  config.request_deadline_ms = 200;
  config.io_timeout_ms = 30000;
  ServerFixture fx(config);
  auto client = fx.client();
  const auto start = std::chrono::steady_clock::now();
  std::string wire = client.raw_exchange("GET /v1/status HTTP/1.1\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(wire.rfind("HTTP/1.1 408", 0), 0u) << wire;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(NetServer, RawProtocolGarbageGets400) {
  ServerFixture fx;
  auto client = fx.client();
  std::string wire = client.raw_exchange("THIS IS NOT HTTP\r\n\r\n");
  EXPECT_EQ(wire.rfind("HTTP/1.1 400", 0), 0u) << wire;
  // Chunked upload announcement is answered 411 before any body is read.
  wire = client.raw_exchange(
      "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(wire.rfind("HTTP/1.1 411", 0), 0u) << wire;
}

// ----------------------------------------------------- protocol conformance

/// Splits a wire capture holding back-to-back HTTP/1.1 responses (each
/// framed by Content-Length) into (status, body) pairs, in arrival order.
std::vector<std::pair<int, std::string>> split_responses(
    const std::string& wire) {
  std::vector<std::pair<int, std::string>> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    std::size_t head_end = wire.find("\r\n\r\n", pos);
    if (head_end == std::string::npos) {
      ADD_FAILURE() << "truncated response head at byte " << pos;
      break;
    }
    auto head =
        http::parse_response_head(wire.substr(pos, head_end + 4 - pos));
    const std::string* length = head.header("content-length");
    if (length == nullptr) {
      ADD_FAILURE() << "response without Content-Length at byte " << pos;
      break;
    }
    std::size_t body_len = static_cast<std::size_t>(std::stoull(*length));
    std::size_t body_begin = head_end + 4;
    if (body_begin + body_len > wire.size()) {
      ADD_FAILURE() << "truncated response body at byte " << body_begin;
      break;
    }
    out.emplace_back(head.status, wire.substr(body_begin, body_len));
    pos = body_begin + body_len;
  }
  return out;
}

TEST(NetProtocol, KeepAliveServesManyRequestsOnOneConnection) {
  ServerFixture fx;
  auto client = fx.client();
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(client.get("/v1/status").status, 200);
  }
  // Both sides agree the whole burst cost exactly one socket.
  EXPECT_EQ(client.connections_opened(), 1u);
  ServerCounters counters = fx.server().counters();
  EXPECT_EQ(counters.connections, 1u);
  EXPECT_EQ(counters.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(counters.keepalive_reuses,
            static_cast<std::uint64_t>(kRequests - 1));

  // A keep-alive-disabled client pays one connection per request.
  Client oneshot("127.0.0.1", fx.server().port(), 30000,
                 /*keep_alive=*/false);
  EXPECT_EQ(oneshot.get("/v1/status").status, 200);
  EXPECT_EQ(oneshot.get("/v1/status").status, 200);
  EXPECT_EQ(oneshot.connections_opened(), 2u);
}

TEST(NetProtocol, PipelinedRequestsAnsweredInOrder) {
  ServerFixture fx;
  auto client = fx.client();
  // Three requests written back-to-back before reading anything; the last
  // asks for close so raw_exchange's read-until-EOF delimits the burst.
  std::string wire = client.raw_exchange(
      "GET /v1/status HTTP/1.1\r\n\r\n"
      "GET /v1/jobs/999 HTTP/1.1\r\n\r\n"
      "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
  auto responses = split_responses(wire);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].first, 200);
  EXPECT_NE(responses[0].second.find("tetrislock.status.v1"),
            std::string::npos);
  EXPECT_EQ(responses[1].first, 404);
  EXPECT_NE(responses[1].second.find("999"), std::string::npos);
  EXPECT_EQ(responses[2].first, 404);
  // One socket, three requests, two of them keep-alive reuses.
  ServerCounters counters = fx.server().counters();
  EXPECT_EQ(counters.connections, 1u);
  EXPECT_EQ(counters.requests, 3u);
  EXPECT_EQ(counters.keepalive_reuses, 2u);
}

TEST(NetProtocol, ConnectionCloseRequestIsHonored) {
  ServerFixture fx;
  auto client = fx.client();
  // raw_exchange returns only because the server actually closed; a second
  // pipelined request after "Connection: close" must never be answered.
  std::string wire = client.raw_exchange(
      "GET /v1/status HTTP/1.1\r\nConnection: close\r\n\r\n"
      "GET /v1/status HTTP/1.1\r\n\r\n");
  auto responses = split_responses(wire);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, 200);
  auto head = http::parse_response_head(
      wire.substr(0, wire.find("\r\n\r\n") + 4));
  ASSERT_NE(head.header("connection"), nullptr);
  EXPECT_EQ(*head.header("connection"), "close");
}

TEST(NetProtocol, MaxRequestsPerConnectionClosesAtTheCap) {
  ServerConfig config;
  config.max_requests_per_connection = 3;
  ServerFixture fx(config);
  auto client = fx.client();
  // The blocking client reconnects transparently when the server closes at
  // the cap, so 7 requests over a cap of 3 cost ceil(7/3) = 3 sockets.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(client.get("/v1/status").status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 3u);
  EXPECT_EQ(fx.server().counters().requests, 7u);
}

TEST(NetProtocol, ProtocolErrorsCloseCleanlyMidStream) {
  ServerConfig config;
  config.max_header_bytes = 1024;
  config.max_body_bytes = 512;
  ServerFixture fx(config);
  auto client = fx.client();

  // Each offending request is followed by a pipelined well-formed one; the
  // server must answer the error, close, and never touch the follow-up.
  const std::string follow_up = "GET /v1/status HTTP/1.1\r\n\r\n";

  // 413: announced body over the cap (no body bytes ever sent).
  std::string wire = client.raw_exchange(
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n" + follow_up);
  auto responses = split_responses(wire);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, 413);
  EXPECT_EQ(json::parse(responses[0].second).at("error").at("code")
                .as_string(),
            "payload_too_large");

  // 431: header block over the cap.
  wire = client.raw_exchange("GET /v1/status HTTP/1.1\r\nX-Pad: " +
                             std::string(2048, 'x') + "\r\n\r\n" + follow_up);
  responses = split_responses(wire);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, 431);

  // 411: chunked upload announcement, rejected before any body is read.
  wire = client.raw_exchange(
      "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n" +
      follow_up);
  responses = split_responses(wire);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, 411);

  // Every error response said close and meant it; the server is still
  // perfectly healthy for the next connection.
  EXPECT_EQ(client.get("/v1/status").status, 200);
}

TEST(NetProtocol, SlowLorisEvictedWithoutStallingOthers) {
  ServerConfig config;
  config.request_deadline_ms = 400;
  config.io_timeout_ms = 30000;
  ServerFixture fx(config);

  // A peer dribbling its request one byte at a time, far slower than the
  // request deadline allows.
  Socket loris = Socket::connect("127.0.0.1", fx.server().port(), 5000);
  loris.set_timeout_ms(5000);
  const std::string head = "GET /v1/status HTTP/1.1\r\nX-Slow: yes\r\n";
  bool evicted = false;
  auto client = fx.client();
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::seconds(10)) {
    try {
      loris.send_all(&head[sent % head.size()], 1);
      ++sent;
    } catch (const Error&) {
      evicted = true;  // server reset the connection after the 408
      break;
    }
    // The stalled connection must not delay anyone else: interleaved
    // requests on a healthy connection keep answering promptly.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(client.get("/v1/status").status, 200);
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  if (!evicted) {
    // The kernel may buffer dribbled bytes without erroring; the 408 the
    // server wrote before closing is still observable on the socket.
    char buffer[512];
    try {
      std::size_t n = loris.recv_some(buffer, sizeof(buffer));
      evicted = n == 0 ||
                std::string(buffer, n).rfind("HTTP/1.1 408", 0) == 0;
    } catch (const Error&) {
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted);
  EXPECT_GE(fx.server().counters().idle_evictions, 1u);
}

TEST(NetProtocol, IdleKeepAliveConnectionIsEvicted) {
  ServerConfig config;
  config.io_timeout_ms = 200;
  ServerFixture fx(config);
  auto client = fx.client();
  EXPECT_EQ(client.get("/v1/status").status, 200);
  EXPECT_EQ(client.connections_opened(), 1u);

  // Wait out the idle timeout with no request in flight: the server drops
  // the connection silently (no response owed on an idle keep-alive conn).
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_GE(fx.server().counters().idle_evictions, 1u);

  // The client notices the stale connection and transparently reconnects.
  EXPECT_EQ(client.get("/v1/status").status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);
}

// ------------------------------------------------------ consistent hashing

TEST(HashRing, DistributionAcrossNodeCounts) {
  constexpr int kKeys = 8192;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    HashRing ring(n);
    ASSERT_EQ(ring.num_nodes(), n);
    std::vector<int> counts(n, 0);
    for (int i = 0; i < kKeys; ++i) {
      std::uint64_t key = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
      std::size_t node = ring.node_for(key);
      ASSERT_LT(node, n);
      ++counts[node];
    }
    // 64 virtual points per node keep the spread within a factor of ~2 of
    // fair share; pin a generous 3x envelope so the test survives point
    // placement while still catching a broken ring (one node taking all).
    const int fair = kKeys / static_cast<int>(n);
    for (std::size_t node = 0; node < n; ++node) {
      EXPECT_GT(counts[node], fair / 3) << n << " nodes, node " << node;
      EXPECT_LT(counts[node], fair * 3) << n << " nodes, node " << node;
    }
  }
}

TEST(HashRing, AssignmentsAreDeterministicAndConsistent) {
  HashRing a(4), b(4);
  HashRing wide(8);
  int moved = 0;
  constexpr int kKeys = 8192;
  for (int i = 0; i < kKeys; ++i) {
    std::uint64_t key = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
    // Same parameters, same answer — the property cache affinity rides on.
    ASSERT_EQ(a.node_for(key), b.node_for(key));
    // The consistent-hash contract: growing 4 -> 8 nodes either keeps a key
    // where it was or moves it to one of the NEW nodes — never reshuffles
    // it between survivors.
    std::size_t before = a.node_for(key);
    std::size_t after = wide.node_for(key);
    if (after != before) {
      EXPECT_GE(after, std::size_t{4}) << "key reshuffled between survivors";
      ++moved;
    }
  }
  // Doubling the fleet should move roughly half the keyspace.
  EXPECT_GT(moved, kKeys / 5);
  EXPECT_LT(moved, kKeys * 4 / 5);

  HashRing single(1);
  for (std::uint64_t key : {0ull, 1ull, ~0ull}) {
    EXPECT_EQ(single.node_for(key), 0u);
  }
}

// -------------------------------------------------------------- dispatcher

/// N in-process serve nodes (each its own Service + Server) fronted by a
/// Dispatcher — the whole multi-node topology on loopback.
class DispatchFixture {
 public:
  explicit DispatchFixture(
      std::size_t num_nodes,
      service::ServiceConfig service_config = fixture_service_config(2)) {
    for (std::size_t i = 0; i < num_nodes; ++i) {
      services_.push_back(std::make_unique<service::Service>(service_config));
      servers_.push_back(std::make_unique<Server>(*services_.back()));
      servers_.back()->start();
    }
    DispatcherConfig config;
    config.port = 0;
    config.handler_threads = 4;
    config.upstream_timeout_ms = 5000;
    for (const auto& server : servers_) {
      config.nodes.push_back(server->base_url());
    }
    dispatcher_ = std::make_unique<Dispatcher>(config);
    dispatcher_->start();
  }

  ~DispatchFixture() {
    dispatcher_->stop();
    for (auto& server : servers_) server->stop();
  }

  Client client() { return Client("127.0.0.1", dispatcher_->port()); }
  Dispatcher& dispatcher() { return *dispatcher_; }
  Server& server(std::size_t i) { return *servers_[i]; }

 private:
  std::vector<std::unique_ptr<service::Service>> services_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

/// Small circuits that shard across nodes (distinct content hashes).
const std::vector<std::string>& shard_benchmarks() {
  static const std::vector<std::string> names = {
      "4mod5", "4gt11", "4gt13", "1bit_adder", "mini_alu", "rd53"};
  return names;
}

TEST(NetDispatch, ShardedSubmitProxiesByteIdenticalResults) {
  DispatchFixture fx(3);
  auto client = fx.client();

  // One job through the dispatcher: routed to its ring node, polled through
  // the dispatcher id, result document byte-identical to the same job run
  // through the in-process facade (the node-local id of the only job on its
  // node is 1, matching a fresh facade's first submission).
  auto posted = client.post("/v1/jobs", submit_body("4mod5"));
  ASSERT_EQ(posted.status, 202) << posted.body;
  auto accepted = json::parse(posted.body);
  const std::uint64_t id =
      static_cast<std::uint64_t>(accepted.at("id").as_int());
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(accepted.at("url").as_string(), "/v1/jobs/1");
  ASSERT_EQ(poll_until_terminal(client, id), "done");

  auto res = client.get("/v1/jobs/" + std::to_string(id) + "?timing=0");
  ASSERT_EQ(res.status, 200);
  service::Service svc(fixture_service_config(2));
  auto outcome = svc.submit(facade_job("4mod5"), 2025).wait();
  ASSERT_EQ(outcome.state, service::JobState::kDone);
  EXPECT_EQ(res.body, service::to_json(outcome, /*include_timing=*/false));

  // The artifact proxies byte-identically too.
  auto artifact = client.get("/v1/jobs/" + std::to_string(id) + "/artifact");
  ASSERT_EQ(artifact.status, 200);
  EXPECT_EQ(artifact.body, svc.artifact_bytes(svc.handle(1)));

  // Exactly one node owns the job.
  std::uint64_t routed_total = 0;
  for (const auto& node : fx.dispatcher().node_counters()) {
    routed_total += node.jobs_routed;
  }
  EXPECT_EQ(routed_total, 1u);
}

TEST(NetDispatch, ValidationErrorsComeFromTheOwningNode) {
  DispatchFixture fx(2);
  auto client = fx.client();
  // Malformed bodies still route deterministically (FNV of the raw text)
  // and the owning node's canonical error passes through verbatim.
  auto res = client.post("/v1/jobs", "{not json");
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "parse_error");
  res = client.post("/v1/jobs", R"({"benchmark": "nope"})");
  EXPECT_EQ(res.status, 400);
  // Unknown dispatcher ids and routes mirror the node surface.
  EXPECT_EQ(client.get("/v1/jobs/99").status, 404);
  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/v1/jobs").status, 405);
}

TEST(NetDispatch, NodeFailureYields502AndSurvivorsComplete) {
  DispatchFixture fx(3);
  auto client = fx.client();

  // Shard a batch across the ring and remember who owns what.
  std::map<std::uint64_t, std::string> benchmark_of;
  for (const std::string& name : shard_benchmarks()) {
    auto posted = client.post("/v1/jobs", submit_body(name, 2025, 32));
    ASSERT_EQ(posted.status, 202) << posted.body;
    benchmark_of.emplace(static_cast<std::uint64_t>(
                             json::parse(posted.body).at("id").as_int()),
                         name);
  }
  for (const auto& [id, name] : benchmark_of) {
    ASSERT_EQ(poll_until_terminal(client, id), "done") << name;
  }

  // Kill the busiest node mid-run.
  auto before = fx.dispatcher().node_counters();
  ASSERT_EQ(before.size(), 3u);
  std::size_t victim = 0;
  for (std::size_t i = 1; i < before.size(); ++i) {
    if (before[i].jobs_routed > before[victim].jobs_routed) victim = i;
  }
  ASSERT_GT(before[victim].jobs_routed, 0u);
  fx.server(victim).stop();

  // The dead node's jobs answer a structured 502; every other job still
  // answers 200 from its surviving owner.
  std::uint64_t failed = 0, served = 0;
  std::string victim_benchmark;
  for (const auto& [id, name] : benchmark_of) {
    auto res = client.get("/v1/jobs/" + std::to_string(id) + "?timing=0");
    if (res.status == 502) {
      EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
                "upstream_unavailable");
      victim_benchmark = name;
      ++failed;
    } else {
      EXPECT_EQ(res.status, 200);
      EXPECT_EQ(json::parse(res.body).at("state").as_string(), "done");
      ++served;
    }
  }
  EXPECT_EQ(failed, before[victim].jobs_routed);
  EXPECT_EQ(served, benchmark_of.size() - failed);
  ASSERT_FALSE(victim_benchmark.empty());

  // Affinity means resubmitting a dead node's benchmark routes straight
  // back to it — and fails fast with the same structured 502.
  auto resubmit =
      client.post("/v1/jobs", submit_body(victim_benchmark, 2025, 32));
  EXPECT_EQ(resubmit.status, 502);
  EXPECT_EQ(json::parse(resubmit.body).at("error").at("code").as_string(),
            "upstream_unavailable");

  // Status aggregation marks the node unreachable without throwing.
  auto status = client.get("/v1/status");
  ASSERT_EQ(status.status, 200);
  auto doc = json::parse(status.body);
  EXPECT_EQ(doc.at("schema").as_string(), "tetrislock.dispatch_status.v1");
  const auto& nodes = doc.at("nodes");
  ASSERT_EQ(nodes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& node = nodes.as_array()[i];
    if (i == victim) {
      EXPECT_FALSE(node.at("reachable").as_bool());
      EXPECT_NE(node.find("error"), nullptr);
      EXPECT_EQ(node.find("status"), nullptr);
    } else {
      EXPECT_TRUE(node.at("reachable").as_bool());
      EXPECT_EQ(node.at("status").at("schema").as_string(),
                "tetrislock.status.v1");
    }
  }
  EXPECT_EQ(doc.at("dispatcher").at("nodes").as_int(), 3);
  // The failed resubmit never counted as routed.
  EXPECT_EQ(doc.at("dispatcher").at("jobs_routed").as_int(),
            static_cast<std::int64_t>(benchmark_of.size()));
}

TEST(NetDispatch, ConsistentHashAffinityKeepsNodeCachesHot) {
  service::ServiceConfig scfg = fixture_service_config(2);
  scfg.cache_capacity = 32;
  DispatchFixture fx(3, scfg);
  auto client = fx.client();

  auto submit_all = [&]() {
    std::vector<std::uint64_t> ids;
    for (const std::string& name : shard_benchmarks()) {
      auto posted = client.post("/v1/jobs", submit_body(name, 2025, 32));
      EXPECT_EQ(posted.status, 202) << posted.body;
      ids.push_back(static_cast<std::uint64_t>(
          json::parse(posted.body).at("id").as_int()));
    }
    for (std::uint64_t id : ids) {
      EXPECT_EQ(poll_until_terminal(client, id), "done");
    }
    return ids;
  };
  auto cache_counters = [&](const char* key) {
    std::vector<std::int64_t> out;
    auto doc = json::parse(client.get("/v1/status").body);
    for (std::size_t i = 0; i < doc.at("nodes").size(); ++i) {
      out.push_back(doc.at("nodes").as_array()[i].at("status").at("cache")
                        .at(key)
                        .as_int());
    }
    return out;
  };

  // Pass 1: all cold — every job is a per-node cache miss.
  submit_all();
  auto misses_after_first = cache_counters("misses");
  auto hits_after_first = cache_counters("hits");
  std::int64_t total_misses = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    total_misses += misses_after_first[i];
    EXPECT_EQ(hits_after_first[i], 0) << "node " << i;
  }
  EXPECT_EQ(total_misses,
            static_cast<std::int64_t>(shard_benchmarks().size()));
  auto routed_after_first = fx.dispatcher().node_counters();

  // Pass 2: identical submissions ride the ring back to the same nodes, so
  // each node's second-pass hits equal its first-pass misses.
  auto second_ids = submit_all();
  auto misses_after_second = cache_counters("misses");
  auto hits_after_second = cache_counters("hits");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits_after_second[i], misses_after_first[i]) << "node " << i;
    EXPECT_EQ(misses_after_second[i], misses_after_first[i]) << "node " << i;
  }
  // And every second-pass outcome says so explicitly.
  for (std::uint64_t id : second_ids) {
    auto doc = json::parse(
        client.get("/v1/jobs/" + std::to_string(id) + "?timing=0").body);
    EXPECT_TRUE(doc.at("cache_hit").as_bool()) << "job " << id;
  }
  // Routing doubled per node, exactly.
  auto routed_after_second = fx.dispatcher().node_counters();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(routed_after_second[i].jobs_routed,
              2 * routed_after_first[i].jobs_routed)
        << "node " << i;
  }
}

}  // namespace
}  // namespace tetris::net
