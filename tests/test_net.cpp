// End-to-end tests of the REST front-end (src/net/): a real server on an
// ephemeral loopback port driven by the real blocking client, plus direct
// unit tests of the HTTP message layer and the router. The key contract —
// a job submitted over the wire serializes byte-identically to the same
// job submitted in-process — is pinned here.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "net/client.h"
#include "net/http.h"
#include "qir/qasm.h"
#include "revlib/benchmarks.h"
#include "service/artifact_store.h"
#include "service/serialize.h"
#include "service/service.h"

namespace tetris::net {
namespace {

/// Small submit body for the built-in benchmark `name`. A non-empty
/// `backend` adds the config field ("auto"/"statevector"/"stabilizer"/
/// "unitary").
std::string submit_body(const std::string& name, std::uint64_t seed = 2025,
                        std::size_t shots = 64,
                        const std::string& backend = "") {
  json::Writer w(0);
  w.begin_object();
  w.key("benchmark").value(name);
  w.key("seed").value(seed);
  w.key("config").begin_object();
  w.key("shots").value(shots);
  if (!backend.empty()) w.key("backend").value(backend);
  w.end_object();
  w.end_object();
  return w.str();
}

/// The same job built in-process, for facade-vs-wire comparisons.
lock::FlowJob facade_job(const std::string& name, std::size_t shots = 64) {
  const auto& b = revlib::get_benchmark(name);
  lock::FlowConfig cfg;
  cfg.shots = shots;
  return lock::make_flow_job(b.name, b.circuit, b.measured, cfg);
}

/// Service config for the fixtures: `threads` private workers, seed 2025,
/// cache off (store fields default-empty).
service::ServiceConfig fixture_service_config(unsigned threads) {
  service::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.base_seed = 2025;
  cfg.cache_capacity = 0;
  return cfg;
}

/// A service (private 2-thread pool, so POSTs stay async) plus a started
/// server on an ephemeral port and a client pointed at it.
class ServerFixture {
 public:
  explicit ServerFixture(
      ServerConfig config = {},
      service::ServiceConfig service_config = fixture_service_config(2))
      : service_(service_config), server_(service_, with_port0(config)) {
    server_.start();
  }

  ~ServerFixture() { server_.stop(); }

  Client client() { return Client("127.0.0.1", server_.port()); }

  service::Service& service() { return service_; }
  Server& server() { return server_; }

 private:
  static ServerConfig with_port0(ServerConfig config) {
    config.port = 0;
    return config;
  }

  service::Service service_;
  Server server_;
};

std::string poll_until_terminal(Client& client, std::uint64_t id) {
  // 30s ceiling: heavy-shot jobs under sanitizers on an oversubscribed
  // test host can take >10s of wall time before turning terminal.
  for (int i = 0; i < 3000; ++i) {
    auto res = client.get("/v1/jobs/" + std::to_string(id));
    EXPECT_EQ(res.status, 200);
    std::string state = json::parse(res.body).at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " never became terminal";
  return "timeout";
}

// ----------------------------------------------------------- message layer

TEST(HttpMessages, ParsesRequestLineHeadersAndQuery) {
  auto req = http::parse_request_head(
      "GET /v1/jobs/7?timing=0&x=a%20b HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "X-Custom:  spaced value \r\n"
      "\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/v1/jobs/7");
  ASSERT_NE(req.query_param("timing"), nullptr);
  EXPECT_EQ(*req.query_param("timing"), "0");
  ASSERT_NE(req.query_param("x"), nullptr);
  EXPECT_EQ(*req.query_param("x"), "a b");
  ASSERT_NE(req.header("x-custom"), nullptr);
  EXPECT_EQ(*req.header("x-custom"), "spaced value");
  EXPECT_EQ(req.header("absent"), nullptr);
}

TEST(HttpMessages, RejectsMalformedRequests) {
  EXPECT_THROW(http::parse_request_head("GARBAGE\r\n\r\n"), http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /a b HTTP/1.1\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /x HTTP/2\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET noslash HTTP/1.1\r\n\r\n"),
               http::HttpError);
  EXPECT_THROW(
      http::parse_request_head("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
      http::HttpError);
  EXPECT_THROW(http::parse_request_head("GET /%zz HTTP/1.1\r\n\r\n"),
               http::HttpError);
}

TEST(HttpMessages, BodyLengthEnforcesLimitsAndChunkRejection) {
  auto with_headers = [](const std::string& lines) {
    return http::parse_request_head("POST /v1/jobs HTTP/1.1\r\n" + lines +
                                    "\r\n");
  };
  EXPECT_EQ(http::body_length(with_headers(""), 100), 0u);
  EXPECT_EQ(http::body_length(with_headers("Content-Length: 42\r\n"), 100),
            42u);
  try {
    http::body_length(with_headers("Content-Length: 101\r\n"), 100);
    FAIL() << "oversized body accepted";
  } catch (const http::HttpError& e) {
    EXPECT_EQ(e.status(), 413);
  }
  try {
    http::body_length(with_headers("Transfer-Encoding: chunked\r\n"), 100);
    FAIL() << "chunked encoding accepted";
  } catch (const http::HttpError& e) {
    EXPECT_EQ(e.status(), 411);
  }
  EXPECT_THROW(http::body_length(with_headers("Content-Length: nope\r\n"), 100),
               http::HttpError);
  EXPECT_THROW(
      http::body_length(with_headers("Content-Length: 1\r\n"
                                     "Content-Length: 2\r\n"),
                        100),
      http::HttpError);
}

TEST(HttpMessages, ResponseRoundTrip) {
  http::Response out;
  out.status = 404;
  out.body = "{\"error\":{}}";
  std::string wire = http::format_response(out);
  std::size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  auto parsed = http::parse_response_head(wire.substr(0, head_end + 4));
  EXPECT_EQ(parsed.status, 404);
  ASSERT_NE(parsed.header("content-length"), nullptr);
  EXPECT_EQ(*parsed.header("content-length"),
            std::to_string(out.body.size()));
  EXPECT_EQ(wire.substr(head_end + 4), out.body);
}

TEST(UrlParsing, AcceptsHostPortShapes) {
  auto url = parse_url("http://127.0.0.1:8080");
  EXPECT_EQ(url.host, "127.0.0.1");
  EXPECT_EQ(url.port, 8080);
  EXPECT_EQ(parse_url("http://localhost:1/").port, 1);
  EXPECT_EQ(parse_url("http://10.0.0.1").port, 80);
  EXPECT_THROW(parse_url("https://127.0.0.1:1"), InvalidArgument);
  EXPECT_THROW(parse_url("http://127.0.0.1:0"), InvalidArgument);
  EXPECT_THROW(parse_url("http://127.0.0.1:x"), InvalidArgument);
  EXPECT_THROW(parse_url("http://host:1/v1/jobs"), InvalidArgument);
}

// ------------------------------------------------------------- end to end

TEST(NetServer, StatusEndpointReportsCounters) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.get("/v1/status");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("schema").as_string(), "tetrislock.status.v1");
  EXPECT_EQ(doc.at("service").at("jobs_submitted").as_int(), 0);
  EXPECT_EQ(doc.at("service").at("threads").as_int(), 2);
  EXPECT_EQ(doc.at("cache").at("capacity").as_int(), 0);

  // A second status call sees the first one in the counters.
  auto doc2 = json::parse(client.get("/v1/status").body);
  EXPECT_GE(doc2.at("server").at("requests").as_int(), 1);
  EXPECT_GE(doc2.at("server").at("responses_2xx").as_int(), 1);
}

TEST(NetServer, SubmitPollResultRoundTrip) {
  ServerFixture fx;
  auto client = fx.client();

  auto posted = client.post("/v1/jobs", submit_body("4mod5"));
  ASSERT_EQ(posted.status, 202) << posted.body;
  auto accepted = json::parse(posted.body);
  EXPECT_EQ(accepted.at("id").as_int(), 1);
  EXPECT_EQ(accepted.at("url").as_string(), "/v1/jobs/1");

  EXPECT_EQ(poll_until_terminal(client, 1), "done");

  auto res = client.get("/v1/jobs/1");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("state").as_string(), "done");
  EXPECT_EQ(doc.at("seed").as_int(), 2025);
  EXPECT_EQ(doc.at("status").at("code").as_string(), "ok");
  const auto& result = doc.at("result");
  EXPECT_EQ(result.at("depth_original").as_int(),
            result.at("depth_obfuscated").as_int());
  EXPECT_GT(result.at("gates_obfuscated").as_int(),
            result.at("gates_original").as_int());
}

TEST(NetServer, ResultJsonByteIdenticalToInProcessFacade) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  auto res = client.get("/v1/jobs/1?timing=0");
  ASSERT_EQ(res.status, 200);

  // The same circuit, seed, and flow config through the in-process facade.
  service::Service svc(fixture_service_config(2));
  auto outcome = svc.submit(facade_job("4mod5"), 2025).wait();
  ASSERT_EQ(outcome.state, service::JobState::kDone);
  EXPECT_EQ(res.body, service::to_json(outcome, /*include_timing=*/false));
}

TEST(NetServer, QasmSubmissionMatchesBenchmarkSubmission) {
  // An inline-QASM body with explicit measured qubits must behave exactly
  // like the equivalent benchmark submission.
  const auto& b = revlib::get_benchmark("4mod5");
  json::Writer w(0);
  w.begin_object();
  w.key("qasm").value(qir::to_qasm(b.circuit));
  w.key("name").value(b.name);
  w.key("measured").begin_array();
  for (int q : b.measured) w.value(q);
  w.end_array();
  w.key("seed").value(2025);
  w.key("config").begin_object().key("shots").value(64).end_object();
  w.end_object();

  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", w.str()).status, 202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  ASSERT_EQ(poll_until_terminal(client, 2), "done");

  // Ids differ, so compare the result objects field by field.
  auto qasm_doc = json::parse(client.get("/v1/jobs/1?timing=0").body);
  auto bench_doc = json::parse(client.get("/v1/jobs/2?timing=0").body);
  EXPECT_EQ(qasm_doc.at("result").size(), bench_doc.at("result").size());
  for (const auto& [key, value] : qasm_doc.at("result").as_object()) {
    const json::Value& other = bench_doc.at("result").at(key);
    if (value.is_number()) {
      EXPECT_EQ(value.as_number(), other.as_number()) << key;
    }
  }
}

TEST(NetServer, RepeatedGetIsStableAndDoesNotDisturbDrain) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  const std::string first = client.get("/v1/jobs/1?timing=0").body;
  const std::string second = client.get("/v1/jobs/1?timing=0").body;
  EXPECT_EQ(first, second);

  // The HTTP reads above must not have consumed the drain cursor.
  std::size_t drained = fx.service().drain([](const service::JobOutcome&) {});
  EXPECT_EQ(drained, 1u);
  EXPECT_EQ(client.get("/v1/jobs/1?timing=0").body, first);
}

TEST(NetServer, ArtifactEndpointServesValidatedBytes) {
  ServerFixture fx;
  auto client = fx.client();
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  auto res = client.get("/v1/jobs/1/artifact");
  ASSERT_EQ(res.status, 200);
  ASSERT_NE(res.header("content-type"), nullptr);
  EXPECT_EQ(*res.header("content-type"), "application/octet-stream");

  // The bytes are a complete, valid artifact carrying the job's provenance.
  const service::Artifact artifact = service::decode_artifact(res.body);
  EXPECT_EQ(artifact.key.seed, 2025u);
  EXPECT_EQ(artifact.result.depth_original,
            artifact.result.depth_obfuscated);

  // Byte-identical to the in-process encoding of the same job — the
  // "fetch == store file" guarantee rides on this plus determinism.
  EXPECT_EQ(res.body, fx.service().artifact_bytes(fx.service().handle(1)));
  // And stable across repeated GETs.
  EXPECT_EQ(client.get("/v1/jobs/1/artifact").body, res.body);
}

TEST(NetServer, ArtifactEndpointRejectsUnknownAndUnfinishedJobs) {
  // One worker wedged by a slow job keeps a second submission queued long
  // enough to cancel it — giving a deterministic non-done terminal state.
  ServerFixture fx({}, fixture_service_config(1));
  auto client = fx.client();

  auto missing = client.get("/v1/jobs/99/artifact");
  EXPECT_EQ(missing.status, 404);

  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, /*shots=*/20000))
          .status,
      202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(client.del("/v1/jobs/2").status, 200);

  auto res = client.get("/v1/jobs/2/artifact");
  EXPECT_EQ(res.status, 409);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "no_artifact");

  EXPECT_EQ(poll_until_terminal(client, 1), "done");
}

TEST(NetServer, StatusReportsArtifactStoreCounters) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "tetris_net_store").string();
  std::filesystem::remove_all(dir);
  service::ServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.store_dir = dir;
  ServerFixture fx({}, scfg);
  auto client = fx.client();

  auto before = json::parse(client.get("/v1/status").body);
  EXPECT_TRUE(before.at("store").at("enabled").as_bool());
  EXPECT_EQ(before.at("store").at("writes").as_int(), 0);

  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");

  auto after = json::parse(client.get("/v1/status").body);
  EXPECT_EQ(after.at("store").at("writes").as_int(), 1);
  EXPECT_EQ(after.at("store").at("entries").as_int(), 1);

  // A store-less server reports the tier as disabled, not absent.
  ServerFixture plain;
  auto plain_client = plain.client();
  auto doc = json::parse(plain_client.get("/v1/status").body);
  EXPECT_FALSE(doc.at("store").at("enabled").as_bool());
}

TEST(NetServer, StatusListsBackendRegistryAndPerEngineTallies) {
  ServerFixture fx;
  auto client = fx.client();

  auto doc = json::parse(client.get("/v1/status").body);
  const auto& backends = doc.at("backends");
  ASSERT_EQ(backends.size(), 3u);
  EXPECT_FALSE(backends.at("statevector").at("clifford_only").as_bool());
  EXPECT_TRUE(backends.at("statevector").at("supports_noise").as_bool());
  EXPECT_TRUE(backends.at("stabilizer").at("clifford_only").as_bool());
  EXPECT_EQ(backends.at("stabilizer").at("max_qubits").as_int(), 64);
  EXPECT_EQ(backends.at("unitary").at("max_qubits").as_int(), 12);
  EXPECT_FALSE(backends.at("unitary").at("supports_noise").as_bool());
  for (const auto& [name, info] : backends.as_object()) {
    EXPECT_EQ(info.at("jobs_done").as_int(), 0) << name;
    EXPECT_EQ(info.at("jobs_failed").as_int(), 0) << name;
  }

  // A 50-qubit Clifford job over the wire lands on the stabilizer engine
  // and moves that engine's tally — and only that engine's.
  auto posted =
      client.post("/v1/jobs", submit_body("cliff50", 2025, 64, "stabilizer"));
  ASSERT_EQ(posted.status, 202) << posted.body;
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  auto after = json::parse(client.get("/v1/status").body);
  EXPECT_EQ(after.at("backends").at("stabilizer").at("jobs_done").as_int(), 1);
  EXPECT_EQ(after.at("backends").at("statevector").at("jobs_done").as_int(), 0);
  EXPECT_EQ(after.at("backends").at("stabilizer").at("jobs_failed").as_int(),
            0);
}

TEST(NetServer, BackendConfigEchoAndValidation) {
  ServerFixture fx;
  auto client = fx.client();

  // An off-default engine is echoed in the job document's sampler block;
  // the statevector default is omitted (documents stay byte-identical to
  // the pre-backend schema). `auto` on a wide Clifford circuit resolves to
  // stabilizer before the echo.
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("cliff50", 2025, 64, "auto"))
                .status,
            202);
  ASSERT_EQ(poll_until_terminal(client, 1), "done");
  ASSERT_EQ(poll_until_terminal(client, 2), "done");
  auto sv_doc = json::parse(client.get("/v1/jobs/1?timing=0").body);
  EXPECT_EQ(sv_doc.at("sampler").find("backend"), nullptr);
  auto stab_doc = json::parse(client.get("/v1/jobs/2?timing=0").body);
  ASSERT_NE(stab_doc.at("sampler").find("backend"), nullptr);
  EXPECT_EQ(stab_doc.at("sampler").at("backend").as_string(), "stabilizer");

  // Unknown engine names and non-string values are submit-time 400s.
  auto bad_name =
      client.post("/v1/jobs", submit_body("4mod5", 2025, 64, "warp"));
  EXPECT_EQ(bad_name.status, 400);
  EXPECT_EQ(json::parse(bad_name.body).at("error").at("code").as_string(),
            "invalid_argument");
  auto bad_type = client.post(
      "/v1/jobs",
      R"({"benchmark":"4mod5","seed":1,"config":{"backend":7}})");
  EXPECT_EQ(bad_type.status, 400);

  // Forcing the stabilizer onto a non-Clifford benchmark is accepted at
  // submit time but fails in the flow with the structured UnsupportedGate
  // message naming the engine and the offending gate (the compiled view of
  // 4mod5's Toffolis carries off-lattice rz angles).
  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, 64, "stabilizer"))
          .status,
      202);
  ASSERT_EQ(poll_until_terminal(client, 3), "failed");
  auto failed = json::parse(client.get("/v1/jobs/3").body);
  EXPECT_EQ(failed.at("status").at("code").as_string(), "invalid_argument");
  const std::string message = failed.at("status").at("message").as_string();
  EXPECT_NE(message.find("stabilizer"), std::string::npos) << message;
  EXPECT_NE(message.find("rz"), std::string::npos) << message;
}

TEST(NetServer, ConcurrentClientsGetUniqueIdsAndAnswers) {
  ServerConfig config;
  config.connection_threads = 4;  // genuine connection parallelism
  ServerFixture fx(config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::set<std::int64_t> ids;
  std::atomic<int> status_ok{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = fx.client();
      for (int i = 0; i < kPerClient; ++i) {
        auto posted = client.post("/v1/jobs", submit_body("4mod5"));
        ASSERT_EQ(posted.status, 202) << posted.body;
        auto id = json::parse(posted.body).at("id").as_int();
        {
          std::lock_guard<std::mutex> lk(mutex);
          ids.insert(id);
        }
        if (client.get("/v1/status").status == 200) ++status_ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), kClients * kPerClient);
  EXPECT_EQ(status_ok.load(), kClients * kPerClient);
  auto client = fx.client();
  for (int id = 1; id <= kClients * kPerClient; ++id) {
    EXPECT_EQ(poll_until_terminal(client, static_cast<std::uint64_t>(id)),
              "done");
  }
}

TEST(NetServer, DeleteCancelsQueuedJobs) {
  // One service worker: job 1 occupies it, job 2 sits queued and is
  // cancellable through the REST surface.
  ServerFixture fx({}, fixture_service_config(1));
  auto client = fx.client();
  ASSERT_EQ(
      client.post("/v1/jobs", submit_body("4mod5", 2025, /*shots=*/20000))
          .status,
      202);
  ASSERT_EQ(client.post("/v1/jobs", submit_body("4mod5")).status, 202);

  auto res = client.del("/v1/jobs/2");
  ASSERT_EQ(res.status, 200);
  auto doc = json::parse(res.body);
  if (doc.at("cancelled").as_bool()) {
    EXPECT_EQ(doc.at("state").as_string(), "cancelled");
    auto out = json::parse(client.get("/v1/jobs/2").body);
    EXPECT_EQ(out.at("state").as_string(), "cancelled");
    EXPECT_EQ(out.at("status").at("code").as_string(), "cancelled");
  } else {
    // The worker raced us and already picked the job up; it must finish.
    EXPECT_NE(poll_until_terminal(client, 2), "timeout");
  }
  EXPECT_EQ(poll_until_terminal(client, 1), "done");

  // Cancelling a finished job is a no-op reported as such.
  auto again = json::parse(client.del("/v1/jobs/1").body);
  EXPECT_FALSE(again.at("cancelled").as_bool());
  EXPECT_EQ(again.at("state").as_string(), "done");
}

// -------------------------------------------------------------- error paths

TEST(NetServer, BadJsonIs400WithParseErrorCode) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.post("/v1/jobs", "{not json");
  EXPECT_EQ(res.status, 400);
  auto doc = json::parse(res.body);
  EXPECT_EQ(doc.at("error").at("code").as_string(), "parse_error");
}

TEST(NetServer, BadQasmIs400WithParseErrorCode) {
  ServerFixture fx;
  auto client = fx.client();
  auto res = client.post(
      "/v1/jobs",
      R"({"qasm": "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n"})");
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "parse_error");
  // An unsupported QASM version is an invalid argument, still a 400.
  res = client.post("/v1/jobs", R"({"qasm": "OPENQASM 9.9; bogus"})");
  EXPECT_EQ(res.status, 400);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "invalid_argument");
}

TEST(NetServer, SubmitValidationRejections) {
  ServerFixture fx;
  auto client = fx.client();
  // Neither qasm nor benchmark.
  EXPECT_EQ(client.post("/v1/jobs", R"({"seed": 1})").status, 400);
  // Unknown top-level field.
  EXPECT_EQ(
      client.post("/v1/jobs", R"({"benchmark": "4mod5", "shot": 1})").status,
      400);
  // Unknown config field (typo of shots).
  EXPECT_EQ(client
                .post("/v1/jobs",
                      R"({"benchmark": "4mod5", "config": {"shot": 1}})")
                .status,
            400);
  // Zero shots.
  EXPECT_EQ(client
                .post("/v1/jobs",
                      R"({"benchmark": "4mod5", "config": {"shots": 0}})")
                .status,
            400);
  // Unknown benchmark.
  EXPECT_EQ(client.post("/v1/jobs", R"({"benchmark": "nope"})").status, 400);
  // Integer fields that would truncate into a *different* valid config
  // (2^32 + 2 cast to int is 2) must be rejected, not narrowed.
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"max_gates": 4294967298}})")
                .status,
            400);
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"sample_jobs": 4294967296}})")
                .status,
            400);
  // An absurd shot count would pin a job worker on an uncancellable run.
  EXPECT_EQ(client
                .post("/v1/jobs", R"({"benchmark": "4mod5",
                                      "config": {"shots": 1000000000000}})")
                .status,
            400);
  // Measured qubit out of range.
  EXPECT_EQ(
      client.post("/v1/jobs", R"({"benchmark": "4mod5", "measured": [99]})")
          .status,
      400);
  // Non-object body.
  EXPECT_EQ(client.post("/v1/jobs", "[1,2]").status, 400);
  // Nothing was actually submitted.
  EXPECT_EQ(fx.service().jobs_submitted(), 0u);
}

TEST(NetServer, UnknownRoutesAndMethods) {
  ServerFixture fx;
  auto client = fx.client();
  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/v1/jobs/999").status, 404);
  EXPECT_EQ(client.get("/v1/jobs/abc").status, 404);
  EXPECT_EQ(client.del("/v1/jobs/7").status, 404);
  EXPECT_EQ(client.get("/v1/jobs").status, 405);
  EXPECT_EQ(client.del("/v1/status").status, 405);
  EXPECT_EQ(client.request("PATCH", "/v1/jobs/1").status, 405);
  auto doc = json::parse(client.get("/nope").body);
  EXPECT_EQ(doc.at("error").at("code").as_string(), "not_found");
}

TEST(NetServer, OversizedBodyIs413) {
  ServerConfig config;
  config.max_body_bytes = 512;
  ServerFixture fx(config);
  auto client = fx.client();
  auto res = client.post("/v1/jobs", std::string(1024, 'x'));
  EXPECT_EQ(res.status, 413);
  EXPECT_EQ(json::parse(res.body).at("error").at("code").as_string(),
            "payload_too_large");
}

TEST(NetServer, SlowRequestHits408Deadline) {
  // A peer that sends a partial head and then goes silent must be answered
  // 408 when the whole-request deadline expires — it cannot hold a
  // connection worker for the full (much longer) idle timeout.
  ServerConfig config;
  config.request_deadline_ms = 200;
  config.io_timeout_ms = 30000;
  ServerFixture fx(config);
  auto client = fx.client();
  const auto start = std::chrono::steady_clock::now();
  std::string wire = client.raw_exchange("GET /v1/status HTTP/1.1\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(wire.rfind("HTTP/1.1 408", 0), 0u) << wire;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(NetServer, RawProtocolGarbageGets400) {
  ServerFixture fx;
  auto client = fx.client();
  std::string wire = client.raw_exchange("THIS IS NOT HTTP\r\n\r\n");
  EXPECT_EQ(wire.rfind("HTTP/1.1 400", 0), 0u) << wire;
  // Chunked upload announcement is answered 411 before any body is read.
  wire = client.raw_exchange(
      "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(wire.rfind("HTTP/1.1 411", 0), 0u) << wire;
}

}  // namespace
}  // namespace tetris::net
