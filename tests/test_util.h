#pragma once

// Shared helpers for the TetrisLock test-suite.

#include <vector>

#include "qir/circuit.h"

namespace tetris::testutil {

/// Appends SWAP gates to `circuit` realising `perm`: the content currently on
/// wire p moves to wire perm[p]. Used to express "compiled circuit ==
/// original + final permutation" equivalences in routing/compiler tests.
inline void apply_wire_permutation(qir::Circuit& circuit,
                                   const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  // pos[w] = current wire of the content that started on wire w.
  std::vector<int> pos(perm.size());
  for (int w = 0; w < n; ++w) pos[static_cast<std::size_t>(w)] = w;
  for (int w = 0; w < n; ++w) {
    int want = perm[static_cast<std::size_t>(w)];
    int cur = pos[static_cast<std::size_t>(w)];
    if (cur == want) continue;
    int other = -1;
    for (int v = 0; v < n; ++v) {
      if (pos[static_cast<std::size_t>(v)] == want) {
        other = v;
        break;
      }
    }
    circuit.swap(cur, want);
    pos[static_cast<std::size_t>(w)] = want;
    if (other >= 0) pos[static_cast<std::size_t>(other)] = cur;
  }
}

/// Embeds `circuit` on a wider physical register via layout
/// (logical q -> physical layout[q]).
inline qir::Circuit embed(const qir::Circuit& circuit,
                          const std::vector<int>& layout, int num_physical) {
  return circuit.remapped(layout, num_physical);
}

/// A small non-classical test circuit (GHZ preparation plus phases).
inline qir::Circuit ghz_with_phases(int n) {
  qir::Circuit c(n, "ghz_phases");
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.t(0);
  if (n > 1) c.s(1);
  return c;
}

}  // namespace tetris::testutil
