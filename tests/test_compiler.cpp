#include "compiler/compiler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/routing.h"
#include "revlib/benchmarks.h"
#include "sim/unitary.h"
#include "test_util.h"

namespace tetris::compiler {
namespace {

CompileOptions valencia_options() {
  return CompileOptions{fake_valencia(), LayoutStrategy::GreedyDegree, true,
                        std::nullopt};
}

TEST(Compiler, OutputIsBasisOnly) {
  Compiler compiler(valencia_options());
  auto result = compiler.compile(revlib::build_4mod5());
  for (const auto& g : result.circuit.gates()) {
    EXPECT_TRUE(fake_valencia().in_basis(g.kind)) << g.name();
  }
}

TEST(Compiler, OutputIsCouplingCompliant) {
  Compiler compiler(valencia_options());
  auto result = compiler.compile(revlib::build_4gt13());
  EXPECT_TRUE(is_coupling_compliant(result.circuit, fake_valencia().coupling));
}

TEST(Compiler, FunctionalEquivalenceOnValencia) {
  qir::Circuit c = revlib::build_4mod5();
  Compiler compiler(valencia_options());
  auto result = compiler.compile(c);

  qir::Circuit reference =
      testutil::embed(c, result.initial_layout, fake_valencia().num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST(Compiler, FunctionalEquivalenceNonClassicalCircuit) {
  qir::Circuit c = testutil::ghz_with_phases(4);
  CompileOptions opts{line_device(6), LayoutStrategy::GreedyDegree, true,
                      std::nullopt};
  Compiler compiler(opts);
  auto result = compiler.compile(c);
  qir::Circuit reference = testutil::embed(c, result.initial_layout, 6);
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST(Compiler, PinnedInitialLayoutIsHonored) {
  qir::Circuit c(3);
  c.cx(0, 1).cx(1, 2);
  CompileOptions opts{line_device(5), LayoutStrategy::GreedyDegree, true,
                      std::vector<int>{4, 2, 0}};
  Compiler compiler(opts);
  auto result = compiler.compile(c);
  EXPECT_EQ(result.initial_layout, (std::vector<int>{4, 2, 0}));
  qir::Circuit reference = testutil::embed(c, result.initial_layout, 5);
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

TEST(Compiler, PinnedLayoutValidated) {
  qir::Circuit c(3);
  CompileOptions opts{line_device(5), LayoutStrategy::Trivial, true,
                      std::vector<int>{0, 0, 1}};
  Compiler compiler(opts);
  EXPECT_THROW(compiler.compile(c), InvalidArgument);
}

TEST(Compiler, RejectsWideCircuit) {
  qir::Circuit c(6);
  Compiler compiler(valencia_options());
  EXPECT_THROW(compiler.compile(c), InvalidArgument);
}

TEST(Compiler, StatsArepopulated) {
  qir::Circuit c = revlib::build_1bit_adder();
  CompileOptions opts{line_device(4), LayoutStrategy::GreedyDegree, true,
                      std::nullopt};
  Compiler compiler(opts);
  auto result = compiler.compile(c);
  EXPECT_EQ(result.stats.input_gates, c.gate_count());
  EXPECT_EQ(result.stats.input_depth, c.depth());
  EXPECT_EQ(result.stats.output_gates, result.circuit.gate_count());
  EXPECT_EQ(result.stats.output_depth, result.circuit.depth());
  EXPECT_GT(result.stats.output_gates, result.stats.input_gates);
}

TEST(Compiler, OptimizerToggleMatters) {
  qir::Circuit c(2);
  c.x(0).x(0).cx(0, 1);
  CompileOptions no_opt{line_device(2), LayoutStrategy::Trivial, false,
                        std::nullopt};
  CompileOptions with_opt{line_device(2), LayoutStrategy::Trivial, true,
                          std::nullopt};
  auto raw = Compiler(no_opt).compile(c);
  auto opt = Compiler(with_opt).compile(c);
  EXPECT_GT(raw.circuit.gate_count(), opt.circuit.gate_count());
}

/// Compile every Table-I benchmark on its experiment device and verify
/// functional equivalence end-to-end — the strongest compiler test we have.
class CompileBenchmark : public ::testing::TestWithParam<std::string> {};

TEST(DeviceFor, CheckedSurfacesRingFallback) {
  auto in_band = device_for_checked(5);
  EXPECT_FALSE(in_band.fallback);
  EXPECT_TRUE(in_band.note.empty());
  EXPECT_EQ(in_band.target.name, "fake_valencia");

  auto past_band = device_for_checked(9);
  EXPECT_TRUE(past_band.fallback);
  EXPECT_EQ(past_band.target.name, "ring9");
  EXPECT_NE(past_band.note.find("ring9"), std::string::npos) << past_band.note;

  // The legacy accessor keeps returning the selected target unchanged — the
  // checked variant only ADDS the flag, it never alters the selection.
  EXPECT_EQ(device_for(5).name, "fake_valencia");
  EXPECT_EQ(device_for(9).name, "ring9");
}

TEST(DeviceFor, StrictRefusesToDegrade) {
  EXPECT_EQ(device_for_strict(3).name, "fake_valencia");
  EXPECT_EQ(device_for_strict(5).name, "fake_valencia");
  EXPECT_THROW(device_for_strict(6), InvalidArgument);
  EXPECT_THROW(device_for_strict(12), InvalidArgument);
}

TEST_P(CompileBenchmark, EquivalentOnExperimentDevice) {
  const auto& b = revlib::get_benchmark(GetParam());
  if (b.circuit.num_qubits() > 7) {
    GTEST_SKIP() << "dense-unitary oracle too large";
  }
  Target target = device_for(b.circuit.num_qubits());
  CompileOptions opts{target, LayoutStrategy::GreedyDegree, true, std::nullopt};
  auto result = Compiler(opts).compile(b.circuit);
  EXPECT_TRUE(is_coupling_compliant(result.circuit, target.coupling));
  qir::Circuit reference =
      testutil::embed(b.circuit, result.initial_layout, target.num_qubits());
  testutil::apply_wire_permutation(reference, result.wire_permutation);
  EXPECT_TRUE(sim::circuits_equivalent(result.circuit, reference));
}

INSTANTIATE_TEST_SUITE_P(Table1, CompileBenchmark,
                         ::testing::ValuesIn(revlib::benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           return n;
                         });

}  // namespace
}  // namespace tetris::compiler
