#include <gtest/gtest.h>

#include "baselines/das_insertion.h"
#include "baselines/saki_split.h"
#include "common/error.h"
#include "revlib/benchmarks.h"
#include "sim/unitary.h"

namespace tetris::baselines {
namespace {

TEST(CascadeSplit, PartsCoverAllGates) {
  auto c = revlib::build_rd53();
  auto split = cascade_split(c, 0.5);
  EXPECT_EQ(split.first.gate_count() + split.second.gate_count(),
            c.gate_count());
}

TEST(CascadeSplit, BothPartsFullWidth) {
  auto c = revlib::build_4gt11();
  auto split = cascade_split(c, 0.5);
  EXPECT_EQ(split.first.num_qubits(), c.num_qubits());
  EXPECT_EQ(split.second.num_qubits(), c.num_qubits());
}

TEST(CascadeSplit, RecombineRestoresFunction) {
  auto c = revlib::build_4mod5();
  auto split = cascade_split(c, 0.4);
  EXPECT_TRUE(sim::circuits_equivalent(cascade_recombine(split), c));
}

TEST(CascadeSplit, CutFractionValidated) {
  auto c = revlib::build_4mod5();
  EXPECT_THROW(cascade_split(c, 0.0), InvalidArgument);
  EXPECT_THROW(cascade_split(c, 1.0), InvalidArgument);
}

TEST(CascadeSplit, StraightCutRespectsLayers) {
  auto c = revlib::build_4gt11();  // depth 13, fully sequential
  auto split = cascade_split(c, 0.5);
  // depth(first) + depth(second) == depth(original) for a straight cut of a
  // chain circuit.
  EXPECT_EQ(split.first.depth() + split.second.depth(), c.depth());
}

TEST(CascadeSwapNetwork, RecombineRestoresFunction) {
  auto c = revlib::build_1bit_adder();
  Rng rng(13);
  auto split = cascade_split_with_swap_network(c, rng, 0.5);
  EXPECT_TRUE(sim::circuits_equivalent(cascade_recombine(split), c));
}

TEST(CascadeSwapNetwork, PermutationRecorded) {
  auto c = revlib::build_4mod5();
  Rng rng(5);
  auto split = cascade_split_with_swap_network(c, rng, 0.5);
  ASSERT_EQ(split.permutation.size(), 5u);
  std::set<int> seen(split.permutation.begin(), split.permutation.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(CascadeSwapNetwork, FirstPartContainsSwaps) {
  auto c = revlib::build_rd53();
  // Try seeds until the permutation is non-identity (near-certain quickly).
  for (std::uint64_t seed = 1; seed < 10; ++seed) {
    Rng rng(seed);
    auto split = cascade_split_with_swap_network(c, rng, 0.5);
    bool identity = true;
    for (std::size_t q = 0; q < split.permutation.size(); ++q) {
      identity = identity && split.permutation[q] == static_cast<int>(q);
    }
    if (!identity) {
      auto ops = split.first.count_ops();
      EXPECT_GT(ops["swap"], 0u);
      return;
    }
  }
  FAIL() << "all sampled permutations were identity";
}

TEST(PrefixObfuscation, AddsRequestedGates) {
  auto c = revlib::build_4mod5();
  Rng rng(3);
  auto obf = prefix_obfuscate(c, 4, rng);
  EXPECT_EQ(obf.random.gate_count(), 4u);
  EXPECT_EQ(obf.obfuscated.gate_count(), c.gate_count() + 4);
}

TEST(PrefixObfuscation, AddsDepthUnlikeTetrisLock) {
  auto c = revlib::build_4gt13();
  Rng rng(7);
  auto obf = prefix_obfuscate(c, 4, rng);
  EXPECT_GT(obf.obfuscated.depth(), c.depth());
}

TEST(PrefixObfuscation, ObfuscatedUsuallyDiffersFromOriginal) {
  auto c = revlib::build_4mod5();
  int differs = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto obf = prefix_obfuscate(c, 3, rng);
    if (!sim::circuits_equivalent(obf.obfuscated, c)) ++differs;
  }
  EXPECT_GE(differs, 4);
}

TEST(PrefixObfuscation, RestoreIsExact) {
  auto c = revlib::build_1bit_adder();
  Rng rng(11);
  auto obf = prefix_obfuscate(c, 5, rng);
  EXPECT_TRUE(sim::circuits_equivalent(prefix_restore(obf), c));
}

TEST(PrefixObfuscation, ZeroGatesIsIdentityTransform) {
  auto c = revlib::build_4mod5();
  Rng rng(1);
  auto obf = prefix_obfuscate(c, 0, rng);
  EXPECT_EQ(obf.obfuscated.gate_count(), c.gate_count());
  EXPECT_THROW(prefix_obfuscate(c, -1, rng), InvalidArgument);
}

}  // namespace
}  // namespace tetris::baselines
