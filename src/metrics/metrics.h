#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/sampler.h"

namespace tetris::metrics {

/// Total Variation Distance between a shot histogram and a reference
/// distribution — Eq. 2 of the paper:
///   TVD = sum_i |y_i,orig - y_i,alter| / (2 N).
/// Both inputs are defined over bitstrings; missing keys count as zero.
double tvd(const sim::Counts& observed,
           const std::map<std::string, double>& reference);

/// TVD between two shot histograms (each normalized by its own shots).
double tvd(const sim::Counts& a, const sim::Counts& b);

/// TVD between two normalized distributions.
double tvd(const std::map<std::string, double>& a,
           const std::map<std::string, double>& b);

/// Accuracy: fraction of shots that produced `correct` — the paper's
/// "ratio of correct outcomes to the total number of shots".
double accuracy(const sim::Counts& observed, const std::string& correct);

/// Streaming mean / stddev / min / max over iteration results.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double stddev() const;  ///< sample stddev (n-1); 0 for n < 2
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tetris::metrics
