#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace tetris::metrics {

double tvd(const std::map<std::string, double>& a,
           const std::map<std::string, double>& b) {
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  double total = 0.0;
  for (const auto& k : keys) {
    auto ia = a.find(k);
    auto ib = b.find(k);
    double pa = ia == a.end() ? 0.0 : ia->second;
    double pb = ib == b.end() ? 0.0 : ib->second;
    total += std::abs(pa - pb);
  }
  return total / 2.0;
}

double tvd(const sim::Counts& observed,
           const std::map<std::string, double>& reference) {
  TETRIS_REQUIRE(observed.shots > 0, "tvd: empty counts");
  return tvd(observed.distribution(), reference);
}

double tvd(const sim::Counts& a, const sim::Counts& b) {
  TETRIS_REQUIRE(a.shots > 0 && b.shots > 0, "tvd: empty counts");
  return tvd(a.distribution(), b.distribution());
}

double accuracy(const sim::Counts& observed, const std::string& correct) {
  TETRIS_REQUIRE(observed.shots > 0, "accuracy: empty counts");
  return static_cast<double>(observed.count(correct)) /
         static_cast<double>(observed.shots);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

}  // namespace tetris::metrics
