#pragma once

#include <vector>

namespace tetris::lock {

/// Attack-complexity formulas of Sec. IV-C.
///
/// All results are natural logarithms (the linear values overflow quickly);
/// use tetris::log_to_log10 for human-readable magnitudes.

/// Prior-work (Saki et al., ICCAD'21) collusion complexity: k_n * n!, where
/// n is the qubit count of the split in hand and k_n the number of candidate
/// n-qubit segments the colluding compiler holds.
double log_attack_complexity_cascade(int n, double k_n);

/// TetrisLock complexity, Eq. 1:
///   sum_{i=1..nmax} k_i * sum_{j=0..min(n,i)} C(n,j) * C(i,j) * j!
/// where n is the qubit count of the split in hand, nmax the device qubit
/// budget, i the candidate qubit count of the other split, j the number of
/// connected qubits, and k_i the number of candidate i-qubit segments.
/// `k` may have fewer than nmax entries; missing entries default to the last
/// provided value (uniform k is the common case).
double log_attack_complexity_tetrislock(int n, int nmax,
                                        const std::vector<double>& k);

/// Convenience: uniform k_i = k for every i.
double log_attack_complexity_tetrislock(int n, int nmax, double k);

}  // namespace tetris::lock
