#pragma once

#include <vector>

#include "common/rng.h"
#include "lock/insertion.h"
#include "qir/circuit.h"

namespace tetris::lock {

/// Provenance of each gate in an obfuscated circuit.
enum class GateOrigin {
  RandomInverse,  ///< member of the R^-1 block
  Random,         ///< member of the R block
  Original,       ///< gate of the designer's circuit C
};

/// The obfuscated circuit R^-1 . R . C together with the designer-side
/// metadata (which gate came from where, and R itself). The compilers never
/// see this struct — they receive split circuits only.
struct ObfuscatedCircuit {
  qir::Circuit circuit;            ///< full R^-1 R C; depth == C's depth
  qir::Circuit original;           ///< C
  qir::Circuit random;             ///< R in temporal order
  std::vector<GateOrigin> origin;  ///< per gate of `circuit`
  /// True when mid-circuit gap pairs were used (allow_gap_insertion). The
  /// first member of each pair is tagged RandomInverse, the second Random,
  /// so the splitter separates them; unlike the leading prefix, the
  /// interlocked original gates then *may* share wires with R (correctness
  /// rests on the order-ideal invariant alone).
  bool has_gap_pairs = false;

  /// Number of gates inserted on top of C (= 2 * |R|).
  int inserted_gates() const { return 2 * static_cast<int>(random.size()); }

  /// The functionally-corrupted circuit R . C — what an adversary that
  /// isolates the second split's content effectively holds, and what the
  /// paper's "obfuscated" TVD rows measure.
  qir::Circuit masked() const;

  /// Gate indices (into `circuit`) for each origin class.
  std::vector<std::size_t> indices_of(GateOrigin o) const;
};

/// TetrisLock step 1: random-circuit masking with zero depth overhead.
class Obfuscator {
 public:
  explicit Obfuscator(InsertionConfig config = {});

  /// Produces R^-1 R C with the prefix placed in leading idle slots.
  /// Structural postconditions (enforced, and property-tested):
  ///  - circuit.depth() == original.depth() (for non-empty C),
  ///  - circuit is functionally equivalent to C,
  ///  - every inserted gate precedes every original gate on shared wires.
  ObfuscatedCircuit obfuscate(const qir::Circuit& circuit, Rng& rng) const;

  const InsertionConfig& config() const { return config_; }

 private:
  InsertionConfig config_;
};

}  // namespace tetris::lock
