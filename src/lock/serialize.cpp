#include "lock/serialize.h"

#include <vector>

#include "qir/binary.h"

namespace tetris::lock {

namespace {

// Vector-count ceilings, matching the circuit codec's limits: qubit-indexed
// vectors (layouts, permutations, origin-register maps) can never exceed a
// register width, gate-indexed vectors never a gate count.
constexpr std::uint32_t kMaxQubitVector = qir::kMaxCircuitQubits;
constexpr std::uint32_t kMaxGateVector = qir::kMaxCircuitGates;

void write_int_vector(ByteWriter& w, const std::vector<int>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) w.i64(x);
}

std::vector<int> read_int_vector(ByteReader& r, const char* what) {
  const std::uint32_t n = r.count(what, kMaxQubitVector);
  std::vector<int> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(static_cast<int>(r.i64(what)));
  }
  return v;
}

void write_index_vector(ByteWriter& w, const std::vector<std::size_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (std::size_t x : v) w.u64(static_cast<std::uint64_t>(x));
}

std::vector<std::size_t> read_index_vector(ByteReader& r, const char* what) {
  const std::uint32_t n = r.count(what, kMaxGateVector);
  std::vector<std::size_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(static_cast<std::size_t>(r.u64(what)));
  }
  return v;
}

void write_obfuscated(ByteWriter& w, const ObfuscatedCircuit& obf) {
  qir::write_circuit(w, obf.circuit);
  qir::write_circuit(w, obf.original);
  qir::write_circuit(w, obf.random);
  w.u32(static_cast<std::uint32_t>(obf.origin.size()));
  for (GateOrigin o : obf.origin) w.u8(static_cast<std::uint8_t>(o));
  w.u8(obf.has_gap_pairs ? 1 : 0);
}

ObfuscatedCircuit read_obfuscated(ByteReader& r) {
  ObfuscatedCircuit obf;
  obf.circuit = qir::read_circuit(r);
  obf.original = qir::read_circuit(r);
  obf.random = qir::read_circuit(r);
  const std::uint32_t n = r.count("origin count", kMaxGateVector);
  obf.origin.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t o = r.u8("gate origin");
    if (o > static_cast<std::uint8_t>(GateOrigin::Original)) {
      throw ParseError("flow codec: unknown gate origin " + std::to_string(o) +
                       " at offset " + std::to_string(r.offset() - 1));
    }
    obf.origin.push_back(static_cast<GateOrigin>(o));
  }
  obf.has_gap_pairs = r.u8("has_gap_pairs") != 0;
  return obf;
}

void write_split(ByteWriter& w, const Split& split) {
  qir::write_circuit(w, split.circuit);
  write_int_vector(w, split.local_to_orig);
  write_index_vector(w, split.gate_indices);
}

Split read_split(ByteReader& r) {
  Split split;
  split.circuit = qir::read_circuit(r);
  split.local_to_orig = read_int_vector(r, "split local_to_orig");
  split.gate_indices = read_index_vector(r, "split gate_indices");
  return split;
}

void write_compile_result(ByteWriter& w, const compiler::CompileResult& cr) {
  qir::write_circuit(w, cr.circuit);
  write_int_vector(w, cr.initial_layout);
  write_int_vector(w, cr.final_layout);
  write_int_vector(w, cr.wire_permutation);
  w.u64(static_cast<std::uint64_t>(cr.stats.input_gates));
  w.u64(static_cast<std::uint64_t>(cr.stats.output_gates));
  w.u64(static_cast<std::uint64_t>(cr.stats.swaps_inserted));
  w.i64(cr.stats.input_depth);
  w.i64(cr.stats.output_depth);
  w.u64(static_cast<std::uint64_t>(cr.stats.optimize.cancelled_pairs));
  w.u64(static_cast<std::uint64_t>(cr.stats.optimize.merged_rotations));
  w.u64(static_cast<std::uint64_t>(cr.stats.optimize.dropped_identities));
}

compiler::CompileResult read_compile_result(ByteReader& r) {
  compiler::CompileResult cr;
  cr.circuit = qir::read_circuit(r);
  cr.initial_layout = read_int_vector(r, "compile initial_layout");
  cr.final_layout = read_int_vector(r, "compile final_layout");
  cr.wire_permutation = read_int_vector(r, "compile wire_permutation");
  cr.stats.input_gates = static_cast<std::size_t>(r.u64("stats input_gates"));
  cr.stats.output_gates = static_cast<std::size_t>(r.u64("stats output_gates"));
  cr.stats.swaps_inserted =
      static_cast<std::size_t>(r.u64("stats swaps_inserted"));
  cr.stats.input_depth = static_cast<int>(r.i64("stats input_depth"));
  cr.stats.output_depth = static_cast<int>(r.i64("stats output_depth"));
  cr.stats.optimize.cancelled_pairs =
      static_cast<std::size_t>(r.u64("optimize cancelled_pairs"));
  cr.stats.optimize.merged_rotations =
      static_cast<std::size_t>(r.u64("optimize merged_rotations"));
  cr.stats.optimize.dropped_identities =
      static_cast<std::size_t>(r.u64("optimize dropped_identities"));
  return cr;
}

void write_compiled_split(ByteWriter& w, const CompiledSplit& cs) {
  write_compile_result(w, cs.result);
  write_int_vector(w, cs.local_to_orig);
}

CompiledSplit read_compiled_split(ByteReader& r) {
  CompiledSplit cs;
  cs.result = read_compile_result(r);
  cs.local_to_orig = read_int_vector(r, "compiled split local_to_orig");
  return cs;
}

}  // namespace

void write_flow_result(ByteWriter& w, const FlowResult& result) {
  write_obfuscated(w, result.obf);
  write_split(w, result.splits.first);
  write_split(w, result.splits.second);
  qir::write_circuit(w, result.recombined.circuit);
  write_int_vector(w, result.recombined.orig_to_phys);
  write_compiled_split(w, result.recombined.first);
  write_compiled_split(w, result.recombined.second);
  write_compile_result(w, result.baseline);
  w.i64(result.depth_original);
  w.i64(result.depth_obfuscated);
  w.u64(static_cast<std::uint64_t>(result.gates_original));
  w.u64(static_cast<std::uint64_t>(result.gates_obfuscated));
  w.f64(result.tvd_obfuscated);
  w.f64(result.tvd_restored);
  w.f64(result.accuracy_original);
  w.f64(result.accuracy_restored);
}

FlowResult read_flow_result(ByteReader& r) {
  FlowResult result;
  result.obf = read_obfuscated(r);
  result.splits.first = read_split(r);
  result.splits.second = read_split(r);
  result.recombined.circuit = qir::read_circuit(r);
  result.recombined.orig_to_phys = read_int_vector(r, "recombined orig_to_phys");
  result.recombined.first = read_compiled_split(r);
  result.recombined.second = read_compiled_split(r);
  result.baseline = read_compile_result(r);
  result.depth_original = static_cast<int>(r.i64("depth_original"));
  result.depth_obfuscated = static_cast<int>(r.i64("depth_obfuscated"));
  result.gates_original = static_cast<std::size_t>(r.u64("gates_original"));
  result.gates_obfuscated = static_cast<std::size_t>(r.u64("gates_obfuscated"));
  result.tvd_obfuscated = r.f64("tvd_obfuscated");
  result.tvd_restored = r.f64("tvd_restored");
  result.accuracy_original = r.f64("accuracy_original");
  result.accuracy_restored = r.f64("accuracy_restored");
  return result;
}

}  // namespace tetris::lock
