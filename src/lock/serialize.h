#pragma once

#include "common/binio.h"
#include "lock/pipeline.h"

namespace tetris::lock {

/// Binary FlowResult codec — the payload record of the artifact format
/// (docs/FORMATS.md §4). Serializes *everything* a flow produces, not just
/// the reported metrics: the obfuscated circuit with its designer-side
/// provenance (R, per-gate origins), both interlocked splits with their
/// private qubit maps, the recombined hardware-ready circuit with the
/// compiled-split layouts, the unlocked baseline compilation, and the
/// Table-I / Figure-4 metric fields.
///
/// The codec is exact: integers are fixed-width, doubles travel by IEEE-754
/// bit pattern, and circuits round-trip bit-identically (qir/binary.h). A
/// decoded FlowResult compares equal — `Circuit::operator==`, exact double
/// equality, element-wise vector equality — to the encoded one, which is
/// what makes a disk-cache hit indistinguishable from a re-run and stored
/// artifacts byte-stable across processes and thread counts
/// (tests/test_artifact.cpp pins both).
///
/// Versioning lives one layer up, in the artifact envelope
/// (service/artifact_store.h): this record has no header of its own and
/// must only be parsed out of an envelope whose version it matches.

/// Appends the FlowResult record to `w`. Never fails.
void write_flow_result(ByteWriter& w, const FlowResult& result);

/// Reads one FlowResult record. Throws tetris::ParseError on truncated,
/// corrupt, or over-limit input (every embedded circuit and vector is read
/// through the bounded primitives of common/binio.h and qir/binary.h).
FlowResult read_flow_result(ByteReader& r);

}  // namespace tetris::lock
