#include "lock/complexity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/combinatorics.h"
#include "common/error.h"

namespace tetris::lock {

double log_attack_complexity_cascade(int n, double k_n) {
  TETRIS_REQUIRE(n >= 1, "cascade complexity requires n >= 1");
  TETRIS_REQUIRE(k_n >= 1.0, "cascade complexity requires k_n >= 1");
  return std::log(k_n) + log_factorial(n);
}

double log_attack_complexity_tetrislock(int n, int nmax,
                                        const std::vector<double>& k) {
  TETRIS_REQUIRE(n >= 1, "tetrislock complexity requires n >= 1");
  TETRIS_REQUIRE(nmax >= 1, "tetrislock complexity requires nmax >= 1");
  TETRIS_REQUIRE(!k.empty(), "tetrislock complexity requires k values");

  double total = -std::numeric_limits<double>::infinity();
  for (int i = 1; i <= nmax; ++i) {
    double ki = k[std::min<std::size_t>(static_cast<std::size_t>(i - 1),
                                        k.size() - 1)];
    TETRIS_REQUIRE(ki >= 0.0, "tetrislock complexity: negative k_i");
    if (ki == 0.0) continue;
    // Inner sum over the number of connected qubits j.
    double inner = -std::numeric_limits<double>::infinity();
    int jmax = std::min(n, i);
    for (int j = 0; j <= jmax; ++j) {
      double term = log_binomial(n, j) + log_binomial(i, j) + log_factorial(j);
      inner = log_add(inner, term);
    }
    total = log_add(total, std::log(ki) + inner);
  }
  return total;
}

double log_attack_complexity_tetrislock(int n, int nmax, double k) {
  return log_attack_complexity_tetrislock(n, nmax, std::vector<double>{k});
}

}  // namespace tetris::lock
