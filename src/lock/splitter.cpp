#include "lock/splitter.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "qir/dag.h"
#include "qir/layers.h"

namespace tetris::lock {

int Split::orig_to_local(int orig_qubit) const {
  for (std::size_t l = 0; l < local_to_orig.size(); ++l) {
    if (local_to_orig[l] == orig_qubit) return static_cast<int>(l);
  }
  return -1;
}

InterlockSplitter::InterlockSplitter(SplitConfig config) : config_(config) {}

namespace {

/// Compresses the subcircuit formed by `indices` to its used qubits.
Split make_split(const ObfuscatedCircuit& obf,
                 std::vector<std::size_t> indices, const std::string& name) {
  std::set<int> used;
  for (std::size_t i : indices) {
    const auto& g = obf.circuit.gate(i);
    used.insert(g.qubits.begin(), g.qubits.end());
  }
  Split split;
  split.local_to_orig.assign(used.begin(), used.end());
  std::vector<int> orig_to_local(static_cast<std::size_t>(obf.circuit.num_qubits()), -1);
  for (std::size_t l = 0; l < split.local_to_orig.size(); ++l) {
    orig_to_local[static_cast<std::size_t>(split.local_to_orig[l])] = static_cast<int>(l);
  }
  split.circuit = qir::Circuit(static_cast<int>(used.size()), name);
  for (std::size_t i : indices) {
    qir::Gate g = obf.circuit.gate(i);
    for (int& q : g.qubits) q = orig_to_local[static_cast<std::size_t>(q)];
    split.circuit.add(std::move(g));
  }
  split.gate_indices = std::move(indices);
  return split;
}

}  // namespace

SplitPair InterlockSplitter::split(const ObfuscatedCircuit& obf,
                                   Rng& rng) const {
  const qir::Circuit& circuit = obf.circuit;
  const std::size_t n_gates = circuit.size();
  TETRIS_REQUIRE(obf.origin.size() == n_gates,
                 "split: origin metadata size mismatch");

  qir::CircuitDag dag(circuit);
  qir::LayerSchedule sched(circuit);

  // R's qubit support: Cl must stay clear of these wires (invariant I4).
  std::set<int> r_support;
  for (const auto& g : obf.random.gates()) {
    r_support.insert(g.qubits.begin(), g.qubits.end());
  }

  // Per-qubit jagged cut layer for non-R qubits.
  const int depth = sched.num_layers();
  std::vector<int> cut_layer(static_cast<std::size_t>(circuit.num_qubits()), 0);
  int max_cut = std::max(
      1, static_cast<int>(config_.max_cut_depth_fraction * depth));
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    if (r_support.count(q)) continue;  // boundary sits before layer 0 here
    if (rng.bernoulli(config_.interlock_fraction)) {
      cut_layer[static_cast<std::size_t>(q)] = 1 + rng.uniform_int(0, max_cut - 1);
    }
  }

  // Seed construction.
  //  1. Every R^-1 gate plus its predecessor closure (mid-circuit gap pairs
  //     have original gates before them on their wire; those must come along
  //     or the ideal sweep would expel the forced gate).
  //  2. Original gates wholly below the per-qubit cut. Originals sitting
  //     after an R gate on some wire are seeded too but fall out in step 4,
  //     which is also what keeps Cl clear of R's wires in leading mode.
  //  3. No R gate may ride in via the closure: clear them.
  //  4. Shrink to the largest order ideal inside the seed (invariant I2).
  std::vector<char> seed(n_gates, 0);
  for (std::size_t i = 0; i < n_gates; ++i) {
    if (obf.origin[i] == GateOrigin::RandomInverse) seed[i] = 1;
  }
  if (obf.has_gap_pairs) {
    // A gap pair's first member may transitively depend (through multi-qubit
    // original gates) on another pair's *second* member; such a pair cannot
    // be separated by any order ideal. Demote it: keep it out of the forced
    // set so the whole pair stays intact in the second split (functionally
    // sound — the members cancel there — just no masking credit for it).
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n_gates; ++i) {
        if (!seed[i] || obf.origin[i] != GateOrigin::RandomInverse) continue;
        std::vector<char> own(n_gates, 0);
        own[i] = 1;
        own = dag.downward_closure(own);
        for (std::size_t j = 0; j < n_gates; ++j) {
          bool blocked = own[j] && ((obf.origin[j] == GateOrigin::Random) ||
                                    (obf.origin[j] == GateOrigin::RandomInverse &&
                                     !seed[j] && j != i));
          if (blocked) {
            seed[i] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }
  seed = dag.downward_closure(seed);
  for (std::size_t i = 0; i < n_gates; ++i) {
    if (obf.origin[i] != GateOrigin::Original) continue;
    const auto& g = circuit.gate(i);
    bool below = true;
    for (int q : g.qubits) {
      if ((!obf.has_gap_pairs && r_support.count(q)) ||
          sched.layer_of(i) >= cut_layer[static_cast<std::size_t>(q)]) {
        below = false;
        break;
      }
    }
    if (below) seed[i] = 1;
  }
  for (std::size_t i = 0; i < n_gates; ++i) {
    if (obf.origin[i] == GateOrigin::Random) seed[i] = 0;
  }
  std::vector<char> first_mask = dag.largest_ideal_within(seed);

  std::vector<std::size_t> first_idx, second_idx;
  for (std::size_t i = 0; i < n_gates; ++i) {
    (first_mask[i] ? first_idx : second_idx).push_back(i);
  }

  SplitPair pair;
  std::string base = obf.original.name();
  pair.first = make_split(obf, std::move(first_idx),
                          base.empty() ? "split1" : base + "_split1");
  pair.second = make_split(obf, std::move(second_idx),
                           base.empty() ? "split2" : base + "_split2");
  validate(obf, pair);
  return pair;
}

qir::Circuit InterlockSplitter::recombine_structural(const SplitPair& pair,
                                                     int num_qubits) {
  qir::Circuit out(num_qubits, "recombined");
  out.append_mapped(pair.first.circuit, pair.first.local_to_orig);
  out.append_mapped(pair.second.circuit, pair.second.local_to_orig);
  return out;
}

void InterlockSplitter::validate(const ObfuscatedCircuit& obf,
                                 const SplitPair& pair) {
  const std::size_t n_gates = obf.circuit.size();

  // I1: partition.
  std::vector<char> where(n_gates, 0);
  for (std::size_t i : pair.first.gate_indices) {
    if (i >= n_gates || where[i]) throw LockError("split: bad partition (first)");
    where[i] = 1;
  }
  for (std::size_t i : pair.second.gate_indices) {
    if (i >= n_gates || where[i]) throw LockError("split: bad partition (second)");
    where[i] = 2;
  }
  for (char w : where) {
    if (w == 0) throw LockError("split: gate missing from both splits");
  }

  // I2: first split is an order ideal.
  qir::CircuitDag dag(obf.circuit);
  std::vector<char> first_mask(n_gates, 0);
  for (std::size_t i : pair.first.gate_indices) first_mask[i] = 1;
  if (!dag.is_order_ideal(first_mask)) {
    throw LockError("split: first split is not an order ideal");
  }

  // I3: no R gate in the first split; every R^-1 gate in the first split,
  // except that a demoted gap pair may sit intact (both members) in the
  // second split.
  for (std::size_t i = 0; i < n_gates; ++i) {
    if (obf.origin[i] == GateOrigin::Random && first_mask[i]) {
      throw LockError("split: an R gate leaked into the first split");
    }
    if (obf.origin[i] == GateOrigin::RandomInverse && !first_mask[i]) {
      bool demoted_pair_ok =
          obf.has_gap_pairs && i + 1 < n_gates &&
          obf.origin[i + 1] == GateOrigin::Random && !first_mask[i + 1];
      if (!demoted_pair_ok) {
        throw LockError("split: an R^-1 gate escaped the first split");
      }
    }
  }

  // I4: Cl support disjoint from R support (leading mode only — gap pairs
  // intentionally interlock originals on R wires; correctness there rests on
  // I2 alone).
  if (obf.has_gap_pairs) return;
  std::set<int> r_support;
  for (const auto& g : obf.random.gates()) {
    r_support.insert(g.qubits.begin(), g.qubits.end());
  }
  for (std::size_t i : pair.first.gate_indices) {
    if (obf.origin[i] != GateOrigin::Original) continue;
    for (int q : obf.circuit.gate(i).qubits) {
      if (r_support.count(q)) {
        throw LockError("split: Cl touches an R wire (breaks commutation)");
      }
    }
  }
}

}  // namespace tetris::lock
