#include "lock/deobfuscate.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace tetris::lock {

RecombinedCircuit Deobfuscator::run(
    const SplitPair& pair, int num_original_qubits,
    const compiler::CompileOptions& first_options,
    compiler::CompileOptions second_options) const {
  const compiler::Target& target = first_options.target;
  TETRIS_REQUIRE(second_options.target.num_qubits() == target.num_qubits(),
                 "deobfuscate: both compilers must target the same device");

  // 1. First split: free compilation.
  compiler::Compiler first_compiler(first_options);
  CompiledSplit first{first_compiler.compile(pair.first.circuit),
                      pair.first.local_to_orig};

  // Where each original qubit sits after the first compiled split.
  const int np = target.num_qubits();
  std::vector<int> orig_phys_after_first(static_cast<std::size_t>(num_original_qubits), -1);
  std::set<int> occupied;
  for (std::size_t l = 0; l < first.local_to_orig.size(); ++l) {
    int phys = first.result.final_layout[l];
    orig_phys_after_first[static_cast<std::size_t>(first.local_to_orig[l])] = phys;
    occupied.insert(phys);
  }

  // 2. Pin the second split's initial layout.
  const auto& second_map = pair.second.local_to_orig;
  std::vector<int> pinned(second_map.size(), -1);
  std::vector<char> taken(static_cast<std::size_t>(np), 0);
  for (int p : occupied) taken[static_cast<std::size_t>(p)] = 1;
  // Shared qubits: continue on the wire split1 left them on.
  for (std::size_t l = 0; l < second_map.size(); ++l) {
    int o = second_map[l];
    int phys = orig_phys_after_first[static_cast<std::size_t>(o)];
    if (phys >= 0) pinned[l] = phys;
  }
  // Fresh qubits: any wire that is still |0> (never placed by split1).
  int cursor = 0;
  for (std::size_t l = 0; l < second_map.size(); ++l) {
    if (pinned[l] >= 0) continue;
    while (cursor < np && taken[static_cast<std::size_t>(cursor)]) ++cursor;
    TETRIS_REQUIRE(cursor < np, "deobfuscate: device too small for both splits");
    pinned[l] = cursor;
    taken[static_cast<std::size_t>(cursor)] = 1;
  }

  second_options.initial_layout = pinned;
  compiler::Compiler second_compiler(second_options);
  CompiledSplit second{second_compiler.compile(pair.second.circuit),
                       pair.second.local_to_orig};

  // 3. Concatenate on the shared physical register.
  RecombinedCircuit out;
  out.circuit = qir::Circuit(np, "recombined_compiled");
  out.circuit.append(first.result.circuit);
  out.circuit.append(second.result.circuit);

  // 4. Final wire of each original qubit.
  out.orig_to_phys.assign(static_cast<std::size_t>(num_original_qubits), -1);
  for (int o = 0; o < num_original_qubits; ++o) {
    int local2 = pair.second.orig_to_local(o);
    if (local2 >= 0) {
      out.orig_to_phys[static_cast<std::size_t>(o)] =
          second.result.final_layout[static_cast<std::size_t>(local2)];
      continue;
    }
    int phys1 = orig_phys_after_first[static_cast<std::size_t>(o)];
    if (phys1 >= 0) {
      // Untouched by split2, but split2's routing may still have moved the
      // wire's content around.
      out.orig_to_phys[static_cast<std::size_t>(o)] =
          second.result.wire_permutation[static_cast<std::size_t>(phys1)];
      continue;
    }
    // Untouched by either split: the qubit stays |0>; park it on a wire no
    // original qubit claims so measurement bookkeeping stays injective.
    out.orig_to_phys[static_cast<std::size_t>(o)] = -1;
  }
  // Assign parked qubits to leftover wires.
  std::set<int> used_phys;
  for (int p : out.orig_to_phys) {
    if (p >= 0) used_phys.insert(p);
  }
  int spare = 0;
  for (auto& p : out.orig_to_phys) {
    if (p >= 0) continue;
    while (spare < np && used_phys.count(spare)) ++spare;
    TETRIS_REQUIRE(spare < np, "deobfuscate: no spare wire for idle qubit");
    p = spare;
    used_phys.insert(spare);
  }

  out.first = std::move(first);
  out.second = std::move(second);
  return out;
}

}  // namespace tetris::lock
