#include "lock/multisplit.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "qir/dag.h"
#include "qir/layers.h"

namespace tetris::lock {

namespace {

/// Compresses the gates at `indices` of the obfuscated circuit into a Split.
Split compress(const ObfuscatedCircuit& obf, std::vector<std::size_t> indices,
               const std::string& name) {
  std::set<int> used;
  for (std::size_t i : indices) {
    const auto& g = obf.circuit.gate(i);
    used.insert(g.qubits.begin(), g.qubits.end());
  }
  Split split;
  split.local_to_orig.assign(used.begin(), used.end());
  std::vector<int> orig_to_local(
      static_cast<std::size_t>(obf.circuit.num_qubits()), -1);
  for (std::size_t l = 0; l < split.local_to_orig.size(); ++l) {
    orig_to_local[static_cast<std::size_t>(split.local_to_orig[l])] =
        static_cast<int>(l);
  }
  split.circuit = qir::Circuit(static_cast<int>(used.size()), name);
  for (std::size_t i : indices) {
    qir::Gate g = obf.circuit.gate(i);
    for (int& q : g.qubits) q = orig_to_local[static_cast<std::size_t>(q)];
    split.circuit.add(std::move(g));
  }
  split.gate_indices = std::move(indices);
  return split;
}

}  // namespace

MultiSplit multi_split(const ObfuscatedCircuit& obf, int k, Rng& rng,
                       const SplitConfig& config) {
  TETRIS_REQUIRE(k >= 2, "multi_split requires k >= 2");

  InterlockSplitter splitter(config);
  SplitPair pair = splitter.split(obf, rng);

  MultiSplit out;
  out.segments.push_back(pair.first);
  if (k == 2) {
    out.segments.push_back(pair.second);
    validate_multi_split(obf, out);
    return out;
  }

  // Cut the second split's gate sequence into k-1 contiguous chunks at
  // random layer boundaries of the obfuscated schedule. A contiguous
  // partition of a subsequence preserves per-wire order, so recombination
  // stays exact.
  qir::LayerSchedule sched(obf.circuit);
  const auto& second = pair.second.gate_indices;
  TETRIS_REQUIRE(static_cast<int>(second.size()) >= k - 1,
                 "multi_split: second split too small for requested k");

  // Candidate boundaries: positions in `second` where the layer increases.
  std::vector<std::size_t> boundaries;
  for (std::size_t pos = 1; pos < second.size(); ++pos) {
    if (sched.layer_of(second[pos]) != sched.layer_of(second[pos - 1])) {
      boundaries.push_back(pos);
    }
  }
  TETRIS_REQUIRE(static_cast<int>(boundaries.size()) >= k - 2,
                 "multi_split: not enough layer boundaries for requested k");

  rng.shuffle(boundaries);
  std::vector<std::size_t> cuts(boundaries.begin(),
                                boundaries.begin() + (k - 2));
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(second.size());

  std::size_t start = 0;
  int seg_no = 2;
  std::string base = obf.original.name();
  for (std::size_t cut : cuts) {
    std::vector<std::size_t> chunk(second.begin() + static_cast<long>(start),
                                   second.begin() + static_cast<long>(cut));
    out.segments.push_back(compress(
        obf, std::move(chunk),
        (base.empty() ? "split" : base + "_split") + std::to_string(seg_no)));
    start = cut;
    ++seg_no;
  }
  validate_multi_split(obf, out);
  return out;
}

qir::Circuit multi_recombine_structural(const MultiSplit& split,
                                        int num_qubits) {
  qir::Circuit out(num_qubits, "multi_recombined");
  for (const auto& seg : split.segments) {
    out.append_mapped(seg.circuit, seg.local_to_orig);
  }
  return out;
}

void validate_multi_split(const ObfuscatedCircuit& obf,
                          const MultiSplit& split) {
  const std::size_t n_gates = obf.circuit.size();
  if (split.segments.size() < 2) {
    throw LockError("multi_split: fewer than two segments");
  }

  // Partition check.
  std::vector<char> seen(n_gates, 0);
  for (const auto& seg : split.segments) {
    for (std::size_t i : seg.gate_indices) {
      if (i >= n_gates || seen[i]) {
        throw LockError("multi_split: segments do not partition the gates");
      }
      seen[i] = 1;
    }
  }
  for (char s : seen) {
    if (!s) throw LockError("multi_split: gate missing from all segments");
  }

  // Every prefix union must be downward closed, so the concatenation
  // preserves per-wire order at every boundary.
  qir::CircuitDag dag(obf.circuit);
  std::vector<char> prefix(n_gates, 0);
  for (std::size_t s = 0; s + 1 < split.segments.size(); ++s) {
    for (std::size_t i : split.segments[s].gate_indices) prefix[i] = 1;
    if (s == 0) {
      // Segment 1 must satisfy the full interlock invariants; reuse the
      // 2-way validator with the remainder as a virtual second split.
      SplitPair pair;
      pair.first = split.segments[0];
      std::vector<std::size_t> rest;
      for (std::size_t j = 1; j < split.segments.size(); ++j) {
        rest.insert(rest.end(), split.segments[j].gate_indices.begin(),
                    split.segments[j].gate_indices.end());
      }
      std::sort(rest.begin(), rest.end());
      // The validator only inspects the two index sets.
      pair.second.gate_indices = std::move(rest);
      InterlockSplitter::validate(obf, pair);
      continue;
    }
    if (!dag.is_order_ideal(prefix)) {
      throw LockError("multi_split: prefix union " + std::to_string(s + 1) +
                      " is not an order ideal");
    }
  }
}

RecombinedCircuit multi_deobfuscate(const MultiSplit& split,
                                    int num_original_qubits,
                                    const compiler::CompileOptions& options) {
  const compiler::Target& target = options.target;
  const int np = target.num_qubits();

  RecombinedCircuit out;
  out.circuit = qir::Circuit(np, "multi_recombined_compiled");

  // Position of each original qubit on the device, -1 = not yet placed.
  std::vector<int> orig_pos(static_cast<std::size_t>(num_original_qubits), -1);
  std::vector<char> wire_taken(static_cast<std::size_t>(np), 0);

  bool first_stage = true;
  for (const auto& seg : split.segments) {
    compiler::CompileOptions stage_options = options;
    if (first_stage) {
      stage_options.initial_layout.reset();
    } else {
      std::vector<int> pinned(seg.local_to_orig.size(), -1);
      for (std::size_t l = 0; l < seg.local_to_orig.size(); ++l) {
        int o = seg.local_to_orig[l];
        if (orig_pos[static_cast<std::size_t>(o)] >= 0) {
          pinned[l] = orig_pos[static_cast<std::size_t>(o)];
        }
      }
      int cursor = 0;
      for (auto& p : pinned) {
        if (p >= 0) continue;
        while (cursor < np && wire_taken[static_cast<std::size_t>(cursor)]) {
          ++cursor;
        }
        TETRIS_REQUIRE(cursor < np, "multi_deobfuscate: device too small");
        p = cursor;
        wire_taken[static_cast<std::size_t>(cursor)] = 1;
      }
      stage_options.initial_layout = pinned;
    }

    compiler::Compiler stage_compiler(stage_options);
    auto result = stage_compiler.compile(seg.circuit);
    out.circuit.append(result.circuit);

    // Track movement: first the routing permutation moves every previously
    // placed wire, then this stage's own qubits land on final_layout.
    for (auto& pos : orig_pos) {
      if (pos >= 0) {
        pos = result.wire_permutation[static_cast<std::size_t>(pos)];
      }
    }
    for (std::size_t l = 0; l < seg.local_to_orig.size(); ++l) {
      int o = seg.local_to_orig[l];
      orig_pos[static_cast<std::size_t>(o)] = result.final_layout[l];
    }
    for (int o = 0; o < num_original_qubits; ++o) {
      if (orig_pos[static_cast<std::size_t>(o)] >= 0) {
        wire_taken[static_cast<std::size_t>(orig_pos[static_cast<std::size_t>(o)])] = 1;
      }
    }
    // Recompute taken wires from scratch (permutation may have freed some).
    std::fill(wire_taken.begin(), wire_taken.end(), 0);
    for (int o = 0; o < num_original_qubits; ++o) {
      int pos = orig_pos[static_cast<std::size_t>(o)];
      if (pos >= 0) wire_taken[static_cast<std::size_t>(pos)] = 1;
    }
    if (first_stage) {
      out.first = CompiledSplit{std::move(result), seg.local_to_orig};
      first_stage = false;
    } else {
      out.second = CompiledSplit{std::move(result), seg.local_to_orig};
    }
  }

  // Park untouched qubits on spare wires for measurement bookkeeping.
  out.orig_to_phys = std::move(orig_pos);
  int spare = 0;
  for (auto& p : out.orig_to_phys) {
    if (p >= 0) continue;
    while (spare < np && wire_taken[static_cast<std::size_t>(spare)]) ++spare;
    TETRIS_REQUIRE(spare < np, "multi_deobfuscate: no spare wire left");
    p = spare;
    wire_taken[static_cast<std::size_t>(spare)] = 1;
  }
  return out;
}

}  // namespace tetris::lock
