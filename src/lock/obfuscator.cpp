#include "lock/obfuscator.h"

#include "common/error.h"

namespace tetris::lock {

qir::Circuit ObfuscatedCircuit::masked() const {
  qir::Circuit out(circuit.num_qubits(),
                   original.name().empty() ? "masked"
                                           : original.name() + "_masked");
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (origin[i] != GateOrigin::RandomInverse) out.add(circuit.gate(i));
  }
  return out;
}

std::vector<std::size_t> ObfuscatedCircuit::indices_of(GateOrigin o) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < origin.size(); ++i) {
    if (origin[i] == o) out.push_back(i);
  }
  return out;
}

Obfuscator::Obfuscator(InsertionConfig config) : config_(config) {}

ObfuscatedCircuit Obfuscator::obfuscate(const qir::Circuit& circuit,
                                        Rng& rng) const {
  InsertionPlan plan = plan_insertion(circuit, config_, rng);

  ObfuscatedCircuit out;
  out.original = circuit;
  out.random = plan.random;
  out.circuit = qir::Circuit(circuit.num_qubits(),
                             circuit.name().empty() ? "obfuscated"
                                                    : circuit.name() + "_obf");

  const std::size_t k = plan.prefix.size() / 2;
  for (std::size_t i = 0; i < plan.prefix.size(); ++i) {
    out.circuit.add(plan.prefix[i]);
    out.origin.push_back(i < k ? GateOrigin::RandomInverse : GateOrigin::Random);
  }

  // Interleave gap pairs right after the original gate their window follows.
  out.has_gap_pairs = !plan.gap_pairs.empty();
  std::vector<int> wire_count(static_cast<std::size_t>(circuit.num_qubits()), 0);
  auto emit_pairs_for = [&](int q) {
    for (const auto& pair : plan.gap_pairs) {
      if (pair.qubit == q &&
          pair.after_count == wire_count[static_cast<std::size_t>(q)]) {
        out.circuit.add(pair.gate);
        out.origin.push_back(GateOrigin::RandomInverse);
        out.circuit.add(pair.gate.adjoint());
        out.origin.push_back(GateOrigin::Random);
      }
    }
  };
  for (const auto& g : circuit.gates()) {
    out.circuit.add(g);
    out.origin.push_back(GateOrigin::Original);
    if (g.kind != qir::GateKind::Barrier) {
      for (int q : g.qubits) {
        ++wire_count[static_cast<std::size_t>(q)];
        emit_pairs_for(q);
      }
    }
  }

  // Zero-depth-overhead guarantee: the prefix fit the leading region, so the
  // merged ASAP depth cannot exceed the original depth. Enforce it anyway —
  // it is the paper's headline overhead claim.
  if (!circuit.empty()) {
    TETRIS_REQUIRE(out.circuit.depth() == circuit.depth(),
                   "obfuscate: depth changed (leading-region invariant broken)");
  }
  return out;
}

}  // namespace tetris::lock
