#pragma once

#include <vector>

#include "common/rng.h"
#include "compiler/compiler.h"
#include "lock/deobfuscate.h"
#include "lock/splitter.h"

namespace tetris::lock {

/// K-way split compilation — the paper's "two *or more* sub-circuits"
/// generalisation (Sec. I). Segment 1 is the interlocked first split
/// (R^-1 | Cl); the remaining k-1 segments are jagged layer chunks of the
/// second split's sequence, each compressed to its own qubit support so
/// segment widths vary. Each segment goes to a different untrusted compiler;
/// with k compilers, any colluding subset still misses at least one segment.
struct MultiSplit {
  std::vector<Split> segments;  ///< in temporal order
};

/// Splits into exactly `k >= 2` segments. k == 2 degenerates to
/// InterlockSplitter::split. Throws InvalidArgument when the circuit has too
/// few layers to cut k-1 times.
MultiSplit multi_split(const ObfuscatedCircuit& obf, int k, Rng& rng,
                       const SplitConfig& config = {});

/// Expands all segments to the full register and concatenates; functionally
/// the original circuit (validated in tests against the dense unitary).
qir::Circuit multi_recombine_structural(const MultiSplit& split,
                                        int num_qubits);

/// Validates: segments partition the gates, each consecutive prefix union is
/// an order ideal, and the 2-way invariants hold for segment 1. Throws
/// LockError on violation.
void validate_multi_split(const ObfuscatedCircuit& obf,
                          const MultiSplit& split);

/// Staged split compilation: compiles segment 1 freely, then pins each later
/// segment's initial layout to wherever the previous stage left its qubits
/// (fresh qubits go to still-|0> wires). Returns the concatenated
/// hardware-ready circuit plus the measurement map, exactly like
/// Deobfuscator::run does for two segments.
RecombinedCircuit multi_deobfuscate(const MultiSplit& split,
                                    int num_original_qubits,
                                    const compiler::CompileOptions& options);

}  // namespace tetris::lock
