#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "qir/circuit.h"
#include "qir/layers.h"

namespace tetris::lock {

/// Insertion alphabets. The paper uses X/CX for the arithmetic-style RevLib
/// benchmarks and H for interference-style circuits (Grover etc.).
enum class InsertionAlphabet { XOnly, CXOnly, Mixed, Hadamard };

/// The user-facing spelling of an alphabet ("x", "cx", "h", "mixed"), as
/// accepted by the CLI's --alphabet flag and the REST API's config object.
/// One shared parser so the two front doors cannot drift apart; throws
/// InvalidArgument naming the accepted spellings otherwise.
InsertionAlphabet parse_insertion_alphabet(const std::string& name);

/// Configuration of Algorithm 1 (random gate insertion into empty positions).
struct InsertionConfig {
  /// Maximum size of the random circuit R. Each R gate also has its inverse
  /// inserted, so total inserted gates <= 2 * max_random_gates. The paper
  /// reports 1-4 inserted gates, i.e. this knob at 1..2.
  int max_random_gates = 2;
  /// Probability of proposing a CX instead of an X in the Mixed alphabet
  /// (Algorithm 1 uses 0.5).
  double cx_probability = 0.5;
  InsertionAlphabet alphabet = InsertionAlphabet::Mixed;
  /// Proposal attempts per R gate before giving up on growing R.
  int attempts_per_gate = 16;
  /// Force the first R gate to be an X (Mixed/XOnly alphabets only). A CX
  /// whose controls sit on |0> wires is functionally invisible on the all-
  /// zero input, so a CX-only R would mask nothing; guaranteeing one bit-flip
  /// reproduces the paper's "more flips in the output" corruption levels.
  bool ensure_x_gate = true;
  /// Also use *interior* idle windows, not just the leading region: each
  /// inserted gate is paired with its inverse inside one idle window of a
  /// wire (an in-place identity), and the split boundary later separates the
  /// two members. This is what makes Algorithm 1 applicable to
  /// interference-style circuits (Grover etc.) whose wires are all busy from
  /// layer 0. Gap pairs are single-qubit only, one wire each.
  bool allow_gap_insertion = false;
};

/// One mid-circuit insertion pair: `gate` and its inverse placed adjacently
/// after the `after_count`-th original gate on `qubit` (0 = before the first
/// gate), inside an idle window of length >= 2 so depth is unchanged.
struct GapPair {
  qir::Gate gate;
  int qubit = 0;
  int after_count = 0;
};

/// The outcome of Algorithm 1 on a circuit C: the random circuit R and a
/// placement of the sequence R^-1 . R into the *leading idle region* of C's
/// ASAP schedule, guaranteed not to increase depth.
struct InsertionPlan {
  qir::Circuit random;           ///< R, in temporal order
  /// The full inserted prefix, R^-1 followed by R (2*|R| gates).
  std::vector<qir::Gate> prefix;
  /// ASAP layer assigned to each prefix gate (within the leading region).
  std::vector<int> prefix_layers;
  /// Mid-circuit pairs (only when allow_gap_insertion is set).
  std::vector<GapPair> gap_pairs;

  /// Total gates this plan inserts (2 per R gate and 2 per gap pair).
  int inserted_gates() const {
    return static_cast<int>(prefix.size() + 2 * gap_pairs.size());
  }
};

/// Runs Algorithm 1: proposes random X/CX (or H) gates and keeps those whose
/// pair (gate + inverse) still fits the leading idle slots of `circuit`.
///
/// A prefix fits when ASAP-scheduling R^-1 . R from layer 0 places every gate
/// strictly before the first original use of each of its qubits; this is the
/// structural condition for (a) prepend-validity (no original gate precedes
/// the inserted gates on any shared wire) and (b) zero depth overhead.
InsertionPlan plan_insertion(const qir::Circuit& circuit,
                             const InsertionConfig& config, Rng& rng);

/// True if ASAP-scheduling `prefix` starting from empty frontiers places all
/// gates before `first_use` of each touched qubit; fills `layers_out` when
/// non-null. Exposed for tests.
bool prefix_fits(const std::vector<qir::Gate>& prefix,
                 const std::vector<int>& first_use,
                 std::vector<int>* layers_out);

}  // namespace tetris::lock
