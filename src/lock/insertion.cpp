#include "lock/insertion.h"

#include <algorithm>

#include "common/error.h"

namespace tetris::lock {

InsertionAlphabet parse_insertion_alphabet(const std::string& name) {
  if (name == "x") return InsertionAlphabet::XOnly;
  if (name == "cx") return InsertionAlphabet::CXOnly;
  if (name == "h") return InsertionAlphabet::Hadamard;
  if (name == "mixed") return InsertionAlphabet::Mixed;
  throw InvalidArgument("unknown alphabet '" + name +
                        "' (expected x, cx, h, or mixed)");
}

bool prefix_fits(const std::vector<qir::Gate>& prefix,
                 const std::vector<int>& first_use,
                 std::vector<int>* layers_out) {
  std::vector<int> frontier(first_use.size(), 0);
  std::vector<int> layers;
  layers.reserve(prefix.size());
  for (const auto& g : prefix) {
    int layer = 0;
    for (int q : g.qubits) {
      layer = std::max(layer, frontier[static_cast<std::size_t>(q)]);
    }
    for (int q : g.qubits) {
      // Must finish strictly before the original circuit first touches q.
      if (layer >= first_use[static_cast<std::size_t>(q)]) return false;
    }
    for (int q : g.qubits) frontier[static_cast<std::size_t>(q)] = layer + 1;
    layers.push_back(layer);
  }
  if (layers_out) *layers_out = std::move(layers);
  return true;
}

namespace {

/// Builds the prefix sequence R^-1 . R from R's gate list.
std::vector<qir::Gate> make_prefix(const std::vector<qir::Gate>& random_gates) {
  std::vector<qir::Gate> prefix;
  prefix.reserve(2 * random_gates.size());
  for (auto it = random_gates.rbegin(); it != random_gates.rend(); ++it) {
    prefix.push_back(it->adjoint());
  }
  prefix.insert(prefix.end(), random_gates.begin(), random_gates.end());
  return prefix;
}

/// Qubits that still have at least `needed` spare leading layers given the
/// number of prefix slots already consumed on them.
std::vector<int> available_qubits(const std::vector<int>& first_use,
                                  const std::vector<int>& consumed,
                                  int needed) {
  std::vector<int> out;
  for (std::size_t q = 0; q < first_use.size(); ++q) {
    if (first_use[q] - consumed[q] >= needed) out.push_back(static_cast<int>(q));
  }
  return out;
}

}  // namespace

InsertionPlan plan_insertion(const qir::Circuit& circuit,
                             const InsertionConfig& config, Rng& rng) {
  TETRIS_REQUIRE(config.max_random_gates >= 0,
                 "plan_insertion: negative gate limit");
  qir::LayerSchedule sched(circuit);
  std::vector<int> first_use(static_cast<std::size_t>(circuit.num_qubits()));
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    first_use[static_cast<std::size_t>(q)] = sched.first_use(q);
  }

  std::vector<qir::Gate> random_gates;
  // Slots already consumed per qubit by the accepted prefix (2 per R gate on
  // that qubit: the gate and its inverse).
  std::vector<int> consumed(first_use.size(), 0);
  // Classical action of R on |0...0> — used to reject candidates that would
  // make R the identity on the all-zero input (a CX flipping the X'd wire
  // back), which would mask nothing.
  std::vector<char> r_bits(first_use.size(), 0);
  const bool track_bits = config.alphabet != InsertionAlphabet::Hadamard;

  while (static_cast<int>(random_gates.size()) < config.max_random_gates) {
    bool accepted = false;
    for (int attempt = 0; attempt < config.attempts_per_gate; ++attempt) {
      auto avail = available_qubits(first_use, consumed, 2);
      if (avail.empty()) break;

      bool want_cx = false;
      switch (config.alphabet) {
        case InsertionAlphabet::XOnly:
        case InsertionAlphabet::Hadamard:
          want_cx = false;
          break;
        case InsertionAlphabet::CXOnly:
          want_cx = true;
          break;
        case InsertionAlphabet::Mixed:
          want_cx = rng.bernoulli(config.cx_probability);
          if (config.ensure_x_gate && random_gates.empty()) want_cx = false;
          break;
      }

      qir::Gate candidate;
      if (want_cx && avail.size() >= 2) {
        std::size_t i = rng.index(avail.size());
        std::size_t j = rng.index(avail.size() - 1);
        if (j >= i) ++j;
        candidate = qir::make_cx(avail[i], avail[j]);
      } else if (config.alphabet == InsertionAlphabet::CXOnly) {
        break;  // CX-only but fewer than two available qubits
      } else if (config.alphabet == InsertionAlphabet::Hadamard) {
        candidate = qir::make_h(avail[rng.index(avail.size())]);
      } else {
        candidate = qir::make_x(avail[rng.index(avail.size())]);
      }

      // Keep R non-trivial on the all-zero input: applying the candidate
      // must not return R|0...0> to |0...0>.
      std::vector<char> new_bits = r_bits;
      if (track_bits) {
        if (candidate.kind == qir::GateKind::X) {
          new_bits[static_cast<std::size_t>(candidate.qubits[0])] ^= 1;
        } else if (candidate.kind == qir::GateKind::CX &&
                   new_bits[static_cast<std::size_t>(candidate.qubits[0])]) {
          new_bits[static_cast<std::size_t>(candidate.qubits[1])] ^= 1;
        }
        bool any_set = false;
        for (char b : new_bits) any_set = any_set || b;
        if (!random_gates.empty() && !any_set) continue;  // would mask nothing
      }

      auto trial = random_gates;
      trial.push_back(candidate);
      auto prefix = make_prefix(trial);
      if (prefix_fits(prefix, first_use, nullptr)) {
        random_gates = std::move(trial);
        r_bits = std::move(new_bits);
        for (int q : candidate.qubits) {
          consumed[static_cast<std::size_t>(q)] += 2;
        }
        accepted = true;
        break;
      }
    }
    if (!accepted) break;  // no proposal fits any more
  }

  InsertionPlan plan;
  plan.random = qir::Circuit(circuit.num_qubits(), "R");
  for (const auto& g : random_gates) plan.random.add(g);
  plan.prefix = make_prefix(random_gates);
  bool fits = prefix_fits(plan.prefix, first_use, &plan.prefix_layers);
  TETRIS_REQUIRE(fits, "plan_insertion: accepted prefix no longer fits");

  // Optional mid-circuit gap pairs for the remaining budget.
  if (config.allow_gap_insertion &&
      config.alphabet != InsertionAlphabet::CXOnly) {
    int budget = config.max_random_gates -
                 static_cast<int>(random_gates.size());
    if (budget > 0) {
      // Interior (and trailing) idle windows of length >= 2, one per wire,
      // on wires not already used by the leading prefix.
      std::vector<char> wire_used(first_use.size(), 0);
      for (const auto& g : random_gates) {
        for (int q : g.qubits) wire_used[static_cast<std::size_t>(q)] = 1;
      }
      struct Window {
        int qubit;
        int after_count;
      };
      std::vector<Window> windows;
      for (int q = 0; q < circuit.num_qubits(); ++q) {
        if (wire_used[static_cast<std::size_t>(q)]) continue;
        // Busy layers of wire q in increasing order.
        std::vector<int> busy;
        for (std::size_t i = 0; i < circuit.size(); ++i) {
          const auto& g = circuit.gate(i);
          if (g.kind == qir::GateKind::Barrier) continue;
          for (int gq : g.qubits) {
            if (gq == q) busy.push_back(sched.layer_of(i));
          }
        }
        for (std::size_t k = 0; k + 1 < busy.size(); ++k) {
          if (busy[k + 1] - busy[k] - 1 >= 2) {
            windows.push_back({q, static_cast<int>(k) + 1});
            break;  // one window per wire is enough
          }
        }
        if (!busy.empty() && sched.num_layers() - 1 - busy.back() >= 2) {
          windows.push_back({q, static_cast<int>(busy.size())});
        }
      }
      rng.shuffle(windows);
      std::vector<char> gap_wire_used(first_use.size(), 0);
      for (const auto& w : windows) {
        if (budget <= 0) break;
        if (gap_wire_used[static_cast<std::size_t>(w.qubit)]) continue;
        gap_wire_used[static_cast<std::size_t>(w.qubit)] = 1;
        qir::Gate g = config.alphabet == InsertionAlphabet::Hadamard
                          ? qir::make_h(w.qubit)
                          : qir::make_x(w.qubit);
        plan.gap_pairs.push_back({g, w.qubit, w.after_count});
        plan.random.add(g);
        --budget;
      }
    }
  }
  return plan;
}

}  // namespace tetris::lock
