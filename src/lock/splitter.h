#pragma once

#include <vector>

#include "common/rng.h"
#include "lock/obfuscator.h"
#include "qir/circuit.h"

namespace tetris::lock {

/// One split: a compressed circuit (only the qubits it actually touches) and
/// the designer-private map back to the obfuscated register.
struct Split {
  qir::Circuit circuit;             ///< register width = #used qubits
  std::vector<int> local_to_orig;   ///< local qubit -> obfuscated-circuit qubit
  std::vector<std::size_t> gate_indices;  ///< into ObfuscatedCircuit::circuit

  int orig_to_local(int orig_qubit) const;  ///< -1 when not present
};

/// The interlocking split pair: first = R^-1 | Cl, second = R | Cr.
struct SplitPair {
  Split first;
  Split second;
};

/// Configuration of the jagged (Tetris) boundary.
struct SplitConfig {
  /// Probability that a non-R qubit receives a nonzero cut depth (i.e. that
  /// some of its original gates interlock into the first split).
  double interlock_fraction = 0.75;
  /// Upper bound on the per-qubit cut layer as a fraction of circuit depth.
  double max_cut_depth_fraction = 0.6;
};

/// TetrisLock step 2: cuts the obfuscated circuit along a per-qubit jagged
/// boundary into two interdependent splits.
///
/// Correctness is structural (validated on every call, throws LockError):
///  I1. the two splits partition the gates;
///  I2. the first split's gate set is an order ideal of the circuit DAG
///      (so concatenating first . second preserves per-wire gate order);
///  I3. every R^-1 gate is in the first split, every R gate in the second;
///  I4. the first split's *original* gates (Cl) act only on qubits disjoint
///      from R's support, which makes Cl commute with R^-1 and R, so
///      first . second = R^-1 Cl R Cr  ~  Cl Cr = C.
/// Under I1-I4 the recombined pair is functionally the original circuit.
class InterlockSplitter {
 public:
  explicit InterlockSplitter(SplitConfig config = {});

  SplitPair split(const ObfuscatedCircuit& obf, Rng& rng) const;

  /// Re-expands both splits to the full register and concatenates them —
  /// the structural recombination used before compilation-aware recombining.
  static qir::Circuit recombine_structural(const SplitPair& pair,
                                           int num_qubits);

  /// Checks invariants I1-I4 (also run internally by split()).
  static void validate(const ObfuscatedCircuit& obf, const SplitPair& pair);

  const SplitConfig& config() const { return config_; }

 private:
  SplitConfig config_;
};

}  // namespace tetris::lock
