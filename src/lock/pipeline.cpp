#include "lock/pipeline.h"

#include <chrono>
#include <utility>

#include "common/error.h"
#include "metrics/metrics.h"
#include "service/service.h"
#include "sim/sampler.h"

namespace tetris::lock {

namespace {

/// Maps the measured original qubits through a logical->physical layout.
std::vector<int> map_measured(const std::vector<int>& measured,
                              const std::vector<int>& orig_to_phys) {
  std::vector<int> out;
  out.reserve(measured.size());
  for (int o : measured) {
    TETRIS_REQUIRE(o >= 0 && o < static_cast<int>(orig_to_phys.size()),
                   "map_measured: qubit out of range");
    out.push_back(orig_to_phys[static_cast<std::size_t>(o)]);
  }
  return out;
}

}  // namespace

FlowResult run_flow(const qir::Circuit& circuit,
                    const std::vector<int>& measured,
                    const compiler::Target& target, const FlowConfig& config,
                    Rng& rng, obs::Trace* trace) {
  FlowResult result;

  // --- Designer side: obfuscate and split. ---
  {
    obs::ScopedSpan span(trace, "lock.obfuscate");
    span.attr("qubits", static_cast<std::uint64_t>(circuit.num_qubits()))
        .attr("gates", static_cast<std::uint64_t>(circuit.gate_count()));
    Obfuscator obfuscator(config.insertion);
    result.obf = obfuscator.obfuscate(circuit, rng);
  }

  {
    obs::ScopedSpan span(trace, "lock.split");
    span.attr("gates",
              static_cast<std::uint64_t>(result.obf.circuit.gate_count()));
    InterlockSplitter splitter(config.split);
    result.splits = splitter.split(result.obf, rng);
  }

  // --- Untrusted compilers. Two independent instances; the second one's
  //     initial layout is pinned by the designer during de-obfuscation. ---
  compiler::CompileOptions first_options{target,
                                         compiler::LayoutStrategy::GreedyDegree,
                                         /*run_optimizer=*/true,
                                         std::nullopt};
  compiler::CompileOptions second_options{target,
                                          compiler::LayoutStrategy::Trivial,
                                          /*run_optimizer=*/true,
                                          std::nullopt};
  {
    obs::ScopedSpan span(trace, "lock.recombine");
    Deobfuscator deob;
    result.recombined =
        deob.run(result.splits, circuit.num_qubits(), first_options,
                 second_options);
  }

  // --- Reference compilation of the unprotected circuit. ---
  {
    obs::ScopedSpan span(trace, "compile");
    span.attr("gates", static_cast<std::uint64_t>(circuit.gate_count()));
    compiler::Compiler baseline_compiler(first_options);
    result.baseline = baseline_compiler.compile(circuit);
  }

  // --- Size metrics. ---
  result.depth_original = circuit.depth();
  result.depth_obfuscated = result.obf.circuit.depth();
  result.gates_original = circuit.gate_count();
  result.gates_obfuscated = result.obf.circuit.gate_count();

  // --- Simulation metrics. ---
  // Reference distribution. A classical circuit (every RevLib benchmark)
  // has a point-mass reference at its deterministic outcome, computed by
  // bit propagation — the permutation kernels keep amplitudes exactly 0/1,
  // so this equals ideal_distribution bit for bit where both exist, and
  // unlike it stays available at 50+ qubits where no 2^n statevector fits.
  std::map<std::string, double> reference;
  std::string correct;
  {
    obs::ScopedSpan span(trace, "sim.reference");
    span.attr("classical", circuit.is_classical() ? "1" : "0");
    if (circuit.is_classical()) {
      correct = sim::classical_outcome(circuit, measured);
      reference[correct] = 1.0;
    } else {
      reference = sim::ideal_distribution(circuit, measured);
    }
  }

  sim::SampleOptions opts;
  opts.shots = config.shots;
  // Shots shard over the pool this flow executes on (see SampleOptions);
  // the counts are bit-identical at any fan-out.
  opts.threads = config.sample_threads;
  // Gate fusion applies only to the sampled runs; the ideal reference
  // distribution above stays unfused so the exact reference never moves.
  opts.fuse = config.fusion;
  // Resolve kAuto once, against the source circuit: the compiled views are
  // Clifford exactly when the source is (the compiler's {X, SX, RZ, CX}
  // output stays on the quarter-turn lattice and every insertion alphabet
  // is Clifford), so one engine consistently serves all three runs below —
  // and it is the same engine service::flow_fingerprint keys on.
  opts.backend = sim::resolve_backend(config.backend, circuit);

  // One sim.sample span per sampled view; the fusion pass runs inside
  // sim::sample, so it shows up as the `fused` attribute here rather than as
  // a separate sim.fuse span.
  auto sample_span = [&](const char* view) {
    obs::ScopedSpan span(trace, "sim.sample");
    span.attr("view", view)
        .attr("shots", static_cast<std::uint64_t>(opts.shots))
        .attr("backend", sim::backend_kind_name(opts.backend))
        .attr("fused", opts.fuse ? "1" : "0");
    return span;
  };

  // Obfuscated view: the masked circuit R.C an adversary would run, compiled
  // on the same backend (paper Sec. V-C).
  {
    auto span = sample_span("obfuscated");
    compiler::Compiler masked_compiler(first_options);
    auto compiled_masked = masked_compiler.compile(result.obf.masked());
    opts.measured = map_measured(measured, compiled_masked.final_layout);
    auto counts = sim::sample(compiled_masked.circuit, target.noise, rng, opts);
    result.tvd_obfuscated = metrics::tvd(counts, reference);
  }

  // Restored view: the recombined split-compiled circuit.
  {
    auto span = sample_span("restored");
    opts.measured = map_measured(measured, result.recombined.orig_to_phys);
    auto counts =
        sim::sample(result.recombined.circuit, target.noise, rng, opts);
    result.tvd_restored = metrics::tvd(counts, reference);
    if (!correct.empty()) {
      result.accuracy_restored = metrics::accuracy(counts, correct);
    }
  }

  // Baseline accuracy of the unprotected compiled circuit.
  {
    auto span = sample_span("baseline");
    opts.measured = map_measured(measured, result.baseline.final_layout);
    auto counts = sim::sample(result.baseline.circuit, target.noise, rng, opts);
    if (!correct.empty()) {
      result.accuracy_original = metrics::accuracy(counts, correct);
    }
  }

  return result;
}

FlowJob make_flow_job(std::string name, qir::Circuit circuit,
                      std::vector<int> measured, FlowConfig config) {
  FlowJob job;
  compiler::DeviceSelection sel =
      compiler::device_for_checked(circuit.num_qubits());
  job.target = std::move(sel.target);
  if (sel.fallback) job.warnings.push_back(std::move(sel.note));
  if (measured.empty()) {
    measured.reserve(static_cast<std::size_t>(circuit.num_qubits()));
    for (int q = 0; q < circuit.num_qubits(); ++q) measured.push_back(q);
  }
  job.name = std::move(name);
  job.circuit = std::move(circuit);
  job.measured = std::move(measured);
  job.config = config;
  return job;
}

FlowBatchResult run_flow_batch(const std::vector<FlowJob>& jobs,
                               std::uint64_t base_seed,
                               unsigned num_threads) {
  // Compatibility wrapper over the service facade. submit_all derives job
  // i's seed as Rng::stream_seed(base_seed, i) — the exact stream derivation
  // this function has always used — so results are bit-identical to the
  // pre-service implementation. The cache is off: callers of the legacy API
  // expect every job to actually run.
  service::ServiceConfig config;
  config.num_threads = num_threads;
  config.base_seed = base_seed;
  config.cache_capacity = 0;
  service::Service svc(config);

  const auto start = std::chrono::steady_clock::now();
  svc.submit_all(jobs);
  auto outcomes = svc.wait_all();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  FlowBatchResult batch;
  batch.items.resize(jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    FlowBatchItem& item = batch.items[i];
    item.name = jobs[i].name;
    item.ok = outcomes[i].state == service::JobState::kDone;
    item.error = outcomes[i].status.message;
    item.seconds = outcomes[i].seconds;
    if (item.ok) item.result = std::move(outcomes[i].result);
    if (!item.ok) ++batch.failures;
  }
  batch.wall_seconds = wall;
  batch.circuits_per_second =
      wall > 0.0 ? static_cast<double>(jobs.size()) / wall : 0.0;
  return batch;
}

}  // namespace tetris::lock
