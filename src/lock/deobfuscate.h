#pragma once

#include <vector>

#include "compiler/compiler.h"
#include "lock/splitter.h"

namespace tetris::lock {

/// One compiled split plus the designer-side qubit map.
struct CompiledSplit {
  compiler::CompileResult result;
  std::vector<int> local_to_orig;  ///< split-local qubit -> original qubit
};

/// The recombined, hardware-ready circuit.
struct RecombinedCircuit {
  qir::Circuit circuit;            ///< physical register of the target
  /// Physical wire holding each original qubit when the circuit ends —
  /// what the designer measures.
  std::vector<int> orig_to_phys;
  CompiledSplit first;
  CompiledSplit second;
};

/// TetrisLock step 3: split compilation + de-obfuscation.
///
/// Each split is handed to its own untrusted-compiler instance. The designer
/// (who holds the split metadata) pins the second compilation's initial
/// layout so that every shared original qubit starts exactly on the physical
/// wire where the first compiled split left it; unshared qubits are pinned to
/// wires that are still |0> after the first split. Concatenating the two
/// compiled circuits then restores the original functionality with no extra
/// permutation stage.
class Deobfuscator {
 public:
  /// `first_options` / `second_options` model two distinct third-party
  /// compilers; their `initial_layout` fields are overwritten for the second
  /// split (that is the designer's knob).
  RecombinedCircuit run(const SplitPair& pair, int num_original_qubits,
                        const compiler::CompileOptions& first_options,
                        compiler::CompileOptions second_options) const;
};

}  // namespace tetris::lock
