#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compiler/compiler.h"
#include "compiler/target.h"
#include "lock/deobfuscate.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "obs/trace.h"
#include "qir/circuit.h"
#include "sim/backend/backend.h"

namespace tetris::lock {

/// Knobs of one end-to-end TetrisLock run.
struct FlowConfig {
  InsertionConfig insertion;
  SplitConfig split;
  std::size_t shots = 1000;  ///< paper: 1000 shots per simulation
  /// Worker fan-out of each sim::sample call inside the flow (see
  /// SampleOptions::threads): 0 shards shots over the pool the flow is
  /// executing on — inside service::Service that is the service pool, so
  /// sampler helpers fill idle workers instead of oversubscribing — and 1
  /// pins the samplers serial. Counts are bit-identical at any value, so
  /// this knob is excluded from service::flow_fingerprint (a cached result
  /// is valid whatever fan-out computed it).
  unsigned sample_threads = 0;
  /// Fuse adjacent gates into combined statevector kernels
  /// (sim/fusion.h) in the noisy verification's ideal runs — CLI `--fuse`.
  /// Off by default: fused kernels reorder floating-point arithmetic, so
  /// sampled metrics are tolerance-equal, not bit-identical, to the
  /// unfused path. Unlike sample_threads this knob IS part of
  /// service::flow_fingerprint, because it can change the result.
  bool fusion = false;
  /// Simulation engine of the flow's sampled runs — CLI `--backend`. kAuto
  /// is resolved ONCE against the source circuit (sim::resolve_backend) and
  /// the resolved engine then serves all three sampled views, so one flow
  /// never mixes engines. The default resolves to the statevector for every
  /// circuit it can hold (bit-identical to the pre-backend pipeline); wide
  /// Clifford circuits resolve to the stabilizer tableau engine, the
  /// 50+-qubit verification path. Part of service::flow_fingerprint
  /// whenever it resolves off the statevector default.
  sim::BackendKind backend = sim::BackendKind::kAuto;
};

/// Everything one TetrisLock iteration produces: artifacts and the metrics
/// Table I / Figure 4 report.
struct FlowResult {
  ObfuscatedCircuit obf;
  SplitPair splits;
  RecombinedCircuit recombined;
  compiler::CompileResult baseline;  ///< C compiled directly (no locking)

  // Size metrics (Table I columns).
  int depth_original = 0;
  int depth_obfuscated = 0;
  std::size_t gates_original = 0;
  std::size_t gates_obfuscated = 0;

  // Fidelity metrics.
  double tvd_obfuscated = 0.0;  ///< masked R.C vs ideal output (Fig. 4 left)
  double tvd_restored = 0.0;    ///< recombined vs ideal output (Fig. 4 right)
  double accuracy_original = 0.0;  ///< compiled C, noisy backend
  double accuracy_restored = 0.0;  ///< recombined splits, noisy backend
};

/// Runs the full flow on one circuit:
///   obfuscate -> interlock-split -> split-compile (2 untrusted compilers)
///   -> recombine -> simulate with the target's noise model.
/// `measured` lists the circuit's output qubits (register order).
///
/// `trace`, when non-null, receives one obs::Span per stage
/// (`lock.obfuscate`, `lock.split`, `lock.recombine`, `compile`,
/// `sim.reference`, `sim.sample` x3) with size/shots/backend attributes —
/// see docs/OBSERVABILITY.md for the taxonomy. Tracing is observation only:
/// it never feeds back into the computation, so results are bit-identical
/// with or without it.
FlowResult run_flow(const qir::Circuit& circuit,
                    const std::vector<int>& measured,
                    const compiler::Target& target, const FlowConfig& config,
                    Rng& rng, obs::Trace* trace = nullptr);

/// One job of a batch run: a named circuit plus its flow knobs.
struct FlowJob {
  std::string name;
  qir::Circuit circuit;
  std::vector<int> measured;  ///< output qubits, register order
  compiler::Target target;
  FlowConfig config;
  /// Setup caveats attached at job-construction time (e.g. the
  /// device_for_checked ring-topology fallback past the preset band). The
  /// service copies them into JobOutcome::warnings so batch JSON surfaces
  /// them; an empty vector adds nothing to the serialized schema.
  std::vector<std::string> warnings;
};

/// Convenience: a job for `circuit` on the device `device_for_checked`
/// picks, with all qubits measured when `measured` is empty. When the
/// selection falls back past the preset band, the note lands in
/// `FlowJob::warnings` instead of being dropped.
FlowJob make_flow_job(std::string name, qir::Circuit circuit,
                      std::vector<int> measured = {}, FlowConfig config = {});

/// Per-job outcome of `run_flow_batch`.
struct FlowBatchItem {
  std::string name;
  bool ok = false;
  std::string error;     ///< exception message when !ok
  double seconds = 0.0;  ///< this job's own wall time
  FlowResult result;     ///< valid only when ok
};

/// Batch outcome: per-job items (in job order) plus aggregate throughput.
struct FlowBatchResult {
  std::vector<FlowBatchItem> items;
  std::size_t failures = 0;
  double wall_seconds = 0.0;
  double circuits_per_second = 0.0;
};

/// Runs every job through `run_flow`, concurrently on `num_threads` workers
/// (0 = the shared global pool). Job i's RNG is derived from (base_seed, i)
/// via `Rng::for_stream`, so each job's result is bit-identical whatever the
/// thread count or completion order; a failing job is reported in its item
/// and does not disturb its siblings.
///
/// Compatibility wrapper: this is now a thin blocking shim over
/// `service::Service` (submit_all + wait_all with the cache disabled), which
/// is the preferred programmatic API — it adds async submission, polling,
/// streaming drain, result caching, and structured status codes.
FlowBatchResult run_flow_batch(const std::vector<FlowJob>& jobs,
                               std::uint64_t base_seed,
                               unsigned num_threads = 0);

}  // namespace tetris::lock
