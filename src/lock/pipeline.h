#pragma once

#include <cstddef>

#include "common/rng.h"
#include "compiler/compiler.h"
#include "lock/deobfuscate.h"
#include "lock/obfuscator.h"
#include "lock/splitter.h"
#include "qir/circuit.h"

namespace tetris::lock {

/// Knobs of one end-to-end TetrisLock run.
struct FlowConfig {
  InsertionConfig insertion;
  SplitConfig split;
  std::size_t shots = 1000;  ///< paper: 1000 shots per simulation
};

/// Everything one TetrisLock iteration produces: artifacts and the metrics
/// Table I / Figure 4 report.
struct FlowResult {
  ObfuscatedCircuit obf;
  SplitPair splits;
  RecombinedCircuit recombined;
  compiler::CompileResult baseline;  ///< C compiled directly (no locking)

  // Size metrics (Table I columns).
  int depth_original = 0;
  int depth_obfuscated = 0;
  std::size_t gates_original = 0;
  std::size_t gates_obfuscated = 0;

  // Fidelity metrics.
  double tvd_obfuscated = 0.0;  ///< masked R.C vs ideal output (Fig. 4 left)
  double tvd_restored = 0.0;    ///< recombined vs ideal output (Fig. 4 right)
  double accuracy_original = 0.0;  ///< compiled C, noisy backend
  double accuracy_restored = 0.0;  ///< recombined splits, noisy backend
};

/// Runs the full flow on one circuit:
///   obfuscate -> interlock-split -> split-compile (2 untrusted compilers)
///   -> recombine -> simulate with the target's noise model.
/// `measured` lists the circuit's output qubits (register order).
FlowResult run_flow(const qir::Circuit& circuit,
                    const std::vector<int>& measured,
                    const compiler::Target& target, const FlowConfig& config,
                    Rng& rng);

}  // namespace tetris::lock
