#pragma once

#include <vector>

#include "qir/circuit.h"

namespace tetris::qir {

/// Dependency DAG of a circuit.
///
/// Gate j is a direct successor of gate i when they share a qubit and no gate
/// between them touches that qubit — the usual "qubit wire" dependency used
/// by transpilers. The splitter uses this to verify/construct *order ideals*
/// (downward-closed gate sets), which is the structural condition that makes
/// an interlocking split recombine to the original function.
class CircuitDag {
 public:
  explicit CircuitDag(const Circuit& circuit);

  std::size_t num_gates() const { return preds_.size(); }

  /// Direct predecessors of gate i (sorted ascending).
  const std::vector<std::size_t>& predecessors(std::size_t i) const;

  /// Direct successors of gate i (sorted ascending).
  const std::vector<std::size_t>& successors(std::size_t i) const;

  /// True if `members` (as a characteristic vector over gate indices) is
  /// downward closed: every predecessor of a member is a member.
  bool is_order_ideal(const std::vector<char>& members) const;

  /// Smallest order ideal containing `seed` (transitive predecessor closure).
  std::vector<char> downward_closure(const std::vector<char>& seed) const;

  /// Largest order ideal contained in `seed`: repeatedly drops members that
  /// have a non-member predecessor. Always terminates; may return all-false.
  std::vector<char> largest_ideal_within(const std::vector<char>& seed) const;

  /// Gate indices in topological order (original order is already one).
  std::vector<std::size_t> topological_order() const;

 private:
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::vector<std::size_t>> succs_;
};

}  // namespace tetris::qir
