#include "qir/layers.h"

#include <algorithm>

#include "common/error.h"

namespace tetris::qir {

LayerSchedule::LayerSchedule(const Circuit& circuit)
    : num_qubits_(circuit.num_qubits()) {
  const auto& gates = circuit.gates();
  gate_layer_.assign(gates.size(), 0);

  std::vector<int> frontier(static_cast<std::size_t>(num_qubits_), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.kind == GateKind::Barrier) {
      int mx = 0;
      for (int q : g.qubits) mx = std::max(mx, frontier[static_cast<std::size_t>(q)]);
      for (int q : g.qubits) frontier[static_cast<std::size_t>(q)] = mx;
      gate_layer_[i] = mx;  // informational only
      continue;
    }
    int layer = 0;
    for (int q : g.qubits) layer = std::max(layer, frontier[static_cast<std::size_t>(q)]);
    gate_layer_[i] = layer;
    for (int q : g.qubits) frontier[static_cast<std::size_t>(q)] = layer + 1;
    num_layers_ = std::max(num_layers_, layer + 1);
  }

  by_layer_.assign(static_cast<std::size_t>(num_layers_), {});
  busy_.assign(static_cast<std::size_t>(num_layers_),
               std::vector<char>(static_cast<std::size_t>(num_qubits_), 0));
  first_use_.assign(static_cast<std::size_t>(num_qubits_), num_layers_);
  last_use_.assign(static_cast<std::size_t>(num_qubits_), -1);

  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.kind == GateKind::Barrier) continue;
    int layer = gate_layer_[i];
    by_layer_[static_cast<std::size_t>(layer)].push_back(i);
    for (int q : g.qubits) {
      busy_[static_cast<std::size_t>(layer)][static_cast<std::size_t>(q)] = 1;
      auto uq = static_cast<std::size_t>(q);
      first_use_[uq] = std::min(first_use_[uq], layer);
      last_use_[uq] = std::max(last_use_[uq], layer);
    }
  }
}

int LayerSchedule::layer_of(std::size_t gate_index) const {
  TETRIS_REQUIRE(gate_index < gate_layer_.size(), "layer_of: index out of range");
  return gate_layer_[gate_index];
}

const std::vector<std::size_t>& LayerSchedule::gates_in_layer(int layer) const {
  TETRIS_REQUIRE(layer >= 0 && layer < num_layers_, "gates_in_layer: bad layer");
  return by_layer_[static_cast<std::size_t>(layer)];
}

bool LayerSchedule::busy(int layer, int q) const {
  TETRIS_REQUIRE(layer >= 0 && layer < num_layers_, "busy: bad layer");
  TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "busy: bad qubit");
  return busy_[static_cast<std::size_t>(layer)][static_cast<std::size_t>(q)] != 0;
}

std::vector<Slot> LayerSchedule::empty_slots() const {
  std::vector<Slot> out;
  for (int l = 0; l < num_layers_; ++l) {
    for (int q = 0; q < num_qubits_; ++q) {
      if (!busy(l, q)) out.push_back({l, q});
    }
  }
  return out;
}

std::vector<int> LayerSchedule::empty_qubits_in_layer(int layer) const {
  std::vector<int> out;
  for (int q = 0; q < num_qubits_; ++q) {
    if (!busy(layer, q)) out.push_back(q);
  }
  return out;
}

int LayerSchedule::first_use(int q) const {
  TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "first_use: bad qubit");
  return first_use_[static_cast<std::size_t>(q)];
}

int LayerSchedule::last_use(int q) const {
  TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "last_use: bad qubit");
  return last_use_[static_cast<std::size_t>(q)];
}

std::size_t LayerSchedule::total_slack() const {
  std::size_t count = 0;
  for (int l = 0; l < num_layers_; ++l) {
    for (int q = 0; q < num_qubits_; ++q) {
      if (!busy(l, q)) ++count;
    }
  }
  return count;
}

}  // namespace tetris::qir
