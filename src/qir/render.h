#pragma once

#include <string>

#include "qir/circuit.h"

namespace tetris::qir {

/// Renders a circuit as ASCII art, one row per qubit and one column per ASAP
/// layer — the same picture as the paper's Figures 2 and 3, which makes the
/// interlocking split boundary visible in example/bench output.
///
/// Example (4mod5):
///   q0: ─────■──────X──
///   q1: ─────■─────────
///   ...
/// Controls are '■', CX/CCX/MCX targets are '⊕' (ASCII fallback: '*' / '+').
/// `ascii_only` avoids multi-byte glyphs for plain terminals/logs.
std::string render(const Circuit& circuit, bool ascii_only = true);

}  // namespace tetris::qir
