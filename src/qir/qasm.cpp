#include "qir/qasm.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace tetris::qir {

namespace {

std::string qasm_gate_name(const Gate& g) {
  switch (g.kind) {
    case GateKind::MCX: {
      int controls = g.num_qubits() - 1;
      if (controls == 3) return "c3x";
      if (controls == 4) return "c4x";
      throw InvalidArgument(
          "to_qasm: mcx with " + std::to_string(controls) +
          " controls has no qelib name; run DecomposePass first");
    }
    case GateKind::I:
      return "id";
    default:
      return g.name();
  }
}

std::string format_angle(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (!circuit.name().empty()) os << "// " << circuit.name() << "\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::Barrier) {
      os << "barrier q;\n";
      continue;
    }
    os << qasm_gate_name(g);
    if (!g.params.empty()) {
      os << "(";
      for (std::size_t i = 0; i < g.params.size(); ++i) {
        if (i) os << ",";
        os << format_angle(g.params[i]);
      }
      os << ")";
    }
    os << " ";
    for (std::size_t i = 0; i < g.qubits.size(); ++i) {
      if (i) os << ",";
      os << "q[" << g.qubits[i] << "]";
    }
    os << ";\n";
  }
  return os.str();
}

namespace {

int parse_qubit_operand(const std::string& tok, int line_no) {
  auto lb = tok.find('[');
  auto rb = tok.find(']');
  if (lb == std::string::npos || rb == std::string::npos || rb < lb) {
    throw ParseError("qasm line " + std::to_string(line_no) +
                     ": bad qubit operand '" + tok + "'");
  }
  try {
    return std::stoi(tok.substr(lb + 1, rb - lb - 1));
  } catch (const std::exception&) {
    throw ParseError("qasm line " + std::to_string(line_no) +
                     ": bad qubit index in '" + tok + "'");
  }
}

GateKind kind_from_qasm_name(const std::string& name, int line_no) {
  if (name == "c3x" || name == "c4x") return GateKind::MCX;
  try {
    return gate_kind_from_name(name);
  } catch (const ParseError&) {
    throw ParseError("qasm line " + std::to_string(line_no) +
                     ": unsupported gate '" + name + "'");
  }
}

}  // namespace

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  int num_qubits = -1;
  std::string pending_name;
  Circuit circuit;
  bool have_circuit = false;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments, keep a leading name comment if present.
    auto slashes = line.find("//");
    if (slashes != std::string::npos) {
      std::string comment = trim(line.substr(slashes + 2));
      if (!comment.empty() && num_qubits < 0) pending_name = comment;
      line = line.substr(0, slashes);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "OPENQASM") || starts_with(line, "include")) continue;
    if (starts_with(line, "creg")) continue;  // classical registers ignored

    if (!line.empty() && line.back() == ';') line.pop_back();
    line = trim(line);
    if (line.empty()) continue;

    if (starts_with(line, "qreg")) {
      TETRIS_REQUIRE(num_qubits < 0, "from_qasm: only one qreg supported");
      auto lb = line.find('[');
      auto rb = line.find(']');
      if (lb == std::string::npos || rb == std::string::npos) {
        throw ParseError("qasm line " + std::to_string(line_no) + ": bad qreg");
      }
      num_qubits = std::stoi(line.substr(lb + 1, rb - lb - 1));
      circuit = Circuit(num_qubits, pending_name);
      have_circuit = true;
      continue;
    }

    if (!have_circuit) {
      throw ParseError("qasm line " + std::to_string(line_no) +
                       ": gate before qreg declaration");
    }

    if (starts_with(line, "measure")) continue;  // terminal measures ignored

    // gate name, optional (params), operands separated by commas.
    std::string head = line;
    std::vector<double> params;
    auto lp = line.find('(');
    std::string rest;
    if (lp != std::string::npos) {
      auto rp = line.find(')', lp);
      if (rp == std::string::npos) {
        throw ParseError("qasm line " + std::to_string(line_no) +
                         ": unterminated parameter list");
      }
      head = trim(line.substr(0, lp));
      for (const auto& p : split_char(line.substr(lp + 1, rp - lp - 1), ',')) {
        try {
          params.push_back(std::stod(trim(p)));
        } catch (const std::exception&) {
          throw ParseError("qasm line " + std::to_string(line_no) +
                           ": bad angle '" + p + "'");
        }
      }
      rest = trim(line.substr(rp + 1));
    } else {
      auto ws = line.find_first_of(" \t");
      if (ws == std::string::npos) {
        throw ParseError("qasm line " + std::to_string(line_no) +
                         ": gate with no operands");
      }
      head = trim(line.substr(0, ws));
      rest = trim(line.substr(ws));
    }

    if (head == "barrier") {
      circuit.barrier();
      continue;
    }

    GateKind kind = kind_from_qasm_name(to_lower(head), line_no);
    std::vector<int> qubits;
    for (const auto& tok : split_char(rest, ',')) {
      qubits.push_back(parse_qubit_operand(trim(tok), line_no));
    }
    circuit.add(Gate(kind, std::move(qubits), std::move(params)));
  }

  TETRIS_REQUIRE(have_circuit, "from_qasm: missing qreg declaration");
  return circuit;
}

}  // namespace tetris::qir
