#pragma once

#include "common/rng.h"
#include "qir/circuit.h"

namespace tetris::qir::library {

/// Standard circuit constructors used by the examples, the Hadamard-alphabet
/// obfuscation path (the paper prescribes H insertion for interference-style
/// circuits like Grover), and the fuzz test-suites.

/// GHZ state preparation: H on qubit 0, CX ladder.
Circuit ghz(int n);

/// Quantum Fourier transform on n qubits (with the final qubit-reversal
/// swaps), built from H and controlled-phase gates.
Circuit qft(int n);

/// Grover search over n qubits for the computational basis state `marked`,
/// running `iterations` oracle+diffuser rounds. `marked < 2^n`.
Circuit grover(int n, std::size_t marked, int iterations);

/// The number of Grover iterations that maximises the success probability
/// for an n-qubit search (floor(pi/4 * sqrt(2^n))).
int grover_optimal_iterations(int n);

/// Bernstein-Vazirani for the given secret bitstring (one circuit qubit per
/// secret bit plus one ancilla, which is the last qubit). Measuring the
/// first n qubits yields the secret with probability 1.
Circuit bernstein_vazirani(const std::vector<int>& secret_bits);

/// Cuccaro-style ripple-carry adder: computes b <- a + b (mod 2^bits) with a
/// carry-out. Register layout: qubit 0 = incoming carry (|0>),
/// qubits 1..bits = a, qubits bits+1..2*bits = b, last qubit = carry out.
Circuit ripple_carry_adder(int bits);

/// Helper: register width of ripple_carry_adder(bits).
int ripple_carry_adder_width(int bits);

/// Uniformly random reversible circuit from the {X, CX, CCX} alphabet.
Circuit random_reversible(int n, int gates, Rng& rng);

/// Random circuit over {H, S, T, RZ, X, CX} — used to fuzz the compiler on
/// non-classical inputs.
Circuit random_universal(int n, int gates, Rng& rng);

}  // namespace tetris::qir::library
