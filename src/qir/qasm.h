#pragma once

#include <string>

#include "qir/circuit.h"

namespace tetris::qir {

/// Minimal OpenQASM 2.0 interchange.
///
/// The writer emits a self-contained program (`OPENQASM 2.0; include
/// "qelib1.inc";` header, one `qreg`). Multi-controlled X gates with 3 or 4
/// controls are written as `c3x`/`c4x` (qelib1.inc names); larger fan-in must
/// be decomposed first (compiler::DecomposePass does this).
///
/// The reader accepts the subset the writer produces, which is also enough to
/// ingest circuits exported from Qiskit for the RevLib benchmark class.
/// Unsupported constructs raise ParseError with a line number.

/// Serializes `circuit` to an OpenQASM 2.0 string.
std::string to_qasm(const Circuit& circuit);

/// Parses an OpenQASM 2.0 string (subset; see header comment).
Circuit from_qasm(const std::string& text);

}  // namespace tetris::qir
