#pragma once

#include <string>
#include <vector>

namespace tetris::qir {

/// The gate alphabet of the IR.
///
/// Controls always precede targets in Gate::qubits. The set covers everything
/// the RevLib benchmarks need (X/CX/CCX/MCX Toffoli family, Fredkin), the
/// obfuscation alphabet of the paper (X, CX, H), and the {X, SX, RZ, CX}
/// physical basis the compiler lowers to — plus the standard single-qubit
/// Cliffords and rotations required by the decomposition rules.
enum class GateKind {
  I,      ///< identity (1 qubit)
  X,      ///< Pauli-X
  Y,      ///< Pauli-Y
  Z,      ///< Pauli-Z
  H,      ///< Hadamard
  S,      ///< sqrt(Z)
  Sdg,    ///< S adjoint
  T,      ///< fourth root of Z
  Tdg,    ///< T adjoint
  SX,     ///< sqrt(X)
  SXdg,   ///< SX adjoint
  RX,     ///< rotation about X, params[0] = theta
  RY,     ///< rotation about Y, params[0] = theta
  RZ,     ///< rotation about Z, params[0] = theta
  P,      ///< phase gate diag(1, e^{i*theta}), params[0] = theta
  CX,     ///< controlled-X (control, target)
  CY,     ///< controlled-Y
  CZ,     ///< controlled-Z
  CH,     ///< controlled-H
  CP,     ///< controlled-phase, params[0] = theta
  CRZ,    ///< controlled-RZ, params[0] = theta
  SWAP,   ///< exchange two qubits
  CCX,    ///< Toffoli (c0, c1, target)
  CSWAP,  ///< Fredkin (control, a, b)
  MCX,    ///< multi-controlled X (c0..ck-1, target), k >= 3 controls
  Barrier ///< scheduling barrier; no unitary action
};

/// One gate instance: a kind, the qubits it acts on, and rotation parameters.
///
/// Gate is a value type with no invariants beyond "qubits are distinct and the
/// count matches the kind's arity"; Circuit::add enforces those on insertion.
struct Gate {
  GateKind kind = GateKind::I;
  std::vector<int> qubits;   ///< controls first, then target(s)
  std::vector<double> params;

  Gate() = default;
  Gate(GateKind k, std::vector<int> qs, std::vector<double> ps = {})
      : kind(k), qubits(std::move(qs)), params(std::move(ps)) {}

  /// Number of qubits this gate touches.
  int num_qubits() const { return static_cast<int>(qubits.size()); }

  /// The adjoint (inverse) gate. Self-inverse kinds return a copy; rotation
  /// kinds negate their angle; S/T/SX map to their dagger partners.
  Gate adjoint() const;

  /// True if G == G^-1 (X, Z, H, CX, CCX, SWAP, ...).
  bool is_self_inverse() const;

  /// True for CX/CY/CZ/CH/CP/CRZ/CCX/CSWAP/MCX.
  bool is_controlled() const;

  /// True if the gate is diagonal in the computational basis (Z/S/T/RZ/P/CZ/CP/CRZ).
  bool is_diagonal() const;

  /// True for X/CX/CCX/MCX/SWAP/CSWAP/I/Barrier: permutes basis states, so a
  /// circuit of such gates is classically reversible (the RevLib class).
  bool is_classical() const;

  /// True if the gate is a Clifford operation — it maps Pauli strings to
  /// Pauli strings under conjugation, so a stabilizer simulator
  /// (sim/backend/stabilizer.h) can execute it in O(n) tableau updates.
  /// Fixed kinds (I/X/Y/Z/H/S/Sdg/SX/SXdg/CX/CY/CZ/SWAP/Barrier) always
  /// qualify; the parametric kinds qualify on the Clifford angle lattice:
  /// RX/RY/RZ/P at multiples of pi/2, CP at multiples of pi, CRZ at
  /// multiples of 2*pi (each within `quarter_turns`'s tolerance). T/Tdg and
  /// the Toffoli family (CH/CCX/CSWAP/MCX) never qualify.
  bool is_clifford() const;

  /// Lower-case mnemonic ("cx", "ccx", "rz", ...).
  std::string name() const;

  /// Human-readable form, e.g. "cx q1, q3" or "rz(0.7854) q0".
  std::string to_string() const;

  /// Structural equality; rotation angles compare within `atol`.
  bool approx_equal(const Gate& other, double atol = 1e-12) const;

  bool operator==(const Gate& other) const;
};

/// Expected qubit arity for a kind; returns -1 for variadic (MCX, Barrier).
int gate_arity(GateKind kind);

/// Expected parameter count for a kind (0 or 1 in this alphabet).
int gate_param_count(GateKind kind);

/// True if the kind is one of the single-qubit kinds.
bool is_single_qubit_kind(GateKind kind);

/// True if `theta` is an integer multiple of pi/2 within `atol`; when it is,
/// `*turns` (if non-null) receives that multiple reduced mod 4, in [0, 3].
/// This is the angle test behind Gate::is_clifford, shared with the
/// stabilizer backend, which maps RZ(k*pi/2) to S^k etc. The tolerance
/// absorbs the float error of compiler-accumulated angles (sums of pi/2
/// literals drift by ~1e-16 per term) while still separating T (pi/4) by
/// eight orders of magnitude.
bool quarter_turns(double theta, int* turns = nullptr, double atol = 1e-9);

/// Parses a mnemonic ("cx") back to a kind; throws ParseError if unknown.
GateKind gate_kind_from_name(const std::string& name);

/// Mnemonic for a kind.
std::string gate_kind_name(GateKind kind);

// ---- Convenience factories (controls first, target last) -------------------
Gate make_x(int q);
Gate make_y(int q);
Gate make_z(int q);
Gate make_h(int q);
Gate make_s(int q);
Gate make_sdg(int q);
Gate make_t(int q);
Gate make_tdg(int q);
Gate make_sx(int q);
Gate make_sxdg(int q);
Gate make_rx(double theta, int q);
Gate make_ry(double theta, int q);
Gate make_rz(double theta, int q);
Gate make_p(double theta, int q);
Gate make_cx(int control, int target);
Gate make_cy(int control, int target);
Gate make_cz(int control, int target);
Gate make_ch(int control, int target);
Gate make_cp(double theta, int control, int target);
Gate make_crz(double theta, int control, int target);
Gate make_swap(int a, int b);
Gate make_ccx(int c0, int c1, int target);
Gate make_cswap(int control, int a, int b);
Gate make_mcx(std::vector<int> controls, int target);

}  // namespace tetris::qir
