#include "qir/render.h"

#include <algorithm>
#include <vector>

#include "qir/layers.h"

namespace tetris::qir {

namespace {

// Per-layer cell width: gate mnemonics up to 4 chars plus separators.
constexpr int kCellWidth = 5;

struct Canvas {
  int rows;
  int cols;
  std::vector<std::string> lines;

  Canvas(int num_qubits, int num_layers)
      : rows(num_qubits), cols(num_layers * kCellWidth + 6) {
    lines.assign(static_cast<std::size_t>(rows), std::string(static_cast<std::size_t>(cols), ' '));
    for (int q = 0; q < rows; ++q) {
      std::string label = "q" + std::to_string(q) + ":";
      for (std::size_t i = 0; i < label.size() && i < 5; ++i) {
        lines[static_cast<std::size_t>(q)][i] = label[i];
      }
      for (int c = 6; c < cols; ++c) lines[static_cast<std::size_t>(q)][static_cast<std::size_t>(c)] = '-';
    }
  }

  void put(int q, int layer, const std::string& text) {
    int base = 6 + layer * kCellWidth;
    for (std::size_t i = 0; i < text.size() && base + static_cast<int>(i) < cols; ++i) {
      lines[static_cast<std::size_t>(q)][static_cast<std::size_t>(base) + i] = text[i];
    }
  }

  /// True if the cell still shows only wire (no gate glyph) — used so that
  /// multi-qubit connectors never overwrite a gate that shares the column.
  bool is_blank(int q, int layer) const {
    int base = 6 + layer * kCellWidth;
    for (int i = 0; i < 3 && base + i < cols; ++i) {
      char c = lines[static_cast<std::size_t>(q)][static_cast<std::size_t>(base + i)];
      if (c != '-') return false;
    }
    return true;
  }
};

std::string cell_for(const Gate& g, int qubit_position_in_gate) {
  const bool is_target_slot =
      qubit_position_in_gate == g.num_qubits() - 1;
  switch (g.kind) {
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX:
      return is_target_slot ? "(+)" : " # ";
    case GateKind::CZ:
    case GateKind::CY:
    case GateKind::CH:
    case GateKind::CP:
    case GateKind::CRZ:
      return is_target_slot ? "[" + g.name().substr(1) + "]" : " # ";
    case GateKind::SWAP:
      return " x ";
    case GateKind::CSWAP:
      return qubit_position_in_gate == 0 ? " # " : " x ";
    default:
      return "[" + g.name() + "]";
  }
}

}  // namespace

std::string render(const Circuit& circuit, bool /*ascii_only*/) {
  Circuit clean = circuit.without_barriers();
  LayerSchedule sched(clean);
  if (clean.num_qubits() == 0) return "";
  Canvas canvas(clean.num_qubits(), std::max(1, sched.num_layers()));

  const auto& gates = clean.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    int layer = sched.layer_of(i);
    // Vertical connector column for multi-qubit gates.
    if (g.num_qubits() >= 2) {
      int lo = *std::min_element(g.qubits.begin(), g.qubits.end());
      int hi = *std::max_element(g.qubits.begin(), g.qubits.end());
      for (int q = lo + 1; q < hi; ++q) {
        bool touched = std::find(g.qubits.begin(), g.qubits.end(), q) != g.qubits.end();
        if (!touched && canvas.is_blank(q, layer)) canvas.put(q, layer, " | ");
      }
    }
    for (int pos = 0; pos < g.num_qubits(); ++pos) {
      canvas.put(g.qubits[static_cast<std::size_t>(pos)], layer, cell_for(g, pos));
    }
  }

  std::string out;
  if (!circuit.name().empty()) out += "// " + circuit.name() + "\n";
  for (const auto& line : canvas.lines) {
    // Trim trailing spaces for tidy logs.
    std::size_t end = line.find_last_not_of(' ');
    out += line.substr(0, end == std::string::npos ? 0 : end + 1);
    out += "\n";
  }
  return out;
}

}  // namespace tetris::qir
