#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "qir/gate.h"

namespace tetris::qir {

/// An ordered list of gates on a fixed-size qubit register.
///
/// Circuit is the central value type of the library: the RevLib loader
/// produces one, the obfuscator rewrites one, the splitter partitions one,
/// the compiler lowers one, and the simulator executes one. Gate order is the
/// temporal order (leftmost gate acts first); the unitary of the circuit is
/// U = U_{k-1} ... U_1 U_0.
class Circuit {
 public:
  Circuit() = default;

  /// Creates an empty circuit on `num_qubits` wires (>= 0). An optional name
  /// travels with the circuit through transformations for reporting.
  explicit Circuit(int num_qubits, std::string name = "");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of gates (Barrier included; use gate_count() to exclude it).
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_.at(i); }

  /// Validates arity/qubit-range/distinctness and appends the gate.
  /// Throws InvalidArgument on violation.
  Circuit& add(Gate g);

  // Builder shorthands. Each returns *this for chaining.
  Circuit& id(int q) { return add(Gate(GateKind::I, {q})); }
  Circuit& x(int q) { return add(make_x(q)); }
  Circuit& y(int q) { return add(make_y(q)); }
  Circuit& z(int q) { return add(make_z(q)); }
  Circuit& h(int q) { return add(make_h(q)); }
  Circuit& s(int q) { return add(make_s(q)); }
  Circuit& sdg(int q) { return add(make_sdg(q)); }
  Circuit& t(int q) { return add(make_t(q)); }
  Circuit& tdg(int q) { return add(make_tdg(q)); }
  Circuit& sx(int q) { return add(make_sx(q)); }
  Circuit& sxdg(int q) { return add(make_sxdg(q)); }
  Circuit& rx(double theta, int q) { return add(make_rx(theta, q)); }
  Circuit& ry(double theta, int q) { return add(make_ry(theta, q)); }
  Circuit& rz(double theta, int q) { return add(make_rz(theta, q)); }
  Circuit& p(double theta, int q) { return add(make_p(theta, q)); }
  Circuit& cx(int c, int t) { return add(make_cx(c, t)); }
  Circuit& cy(int c, int t) { return add(make_cy(c, t)); }
  Circuit& cz(int c, int t) { return add(make_cz(c, t)); }
  Circuit& ch(int c, int t) { return add(make_ch(c, t)); }
  Circuit& cp(double theta, int c, int t) { return add(make_cp(theta, c, t)); }
  Circuit& crz(double theta, int c, int t) { return add(make_crz(theta, c, t)); }
  Circuit& swap(int a, int b) { return add(make_swap(a, b)); }
  Circuit& ccx(int c0, int c1, int t) { return add(make_ccx(c0, c1, t)); }
  Circuit& cswap(int c, int a, int b) { return add(make_cswap(c, a, b)); }
  Circuit& mcx(std::vector<int> controls, int t) {
    return add(make_mcx(std::move(controls), t));
  }
  Circuit& barrier();

  /// Appends all gates of `other` (same register width required).
  Circuit& append(const Circuit& other);

  /// Appends `other` with its qubit i mapped to `qubit_map[i]`.
  Circuit& append_mapped(const Circuit& other, const std::vector<int>& qubit_map);

  /// The adjoint circuit: gates reversed, each replaced by its adjoint.
  Circuit inverse() const;

  /// Returns a circuit whose qubit i becomes `qubit_map[i]` on a register of
  /// `new_num_qubits` wires. Every mapped index must be in range and the map
  /// injective on used qubits.
  Circuit remapped(const std::vector<int>& qubit_map, int new_num_qubits) const;

  /// Sub-circuit containing the gates at `indices` (in the given order).
  Circuit subcircuit(const std::vector<std::size_t>& indices) const;

  /// Number of non-barrier gates.
  std::size_t gate_count() const;

  /// Histogram of mnemonics -> counts (barriers excluded).
  std::map<std::string, std::size_t> count_ops() const;

  /// Number of two-or-more-qubit gates (barriers excluded).
  std::size_t multi_qubit_gate_count() const;

  /// Circuit depth: length of the longest qubit-dependency chain
  /// (barriers are scheduling fences and do count as layer boundaries
  /// only for the qubits they span; an empty circuit has depth 0).
  int depth() const;

  /// Set of qubits touched by at least one gate.
  std::set<int> used_qubits() const;

  /// True if every gate Gate::is_classical() (RevLib reversible class).
  bool is_classical() const;

  /// True if every gate Gate::is_clifford() — the class a stabilizer
  /// tableau simulator can execute, and the test behind the `auto` backend
  /// selection policy (sim/backend/backend.h).
  bool is_clifford() const;

  /// Removes all barriers (compilers call this first).
  Circuit without_barriers() const;

  /// Canonical 64-bit content hash: FNV-1a over the register width and each
  /// gate's kind, qubits, and exact parameter bit patterns, in temporal
  /// order. The name is excluded (it is reporting metadata), so operator==
  /// equal circuits hash equal — except for parameter bit patterns that
  /// compare == but differ in bits (±0.0), which hash apart. The service
  /// layer's result cache keys on this, which is why exact bits — not a
  /// tolerance — are hashed: a cache hit must guarantee a bit-identical
  /// simulation input, and the ±0.0 asymmetry only costs a spurious miss,
  /// never a wrong hit.
  std::uint64_t content_hash() const;

  /// Structural equality gate-by-gate (name is ignored).
  bool operator==(const Circuit& other) const;

  /// Gate-by-gate comparison with angle tolerance.
  bool approx_equal(const Circuit& other, double atol = 1e-12) const;

  /// Multi-line human-readable listing ("0: cx q0, q1" per line).
  std::string to_string() const;

 private:
  void validate(const Gate& g) const;

  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace tetris::qir
