#pragma once

#include <vector>

#include "qir/circuit.h"

namespace tetris::qir {

/// A (layer, qubit) coordinate in the ASAP schedule of a circuit.
struct Slot {
  int layer = 0;
  int qubit = 0;
  bool operator==(const Slot& other) const {
    return layer == other.layer && qubit == other.qubit;
  }
  bool operator<(const Slot& other) const {
    return layer != other.layer ? layer < other.layer : qubit < other.qubit;
  }
};

/// The ASAP (as-soon-as-possible) layer schedule of a circuit.
///
/// This is the structure Algorithm 1 of the paper operates on: the circuit is
/// converted to its DAG layering, and the obfuscator looks for *empty
/// positions* — (layer, qubit) slots where the qubit is idle — to host random
/// gates without growing the depth.
class LayerSchedule {
 public:
  /// Computes the schedule. Barriers act as alignment fences (they occupy no
  /// slot but force subsequent gates on their qubits to later layers).
  explicit LayerSchedule(const Circuit& circuit);

  int num_layers() const { return num_layers_; }
  int num_qubits() const { return num_qubits_; }

  /// Layer assigned to gate `i` (barriers get the layer they align to).
  int layer_of(std::size_t gate_index) const;

  /// Gate indices scheduled in `layer`, in original circuit order.
  const std::vector<std::size_t>& gates_in_layer(int layer) const;

  /// True if qubit `q` is busy (touched by a gate) in `layer`.
  bool busy(int layer, int q) const;

  /// All empty slots, sorted by (layer, qubit) — Step 1 of Algorithm 1.
  std::vector<Slot> empty_slots() const;

  /// Empty slots in one layer, ascending by qubit.
  std::vector<int> empty_qubits_in_layer(int layer) const;

  /// First layer in which qubit q is busy, or num_layers() if never used.
  int first_use(int q) const;

  /// Last layer in which qubit q is busy, or -1 if never used.
  int last_use(int q) const;

  /// Leading idle capacity of qubit q: number of layers before first_use(q).
  /// These are the only slots where a gate can be *prepended* to the qubit's
  /// timeline without reordering original gates.
  int leading_capacity(int q) const { return first_use(q); }

  /// Total number of empty slots (the "slack" of the circuit).
  std::size_t total_slack() const;

 private:
  int num_layers_ = 0;
  int num_qubits_ = 0;
  std::vector<int> gate_layer_;                    // per gate index
  std::vector<std::vector<std::size_t>> by_layer_; // layer -> gate indices
  std::vector<std::vector<char>> busy_;            // [layer][qubit]
  std::vector<int> first_use_;
  std::vector<int> last_use_;
};

}  // namespace tetris::qir
