#include "qir/library.h"

#include <cmath>

#include "common/error.h"

namespace tetris::qir::library {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Phase flip on |1...1> of `qubits` (multi-controlled Z) expressed with the
/// gate alphabet of the IR: H-conjugated (multi-)controlled X.
void append_mcz(Circuit& c, const std::vector<int>& qubits) {
  TETRIS_REQUIRE(!qubits.empty(), "append_mcz: empty qubit set");
  if (qubits.size() == 1) {
    c.z(qubits[0]);
    return;
  }
  if (qubits.size() == 2) {
    c.cz(qubits[0], qubits[1]);
    return;
  }
  int target = qubits.back();
  std::vector<int> controls(qubits.begin(), qubits.end() - 1);
  c.h(target);
  if (controls.size() == 2) {
    c.ccx(controls[0], controls[1], target);
  } else {
    c.mcx(controls, target);
  }
  c.h(target);
}

}  // namespace

Circuit ghz(int n) {
  TETRIS_REQUIRE(n >= 1, "ghz requires n >= 1");
  Circuit c(n, "ghz" + std::to_string(n));
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

Circuit qft(int n) {
  TETRIS_REQUIRE(n >= 1, "qft requires n >= 1");
  Circuit c(n, "qft" + std::to_string(n));
  for (int q = n - 1; q >= 0; --q) {
    c.h(q);
    for (int k = q - 1; k >= 0; --k) {
      c.cp(kPi / static_cast<double>(1 << (q - k)), k, q);
    }
  }
  for (int q = 0; q < n / 2; ++q) c.swap(q, n - 1 - q);
  return c;
}

int grover_optimal_iterations(int n) {
  double amplitude = 1.0 / std::sqrt(static_cast<double>(std::size_t{1} << n));
  double theta = std::asin(amplitude);
  int iters = static_cast<int>(std::floor(kPi / (4.0 * theta)));
  return std::max(1, iters);
}

Circuit grover(int n, std::size_t marked, int iterations) {
  TETRIS_REQUIRE(n >= 2, "grover requires n >= 2");
  TETRIS_REQUIRE(marked < (std::size_t{1} << n), "grover: marked out of range");
  TETRIS_REQUIRE(iterations >= 1, "grover requires iterations >= 1");
  Circuit c(n, "grover" + std::to_string(n));

  std::vector<int> all(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) all[static_cast<std::size_t>(q)] = q;

  for (int q = 0; q < n; ++q) c.h(q);
  for (int it = 0; it < iterations; ++it) {
    // Oracle: phase flip on |marked>.
    for (int q = 0; q < n; ++q) {
      if (!((marked >> q) & 1)) c.x(q);
    }
    append_mcz(c, all);
    for (int q = 0; q < n; ++q) {
      if (!((marked >> q) & 1)) c.x(q);
    }
    // Diffuser: reflection about the uniform superposition.
    for (int q = 0; q < n; ++q) c.h(q);
    for (int q = 0; q < n; ++q) c.x(q);
    append_mcz(c, all);
    for (int q = 0; q < n; ++q) c.x(q);
    for (int q = 0; q < n; ++q) c.h(q);
  }
  return c;
}

Circuit bernstein_vazirani(const std::vector<int>& secret_bits) {
  const int n = static_cast<int>(secret_bits.size());
  TETRIS_REQUIRE(n >= 1, "bernstein_vazirani requires a non-empty secret");
  Circuit c(n + 1, "bv" + std::to_string(n));
  int ancilla = n;
  c.x(ancilla);
  for (int q = 0; q <= n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) {
    TETRIS_REQUIRE(secret_bits[static_cast<std::size_t>(q)] == 0 ||
                       secret_bits[static_cast<std::size_t>(q)] == 1,
                   "bernstein_vazirani: secret bits must be 0/1");
    if (secret_bits[static_cast<std::size_t>(q)]) c.cx(q, ancilla);
  }
  for (int q = 0; q < n; ++q) c.h(q);
  return c;
}

int ripple_carry_adder_width(int bits) { return 2 * bits + 2; }

Circuit ripple_carry_adder(int bits) {
  TETRIS_REQUIRE(bits >= 1, "ripple_carry_adder requires bits >= 1");
  const int n = ripple_carry_adder_width(bits);
  Circuit c(n, "adder" + std::to_string(bits));
  auto a = [](int i) { return 1 + i; };
  auto b = [bits](int i) { return 1 + bits + i; };
  const int cin = 0;
  const int cout = n - 1;

  // Cuccaro MAJ / UMA ladder.
  auto maj = [&](int x, int y, int z) {
    c.cx(z, y).cx(z, x).ccx(x, y, z);
  };
  auto uma = [&](int x, int y, int z) {
    c.ccx(x, y, z).cx(z, x).cx(x, y);
  };

  maj(cin, b(0), a(0));
  for (int i = 1; i < bits; ++i) maj(a(i - 1), b(i), a(i));
  c.cx(a(bits - 1), cout);
  for (int i = bits - 1; i >= 1; --i) uma(a(i - 1), b(i), a(i));
  uma(cin, b(0), a(0));
  return c;
}

Circuit random_reversible(int n, int gates, Rng& rng) {
  TETRIS_REQUIRE(n >= 1, "random_reversible requires n >= 1");
  TETRIS_REQUIRE(gates >= 0, "random_reversible: negative gate count");
  Circuit c(n, "random_reversible");
  for (int g = 0; g < gates; ++g) {
    double r = rng.uniform();
    if (n >= 3 && r < 0.3) {
      int a = rng.uniform_int(0, n - 1);
      int b = rng.uniform_int(0, n - 1);
      while (b == a) b = rng.uniform_int(0, n - 1);
      int t = rng.uniform_int(0, n - 1);
      while (t == a || t == b) t = rng.uniform_int(0, n - 1);
      c.ccx(a, b, t);
    } else if (n >= 2 && r < 0.7) {
      int a = rng.uniform_int(0, n - 1);
      int b = rng.uniform_int(0, n - 1);
      while (b == a) b = rng.uniform_int(0, n - 1);
      c.cx(a, b);
    } else {
      c.x(rng.uniform_int(0, n - 1));
    }
  }
  return c;
}

Circuit random_universal(int n, int gates, Rng& rng) {
  TETRIS_REQUIRE(n >= 1, "random_universal requires n >= 1");
  TETRIS_REQUIRE(gates >= 0, "random_universal: negative gate count");
  Circuit c(n, "random_universal");
  for (int g = 0; g < gates; ++g) {
    int pick = rng.uniform_int(0, 5);
    int q = rng.uniform_int(0, n - 1);
    switch (pick) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.t(q); break;
      case 3: c.rz(rng.uniform() * 2.0 * kPi - kPi, q); break;
      case 4: c.x(q); break;
      default: {
        if (n < 2) {
          c.h(q);
          break;
        }
        int t = rng.uniform_int(0, n - 1);
        while (t == q) t = rng.uniform_int(0, n - 1);
        c.cx(q, t);
        break;
      }
    }
  }
  return c;
}

}  // namespace tetris::qir::library
