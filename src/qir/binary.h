#pragma once

#include <cstdint>

#include "common/binio.h"
#include "qir/circuit.h"

namespace tetris::qir {

/// Binary circuit codec — the Circuit record of the artifact format
/// (docs/FORMATS.md §3). A circuit serializes as
///
///   num_qubits  u32
///   name        str (u32 length + bytes)
///   gate_count  u32
///   gates       gate_count × { kind u8, qubit_count u32, qubits u32...,
///                              param_count u8, params f64... }
///
/// Gate parameters are written by exact IEEE-754 bit pattern, so a decoded
/// circuit is bit-identical to the encoded one: `content_hash()` (which also
/// hashes parameter bits) is invariant under a round trip, which is what
/// lets a stored artifact be re-keyed and re-verified without re-running
/// anything.

/// Hard limits of the reader. An input breaching any of these is rejected
/// with ParseError *before* allocation — a corrupt count must cost an
/// exception, not gigabytes. Generous relative to anything the pipeline
/// produces (the widest compiled RevLib artifact is < 100 qubits and a few
/// thousand gates).
inline constexpr std::uint32_t kMaxCircuitQubits = 1u << 20;
inline constexpr std::uint32_t kMaxCircuitGates = 1u << 26;
inline constexpr std::uint32_t kMaxCircuitNameBytes = 1u << 12;

/// Appends the circuit record to `w`. Never fails.
void write_circuit(ByteWriter& w, const Circuit& circuit);

/// Reads one circuit record. Throws tetris::ParseError on truncation,
/// over-limit counts, unknown gate kinds, or any gate that violates the IR's
/// structural invariants (arity, qubit range, distinctness — the same
/// validation `Circuit::add` applies to programmatic input, reported as a
/// parse error with the gate index).
Circuit read_circuit(ByteReader& r);

}  // namespace tetris::qir
