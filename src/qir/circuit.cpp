#include "qir/circuit.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/hash.h"

namespace tetris::qir {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  TETRIS_REQUIRE(num_qubits >= 0, "Circuit requires num_qubits >= 0");
}

void Circuit::validate(const Gate& g) const {
  int arity = gate_arity(g.kind);
  if (arity >= 0) {
    TETRIS_REQUIRE(g.num_qubits() == arity,
                   "gate '" + g.name() + "' expects " + std::to_string(arity) +
                       " qubits, got " + std::to_string(g.num_qubits()));
  } else if (g.kind == GateKind::MCX) {
    TETRIS_REQUIRE(g.num_qubits() >= 4, "mcx requires >= 3 controls + target");
  }
  int pc = gate_param_count(g.kind);
  TETRIS_REQUIRE(static_cast<int>(g.params.size()) == pc,
                 "gate '" + g.name() + "' expects " + std::to_string(pc) +
                     " params, got " + std::to_string(g.params.size()));
  std::set<int> seen;
  for (int q : g.qubits) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_,
                   "qubit index " + std::to_string(q) + " out of range for " +
                       std::to_string(num_qubits_) + "-qubit circuit");
    TETRIS_REQUIRE(seen.insert(q).second,
                   "gate '" + g.name() + "' repeats qubit " + std::to_string(q));
  }
}

Circuit& Circuit::add(Gate g) {
  validate(g);
  gates_.push_back(std::move(g));
  return *this;
}

Circuit& Circuit::barrier() {
  Gate g(GateKind::Barrier, {});
  g.qubits.resize(static_cast<std::size_t>(num_qubits_));
  std::iota(g.qubits.begin(), g.qubits.end(), 0);
  gates_.push_back(std::move(g));
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  TETRIS_REQUIRE(other.num_qubits_ <= num_qubits_,
                 "append: other circuit is wider than this register");
  for (const Gate& g : other.gates_) add(g);
  return *this;
}

Circuit& Circuit::append_mapped(const Circuit& other,
                                const std::vector<int>& qubit_map) {
  TETRIS_REQUIRE(static_cast<int>(qubit_map.size()) == other.num_qubits_,
                 "append_mapped: map size must equal other.num_qubits()");
  for (const Gate& g : other.gates_) {
    Gate mapped = g;
    for (int& q : mapped.qubits) q = qubit_map.at(static_cast<std::size_t>(q));
    add(std::move(mapped));
  }
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit inv(num_qubits_, name_.empty() ? "" : name_ + "_dg");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    inv.add(it->adjoint());
  }
  return inv;
}

Circuit Circuit::remapped(const std::vector<int>& qubit_map,
                          int new_num_qubits) const {
  TETRIS_REQUIRE(static_cast<int>(qubit_map.size()) == num_qubits_,
                 "remapped: map size must equal num_qubits()");
  Circuit out(new_num_qubits, name_);
  for (const Gate& g : gates_) {
    Gate mapped = g;
    for (int& q : mapped.qubits) {
      int nq = qubit_map.at(static_cast<std::size_t>(q));
      TETRIS_REQUIRE(nq >= 0 && nq < new_num_qubits,
                     "remapped: mapped index out of range");
      q = nq;
    }
    out.add(std::move(mapped));
  }
  return out;
}

Circuit Circuit::subcircuit(const std::vector<std::size_t>& indices) const {
  Circuit out(num_qubits_, name_);
  for (std::size_t i : indices) out.add(gates_.at(i));
  return out;
}

std::size_t Circuit::gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
        return g.kind != GateKind::Barrier;
      }));
}

std::map<std::string, std::size_t> Circuit::count_ops() const {
  std::map<std::string, std::size_t> out;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::Barrier) continue;
    ++out[g.name()];
  }
  return out;
}

std::size_t Circuit::multi_qubit_gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
        return g.kind != GateKind::Barrier && g.num_qubits() >= 2;
      }));
}

int Circuit::depth() const {
  std::vector<int> frontier(static_cast<std::size_t>(num_qubits_), 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::Barrier) {
      // A barrier aligns the frontier across the qubits it spans but does not
      // itself occupy a layer.
      int mx = 0;
      for (int q : g.qubits) mx = std::max(mx, frontier[static_cast<std::size_t>(q)]);
      for (int q : g.qubits) frontier[static_cast<std::size_t>(q)] = mx;
      continue;
    }
    int layer = 0;
    for (int q : g.qubits) layer = std::max(layer, frontier[static_cast<std::size_t>(q)]);
    ++layer;
    for (int q : g.qubits) frontier[static_cast<std::size_t>(q)] = layer;
    depth = std::max(depth, layer);
  }
  return depth;
}

std::set<int> Circuit::used_qubits() const {
  std::set<int> out;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::Barrier) continue;
    out.insert(g.qubits.begin(), g.qubits.end());
  }
  return out;
}

bool Circuit::is_classical() const {
  return std::all_of(gates_.begin(), gates_.end(),
                     [](const Gate& g) { return g.is_classical(); });
}

bool Circuit::is_clifford() const {
  return std::all_of(gates_.begin(), gates_.end(),
                     [](const Gate& g) { return g.is_clifford(); });
}

Circuit Circuit::without_barriers() const {
  Circuit out(num_qubits_, name_);
  for (const Gate& g : gates_) {
    if (g.kind != GateKind::Barrier) out.add(g);
  }
  return out;
}

std::uint64_t Circuit::content_hash() const {
  // Every field is folded through the shared FNV-1a mix so the digest is a
  // pure function of (num_qubits, gate list) — independent of platform,
  // name, and how the circuit was built.
  Fnv64 f;
  f.mix(static_cast<std::uint64_t>(num_qubits_));
  f.mix(gates_.size());
  for (const Gate& g : gates_) {
    f.mix(static_cast<std::uint64_t>(g.kind));
    f.mix(g.qubits.size());
    for (int q : g.qubits) f.mix(static_cast<std::uint64_t>(q));
    f.mix(g.params.size());
    for (double p : g.params) f.mix(p);
  }
  return f.digest();
}

bool Circuit::operator==(const Circuit& other) const {
  return num_qubits_ == other.num_qubits_ && gates_ == other.gates_;
}

bool Circuit::approx_equal(const Circuit& other, double atol) const {
  if (num_qubits_ != other.num_qubits_ || gates_.size() != other.gates_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (!gates_[i].approx_equal(other.gates_[i], atol)) return false;
  }
  return true;
}

std::string Circuit::to_string() const {
  std::string out;
  if (!name_.empty()) out += "// " + name_ + "\n";
  out += "qubits: " + std::to_string(num_qubits_) + "\n";
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    out += std::to_string(i) + ": " + gates_[i].to_string() + "\n";
  }
  return out;
}

}  // namespace tetris::qir
