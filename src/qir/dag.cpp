#include "qir/dag.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace tetris::qir {

CircuitDag::CircuitDag(const Circuit& circuit) {
  const auto& gates = circuit.gates();
  preds_.assign(gates.size(), {});
  succs_.assign(gates.size(), {});

  // last_on_wire[q] = index of the most recent gate touching qubit q.
  std::vector<long> last_on_wire(static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    for (int q : g.qubits) {
      long prev = last_on_wire[static_cast<std::size_t>(q)];
      if (prev >= 0) {
        preds_[i].push_back(static_cast<std::size_t>(prev));
        succs_[static_cast<std::size_t>(prev)].push_back(i);
      }
      last_on_wire[static_cast<std::size_t>(q)] = static_cast<long>(i);
    }
  }
  for (auto& v : preds_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : succs_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
}

const std::vector<std::size_t>& CircuitDag::predecessors(std::size_t i) const {
  TETRIS_REQUIRE(i < preds_.size(), "predecessors: index out of range");
  return preds_[i];
}

const std::vector<std::size_t>& CircuitDag::successors(std::size_t i) const {
  TETRIS_REQUIRE(i < succs_.size(), "successors: index out of range");
  return succs_[i];
}

bool CircuitDag::is_order_ideal(const std::vector<char>& members) const {
  TETRIS_REQUIRE(members.size() == preds_.size(),
                 "is_order_ideal: wrong vector size");
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!members[i]) continue;
    for (std::size_t p : preds_[i]) {
      if (!members[p]) return false;
    }
  }
  return true;
}

std::vector<char> CircuitDag::downward_closure(const std::vector<char>& seed) const {
  TETRIS_REQUIRE(seed.size() == preds_.size(), "downward_closure: wrong size");
  std::vector<char> out = seed;
  // Gates are stored in topological order, so one reverse sweep suffices.
  for (std::size_t i = out.size(); i-- > 0;) {
    if (!out[i]) continue;
    for (std::size_t p : preds_[i]) out[p] = 1;
  }
  return out;
}

std::vector<char> CircuitDag::largest_ideal_within(const std::vector<char>& seed) const {
  TETRIS_REQUIRE(seed.size() == preds_.size(), "largest_ideal_within: wrong size");
  std::vector<char> out = seed;
  // One forward sweep suffices: predecessors have smaller indices, so by the
  // time we visit gate i, all its predecessors already have final values.
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!out[i]) continue;
    for (std::size_t p : preds_[i]) {
      if (!out[p]) {
        out[i] = 0;
        break;
      }
    }
  }
  return out;
}

std::vector<std::size_t> CircuitDag::topological_order() const {
  std::vector<std::size_t> order(preds_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

}  // namespace tetris::qir
