#include "qir/binary.h"

#include <vector>

namespace tetris::qir {

namespace {

/// Highest GateKind value — kinds above this in a stored file are from a
/// future (or corrupt) format and must be rejected, not cast blindly.
constexpr std::uint8_t kMaxGateKind = static_cast<std::uint8_t>(GateKind::Barrier);

}  // namespace

void write_circuit(ByteWriter& w, const Circuit& circuit) {
  w.u32(static_cast<std::uint32_t>(circuit.num_qubits()));
  w.str(circuit.name());
  w.u32(static_cast<std::uint32_t>(circuit.size()));
  for (const Gate& g : circuit.gates()) {
    w.u8(static_cast<std::uint8_t>(g.kind));
    w.u32(static_cast<std::uint32_t>(g.qubits.size()));
    for (int q : g.qubits) w.u32(static_cast<std::uint32_t>(q));
    w.u8(static_cast<std::uint8_t>(g.params.size()));
    for (double p : g.params) w.f64(p);
  }
}

Circuit read_circuit(ByteReader& r) {
  const std::uint32_t num_qubits = r.count("circuit qubit count",
                                           kMaxCircuitQubits);
  std::string name = r.str("circuit name", kMaxCircuitNameBytes);
  Circuit circuit(static_cast<int>(num_qubits), std::move(name));

  const std::uint32_t gates = r.count("circuit gate count", kMaxCircuitGates);
  for (std::uint32_t i = 0; i < gates; ++i) {
    const std::uint8_t kind = r.u8("gate kind");
    if (kind > kMaxGateKind) {
      throw ParseError("circuit codec: unknown gate kind " +
                       std::to_string(kind) + " in gate " + std::to_string(i) +
                       " at offset " + std::to_string(r.offset() - 1));
    }
    // Per-gate qubit count is bounded by the register width (every qubit
    // index must be distinct and in range, so more than num_qubits qubits
    // can never validate anyway).
    const std::uint32_t nq = r.count("gate qubit count", num_qubits);
    std::vector<int> qubits;
    qubits.reserve(nq);
    for (std::uint32_t q = 0; q < nq; ++q) {
      qubits.push_back(static_cast<int>(r.u32("gate qubit")));
    }
    const std::uint8_t np = r.u8("gate param count");
    std::vector<double> params;
    params.reserve(np);
    for (std::uint8_t p = 0; p < np; ++p) {
      params.push_back(r.f64("gate param"));
    }
    try {
      // Circuit::add re-validates arity/range/distinctness — stored bytes
      // get exactly the same structural checks as programmatic input.
      circuit.add(Gate(static_cast<GateKind>(kind), std::move(qubits),
                       std::move(params)));
    } catch (const InvalidArgument& e) {
      throw ParseError("circuit codec: invalid gate " + std::to_string(i) +
                       ": " + e.what());
    }
  }
  return circuit;
}

}  // namespace tetris::qir
