#include "qir/gate.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"

namespace tetris::qir {

namespace {

struct KindInfo {
  const char* name;
  int arity;        // -1 => variadic
  int param_count;
};

const KindInfo& info(GateKind k) {
  static const std::unordered_map<GateKind, KindInfo> table = {
      {GateKind::I, {"id", 1, 0}},       {GateKind::X, {"x", 1, 0}},
      {GateKind::Y, {"y", 1, 0}},        {GateKind::Z, {"z", 1, 0}},
      {GateKind::H, {"h", 1, 0}},        {GateKind::S, {"s", 1, 0}},
      {GateKind::Sdg, {"sdg", 1, 0}},    {GateKind::T, {"t", 1, 0}},
      {GateKind::Tdg, {"tdg", 1, 0}},    {GateKind::SX, {"sx", 1, 0}},
      {GateKind::SXdg, {"sxdg", 1, 0}},  {GateKind::RX, {"rx", 1, 1}},
      {GateKind::RY, {"ry", 1, 1}},      {GateKind::RZ, {"rz", 1, 1}},
      {GateKind::P, {"p", 1, 1}},        {GateKind::CX, {"cx", 2, 0}},
      {GateKind::CY, {"cy", 2, 0}},      {GateKind::CZ, {"cz", 2, 0}},
      {GateKind::CH, {"ch", 2, 0}},      {GateKind::CP, {"cp", 2, 1}},
      {GateKind::CRZ, {"crz", 2, 1}},    {GateKind::SWAP, {"swap", 2, 0}},
      {GateKind::CCX, {"ccx", 3, 0}},    {GateKind::CSWAP, {"cswap", 3, 0}},
      {GateKind::MCX, {"mcx", -1, 0}},   {GateKind::Barrier, {"barrier", -1, 0}},
  };
  return table.at(k);
}

}  // namespace

int gate_arity(GateKind kind) { return info(kind).arity; }
int gate_param_count(GateKind kind) { return info(kind).param_count; }
std::string gate_kind_name(GateKind kind) { return info(kind).name; }

bool is_single_qubit_kind(GateKind kind) { return info(kind).arity == 1; }

GateKind gate_kind_from_name(const std::string& name) {
  static const std::unordered_map<std::string, GateKind> table = [] {
    std::unordered_map<std::string, GateKind> t;
    for (int k = static_cast<int>(GateKind::I);
         k <= static_cast<int>(GateKind::Barrier); ++k) {
      auto kind = static_cast<GateKind>(k);
      t[gate_kind_name(kind)] = kind;
    }
    return t;
  }();
  auto it = table.find(to_lower(name));
  if (it == table.end()) throw ParseError("unknown gate mnemonic: " + name);
  return it->second;
}

Gate Gate::adjoint() const {
  Gate g = *this;
  switch (kind) {
    case GateKind::S:    g.kind = GateKind::Sdg; break;
    case GateKind::Sdg:  g.kind = GateKind::S; break;
    case GateKind::T:    g.kind = GateKind::Tdg; break;
    case GateKind::Tdg:  g.kind = GateKind::T; break;
    case GateKind::SX:   g.kind = GateKind::SXdg; break;
    case GateKind::SXdg: g.kind = GateKind::SX; break;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
    case GateKind::CRZ:
      g.params[0] = -g.params[0];
      break;
    default:
      break;  // self-inverse kinds
  }
  return g;
}

bool Gate::is_self_inverse() const {
  switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::SWAP:
    case GateKind::CCX:
    case GateKind::CSWAP:
    case GateKind::MCX:
    case GateKind::Barrier:
      return true;
    default:
      return false;
  }
}

bool Gate::is_controlled() const {
  switch (kind) {
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCX:
    case GateKind::CSWAP:
    case GateKind::MCX:
      return true;
    default:
      return false;
  }
}

bool Gate::is_diagonal() const {
  switch (kind) {
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::Barrier:
      return true;
    default:
      return false;
  }
}

bool Gate::is_classical() const {
  switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX:
    case GateKind::SWAP:
    case GateKind::CSWAP:
    case GateKind::Barrier:
      return true;
    default:
      return false;
  }
}

bool quarter_turns(double theta, int* turns, double atol) {
  const double half_pi = 1.5707963267948966;  // pi/2 rounded to double
  const double ratio = theta / half_pi;
  const double nearest = std::nearbyint(ratio);
  if (std::abs(theta - nearest * half_pi) > atol) return false;
  if (turns != nullptr) {
    // C++ % truncates toward zero; fold negatives into [0, 3].
    long long k = static_cast<long long>(nearest) % 4;
    *turns = static_cast<int>(k < 0 ? k + 4 : k);
  }
  return true;
}

bool Gate::is_clifford() const {
  int k = 0;
  switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::Barrier:
      return true;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
      return quarter_turns(params[0]);
    case GateKind::CP:
      // CP(k*pi) is I or CZ; odd pi/2 multiples are the T-class CS gate.
      return quarter_turns(params[0], &k) && k % 2 == 0;
    case GateKind::CRZ:
      // CRZ(2*pi*m) = Z^m on the control (RZ(2*pi) = -I, and the -1 lands
      // only on the control=1 subspace); anything finer is non-Clifford.
      return quarter_turns(params[0], &k) && k == 0;
    default:
      // T/Tdg, CH, and the Toffoli family (CCX/CSWAP/MCX).
      return false;
  }
}

std::string Gate::name() const { return gate_kind_name(kind); }

std::string Gate::to_string() const {
  std::string out = name();
  if (!params.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "(%.6g)", params[0]);
    out += buf;
  }
  out += " ";
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (i) out += ", ";
    out += "q" + std::to_string(qubits[i]);
  }
  return out;
}

bool Gate::approx_equal(const Gate& other, double atol) const {
  if (kind != other.kind || qubits != other.qubits ||
      params.size() != other.params.size()) {
    return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (std::abs(params[i] - other.params[i]) > atol) return false;
  }
  return true;
}

bool Gate::operator==(const Gate& other) const {
  return kind == other.kind && qubits == other.qubits && params == other.params;
}

Gate make_x(int q) { return Gate(GateKind::X, {q}); }
Gate make_y(int q) { return Gate(GateKind::Y, {q}); }
Gate make_z(int q) { return Gate(GateKind::Z, {q}); }
Gate make_h(int q) { return Gate(GateKind::H, {q}); }
Gate make_s(int q) { return Gate(GateKind::S, {q}); }
Gate make_sdg(int q) { return Gate(GateKind::Sdg, {q}); }
Gate make_t(int q) { return Gate(GateKind::T, {q}); }
Gate make_tdg(int q) { return Gate(GateKind::Tdg, {q}); }
Gate make_sx(int q) { return Gate(GateKind::SX, {q}); }
Gate make_sxdg(int q) { return Gate(GateKind::SXdg, {q}); }
Gate make_rx(double theta, int q) { return Gate(GateKind::RX, {q}, {theta}); }
Gate make_ry(double theta, int q) { return Gate(GateKind::RY, {q}, {theta}); }
Gate make_rz(double theta, int q) { return Gate(GateKind::RZ, {q}, {theta}); }
Gate make_p(double theta, int q) { return Gate(GateKind::P, {q}, {theta}); }
Gate make_cx(int control, int target) { return Gate(GateKind::CX, {control, target}); }
Gate make_cy(int control, int target) { return Gate(GateKind::CY, {control, target}); }
Gate make_cz(int control, int target) { return Gate(GateKind::CZ, {control, target}); }
Gate make_ch(int control, int target) { return Gate(GateKind::CH, {control, target}); }
Gate make_cp(double theta, int control, int target) {
  return Gate(GateKind::CP, {control, target}, {theta});
}
Gate make_crz(double theta, int control, int target) {
  return Gate(GateKind::CRZ, {control, target}, {theta});
}
Gate make_swap(int a, int b) { return Gate(GateKind::SWAP, {a, b}); }
Gate make_ccx(int c0, int c1, int target) {
  return Gate(GateKind::CCX, {c0, c1, target});
}
Gate make_cswap(int control, int a, int b) {
  return Gate(GateKind::CSWAP, {control, a, b});
}
Gate make_mcx(std::vector<int> controls, int target) {
  TETRIS_REQUIRE(controls.size() >= 3,
                 "make_mcx expects >= 3 controls; use cx/ccx otherwise");
  controls.push_back(target);
  return Gate(GateKind::MCX, std::move(controls));
}

}  // namespace tetris::qir
