#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "common/error.h"

namespace tetris::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, int port) {
  TETRIS_REQUIRE(port >= 0 && port <= 65535,
                 "net: port out of range: " + std::to_string(port));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("net: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_timeout_ms(int timeout_ms) {
  TETRIS_REQUIRE(timeout_ms > 0, "net: timeout must be positive");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    fail_errno("net: setsockopt timeout");
  }
}

void Socket::set_nodelay() {
  const int on = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
}

void Socket::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail_errno("net: set O_NONBLOCK");
  }
}

Socket::IoResult Socket::recv_nonblocking(char* buffer, std::size_t capacity,
                                          std::size_t* received) {
  while (true) {
    ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

Socket::IoResult Socket::send_nonblocking(const char* data, std::size_t size,
                                          std::size_t* sent) {
  while (true) {
    ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      *sent = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

Socket Socket::connect(const std::string& host, int port, int timeout_ms) {
  sockaddr_in addr = make_address(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("net: socket");
  s.set_timeout_ms(timeout_ms);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail_errno("net: connect to " + host + ":" + std::to_string(port));
  }
  s.set_nodelay();
  return s;
}

std::size_t Socket::recv_some(char* buffer, std::size_t capacity) {
  while (true) {
    ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw Error("net: receive timed out");
    }
    fail_errno("net: recv");
  }
}

void Socket::send_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error("net: send timed out");
      }
      fail_errno("net: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Listener::Listener(const std::string& host, int port, int backlog) {
  sockaddr_in addr = make_address(host, port);
  fd_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) fail_errno("net: socket");
  int on = 1;
  ::setsockopt(fd_.fd(), SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  if (::bind(fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("net: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_.fd(), backlog) != 0) fail_errno("net: listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    fail_errno("net: getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Socket Listener::accept(int timeout_ms) {
  pollfd p{};
  p.fd = fd_.fd();
  p.events = POLLIN;
  int ready = ::poll(&p, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Socket();
    fail_errno("net: poll");
  }
  if (ready == 0) return Socket();  // timeout: let the caller re-check flags
  int fd = ::accept(fd_.fd(), nullptr, nullptr);
  if (fd < 0) {
    // After shutdown() (or under fd pressure) accept fails; report "no
    // connection" and let the accept loop decide whether it is stopping.
    return Socket();
  }
  return Socket(fd);
}

void Listener::shutdown() { ::shutdown(fd_.fd(), SHUT_RDWR); }

}  // namespace tetris::net
