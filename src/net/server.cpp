#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <iterator>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/json.h"
#include "lock/pipeline.h"
#include "qir/qasm.h"
#include "revlib/benchmarks.h"
#include "service/serialize.h"

namespace tetris::net {

namespace {

/// HTTP status for a service-layer failure class.
int http_status_for(service::StatusCode code) {
  switch (code) {
    case service::StatusCode::kOk: return 200;
    case service::StatusCode::kInvalidArgument: return 400;
    case service::StatusCode::kParseError: return 400;
    case service::StatusCode::kCompileError: return 422;
    case service::StatusCode::kLockError: return 422;
    case service::StatusCode::kCancelled: return 409;
    case service::StatusCode::kInternalError: return 500;
  }
  return 500;
}

http::Response json_response(int status, const std::string& body) {
  http::Response res;
  res.status = status;
  res.body = body;
  return res;
}

http::Response error_response(int status, const std::string& code,
                              const std::string& message) {
  json::Writer w;
  w.begin_object();
  w.key("error").begin_object();
  w.key("code").value(code);
  w.key("message").value(message);
  w.end_object();
  w.end_object();
  return json_response(status, w.str());
}

/// Maps the in-flight exception onto an HttpError carrying the service
/// status-code name; call only inside a catch block.
[[noreturn]] void rethrow_as_http() {
  try {
    throw;
  } catch (const http::HttpError&) {
    throw;
  } catch (...) {
    service::ServiceStatus status =
        service::ServiceStatus::from_current_exception();
    throw http::HttpError(http_status_for(status.code),
                          service::status_code_name(status.code),
                          status.message);
  }
}

/// The submit body may only carry these keys; anything else is a client bug
/// worth rejecting loudly (a typoed "shot" silently running 1000 shots is
/// the failure mode strictness prevents).
void require_known_keys(const json::Value& object,
                        std::initializer_list<std::string_view> known,
                        const char* where) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    bool ok = false;
    for (std::string_view k : known) {
      if (key == k) ok = true;
    }
    if (!ok) {
      throw http::HttpError(400, "invalid_argument",
                            std::string("unknown field '") + key + "' in " +
                                where);
    }
  }
}

/// Range-checked integer from an untrusted body. The explicit upper bound
/// matters: these values are narrowed into int/unsigned/size_t config
/// fields, and an unchecked 2^32+2 would silently truncate into a *valid
/// but different* config instead of a 400.
std::int64_t int_field(const json::Value& v, const char* name,
                       std::int64_t min_value, std::int64_t max_value) {
  if (!v.is_integer()) {
    throw http::HttpError(400, "invalid_argument",
                          std::string("'") + name + "' must be an integer");
  }
  std::int64_t value = v.as_int();
  if (value < min_value || value > max_value) {
    throw http::HttpError(400, "invalid_argument",
                          std::string("'") + name + "' must be in [" +
                              std::to_string(min_value) + ", " +
                              std::to_string(max_value) + "]");
  }
  return value;
}

bool bool_field(const json::Value& v, const char* name) {
  if (!v.is_bool()) {
    throw http::HttpError(400, "invalid_argument",
                          std::string("'") + name + "' must be a boolean");
  }
  return v.as_bool();
}

/// FlowConfig from the optional "config" object of a submit body. Field
/// names and defaults mirror the CLI's protect flags; upper bounds keep an
/// unauthenticated client from pinning a job worker on an absurd request
/// (a 10^12-shot sampling run cannot be cancelled once it starts).
lock::FlowConfig parse_flow_config(const json::Value* config) {
  lock::FlowConfig cfg;
  if (config == nullptr) return cfg;
  if (!config->is_object()) {
    throw http::HttpError(400, "invalid_argument",
                          "'config' must be a JSON object");
  }
  require_known_keys(*config,
                     {"shots", "max_gates", "alphabet", "gap", "fuse",
                      "sample_jobs", "backend"},
                     "config");
  if (const json::Value* v = config->find("shots")) {
    cfg.shots =
        static_cast<std::size_t>(int_field(*v, "shots", 1, 100'000'000));
  }
  if (const json::Value* v = config->find("max_gates")) {
    cfg.insertion.max_random_gates =
        static_cast<int>(int_field(*v, "max_gates", 0, 1'000'000));
  }
  if (const json::Value* v = config->find("alphabet")) {
    if (!v->is_string()) {
      throw http::HttpError(400, "invalid_argument",
                            "'alphabet' must be a string");
    }
    cfg.insertion.alphabet = lock::parse_insertion_alphabet(v->as_string());
  }
  if (const json::Value* v = config->find("gap")) {
    cfg.insertion.allow_gap_insertion = bool_field(*v, "gap");
  }
  if (const json::Value* v = config->find("fuse")) {
    cfg.fusion = bool_field(*v, "fuse");
  }
  if (const json::Value* v = config->find("sample_jobs")) {
    cfg.sample_threads =
        static_cast<unsigned>(int_field(*v, "sample_jobs", 0, 65'536));
  }
  if (const json::Value* v = config->find("backend")) {
    if (!v->is_string()) {
      throw http::HttpError(400, "invalid_argument",
                            "'backend' must be a string");
    }
    // Shared parser with the CLI's --backend flag; throws InvalidArgument
    // (→ 400 via the handler wrapper) naming the accepted spellings.
    cfg.backend = sim::parse_backend_kind(v->as_string());
  }
  return cfg;
}

}  // namespace

const char* Server::route_name(Route route) {
  switch (route) {
    case Route::kJobs: return "/v1/jobs";
    case Route::kJob: return "/v1/jobs/{id}";
    case Route::kJobArtifact: return "/v1/jobs/{id}/artifact";
    case Route::kJobTrace: return "/v1/jobs/{id}/trace";
    case Route::kStatus: return "/v1/status";
    case Route::kMetrics: return "/metrics";
    case Route::kOther: return "other";
    case Route::kCount_: break;
  }
  return "other";
}

Server::Server(service::Service& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      start_steady_(std::chrono::steady_clock::now()),
      start_wall_(std::chrono::system_clock::now()) {
  if (config_.connection_threads > 0) {
    private_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.connection_threads);
  }
  // Pre-register every HTTP-layer instrument so the request path never takes
  // the registry mutex — it hits the cached references directly.
  static constexpr const char* kClasses[kStatusClassCount] = {"2xx", "4xx",
                                                              "5xx"};
  for (std::size_t r = 0; r < kRouteCount; ++r) {
    for (std::size_t c = 0; c < kStatusClassCount; ++c) {
      requests_by_route_[r][c] = &http_registry_.counter(
          "tetris_http_requests_total",
          "Requests handled, by normalized route and status class.",
          {{"route", route_name(static_cast<Route>(r))},
           {"class", kClasses[c]}});
    }
  }
  request_latency_ = &http_registry_.histogram(
      "tetris_http_request_seconds",
      "Request latency from first byte to response queue (reactor clock).",
      obs::latency_buckets());

  ReactorConfig rc;
  rc.host = config_.host;
  rc.port = config_.port;
  rc.backlog = config_.backlog;
  rc.idle_timeout_ms = config_.io_timeout_ms;
  rc.request_deadline_ms = config_.request_deadline_ms;
  rc.max_requests_per_connection = config_.max_requests_per_connection;
  rc.max_header_bytes = config_.max_header_bytes;
  rc.max_body_bytes = config_.max_body_bytes;
  rc.handler_pool = private_pool_.get();
  if (config_.telemetry) {
    // The hook runs on the loop thread; Histogram::observe is a few relaxed
    // atomic ops, well under the loop's per-request budget.
    obs::Histogram* latency = request_latency_;
    rc.observe_response = [latency](int /*status*/, double seconds) {
      latency->observe(seconds);
    };
  }
  // Route handlers only parse, route, and serialize — job compute lives on
  // the Service pool — so with no dedicated handler pool they run inline on
  // the loop thread (two context switches per request cheaper).
  rc.inline_handlers = private_pool_ == nullptr;
  reactor_ = std::make_unique<Reactor>(
      std::move(rc),
      [this](const http::Request& request) { return handle(request); });
}

Server::~Server() { stop(); }

runtime::ThreadPool& Server::connection_pool() {
  return private_pool_ ? *private_pool_ : runtime::ThreadPool::global();
}

void Server::start() { reactor_->start(); }

void Server::stop() { reactor_->stop(); }

int Server::port() const { return reactor_->port(); }

std::string Server::base_url() const {
  return "http://" + config_.host + ":" + std::to_string(port());
}

ServerCounters Server::counters() const {
  const ReactorCounters rc = reactor_->counters();
  ServerCounters out;
  out.connections = rc.connections;
  out.requests = rc.requests;
  out.responses_2xx = rc.responses_2xx;
  out.responses_4xx = rc.responses_4xx;
  out.responses_5xx = rc.responses_5xx;
  out.keepalive_reuses = rc.keepalive_reuses;
  out.idle_evictions = rc.idle_evictions;
  return out;
}

http::Response Server::handle(const http::Request& request) {
  // route() assigns the normalized route key before invoking the handler, so
  // a throwing handler still lands in the right per-route counter bucket.
  Route route_key = Route::kOther;
  http::Response response;
  try {
    response = route(request, route_key);
  } catch (const http::HttpError& e) {
    response = error_response(e.status(), e.code(), e.what());
  } catch (...) {
    service::ServiceStatus status =
        service::ServiceStatus::from_current_exception();
    response = error_response(http_status_for(status.code),
                              service::status_code_name(status.code),
                              status.message);
  }
  if (config_.telemetry) {
    const std::size_t cls =
        response.status >= 500 ? 2 : (response.status >= 400 ? 1 : 0);
    requests_by_route_[static_cast<std::size_t>(route_key)][cls]->inc();
  }
  return response;
}

http::Response Server::route(const http::Request& request, Route& route_key) {
  const std::string& path = request.path;
  if (path == "/v1/jobs") {
    route_key = Route::kJobs;
    if (request.method == "POST") return handle_submit(request);
    throw http::HttpError(405, "method_not_allowed", "use POST on /v1/jobs");
  }
  const std::string_view jobs_prefix = "/v1/jobs/";
  if (std::string_view(path).substr(0, jobs_prefix.size()) == jobs_prefix) {
    std::string_view tail = std::string_view(path).substr(jobs_prefix.size());
    // Optional "/artifact" or "/trace" sub-resource after the id.
    bool artifact = false;
    bool trace = false;
    const std::string_view artifact_suffix = "/artifact";
    const std::string_view trace_suffix = "/trace";
    if (tail.size() > artifact_suffix.size() &&
        tail.substr(tail.size() - artifact_suffix.size()) ==
            artifact_suffix) {
      artifact = true;
      tail = tail.substr(0, tail.size() - artifact_suffix.size());
    } else if (tail.size() > trace_suffix.size() &&
               tail.substr(tail.size() - trace_suffix.size()) ==
                   trace_suffix) {
      trace = true;
      tail = tail.substr(0, tail.size() - trace_suffix.size());
    }
    route_key = artifact ? Route::kJobArtifact
                         : (trace ? Route::kJobTrace : Route::kJob);
    if (tail.empty() || tail.size() > 18 ||
        tail.find_first_not_of("0123456789") != std::string_view::npos) {
      route_key = Route::kOther;
      throw http::HttpError(404, "not_found", "job ids are decimal integers");
    }
    std::uint64_t id = 0;
    for (char c : tail) id = id * 10 + static_cast<std::uint64_t>(c - '0');
    if (artifact) {
      if (request.method == "GET") return handle_job_artifact(id);
      throw http::HttpError(405, "method_not_allowed",
                            "use GET on /v1/jobs/{id}/artifact");
    }
    if (trace) {
      if (request.method == "GET") return handle_job_trace(id);
      throw http::HttpError(405, "method_not_allowed",
                            "use GET on /v1/jobs/{id}/trace");
    }
    if (request.method == "GET") return handle_job_get(id, request);
    if (request.method == "DELETE") return handle_job_delete(id);
    throw http::HttpError(405, "method_not_allowed",
                          "use GET or DELETE on /v1/jobs/{id}");
  }
  if (path == "/v1/status") {
    route_key = Route::kStatus;
    if (request.method == "GET") return handle_status();
    throw http::HttpError(405, "method_not_allowed", "use GET on /v1/status");
  }
  if (path == "/metrics") {
    route_key = Route::kMetrics;
    if (request.method == "GET") return handle_metrics();
    throw http::HttpError(405, "method_not_allowed", "use GET on /metrics");
  }
  throw http::HttpError(404, "not_found", "no route for " + path);
}

http::Response Server::handle_submit(const http::Request& request) {
  json::ParseOptions parse_options;
  parse_options.max_depth = 32;
  parse_options.max_bytes = config_.max_body_bytes;
  json::Value doc;
  try {
    doc = json::parse(request.body, parse_options);
  } catch (const ParseError& e) {
    throw http::HttpError(400, "parse_error", e.what());
  }
  if (!doc.is_object()) {
    throw http::HttpError(400, "invalid_argument",
                          "request body must be a JSON object");
  }
  require_known_keys(
      doc, {"name", "qasm", "benchmark", "seed", "measured", "config"},
      "job");

  try {
    const json::Value* qasm = doc.find("qasm");
    const json::Value* benchmark = doc.find("benchmark");
    if ((qasm == nullptr) == (benchmark == nullptr)) {
      throw http::HttpError(400, "invalid_argument",
                            "provide exactly one of 'qasm' or 'benchmark'");
    }

    qir::Circuit circuit;
    std::vector<int> measured;
    std::string name;
    if (benchmark != nullptr) {
      if (!benchmark->is_string()) {
        throw http::HttpError(400, "invalid_argument",
                              "'benchmark' must be a string");
      }
      const auto& b = revlib::get_benchmark(benchmark->as_string());
      circuit = b.circuit;
      measured = b.measured;
      name = b.name;
    } else {
      if (!qasm->is_string()) {
        throw http::HttpError(400, "invalid_argument",
                              "'qasm' must be a string");
      }
      circuit = qir::from_qasm(qasm->as_string());
      name = circuit.name();
    }

    if (const json::Value* m = doc.find("measured")) {
      measured.clear();
      for (const json::Value& q : m->as_array()) {
        std::int64_t qubit =
            int_field(q, "measured[]", 0, std::numeric_limits<int>::max());
        if (qubit >= circuit.num_qubits()) {
          throw http::HttpError(400, "invalid_argument",
                                "'measured' qubit " + std::to_string(qubit) +
                                    " out of range for a " +
                                    std::to_string(circuit.num_qubits()) +
                                    "-qubit circuit");
        }
        measured.push_back(static_cast<int>(qubit));
      }
    }
    if (const json::Value* n = doc.find("name")) {
      if (!n->is_string()) {
        throw http::HttpError(400, "invalid_argument",
                              "'name' must be a string");
      }
      name = n->as_string();
    }
    if (name.empty()) name = "circuit";

    std::uint64_t seed = 2025;  // the CLI's default --seed
    if (const json::Value* s = doc.find("seed")) {
      seed = static_cast<std::uint64_t>(int_field(
          *s, "seed", 0, std::numeric_limits<std::int64_t>::max()));
    }
    lock::FlowConfig cfg = parse_flow_config(doc.find("config"));

    service::JobHandle handle = service_.submit(
        lock::make_flow_job(name, std::move(circuit), std::move(measured),
                            cfg),
        seed);

    json::Writer w;
    w.begin_object();
    w.key("id").value(handle.id());
    w.key("state").value(service::job_state_name(handle.poll()));
    w.key("url").value("/v1/jobs/" + std::to_string(handle.id()));
    w.end_object();
    return json_response(202, w.str());
  } catch (...) {
    rethrow_as_http();
  }
}

http::Response Server::handle_job_get(std::uint64_t id,
                                      const http::Request& request) {
  service::JobHandle handle;
  try {
    handle = service_.handle(id);
  } catch (const InvalidArgument&) {
    throw http::HttpError(404, "not_found",
                          "unknown job id " + std::to_string(id));
  }
  service::JobOutcome outcome = service_.outcome(handle);
  if (service::is_terminal(outcome.state)) {
    bool include_timing = true;
    if (const std::string* t = request.query_param("timing")) {
      include_timing = !(*t == "0" || *t == "false");
    }
    return json_response(200, service::to_json(outcome, include_timing));
  }
  json::Writer w;
  w.begin_object();
  w.key("id").value(outcome.id);
  w.key("name").value(outcome.name);
  w.key("state").value(service::job_state_name(outcome.state));
  w.end_object();
  return json_response(200, w.str());
}

http::Response Server::handle_job_artifact(std::uint64_t id) {
  service::JobHandle handle;
  try {
    handle = service_.handle(id);
  } catch (const InvalidArgument&) {
    throw http::HttpError(404, "not_found",
                          "unknown job id " + std::to_string(id));
  }
  // Only kDone jobs have an artifact. Queued/running jobs are a 409 (try
  // again later), failed/cancelled ones permanently so.
  const service::JobState state = service_.poll(handle);
  if (state != service::JobState::kDone) {
    throw http::HttpError(409, "no_artifact",
                          "job " + std::to_string(id) + " is " +
                              service::job_state_name(state) +
                              "; artifacts exist only for done jobs");
  }
  http::Response res;
  res.status = 200;
  res.content_type = "application/octet-stream";
  // Byte-identical to the artifact store's file for this job (deterministic
  // encoder), so a fetched artifact can be diffed against the store.
  res.body = service_.artifact_bytes(handle);
  return res;
}

http::Response Server::handle_job_trace(std::uint64_t id) {
  service::JobHandle handle;
  try {
    handle = service_.handle(id);
  } catch (const InvalidArgument&) {
    throw http::HttpError(404, "not_found",
                          "unknown job id " + std::to_string(id));
  }
  // A trace exists once the job is terminal (failed jobs carry the spans up
  // to the failure; cancelled jobs an empty list). Queued/running jobs are a
  // 409: try again when the job finishes — the same protocol the artifact
  // endpoint speaks.
  service::JobOutcome outcome = service_.outcome(handle);
  if (!service::is_terminal(outcome.state)) {
    throw http::HttpError(409, "no_trace",
                          "job " + std::to_string(id) + " is " +
                              service::job_state_name(outcome.state) +
                              "; traces exist only for terminal jobs");
  }
  return json_response(200, service::trace_to_json(outcome));
}

http::Response Server::handle_job_delete(std::uint64_t id) {
  service::JobHandle handle;
  try {
    handle = service_.handle(id);
  } catch (const InvalidArgument&) {
    throw http::HttpError(404, "not_found",
                          "unknown job id " + std::to_string(id));
  }
  const bool cancelled = service_.cancel(handle);
  json::Writer w;
  w.begin_object();
  w.key("id").value(id);
  w.key("cancelled").value(cancelled);
  w.key("state").value(service::job_state_name(service_.poll(handle)));
  w.end_object();
  return json_response(200, w.str());
}

http::Response Server::handle_status() {
  const service::CacheStats cache = service_.cache_stats();
  const ServerCounters server = counters();
  runtime::ThreadPool& pool = connection_pool();

  json::Writer w;
  w.begin_object();
  w.key("schema").value(service::kStatusSchema);
  w.key("service").begin_object();
  w.key("jobs_submitted").value(service_.jobs_submitted());
  w.key("threads").value(service_.threads());
  w.end_object();
  // Registered simulation engines (capabilities from the sim registry) plus
  // this service's terminal-job tallies per engine.
  const auto backend_jobs = service_.backend_counters();
  w.key("backends").begin_object();
  for (const sim::BackendInfo& info : sim::registered_backends()) {
    w.key(info.name).begin_object();
    w.key("max_qubits").value(info.caps.max_qubits);
    w.key("clifford_only").value(info.caps.clifford_only);
    w.key("supports_noise").value(info.caps.supports_noise);
    auto it = backend_jobs.find(info.name);
    w.key("jobs_done").value(it == backend_jobs.end() ? 0 : it->second.done);
    w.key("jobs_failed")
        .value(it == backend_jobs.end() ? 0 : it->second.failed);
    w.end_object();
  }
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("evictions").value(cache.evictions);
  w.key("entries").value(cache.entries);
  w.key("capacity").value(cache.capacity);
  w.end_object();
  w.key("store").begin_object();
  if (const service::ArtifactStore* store = service_.artifact_store()) {
    const service::ArtifactStoreStats stats = store->stats();
    w.key("enabled").value(true);
    w.key("dir").value(store->config().dir);
    w.key("hits").value(stats.hits);
    w.key("misses").value(stats.misses);
    w.key("writes").value(stats.writes);
    w.key("corrupt").value(stats.corrupt);
    w.key("evictions").value(stats.evictions);
    w.key("entries").value(stats.entries);
  } else {
    w.key("enabled").value(false);
  }
  w.end_object();
  w.key("server").begin_object();
  w.key("connections").value(server.connections);
  w.key("requests").value(server.requests);
  w.key("responses_2xx").value(server.responses_2xx);
  w.key("responses_4xx").value(server.responses_4xx);
  w.key("responses_5xx").value(server.responses_5xx);
  w.key("keepalive_reuses").value(server.keepalive_reuses);
  w.key("idle_evictions").value(server.idle_evictions);
  // Start time (wall clock, unix seconds) and uptime (steady clock): the
  // pair dispatcher aggregation needs to turn per-node requests_total
  // deltas into rates.
  w.key("started_unix")
      .value(static_cast<std::int64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              start_wall_.time_since_epoch())
              .count()));
  w.key("uptime_seconds")
      .value(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_steady_)
                 .count());
  // Monotonic per-route/status-class tallies from the telemetry registry
  // (all zero when ServerConfig::telemetry is off). Fixed route and class
  // order so the document layout is stable.
  w.key("requests_total").begin_object();
  static constexpr const char* kClasses[kStatusClassCount] = {"2xx", "4xx",
                                                              "5xx"};
  for (std::size_t r = 0; r < kRouteCount; ++r) {
    w.key(route_name(static_cast<Route>(r))).begin_object();
    for (std::size_t c = 0; c < kStatusClassCount; ++c) {
      w.key(kClasses[c]).value(requests_by_route_[r][c]->value());
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("connection_pool").begin_object();
  w.key("threads").value(pool.size());
  w.key("queued").value(pool.queued());
  w.end_object();
  // Full pool telemetry of the pool the SERVICE executes jobs on (the
  // handler pool above only parses/serializes).
  const runtime::ThreadPool::Stats job_pool = service_.pool_stats();
  w.key("job_pool").begin_object();
  w.key("threads").value(job_pool.threads);
  w.key("queued").value(job_pool.queued);
  w.key("active").value(job_pool.active);
  w.key("tasks_submitted").value(job_pool.submitted);
  w.key("tasks_completed").value(job_pool.completed);
  w.end_object();
  w.end_object();
  return json_response(200, w.str());
}

http::Response Server::handle_metrics() {
  // One merged exposition: the Service's registry (job stages + the
  // cache/store/backend/pool collectors) followed by the server's HTTP-layer
  // series. render_prometheus merges families by name, so the order here
  // only decides which HELP text wins on a (non-existent) name clash.
  std::vector<obs::Family> families = service_.telemetry().collect();
  std::vector<obs::Family> http_families = http_registry_.collect();
  families.insert(families.end(),
                  std::make_move_iterator(http_families.begin()),
                  std::make_move_iterator(http_families.end()));
  http::Response res;
  res.status = 200;
  res.content_type = "text/plain; version=0.0.4; charset=utf-8";
  res.body = obs::render_prometheus(families);
  return res;
}

}  // namespace tetris::net
