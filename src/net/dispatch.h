#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/http.h"
#include "net/reactor.h"

namespace tetris::net {

/// Consistent-hash ring over `num_nodes` backends. Each node contributes
/// `replicas` virtual points (FNV-1a of node index × replica index), so keys
/// spread evenly and — the property the dispatcher's cache affinity rides on
/// — a fixed key maps to a fixed node for a fixed node count. Adding a node
/// remaps only the keys falling into the new node's arcs (≈ 1/(N+1) of the
/// space), which is what makes a rolling scale-out cheap on warm caches.
class HashRing {
 public:
  explicit HashRing(std::size_t num_nodes, std::size_t replicas = 64);

  /// Node index owning `key` (a circuit content_hash or any 64-bit digest).
  std::size_t node_for(std::uint64_t key) const;

  std::size_t num_nodes() const { return num_nodes_; }

 private:
  std::size_t num_nodes_;
  /// (point, node) pairs sorted by point; node_for binary-searches the first
  /// point at or after the key's hash, wrapping to the ring's start.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

/// Dispatcher knobs.
struct DispatcherConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; Dispatcher::port() reports the bound one
  int backlog = 64;
  /// Base URLs of the `serve` nodes to shard across ("http://host:port").
  std::vector<std::string> nodes;
  /// Handler workers: 0 shares the runtime's global pool; a positive value
  /// gives the dispatcher a private pool (recommended — upstream legs block).
  unsigned handler_threads = 0;
  int upstream_timeout_ms = 30000;  ///< per-leg connect/send/recv timeout
  int idle_timeout_ms = 10000;      ///< downstream keep-alive idle eviction
  int request_deadline_ms = 30000;  ///< downstream slow-request 408 deadline
  std::size_t max_requests_per_connection = 0;  ///< 0 = unlimited
  std::size_t max_header_bytes = std::size_t{16} << 10;
  std::size_t max_body_bytes = std::size_t{1} << 20;
  std::size_t hash_replicas = 64;  ///< virtual points per node on the ring
};

/// Per-node dispatch totals (diagnostics + affinity tests).
struct DispatcherNodeCounters {
  std::string url;
  std::uint64_t jobs_routed = 0;       ///< POST /v1/jobs sharded here
  std::uint64_t upstream_failures = 0; ///< legs answered 502 downstream
};

/// HTTP front-end that scales the single-node REST server horizontally:
///
///   POST   /v1/jobs            sharded by consistent hash on the submitted
///                              circuit's content_hash() — the same circuit
///                              always lands on the same node, so each
///                              node's LRU result cache stays hot for its
///                              shard of the keyspace. The 202 response
///                              carries the *dispatcher's* job id; the
///                              node-local id is kept in an id→node map.
///   GET    /v1/jobs/{id}       proxied to the owning node (response body
///   GET    /v1/jobs/{id}/artifact   passed through verbatim — wire bytes
///   GET    /v1/jobs/{id}/trace stay identical to the node's, which in turn
///   DELETE /v1/jobs/{id}       match the in-process facade). Idempotent
///                              GETs are retried once on a transient
///                              connection error; then the job answers
///                              502 {"error":{"code":"upstream_unavailable"}}.
///   GET    /v1/status          fan-out aggregation: every node's status
///                              document under "nodes" (unreachable nodes
///                              are marked, never thrown on) plus dispatcher
///                              totals; schema
///                              service::kDispatchStatusSchema.
///   GET    /metrics            fan-out aggregation of every node's
///                              Prometheus exposition: each node's series
///                              re-exported with an injected node="<url>"
///                              label (HELP/TYPE deduplicated, families
///                              regrouped), plus the dispatcher's own
///                              tetris_dispatch_* series — node liveness,
///                              per-node routing counters, downstream
///                              traffic totals.
///
/// Note on ids: proxied outcome documents carry the node-local job id in
/// their "id" field (bodies are passed through byte-for-byte); the id the
/// dispatcher hands out in the submit response is the one to poll.
///
/// Built on the same net::Reactor event loop as Server (keep-alive,
/// pipelining, slow-loris eviction all apply downstream). Upstream legs are
/// blocking keep-alive Clients, one per node, serialized per node.
class Dispatcher {
 public:
  explicit Dispatcher(DispatcherConfig config);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  void start();
  void stop();

  int port() const;
  std::string base_url() const;
  const DispatcherConfig& config() const { return config_; }
  ReactorCounters counters() const;
  std::vector<DispatcherNodeCounters> node_counters() const;
  const HashRing& ring() const { return ring_; }

  /// Routes one parsed request — the pure core, unit-testable without
  /// sockets (upstream legs still talk to real nodes).
  http::Response handle(const http::Request& request);

 private:
  struct Node {
    Node(const std::string& base_url, int timeout_ms);
    std::string url;
    std::mutex mutex;  ///< serializes the persistent upstream connection
    Client client;
    std::uint64_t jobs_routed = 0;
    std::uint64_t upstream_failures = 0;
  };
  struct JobRef {
    std::size_t node = 0;
    std::uint64_t local_id = 0;
  };

  http::Response handle_submit(const http::Request& request);
  http::Response handle_job(const http::Request& request);
  http::Response handle_status();
  http::Response handle_metrics();

  /// One upstream round trip; `retry` re-issues the request once on a
  /// transport error (idempotent legs only). Throws tetris::Error when the
  /// node stays unreachable.
  http::Response upstream(Node& node, const std::string& method,
                          const std::string& target, const std::string& body,
                          const std::string& content_type, bool retry);

  /// Shard key for a submit body: content_hash of the circuit when it
  /// parses, FNV-1a of the raw payload text otherwise (so malformed
  /// circuits still route deterministically and the owning node produces
  /// the canonical validation error).
  std::uint64_t shard_key(const std::string& body) const;

  DispatcherConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<runtime::ThreadPool> private_pool_;
  std::unique_ptr<Reactor> reactor_;

  mutable std::mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, JobRef> jobs_;
  std::uint64_t next_id_ = 1;
};

}  // namespace tetris::net
