#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/http.h"
#include "net/socket.h"
#include "runtime/thread_pool.h"
#include "service/service.h"

namespace tetris::net {

/// Server knobs.
struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address (loopback by default)
  int port = 0;                    ///< 0 = ephemeral; see Server::port()
  int backlog = 64;
  /// Connection workers: 0 shares the runtime's global ThreadPool, a
  /// positive value gives the server a private pool of that size. A private
  /// pool isolates socket I/O from compute when the global pool is narrow.
  unsigned connection_threads = 0;
  /// Per-socket receive/send timeout; a peer silent for longer drops.
  int io_timeout_ms = 10000;
  /// Wall-clock budget for reading one whole request (head + body). The
  /// per-recv io_timeout resets on every byte, so without this cap a peer
  /// dribbling one byte per few seconds would hold a connection worker
  /// indefinitely (slow-loris); past the deadline the server answers 408.
  int request_deadline_ms = 30000;
  /// Header-block cap; requests with larger heads are answered 431.
  std::size_t max_header_bytes = std::size_t{16} << 10;
  /// Body cap (also the json::parse max_bytes); larger bodies answer 413.
  std::size_t max_body_bytes = std::size_t{1} << 20;
};

/// Monotonic traffic counters, readable while serving (GET /v1/status).
struct ServerCounters {
  std::uint64_t connections = 0;   ///< accepted sockets
  std::uint64_t requests = 0;      ///< requests parsed far enough to route
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
};

/// Embedded REST front-end over a service::Service.
///
/// Endpoints (all request/response bodies are JSON):
///
///   POST   /v1/jobs        submit a job; body carries the circuit (inline
///                          OpenQASM under "qasm" or a built-in RevLib name
///                          under "benchmark"), optional "name", "seed",
///                          "measured" and "config" {shots, max_gates,
///                          alphabet, gap, fuse, sample_jobs}; answers 202
///                          {"id", "state", "url"}
///   GET    /v1/jobs/{id}   job outcome. Terminal jobs answer the full
///                          serialize.h JobOutcome document (append
///                          ?timing=0 to omit the wall-time fields and make
///                          the body byte-identical across runs); queued/
///                          running jobs answer {"id", "state"} . Repeatable:
///                          served via Service::outcome, which never touches
///                          drain's once-only cursor
///   GET    /v1/jobs/{id}/artifact
///                          the job's versioned binary artifact
///                          (docs/FORMATS.md) as application/octet-stream —
///                          byte-identical to the artifact store's file for
///                          the same job. 409 "no_artifact" unless the job
///                          is done
///   DELETE /v1/jobs/{id}   cancel-if-queued; answers {"id", "cancelled",
///                          "state"}
///   GET    /v1/status      service/cache/store/pool/server counters
///
/// docs/API.md is the full route-by-route reference with request/response
/// schemas and curl examples.
///
/// Errors are structured: {"error": {"code", "message"}} with the HTTP
/// status mapped from the service::StatusCode family (invalid_argument and
/// parse_error are 400, compile/lock errors 422, internals 500) plus the
/// transport-level codes (not_found, method_not_allowed, payload_too_large,
/// length_required, request_timeout, bad_request).
///
/// Threading: `start()` spawns one dedicated accept thread; each accepted
/// connection is handled as one task (read one request, answer, close) on
/// the connection pool (ServerConfig::connection_threads). Job compute runs
/// wherever the Service puts it — give the Service a private pool
/// (ServiceConfig::num_threads > 0) so POST /v1/jobs stays asynchronous even
/// when connection tasks execute on runtime pool workers (a Service sharing
/// the global pool runs worker-thread submissions inline by design).
///
/// Determinism over the wire: a job's outcome is a pure function of
/// (circuit, seed, flow fingerprint), so GET /v1/jobs/{id}?timing=0 is
/// byte-identical to service::to_json(outcome, /*include_timing=*/false) of
/// the same submission in-process — the contract tests/test_net.cpp pins.
class Server {
 public:
  /// Binds and listens immediately (so port() is valid), but serves nothing
  /// until start(). Throws on bind failure.
  Server(service::Service& service, ServerConfig config = {});
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop. start() after stop() is not supported.
  void start();

  /// Stops accepting, waits for in-flight connection tasks, joins the
  /// accept thread. Idempotent. Jobs already submitted keep running in the
  /// Service (its destructor waits for them).
  void stop();

  int port() const { return listener_.port(); }
  std::string base_url() const;
  const ServerConfig& config() const { return config_; }
  ServerCounters counters() const;

  /// Routes one parsed request to a response — the pure core of the server,
  /// also exercised directly by unit tests (no sockets involved).
  http::Response handle(const http::Request& request);

 private:
  runtime::ThreadPool& connection_pool();
  void accept_loop();
  void serve_connection(Socket socket);

  http::Response handle_submit(const http::Request& request);
  http::Response handle_job_get(std::uint64_t id, const http::Request& request);
  http::Response handle_job_artifact(std::uint64_t id);
  http::Response handle_job_delete(std::uint64_t id);
  http::Response handle_status();

  service::Service& service_;
  ServerConfig config_;
  Listener listener_;
  std::unique_ptr<runtime::ThreadPool> private_pool_;

  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;           // guards counters_ + active_ below
  std::condition_variable idle_cv_;    // signalled when active_ hits zero
  std::size_t active_connections_ = 0;
  ServerCounters counters_;
};

}  // namespace tetris::net
