#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "net/http.h"
#include "net/reactor.h"
#include "obs/registry.h"
#include "runtime/thread_pool.h"
#include "service/service.h"

namespace tetris::net {

/// Server knobs.
struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address (loopback by default)
  int port = 0;                    ///< 0 = ephemeral; see Server::port()
  int backlog = 64;
  /// Handler workers: 0 (the default) runs route handlers inline on the
  /// event-loop thread — handlers only parse/route/serialize (job compute
  /// lives on the Service pool), so skipping the pool hop saves two context
  /// switches per request. A positive value gives the server a private
  /// handler pool of that size, isolating the loop from handler latency
  /// when requests carry heavyweight payloads (large QASM bodies).
  unsigned connection_threads = 0;
  /// Idle timeout: a keep-alive connection with no request in flight and no
  /// bytes arriving for this long is dropped (silently — no response owed).
  int io_timeout_ms = 10000;
  /// Wall-clock budget from the first byte of a request to its completion;
  /// a peer dribbling one header byte per poll wakeup (slow-loris) is
  /// answered 408 and closed when this expires.
  int request_deadline_ms = 30000;
  /// Requests served on one connection before the server closes it (the
  /// final response carries "Connection: close"); 0 = unlimited.
  std::size_t max_requests_per_connection = 0;
  /// Header-block cap; requests with larger heads are answered 431.
  std::size_t max_header_bytes = std::size_t{16} << 10;
  /// Body cap (also the json::parse max_bytes); larger bodies answer 413.
  std::size_t max_body_bytes = std::size_t{1} << 20;
  /// HTTP-layer telemetry: the reactor's request-latency observation and the
  /// per-route request counters recorded by handle(). On by default; off
  /// compiles the recording out of the request path entirely — the mode
  /// bench/serve_throughput.cpp compares against to bound telemetry overhead
  /// (<= 3%). /metrics itself stays routable either way (its HTTP-layer
  /// series just stop moving).
  bool telemetry = true;
};

/// Monotonic traffic counters, readable while serving (GET /v1/status).
struct ServerCounters {
  std::uint64_t connections = 0;  ///< accepted sockets
  std::uint64_t requests = 0;     ///< complete requests routed to a handler
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t keepalive_reuses = 0;  ///< requests beyond a conn's first
  std::uint64_t idle_evictions = 0;    ///< connections dropped by timeout
};

/// Embedded REST front-end over a service::Service.
///
/// Endpoints (all request/response bodies are JSON):
///
///   POST   /v1/jobs        submit a job; body carries the circuit (inline
///                          OpenQASM under "qasm" or a built-in RevLib name
///                          under "benchmark"), optional "name", "seed",
///                          "measured" and "config" {shots, max_gates,
///                          alphabet, gap, fuse, sample_jobs}; answers 202
///                          {"id", "state", "url"}
///   GET    /v1/jobs/{id}   job outcome. Terminal jobs answer the full
///                          serialize.h JobOutcome document (append
///                          ?timing=0 to omit the wall-time fields and make
///                          the body byte-identical across runs); queued/
///                          running jobs answer {"id", "state"} . Repeatable:
///                          served via Service::outcome, which never touches
///                          drain's once-only cursor
///   GET    /v1/jobs/{id}/artifact
///                          the job's versioned binary artifact
///                          (docs/FORMATS.md) as application/octet-stream —
///                          byte-identical to the artifact store's file for
///                          the same job. 409 "no_artifact" unless the job
///                          is done
///   GET    /v1/jobs/{id}/trace
///                          the job's stage trace (serialize.h
///                          trace_to_json): one span per pipeline/service
///                          stage with offsets, durations, and attributes.
///                          409 "no_trace" unless the job is terminal.
///                          Timing lives ONLY here — the default job
///                          document stays byte-identical with tracing on
///   DELETE /v1/jobs/{id}   cancel-if-queued; answers {"id", "cancelled",
///                          "state"}
///   GET    /v1/status      service/cache/store/pool/server counters,
///                          uptime, and per-route/status-class request
///                          tallies
///   GET    /metrics        Prometheus text exposition (format 0.0.4) of
///                          the Service registry (job stages, cache, store,
///                          backends, pool) merged with the server's
///                          HTTP-layer series (docs/OBSERVABILITY.md)
///
/// docs/API.md is the full route-by-route reference with request/response
/// schemas and curl examples.
///
/// Errors are structured: {"error": {"code", "message"}} with the HTTP
/// status mapped from the service::StatusCode family (invalid_argument and
/// parse_error are 400, compile/lock errors 422, internals 500) plus the
/// transport-level codes (not_found, method_not_allowed, payload_too_large,
/// length_required, request_timeout, bad_request).
///
/// Threading: the server is a thin route table over a net::Reactor — one
/// event-loop thread owns every socket (accept + readiness + write-back).
/// Complete requests run `handle()` inline on the loop by default, or on a
/// private handler pool when ServerConfig::connection_threads > 0 (responses
/// then complete back onto the loop via the reactor's wake pipe).
/// Connections are persistent (HTTP/1.1 keep-alive) and pipelined
/// requests are answered in order. Job compute runs wherever the Service
/// puts it — give the Service a private pool (ServiceConfig::num_threads >
/// 0) so POST /v1/jobs stays asynchronous even when handler tasks execute on
/// runtime pool workers (a Service sharing the global pool runs
/// worker-thread submissions inline by design).
///
/// Determinism over the wire: a job's outcome is a pure function of
/// (circuit, seed, flow fingerprint), so GET /v1/jobs/{id}?timing=0 is
/// byte-identical to service::to_json(outcome, /*include_timing=*/false) of
/// the same submission in-process — the contract tests/test_net.cpp pins.
class Server {
 public:
  /// Binds and listens immediately (so port() is valid), but serves nothing
  /// until start(). Throws on bind failure.
  Server(service::Service& service, ServerConfig config = {});
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the event loop. start() after stop() is not supported.
  void start();

  /// Stops accepting, waits for in-flight handlers, flushes queued
  /// responses, joins the loop. Idempotent. Jobs already submitted keep
  /// running in the Service (its destructor waits for them).
  void stop();

  int port() const;
  std::string base_url() const;
  const ServerConfig& config() const { return config_; }
  ServerCounters counters() const;

  /// Routes one parsed request to a response — the pure core of the server,
  /// also exercised directly by unit tests (no sockets involved).
  http::Response handle(const http::Request& request);

 private:
  /// Normalized route keys for the per-route request counters: one label
  /// value per route shape (ids collapse to "{id}"), so cardinality is fixed
  /// whatever clients request.
  enum class Route {
    kJobs = 0,        // POST /v1/jobs
    kJob,             // /v1/jobs/{id}
    kJobArtifact,     // /v1/jobs/{id}/artifact
    kJobTrace,        // /v1/jobs/{id}/trace
    kStatus,          // /v1/status
    kMetrics,         // /metrics
    kOther,           // everything else (404s, bad paths)
    kCount_,
  };
  static constexpr std::size_t kRouteCount =
      static_cast<std::size_t>(Route::kCount_);
  static constexpr std::size_t kStatusClassCount = 3;  // 2xx / 4xx / 5xx
  static const char* route_name(Route route);

  runtime::ThreadPool& connection_pool();

  http::Response handle_submit(const http::Request& request);
  http::Response handle_job_get(std::uint64_t id, const http::Request& request);
  http::Response handle_job_artifact(std::uint64_t id);
  http::Response handle_job_trace(std::uint64_t id);
  http::Response handle_job_delete(std::uint64_t id);
  http::Response handle_status();
  http::Response handle_metrics();
  http::Response route(const http::Request& request, Route& route_key);

  service::Service& service_;
  ServerConfig config_;
  std::unique_ptr<runtime::ThreadPool> private_pool_;
  std::unique_ptr<Reactor> reactor_;

  /// HTTP-layer telemetry, separate from the Service's registry so neither
  /// object holds a collector into the other's lifetime; /metrics renders
  /// the two family lists merged. Instruments are pre-registered in the
  /// constructor — the request path only touches stable references (one
  /// relaxed fetch_add per request when telemetry is on).
  obs::Registry http_registry_;
  obs::Counter* requests_by_route_[kRouteCount][kStatusClassCount] = {};
  obs::Histogram* request_latency_ = nullptr;
  std::chrono::steady_clock::time_point start_steady_;
  std::chrono::system_clock::time_point start_wall_;
};

}  // namespace tetris::net
