#pragma once

#include <cstddef>
#include <string>

namespace tetris::net {

/// Thin RAII layer over POSIX TCP sockets — everything src/net needs and
/// nothing more. IPv4 only (the front-end binds loopback by default), and
/// every socket carries send/receive timeouts so a stalled peer can never
/// wedge a connection worker forever.
///
/// All failures throw tetris::Error subclasses with errno text; none of
/// these calls ever raise SIGPIPE (writes use MSG_NOSIGNAL).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// SO_RCVTIMEO / SO_SNDTIMEO, applied to both directions.
  void set_timeout_ms(int timeout_ms);

  /// O_NONBLOCK — recv/send return kWouldBlock instead of sleeping. The
  /// event-loop server runs every connection socket this way; the blocking
  /// client never calls it.
  void set_nonblocking();

  /// TCP_NODELAY (best-effort): small request/response round trips on a
  /// persistent connection must not sit out Nagle's algorithm waiting for
  /// an ACK. Both the client and the reactor's accepted sockets set this.
  void set_nodelay();

  /// Blocking connect to `host:port` (numeric IPv4 or "localhost").
  static Socket connect(const std::string& host, int port, int timeout_ms);

  /// Receives at most `capacity` bytes. Returns 0 on orderly shutdown.
  /// Throws on error, including a receive-timeout expiring.
  std::size_t recv_some(char* buffer, std::size_t capacity);

  /// Sends the whole buffer (looping over short writes).
  void send_all(const char* data, std::size_t size);
  void send_all(const std::string& data) { send_all(data.data(), data.size()); }

  /// Non-blocking I/O outcome. kClosed is recv-only (orderly shutdown);
  /// kError covers resets and every other hard failure — the reactor's
  /// response to either is to drop the connection, so no errno text is kept.
  enum class IoResult { kOk, kWouldBlock, kClosed, kError };

  /// Non-blocking receive into `buffer`; `*received` is set on kOk.
  IoResult recv_nonblocking(char* buffer, std::size_t capacity,
                            std::size_t* received);

  /// Non-blocking send of up to `size` bytes; `*sent` is set on kOk (short
  /// writes are normal — the reactor keeps the tail buffered).
  IoResult send_nonblocking(const char* data, std::size_t size,
                            std::size_t* sent);

 private:
  int fd_ = -1;
};

/// Listening IPv4 socket bound to `host:port`. Port 0 binds an ephemeral
/// port; `port()` reports the one the kernel picked.
class Listener {
 public:
  Listener(const std::string& host, int port, int backlog);
  int port() const { return port_; }
  /// Raw fd, so a reactor can put the listener in its poll set.
  int fd() const { return fd_.fd(); }

  /// Waits up to `timeout_ms` for a connection. Returns an invalid Socket on
  /// timeout (so an accept loop can poll a stop flag); throws on hard error.
  /// `timeout_ms` 0 is a non-blocking accept.
  Socket accept(int timeout_ms);

  /// Unblocks pending and future accepts; they return invalid Sockets.
  void shutdown();

 private:
  Socket fd_;
  int port_ = 0;
};

}  // namespace tetris::net
