#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace tetris::net::http {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

const std::string* find_pair(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    std::string_view name, bool lowercase_needle) {
  const std::string needle = lowercase_needle ? lower(name) : std::string(name);
  for (const auto& [k, v] : pairs) {
    if (k == needle) return &v;
  }
  return nullptr;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits a header block (every line "Name: value\r\n") into lowercased
/// name/value pairs. `lines` excludes the start line and the final blank.
std::vector<std::pair<std::string, std::string>> parse_headers(
    std::string_view block) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      throw HttpError(400, "bad_request", "header line without CRLF");
    }
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw HttpError(400, "bad_request", "malformed header line");
    }
    std::string name = lower(line.substr(0, colon));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      throw HttpError(400, "bad_request", "whitespace in header name");
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    headers.emplace_back(std::move(name), std::string(value));
  }
  return headers;
}

}  // namespace

const std::string* Request::header(std::string_view name) const {
  return find_pair(headers, name, /*lowercase_needle=*/true);
}

const std::string* Request::query_param(std::string_view name) const {
  return find_pair(query, name, /*lowercase_needle=*/false);
}

const std::string* Response::header(std::string_view name) const {
  return find_pair(headers, name, /*lowercase_needle=*/true);
}

bool Request::keep_alive() const {
  if (const std::string* connection = header("connection")) {
    const std::string value = lower(*connection);
    if (value == "close") return false;
    if (value == "keep-alive") return true;
  }
  return version != "HTTP/1.0";  // HTTP/1.1 persists by default
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

std::string url_decode(std::string_view text, bool plus_to_space) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+' && plus_to_space) {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= text.size()) {
        throw HttpError(400, "bad_request", "truncated percent escape");
      }
      int hi = hex_digit(text[i + 1]);
      int lo = hex_digit(text[i + 2]);
      if (hi < 0 || lo < 0) {
        throw HttpError(400, "bad_request", "invalid percent escape");
      }
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

Request parse_request_head(std::string_view head) {
  std::size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) {
    throw HttpError(400, "bad_request", "missing request line");
  }
  std::string_view line = head.substr(0, eol);

  Request req;
  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = (sp1 == std::string_view::npos)
                        ? std::string_view::npos
                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    throw HttpError(400, "bad_request", "malformed request line");
  }
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw HttpError(501, "http_version_not_supported",
                    "unsupported HTTP version '" + std::string(version) + "'");
  }
  req.version = std::string(version);
  if (req.target.empty() || req.target[0] != '/') {
    throw HttpError(400, "bad_request",
                    "request target must be an absolute path");
  }

  // Split target into path and query, decoding both.
  std::string_view target = req.target;
  std::size_t qmark = target.find('?');
  req.path = url_decode(target.substr(0, qmark), /*plus_to_space=*/false);
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      std::size_t amp = qs.find('&');
      std::string_view pair = qs.substr(0, amp);
      qs = (amp == std::string_view::npos) ? std::string_view()
                                           : qs.substr(amp + 1);
      if (pair.empty()) continue;
      std::size_t eq = pair.find('=');
      std::string key = url_decode(pair.substr(0, eq), /*plus_to_space=*/true);
      std::string value = (eq == std::string_view::npos)
                              ? std::string()
                              : url_decode(pair.substr(eq + 1),
                                           /*plus_to_space=*/true);
      req.query.emplace_back(std::move(key), std::move(value));
    }
  }

  req.headers = parse_headers(head.substr(eol + 2));
  return req;
}

Response parse_response_head(std::string_view head) {
  std::size_t eol = head.find("\r\n");
  if (eol == std::string_view::npos) {
    throw HttpError(400, "bad_response", "missing status line");
  }
  std::string_view line = head.substr(0, eol);
  if (line.rfind("HTTP/1.", 0) != 0) {
    throw HttpError(400, "bad_response", "not an HTTP response");
  }
  std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > line.size()) {
    throw HttpError(400, "bad_response", "malformed status line");
  }
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < line.size(); ++i) {
    char c = line[i];
    if (c < '0' || c > '9') {
      throw HttpError(400, "bad_response", "non-numeric status code");
    }
    status = status * 10 + (c - '0');
  }
  Response res;
  res.status = status;
  res.headers = parse_headers(head.substr(eol + 2));
  if (const std::string* ct = res.header("content-type")) {
    res.content_type = *ct;
  }
  return res;
}

std::size_t body_length(const Request& request, std::size_t max_body) {
  if (const std::string* te = request.header("transfer-encoding")) {
    (void)te;
    throw HttpError(411, "length_required",
                    "chunked transfer encoding is not supported; "
                    "send a Content-Length");
  }
  const std::string* cl = nullptr;
  for (const auto& [name, value] : request.headers) {
    if (name != "content-length") continue;
    if (cl != nullptr && *cl != value) {
      throw HttpError(400, "bad_request", "conflicting Content-Length headers");
    }
    cl = &value;
  }
  if (cl == nullptr) return 0;
  if (cl->empty() || cl->size() > 18 ||
      cl->find_first_not_of("0123456789") != std::string::npos) {
    throw HttpError(400, "bad_request", "invalid Content-Length");
  }
  std::size_t length = 0;
  for (char c : *cl) length = length * 10 + static_cast<std::size_t>(c - '0');
  if (length > max_body) {
    throw HttpError(413, "payload_too_large",
                    "request body of " + *cl + " bytes exceeds the limit of " +
                        std::to_string(max_body) + " bytes");
  }
  return length;
}

std::string format_response(const Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string format_request(const std::string& method, const std::string& target,
                           const std::string& host, const std::string& body,
                           const std::string& content_type, bool keep_alive) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  if (!body.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

// ------------------------------------------------------ incremental parser

std::size_t RequestParser::consume(const char* data, std::size_t size) {
  std::size_t consumed = 0;
  while (consumed < size) {
    if (state_ == State::kHead) {
      // Grow the head, scanning for the blank line. Re-scanning starts a
      // few bytes back so a "\r\n\r\n" split across consume() calls is
      // still found.
      const std::size_t scan_from = head_.size() < 3 ? 0 : head_.size() - 3;
      head_.append(data + consumed, size - consumed);
      consumed = size;
      const std::size_t head_end = head_.find("\r\n\r\n", scan_from);
      if (head_end == std::string::npos) {
        // No terminator yet. Fail as soon as the cap is crossed — a hostile
        // peer dribbling an endless header block must not buffer forever.
        if (head_.size() > limits_.max_header_bytes) {
          fail(431, "headers_too_large",
               "header block exceeds " +
                   std::to_string(limits_.max_header_bytes) + " bytes");
        }
        return consumed;
      }
      // The cap applies to complete heads too — without this, an oversized
      // header block that arrives in one read would slip past the
      // dribble-time check above.
      if (head_end + 4 > limits_.max_header_bytes) {
        fail(431, "headers_too_large",
             "header block exceeds " +
                 std::to_string(limits_.max_header_bytes) + " bytes");
        return consumed;
      }
      // Bytes past the terminator belong to the body (or the next pipelined
      // request); hand them back to the caller's cursor.
      const std::size_t extra = head_.size() - (head_end + 4);
      consumed -= extra;
      head_.resize(head_end + 4);
      try {
        request_ = parse_request_head(head_);
        body_needed_ = body_length(request_, limits_.max_body_bytes);
      } catch (const HttpError& e) {
        state_ = State::kError;
        error_ = std::make_unique<HttpError>(e);
        return consumed;
      }
      head_.clear();
      state_ = body_needed_ == 0 ? State::kDone : State::kBody;
    } else if (state_ == State::kBody) {
      const std::size_t take = std::min(size - consumed, body_needed_);
      request_.body.append(data + consumed, take);
      consumed += take;
      body_needed_ -= take;
      if (body_needed_ == 0) state_ = State::kDone;
    } else {
      break;  // kDone / kError: stop consuming; remainder is not ours
    }
  }
  return consumed;
}

const HttpError& RequestParser::error() const {
  TETRIS_REQUIRE(state_ == State::kError && error_ != nullptr,
                 "http::RequestParser::error: parser is not in kError");
  return *error_;
}

Request RequestParser::take() {
  TETRIS_REQUIRE(state_ == State::kDone,
                 "http::RequestParser::take: no complete request buffered");
  Request out = std::move(request_);
  reset();
  return out;
}

void RequestParser::reset() {
  state_ = State::kHead;
  head_.clear();
  request_ = Request();
  body_needed_ = 0;
  error_.reset();
}

void RequestParser::fail(int status, const std::string& code,
                         const std::string& message) {
  state_ = State::kError;
  error_ = std::make_unique<HttpError>(status, code, message);
}

}  // namespace tetris::net::http
