#include "net/reactor.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "net/socket.h"
#include "runtime/thread_pool.h"

namespace tetris::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string error_body(const std::string& code, const std::string& message) {
  json::Writer w;
  w.begin_object();
  w.key("error").begin_object();
  w.key("code").value(code);
  w.key("message").value(message);
  w.end_object();
  w.end_object();
  return w.str();
}

http::Response error_response(int status, const std::string& code,
                              const std::string& message) {
  http::Response res;
  res.status = status;
  res.body = error_body(code, message);
  return res;
}

/// One accepted socket plus everything the loop tracks about it.
struct Connection {
  Connection(std::uint64_t conn_id, Socket s,
             http::RequestParser::Limits limits)
      : id(conn_id), socket(std::move(s)), parser(limits) {}

  std::uint64_t id = 0;
  Socket socket;
  http::RequestParser parser;
  std::string in;   ///< read but not yet parsed (pipelined surplus)
  std::string out;  ///< formatted responses awaiting the socket
  std::size_t out_pos = 0;

  bool handler_inflight = false;
  bool close_after_write = false;  ///< last response queued; drain then close
  bool peer_closed = false;        ///< orderly FIN seen; finish writes, close
  std::size_t requests_served = 0;

  Clock::time_point last_activity;   ///< idle-timeout reference
  Clock::time_point request_start;   ///< 408-deadline reference
  bool request_in_progress = false;  ///< a request has started arriving

  bool want_read() const {
    return !handler_inflight && !close_after_write && !peer_closed;
  }
  bool want_write() const { return out_pos < out.size(); }
};

/// Response finished by a handler thread, travelling back to the loop.
struct Completion {
  std::uint64_t conn_id = 0;
  http::Response response;
  bool keep_alive = false;
};

}  // namespace

struct Reactor::Impl {
  Impl(const ReactorConfig& config, Handler handler)
      : listener(config.host, config.port, config.backlog),
        handler(std::move(handler)) {
    // A socketpair, not a pipe: the wake fds travel through Socket, whose
    // non-blocking I/O uses send/recv (ENOTSOCK on a pipe fd).
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw Error(std::string("net: socketpair: ") + std::strerror(errno));
    }
    wake_read = Socket(fds[0]);
    wake_write = Socket(fds[1]);
    wake_read.set_nonblocking();
    wake_write.set_nonblocking();
  }

  Listener listener;
  Handler handler;
  Socket wake_read;
  Socket wake_write;

  std::thread loop_thread;
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> inflight{0};

  std::mutex completion_mutex;
  std::deque<Completion> completions;

  mutable std::mutex counter_mutex;
  ReactorCounters counters;

  std::unordered_map<std::uint64_t, Connection> connections;
  std::uint64_t next_conn_id = 1;

  void wake() {
    char byte = 1;
    std::size_t sent = 0;
    (void)wake_write.send_nonblocking(&byte, 1, &sent);
  }
};

Reactor::Reactor(ReactorConfig config, Handler handler)
    : impl_(std::make_unique<Impl>(config, std::move(handler))),
      config_(std::move(config)) {
  TETRIS_REQUIRE(config_.idle_timeout_ms > 0,
                 "net: idle_timeout_ms must be positive");
  TETRIS_REQUIRE(config_.request_deadline_ms > 0,
                 "net: request_deadline_ms must be positive");
}

Reactor::~Reactor() { stop(); }

int Reactor::port() const { return impl_->listener.port(); }

ReactorCounters Reactor::counters() const {
  std::lock_guard<std::mutex> lock(impl_->counter_mutex);
  return impl_->counters;
}

namespace {

/// Everything the loop does per iteration lives here so the state threading
/// stays explicit. `Loop` is constructed on the loop thread and never leaves
/// it; only the completion queue, counters, and flags are shared.
class Loop {
 public:
  Loop(Reactor::Impl& impl, const ReactorConfig& config)
      : impl_(impl), config_(config) {}

  void run() {
    while (true) {
      const bool stopping = impl_.stopping.load(std::memory_order_acquire);
      if (stopping && impl_.inflight.load(std::memory_order_acquire) == 0 &&
          !drain_pending()) {
        break;
      }
      poll_once(stopping);
      drain_wake_pipe();
      apply_completions();
      service_timeouts();
    }
    flush_grace();
    impl_.connections.clear();
  }

 private:
  Reactor::Impl& impl_;
  const ReactorConfig& config_;
  std::vector<pollfd> pollfds_;
  std::vector<std::uint64_t> poll_ids_;  ///< conn id per pollfd (0 = special)
  std::vector<std::uint64_t> doomed_;

  ReactorCounters& counters() { return impl_.counters; }

  bool drain_pending() {
    if (!impl_.completions.empty()) return true;
    for (auto& [id, conn] : impl_.connections) {
      (void)id;
      if (conn.want_write()) return true;
    }
    return false;
  }

  void poll_once(bool stopping) {
    pollfds_.clear();
    poll_ids_.clear();

    pollfds_.push_back({impl_.wake_read.fd(), POLLIN, 0});
    poll_ids_.push_back(0);
    std::size_t listener_index = 0;  // 0 = not polled (wake pipe owns slot 0)
    if (!stopping) {
      listener_index = pollfds_.size();
      pollfds_.push_back({impl_.listener.fd(), POLLIN, 0});
      poll_ids_.push_back(0);
    }
    const std::size_t first_conn = pollfds_.size();

    for (auto& [id, conn] : impl_.connections) {
      short events = 0;
      if (conn.want_read() && !stopping) events |= POLLIN;
      if (conn.want_write()) events |= POLLOUT;
      if (events == 0) continue;
      pollfds_.push_back({conn.socket.fd(), events, 0});
      poll_ids_.push_back(id);
    }

    int timeout = next_timeout_ms(stopping);
    int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) return;
      throw Error(std::string("net: poll: ") + std::strerror(errno));
    }
    if (ready == 0) return;

    // Listener first so new connections see this iteration's timeouts.
    if (listener_index != 0 &&
        (pollfds_[listener_index].revents & POLLIN) != 0) {
      accept_all();
    }
    for (std::size_t i = first_conn; i < pollfds_.size(); ++i) {
      auto it = impl_.connections.find(poll_ids_[i]);
      if (it == impl_.connections.end()) continue;
      const short revents = pollfds_[i].revents;
      if (revents == 0) continue;
      Connection& conn = it->second;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        doomed_.push_back(poll_ids_[i]);
        continue;
      }
      if ((revents & POLLOUT) != 0 && !write_some(conn)) {
        doomed_.push_back(poll_ids_[i]);
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) != 0 && !read_some(conn)) {
        doomed_.push_back(poll_ids_[i]);
        continue;
      }
    }
    reap_doomed();
  }

  void reap_doomed() {
    for (std::uint64_t id : doomed_) impl_.connections.erase(id);
    doomed_.clear();
  }

  /// Idle/deadline bookkeeping → smallest poll timeout that cannot overshoot
  /// an expiry. Capped so stop-flag changes are noticed promptly.
  int next_timeout_ms(bool stopping) {
    if (stopping) return 10;
    Clock::time_point now = Clock::now();
    std::int64_t best = 1000;
    for (auto& [id, conn] : impl_.connections) {
      (void)id;
      std::int64_t remain = timeout_remaining_ms(conn, now);
      if (remain < best) best = remain;
    }
    return static_cast<int>(best < 0 ? 0 : best);
  }

  std::int64_t timeout_remaining_ms(const Connection& conn,
                                    Clock::time_point now) {
    using std::chrono::milliseconds;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    if (conn.request_in_progress) {
      auto deadline =
          conn.request_start + milliseconds(config_.request_deadline_ms);
      best = std::min<std::int64_t>(
          best, std::chrono::duration_cast<milliseconds>(deadline - now)
                    .count());
    }
    if (!conn.handler_inflight) {
      auto idle = conn.last_activity + milliseconds(config_.idle_timeout_ms);
      best = std::min<std::int64_t>(
          best,
          std::chrono::duration_cast<milliseconds>(idle - now).count());
    }
    return best == std::numeric_limits<std::int64_t>::max() ? 1000 : best;
  }

  void accept_all() {
    while (true) {
      Socket s = impl_.listener.accept(0);
      if (!s.valid()) break;
      s.set_nonblocking();
      s.set_nodelay();
      std::uint64_t id = impl_.next_conn_id++;
      http::RequestParser::Limits limits;
      limits.max_header_bytes = config_.max_header_bytes;
      limits.max_body_bytes = config_.max_body_bytes;
      auto [it, inserted] =
          impl_.connections.emplace(id, Connection(id, std::move(s), limits));
      TETRIS_REQUIRE(inserted, "net: duplicate connection id");
      it->second.last_activity = Clock::now();
      std::lock_guard<std::mutex> lock(impl_.counter_mutex);
      ++counters().connections;
    }
  }

  /// Reads everything available. Returns false when the connection must be
  /// dropped immediately (hard error, or FIN with nothing left to send).
  bool read_some(Connection& conn) {
    char buffer[16 << 10];
    bool got_bytes = false;
    while (conn.want_read()) {
      std::size_t received = 0;
      Socket::IoResult r =
          conn.socket.recv_nonblocking(buffer, sizeof(buffer), &received);
      if (r == Socket::IoResult::kOk) {
        conn.in.append(buffer, received);
        got_bytes = true;
        continue;
      }
      if (r == Socket::IoResult::kWouldBlock) break;
      if (r == Socket::IoResult::kClosed) {
        conn.peer_closed = true;
        break;
      }
      return false;  // kError: reset etc.
    }
    if (got_bytes) {
      conn.last_activity = Clock::now();
      if (!conn.request_in_progress) {
        conn.request_in_progress = true;
        conn.request_start = conn.last_activity;
      }
      if (!advance(conn)) return false;
      // Flush anything advance() queued (inline handlers, protocol rejects)
      // now instead of waiting a poll round trip for POLLOUT.
      if (conn.want_write() && !write_some(conn)) return false;
    }
    if (conn.peer_closed) {
      // A peer that half-closed mid-request is never answered; one that
      // closed between requests is just reaped once writes are flushed.
      return conn.handler_inflight || conn.want_write();
    }
    return true;
  }

  /// Feeds buffered bytes to the parser; dispatches at most one request (the
  /// rest stays in `conn.in` until the response is queued). Returns false to
  /// drop the connection.
  bool advance(Connection& conn) {
    while (!conn.handler_inflight && !conn.close_after_write) {
      if (!conn.in.empty()) {
        std::size_t used = conn.parser.consume(conn.in.data(), conn.in.size());
        conn.in.erase(0, used);
      }
      if (conn.parser.failed()) {
        const http::HttpError& e = conn.parser.error();
        conn.request_in_progress = false;
        queue_response(conn, error_response(e.status(), e.code(), e.what()),
                       /*keep_alive=*/false);
        return true;
      }
      if (!conn.parser.done()) return true;

      http::Request request = conn.parser.take();
      conn.request_in_progress = false;
      dispatch(conn, std::move(request));
    }
    return true;
  }

  void dispatch(Connection& conn, http::Request request) {
    const std::size_t served_after = conn.requests_served + 1;
    const bool cap_hit = config_.max_requests_per_connection != 0 &&
                         served_after >= config_.max_requests_per_connection;
    const bool keep = request.keep_alive() && !cap_hit && !conn.peer_closed;
    {
      std::lock_guard<std::mutex> lock(impl_.counter_mutex);
      ++counters().requests;
      if (conn.requests_served > 0) ++counters().keepalive_reuses;
    }
    if (config_.inline_handlers) {
      // Handlers declared quick and non-blocking run right here on the loop
      // thread — no pool hop, no wake round trip. advance()'s loop keeps
      // draining pipelined requests afterwards.
      http::Response response;
      try {
        response = impl_.handler(request);
      } catch (...) {
        response = error_response(500, "internal_error",
                                  "request handler threw");
      }
      queue_response(conn, response, keep);
      return;
    }
    conn.handler_inflight = true;

    const std::uint64_t id = conn.id;
    Reactor::Impl* impl = &impl_;
    impl_.inflight.fetch_add(1, std::memory_order_acq_rel);
    runtime::ThreadPool& pool =
        config_.handler_pool ? *config_.handler_pool
                             : runtime::ThreadPool::global();
    try {
      pool.submit([impl, id, keep, request = std::move(request),
                   handler = &impl_.handler]() {
        Completion done;
        done.conn_id = id;
        done.keep_alive = keep;
        try {
          done.response = (*handler)(request);
        } catch (...) {
          done.response = error_response(500, "internal_error",
                                         "request handler threw");
        }
        {
          std::lock_guard<std::mutex> lock(impl->completion_mutex);
          impl->completions.push_back(std::move(done));
        }
        impl->wake();
        // Last touch of `impl`: once inflight hits 0 the loop may exit and
        // the Reactor may be destroyed.
        impl->inflight.fetch_sub(1, std::memory_order_acq_rel);
      });
    } catch (...) {
      // Pool refused the task (shutting down): answer directly on the loop.
      impl_.inflight.fetch_sub(1, std::memory_order_acq_rel);
      conn.handler_inflight = false;
      queue_response(conn,
                     error_response(503, "shutting_down",
                                    "server is shutting down"),
                     /*keep_alive=*/false);
    }
  }

  void queue_response(Connection& conn, const http::Response& response,
                      bool keep_alive) {
    conn.out += http::format_response(response, keep_alive);
    conn.close_after_write = !keep_alive;
    conn.last_activity = Clock::now();
    ++conn.requests_served;
    if (config_.observe_response) {
      // request_start was stamped when the request's first byte arrived;
      // every queue_response follows some byte arrival on this connection,
      // so it is always initialized here.
      config_.observe_response(
          response.status,
          std::chrono::duration<double>(conn.last_activity -
                                        conn.request_start)
              .count());
    }
    {
      std::lock_guard<std::mutex> lock(impl_.counter_mutex);
      if (response.status >= 500) {
        ++counters().responses_5xx;
      } else if (response.status >= 400) {
        ++counters().responses_4xx;
      } else {
        ++counters().responses_2xx;
      }
    }
  }

  /// Writes as much of the out-buffer as the socket accepts. Returns false
  /// to drop the connection (hard write error).
  bool write_some(Connection& conn) {
    while (conn.want_write()) {
      std::size_t sent = 0;
      Socket::IoResult r = conn.socket.send_nonblocking(
          conn.out.data() + conn.out_pos, conn.out.size() - conn.out_pos,
          &sent);
      if (r == Socket::IoResult::kOk) {
        conn.out_pos += sent;
        conn.last_activity = Clock::now();
        continue;
      }
      if (r == Socket::IoResult::kWouldBlock) return true;
      return false;
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      if (conn.close_after_write || conn.peer_closed) return false;
    }
    return true;
  }

  void drain_wake_pipe() {
    char buffer[256];
    std::size_t received = 0;
    while (impl_.wake_read.recv_nonblocking(buffer, sizeof(buffer),
                                            &received) ==
           Socket::IoResult::kOk) {
    }
  }

  void apply_completions() {
    std::deque<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(impl_.completion_mutex);
      batch.swap(impl_.completions);
    }
    for (Completion& done : batch) {
      auto it = impl_.connections.find(done.conn_id);
      if (it == impl_.connections.end()) continue;  // peer already gone
      Connection& conn = it->second;
      conn.handler_inflight = false;
      queue_response(conn, done.response, done.keep_alive);
      bool alive = write_some(conn);
      // Pipelined bytes may already hold the next request; parse them now
      // rather than waiting for more socket readiness.
      if (alive && !impl_.stopping.load(std::memory_order_acquire)) {
        alive = advance(conn);
        if (alive && conn.want_write()) alive = write_some(conn);
      }
      if (!alive) doomed_.push_back(done.conn_id);
    }
    reap_doomed();
  }

  void service_timeouts() {
    Clock::time_point now = Clock::now();
    for (auto& [id, conn] : impl_.connections) {
      if (conn.close_after_write) continue;
      if (conn.request_in_progress &&
          now - conn.request_start >=
              std::chrono::milliseconds(config_.request_deadline_ms)) {
        // The peer started a request but never finished it in time: answer
        // 408 so well-behaved-but-slow clients learn why, then close. The
        // parser state is abandoned (no more reads happen on this conn).
        conn.request_in_progress = false;
        queue_response(conn,
                       error_response(408, "request_timeout",
                                      "timed out reading the request"),
                       /*keep_alive=*/false);
        if (!write_some(conn)) doomed_.push_back(id);
        std::lock_guard<std::mutex> lock(impl_.counter_mutex);
        ++counters().idle_evictions;
        continue;
      }
      if (!conn.handler_inflight && !conn.request_in_progress &&
          now - conn.last_activity >=
              std::chrono::milliseconds(config_.idle_timeout_ms)) {
        // Idle keep-alive connection (or never sent a byte): no response
        // owed; just reclaim the slot.
        doomed_.push_back(id);
        std::lock_guard<std::mutex> lock(impl_.counter_mutex);
        ++counters().idle_evictions;
      }
    }
    reap_doomed();
  }

  /// Post-stop best-effort flush of queued responses (bounded, so a peer
  /// that stopped reading cannot wedge shutdown).
  void flush_grace() {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(1000);
    while (Clock::now() < deadline) {
      apply_completions();
      pollfds_.clear();
      poll_ids_.clear();
      for (auto& [id, conn] : impl_.connections) {
        if (!conn.want_write()) continue;
        pollfds_.push_back({conn.socket.fd(), POLLOUT, 0});
        poll_ids_.push_back(id);
      }
      if (pollfds_.empty()) return;
      int ready = ::poll(pollfds_.data(), pollfds_.size(), 50);
      if (ready <= 0) continue;
      for (std::size_t i = 0; i < pollfds_.size(); ++i) {
        if (pollfds_[i].revents == 0) continue;
        auto it = impl_.connections.find(poll_ids_[i]);
        if (it == impl_.connections.end()) continue;
        if ((pollfds_[i].revents & (POLLERR | POLLNVAL)) != 0 ||
            !write_some(it->second)) {
          doomed_.push_back(poll_ids_[i]);
        }
      }
      reap_doomed();
      bool pending = false;
      for (auto& [id, conn] : impl_.connections) {
        (void)id;
        if (conn.want_write()) pending = true;
      }
      if (!pending) return;
    }
  }
};

}  // namespace

void Reactor::start() {
  TETRIS_REQUIRE(!impl_->loop_thread.joinable(), "net: reactor already started");
  impl_->stopping.store(false, std::memory_order_release);
  impl_->loop_thread = std::thread([this] {
    Loop loop(*impl_, config_);
    loop.run();
  });
}

void Reactor::stop() {
  if (!impl_->loop_thread.joinable()) return;
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake();
  impl_->loop_thread.join();
  // A stopped reactor must *refuse* connections, not strand them in the
  // listen backlog until the peer's timeout — upstream callers (the
  // dispatcher's failure detection in particular) rely on the fast
  // connection-refused signal to mark a node unreachable.
  impl_->listener.shutdown();
}

}  // namespace tetris::net
