#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/http.h"

namespace tetris::runtime {
class ThreadPool;
}

namespace tetris::net {

/// Tuning knobs for the event loop. Defaults suit loopback/infra-LAN REST
/// traffic; tests shrink the timeouts to keep slow-path cases fast.
struct ReactorConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; Reactor::port() reports the bound port
  int backlog = 64;

  /// Idle timeout: a connection that makes no forward progress for this long
  /// (no bytes of a request arriving, or an unread response stalling in the
  /// out-buffer) is dropped. A silent keep-alive connection is closed without
  /// a response; a peer that started a request gets the 408 below instead.
  int idle_timeout_ms = 10000;

  /// Wall-clock cap from the first byte of a request to its completion. A
  /// slow-loris peer trickling one header byte per poll wakeup is answered
  /// 408 and closed when this expires.
  int request_deadline_ms = 30000;

  /// Requests served per connection before the server closes it (the last
  /// response carries "Connection: close"). Bounds per-connection state
  /// lifetime; 0 means unlimited.
  std::size_t max_requests_per_connection = 0;

  std::size_t max_header_bytes = std::size_t{16} << 10;  ///< 431 above this
  std::size_t max_body_bytes = std::size_t{1} << 20;     ///< 413 above this

  /// Pool the handler runs on; nullptr = runtime::ThreadPool::global().
  /// Ignored when inline_handlers is set.
  runtime::ThreadPool* handler_pool = nullptr;

  /// Response observation hook, invoked on the loop thread as each response
  /// is queued with the HTTP status and the seconds elapsed since the
  /// request's first byte arrived (the same reference the 408 deadline
  /// uses) — the feed for the server's request-latency histogram. Must be
  /// cheap and non-blocking: it runs inside the event loop. For pipelined
  /// requests parsed from already-buffered bytes the measured window starts
  /// at the batch's arrival, slightly overstating per-request latency; a
  /// null function disables observation entirely (the telemetry-off bench
  /// mode). nullptr by default.
  std::function<void(int status, double seconds)> observe_response;

  /// Run handlers synchronously on the loop thread instead of a pool. Saves
  /// two context switches per request — the right call when every handler is
  /// quick and non-blocking (net::Server qualifies: job compute lives on the
  /// Service pool, its route handlers only parse/serialize). Must stay false
  /// for handlers that block, e.g. the dispatcher's upstream proxy legs —
  /// an inline blocking handler would stall every connection.
  bool inline_handlers = false;
};

/// Monotonic totals since start; all updated on the loop thread.
struct ReactorCounters {
  std::uint64_t connections = 0;  ///< sockets accepted
  std::uint64_t requests = 0;     ///< complete requests handed to the handler
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;  ///< includes protocol rejects + 408s
  std::uint64_t responses_5xx = 0;
  std::uint64_t keepalive_reuses = 0;  ///< requests beyond the first per conn
  std::uint64_t idle_evictions = 0;    ///< connections dropped by timeout
};

/// poll(2)-based readiness event loop: one thread owns the listener, a wake
/// pipe, and every connection socket (all non-blocking). Per connection it
/// keeps an incremental http::RequestParser, an out-buffer, and timing state;
/// complete requests are handed to `handler` on a thread pool, and the
/// response is completed back onto the loop via the wake pipe. The loop never
/// blocks on a socket and the handler never touches one — so one stalled or
/// malicious peer cannot delay any other connection.
///
/// Keep-alive + pipelining: after a response is queued the parser is fed any
/// already-buffered bytes, so back-to-back pipelined requests are answered in
/// order. At most one handler runs per connection; while it runs the loop
/// stops reading that socket (TCP backpressure caps per-peer buffering).
///
/// The Reactor is route-agnostic — net::Server and net::Dispatcher are both
/// thin handler wrappers over it. The handler must be thread-safe; protocol
/// errors never reach it (the reactor answers those itself and closes).
class Reactor {
 public:
  using Handler = std::function<http::Response(const http::Request&)>;

  /// Binds the listener immediately (so port() is valid before start()).
  Reactor(ReactorConfig config, Handler handler);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void start();
  /// Stops accepting, waits for in-flight handlers, flushes pending
  /// responses (bounded grace), closes every connection, joins the loop.
  void stop();

  int port() const;
  const ReactorConfig& config() const { return config_; }
  ReactorCounters counters() const;

  struct Impl;  ///< loop internals (reactor.cpp); public for the loop class

 private:
  std::unique_ptr<Impl> impl_;
  ReactorConfig config_;
};

}  // namespace tetris::net
