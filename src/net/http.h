#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace tetris::net::http {

/// Minimal HTTP/1.1 message layer: pure parse/format functions over strings,
/// shared by the server and the loopback client and unit-testable without a
/// socket. The dialect is deliberately small — requests must carry a
/// Content-Length when they have a body (chunked transfer encoding is
/// rejected with 411), and every response closes the connection — which is
/// all a REST front-end over loopback/infra-LAN traffic needs, with none of
/// the parsing ambiguity general proxies have to cope with.

/// Protocol-level rejection: carries the HTTP status to answer with and a
/// stable machine-readable code for the JSON error body.
class HttpError : public Error {
 public:
  HttpError(int status, std::string code, const std::string& message)
      : Error(message), status_(status), code_(std::move(code)) {}

  int status() const { return status_; }
  const std::string& code() const { return code_; }

 private:
  int status_;
  std::string code_;
};

/// One parsed request. Header names are lowercased; the path and query
/// parameters are percent-decoded ('+' decodes to space in query values).
struct Request {
  std::string method;   ///< verbatim, e.g. "GET" (method names are
                        ///< case-sensitive per RFC 9110)
  std::string target;   ///< raw request target, e.g. "/v1/jobs/3?timing=0"
  std::string path;     ///< decoded path, e.g. "/v1/jobs/3"
  std::vector<std::pair<std::string, std::string>> query;  ///< decoded pairs
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (case-insensitive) name, nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// First query parameter with this name, nullptr when absent.
  const std::string* query_param(std::string_view name) const;
};

/// One response. The server fills status/content_type/body; the client
/// parses status/headers/body out of the wire format.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  ///< extras
  std::string body;

  const std::string* header(std::string_view name) const;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* status_reason(int status);

/// Parses everything before the body: request line + header block. `head`
/// must end with the blank line ("\r\n\r\n"). Throws HttpError(400/501/...)
/// on anything malformed; Request::body is left empty.
Request parse_request_head(std::string_view head);

/// Parses a response status line + header block (client side).
Response parse_response_head(std::string_view head);

/// Content-Length of a parsed head: 0 when absent, HttpError(400) when
/// non-numeric or duplicated inconsistently, HttpError(411) when a chunked
/// Transfer-Encoding is announced instead, HttpError(413) when above
/// `max_body`.
std::size_t body_length(const Request& request, std::size_t max_body);

/// Serializes a response with Content-Length and "Connection: close".
std::string format_response(const Response& response);

/// Serializes a request line + headers + body for the client.
std::string format_request(const std::string& method, const std::string& target,
                           const std::string& host,
                           const std::string& body,
                           const std::string& content_type);

/// Percent-decoding; `plus_to_space` additionally maps '+' (query dialect).
/// Throws HttpError(400) on truncated or non-hex escapes.
std::string url_decode(std::string_view text, bool plus_to_space);

}  // namespace tetris::net::http
