#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace tetris::net::http {

/// Minimal HTTP/1.1 message layer: pure parse/format functions over strings
/// plus an incremental request parser, shared by the server, the dispatcher,
/// and the client, and unit-testable without a socket. The dialect is
/// deliberately small — requests must carry a Content-Length when they have
/// a body (chunked transfer encoding is rejected with 411) — which is all a
/// REST front-end over loopback/infra-LAN traffic needs, with none of the
/// parsing ambiguity general proxies have to cope with. Connections are
/// persistent by default (HTTP/1.1 keep-alive); either side opts out with
/// "Connection: close".

/// Protocol-level rejection: carries the HTTP status to answer with and a
/// stable machine-readable code for the JSON error body.
class HttpError : public Error {
 public:
  HttpError(int status, std::string code, const std::string& message)
      : Error(message), status_(status), code_(std::move(code)) {}

  int status() const { return status_; }
  const std::string& code() const { return code_; }

 private:
  int status_;
  std::string code_;
};

/// One parsed request. Header names are lowercased; the path and query
/// parameters are percent-decoded ('+' decodes to space in query values).
struct Request {
  std::string method;   ///< verbatim, e.g. "GET" (method names are
                        ///< case-sensitive per RFC 9110)
  std::string target;   ///< raw request target, e.g. "/v1/jobs/3?timing=0"
  std::string path;     ///< decoded path, e.g. "/v1/jobs/3"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> query;  ///< decoded pairs
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (case-insensitive) name, nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// First query parameter with this name, nullptr when absent.
  const std::string* query_param(std::string_view name) const;

  /// Connection persistence the client asked for: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close; an explicit "Connection: close" /
  /// "Connection: keep-alive" header (case-insensitive) overrides either.
  bool keep_alive() const;
};

/// One response. The server fills status/content_type/body; the client
/// parses status/headers/body out of the wire format.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  ///< extras
  std::string body;

  const std::string* header(std::string_view name) const;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* status_reason(int status);

/// Parses everything before the body: request line + header block. `head`
/// must end with the blank line ("\r\n\r\n"). Throws HttpError(400/501/...)
/// on anything malformed; Request::body is left empty.
Request parse_request_head(std::string_view head);

/// Parses a response status line + header block (client side).
Response parse_response_head(std::string_view head);

/// Content-Length of a parsed head: 0 when absent, HttpError(400) when
/// non-numeric or duplicated inconsistently, HttpError(411) when a chunked
/// Transfer-Encoding is announced instead, HttpError(413) when above
/// `max_body`.
std::size_t body_length(const Request& request, std::size_t max_body);

/// Serializes a response with Content-Length and an explicit Connection
/// header ("keep-alive" or "close"). The server sets `keep_alive` false on
/// the final response of a connection (protocol errors, Connection: close
/// requests, the per-connection request cap) so clients always know whether
/// the socket stays usable.
std::string format_response(const Response& response, bool keep_alive = false);

/// Serializes a request line + headers + body for the client. `keep_alive`
/// controls the Connection header ("keep-alive" vs "close").
std::string format_request(const std::string& method, const std::string& target,
                           const std::string& host,
                           const std::string& body,
                           const std::string& content_type,
                           bool keep_alive = false);

/// Incremental HTTP/1.1 request parser — the per-connection state machine of
/// the event-loop server. Bytes arrive in arbitrary fragments (one poll
/// wakeup may deliver half a header line or three pipelined requests);
/// `consume` eats as much as one request needs and reports the connection's
/// next move. After kDone, `take()` yields the request and resets the
/// machine for the next pipelined request on the same connection.
///
/// All protocol violations surface as a *structured* rejection (the
/// HttpError the server answers with before closing), never an exception
/// out of `consume`: kError is sticky and `error()` carries the
/// status/code/message triple. Limits mirror ServerConfig: an oversized
/// header block fails with 431 as soon as the cap is crossed — without
/// waiting for the terminator a hostile peer would never send — and an
/// oversized announced body fails with 413 before any body byte is read.
class RequestParser {
 public:
  struct Limits {
    // Constructor-set defaults, not member initializers: the enclosing
    // class's default argument `Limits()` may not rely on a nested class's
    // NSDMIs before RequestParser is complete.
    Limits()
        : max_header_bytes(std::size_t{16} << 10),
          max_body_bytes(std::size_t{1} << 20) {}
    std::size_t max_header_bytes;
    std::size_t max_body_bytes;
  };

  enum class State {
    kHead,   ///< collecting the request line + header block
    kBody,   ///< head parsed; collecting Content-Length body bytes
    kDone,   ///< one full request buffered; call take()
    kError,  ///< protocol violation; call error(), answer, close
  };

  explicit RequestParser(Limits limits = Limits()) : limits_(limits) {}

  /// Consumes up to `size` bytes, stopping at the end of one request (the
  /// remainder belongs to the next pipelined request — feed it again after
  /// take()). Returns the number of bytes consumed; 0 in kDone/kError.
  std::size_t consume(const char* data, std::size_t size);

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  /// True while no byte of a (new) request has been consumed — the state in
  /// which an idle keep-alive connection can be evicted without owing the
  /// peer a response.
  bool idle() const { return state_ == State::kHead && head_.empty(); }

  /// The structured rejection; valid only in kError.
  const HttpError& error() const;

  /// Moves the completed request out and resets for the next one.
  Request take();

  void reset();

 private:
  void fail(int status, const std::string& code, const std::string& message);

  Limits limits_;
  State state_ = State::kHead;
  std::string head_;
  Request request_;
  std::size_t body_needed_ = 0;
  std::unique_ptr<HttpError> error_;
};

/// Percent-decoding; `plus_to_space` additionally maps '+' (query dialect).
/// Throws HttpError(400) on truncated or non-hex escapes.
std::string url_decode(std::string_view text, bool plus_to_space);

}  // namespace tetris::net::http
