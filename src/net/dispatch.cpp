#include "net/dispatch.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.h"
#include "obs/registry.h"
#include "common/hash.h"
#include "common/json.h"
#include "qir/qasm.h"
#include "revlib/benchmarks.h"
#include "runtime/thread_pool.h"
#include "service/serialize.h"

namespace tetris::net {

namespace {

http::Response json_response(int status, const std::string& body) {
  http::Response res;
  res.status = status;
  res.body = body;
  return res;
}

http::Response error_response(int status, const std::string& code,
                              const std::string& message) {
  json::Writer w;
  w.begin_object();
  w.key("error").begin_object();
  w.key("code").value(code);
  w.key("message").value(message);
  w.end_object();
  w.end_object();
  return json_response(status, w.str());
}

/// Proxied responses are rebuilt from scratch (status + content type + body
/// only): the upstream's parsed header list still carries its own
/// Content-Length/Connection entries, which format_response would duplicate.
http::Response passthrough(const http::Response& upstream) {
  http::Response res;
  res.status = upstream.status;
  if (const std::string* ct = upstream.header("content-type")) {
    res.content_type = *ct;
  }
  res.body = upstream.body;
  return res;
}

/// The raw query string of a request target ("?timing=0"), empty when none.
std::string raw_query(const std::string& target) {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? std::string() : target.substr(q);
}

}  // namespace

// ------------------------------------------------------------------- ring

HashRing::HashRing(std::size_t num_nodes, std::size_t replicas)
    : num_nodes_(num_nodes) {
  TETRIS_REQUIRE(num_nodes > 0, "net: hash ring needs at least one node");
  TETRIS_REQUIRE(replicas > 0, "net: hash ring needs at least one replica");
  points_.reserve(num_nodes * replicas);
  for (std::size_t node = 0; node < num_nodes; ++node) {
    for (std::size_t replica = 0; replica < replicas; ++replica) {
      Fnv64 h;
      h.mix(std::uint64_t{0x7e7215} /* ring point domain tag */);
      h.mix(static_cast<std::uint64_t>(node));
      h.mix(static_cast<std::uint64_t>(replica));
      points_.emplace_back(h.digest(), node);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::node_for(std::uint64_t key) const {
  // Re-mix the key so consecutive content hashes scatter across arcs.
  Fnv64 h;
  h.mix(key);
  const std::uint64_t point = h.digest();
  auto it = std::lower_bound(
      points_.begin(), points_.end(), std::make_pair(point, std::size_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap around the ring
  return it->second;
}

// ------------------------------------------------------------- dispatcher

Dispatcher::Node::Node(const std::string& base_url, int timeout_ms)
    : url(base_url),
      client(parse_url(base_url).host, parse_url(base_url).port, timeout_ms) {}

Dispatcher::Dispatcher(DispatcherConfig config)
    : config_(std::move(config)),
      ring_(config_.nodes.empty() ? 1 : config_.nodes.size(),
            config_.hash_replicas) {
  TETRIS_REQUIRE(!config_.nodes.empty(),
                 "net: dispatcher needs at least one --node URL");
  for (const std::string& url : config_.nodes) {
    nodes_.push_back(
        std::make_unique<Node>(url, config_.upstream_timeout_ms));
  }
  if (config_.handler_threads > 0) {
    private_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.handler_threads);
  }
  ReactorConfig rc;
  rc.host = config_.host;
  rc.port = config_.port;
  rc.backlog = config_.backlog;
  rc.idle_timeout_ms = config_.idle_timeout_ms;
  rc.request_deadline_ms = config_.request_deadline_ms;
  rc.max_requests_per_connection = config_.max_requests_per_connection;
  rc.max_header_bytes = config_.max_header_bytes;
  rc.max_body_bytes = config_.max_body_bytes;
  rc.handler_pool = private_pool_.get();
  reactor_ = std::make_unique<Reactor>(
      std::move(rc),
      [this](const http::Request& request) { return handle(request); });
}

Dispatcher::~Dispatcher() { stop(); }

void Dispatcher::start() { reactor_->start(); }

void Dispatcher::stop() { reactor_->stop(); }

int Dispatcher::port() const { return reactor_->port(); }

std::string Dispatcher::base_url() const {
  return "http://" + config_.host + ":" + std::to_string(port());
}

ReactorCounters Dispatcher::counters() const { return reactor_->counters(); }

std::vector<DispatcherNodeCounters> Dispatcher::node_counters() const {
  std::vector<DispatcherNodeCounters> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    std::lock_guard<std::mutex> lock(node->mutex);
    DispatcherNodeCounters c;
    c.url = node->url;
    c.jobs_routed = node->jobs_routed;
    c.upstream_failures = node->upstream_failures;
    out.push_back(std::move(c));
  }
  return out;
}

http::Response Dispatcher::upstream(Node& node, const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    const std::string& content_type,
                                    bool retry) {
  std::lock_guard<std::mutex> lock(node.mutex);
  try {
    return node.client.request(method, target, body, content_type);
  } catch (const std::exception&) {
    if (!retry) {
      ++node.upstream_failures;
      throw;
    }
  }
  // One fresh-connection retry for idempotent legs: the client's own
  // stale-keep-alive retry has already run, so this second attempt covers a
  // node that was mid-restart or briefly refused the connect.
  try {
    node.client.disconnect();
    return node.client.request(method, target, body, content_type);
  } catch (const std::exception&) {
    ++node.upstream_failures;
    throw;
  }
}

std::uint64_t Dispatcher::shard_key(const std::string& body) const {
  try {
    json::ParseOptions parse_options;
    parse_options.max_depth = 32;
    parse_options.max_bytes = config_.max_body_bytes;
    const json::Value doc = json::parse(body, parse_options);
    if (doc.is_object()) {
      if (const json::Value* benchmark = doc.find("benchmark")) {
        if (benchmark->is_string()) {
          return revlib::get_benchmark(benchmark->as_string())
              .circuit.content_hash();
        }
      }
      if (const json::Value* qasm = doc.find("qasm")) {
        if (qasm->is_string()) {
          return qir::from_qasm(qasm->as_string()).content_hash();
        }
      }
    }
  } catch (const std::exception&) {
    // Fall through: the owning node will produce the canonical error.
  }
  Fnv64 h;
  h.mix(body);
  return h.digest();
}

http::Response Dispatcher::handle_submit(const http::Request& request) {
  const std::size_t index = ring_.node_for(shard_key(request.body));
  Node& node = *nodes_[index];

  http::Response res;
  try {
    // POSTs are never blindly retried: a submit that reached the node may
    // have been executed even if the response was lost.
    res = upstream(node, "POST", "/v1/jobs", request.body,
                   "application/json", /*retry=*/false);
  } catch (const std::exception& e) {
    return error_response(502, "upstream_unavailable",
                          "node " + node.url + " unreachable: " + e.what());
  }
  if (res.status != 202) return passthrough(res);  // canonical node error

  std::uint64_t local_id = 0;
  std::string state = "queued";
  try {
    const json::Value doc = json::parse(res.body);
    local_id = static_cast<std::uint64_t>(doc.at("id").as_int());
    state = doc.at("state").as_string();
  } catch (const std::exception& e) {
    return error_response(502, "upstream_protocol_error",
                          "node " + node.url +
                              " answered an unparseable submit response: " +
                              e.what());
  }

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_id_++;
    jobs_.emplace(id, JobRef{index, local_id});
  }
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    ++node.jobs_routed;
  }

  json::Writer w;
  w.begin_object();
  w.key("id").value(id);
  w.key("state").value(state);
  w.key("url").value("/v1/jobs/" + std::to_string(id));
  w.end_object();
  return json_response(202, w.str());
}

http::Response Dispatcher::handle_job(const http::Request& request) {
  const std::string_view jobs_prefix = "/v1/jobs/";
  std::string_view tail =
      std::string_view(request.path).substr(jobs_prefix.size());
  // Optional sub-resource after the id; both are GET-only and idempotent,
  // so they share the artifact leg's retry policy.
  std::string suffix;
  for (const std::string_view candidate : {"/artifact", "/trace"}) {
    if (tail.size() > candidate.size() &&
        tail.substr(tail.size() - candidate.size()) == candidate) {
      suffix = std::string(candidate);
      tail = tail.substr(0, tail.size() - candidate.size());
      break;
    }
  }
  if (tail.empty() || tail.size() > 18 ||
      tail.find_first_not_of("0123456789") != std::string_view::npos) {
    return error_response(404, "not_found", "job ids are decimal integers");
  }
  std::uint64_t id = 0;
  for (char c : tail) id = id * 10 + static_cast<std::uint64_t>(c - '0');

  if (!suffix.empty() && request.method != "GET") {
    return error_response(405, "method_not_allowed",
                          "use GET on /v1/jobs/{id}" + suffix);
  }
  if (suffix.empty() && request.method != "GET" &&
      request.method != "DELETE") {
    return error_response(405, "method_not_allowed",
                          "use GET or DELETE on /v1/jobs/{id}");
  }

  JobRef ref;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return error_response(404, "not_found",
                            "unknown job id " + std::to_string(id));
    }
    ref = it->second;
  }

  Node& node = *nodes_[ref.node];
  std::string target = "/v1/jobs/" + std::to_string(ref.local_id) + suffix;
  target += raw_query(request.target);

  const bool idempotent = request.method == "GET";
  try {
    return passthrough(upstream(node, request.method, target, "",
                                "application/json", /*retry=*/idempotent));
  } catch (const std::exception& e) {
    return error_response(502, "upstream_unavailable",
                          "node " + node.url + " unreachable: " + e.what());
  }
}

http::Response Dispatcher::handle_status() {
  // Assembled as text, not via json::Writer: each reachable node's status
  // document is spliced in verbatim (it is already valid JSON, and
  // re-encoding would couple the dispatcher to every node schema field).
  std::string out = "{\n  \"schema\": \"";
  out += service::kDispatchStatusSchema;
  out += "\",\n  \"nodes\": [";
  std::uint64_t jobs_routed_total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"url\": \"" + json::escape(node.url) + "\", ";
    http::Response res;
    bool reachable = false;
    std::string error;
    try {
      res = upstream(node, "GET", "/v1/status", "", "application/json",
                     /*retry=*/true);
      reachable = res.status == 200;
      if (!reachable) error = "HTTP " + std::to_string(res.status);
    } catch (const std::exception& e) {
      error = e.what();
    }
    std::uint64_t routed = 0;
    {
      std::lock_guard<std::mutex> lock(node.mutex);
      routed = node.jobs_routed;
    }
    jobs_routed_total += routed;
    out += "\"reachable\": ";
    out += reachable ? "true" : "false";
    out += ", \"jobs_routed\": " + std::to_string(routed);
    if (reachable) {
      out += ", \"status\": " + res.body;
    } else {
      out += ", \"error\": \"" + json::escape(error) + "\"";
    }
    out += "}";
  }
  out += "\n  ],\n  \"dispatcher\": {";
  const ReactorCounters c = counters();
  out += "\"nodes\": " + std::to_string(nodes_.size());
  out += ", \"jobs_routed\": " + std::to_string(jobs_routed_total);
  out += ", \"connections\": " + std::to_string(c.connections);
  out += ", \"requests\": " + std::to_string(c.requests);
  out += ", \"keepalive_reuses\": " + std::to_string(c.keepalive_reuses);
  out += "}\n}";
  return json_response(200, out);
}

http::Response Dispatcher::handle_metrics() {
  // Node expositions come from our own obs::render_prometheus, so the
  // grammar is known: families are HELP line, TYPE line, then samples. Each
  // node's text is re-parsed into per-family buckets with a node="<url>"
  // label injected into every sample, then re-emitted grouped — the text
  // format requires all lines of one metric name to be contiguous, so plain
  // concatenation of per-node texts would be malformed.
  std::vector<std::string> family_order;
  std::map<std::string, std::string> family_head;     // first node's HELP+TYPE
  std::map<std::string, std::size_t> family_owner;    // node that named it
  std::map<std::string, std::string> family_samples;  // all nodes' samples

  auto escape_label = [](const std::string& raw) {
    std::string out;
    for (char c : raw) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  };

  std::vector<double> node_up(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    http::Response res;
    try {
      res = upstream(node, "GET", "/metrics", "", "application/json",
                     /*retry=*/true);
    } catch (const std::exception&) {
      continue;  // liveness lands in tetris_dispatch_node_up below
    }
    if (res.status != 200) continue;
    node_up[i] = 1.0;
    const std::string label = "node=\"" + escape_label(node.url) + "\"";

    std::string current;  // family of the samples being read
    std::size_t pos = 0;
    while (pos < res.body.size()) {
      std::size_t eol = res.body.find('\n', pos);
      if (eol == std::string::npos) eol = res.body.size();
      std::string line = res.body.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const std::size_t name_begin = 7;
        const std::size_t name_end = line.find(' ', name_begin);
        const std::string name = line.substr(
            name_begin, name_end == std::string::npos ? std::string::npos
                                                      : name_end - name_begin);
        auto owner = family_owner.find(name);
        if (owner == family_owner.end()) {
          family_order.push_back(name);
          owner = family_owner.emplace(name, i).first;
        }
        // The first node to expose a family owns its HELP/TYPE comment
        // lines; later nodes' duplicates drop (their samples still merge).
        if (owner->second == i) family_head[name] += line + '\n';
        current = name;
        continue;
      }
      // Sample line: inject the node label at the first '{', or synthesize
      // a label block before the value when the series has none.
      const std::size_t brace = line.find('{');
      const std::size_t space = line.find(' ');
      std::string rewritten;
      if (brace != std::string::npos &&
          (space == std::string::npos || brace < space)) {
        rewritten = line.substr(0, brace + 1) + label + "," +
                    line.substr(brace + 1);
      } else if (space != std::string::npos) {
        rewritten =
            line.substr(0, space) + "{" + label + "}" + line.substr(space);
      } else {
        rewritten = line;  // malformed; pass through untouched
      }
      family_samples[current] += rewritten + '\n';
    }
  }

  std::string out;
  for (const std::string& name : family_order) {
    out += family_head[name];
    out += family_samples[name];
  }

  // The dispatcher's own series, disjoint names so the merge stays trivial.
  std::vector<obs::Family> own;
  auto add = [&own](const char* name, const char* help, obs::Kind kind) {
    obs::Family f;
    f.name = name;
    f.help = help;
    f.kind = kind;
    own.push_back(std::move(f));
    return own.size() - 1;
  };
  const std::size_t up_f = add("tetris_dispatch_node_up",
                               "1 when the node answered the last scrape.",
                               obs::Kind::kGauge);
  const std::size_t routed_f =
      add("tetris_dispatch_jobs_routed_total",
          "Jobs sharded to each node by the consistent-hash ring.",
          obs::Kind::kCounter);
  const std::size_t failures_f =
      add("tetris_dispatch_upstream_failures_total",
          "Upstream legs that exhausted their retries per node.",
          obs::Kind::kCounter);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    std::uint64_t routed = 0;
    std::uint64_t failures = 0;
    {
      std::lock_guard<std::mutex> lock(node.mutex);
      routed = node.jobs_routed;
      failures = node.upstream_failures;
    }
    const obs::Labels labels = {{"node", node.url}};
    own[up_f].samples.push_back(obs::Sample{labels, node_up[i]});
    own[routed_f].samples.push_back(
        obs::Sample{labels, static_cast<double>(routed)});
    own[failures_f].samples.push_back(
        obs::Sample{labels, static_cast<double>(failures)});
  }
  const ReactorCounters c = counters();
  const std::size_t conns_f = add("tetris_dispatch_connections_total",
                                  "Downstream sockets accepted.",
                                  obs::Kind::kCounter);
  own[conns_f].samples.push_back(
      obs::Sample{{}, static_cast<double>(c.connections)});
  const std::size_t reqs_f = add("tetris_dispatch_requests_total",
                                 "Downstream requests handled.",
                                 obs::Kind::kCounter);
  own[reqs_f].samples.push_back(
      obs::Sample{{}, static_cast<double>(c.requests)});
  out += obs::render_prometheus(own);

  http::Response res;
  res.status = 200;
  res.content_type = "text/plain; version=0.0.4; charset=utf-8";
  res.body = out;
  return res;
}

http::Response Dispatcher::handle(const http::Request& request) {
  try {
    const std::string& path = request.path;
    if (path == "/v1/jobs") {
      if (request.method == "POST") return handle_submit(request);
      return error_response(405, "method_not_allowed", "use POST on /v1/jobs");
    }
    const std::string_view jobs_prefix = "/v1/jobs/";
    if (std::string_view(path).substr(0, jobs_prefix.size()) == jobs_prefix) {
      return handle_job(request);
    }
    if (path == "/v1/status") {
      if (request.method == "GET") return handle_status();
      return error_response(405, "method_not_allowed",
                            "use GET on /v1/status");
    }
    if (path == "/metrics") {
      if (request.method == "GET") return handle_metrics();
      return error_response(405, "method_not_allowed", "use GET on /metrics");
    }
    return error_response(404, "not_found", "no route for " + path);
  } catch (const http::HttpError& e) {
    return error_response(e.status(), e.code(), e.what());
  } catch (const std::exception& e) {
    return error_response(500, "internal_error", e.what());
  }
}

}  // namespace tetris::net
