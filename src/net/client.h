#pragma once

#include <string>

#include "net/http.h"

namespace tetris::net {

/// Split "http://host:port[/]" into its pieces. Only the plain-HTTP
/// host:port shape the embedded server answers on is accepted.
struct Url {
  std::string host;
  int port = 80;
};
Url parse_url(const std::string& url);

/// Minimal blocking HTTP/1.1 client for the embedded REST server: one
/// connection per request ("Connection: close" both ways), JSON bodies,
/// IPv4 only. This is what `tetrislock_cli submit --url` and the end-to-end
/// tests drive the server with — it deliberately shares the wire-format
/// code (net/http.h) but nothing else with the server, so a bug cannot
/// cancel itself out across the two sides.
class Client {
 public:
  Client(std::string host, int port, int timeout_ms = 30000);

  /// One round trip. `target` is the path (+ optional query), e.g.
  /// "/v1/jobs/1?timing=0". Throws tetris::Error on transport failure and
  /// HttpError on an unparseable response; HTTP-level error statuses are
  /// returned, not thrown.
  http::Response request(const std::string& method, const std::string& target,
                         const std::string& body = "",
                         const std::string& content_type = "application/json");

  http::Response get(const std::string& target) {
    return request("GET", target);
  }
  http::Response post(const std::string& target, const std::string& body) {
    return request("POST", target, body);
  }
  http::Response del(const std::string& target) {
    return request("DELETE", target);
  }

  /// Sends raw bytes and returns everything the peer answers until it
  /// closes — the hook the protocol-hardening tests use to speak broken
  /// HTTP at the server on purpose.
  std::string raw_exchange(const std::string& bytes);

 private:
  std::string host_;
  int port_;
  int timeout_ms_;
};

}  // namespace tetris::net
