#pragma once

#include <cstdint>
#include <string>

#include "net/http.h"
#include "net/socket.h"

namespace tetris::net {

/// Split "http://host:port[/]" into its pieces. Only the plain-HTTP
/// host:port shape the embedded server answers on is accepted.
struct Url {
  std::string host;
  int port = 80;
};
Url parse_url(const std::string& url);

/// Minimal blocking HTTP/1.1 client for the embedded REST server:
/// keep-alive by default (one persistent connection reused across
/// requests, responses framed by Content-Length), JSON bodies, IPv4 only.
/// This is what `tetrislock_cli submit --url`, the dispatcher's upstream
/// legs, and the end-to-end tests drive servers with — it deliberately
/// shares the wire-format code (net/http.h) but nothing else with the
/// server, so a bug cannot cancel itself out across the two sides.
///
/// Reconnection: when a server closes the connection (its "Connection:
/// close" response, idle eviction between our requests, a restart), the
/// next request transparently opens a new socket. A *reused* connection
/// that dies before any response byte arrives is retried once on a fresh
/// socket — the stale-keep-alive race every persistent-connection client
/// has — after which transport errors propagate as tetris::Error.
///
/// Not thread-safe: one Client per thread (or external locking).
class Client {
 public:
  /// `keep_alive` false restores one-connection-per-request behaviour
  /// ("Connection: close" both ways).
  Client(std::string host, int port, int timeout_ms = 30000,
         bool keep_alive = true);

  /// One round trip. `target` is the path (+ optional query), e.g.
  /// "/v1/jobs/1?timing=0". Throws tetris::Error on transport failure and
  /// HttpError on an unparseable response; HTTP-level error statuses are
  /// returned, not thrown.
  http::Response request(const std::string& method, const std::string& target,
                         const std::string& body = "",
                         const std::string& content_type = "application/json");

  http::Response get(const std::string& target) {
    return request("GET", target);
  }
  http::Response post(const std::string& target, const std::string& body) {
    return request("POST", target, body);
  }
  http::Response del(const std::string& target) {
    return request("DELETE", target);
  }

  /// Sends raw bytes on a fresh one-shot socket and returns everything the
  /// peer answers until it closes — the hook the protocol-hardening tests
  /// use to speak broken HTTP at the server on purpose (the server closes
  /// after every protocol error, delimiting the response).
  std::string raw_exchange(const std::string& bytes);

  /// Sockets opened by request() so far — lets tests pin that N keep-alive
  /// requests cost exactly one connection.
  std::uint64_t connections_opened() const { return connections_opened_; }

  /// Drops the persistent connection (next request reconnects).
  void disconnect();

 private:
  void ensure_connected();
  http::Response read_response();
  http::Response exchange(const std::string& wire);

  std::string host_;
  int port_;
  int timeout_ms_;
  bool keep_alive_;
  Socket socket_;       ///< persistent connection (invalid when closed)
  std::string carry_;   ///< bytes read past one response's Content-Length
  std::uint64_t connections_opened_ = 0;
};

}  // namespace tetris::net
