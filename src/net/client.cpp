#include "net/client.h"

#include <utility>

#include "common/error.h"

namespace tetris::net {

Url parse_url(const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    throw InvalidArgument("net: url must start with http:// : " + url);
  }
  std::string rest = url.substr(scheme.size());
  // Strip a path suffix; the embedded server only has one root.
  std::size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    if (rest.substr(slash) != "/") {
      throw InvalidArgument("net: url must not carry a path: " + url);
    }
    rest = rest.substr(0, slash);
  }
  Url out;
  std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    out.host = rest;
  } else {
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() || port_text.size() > 5 ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      throw InvalidArgument("net: invalid port in url: " + url);
    }
    out.port = std::stoi(port_text);
    if (out.port < 1 || out.port > 65535) {
      throw InvalidArgument("net: invalid port in url: " + url);
    }
  }
  if (out.host.empty()) {
    throw InvalidArgument("net: missing host in url: " + url);
  }
  return out;
}

Client::Client(std::string host, int port, int timeout_ms, bool keep_alive)
    : host_(std::move(host)),
      port_(port),
      timeout_ms_(timeout_ms),
      keep_alive_(keep_alive) {}

void Client::disconnect() {
  socket_.close();
  carry_.clear();
}

void Client::ensure_connected() {
  if (socket_.valid()) return;
  carry_.clear();
  socket_ = Socket::connect(host_, port_, timeout_ms_);
  ++connections_opened_;
}

std::string Client::raw_exchange(const std::string& bytes) {
  Socket socket = Socket::connect(host_, port_, timeout_ms_);
  socket.send_all(bytes);
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t n = socket.recv_some(chunk, sizeof(chunk));
    if (n == 0) break;
    response.append(chunk, n);
  }
  return response;
}

namespace {
/// Failure before any response byte arrived on a reused connection — the
/// only transport error request() retries (the request provably never
/// produced an answer, so resending cannot double-apply it).
struct StaleConnection : Error {
  using Error::Error;
};
}  // namespace

/// Reads one Content-Length-framed response off the persistent socket.
/// Surplus bytes (possible only if the server answered more than asked)
/// stay in carry_ for the next call.
http::Response Client::read_response() {
  std::string buffer = std::move(carry_);
  carry_.clear();
  char chunk[8192];
  std::size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    std::size_t n = 0;
    try {
      n = socket_.recv_some(chunk, sizeof(chunk));
    } catch (const std::exception& e) {
      if (buffer.empty()) throw StaleConnection(e.what());
      throw;
    }
    if (n == 0) {
      if (buffer.empty()) {
        throw StaleConnection("net: connection closed before a response");
      }
      throw Error("net: connection closed mid-response head");
    }
    buffer.append(chunk, n);
  }
  http::Response response =
      http::parse_response_head(std::string_view(buffer).substr(0, head_end + 4));
  std::string payload = buffer.substr(head_end + 4);

  // Keep-alive framing: the body is exactly Content-Length bytes. A missing
  // header means an empty body (the embedded server always sends one).
  std::size_t need = 0;
  if (const std::string* cl = response.header("content-length")) {
    if (cl->empty() || cl->find_first_not_of("0123456789") != std::string::npos) {
      throw http::HttpError(400, "bad_response",
                            "unparseable Content-Length in response");
    }
    need = static_cast<std::size_t>(std::stoull(*cl));
  }
  while (payload.size() < need) {
    std::size_t n = socket_.recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      throw Error("net: connection closed mid-response body");
    }
    payload.append(chunk, n);
  }
  carry_ = payload.substr(need);
  payload.resize(need);
  response.body = std::move(payload);

  // Honour the server's persistence decision.
  bool server_keeps = true;
  if (const std::string* c = response.header("connection")) {
    server_keeps = (*c != "close" && *c != "Close");
  }
  if (!keep_alive_ || !server_keeps) disconnect();
  return response;
}

http::Response Client::exchange(const std::string& wire) {
  ensure_connected();
  try {
    socket_.send_all(wire);
  } catch (const std::exception& e) {
    throw StaleConnection(e.what());  // request never answered: retryable
  }
  return read_response();
}

http::Response Client::request(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const std::string& content_type) {
  const std::string wire =
      http::format_request(method, target,
                           host_ + ":" + std::to_string(port_), body,
                           content_type, keep_alive_);
  const bool reused = socket_.valid();
  try {
    return exchange(wire);
  } catch (const StaleConnection&) {
    disconnect();
    if (!reused) throw;
    // Stale keep-alive connection (server evicted it between our requests
    // and the failure surfaced before any response byte): one fresh retry.
    return exchange(wire);
  } catch (const http::HttpError&) {
    throw;
  } catch (const std::exception&) {
    disconnect();  // transport failure mid-response: connection unusable
    throw;
  }
}

}  // namespace tetris::net
