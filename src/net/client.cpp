#include "net/client.h"

#include <utility>

#include "common/error.h"
#include "net/socket.h"

namespace tetris::net {

Url parse_url(const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    throw InvalidArgument("net: url must start with http:// : " + url);
  }
  std::string rest = url.substr(scheme.size());
  // Strip a path suffix; the embedded server only has one root.
  std::size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    if (rest.substr(slash) != "/") {
      throw InvalidArgument("net: url must not carry a path: " + url);
    }
    rest = rest.substr(0, slash);
  }
  Url out;
  std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    out.host = rest;
  } else {
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() || port_text.size() > 5 ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      throw InvalidArgument("net: invalid port in url: " + url);
    }
    out.port = std::stoi(port_text);
    if (out.port < 1 || out.port > 65535) {
      throw InvalidArgument("net: invalid port in url: " + url);
    }
  }
  if (out.host.empty()) {
    throw InvalidArgument("net: missing host in url: " + url);
  }
  return out;
}

Client::Client(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

std::string Client::raw_exchange(const std::string& bytes) {
  Socket socket = Socket::connect(host_, port_, timeout_ms_);
  socket.send_all(bytes);
  std::string response;
  char chunk[4096];
  while (true) {
    std::size_t n = socket.recv_some(chunk, sizeof(chunk));
    if (n == 0) break;
    response.append(chunk, n);
  }
  return response;
}

http::Response Client::request(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const std::string& content_type) {
  const std::string wire = raw_exchange(http::format_request(
      method, target, host_ + ":" + std::to_string(port_), body,
      content_type));

  std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    throw http::HttpError(400, "bad_response",
                          "no header terminator in response");
  }
  http::Response response = http::parse_response_head(
      std::string_view(wire).substr(0, head_end + 4));
  std::string payload = wire.substr(head_end + 4);
  if (const std::string* cl = response.header("content-length")) {
    // The connection-close framing already delimited the body; the header
    // is cross-checked so a truncated read cannot pass silently.
    if (std::to_string(payload.size()) != *cl) {
      throw http::HttpError(400, "bad_response",
                            "body size does not match Content-Length");
    }
  }
  response.body = std::move(payload);
  return response;
}

}  // namespace tetris::net
