#pragma once

#include <cstddef>
#include <vector>

#include "qir/circuit.h"

namespace tetris::attack {

/// Structural boundary-identification attack against prefix-insertion
/// obfuscation (the weakness of the random-insertion baseline that
/// Sec. II-C of the paper points out: "the topology of the original circuit
/// remains fully exposed").
///
/// The detector exploits that a random block prepended as *fresh layers*
/// leaves a footprint: deleting the true prefix shrinks the ASAP depth by
/// exactly the block's own depth. TetrisLock's slot-filling insertion leaves
/// no such footprint — no prefix deletion reduces the depth at all.
struct BoundaryScan {
  /// Prefix lengths k whose removal is depth-consistent with "gates 0..k-1
  /// were an inserted block occupying dedicated leading layers".
  std::vector<std::size_t> flagged_prefixes;
  /// Whether the true prefix length was flagged (attacker success).
  bool true_prefix_flagged = false;
  /// Number of false candidates flagged alongside (attacker ambiguity).
  std::size_t false_positives = 0;
};

/// Scans every prefix length 1..size-1 of `obfuscated` and flags the
/// depth-consistent ones; `true_prefix_len` is the designer's ground truth
/// used only for scoring.
BoundaryScan scan_prefix_boundary(const qir::Circuit& obfuscated,
                                  std::size_t true_prefix_len);

}  // namespace tetris::attack
