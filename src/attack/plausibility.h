#pragma once

#include <cstdint>
#include <vector>

#include "qir/circuit.h"

namespace tetris::attack {

/// Oracle-free collusion heuristic.
///
/// A real colluding-compiler pair cannot test a candidate stitching against
/// the true unitary (they never had it). What they *can* do is exploit a
/// structural side channel: in a correctly stitched TetrisLock pair, the
/// R^-1 block of split 1 meets the R block of split 2 and cancels under
/// commutation-aware optimization, so the correct candidate "simplifies
/// more" than wrong ones. This module quantifies that leakage:
/// plausibility_score measures the cancellation fraction, and
/// heuristic_collusion_attack ranks the Eq.-1 candidate space by it.
///
/// The benches use the *rank of the true stitching* as the leakage metric:
/// rank 1 means the heuristic identifies the design immediately; a rank deep
/// in the candidate list means the cancellation channel is uninformative.
/// (Designers can suppress the channel by compiling splits before release —
/// lowered R fragments no longer cancel gate-for-gate.)

/// Fraction of gates removed when the circuit is cleaned with the peephole +
/// commutation passes. 0 = nothing cancels, ~1 = almost everything does.
double plausibility_score(const qir::Circuit& circuit);

struct HeuristicAttackResult {
  /// 1-based rank of the true stitching under the score (ties counted
  /// pessimistically for the attacker: equal scores rank by enumeration
  /// order, true candidate last among equals).
  std::uint64_t true_rank = 0;
  std::uint64_t candidates = 0;   ///< total candidates enumerated
  double true_score = 0.0;
  double best_score = 0.0;
};

/// Enumerates qubit matchings between the splits (same space as
/// collusion_attack), scores each stitched candidate, and reports where the
/// true stitching lands. `true_second_map` is the designer's ground truth
/// (second-split local -> original), used only for ranking.
HeuristicAttackResult heuristic_collusion_attack(
    const qir::Circuit& first, const qir::Circuit& second,
    const std::vector<int>& ground_truth_first,
    const std::vector<int>& true_second_map, int num_original_qubits,
    std::uint64_t max_candidates);

}  // namespace tetris::attack
