#pragma once

#include <cstdint>
#include <vector>

#include "qir/circuit.h"

namespace tetris::attack {

/// Empirical colluding-compilers attack.
///
/// Two untrusted compilers pool the splits they received and try to stitch
/// them back into the original circuit by guessing which qubits of split A
/// connect to which qubits of split B (Sec. IV-C of the paper). The attacker
/// here is given a *stronger-than-real* oracle: it can test a candidate
/// stitching against the true original unitary. Measured try counts are
/// therefore lower bounds on real attack effort — which is the conservative
/// direction for evaluating the defense.
struct CollusionResult {
  bool success = false;
  std::uint64_t mappings_tried = 0;   ///< candidates tested before success
  std::uint64_t search_space = 0;     ///< total candidate count enumerated
};

/// Enumerates all qubit matchings between `first` (width n1) and `second`
/// (width n2): a matching picks j in [0, min(n1,n2)], a j-subset of each
/// side, and a bijection between them — the Eq. 1 search space for k = 1.
/// Each candidate is stitched (first, then second, shared qubits identified)
/// and, when its merged width equals original.num_qubits(), tested for
/// functional equivalence against `original` under the candidate labeling.
///
/// `ground_truth_first` maps first-split local qubits to original qubits;
/// the attacker does NOT use it for searching — it anchors the labeling of
/// the first split so the oracle comparison is well defined.
CollusionResult collusion_attack(const qir::Circuit& first,
                                 const qir::Circuit& second,
                                 const qir::Circuit& original,
                                 const std::vector<int>& ground_truth_first,
                                 std::uint64_t max_tries);

/// The same attack against a cascade (Saki-style) split where both parts
/// span the full register: the attacker enumerates the n! qubit bijections
/// for the second part.
CollusionResult cascade_collusion_attack(const qir::Circuit& first,
                                         const qir::Circuit& second,
                                         const qir::Circuit& original,
                                         std::uint64_t max_tries);

}  // namespace tetris::attack
