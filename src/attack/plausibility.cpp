#include "attack/plausibility.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "compiler/commute.h"
#include "compiler/optimize.h"

namespace tetris::attack {

double plausibility_score(const qir::Circuit& circuit) {
  const std::size_t before = circuit.gate_count();
  if (before == 0) return 0.0;
  qir::Circuit cleaned = compiler::commute_cancel(compiler::optimize(circuit));
  const std::size_t after = cleaned.gate_count();
  return static_cast<double>(before - after) / static_cast<double>(before);
}

namespace {

std::vector<std::vector<int>> subsets(int n, int j) {
  std::vector<std::vector<int>> out;
  if (j == 0) {
    out.push_back({});
    return out;
  }
  if (j > n) return out;
  std::vector<int> cur(static_cast<std::size_t>(j));
  std::iota(cur.begin(), cur.end(), 0);
  while (true) {
    out.push_back(cur);
    int i = j - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] == n - j + i) --i;
    if (i < 0) break;
    ++cur[static_cast<std::size_t>(i)];
    for (int t = i + 1; t < j; ++t) {
      cur[static_cast<std::size_t>(t)] = cur[static_cast<std::size_t>(t - 1)] + 1;
    }
  }
  return out;
}

}  // namespace

HeuristicAttackResult heuristic_collusion_attack(
    const qir::Circuit& first, const qir::Circuit& second,
    const std::vector<int>& ground_truth_first,
    const std::vector<int>& true_second_map, int num_original_qubits,
    std::uint64_t max_candidates) {
  const int n1 = first.num_qubits();
  const int n2 = second.num_qubits();
  TETRIS_REQUIRE(static_cast<int>(ground_truth_first.size()) == n1,
                 "heuristic attack: first ground truth size mismatch");
  TETRIS_REQUIRE(static_cast<int>(true_second_map.size()) == n2,
                 "heuristic attack: second ground truth size mismatch");

  std::vector<char> covered(static_cast<std::size_t>(num_original_qubits), 0);
  for (int o : ground_truth_first) covered[static_cast<std::size_t>(o)] = 1;
  std::vector<int> spare;
  for (int o = 0; o < num_original_qubits; ++o) {
    if (!covered[static_cast<std::size_t>(o)]) spare.push_back(o);
  }

  HeuristicAttackResult result;
  double true_score = -1.0;
  std::vector<double> scores;

  for (int j = 0; j <= std::min(n1, n2); ++j) {
    for (const auto& sub1 : subsets(n1, j)) {
      for (const auto& sub2 : subsets(n2, j)) {
        std::vector<int> perm(static_cast<std::size_t>(j));
        std::iota(perm.begin(), perm.end(), 0);
        do {
          if (result.candidates >= max_candidates) goto done;

          std::vector<int> second_map(static_cast<std::size_t>(n2), -1);
          for (int t = 0; t < j; ++t) {
            int l2 = sub2[static_cast<std::size_t>(t)];
            int l1 = sub1[static_cast<std::size_t>(perm[static_cast<std::size_t>(t)])];
            second_map[static_cast<std::size_t>(l2)] =
                ground_truth_first[static_cast<std::size_t>(l1)];
          }
          if (n2 - j != static_cast<int>(spare.size())) continue;
          std::size_t s = 0;
          for (auto& m : second_map) {
            if (m < 0) m = spare[s++];
          }
          ++result.candidates;

          qir::Circuit candidate(num_original_qubits, "cand");
          candidate.append_mapped(first, ground_truth_first);
          candidate.append_mapped(second, second_map);
          double score = plausibility_score(candidate);
          scores.push_back(score);
          if (second_map == true_second_map) true_score = score;
        } while (std::next_permutation(perm.begin(), perm.end()));
      }
    }
  }
done:
  TETRIS_REQUIRE(true_score >= 0.0,
                 "heuristic attack: true stitching not in enumerated space");
  result.true_score = true_score;
  result.best_score = *std::max_element(scores.begin(), scores.end());
  // Pessimistic (attacker-friendly is lower rank; ties resolved against the
  // defender would be rank among equals first — we count all >= as ahead).
  result.true_rank = 1;
  for (double sc : scores) {
    if (sc > true_score) ++result.true_rank;
  }
  return result;
}

}  // namespace tetris::attack
