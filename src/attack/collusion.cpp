#include "attack/collusion.h"

#include <algorithm>
#include <numeric>

#include "common/combinatorics.h"
#include "common/error.h"
#include "sim/unitary.h"

namespace tetris::attack {

namespace {

/// All j-element subsets of {0..n-1}, lexicographic.
std::vector<std::vector<int>> subsets(int n, int j) {
  std::vector<std::vector<int>> out;
  std::vector<int> cur(static_cast<std::size_t>(j));
  std::iota(cur.begin(), cur.end(), 0);
  if (j == 0) {
    out.push_back({});
    return out;
  }
  if (j > n) return out;
  while (true) {
    out.push_back(cur);
    int i = j - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] == n - j + i) --i;
    if (i < 0) break;
    ++cur[static_cast<std::size_t>(i)];
    for (int t = i + 1; t < j; ++t) {
      cur[static_cast<std::size_t>(t)] = cur[static_cast<std::size_t>(t - 1)] + 1;
    }
  }
  return out;
}

/// Builds the candidate recombination and tests it against the original.
bool test_candidate(const qir::Circuit& first, const qir::Circuit& second,
                    const qir::Circuit& original,
                    const std::vector<int>& first_map,
                    const std::vector<int>& second_map) {
  const int n = original.num_qubits();
  qir::Circuit candidate(n, "candidate");
  candidate.append_mapped(first, first_map);
  candidate.append_mapped(second, second_map);
  return sim::circuits_equivalent(candidate, original);
}

}  // namespace

CollusionResult collusion_attack(const qir::Circuit& first,
                                 const qir::Circuit& second,
                                 const qir::Circuit& original,
                                 const std::vector<int>& ground_truth_first,
                                 std::uint64_t max_tries) {
  const int n1 = first.num_qubits();
  const int n2 = second.num_qubits();
  const int n = original.num_qubits();
  TETRIS_REQUIRE(static_cast<int>(ground_truth_first.size()) == n1,
                 "collusion_attack: ground truth size mismatch");
  TETRIS_REQUIRE(n <= 12, "collusion_attack: register too wide for oracle");

  CollusionResult result;
  for (int j = 0; j <= std::min(n1, n2); ++j) {
    result.search_space += binomial_exact(n1, j) * binomial_exact(n2, j) *
                           factorial_exact(j);
  }

  // Original qubits not covered by the first split, in ascending order —
  // canonical labels for unmatched second-split qubits.
  std::vector<char> covered(static_cast<std::size_t>(n), 0);
  for (int o : ground_truth_first) covered[static_cast<std::size_t>(o)] = 1;
  std::vector<int> spare;
  for (int o = 0; o < n; ++o) {
    if (!covered[static_cast<std::size_t>(o)]) spare.push_back(o);
  }

  for (int j = 0; j <= std::min(n1, n2); ++j) {
    for (const auto& sub1 : subsets(n1, j)) {
      for (const auto& sub2 : subsets(n2, j)) {
        std::vector<int> perm(static_cast<std::size_t>(j));
        std::iota(perm.begin(), perm.end(), 0);
        do {
          if (result.mappings_tried >= max_tries) return result;
          ++result.mappings_tried;

          // Second-split local -> original label.
          std::vector<int> second_map(static_cast<std::size_t>(n2), -1);
          for (int t = 0; t < j; ++t) {
            int l2 = sub2[static_cast<std::size_t>(t)];
            int l1 = sub1[static_cast<std::size_t>(perm[static_cast<std::size_t>(t)])];
            second_map[static_cast<std::size_t>(l2)] = ground_truth_first[static_cast<std::size_t>(l1)];
          }
          // Unmatched second qubits take the spare labels in order; the
          // candidate is ill-formed (wrong total width) when counts differ.
          int unmatched = n2 - j;
          if (unmatched != static_cast<int>(spare.size())) continue;
          std::size_t s = 0;
          bool ok = true;
          for (auto& m : second_map) {
            if (m < 0) m = spare[s++];
          }
          if (!ok) continue;

          if (test_candidate(first, second, original, ground_truth_first,
                             second_map)) {
            result.success = true;
            return result;
          }
        } while (std::next_permutation(perm.begin(), perm.end()));
      }
    }
  }
  return result;
}

CollusionResult cascade_collusion_attack(const qir::Circuit& first,
                                         const qir::Circuit& second,
                                         const qir::Circuit& original,
                                         std::uint64_t max_tries) {
  const int n = original.num_qubits();
  TETRIS_REQUIRE(first.num_qubits() == n && second.num_qubits() == n,
                 "cascade_collusion_attack: cascade parts must be full width");
  TETRIS_REQUIRE(n <= 10, "cascade_collusion_attack: register too wide");

  CollusionResult result;
  result.search_space = factorial_exact(n);

  std::vector<int> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<int> perm = identity;
  do {
    if (result.mappings_tried >= max_tries) return result;
    ++result.mappings_tried;
    if (test_candidate(first, second, original, identity, perm)) {
      result.success = true;
      return result;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return result;
}

}  // namespace tetris::attack
