#include "attack/boundary.h"

#include <numeric>

#include "common/error.h"

namespace tetris::attack {

BoundaryScan scan_prefix_boundary(const qir::Circuit& obfuscated,
                                  std::size_t true_prefix_len) {
  BoundaryScan scan;
  const std::size_t total = obfuscated.size();
  TETRIS_REQUIRE(true_prefix_len <= total,
                 "scan_prefix_boundary: prefix longer than circuit");
  const int full_depth = obfuscated.depth();

  for (std::size_t k = 1; k + 1 <= total; ++k) {
    // Candidate prefix = gates [0, k); candidate remainder = [k, total).
    std::vector<std::size_t> prefix_idx(k);
    std::iota(prefix_idx.begin(), prefix_idx.end(), std::size_t{0});
    std::vector<std::size_t> suffix_idx(total - k);
    std::iota(suffix_idx.begin(), suffix_idx.end(), k);

    qir::Circuit prefix = obfuscated.subcircuit(prefix_idx);
    qir::Circuit suffix = obfuscated.subcircuit(suffix_idx);

    // Depth-consistency: the suffix is shallower by exactly the prefix's own
    // depth, i.e. the prefix occupied dedicated leading layers.
    int prefix_depth = prefix.depth();
    if (prefix_depth > 0 && suffix.depth() == full_depth - prefix_depth) {
      scan.flagged_prefixes.push_back(k);
      if (k == true_prefix_len) {
        scan.true_prefix_flagged = true;
      } else {
        ++scan.false_positives;
      }
    }
  }
  return scan;
}

}  // namespace tetris::attack
