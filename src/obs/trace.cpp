#include "obs/trace.h"

namespace tetris::obs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Trace::Trace() : start_(std::chrono::steady_clock::now()) {}

void Trace::record(std::string name, double start_seconds,
                   double duration_seconds,
                   std::vector<std::pair<std::string, std::string>> attrs) {
  Span span;
  span.name = std::move(name);
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  span.attrs = std::move(attrs);
  spans_.push_back(std::move(span));
}

double Trace::elapsed() const {
  return seconds_between(start_, std::chrono::steady_clock::now());
}

ScopedSpan::ScopedSpan(Trace* trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  if (trace_ == nullptr) return;
  // Offset first, clock second: the measured duration is then never larger
  // than the span's true window inside the trace, which keeps the
  // "durations sum to <= job seconds" invariant exact.
  start_seconds_ = trace_->elapsed();
  begin_ = std::chrono::steady_clock::now();
}

ScopedSpan& ScopedSpan::attr(std::string key, std::string value) {
  if (trace_ != nullptr) {
    attrs_.emplace_back(std::move(key), std::move(value));
  }
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string key, std::uint64_t value) {
  return attr(std::move(key), std::to_string(value));
}

void ScopedSpan::finish() {
  if (trace_ == nullptr) return;
  const double duration =
      seconds_between(begin_, std::chrono::steady_clock::now());
  trace_->record(std::move(name_), start_seconds_, duration,
                 std::move(attrs_));
  trace_ = nullptr;
}

}  // namespace tetris::obs
