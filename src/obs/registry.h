#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tetris::obs {

/// Label set attached to an instrument: ordered (name, value) pairs. Order is
/// preserved into the exposition output, so register labels in the order you
/// want them printed.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event counter. `inc` is a single relaxed fetch_add; safe to call
/// from any thread, including the reactor loop and pool workers.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge. `set` is a relaxed store; `add` is a CAS loop (C++17 has
/// no atomic fetch_add for doubles). Readers may observe any previously
/// stored value — never a torn one.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with explicit upper bounds (strictly increasing,
/// +Inf implicit). Buckets are chosen at registration, never derived from the
/// data, so the exposition is deterministic given the same sequence of
/// events. `observe` touches one bucket counter, the total count, and a
/// CAS-summed total — no locks on the hot path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (non-cumulative), same length as `bounds()` plus one
  /// trailing overflow bucket (+Inf).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Instrument kind, mirrored into `# TYPE` lines.
enum class Kind { kCounter, kGauge, kHistogram };

/// One numeric sample of a counter or gauge family.
struct Sample {
  Labels labels;
  double value = 0.0;
};

/// Snapshot of one histogram series: cumulative bucket counts aligned with
/// `bounds` (the +Inf bucket is implied by `count`).
struct HistogramSample {
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;  // same length as bounds
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Snapshot of a metric family: every series sharing one name/help/kind.
struct Family {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<Sample> samples;           // counter / gauge kinds
  std::vector<HistogramSample> histograms;  // histogram kind
};

/// Named instrument registry.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and returns a
/// reference that stays valid for the registry's lifetime — look instruments
/// up once at construction time and hit the returned reference on the hot
/// path. Repeated registration of the same (name, labels) returns the same
/// instrument. `collect()` snapshots every instrument without stopping
/// writers (relaxed atomic reads), then appends the families produced by any
/// `add_collector` callbacks — the bridge for pre-existing ad-hoc counters
/// (cache stats, store stats, backend counters, pool stats) that are not
/// registry instruments.
class Registry {
 public:
  Registry();
  ~Registry();  // out-of-line: FamilySlot is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Registers a snapshot-time callback that appends families to the
  /// collection. The callback must remain valid for the registry's lifetime.
  void add_collector(std::function<void(std::vector<Family>&)> fn);

  /// Snapshot of every family, in registration order, collector output last.
  std::vector<Family> collect() const;

 private:
  struct Series;
  struct FamilySlot;
  FamilySlot& slot(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FamilySlot>> families_;
  std::vector<std::function<void(std::vector<Family>&)>> collectors_;
};

/// Default latency buckets (seconds): 100us .. 10s, roughly ×3 per step.
std::vector<double> latency_buckets();

/// Renders families as Prometheus text exposition format 0.0.4. Families with
/// the same name are merged (first help/kind wins) so the Server can
/// concatenate its own registry with the Service's. Label values are escaped
/// per the format (backslash, double-quote, newline); histogram series emit
/// cumulative `_bucket{le=...}` lines ending in `le="+Inf"` equal to
/// `_count`, plus `_sum` and `_count`.
std::string render_prometheus(const std::vector<Family>& families);

}  // namespace tetris::obs
