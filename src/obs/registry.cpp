#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>

#include "common/error.h"
#include "common/json.h"

namespace tetris::obs {

namespace {

/// Prometheus sample value: integers (all counters, bucket counts) print
/// without a fractional part; everything else uses the JSON writer's
/// shortest-round-trip formatting so scrapes are deterministic.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return json::format_double(v);
}

/// Label *values* escape backslash, double-quote, and newline (format 0.0.4).
std::string escape_label_value(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP text escapes backslash and newline only.
std::string escape_help(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or empty when there are no labels. `extra` appends a
/// pre-rendered pair (the histogram `le` label).
std::string label_block(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// --------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  TETRIS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "Histogram: bucket bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  // Prometheus buckets are `le` (less-than-or-equal) upper bounds: the value
  // lands in the first bucket whose bound is >= v, else the +Inf overflow.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ----------------------------------------------------------------- Registry

struct Registry::Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry::FamilySlot {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::deque<Series> series;  // deque: references stay stable on growth
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::FamilySlot& Registry::slot(const std::string& name,
                                     const std::string& help, Kind kind) {
  for (auto& family : families_) {
    if (family->name == name) {
      TETRIS_REQUIRE(family->kind == kind,
                     "Registry: metric '" + name +
                         "' re-registered with a different kind");
      return *family;
    }
  }
  auto family = std::make_unique<FamilySlot>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilySlot& family = slot(name, help, Kind::kCounter);
  for (auto& series : family.series) {
    if (series.labels == labels) return *series.counter;
  }
  family.series.push_back(
      Series{std::move(labels), std::make_unique<Counter>(), nullptr, nullptr});
  return *family.series.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilySlot& family = slot(name, help, Kind::kGauge);
  for (auto& series : family.series) {
    if (series.labels == labels) return *series.gauge;
  }
  family.series.push_back(
      Series{std::move(labels), nullptr, std::make_unique<Gauge>(), nullptr});
  return *family.series.back().gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilySlot& family = slot(name, help, Kind::kHistogram);
  for (auto& series : family.series) {
    if (series.labels == labels) return *series.histogram;
  }
  family.series.push_back(Series{std::move(labels), nullptr, nullptr,
                                 std::make_unique<Histogram>(std::move(bounds))});
  return *family.series.back().histogram;
}

void Registry::add_collector(std::function<void(std::vector<Family>&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

std::vector<Family> Registry::collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Family> out;
  out.reserve(families_.size());
  for (const auto& family : families_) {
    Family snapshot;
    snapshot.name = family->name;
    snapshot.help = family->help;
    snapshot.kind = family->kind;
    for (const auto& series : family->series) {
      if (family->kind == Kind::kHistogram) {
        HistogramSample sample;
        sample.labels = series.labels;
        sample.bounds = series.histogram->bounds();
        // Snapshot order matters for the `+Inf == _count` invariant: read the
        // per-bucket counts first, then the total, and clamp the total up to
        // the bucket sum so a scrape racing `observe` never reports a +Inf
        // bucket above _count.
        const auto raw = series.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        sample.cumulative.reserve(sample.bounds.size());
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          cumulative += raw[i];
          sample.cumulative.push_back(cumulative);
        }
        cumulative += raw.back();
        sample.count = std::max(series.histogram->count(), cumulative);
        sample.sum = series.histogram->sum();
        snapshot.histograms.push_back(std::move(sample));
      } else {
        Sample sample;
        sample.labels = series.labels;
        sample.value = series.counter
                           ? static_cast<double>(series.counter->value())
                           : series.gauge->value();
        snapshot.samples.push_back(std::move(sample));
      }
    }
    out.push_back(std::move(snapshot));
  }
  for (const auto& collector : collectors_) collector(out);
  return out;
}

std::vector<double> latency_buckets() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0};
}

std::string render_prometheus(const std::vector<Family>& families) {
  // Merge same-name families (Server + Service registries are concatenated):
  // first help/kind wins, samples append in input order.
  std::vector<Family> merged;
  std::map<std::string, std::size_t> index;
  for (const Family& family : families) {
    auto [it, inserted] = index.emplace(family.name, merged.size());
    if (inserted) {
      merged.push_back(family);
      continue;
    }
    Family& target = merged[it->second];
    target.samples.insert(target.samples.end(), family.samples.begin(),
                          family.samples.end());
    target.histograms.insert(target.histograms.end(),
                             family.histograms.begin(),
                             family.histograms.end());
  }

  std::string out;
  for (const Family& family : merged) {
    out += "# HELP " + family.name + ' ' + escape_help(family.help) + '\n';
    out += "# TYPE " + family.name + ' ' + kind_name(family.kind) + '\n';
    if (family.kind == Kind::kHistogram) {
      for (const HistogramSample& h : family.histograms) {
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          out += family.name + "_bucket" +
                 label_block(h.labels,
                             "le=\"" + format_value(h.bounds[i]) +
                                 "\"") +
                 ' ' + std::to_string(h.cumulative[i]) + '\n';
        }
        out += family.name + "_bucket" +
               label_block(h.labels, "le=\"+Inf\"") + ' ' +
               std::to_string(h.count) + '\n';
        out += family.name + "_sum" + label_block(h.labels) + ' ' +
               format_value(h.sum) + '\n';
        out += family.name + "_count" + label_block(h.labels) + ' ' +
               std::to_string(h.count) + '\n';
      }
    } else {
      for (const Sample& s : family.samples) {
        out += family.name + label_block(s.labels) + ' ' +
               format_value(s.value) + '\n';
      }
    }
  }
  return out;
}

}  // namespace tetris::obs
