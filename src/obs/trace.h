#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tetris::obs {

/// One timed stage of a job. Offsets are relative to the owning trace's
/// start, so a trace is self-contained and never leaks absolute wall-clock
/// timestamps into serialized output.
struct Span {
  std::string name;          ///< stage name, e.g. "lock.obfuscate"
  double start_seconds = 0;  ///< offset from trace start
  double duration_seconds = 0;
  /// Free-form context, e.g. {"qubits","5"}, {"shots","4096"}. Ordered;
  /// serialized in insertion order.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Per-job stage trace: an append-only list of spans recorded by whichever
/// thread executes the job. Recording is single-threaded by construction —
/// the flow pipeline runs its stages sequentially on one worker — so Trace
/// itself takes no locks; do not share one Trace across concurrently
/// recording threads.
///
/// Spans are recorded via the RAII `ScopedSpan`, which measures on the
/// steady clock and appends on destruction. Because the pipeline stages run
/// back-to-back inside the same wall-clock window `Service` measures for
/// `JobOutcome::seconds`, the span durations always sum to at most that
/// figure (pinned in tests/test_obs.cpp).
class Trace {
 public:
  Trace();

  bool empty() const { return spans_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }

  /// Appends a finished span with explicit timing (used by ScopedSpan and by
  /// tests that need deterministic durations).
  void record(std::string name, double start_seconds, double duration_seconds,
              std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Seconds elapsed since the trace was constructed (steady clock).
  double elapsed() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<Span> spans_;
};

/// RAII span recorder: measures from construction to destruction (or to
/// `finish()`), then appends to the trace. A null trace disables recording —
/// callers pass their optional `Trace*` straight through:
///
///   obs::ScopedSpan span(trace, "lock.obfuscate");
///   span.attr("qubits", num_qubits);
///   ...stage body...
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string name);
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Movable so helpers can build a pre-attributed span and return it; the
  /// moved-from span is disarmed.
  ScopedSpan(ScopedSpan&& other) noexcept
      : trace_(other.trace_),
        name_(std::move(other.name_)),
        start_seconds_(other.start_seconds_),
        begin_(other.begin_),
        attrs_(std::move(other.attrs_)) {
    other.trace_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  ScopedSpan& attr(std::string key, std::string value);
  ScopedSpan& attr(std::string key, std::uint64_t value);

  /// Ends the span early; the destructor becomes a no-op.
  void finish();

 private:
  Trace* trace_;
  std::string name_;
  double start_seconds_ = 0;
  std::chrono::steady_clock::time_point begin_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace tetris::obs
