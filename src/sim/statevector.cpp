#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tetris::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
const cplx kI(0.0, 1.0);
}  // namespace

void single_qubit_matrix(qir::GateKind kind, const std::vector<double>& params,
                         cplx out[2][2]) {
  using qir::GateKind;
  auto set = [&](cplx a, cplx b, cplx c, cplx d) {
    out[0][0] = a; out[0][1] = b; out[1][0] = c; out[1][1] = d;
  };
  switch (kind) {
    case GateKind::I:    set(1, 0, 0, 1); return;
    case GateKind::X:    set(0, 1, 1, 0); return;
    case GateKind::Y:    set(0, -kI, kI, 0); return;
    case GateKind::Z:    set(1, 0, 0, -1); return;
    case GateKind::H:    set(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2); return;
    case GateKind::S:    set(1, 0, 0, kI); return;
    case GateKind::Sdg:  set(1, 0, 0, -kI); return;
    case GateKind::T:    set(1, 0, 0, std::exp(kI * (M_PI / 4.0))); return;
    case GateKind::Tdg:  set(1, 0, 0, std::exp(-kI * (M_PI / 4.0))); return;
    case GateKind::SX:
      set(0.5 * cplx(1, 1), 0.5 * cplx(1, -1), 0.5 * cplx(1, -1), 0.5 * cplx(1, 1));
      return;
    case GateKind::SXdg:
      set(0.5 * cplx(1, -1), 0.5 * cplx(1, 1), 0.5 * cplx(1, 1), 0.5 * cplx(1, -1));
      return;
    case GateKind::RX: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -kI * std::sin(t), -kI * std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RY: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RZ: {
      double t = params.at(0) / 2.0;
      set(std::exp(-kI * t), 0, 0, std::exp(kI * t));
      return;
    }
    case GateKind::P:
      set(1, 0, 0, std::exp(kI * params.at(0)));
      return;
    default:
      throw InvalidArgument("single_qubit_matrix: kind '" +
                            qir::gate_kind_name(kind) + "' is not single-qubit");
  }
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  TETRIS_REQUIRE(num_qubits >= 0 && num_qubits <= 28,
                 "StateVector supports 0..28 qubits");
  amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::set_basis_state(std::size_t index) {
  TETRIS_REQUIRE(index < amps_.size(), "set_basis_state: index out of range");
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[index] = 1.0;
}

void StateVector::apply_single_qubit(const cplx m[2][2], int q) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      std::size_t i0 = base + offset;
      std::size_t i1 = i0 + stride;
      cplx a0 = amps_[i0];
      cplx a1 = amps_[i1];
      amps_[i0] = m[0][0] * a0 + m[0][1] * a1;
      amps_[i1] = m[1][0] * a0 + m[1][1] * a1;
    }
  }
}

void StateVector::apply_controlled_single(const cplx m[2][2],
                                          std::size_t control_mask, int q) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      std::size_t i0 = base + offset;
      if ((i0 & control_mask) != control_mask) continue;
      std::size_t i1 = i0 + stride;
      cplx a0 = amps_[i0];
      cplx a1 = amps_[i1];
      amps_[i0] = m[0][0] * a0 + m[0][1] * a1;
      amps_[i1] = m[1][0] * a0 + m[1][1] * a1;
    }
  }
}

void StateVector::apply_swap(int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    bool ba = (i & bit_a) != 0;
    bool bb = (i & bit_b) != 0;
    if (ba && !bb) {
      std::size_t j = (i & ~bit_a) | bit_b;
      std::swap(amps_[i], amps_[j]);
    }
  }
}

void StateVector::apply_controlled_swap(std::size_t control_mask, int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & control_mask) != control_mask) continue;
    bool ba = (i & bit_a) != 0;
    bool bb = (i & bit_b) != 0;
    if (ba && !bb) {
      std::size_t j = (i & ~bit_a) | bit_b;
      std::swap(amps_[i], amps_[j]);
    }
  }
}

void StateVector::apply_gate(const qir::Gate& gate) {
  using qir::GateKind;
  for (int q : gate.qubits) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "apply_gate: qubit out of range");
  }
  switch (gate.kind) {
    case GateKind::Barrier:
      return;
    case GateKind::SWAP:
      apply_swap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CSWAP:
      apply_controlled_swap(std::size_t{1} << gate.qubits[0], gate.qubits[1],
                            gate.qubits[2]);
      return;
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCX:
    case GateKind::MCX: {
      // Controls are all qubits but the last; build the base single-qubit
      // matrix the controlled kind applies on its target.
      GateKind base;
      switch (gate.kind) {
        case GateKind::CX:
        case GateKind::CCX:
        case GateKind::MCX: base = GateKind::X; break;
        case GateKind::CY:  base = GateKind::Y; break;
        case GateKind::CZ:  base = GateKind::Z; break;
        case GateKind::CH:  base = GateKind::H; break;
        case GateKind::CP:  base = GateKind::P; break;
        default:            base = GateKind::RZ; break;  // CRZ
      }
      cplx m[2][2];
      single_qubit_matrix(base, gate.params, m);
      std::size_t mask = 0;
      for (std::size_t i = 0; i + 1 < gate.qubits.size(); ++i) {
        mask |= std::size_t{1} << gate.qubits[i];
      }
      apply_controlled_single(m, mask, gate.qubits.back());
      return;
    }
    default: {
      cplx m[2][2];
      single_qubit_matrix(gate.kind, gate.params, m);
      apply_single_qubit(m, gate.qubits[0]);
      return;
    }
  }
}

void StateVector::apply_circuit(const qir::Circuit& circuit) {
  TETRIS_REQUIRE(circuit.num_qubits() <= num_qubits_,
                 "apply_circuit: circuit wider than register");
  for (const auto& g : circuit.gates()) apply_gate(g);
}

void StateVector::apply_pauli(char pauli, int q) {
  switch (pauli) {
    case 'I': return;
    case 'X': apply_gate(qir::make_x(q)); return;
    case 'Y': apply_gate(qir::make_y(q)); return;
    case 'Z': apply_gate(qir::make_z(q)); return;
    default:
      throw InvalidArgument(std::string("apply_pauli: bad Pauli '") + pauli + "'");
  }
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

std::size_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    if (r < acc) return i;
  }
  return amps_.size() - 1;  // numerical tail
}

cplx StateVector::inner(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "inner: width mismatch");
  cplx acc(0.0, 0.0);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner(other));
}

double StateVector::max_abs_diff(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "max_abs_diff: width mismatch");
  double mx = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    mx = std::max(mx, std::abs(amps_[i] - other.amps_[i]));
  }
  return mx;
}

void StateVector::normalize() {
  double norm2 = 0.0;
  for (const cplx& a : amps_) norm2 += std::norm(a);
  TETRIS_REQUIRE(norm2 > 0.0, "normalize: zero state");
  double inv = 1.0 / std::sqrt(norm2);
  for (cplx& a : amps_) a *= inv;
}

}  // namespace tetris::sim
