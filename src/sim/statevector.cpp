#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "runtime/thread_pool.h"
#include "sim/kernels/kernels.h"

namespace tetris::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
const cplx kI(0.0, 1.0);

/// Runs `kernel(begin, end)` over [0, count): chunked across the global pool
/// when `parallel` is set, as one serial call otherwise. Both paths execute
/// the same per-index arithmetic, so results are bit-identical. `align`
/// keeps chunk boundaries on vector-group multiples (AVX2 processes two
/// complex amplitudes per register) — a partitioning nicety, never a
/// correctness requirement.
template <typename Kernel>
void run_kernel(bool parallel, std::size_t grain, std::size_t align,
                std::size_t count, const Kernel& kernel) {
  if (parallel) {
    runtime::parallel_for(0, count, kernel, {grain, nullptr, align});
  } else {
    kernel(std::size_t{0}, count);
  }
}

/// Chunk alignment for the active mode: AVX2 packs 2 complex per register.
std::size_t mode_align(kernels::SimdMode mode) {
  return mode == kernels::SimdMode::kAvx2 ? 2 : 1;
}
}  // namespace

void single_qubit_matrix(qir::GateKind kind, const std::vector<double>& params,
                         cplx out[2][2]) {
  using qir::GateKind;
  auto set = [&](cplx a, cplx b, cplx c, cplx d) {
    out[0][0] = a; out[0][1] = b; out[1][0] = c; out[1][1] = d;
  };
  switch (kind) {
    case GateKind::I:    set(1, 0, 0, 1); return;
    case GateKind::X:    set(0, 1, 1, 0); return;
    case GateKind::Y:    set(0, -kI, kI, 0); return;
    case GateKind::Z:    set(1, 0, 0, -1); return;
    case GateKind::H:    set(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2); return;
    case GateKind::S:    set(1, 0, 0, kI); return;
    case GateKind::Sdg:  set(1, 0, 0, -kI); return;
    case GateKind::T:    set(1, 0, 0, std::exp(kI * (M_PI / 4.0))); return;
    case GateKind::Tdg:  set(1, 0, 0, std::exp(-kI * (M_PI / 4.0))); return;
    case GateKind::SX:
      set(0.5 * cplx(1, 1), 0.5 * cplx(1, -1), 0.5 * cplx(1, -1), 0.5 * cplx(1, 1));
      return;
    case GateKind::SXdg:
      set(0.5 * cplx(1, -1), 0.5 * cplx(1, 1), 0.5 * cplx(1, 1), 0.5 * cplx(1, -1));
      return;
    case GateKind::RX: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -kI * std::sin(t), -kI * std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RY: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RZ: {
      double t = params.at(0) / 2.0;
      set(std::exp(-kI * t), 0, 0, std::exp(kI * t));
      return;
    }
    case GateKind::P:
      set(1, 0, 0, std::exp(kI * params.at(0)));
      return;
    default:
      throw InvalidArgument("single_qubit_matrix: kind '" +
                            qir::gate_kind_name(kind) + "' is not single-qubit");
  }
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  TETRIS_REQUIRE(num_qubits >= 0 && num_qubits <= 28,
                 "StateVector supports 0..28 qubits");
  amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::set_basis_state(std::size_t index) {
  TETRIS_REQUIRE(index < amps_.size(), "set_basis_state: index out of range");
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[index] = 1.0;
}

void StateVector::apply_single_qubit(const cplx m[2][2], int q) {
  cplx* amps = amps_.data();
  const kernels::SimdMode mode = kernels::simd_mode();
  const cplx m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  // Diagonal fast path (Z/S/T/RZ/P and fused products of them): one
  // branch-free contiguous pass with a single multiply per amplitude,
  // instead of the paired gather. The skipped terms are exact zeros
  // (m01 * a1 == 0), so this cannot move any |amp| — only the sign of a
  // zero — and parallel chunks stay bit-identical to serial.
  if (m01 == cplx(0.0, 0.0) && m10 == cplx(0.0, 0.0)) {
    run_kernel(use_parallel(), parallel_grain_, mode_align(mode),
               amps_.size(), [=](std::size_t begin, std::size_t end) {
                 kernels::sweep_diag(mode, amps, begin, end, q, m00, m11);
               });
    return;
  }
  // Pair index k interleaves (block, offset): i0 is k with a zero bit spliced
  // in at position q. Every k touches a disjoint {i0, i1} pair, so chunks of
  // k are race-free and order-independent.
  const kernels::M2 m2{m00, m01, m10, m11};
  run_kernel(use_parallel(), parallel_grain_, mode_align(mode),
             amps_.size() / 2, [=](std::size_t k_begin, std::size_t k_end) {
               kernels::sweep_1q(mode, amps, k_begin, k_end, q, m2);
             });
}

void StateVector::apply_controlled_single(const cplx m[2][2],
                                          std::size_t control_mask, int q) {
  const std::size_t stride = std::size_t{1} << q;
  cplx* amps = amps_.data();
  const cplx m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  run_kernel(use_parallel(), parallel_grain_, 1, amps_.size() / 2,
             [=](std::size_t k_begin, std::size_t k_end) {
               for (std::size_t k = k_begin; k < k_end; ++k) {
                 const std::size_t i0 =
                     ((k >> q) << (q + 1)) | (k & (stride - 1));
                 if ((i0 & control_mask) != control_mask) continue;
                 const std::size_t i1 = i0 + stride;
                 const cplx a0 = amps[i0];
                 const cplx a1 = amps[i1];
                 amps[i0] = m00 * a0 + m01 * a1;
                 amps[i1] = m10 * a0 + m11 * a1;
               }
             });
}

void StateVector::apply_swap(int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  cplx* amps = amps_.data();
  // Only the index with bit_a set and bit_b clear initiates a swap, and its
  // partner j never initiates one itself, so each {i, j} pair is touched by
  // exactly one iteration — parallel chunks cannot collide.
  run_kernel(use_parallel(), parallel_grain_, 1, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 if ((i & bit_a) != 0 && (i & bit_b) == 0) {
                   const std::size_t j = (i & ~bit_a) | bit_b;
                   std::swap(amps[i], amps[j]);
                 }
               }
             });
}

void StateVector::apply_controlled_swap(std::size_t control_mask, int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  cplx* amps = amps_.data();
  run_kernel(use_parallel(), parallel_grain_, 1, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 if ((i & control_mask) != control_mask) continue;
                 if ((i & bit_a) != 0 && (i & bit_b) == 0) {
                   const std::size_t j = (i & ~bit_a) | bit_b;
                   std::swap(amps[i], amps[j]);
                 }
               }
             });
}

void StateVector::apply_matrix(const cplx m[2][2], int q) {
  TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "apply_matrix: qubit out of range");
  apply_single_qubit(m, q);
}

void StateVector::apply_gang(const std::vector<SingleQubitOp>& ops) {
  if (ops.empty()) return;
  const int k = static_cast<int>(ops.size());
  TETRIS_REQUIRE(k <= kMaxGangQubits, "apply_gang: too many gang qubits");
  for (const SingleQubitOp& op : ops) {
    TETRIS_REQUIRE(op.qubit >= 0 && op.qubit < num_qubits_,
                   "apply_gang: qubit out of range");
  }
  // Duplicate check here; the execution plan (sorted qubits, block offsets,
  // per-op local positions) is built by the kernel layer and shared
  // read-only by every chunk.
  std::vector<int> sorted(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) sorted[static_cast<std::size_t>(j)] = ops[static_cast<std::size_t>(j)].qubit;
  std::sort(sorted.begin(), sorted.end());
  for (int j = 0; j + 1 < k; ++j) {
    TETRIS_REQUIRE(sorted[static_cast<std::size_t>(j)] !=
                       sorted[static_cast<std::size_t>(j) + 1],
                   "apply_gang: duplicate qubit");
  }
  const kernels::GangPlan plan = kernels::make_gang_plan(ops.data(), ops.size());
  const kernels::GangPlan* pplan = &plan;  // outlives the joined parallel_for
  const kernels::SimdMode mode = kernels::simd_mode();
  cplx* amps = amps_.data();
  const std::size_t outer_count = amps_.size() >> k;
  // Keep the per-chunk byte footprint comparable to the 1q kernel's: each
  // outer index covers 2^k amplitudes.
  const std::size_t grain = std::max<std::size_t>(1, parallel_grain_ >> k);
  run_kernel(use_parallel(), grain, 1, outer_count,
             [=](std::size_t begin, std::size_t end) {
               kernels::sweep_gang(mode, amps, begin, end, *pplan);
             });
}

void StateVector::apply_two_qubit(const cplx m[4][4], int a, int b) {
  TETRIS_REQUIRE(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
                 "apply_two_qubit: qubit out of range");
  TETRIS_REQUIRE(a != b, "apply_two_qubit: qubits must be distinct");
  kernels::M4 m4;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) m4.v[r * 4 + c] = m[r][c];
  }
  cplx* amps = amps_.data();
  const kernels::SimdMode mode = kernels::simd_mode();
  // Monomial fast path: exactly one nonzero per row (and per column — the
  // matrix is unitary up to the caller), which covers every product of
  // permutation and phase gates: CX/CZ/CP/CRZ/SWAP runs, X/Z/S/T/RZ on the
  // pair, and their mixtures. One multiply per amplitude instead of the
  // dense 16-multiply row sums; the dropped terms are exact zeros, so only
  // zero signs can differ from the dense path. The decomposition is
  // mode-independent, so scalar and AVX2 builds agree on which kernel runs.
  int src[4] = {0, 0, 0, 0};
  cplx coef[4];
  if (kernels::monomial_decompose(m4, src, coef)) {
    run_kernel(use_parallel(), std::max<std::size_t>(1, parallel_grain_ / 4),
               1, amps_.size() / 4, [=](std::size_t begin, std::size_t end) {
                 kernels::sweep_2q_monomial(mode, amps, begin, end, a, b, src,
                                            coef);
               });
    return;
  }
  run_kernel(use_parallel(), std::max<std::size_t>(1, parallel_grain_ / 4),
             1, amps_.size() / 4, [=](std::size_t begin, std::size_t end) {
               kernels::sweep_2q(mode, amps, begin, end, a, b, m4);
             });
}

void StateVector::apply_gate(const qir::Gate& gate) {
  using qir::GateKind;
  for (int q : gate.qubits) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "apply_gate: qubit out of range");
  }
  switch (gate.kind) {
    case GateKind::Barrier:
      return;
    case GateKind::SWAP:
      apply_swap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CSWAP:
      apply_controlled_swap(std::size_t{1} << gate.qubits[0], gate.qubits[1],
                            gate.qubits[2]);
      return;
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCX:
    case GateKind::MCX: {
      // Controls are all qubits but the last; build the base single-qubit
      // matrix the controlled kind applies on its target.
      GateKind base;
      switch (gate.kind) {
        case GateKind::CX:
        case GateKind::CCX:
        case GateKind::MCX: base = GateKind::X; break;
        case GateKind::CY:  base = GateKind::Y; break;
        case GateKind::CZ:  base = GateKind::Z; break;
        case GateKind::CH:  base = GateKind::H; break;
        case GateKind::CP:  base = GateKind::P; break;
        default:            base = GateKind::RZ; break;  // CRZ
      }
      cplx m[2][2];
      single_qubit_matrix(base, gate.params, m);
      std::size_t mask = 0;
      for (std::size_t i = 0; i + 1 < gate.qubits.size(); ++i) {
        mask |= std::size_t{1} << gate.qubits[i];
      }
      apply_controlled_single(m, mask, gate.qubits.back());
      return;
    }
    default: {
      cplx m[2][2];
      single_qubit_matrix(gate.kind, gate.params, m);
      apply_single_qubit(m, gate.qubits[0]);
      return;
    }
  }
}

void StateVector::apply_circuit(const qir::Circuit& circuit) {
  TETRIS_REQUIRE(circuit.num_qubits() <= num_qubits_,
                 "apply_circuit: circuit wider than register");
  for (const auto& g : circuit.gates()) apply_gate(g);
}

void StateVector::apply_pauli(char pauli, int q) {
  switch (pauli) {
    case 'I': return;
    case 'X': apply_gate(qir::make_x(q)); return;
    case 'Y': apply_gate(qir::make_y(q)); return;
    case 'Z': apply_gate(qir::make_z(q)); return;
    default:
      throw InvalidArgument(std::string("apply_pauli: bad Pauli '") + pauli + "'");
  }
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(amps_.size());
  double* out = p.data();
  const cplx* amps = amps_.data();
  run_kernel(use_parallel(), parallel_grain_, 1, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 out[i] = std::norm(amps[i]);
               }
             });
  return p;
}

std::size_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    if (r < acc) return i;
  }
  return amps_.size() - 1;  // numerical tail
}

cplx StateVector::inner(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "inner: width mismatch");
  cplx acc(0.0, 0.0);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner(other));
}

double StateVector::max_abs_diff(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "max_abs_diff: width mismatch");
  double mx = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    mx = std::max(mx, std::abs(amps_[i] - other.amps_[i]));
  }
  return mx;
}

void StateVector::normalize() {
  double norm2 = 0.0;
  for (const cplx& a : amps_) norm2 += std::norm(a);
  TETRIS_REQUIRE(norm2 > 0.0, "normalize: zero state");
  double inv = 1.0 / std::sqrt(norm2);
  for (cplx& a : amps_) a *= inv;
}

}  // namespace tetris::sim
