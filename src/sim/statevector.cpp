#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "runtime/thread_pool.h"

namespace tetris::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
const cplx kI(0.0, 1.0);

/// Runs `kernel(begin, end)` over [0, count): chunked across the global pool
/// when `parallel` is set, as one serial call otherwise. Both paths execute
/// the same per-index arithmetic, so results are bit-identical.
template <typename Kernel>
void run_kernel(bool parallel, std::size_t grain, std::size_t count,
                const Kernel& kernel) {
  if (parallel) {
    runtime::parallel_for(0, count, kernel, {grain, nullptr});
  } else {
    kernel(std::size_t{0}, count);
  }
}
}  // namespace

void single_qubit_matrix(qir::GateKind kind, const std::vector<double>& params,
                         cplx out[2][2]) {
  using qir::GateKind;
  auto set = [&](cplx a, cplx b, cplx c, cplx d) {
    out[0][0] = a; out[0][1] = b; out[1][0] = c; out[1][1] = d;
  };
  switch (kind) {
    case GateKind::I:    set(1, 0, 0, 1); return;
    case GateKind::X:    set(0, 1, 1, 0); return;
    case GateKind::Y:    set(0, -kI, kI, 0); return;
    case GateKind::Z:    set(1, 0, 0, -1); return;
    case GateKind::H:    set(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2); return;
    case GateKind::S:    set(1, 0, 0, kI); return;
    case GateKind::Sdg:  set(1, 0, 0, -kI); return;
    case GateKind::T:    set(1, 0, 0, std::exp(kI * (M_PI / 4.0))); return;
    case GateKind::Tdg:  set(1, 0, 0, std::exp(-kI * (M_PI / 4.0))); return;
    case GateKind::SX:
      set(0.5 * cplx(1, 1), 0.5 * cplx(1, -1), 0.5 * cplx(1, -1), 0.5 * cplx(1, 1));
      return;
    case GateKind::SXdg:
      set(0.5 * cplx(1, -1), 0.5 * cplx(1, 1), 0.5 * cplx(1, 1), 0.5 * cplx(1, -1));
      return;
    case GateKind::RX: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -kI * std::sin(t), -kI * std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RY: {
      double t = params.at(0) / 2.0;
      set(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
      return;
    }
    case GateKind::RZ: {
      double t = params.at(0) / 2.0;
      set(std::exp(-kI * t), 0, 0, std::exp(kI * t));
      return;
    }
    case GateKind::P:
      set(1, 0, 0, std::exp(kI * params.at(0)));
      return;
    default:
      throw InvalidArgument("single_qubit_matrix: kind '" +
                            qir::gate_kind_name(kind) + "' is not single-qubit");
  }
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  TETRIS_REQUIRE(num_qubits >= 0 && num_qubits <= 28,
                 "StateVector supports 0..28 qubits");
  amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[0] = 1.0;
}

void StateVector::set_basis_state(std::size_t index) {
  TETRIS_REQUIRE(index < amps_.size(), "set_basis_state: index out of range");
  std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
  amps_[index] = 1.0;
}

void StateVector::apply_single_qubit(const cplx m[2][2], int q) {
  const std::size_t stride = std::size_t{1} << q;
  cplx* amps = amps_.data();
  const cplx m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  // Pair index k interleaves (block, offset): i0 is k with a zero bit spliced
  // in at position q. Every k touches a disjoint {i0, i1} pair, so chunks of
  // k are race-free and order-independent.
  run_kernel(use_parallel(), parallel_grain_, amps_.size() / 2,
             [=](std::size_t k_begin, std::size_t k_end) {
               for (std::size_t k = k_begin; k < k_end; ++k) {
                 const std::size_t i0 =
                     ((k >> q) << (q + 1)) | (k & (stride - 1));
                 const std::size_t i1 = i0 + stride;
                 const cplx a0 = amps[i0];
                 const cplx a1 = amps[i1];
                 amps[i0] = m00 * a0 + m01 * a1;
                 amps[i1] = m10 * a0 + m11 * a1;
               }
             });
}

void StateVector::apply_controlled_single(const cplx m[2][2],
                                          std::size_t control_mask, int q) {
  const std::size_t stride = std::size_t{1} << q;
  cplx* amps = amps_.data();
  const cplx m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  run_kernel(use_parallel(), parallel_grain_, amps_.size() / 2,
             [=](std::size_t k_begin, std::size_t k_end) {
               for (std::size_t k = k_begin; k < k_end; ++k) {
                 const std::size_t i0 =
                     ((k >> q) << (q + 1)) | (k & (stride - 1));
                 if ((i0 & control_mask) != control_mask) continue;
                 const std::size_t i1 = i0 + stride;
                 const cplx a0 = amps[i0];
                 const cplx a1 = amps[i1];
                 amps[i0] = m00 * a0 + m01 * a1;
                 amps[i1] = m10 * a0 + m11 * a1;
               }
             });
}

void StateVector::apply_swap(int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  cplx* amps = amps_.data();
  // Only the index with bit_a set and bit_b clear initiates a swap, and its
  // partner j never initiates one itself, so each {i, j} pair is touched by
  // exactly one iteration — parallel chunks cannot collide.
  run_kernel(use_parallel(), parallel_grain_, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 if ((i & bit_a) != 0 && (i & bit_b) == 0) {
                   const std::size_t j = (i & ~bit_a) | bit_b;
                   std::swap(amps[i], amps[j]);
                 }
               }
             });
}

void StateVector::apply_controlled_swap(std::size_t control_mask, int a, int b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  cplx* amps = amps_.data();
  run_kernel(use_parallel(), parallel_grain_, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 if ((i & control_mask) != control_mask) continue;
                 if ((i & bit_a) != 0 && (i & bit_b) == 0) {
                   const std::size_t j = (i & ~bit_a) | bit_b;
                   std::swap(amps[i], amps[j]);
                 }
               }
             });
}

void StateVector::apply_gate(const qir::Gate& gate) {
  using qir::GateKind;
  for (int q : gate.qubits) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_, "apply_gate: qubit out of range");
  }
  switch (gate.kind) {
    case GateKind::Barrier:
      return;
    case GateKind::SWAP:
      apply_swap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CSWAP:
      apply_controlled_swap(std::size_t{1} << gate.qubits[0], gate.qubits[1],
                            gate.qubits[2]);
      return;
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCX:
    case GateKind::MCX: {
      // Controls are all qubits but the last; build the base single-qubit
      // matrix the controlled kind applies on its target.
      GateKind base;
      switch (gate.kind) {
        case GateKind::CX:
        case GateKind::CCX:
        case GateKind::MCX: base = GateKind::X; break;
        case GateKind::CY:  base = GateKind::Y; break;
        case GateKind::CZ:  base = GateKind::Z; break;
        case GateKind::CH:  base = GateKind::H; break;
        case GateKind::CP:  base = GateKind::P; break;
        default:            base = GateKind::RZ; break;  // CRZ
      }
      cplx m[2][2];
      single_qubit_matrix(base, gate.params, m);
      std::size_t mask = 0;
      for (std::size_t i = 0; i + 1 < gate.qubits.size(); ++i) {
        mask |= std::size_t{1} << gate.qubits[i];
      }
      apply_controlled_single(m, mask, gate.qubits.back());
      return;
    }
    default: {
      cplx m[2][2];
      single_qubit_matrix(gate.kind, gate.params, m);
      apply_single_qubit(m, gate.qubits[0]);
      return;
    }
  }
}

void StateVector::apply_circuit(const qir::Circuit& circuit) {
  TETRIS_REQUIRE(circuit.num_qubits() <= num_qubits_,
                 "apply_circuit: circuit wider than register");
  for (const auto& g : circuit.gates()) apply_gate(g);
}

void StateVector::apply_pauli(char pauli, int q) {
  switch (pauli) {
    case 'I': return;
    case 'X': apply_gate(qir::make_x(q)); return;
    case 'Y': apply_gate(qir::make_y(q)); return;
    case 'Z': apply_gate(qir::make_z(q)); return;
    default:
      throw InvalidArgument(std::string("apply_pauli: bad Pauli '") + pauli + "'");
  }
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(amps_.size());
  double* out = p.data();
  const cplx* amps = amps_.data();
  run_kernel(use_parallel(), parallel_grain_, amps_.size(),
             [=](std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 out[i] = std::norm(amps[i]);
               }
             });
  return p;
}

std::size_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    if (r < acc) return i;
  }
  return amps_.size() - 1;  // numerical tail
}

cplx StateVector::inner(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "inner: width mismatch");
  cplx acc(0.0, 0.0);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner(other));
}

double StateVector::max_abs_diff(const StateVector& other) const {
  TETRIS_REQUIRE(num_qubits_ == other.num_qubits_, "max_abs_diff: width mismatch");
  double mx = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    mx = std::max(mx, std::abs(amps_[i] - other.amps_[i]));
  }
  return mx;
}

void StateVector::normalize() {
  double norm2 = 0.0;
  for (const cplx& a : amps_) norm2 += std::norm(a);
  TETRIS_REQUIRE(norm2 > 0.0, "normalize: zero state");
  double inv = 1.0 / std::sqrt(norm2);
  for (cplx& a : amps_) a *= inv;
}

}  // namespace tetris::sim
