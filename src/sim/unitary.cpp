#include "sim/unitary.h"

#include <cmath>

#include "common/error.h"
#include "sim/fusion.h"
#include "sim/statevector.h"

namespace tetris::sim {

namespace {

/// Shared column loop of the two build_unitary flavours.
template <typename ApplyFn>
Unitary build_unitary_impl(int num_qubits, const ApplyFn& apply) {
  TETRIS_REQUIRE(num_qubits <= 12,
                 "build_unitary: register too wide for dense unitary");
  Unitary u;
  u.num_qubits = num_qubits;
  std::size_t dim = u.dim();
  u.data.assign(dim * dim, {0.0, 0.0});

  StateVector sv(num_qubits);
  for (std::size_t col = 0; col < dim; ++col) {
    sv.set_basis_state(col);
    apply(sv);
    const auto& amps = sv.amplitudes();
    for (std::size_t row = 0; row < dim; ++row) {
      u.data[col * dim + row] = amps[row];
    }
  }
  return u;
}

}  // namespace

std::complex<double>& Unitary::at(std::size_t row, std::size_t col) {
  return data.at(col * dim() + row);
}

const std::complex<double>& Unitary::at(std::size_t row, std::size_t col) const {
  return data.at(col * dim() + row);
}

Unitary build_unitary(const qir::Circuit& circuit) {
  return build_unitary_impl(circuit.num_qubits(),
                            [&](StateVector& sv) { sv.apply_circuit(circuit); });
}

Unitary build_unitary_fused(const qir::Circuit& circuit,
                            const FusionPlan& plan) {
  TETRIS_REQUIRE(plan.num_qubits() == circuit.num_qubits(),
                 "build_unitary_fused: plan/circuit width mismatch");
  return build_unitary_impl(circuit.num_qubits(),
                            [&](StateVector& sv) { sv.apply_fused(plan); });
}

bool equal_up_to_phase(const Unitary& a, const Unitary& b, double atol) {
  if (a.num_qubits != b.num_qubits) return false;
  std::size_t n = a.data.size();
  // Find the largest-magnitude entry of b to anchor the phase estimate.
  std::size_t anchor = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double m = std::abs(b.data[i]);
    if (m > best) {
      best = m;
      anchor = i;
    }
  }
  if (best < atol) {
    // b ~ 0; only equal if a ~ 0 too (degenerate, not a unitary).
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(a.data[i]) > atol) return false;
    }
    return true;
  }
  std::complex<double> phase = a.data[anchor] / b.data[anchor];
  double mag = std::abs(phase);
  if (std::abs(mag - 1.0) > 1e-6) return false;
  phase /= mag;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(a.data[i] - phase * b.data[i]) > atol) return false;
  }
  return true;
}

bool circuits_equivalent(const qir::Circuit& a, const qir::Circuit& b,
                         double atol) {
  if (a.num_qubits() != b.num_qubits()) return false;
  return equal_up_to_phase(build_unitary(a), build_unitary(b), atol);
}

bool is_unitary(const Unitary& u, double atol) {
  std::size_t dim = u.dim();
  for (std::size_t c1 = 0; c1 < dim; ++c1) {
    for (std::size_t c2 = c1; c2 < dim; ++c2) {
      std::complex<double> dot(0.0, 0.0);
      for (std::size_t r = 0; r < dim; ++r) {
        dot += std::conj(u.at(r, c1)) * u.at(r, c2);
      }
      double expected = (c1 == c2) ? 1.0 : 0.0;
      if (std::abs(dot - expected) > atol) return false;
    }
  }
  return true;
}

}  // namespace tetris::sim
