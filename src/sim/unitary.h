#pragma once

#include <complex>
#include <vector>

#include "qir/circuit.h"

namespace tetris::sim {

class FusionPlan;  // sim/fusion.h

/// Dense unitary of a circuit, stored column-major: column j is the image of
/// basis state |j>. Intended for verification on small registers (<= 10
/// qubits keeps it under 16 MiB); throws beyond 12 qubits.
struct Unitary {
  int num_qubits = 0;
  std::vector<std::complex<double>> data;  // dim*dim, column-major

  std::size_t dim() const { return std::size_t{1} << num_qubits; }
  std::complex<double>& at(std::size_t row, std::size_t col);
  const std::complex<double>& at(std::size_t row, std::size_t col) const;
};

/// Computes the unitary by applying the circuit to every basis state.
Unitary build_unitary(const qir::Circuit& circuit);

/// As build_unitary, but executes `plan` — a fused compilation of `circuit`
/// (sim/fusion.h) — for every basis column. The differential-testing entry
/// point: comparing this against build_unitary(circuit) bounds the fusion
/// pass's floating-point reordering error over the whole operator, not just
/// one state. The plan width must match the circuit width.
Unitary build_unitary_fused(const qir::Circuit& circuit,
                            const FusionPlan& plan);

/// True if |a - e^{i phi} b| < atol element-wise for the best global phase —
/// the equivalence the compiler must preserve (global phase is unobservable).
bool equal_up_to_phase(const Unitary& a, const Unitary& b, double atol = 1e-9);

/// True if the circuits have equal width and equivalent unitaries up to
/// global phase. Convenience wrapper over build_unitary.
bool circuits_equivalent(const qir::Circuit& a, const qir::Circuit& b,
                         double atol = 1e-9);

/// Checks U U^dagger = I within atol (sanity check for decomposition rules).
bool is_unitary(const Unitary& u, double atol = 1e-9);

}  // namespace tetris::sim
