#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "qir/circuit.h"

namespace tetris::sim {

/// Which simulation engine executes a circuit.
///
/// `kAuto` is not an engine: it is a selection policy resolved per circuit by
/// `resolve_backend` — the statevector for everything it can hold, the
/// stabilizer tableau for Clifford circuits too wide for it. The other values
/// name concrete engines in the registry (`registered_backends`).
enum class BackendKind {
  kAuto,         ///< resolve per circuit (see resolve_backend)
  kStateVector,  ///< dense 2^n amplitudes (sim/statevector.h)
  kStabilizer,   ///< Aaronson-Gottesman tableau, Clifford-only, 50+ qubits
  kUnitary,      ///< dense 4^n operator reference (sim/unitary.h)
};

/// Stable lower-snake name ("auto", "statevector", "stabilizer", "unitary").
const char* backend_kind_name(BackendKind kind);

/// Parses a name back to a kind; throws InvalidArgument for unknown names.
BackendKind parse_backend_kind(const std::string& name);

/// What an engine can and cannot do, so generic callers (the sampler, the
/// REST status page) can branch without downcasting.
struct BackendCaps {
  /// Widest register the engine accepts.
  int max_qubits = 0;
  /// Only Gate::is_clifford gates are executable; others raise
  /// UnsupportedGate.
  bool clifford_only = false;
  /// apply_pauli works mid-circuit, so the trajectory sampler can inject
  /// depolarizing noise (Pauli errors are themselves Clifford, so even the
  /// tableau engine supports this).
  bool supports_noise = false;
  /// dense amplitudes are available: fidelity_with both ways and exact
  /// distribution() at any support size.
  bool dense_state = false;
};

/// Structured "this engine cannot execute that gate" error. Raised by
/// Clifford-only engines on non-Clifford input; `gate()` is the offending
/// gate's mnemonic rendering and `gate_index()` its position in the circuit
/// (npos when the gate was applied directly, outside a circuit walk).
/// Derives InvalidArgument so the service layer maps it to
/// kInvalidArgument/HTTP 400 like every other bad-request failure.
class UnsupportedGate : public InvalidArgument {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  UnsupportedGate(std::string backend, std::string gate,
                  std::size_t gate_index = npos);

  const std::string& backend() const { return backend_; }
  const std::string& gate() const { return gate_; }
  std::size_t gate_index() const { return gate_index_; }

 private:
  std::string backend_;
  std::string gate_;
  std::size_t gate_index_;
};

/// Abstract simulation engine: |0...0> at construction, gates applied in
/// temporal order, then measurement sampling / probability queries.
///
/// **Sampling contract.** `sample_index` consumes exactly one uniform draw
/// per call and returns a basis index distributed by the engine's outcome
/// probabilities, via the same inverse-CDF mapping for every engine: the
/// draw r in [0,1) selects the first basis index whose cumulative
/// probability exceeds r. Engines with bitwise-equal outcome distributions
/// therefore return the *same index for the same draw* — the property the
/// differential tests (test_backend.cpp) and the sampler's determinism
/// contract (one u64 per sample() call, one stream per shot) rest on.
///
/// **prepare().** Engines may need a finalization pass between the last
/// gate and the first concurrent query (the tableau engine runs a Gaussian
/// elimination to extract its sampling support). Callers that share one
/// engine across threads must call `prepare()` once after `apply`;
/// single-threaded callers may skip it (queries self-prepare lazily).
class Backend {
 public:
  virtual ~Backend() = default;

  /// Engine name as registered ("statevector", "stabilizer", "unitary").
  virtual const char* name() const = 0;
  virtual BackendCaps capabilities() const = 0;
  virtual int num_qubits() const = 0;

  /// Back to |0...0>, discarding any prepared state.
  virtual void reset() = 0;

  /// Applies one gate; throws UnsupportedGate (without an index) when the
  /// engine cannot execute it.
  virtual void apply_gate(const qir::Gate& gate) = 0;

  /// Applies a single Pauli ('I','X','Y','Z') to qubit q — the noise
  /// injection primitive. Requires capabilities().supports_noise.
  virtual void apply_pauli(char pauli, int q) = 0;

  /// Finalizes state for concurrent const queries (see class comment).
  virtual void prepare() {}

  /// Outcome probability of basis state `index`.
  virtual double probability(std::size_t index) const = 0;

  /// One measurement draw (no collapse); consumes exactly one uniform.
  virtual std::size_t sample_index(Rng& rng) const = 0;

  /// Exact outcome distribution over `measured` (all qubits when empty).
  /// Engines without dense state bound the enumeration: the tableau engine
  /// throws InvalidArgument past 2^20 support elements.
  virtual std::map<std::string, double> distribution(
      const std::vector<int>& measured = {}) const = 0;

  /// |<this|other>|^2 via dense amplitudes. Requires `dense_state` on both
  /// engines (throws InvalidArgument otherwise) and equal widths.
  double fidelity_with(const Backend& other) const;

  /// Applies every gate of `circuit` in order, rethrowing a per-gate
  /// UnsupportedGate with the gate's circuit index attached. The circuit
  /// width must not exceed the register width.
  void apply(const qir::Circuit& circuit);

  /// Convenience shot loop over `sample_index`: calls `prepare()`, consumes
  /// exactly one u64 from `rng` (the per-shot stream base, drawn even for
  /// shots == 0), runs shot i on `Rng::for_stream(base, i)`, and histograms
  /// the outcomes of the `measured` qubits (all qubits when empty) in the
  /// bitstring convention of sim::Counts. Noise-free — the full trajectory
  /// harness lives in sim::sample (sampler.h).
  std::map<std::string, std::size_t> sample(std::size_t shots,
                                            const std::vector<int>& measured,
                                            Rng& rng);

 protected:
  /// Dense amplitude access for fidelity_with; engines without dense state
  /// return nullptr.
  virtual const std::vector<std::complex<double>>* dense_state() const {
    return nullptr;
  }
};

/// Renders basis index `index` restricted to the `measured` qubits as a
/// bitstring in the sim::Counts convention (measured.back() leftmost).
/// `measured` must be non-empty and validated by the caller.
std::string project_index(std::size_t index, const std::vector<int>& measured);

/// Registry row of a concrete engine (everything GET /v1/status reports).
struct BackendInfo {
  BackendKind kind = BackendKind::kStateVector;
  const char* name = "";
  BackendCaps caps;
};

/// The concrete engines, in enum order (statevector, stabilizer, unitary).
const std::vector<BackendInfo>& registered_backends();

/// Statevector registers wider than this make `auto` prefer the stabilizer
/// tableau when the circuit allows it: past ~2^20 amplitudes the dense
/// ideal run dominates a flow's wall time, while the tableau stays O(n^2).
constexpr int kAutoStateVectorCeilingQubits = 20;

/// Resolves the `auto` policy against a concrete circuit: stabilizer when
/// the circuit is Clifford and wider than the ceiling, statevector
/// otherwise. Concrete kinds resolve to themselves — resolution never
/// overrides an explicit choice, even one the engine will reject (the
/// rejection is then a structured UnsupportedGate / width error, which is
/// more useful than a silent engine swap).
BackendKind resolve_backend(BackendKind kind, const qir::Circuit& circuit);

/// Instantiates a concrete engine on `num_qubits` wires in |0...0>.
/// `kind` must not be kAuto (resolve first); width limits are enforced by
/// the engine (see BackendCaps::max_qubits).
std::unique_ptr<Backend> make_backend(BackendKind kind, int num_qubits);

}  // namespace tetris::sim
