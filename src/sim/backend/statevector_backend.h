#pragma once

#include "sim/backend/backend.h"
#include "sim/statevector.h"

namespace tetris::sim {

/// The dense amplitude engine behind the Backend interface — a thin adapter
/// over sim::StateVector, which stays a concrete class (the sampler's
/// statevector fast path, the fusion engine, and the tests drive it
/// directly; this wrapper adds the virtual dispatch only where a generic
/// engine is wanted). Executes every gate kind of the IR; width-capped at
/// 28 qubits by the underlying register.
class StateVectorBackend final : public Backend {
 public:
  static BackendCaps caps() {
    BackendCaps c;
    c.max_qubits = 28;
    c.clifford_only = false;
    c.supports_noise = true;
    c.dense_state = true;
    return c;
  }

  explicit StateVectorBackend(int num_qubits) : sv_(num_qubits) {}

  const char* name() const override { return "statevector"; }
  BackendCaps capabilities() const override { return caps(); }
  int num_qubits() const override { return sv_.num_qubits(); }

  void reset() override { sv_.reset(); }
  void apply_gate(const qir::Gate& gate) override { sv_.apply_gate(gate); }
  void apply_pauli(char pauli, int q) override { sv_.apply_pauli(pauli, q); }

  double probability(std::size_t index) const override;
  std::size_t sample_index(Rng& rng) const override { return sv_.sample(rng); }
  std::map<std::string, double> distribution(
      const std::vector<int>& measured = {}) const override;

  /// The wrapped register, for callers that need the concrete API (fusion,
  /// fidelity against a raw StateVector).
  StateVector& state() { return sv_; }
  const StateVector& state() const { return sv_; }

 protected:
  const std::vector<cplx>* dense_state() const override {
    return &sv_.amplitudes();
  }

 private:
  StateVector sv_;
};

}  // namespace tetris::sim
