#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/backend/backend.h"

namespace tetris::sim {

/// Aaronson-Gottesman tableau simulator for Clifford circuits (the CHP
/// algorithm, arXiv:quant-ph/0406196) — the engine that makes locked
/// circuits checkable far past the statevector's 28-qubit memory wall.
///
/// The state is tracked as n stabilizer generators, each a signed Pauli
/// string stored as X/Z bit masks plus a sign bit (the qubit count is capped
/// at 64 so one std::uint64_t per mask suffices — and so a sampled basis
/// index fits std::size_t). Clifford gates conjugate every generator in
/// O(n) bit operations, O(n^2) per circuit layer; memory is O(n) words
/// instead of 2^n amplitudes. Destabilizer rows are not kept: this engine
/// never measures destructively, it only *samples*, which needs the
/// stabilizer half alone (see below).
///
/// **Gate set.** The fixed Clifford kinds are native or short tableau
/// sequences (SX = H·S·H, CZ/CY via CX conjugated by single-qubit
/// Cliffords); the parametric kinds are accepted exactly on the Clifford
/// angle lattice of `qir::quarter_turns` (RZ(k*pi/2) -> S^k etc. — the
/// lattice the compiler's {X, SX, RZ, CX} output of a Clifford source
/// circuit lives on). Anything else raises a structured UnsupportedGate.
///
/// **Sampling.** The support of a stabilizer state is an affine subspace
/// x0 ^ V of GF(2)^n, over which all outcome probabilities are the uniform
/// 2^-k (k = dim V = rank of the generators' X-matrix), and V is spanned by
/// those X-parts. `prepare()` runs one O(n^3) Gaussian elimination to put V
/// in reduced row-echelon form (basis sorted so enumeration by XOR-ing
/// basis vectors along the bits of an integer m is *monotone* in the basis
/// index) and canonicalizes x0 to zero on the pivot bits. `sample_index`
/// then maps one uniform draw r to the floor(r * 2^k)-th support element —
/// the same index the statevector's cumulative-probability scan selects for
/// the same draw, exactly: Clifford amplitudes stay on the
/// +/-(1/sqrt(2))^d grid where every squared magnitude rounds to the exact
/// power of two 2^-k, so the two engines' counts match shot for shot (the
/// differential harness in test_backend.cpp pins this).
class StabilizerBackend final : public Backend {
 public:
  /// 64 qubits: one word per Pauli mask, and a basis index fits size_t.
  static constexpr int kMaxQubits = 64;

  /// distribution() enumerates the support only up to 2^20 elements.
  static constexpr int kMaxEnumerationQubits = 20;

  static BackendCaps caps() {
    BackendCaps c;
    c.max_qubits = kMaxQubits;
    c.clifford_only = true;
    // Pauli errors are Clifford conjugations (sign flips on the tableau),
    // so the trajectory sampler can inject depolarizing noise.
    c.supports_noise = true;
    c.dense_state = false;
    return c;
  }

  explicit StabilizerBackend(int num_qubits);

  const char* name() const override { return "stabilizer"; }
  BackendCaps capabilities() const override { return caps(); }
  int num_qubits() const override { return num_qubits_; }

  void reset() override;
  void apply_gate(const qir::Gate& gate) override;
  void apply_pauli(char pauli, int q) override;

  /// Extracts and caches the sampling support (one O(n^3) elimination).
  /// Mutating calls invalidate the cache; unprepared const queries rebuild
  /// it locally per call, so they stay correct — just slower — when the
  /// caller skips this.
  void prepare() override;

  double probability(std::size_t index) const override;
  std::size_t sample_index(Rng& rng) const override;
  std::map<std::string, double> distribution(
      const std::vector<int>& measured = {}) const override;

  /// dim V: the number of uniformly-occupied support dimensions (the state
  /// spreads over 2^k basis states). Exposed for tests and the bench.
  int support_dim() const;

 private:
  /// The sampling form of the state: support = { x0 ^ XOR of basis subsets }
  /// and the Z-only parity checks x . z == r that membership-test it.
  struct Support {
    int k = 0;
    std::uint64_t x0 = 0;
    std::vector<std::uint64_t> basis;  ///< RREF, ascending (pivot = MSB)
    std::vector<std::pair<std::uint64_t, std::uint8_t>> checks;
  };

  void init_rows();
  void touch() { has_support_ = false; }

  // Primitive conjugations, applied to every generator row.
  void op_h(int q);
  void op_s(int q);
  void op_sdg(int q);
  void op_x(int q);
  void op_y(int q);
  void op_z(int q);
  void op_cx(int c, int t);
  void op_swap(int a, int b);

  Support build_support() const;
  std::size_t sample_from(const Support& s, Rng& rng) const;

  int num_qubits_ = 0;
  std::vector<std::uint64_t> xs_;  ///< X mask of generator row i
  std::vector<std::uint64_t> zs_;  ///< Z mask of generator row i
  std::vector<std::uint8_t> rs_;   ///< sign bit: row represents (-1)^r * P
  bool has_support_ = false;
  Support support_;  ///< valid only when has_support_
};

}  // namespace tetris::sim
