#include "sim/backend/stabilizer.h"

#include <cmath>

namespace tetris::sim {

namespace {

/// Exponent of i in the single-qubit Pauli product sigma_a * sigma_b, with
/// the operators coded as x | (z << 1): I=0, X=1, Z=2, Y=3. The non-zero
/// entries are the Levi-Civita cycle X*Y = iZ, Y*Z = iX, Z*X = iY and its
/// anti-cyclic negatives.
constexpr int kPhaseTable[4][4] = {
    // b:  I   X   Z   Y            a:
    {0, 0, 0, 0},   // I
    {0, 0, -1, 1},  // X
    {0, 1, 0, -1},  // Z
    {0, -1, 1, 0},  // Y
};

int msb(std::uint64_t v) {
  int best = 0;
  for (int b = 0; b < 64; ++b) {
    if ((v >> b) & 1) best = b;
  }
  return best;
}

}  // namespace

StabilizerBackend::StabilizerBackend(int num_qubits)
    : num_qubits_(num_qubits) {
  TETRIS_REQUIRE(num_qubits >= 0 && num_qubits <= kMaxQubits,
                 "StabilizerBackend supports 0..64 qubits");
  init_rows();
}

void StabilizerBackend::init_rows() {
  const std::size_t n = static_cast<std::size_t>(num_qubits_);
  xs_.assign(n, 0);
  zs_.assign(n, 0);
  rs_.assign(n, 0);
  // |0...0> is stabilized by +Z_q for every wire.
  for (std::size_t q = 0; q < n; ++q) zs_[q] = std::uint64_t{1} << q;
}

void StabilizerBackend::reset() {
  init_rows();
  touch();
}

// Conjugation rules, in the convention "row = (-1)^r * product of sigma_q"
// with sigma coded by (x, z) bits as I/X/Z/Y. Each rule is the textbook
// Heisenberg update: H swaps X and Z (Y picks up a sign), S sends X -> Y ->
// -X, CX copies X from control to target and Z from target to control with
// the Aaronson-Gottesman sign term.

void StabilizerBackend::op_h(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const bool x = xs_[i] & bit, z = zs_[i] & bit;
    rs_[i] ^= static_cast<std::uint8_t>(x && z);
    if (x != z) {
      xs_[i] ^= bit;
      zs_[i] ^= bit;
    }
  }
}

void StabilizerBackend::op_s(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const bool x = xs_[i] & bit, z = zs_[i] & bit;
    rs_[i] ^= static_cast<std::uint8_t>(x && z);
    if (x) zs_[i] ^= bit;
  }
}

void StabilizerBackend::op_sdg(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const bool x = xs_[i] & bit, z = zs_[i] & bit;
    rs_[i] ^= static_cast<std::uint8_t>(x && !z);
    if (x) zs_[i] ^= bit;
  }
}

void StabilizerBackend::op_x(int q) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    rs_[i] ^= static_cast<std::uint8_t>((zs_[i] >> q) & 1);
  }
}

void StabilizerBackend::op_y(int q) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    rs_[i] ^= static_cast<std::uint8_t>(((xs_[i] ^ zs_[i]) >> q) & 1);
  }
}

void StabilizerBackend::op_z(int q) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    rs_[i] ^= static_cast<std::uint8_t>((xs_[i] >> q) & 1);
  }
}

void StabilizerBackend::op_cx(int c, int t) {
  const std::uint64_t bc = std::uint64_t{1} << c;
  const std::uint64_t bt = std::uint64_t{1} << t;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const bool xc = xs_[i] & bc, zc = zs_[i] & bc;
    const bool xt = xs_[i] & bt, zt = zs_[i] & bt;
    rs_[i] ^= static_cast<std::uint8_t>(xc && zt && (xt == zc));
    if (xc) xs_[i] ^= bt;
    if (zt) zs_[i] ^= bc;
  }
}

void StabilizerBackend::op_swap(int a, int b) {
  const std::uint64_t ba = std::uint64_t{1} << a;
  const std::uint64_t bb = std::uint64_t{1} << b;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const bool xa = xs_[i] & ba, xb = xs_[i] & bb;
    if (xa != xb) xs_[i] ^= ba | bb;
    const bool za = zs_[i] & ba, zb = zs_[i] & bb;
    if (za != zb) zs_[i] ^= ba | bb;
  }
}

void StabilizerBackend::apply_pauli(char pauli, int q) {
  TETRIS_REQUIRE(q >= 0 && q < num_qubits_,
                 "StabilizerBackend::apply_pauli: qubit out of range");
  switch (pauli) {
    case 'I': return;
    case 'X': op_x(q); break;
    case 'Y': op_y(q); break;
    case 'Z': op_z(q); break;
    default:
      throw InvalidArgument(std::string("unknown Pauli '") + pauli + "'");
  }
  touch();
}

void StabilizerBackend::apply_gate(const qir::Gate& g) {
  using qir::GateKind;
  const auto& q = g.qubits;
  int k = 0;
  switch (g.kind) {
    case GateKind::I:
    case GateKind::Barrier:
      return;
    case GateKind::X: op_x(q[0]); break;
    case GateKind::Y: op_y(q[0]); break;
    case GateKind::Z: op_z(q[0]); break;
    case GateKind::H: op_h(q[0]); break;
    case GateKind::S: op_s(q[0]); break;
    case GateKind::Sdg: op_sdg(q[0]); break;
    case GateKind::SX:  // ~ H S H up to global phase
      op_h(q[0]); op_s(q[0]); op_h(q[0]);
      break;
    case GateKind::SXdg:
      op_h(q[0]); op_sdg(q[0]); op_h(q[0]);
      break;
    case GateKind::RZ:
    case GateKind::P:
      // RZ(k*pi/2) ~ P(k*pi/2) = S^k up to global phase.
      if (!qir::quarter_turns(g.params[0], &k)) break;
      for (int i = 0; i < k; ++i) op_s(q[0]);
      touch();
      return;
    case GateKind::RX:
      // RX(k*pi/2) ~ H S^k H.
      if (!qir::quarter_turns(g.params[0], &k)) break;
      op_h(q[0]);
      for (int i = 0; i < k; ++i) op_s(q[0]);
      op_h(q[0]);
      touch();
      return;
    case GateKind::RY:
      // RY = S RX Sdg as matrices, i.e. temporally Sdg, RX, S
      // (compiler/decompose.cpp uses the same identity).
      if (!qir::quarter_turns(g.params[0], &k)) break;
      op_sdg(q[0]);
      op_h(q[0]);
      for (int i = 0; i < k; ++i) op_s(q[0]);
      op_h(q[0]);
      op_s(q[0]);
      touch();
      return;
    case GateKind::CX: op_cx(q[0], q[1]); break;
    case GateKind::CZ:  // CX conjugated by H on the target
      op_h(q[1]); op_cx(q[0], q[1]); op_h(q[1]);
      break;
    case GateKind::CY:  // CX conjugated by S on the target
      op_sdg(q[1]); op_cx(q[0], q[1]); op_s(q[1]);
      break;
    case GateKind::CP: {
      // CP(k*pi/2): identity for k == 0 mod 4, CZ for k == 2 mod 4.
      if (!qir::quarter_turns(g.params[0], &k) || k % 2 != 0) break;
      if (k == 2) {
        op_h(q[1]); op_cx(q[0], q[1]); op_h(q[1]);
        touch();
      }
      return;
    }
    case GateKind::CRZ: {
      // CRZ(theta) is Clifford only at theta = 2*pi*m, where RZ(2*pi) = -I
      // puts a -1 on the control=1 subspace: CRZ(2*pi*m) = Z^m on the
      // control. quarter_turns reduces mod 4, so recover m's parity from
      // the raw quarter-turn count.
      if (!qir::quarter_turns(g.params[0], &k) || k != 0) break;
      const long long quarters =
          std::llround(g.params[0] / 1.5707963267948966);
      if (((quarters / 4) % 2) != 0) op_z(q[0]);
      touch();
      return;
    }
    case GateKind::SWAP: op_swap(q[0], q[1]); break;
    default:
      break;  // T/Tdg/CH/CCX/CSWAP/MCX fall through to the throw
  }
  if (!g.is_clifford()) {
    throw UnsupportedGate(name(), g.to_string());
  }
  touch();
}

void StabilizerBackend::prepare() {
  if (!has_support_) {
    support_ = build_support();
    has_support_ = true;
  }
}

StabilizerBackend::Support StabilizerBackend::build_support() const {
  const std::size_t n = xs_.size();
  std::vector<std::uint64_t> x = xs_, z = zs_;
  std::vector<std::uint8_t> r = rs_;

  // Multiplies generator row a by row b (both remain valid commuting
  // stabilizer elements): masks XOR, and the sign accumulates the exponent
  // of i over the per-qubit Pauli products — even for commuting rows, so it
  // folds to a plain sign flip.
  auto rowmult = [&](std::size_t a, std::size_t b) {
    int phase = 2 * (static_cast<int>(r[a]) + static_cast<int>(r[b]));
    for (int qb = 0; qb < num_qubits_; ++qb) {
      const int ca = static_cast<int>((x[a] >> qb) & 1) |
                     (static_cast<int>((z[a] >> qb) & 1) << 1);
      const int cb = static_cast<int>((x[b] >> qb) & 1) |
                     (static_cast<int>((z[b] >> qb) & 1) << 1);
      phase += kPhaseTable[ca][cb];
    }
    phase = ((phase % 4) + 4) % 4;
    TETRIS_REQUIRE(phase % 2 == 0,
                   "stabilizer rowmult: anticommuting generators");
    x[a] ^= x[b];
    z[a] ^= z[b];
    r[a] = static_cast<std::uint8_t>(phase / 2);
  };

  // Reduced row echelon form of the X-matrix with the pivot as each row's
  // MSB: scanning columns high to low guarantees a pivot row has no set bit
  // above its pivot, which is what makes the m -> support-element map of
  // sample_from monotone.
  std::size_t rank = 0;
  for (int qb = num_qubits_ - 1; qb >= 0; --qb) {
    const std::uint64_t bit = std::uint64_t{1} << qb;
    std::size_t pivot = n;
    for (std::size_t i = rank; i < n; ++i) {
      if (x[i] & bit) {
        pivot = i;
        break;
      }
    }
    if (pivot == n) continue;
    std::swap(x[rank], x[pivot]);
    std::swap(z[rank], z[pivot]);
    std::swap(r[rank], r[pivot]);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != rank && (x[i] & bit)) rowmult(i, rank);
    }
    ++rank;
  }

  Support s;
  s.k = static_cast<int>(rank);
  // Pivot rows were produced in descending-pivot order; ascending is the
  // enumeration order (pivot = MSB, so numeric sort = pivot sort).
  s.basis.reserve(rank);
  for (std::size_t i = rank; i > 0; --i) s.basis.push_back(x[i - 1]);

  // X-free rows are pure Z strings: (-1)^r * Z^z fixes |x_b> iff the basis
  // assignment satisfies the parity check x_b . z == r. Solving the checks
  // (free variables zeroed) gives one support element x0.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> eqs;
  for (std::size_t i = rank; i < n; ++i) {
    eqs.emplace_back(z[i], r[i]);
    s.checks.emplace_back(z[i], r[i]);
  }
  std::uint64_t x0 = 0;
  std::vector<std::uint64_t> pivots;
  for (std::size_t e = 0; e < eqs.size(); ++e) {
    // Reduce by already-pivoted equations.
    for (std::size_t j = 0; j < e; ++j) {
      if (eqs[e].first & pivots[j]) {
        eqs[e].first ^= eqs[j].first;
        eqs[e].second ^= eqs[j].second;
      }
    }
    TETRIS_REQUIRE(eqs[e].first != 0 || eqs[e].second == 0,
                   "stabilizer support: inconsistent parity checks");
    if (eqs[e].first == 0) {
      pivots.push_back(0);
      continue;
    }
    const std::uint64_t pbit = std::uint64_t{1} << msb(eqs[e].first);
    // Full RREF: clear this pivot from every earlier equation.
    for (std::size_t j = 0; j < e; ++j) {
      if (eqs[j].first & pbit) {
        eqs[j].first ^= eqs[e].first;
        eqs[j].second ^= eqs[e].second;
      }
    }
    pivots.push_back(pbit);
  }
  for (std::size_t e = 0; e < eqs.size(); ++e) {
    if (pivots[e] != 0 && eqs[e].second) x0 |= pivots[e];
  }
  // Canonicalize: zero x0 on the V-pivot bits (XOR-ing basis vectors stays
  // inside the solution coset), the normal form sample_from's monotone
  // enumeration needs.
  for (std::size_t j = s.basis.size(); j > 0; --j) {
    const std::uint64_t pbit = std::uint64_t{1} << msb(s.basis[j - 1]);
    if (x0 & pbit) x0 ^= s.basis[j - 1];
  }
  s.x0 = x0;
  return s;
}

std::size_t StabilizerBackend::sample_from(const Support& s, Rng& rng) const {
  const double r = rng.uniform();
  // floor(r * 2^k) is exact (scaling by a power of two shifts only the
  // exponent), and selects precisely the support element the statevector's
  // cumulative scan of k uniform 2^-k probabilities picks for the same r.
  std::uint64_t m = static_cast<std::uint64_t>(std::ldexp(r, s.k));
  std::uint64_t index = s.x0;
  for (int j = 0; j < s.k; ++j) {
    if ((m >> j) & 1) index ^= s.basis[static_cast<std::size_t>(j)];
  }
  return static_cast<std::size_t>(index);
}

std::size_t StabilizerBackend::sample_index(Rng& rng) const {
  if (has_support_) return sample_from(support_, rng);
  return sample_from(build_support(), rng);
}

int StabilizerBackend::support_dim() const {
  if (has_support_) return support_.k;
  return build_support().k;
}

double StabilizerBackend::probability(std::size_t index) const {
  if (num_qubits_ < 64) {
    TETRIS_REQUIRE(index < (std::uint64_t{1} << num_qubits_),
                   "StabilizerBackend::probability: index out of range");
  }
  const Support local = has_support_ ? Support{} : build_support();
  const Support& s = has_support_ ? support_ : local;
  for (const auto& [zmask, parity] : s.checks) {
    int bits = 0;
    std::uint64_t overlap = index & zmask;
    while (overlap) {
      bits ^= 1;
      overlap &= overlap - 1;
    }
    if (bits != static_cast<int>(parity)) return 0.0;
  }
  return std::ldexp(1.0, -s.k);
}

std::map<std::string, double> StabilizerBackend::distribution(
    const std::vector<int>& measured) const {
  const Support local = has_support_ ? Support{} : build_support();
  const Support& s = has_support_ ? support_ : local;
  TETRIS_REQUIRE(s.k <= kMaxEnumerationQubits,
                 "StabilizerBackend::distribution: support too large to "
                 "enumerate (2^" + std::to_string(s.k) + " elements)");
  std::vector<int> m = measured;
  if (m.empty()) {
    for (int q = 0; q < num_qubits_; ++q) m.push_back(q);
  }
  for (int q : m) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_,
                   "StabilizerBackend::distribution: qubit out of range");
  }
  std::map<std::string, double> out;
  const double p = std::ldexp(1.0, -s.k);
  const std::uint64_t count = std::uint64_t{1} << s.k;
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    std::uint64_t index = s.x0;
    for (int j = 0; j < s.k; ++j) {
      if ((mask >> j) & 1) index ^= s.basis[static_cast<std::size_t>(j)];
    }
    out[project_index(static_cast<std::size_t>(index), m)] += p;
  }
  return out;
}

}  // namespace tetris::sim
