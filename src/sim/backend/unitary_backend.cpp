#include "sim/backend/unitary_backend.h"

#include "sim/statevector.h"

namespace tetris::sim {

DenseUnitaryBackend::DenseUnitaryBackend(int num_qubits)
    : num_qubits_(num_qubits), circuit_(num_qubits) {
  TETRIS_REQUIRE(num_qubits >= 0 && num_qubits <= kMaxQubits,
                 "DenseUnitaryBackend supports 0..12 qubits");
}

void DenseUnitaryBackend::reset() {
  circuit_ = qir::Circuit(num_qubits_);
  prepared_ = false;
  unitary_ = Unitary{};
  state_.clear();
}

void DenseUnitaryBackend::apply_gate(const qir::Gate& gate) {
  circuit_.add(gate);
  prepared_ = false;
}

void DenseUnitaryBackend::apply_pauli(char pauli, int q) {
  (void)pauli;
  (void)q;
  throw InvalidArgument(
      "unitary backend cannot inject mid-circuit Pauli noise "
      "(supports_noise is false)");
}

void DenseUnitaryBackend::prepare() {
  if (prepared_) return;
  unitary_ = build_unitary(circuit_);
  const std::size_t dim = unitary_.dim();
  state_.assign(dim, {0.0, 0.0});
  for (std::size_t row = 0; row < dim; ++row) {
    state_[row] = unitary_.at(row, 0);
  }
  prepared_ = true;
}

const Unitary& DenseUnitaryBackend::unitary() const {
  TETRIS_REQUIRE(prepared_,
                 "DenseUnitaryBackend::unitary: call prepare() first");
  return unitary_;
}

std::vector<std::complex<double>> DenseUnitaryBackend::column0() const {
  if (prepared_) return state_;
  // Column 0 alone is one statevector run — the same kernel arithmetic
  // build_unitary uses for the full operator, so either path is
  // bit-identical to a direct StateVector execution.
  StateVector sv(num_qubits_);
  sv.apply_circuit(circuit_);
  return sv.amplitudes();
}

double DenseUnitaryBackend::probability(std::size_t index) const {
  const std::vector<std::complex<double>> state = column0();
  TETRIS_REQUIRE(index < state.size(),
                 "DenseUnitaryBackend::probability: index out of range");
  return std::norm(state[index]);
}

std::size_t DenseUnitaryBackend::sample_index(Rng& rng) const {
  const std::vector<std::complex<double>> state = column0();
  // The statevector's inverse-CDF scan, verbatim, so equal draws map to
  // equal indices across the two dense engines.
  const double r = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    acc += std::norm(state[i]);
    if (r < acc) return i;
  }
  return state.size() - 1;
}

std::map<std::string, double> DenseUnitaryBackend::distribution(
    const std::vector<int>& measured) const {
  std::vector<int> m = measured;
  if (m.empty()) {
    for (int q = 0; q < num_qubits_; ++q) m.push_back(q);
  }
  for (int q : m) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits_,
                   "DenseUnitaryBackend::distribution: qubit out of range");
  }
  std::map<std::string, double> out;
  const std::vector<std::complex<double>> state = column0();
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double p = std::norm(state[i]);
    if (p <= 0.0) continue;
    out[project_index(i, m)] += p;
  }
  return out;
}

}  // namespace tetris::sim
