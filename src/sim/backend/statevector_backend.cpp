#include "sim/backend/statevector_backend.h"

namespace tetris::sim {

double StateVectorBackend::probability(std::size_t index) const {
  TETRIS_REQUIRE(index < sv_.dim(),
                 "StateVectorBackend::probability: index out of range");
  return std::norm(sv_.amplitudes()[index]);
}

std::map<std::string, double> StateVectorBackend::distribution(
    const std::vector<int>& measured) const {
  std::vector<int> m = measured;
  if (m.empty()) {
    for (int q = 0; q < sv_.num_qubits(); ++q) m.push_back(q);
  }
  for (int q : m) {
    TETRIS_REQUIRE(q >= 0 && q < sv_.num_qubits(),
                   "StateVectorBackend::distribution: qubit out of range");
  }
  std::map<std::string, double> out;
  const auto& amps = sv_.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const double p = std::norm(amps[i]);
    if (p <= 0.0) continue;
    out[project_index(i, m)] += p;
  }
  return out;
}

}  // namespace tetris::sim
