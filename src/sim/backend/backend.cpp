#include "sim/backend/backend.h"

#include <cmath>

#include "sim/backend/stabilizer.h"
#include "sim/backend/statevector_backend.h"
#include "sim/backend/unitary_backend.h"

namespace tetris::sim {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto: return "auto";
    case BackendKind::kStateVector: return "statevector";
    case BackendKind::kStabilizer: return "stabilizer";
    case BackendKind::kUnitary: return "unitary";
  }
  return "unknown";
}

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "auto") return BackendKind::kAuto;
  if (name == "statevector") return BackendKind::kStateVector;
  if (name == "stabilizer") return BackendKind::kStabilizer;
  if (name == "unitary") return BackendKind::kUnitary;
  throw InvalidArgument(
      "unknown backend '" + name +
      "' (expected auto, statevector, stabilizer, or unitary)");
}

UnsupportedGate::UnsupportedGate(std::string backend, std::string gate,
                                 std::size_t gate_index)
    : InvalidArgument(
          backend + " backend: unsupported gate " + gate +
          (gate_index == npos ? std::string()
                              : " at index " + std::to_string(gate_index))),
      backend_(std::move(backend)),
      gate_(std::move(gate)),
      gate_index_(gate_index) {}

void Backend::apply(const qir::Circuit& circuit) {
  TETRIS_REQUIRE(circuit.num_qubits() <= num_qubits(),
                 "Backend::apply: circuit wider than the register");
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    try {
      apply_gate(gates[i]);
    } catch (const UnsupportedGate& e) {
      throw UnsupportedGate(e.backend(), e.gate(), i);
    }
  }
}

double Backend::fidelity_with(const Backend& other) const {
  TETRIS_REQUIRE(num_qubits() == other.num_qubits(),
                 "Backend::fidelity_with: register widths differ");
  const std::vector<std::complex<double>>* a = dense_state();
  const std::vector<std::complex<double>>* b = other.dense_state();
  if (a == nullptr || b == nullptr) {
    throw InvalidArgument(std::string("Backend::fidelity_with: ") +
                          (a == nullptr ? name() : other.name()) +
                          " backend has no dense state");
  }
  std::complex<double> inner = 0.0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    inner += std::conj((*a)[i]) * (*b)[i];
  }
  return std::norm(inner);
}

std::map<std::string, std::size_t> Backend::sample(
    std::size_t shots, const std::vector<int>& measured, Rng& rng) {
  prepare();
  std::vector<int> m = measured;
  if (m.empty()) {
    for (int q = 0; q < num_qubits(); ++q) m.push_back(q);
  }
  for (int q : m) {
    TETRIS_REQUIRE(q >= 0 && q < num_qubits(),
                   "Backend::sample: measured qubit out of range");
  }
  // One u64 unconditionally — the same per-shot stream-family contract as
  // sim::sample, so a backend swap never shifts the caller's generator.
  const std::uint64_t base = rng.next_u64();
  std::map<std::string, std::size_t> histogram;
  for (std::size_t shot = 0; shot < shots; ++shot) {
    Rng shot_rng = Rng::for_stream(base, shot);
    ++histogram[project_index(sample_index(shot_rng), m)];
  }
  return histogram;
}

std::string project_index(std::size_t index,
                          const std::vector<int>& measured) {
  std::string out(measured.size(), '0');
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if ((index >> measured[i]) & 1) out[measured.size() - 1 - i] = '1';
  }
  return out;
}

const std::vector<BackendInfo>& registered_backends() {
  static const std::vector<BackendInfo> kRegistry = {
      {BackendKind::kStateVector, "statevector", StateVectorBackend::caps()},
      {BackendKind::kStabilizer, "stabilizer", StabilizerBackend::caps()},
      {BackendKind::kUnitary, "unitary", DenseUnitaryBackend::caps()},
  };
  return kRegistry;
}

BackendKind resolve_backend(BackendKind kind, const qir::Circuit& circuit) {
  if (kind != BackendKind::kAuto) return kind;
  if (circuit.num_qubits() > kAutoStateVectorCeilingQubits &&
      circuit.is_clifford()) {
    return BackendKind::kStabilizer;
  }
  return BackendKind::kStateVector;
}

std::unique_ptr<Backend> make_backend(BackendKind kind, int num_qubits) {
  switch (kind) {
    case BackendKind::kStateVector:
      return std::make_unique<StateVectorBackend>(num_qubits);
    case BackendKind::kStabilizer:
      return std::make_unique<StabilizerBackend>(num_qubits);
    case BackendKind::kUnitary:
      return std::make_unique<DenseUnitaryBackend>(num_qubits);
    case BackendKind::kAuto:
      break;
  }
  throw InvalidArgument("make_backend: kAuto must be resolved first "
                        "(resolve_backend)");
}

}  // namespace tetris::sim
