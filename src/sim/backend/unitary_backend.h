#pragma once

#include "sim/backend/backend.h"
#include <complex>

#include "sim/unitary.h"

namespace tetris::sim {

/// Dense-operator reference engine: accumulates the full 2^n x 2^n unitary
/// of the applied gates (sim/unitary.h) and answers state queries from its
/// first column, U|0...0>. This is the verification backend — it holds the
/// whole operator, so tests can cross-check it against build_unitary — and
/// correspondingly the narrowest one (12 qubits; the matrix is 4^n
/// doubles). Column 0 is computed with exactly the statevector's kernel
/// arithmetic, so its probabilities — and therefore its sampled indices for
/// equal draws — are bit-identical to StateVectorBackend's.
///
/// No mid-circuit Pauli injection: a trajectory step would have to rebuild
/// the operator per shot, so `supports_noise` is false and the sampler
/// rejects gate-noise runs on this engine up front.
class DenseUnitaryBackend final : public Backend {
 public:
  static constexpr int kMaxQubits = 12;

  static BackendCaps caps() {
    BackendCaps c;
    c.max_qubits = kMaxQubits;
    c.clifford_only = false;
    c.supports_noise = false;
    c.dense_state = true;
    return c;
  }

  explicit DenseUnitaryBackend(int num_qubits);

  const char* name() const override { return "unitary"; }
  BackendCaps capabilities() const override { return caps(); }
  int num_qubits() const override { return num_qubits_; }

  void reset() override;
  /// Records the gate; the operator is materialized lazily by prepare().
  void apply_gate(const qir::Gate& gate) override;
  /// Always throws InvalidArgument (see class comment).
  void apply_pauli(char pauli, int q) override;

  /// Materializes the operator and its column-0 state. Gates applied after
  /// this invalidate the materialization; unprepared const queries rebuild
  /// the column-0 state locally per call.
  void prepare() override;

  double probability(std::size_t index) const override;
  std::size_t sample_index(Rng& rng) const override;
  std::map<std::string, double> distribution(
      const std::vector<int>& measured = {}) const override;

  /// The accumulated operator (column-major); requires prepare() first.
  const Unitary& unitary() const;

 protected:
  const std::vector<std::complex<double>>* dense_state() const override {
    return prepared_ ? &state_ : nullptr;
  }

 private:
  std::vector<std::complex<double>> column0() const;

  int num_qubits_ = 0;
  qir::Circuit circuit_;  ///< gates recorded since the last reset
  bool prepared_ = false;
  Unitary unitary_;
  std::vector<std::complex<double>> state_;  ///< column 0 of unitary_: U|0...0>
};

}  // namespace tetris::sim
