#include "sim/sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include <memory>

#include "common/error.h"
#include "runtime/shard.h"
#include "runtime/thread_pool.h"
#include "sim/backend/backend.h"
#include "sim/fusion.h"
#include "sim/statevector.h"

namespace tetris::sim {

namespace {

const char kPaulis[] = {'I', 'X', 'Y', 'Z'};

/// Applies a uniformly random non-identity Pauli string to `qubits`.
/// Templated over the register type (StateVector or sim::Backend): the draw
/// and the per-qubit application order are part of the per-shot determinism
/// contract, so every engine must share this exact code path.
template <typename Register>
void inject_depolarizing(Register& sv, const std::vector<int>& qubits,
                         Rng& rng) {
  std::size_t num_strings = 1;
  for (std::size_t i = 0; i < qubits.size(); ++i) num_strings *= 4;
  // Draw from [1, 4^k - 1]: skip the all-identity string.
  std::size_t code = 1 + rng.index(num_strings - 1);
  for (int q : qubits) {
    sv.apply_pauli(kPaulis[code & 3], q);
    code >>= 2;
  }
}

/// Returns the per-gate error probability under `noise` (0 for barriers).
double gate_error_prob(const qir::Gate& g, const NoiseModel& noise) {
  if (g.kind == qir::GateKind::Barrier) return 0.0;
  return g.num_qubits() >= 2 ? noise.p2 : noise.p1;
}

/// Extracts the measured-bit outcome string for a raw basis index.
std::string project_outcome(std::size_t index, const std::vector<int>& measured) {
  std::string out(measured.size(), '0');
  // Qiskit convention: measured.back() (highest position) is leftmost.
  for (std::size_t i = 0; i < measured.size(); ++i) {
    bool bit = (index >> measured[i]) & 1;
    out[measured.size() - 1 - i] = bit ? '1' : '0';
  }
  return out;
}

std::vector<int> resolve_measured(const qir::Circuit& circuit,
                                  const std::vector<int>& measured) {
  if (!measured.empty()) {
    for (int q : measured) {
      TETRIS_REQUIRE(q >= 0 && q < circuit.num_qubits(),
                     "measured qubit out of range");
    }
    return measured;
  }
  std::vector<int> all(static_cast<std::size_t>(circuit.num_qubits()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return all;
}

/// Applies per-bit readout flips to a raw basis index.
std::size_t apply_readout(std::size_t index, const std::vector<int>& measured,
                          double readout, Rng& rng) {
  if (readout <= 0.0) return index;
  for (int q : measured) {
    if (rng.bernoulli(readout)) index ^= (std::size_t{1} << q);
  }
  return index;
}

/// Read-only context shared by every shard worker of one sample() call.
/// All pointers reference data owned by sample()'s frame, which outlives
/// every access (see the straggler-safety note in run_sharded).
struct SampleContext {
  const qir::Circuit* circuit = nullptr;
  const StateVector* ideal = nullptr;  ///< noise-free full run, shared read-only
  const FusionPlan* plan = nullptr;  ///< errored shots replay its prefix (fuse)
  const std::vector<int>* measured = nullptr;
  const NoiseModel* noise = nullptr;
  const std::vector<double>* error_probs = nullptr;  ///< per gate index
  bool any_gate_noise = false;
  std::uint64_t base_seed = 0;  ///< base of the per-shot stream family
};

/// Runs shots [begin, end) of the deterministic shot grid into `out`.
///
/// Shot `i` draws exclusively from `Rng::for_stream(base_seed, i)`, so the
/// outcomes of a range depend only on its indices — never on which thread or
/// chunk executes it.
void run_shot_range(const SampleContext& ctx, std::size_t begin,
                    std::size_t end, Counts& out) {
  const auto& gates = ctx.circuit->gates();
  // The trajectory register is only needed when a gate error can fire; a
  // 0-qubit placeholder keeps the error-free path allocation-free.
  StateVector traj(ctx.any_gate_noise ? ctx.circuit->num_qubits() : 0);
  std::vector<std::size_t> error_sites;
  for (std::size_t shot = begin; shot < end; ++shot) {
    Rng rng = Rng::for_stream(ctx.base_seed, shot);
    std::size_t raw;
    error_sites.clear();
    if (ctx.any_gate_noise) {
      for (std::size_t i = 0; i < gates.size(); ++i) {
        if ((*ctx.error_probs)[i] > 0.0 &&
            rng.bernoulli((*ctx.error_probs)[i])) {
          error_sites.push_back(i);
        }
      }
    }
    if (error_sites.empty()) {
      raw = ctx.ideal->sample(rng);
    } else {
      traj.reset();
      std::size_t i = 0;
      std::size_t next_err = 0;
      if (ctx.plan != nullptr) {
        // Replay the fused plan up to the first injection site: every op
        // fully before the site fuses safely, and the injection draws below
        // happen in site order exactly as in the unfused replay, so the
        // shot's randomness stream is untouched.
        i = apply_fused_prefix(traj, *ctx.plan, error_sites[0] + 1);
        while (next_err < error_sites.size() && error_sites[next_err] < i) {
          inject_depolarizing(traj, gates[error_sites[next_err]].qubits, rng);
          ++next_err;
        }
      }
      for (; i < gates.size(); ++i) {
        traj.apply_gate(gates[i]);
        if (next_err < error_sites.size() && error_sites[next_err] == i) {
          inject_depolarizing(traj, gates[i].qubits, rng);
          ++next_err;
        }
      }
      raw = traj.sample(rng);
    }
    raw = apply_readout(raw, *ctx.measured, ctx.noise->readout, rng);
    ++out.histogram[project_outcome(raw, *ctx.measured)];
  }
}

/// Runs shots [begin, end) on a generic sim::Backend engine, consuming the
/// exact randomness sequence of run_shot_range — same error-site Bernoullis,
/// same injection draws, one uniform for the outcome, then readout flips —
/// so a backend swap reproduces the statevector's shots wherever the
/// engine's arithmetic agrees with it (exactly so on the Clifford grid).
struct BackendSampleContext {
  const qir::Circuit* circuit = nullptr;
  const Backend* ideal = nullptr;  ///< prepared noise-free run, shared read-only
  BackendKind kind = BackendKind::kStateVector;  ///< for trajectory registers
  const std::vector<int>* measured = nullptr;
  const NoiseModel* noise = nullptr;
  const std::vector<double>* error_probs = nullptr;  ///< per gate index
  bool any_gate_noise = false;
  std::uint64_t base_seed = 0;  ///< base of the per-shot stream family
};

void run_backend_shot_range(const BackendSampleContext& ctx, std::size_t begin,
                            std::size_t end, Counts& out) {
  const auto& gates = ctx.circuit->gates();
  std::unique_ptr<Backend> traj;
  if (ctx.any_gate_noise) {
    traj = make_backend(ctx.kind, ctx.circuit->num_qubits());
  }
  std::vector<std::size_t> error_sites;
  for (std::size_t shot = begin; shot < end; ++shot) {
    Rng rng = Rng::for_stream(ctx.base_seed, shot);
    std::size_t raw;
    error_sites.clear();
    if (ctx.any_gate_noise) {
      for (std::size_t i = 0; i < gates.size(); ++i) {
        if ((*ctx.error_probs)[i] > 0.0 &&
            rng.bernoulli((*ctx.error_probs)[i])) {
          error_sites.push_back(i);
        }
      }
    }
    if (error_sites.empty()) {
      raw = ctx.ideal->sample_index(rng);
    } else {
      traj->reset();
      std::size_t next_err = 0;
      for (std::size_t i = 0; i < gates.size(); ++i) {
        traj->apply_gate(gates[i]);
        if (next_err < error_sites.size() && error_sites[next_err] == i) {
          inject_depolarizing(*traj, gates[i].qubits, rng);
          ++next_err;
        }
      }
      raw = traj->sample_index(rng);
    }
    raw = apply_readout(raw, *ctx.measured, ctx.noise->readout, rng);
    ++out.histogram[project_outcome(raw, *ctx.measured)];
  }
}

/// Shards `shots` over `pool` with `width` participants via
/// `runtime::run_chunked` (caller-participates cursor: safe from inside a
/// pool worker, degrades to serial on a saturated pool) and merges the
/// per-chunk histograms in index order into `total`. Chunk c writes only to
/// partial[c] and draws only from shot-indexed RNG streams, so the merged
/// histogram is independent of width, pool, and claim order. `range` is one
/// of the run_*_shot_range functions bound to its context.
template <typename RangeFn>
void run_sharded(const RangeFn& range, std::size_t shots, std::size_t chunk,
                 std::size_t num_chunks, unsigned width,
                 runtime::ThreadPool& pool, Counts& total) {
  std::vector<Counts> partial(num_chunks);
  runtime::run_chunked(pool, num_chunks, width, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    range(begin, std::min(shots, begin + chunk), partial[c]);
  });
  for (Counts& p : partial) {
    for (const auto& [key, value] : p.histogram) {
      total.histogram[key] += value;
    }
  }
}

}  // namespace

std::size_t Counts::count(const std::string& bs) const {
  auto it = histogram.find(bs);
  return it == histogram.end() ? 0 : it->second;
}

std::map<std::string, double> Counts::distribution() const {
  std::map<std::string, double> out;
  if (shots == 0) return out;
  for (const auto& [k, v] : histogram) {
    out[k] = static_cast<double>(v) / static_cast<double>(shots);
  }
  return out;
}

std::string Counts::mode() const {
  TETRIS_REQUIRE(!histogram.empty(), "Counts::mode on empty histogram");
  auto best = histogram.begin();
  for (auto it = histogram.begin(); it != histogram.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return best->first;
}

std::string bitstring(std::size_t index, int num_bits) {
  std::string out(static_cast<std::size_t>(num_bits), '0');
  for (int b = 0; b < num_bits; ++b) {
    if ((index >> b) & 1) out[static_cast<std::size_t>(num_bits - 1 - b)] = '1';
  }
  return out;
}

Counts sample(const qir::Circuit& circuit, const NoiseModel& noise, Rng& rng,
              const SampleOptions& options) {
  std::vector<int> measured = resolve_measured(circuit, options.measured);
  Counts counts;
  counts.shots = options.shots;
  // Exactly one draw, unconditionally: the base of the per-shot stream
  // family. The caller's generator advancement is therefore independent of
  // shots, threads, and chunking.
  const std::uint64_t base_seed = rng.next_u64();
  if (options.shots == 0) return counts;

  const auto& gates = circuit.gates();
  std::vector<double> error_probs(gates.size());
  bool any_gate_noise = false;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    error_probs[i] = gate_error_prob(gates[i], noise);
    any_gate_noise = any_gate_noise || error_probs[i] > 0.0;
  }

  // Shard plan. The chunk grain is a pure performance knob: results are
  // bit-identical for any partition because shot i's randomness is
  // for_stream(base_seed, i) wherever it runs.
  runtime::ThreadPool* pool = options.pool;
  if (pool == nullptr) pool = runtime::ThreadPool::current();
  if (pool == nullptr) pool = &runtime::ThreadPool::global();
  const unsigned width = std::max(
      1u, options.threads == 0 ? pool->size() : options.threads);
  const std::size_t grain = std::max<std::size_t>(1, options.shots_per_chunk);
  // Floor division honors the "at least `grain` shots per chunk" contract
  // (ceil could halve the final chunks); the width*4 cap gives each
  // participant a few chunks so one slow (error-heavy) chunk does not
  // serialize the tail.
  const std::size_t by_grain = std::max<std::size_t>(1, options.shots / grain);
  const std::size_t num_chunks =
      std::min<std::size_t>(by_grain, static_cast<std::size_t>(width) * 4);

  const BackendKind resolved = resolve_backend(options.backend, circuit);
  if (resolved == BackendKind::kStateVector) {
    // The reference path, byte-for-byte the pre-backend sampler: one ideal
    // run serves every error-free shot, shared read-only by all shard
    // workers (StateVector::sample is const). With options.fuse this one
    // run goes through the fused kernels, and the plan is kept for the
    // errored trajectories below: each replays the fused prefix up to its
    // first injection site (apply_fused_prefix) and only simulates the tail
    // gate by gate — a per-shot injection site is a fence mid-stream, not a
    // reason to abandon the whole plan.
    StateVector ideal(circuit.num_qubits());
    FusionPlan plan;
    if (options.fuse) {
      plan = FusionPlan::build(circuit);
      ideal.apply_fused(plan);
    } else {
      ideal.apply_circuit(circuit);
    }

    SampleContext ctx;
    ctx.circuit = &circuit;
    ctx.ideal = &ideal;
    ctx.plan = options.fuse ? &plan : nullptr;
    ctx.measured = &measured;
    ctx.noise = &noise;
    ctx.error_probs = &error_probs;
    ctx.any_gate_noise = any_gate_noise;
    ctx.base_seed = base_seed;

    if (width == 1 || num_chunks <= 1) {
      run_shot_range(ctx, 0, options.shots, counts);
      return counts;
    }
    const std::size_t chunk = (options.shots + num_chunks - 1) / num_chunks;
    run_sharded(
        [&ctx](std::size_t b, std::size_t e, Counts& out) {
          run_shot_range(ctx, b, e, out);
        },
        options.shots, chunk, (options.shots + chunk - 1) / chunk, width,
        *pool, counts);
    return counts;
  }

  // Generic engine path (stabilizer / unitary). Same shape as above: one
  // prepared ideal register shared read-only across shards, per-shot
  // trajectory registers for errored shots.
  std::unique_ptr<Backend> ideal = make_backend(resolved, circuit.num_qubits());
  if (any_gate_noise && !ideal->capabilities().supports_noise) {
    throw InvalidArgument(std::string(ideal->name()) +
                          " backend cannot run gate-noise trajectories "
                          "(supports_noise is false)");
  }
  ideal->apply(circuit);  // structured UnsupportedGate on an unsupported gate
  // Cache the sampling form before the register is shared across shard
  // workers: const queries on an unprepared engine rebuild it per call.
  ideal->prepare();

  BackendSampleContext ctx;
  ctx.circuit = &circuit;
  ctx.ideal = ideal.get();
  ctx.kind = resolved;
  ctx.measured = &measured;
  ctx.noise = &noise;
  ctx.error_probs = &error_probs;
  ctx.any_gate_noise = any_gate_noise;
  ctx.base_seed = base_seed;

  if (width == 1 || num_chunks <= 1) {
    run_backend_shot_range(ctx, 0, options.shots, counts);
    return counts;
  }
  const std::size_t chunk = (options.shots + num_chunks - 1) / num_chunks;
  run_sharded(
      [&ctx](std::size_t b, std::size_t e, Counts& out) {
        run_backend_shot_range(ctx, b, e, out);
      },
      options.shots, chunk, (options.shots + chunk - 1) / chunk, width, *pool,
      counts);
  return counts;
}

std::map<std::string, double> ideal_distribution(const qir::Circuit& circuit,
                                                 const std::vector<int>& measured) {
  std::vector<int> m = resolve_measured(circuit, measured);
  StateVector sv(circuit.num_qubits());
  sv.apply_circuit(circuit);
  std::map<std::string, double> out;
  auto probs = sv.probabilities();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] <= 0.0) continue;
    out[project_outcome(i, m)] += probs[i];
  }
  return out;
}

std::string classical_outcome(const qir::Circuit& circuit,
                              const std::vector<int>& measured) {
  TETRIS_REQUIRE(circuit.is_classical(),
                 "classical_outcome requires a reversible (classical) circuit");
  std::vector<int> m = resolve_measured(circuit, measured);
  // Propagate the all-zero bit assignment through the permutation gates.
  std::vector<char> bits(static_cast<std::size_t>(circuit.num_qubits()), 0);
  for (const auto& g : circuit.gates()) {
    using qir::GateKind;
    switch (g.kind) {
      case GateKind::I:
      case GateKind::Barrier:
        break;
      case GateKind::X:
        bits[static_cast<std::size_t>(g.qubits[0])] ^= 1;
        break;
      case GateKind::SWAP:
        std::swap(bits[static_cast<std::size_t>(g.qubits[0])],
                  bits[static_cast<std::size_t>(g.qubits[1])]);
        break;
      case GateKind::CSWAP:
        if (bits[static_cast<std::size_t>(g.qubits[0])]) {
          std::swap(bits[static_cast<std::size_t>(g.qubits[1])],
                    bits[static_cast<std::size_t>(g.qubits[2])]);
        }
        break;
      case GateKind::CX:
      case GateKind::CCX:
      case GateKind::MCX: {
        bool all = true;
        for (std::size_t i = 0; i + 1 < g.qubits.size(); ++i) {
          all = all && bits[static_cast<std::size_t>(g.qubits[i])];
        }
        if (all) bits[static_cast<std::size_t>(g.qubits.back())] ^= 1;
        break;
      }
      default:
        throw InvalidArgument("classical_outcome: non-classical gate " + g.name());
    }
  }
  std::size_t index = 0;
  for (std::size_t q = 0; q < bits.size(); ++q) {
    if (bits[q]) index |= std::size_t{1} << q;
  }
  std::string out(m.size(), '0');
  for (std::size_t i = 0; i < m.size(); ++i) {
    if ((index >> m[i]) & 1) out[m.size() - 1 - i] = '1';
  }
  return out;
}

}  // namespace tetris::sim
