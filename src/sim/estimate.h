#pragma once

#include "qir/circuit.h"
#include "sim/noise.h"

namespace tetris::sim {

/// Closed-form accuracy estimate for a compiled circuit under the stochastic
/// Pauli noise model — no sampling required.
///
/// Model: a shot is "clean" when no gate error fires and no measured bit
/// flips at readout. Clean shots always produce the correct outcome; errored
/// shots are charged a miss probability `error_miss_rate` (1.0 = every error
/// corrupts the outcome; the default 0.75 reflects that a random Pauli
/// sometimes acts off the measurement cone or as a harmless Z).
///
///   accuracy ~ P(clean) + (1 - P(clean)) * (1 - error_miss_rate) * ...
///
/// The estimate is intentionally simple — its job is to let a designer size
/// shots/devices without running the simulator, and its agreement with the
/// sampled accuracy (within a few percent on the Table-I workloads) is
/// pinned by tests.
struct AccuracyEstimate {
  double p_no_gate_error = 1.0;  ///< prod over gates of (1 - p_gate)
  double p_clean_readout = 1.0;  ///< (1 - readout)^measured_bits
  double estimate = 1.0;         ///< final accuracy estimate
  double expected_gate_errors = 0.0;  ///< mean number of error events
};

AccuracyEstimate estimate_accuracy(const qir::Circuit& circuit,
                                   const NoiseModel& noise,
                                   int measured_bits,
                                   double error_miss_rate = 0.75);

}  // namespace tetris::sim
