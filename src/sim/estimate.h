#pragma once

#include <cstddef>

#include "qir/circuit.h"
#include "sim/noise.h"

namespace tetris::sim {

/// Closed-form accuracy estimate for a compiled circuit under the stochastic
/// Pauli noise model — no sampling required.
///
/// Model: a shot is "clean" when no gate error fires and no measured bit
/// flips at readout. Clean shots always produce the correct outcome; errored
/// shots are charged a miss probability `error_miss_rate` (1.0 = every error
/// corrupts the outcome; the default 0.75 reflects that a random Pauli
/// sometimes acts off the measurement cone or as a harmless Z).
///
///   accuracy ~ P(clean) + (1 - P(clean)) * (1 - error_miss_rate) * ...
///
/// The estimate is intentionally simple — its job is to let a designer size
/// shots/devices without running the simulator, and its agreement with the
/// sampled accuracy (within a few percent on the Table-I workloads) is
/// pinned by tests.
struct AccuracyEstimate {
  double p_no_gate_error = 1.0;  ///< prod over gates of (1 - p_gate)
  double p_clean_readout = 1.0;  ///< (1 - readout)^measured_bits
  double estimate = 1.0;         ///< final accuracy estimate
  double expected_gate_errors = 0.0;  ///< mean number of error events
};

AccuracyEstimate estimate_accuracy(const qir::Circuit& circuit,
                                   const NoiseModel& noise,
                                   int measured_bits,
                                   double error_miss_rate = 0.75);

/// \brief Standard error of a sampled accuracy at a given shot count.
///
/// A sampled accuracy is a binomial proportion: over `shots` independent
/// trajectories with per-shot success probability `accuracy`, the estimator
/// has standard error `sqrt(accuracy * (1 - accuracy) / shots)` — at worst
/// `0.5 / sqrt(shots)` (at accuracy 0.5). This is the variance-vs-shots
/// trade-off behind `SampleOptions::shots`: quadrupling the shots halves the
/// error bar. Use `estimate_accuracy(...).estimate` as the `accuracy` input
/// to size a run before simulating anything.
///
/// \param accuracy expected per-shot success probability, in [0, 1]
/// \param shots    number of Monte-Carlo trajectories, >= 1
/// \return one standard deviation of the sampled accuracy
/// \throws InvalidArgument on accuracy outside [0, 1] or shots == 0
double accuracy_standard_error(double accuracy, std::size_t shots);

/// \brief Smallest shot count whose standard error is at or below a target.
///
/// Inverts `accuracy_standard_error`: returns
/// `ceil(accuracy * (1 - accuracy) / target_se^2)`, floored at 1. Pass
/// accuracy 0.5 when the true value is unknown — it is the worst case, so
/// the returned count is sufficient for any accuracy.
///
/// \param accuracy  expected per-shot success probability, in [0, 1]
/// \param target_se desired standard error, > 0
/// \return the minimal sufficient shot count
/// \throws InvalidArgument on accuracy outside [0, 1] or target_se <= 0
std::size_t shots_for_standard_error(double accuracy, double target_se);

}  // namespace tetris::sim
