#pragma once

#include <complex>
#include <vector>

#include "common/rng.h"
#include "qir/circuit.h"

namespace tetris::sim {

using cplx = std::complex<double>;

class FusionPlan;  // sim/fusion.h
struct FusedOp;    // sim/fusion.h

/// One 2x2 matrix bound to one qubit — the unit of a fused gang sweep
/// (StateVector::apply_gang) and of the fusion pass (sim/fusion.h).
struct SingleQubitOp {
  cplx m[2][2] = {};
  int qubit = 0;
};

/// Dense state-vector simulator.
///
/// Holds 2^n complex amplitudes in little-endian qubit order: basis index
/// `i` has qubit q in state bit `(i >> q) & 1`. All gate kinds of the IR are
/// supported natively; controlled kinds are applied as a (control-mask,
/// 2x2 target matrix) pair, and the permutation kinds (X family, SWAP) use
/// specialised kernels.
///
/// Gate kernels run multi-threaded on the global runtime::ThreadPool once
/// the register reaches `parallel_threshold()` qubits; below that they use
/// the serial loops. Both paths compute every amplitude with identical
/// arithmetic (gate application touches each amplitude pair independently,
/// with no cross-element reductions), so parallel results are bit-identical
/// to serial ones at any thread count.
///
/// The sweeps themselves dispatch through the kernel layer
/// (sim/kernels/kernels.h) on `kernels::simd_mode()`: the scalar kernels
/// reproduce the historical loops byte for byte; the AVX2 kernels are
/// tolerance-equal to scalar (FMA reorders rounding) but uphold the same
/// serial-vs-parallel bit-identity within the mode. See
/// docs/ARCHITECTURE.md, "Kernel layer".
///
/// The register size is bounded only by memory; the RevLib experiments top
/// out at 12 qubits (4096 amplitudes), far below any practical limit.
class StateVector {
 public:
  /// Registers below this width (in qubits) always use the serial kernels:
  /// at 2^14 amplitudes a gate is ~microseconds of work, below the cost of
  /// waking the pool.
  static constexpr int kDefaultParallelThresholdQubits = 14;

  /// Initializes |0...0> on `num_qubits` wires (0 <= num_qubits <= 28).
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }
  const std::vector<cplx>& amplitudes() const { return amps_; }

  /// Resets to |0...0>.
  void reset();

  /// Sets the register to the computational basis state |index>.
  void set_basis_state(std::size_t index);

  /// Applies one gate (Barrier is a no-op).
  void apply_gate(const qir::Gate& gate);

  /// Applies every gate of the circuit in order. The circuit width must not
  /// exceed the register width.
  void apply_circuit(const qir::Circuit& circuit);

  /// Applies every op of a fusion plan (sim/fusion.h) in order — the fused
  /// equivalent of apply_circuit on the plan's source circuit. The plan width
  /// must not exceed the register width. Fused kernels reorder floating-point
  /// arithmetic relative to the gate-by-gate sweeps, so the result is
  /// tolerance-equal — not bit-identical — to apply_circuit (a plan built
  /// with a fence before every gate degenerates to apply_gate calls and IS
  /// bit-identical). Serial-vs-parallel execution of the SAME plan is
  /// bit-identical, like every other kernel here.
  ///
  /// When the register is wider than `tile_qubits()`, runs of consecutive
  /// tile-local ops (every qubit below the tile width) execute tile by tile:
  /// each 2^tile_qubits-amplitude slab is loaded once and swept by the whole
  /// run while L2-resident, instead of streaming the full vector once per
  /// op. Tiling only reorders memory traversal — each amplitude sees the
  /// identical arithmetic sequence — so tiled output is bit-identical to
  /// untiled within a SIMD mode.
  void apply_fused(const FusionPlan& plan);

  /// Applies one fused op (the unit apply_fused iterates) to the full
  /// register. Used by sim::apply_fused_prefix to replay a plan prefix.
  void apply_fused_op(const FusedOp& op);

  /// Applies an arbitrary 2x2 matrix to qubit q in one amplitude sweep (the
  /// public face of the single-qubit kernel; apply_gate routes named kinds
  /// through the same loop).
  void apply_matrix(const cplx m[2][2], int q);

  /// Applies each op's 2x2 to its qubit in ONE amplitude sweep. Qubits must
  /// be distinct, in range, and at most kMaxGangQubits many; ops are applied
  /// in vector order (they commute exactly — all on distinct qubits). Each
  /// 2^k-amplitude block is gathered once, transformed in cache, and
  /// scattered back: k gates for the memory traffic of one.
  void apply_gang(const std::vector<SingleQubitOp>& ops);

  /// Applies an arbitrary 4x4 matrix to the qubit pair (a, b), a != b, in
  /// one amplitude sweep. The local basis index of the 4-dim subspace is
  /// `(bit_b << 1) | bit_a` — qubit `a` is the LOW local bit, whatever the
  /// relative wire order of a and b. `sim::two_qubit_matrix` (fusion.h)
  /// builds matrices in this convention.
  void apply_two_qubit(const cplx m[4][4], int a, int b);

  /// Largest gang sweep apply_gang accepts (2^6 = 64 amplitudes of scratch
  /// per block — comfortably in L1).
  static constexpr int kMaxGangQubits = 6;

  /// Applies a single Pauli ('I', 'X', 'Y' or 'Z') to qubit q — the noise
  /// channel injection primitive for trajectory simulation.
  void apply_pauli(char pauli, int q);

  /// Measurement probabilities |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Draws one measurement outcome (basis index) without collapsing.
  std::size_t sample(Rng& rng) const;

  /// <this|other>; registers must have equal width.
  cplx inner(const StateVector& other) const;

  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// Max |amp_i - other.amp_i| — used by tests for exactness checks.
  double max_abs_diff(const StateVector& other) const;

  /// Renormalizes (guards against drift in long trajectories).
  void normalize();

  /// Overrides the parallel/serial cutoff for this register. 0 forces the
  /// parallel kernels even on tiny registers (used by the equivalence tests);
  /// anything above num_qubits() pins the serial path.
  void set_parallel_threshold(int qubits) { parallel_threshold_ = qubits; }
  int parallel_threshold() const { return parallel_threshold_; }

  /// Overrides the amplitudes-per-chunk grain of the parallel kernels. The
  /// default (2^12) also serializes any register whose kernels fit in one
  /// chunk, so equivalence tests shrink it to force real multi-chunk
  /// execution on small registers.
  void set_parallel_grain(std::size_t grain) { parallel_grain_ = grain; }
  std::size_t parallel_grain() const { return parallel_grain_; }

  /// Default kernel grain: 2^12 complex doubles = 64 KiB per chunk — cache
  /// friendly while amortizing the scheduling cost.
  static constexpr std::size_t kDefaultParallelGrain = std::size_t{1} << 12;

  /// Overrides the tile width (in qubits) of apply_fused's cache blocking.
  /// Tests shrink it to exercise tiling on small registers; anything at or
  /// above num_qubits() disables tiling. Purely a traversal-order knob —
  /// never changes bits within a SIMD mode.
  void set_tile_qubits(int qubits) { tile_qubits_ = qubits; }
  int tile_qubits() const { return tile_qubits_; }

  /// Default tile: 2^13 amplitudes = 128 KiB — comfortably L2-resident with
  /// room for the rest of the working set.
  static constexpr int kDefaultTileQubits = 13;

 private:
  /// True when gate kernels should go through runtime::parallel_for.
  bool use_parallel() const { return num_qubits_ >= parallel_threshold_; }

  void apply_single_qubit(const cplx m[2][2], int q);
  void apply_controlled_single(const cplx m[2][2], std::size_t control_mask, int q);
  void apply_swap(int a, int b);
  void apply_controlled_swap(std::size_t control_mask, int a, int b);

  /// Executes `count` consecutive tile-local fused ops tile by tile
  /// (defined in fusion.cpp, where FusedOp is complete).
  void apply_tiled_run(const FusedOp* ops, std::size_t count);

  int num_qubits_;
  int parallel_threshold_ = kDefaultParallelThresholdQubits;
  std::size_t parallel_grain_ = kDefaultParallelGrain;
  int tile_qubits_ = kDefaultTileQubits;
  std::vector<cplx> amps_;
};

/// 2x2 matrix for a single-qubit kind (throws for multi-qubit kinds).
void single_qubit_matrix(qir::GateKind kind, const std::vector<double>& params,
                         cplx out[2][2]);

}  // namespace tetris::sim
