#pragma once

#include <complex>
#include <vector>

#include "common/rng.h"
#include "qir/circuit.h"

namespace tetris::sim {

using cplx = std::complex<double>;

/// Dense state-vector simulator.
///
/// Holds 2^n complex amplitudes in little-endian qubit order: basis index
/// `i` has qubit q in state bit `(i >> q) & 1`. All gate kinds of the IR are
/// supported natively; controlled kinds are applied as a (control-mask,
/// 2x2 target matrix) pair, and the permutation kinds (X family, SWAP) use
/// specialised kernels.
///
/// The register size is bounded only by memory; the RevLib experiments top
/// out at 12 qubits (4096 amplitudes), far below any practical limit.
class StateVector {
 public:
  /// Initializes |0...0> on `num_qubits` wires (0 <= num_qubits <= 28).
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }
  const std::vector<cplx>& amplitudes() const { return amps_; }

  /// Resets to |0...0>.
  void reset();

  /// Sets the register to the computational basis state |index>.
  void set_basis_state(std::size_t index);

  /// Applies one gate (Barrier is a no-op).
  void apply_gate(const qir::Gate& gate);

  /// Applies every gate of the circuit in order. The circuit width must not
  /// exceed the register width.
  void apply_circuit(const qir::Circuit& circuit);

  /// Applies a single Pauli ('I', 'X', 'Y' or 'Z') to qubit q — the noise
  /// channel injection primitive for trajectory simulation.
  void apply_pauli(char pauli, int q);

  /// Measurement probabilities |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Draws one measurement outcome (basis index) without collapsing.
  std::size_t sample(Rng& rng) const;

  /// <this|other>; registers must have equal width.
  cplx inner(const StateVector& other) const;

  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// Max |amp_i - other.amp_i| — used by tests for exactness checks.
  double max_abs_diff(const StateVector& other) const;

  /// Renormalizes (guards against drift in long trajectories).
  void normalize();

 private:
  void apply_single_qubit(const cplx m[2][2], int q);
  void apply_controlled_single(const cplx m[2][2], std::size_t control_mask, int q);
  void apply_swap(int a, int b);
  void apply_controlled_swap(std::size_t control_mask, int a, int b);

  int num_qubits_;
  std::vector<cplx> amps_;
};

/// 2x2 matrix for a single-qubit kind (throws for multi-qubit kinds).
void single_qubit_matrix(qir::GateKind kind, const std::vector<double>& params,
                         cplx out[2][2]);

}  // namespace tetris::sim
