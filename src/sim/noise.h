#pragma once

#include <string>

namespace tetris::sim {

/// Stochastic Pauli noise model.
///
/// This mirrors what the paper gets from Qiskit's FakeValencia backend: gate
/// errors and readout errors derived from a device snapshot. We model
/// - single-qubit gates: depolarizing with probability `p1` (a uniformly
///   random non-identity Pauli on the gate's qubit),
/// - two-or-more-qubit gates: depolarizing with probability `p2` (a uniformly
///   random non-identity Pauli string over the gate's qubits),
/// - measurement: each output bit flips independently with `readout`.
///
/// The trajectory sampler (sampler.h) draws one error realisation per shot,
/// which converges to the depolarizing channel statistics without density
/// matrices.
struct NoiseModel {
  double p1 = 0.0;       ///< 1q-gate depolarizing probability
  double p2 = 0.0;       ///< 2q+-gate depolarizing probability
  double readout = 0.0;  ///< per-bit readout flip probability
  std::string name = "ideal";

  /// No errors at all.
  static NoiseModel ideal();

  /// Noise profile calibrated to reproduce the paper's FakeValencia accuracy
  /// band (0.86-0.99 across the Table-I benchmarks) on *our* compiled
  /// circuits. Our transpiler lowers Toffolis all the way to {X, SX, RZ, CX}
  /// and routes on sparse topologies, so the compiled gate counts (57-384)
  /// are several times the paper's; the per-gate rates are scaled down
  /// accordingly (see DESIGN.md, substitution table). The relative structure
  /// (2q error >> 1q error, readout dominant for shallow circuits) follows
  /// the published ibmq-valencia calibration.
  static NoiseModel fake_valencia();

  /// A noisier profile for stress experiments (~3x valencia).
  static NoiseModel noisy_stress();

  bool is_ideal() const { return p1 <= 0.0 && p2 <= 0.0 && readout <= 0.0; }
  bool has_gate_noise() const { return p1 > 0.0 || p2 > 0.0; }

  /// All rates multiplied by `factor` (clamped to [0, 1] per rate) — the
  /// knob the noise-sweep ablation turns.
  NoiseModel scaled(double factor) const;
};

}  // namespace tetris::sim
