#include "sim/noise.h"

#include <algorithm>

#include "common/error.h"

namespace tetris::sim {

NoiseModel NoiseModel::scaled(double factor) const {
  TETRIS_REQUIRE(factor >= 0.0, "NoiseModel::scaled requires factor >= 0");
  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  NoiseModel out = *this;
  out.p1 = clamp01(p1 * factor);
  out.p2 = clamp01(p2 * factor);
  out.readout = clamp01(readout * factor);
  out.name = name + "_x" + std::to_string(factor);
  return out;
}

NoiseModel NoiseModel::ideal() { return NoiseModel{0.0, 0.0, 0.0, "ideal"}; }

NoiseModel NoiseModel::fake_valencia() {
  return NoiseModel{1e-4, 4e-4, 8e-3, "fake_valencia"};
}

NoiseModel NoiseModel::noisy_stress() {
  return NoiseModel{5e-4, 2e-3, 4e-2, "noisy_stress"};
}

}  // namespace tetris::sim
