#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "qir/circuit.h"
#include "sim/noise.h"

namespace tetris::sim {

/// Shot histogram, keyed by bitstring in Qiskit convention: the character at
/// position 0 is the *highest-indexed* measured qubit, the last character is
/// qubit 0 (or the first entry of the measured list). "01" with measured
/// qubits {0,1} means qubit1=0, qubit0=1.
struct Counts {
  std::map<std::string, std::size_t> histogram;
  std::size_t shots = 0;

  /// Count for a specific bitstring (0 if absent).
  std::size_t count(const std::string& bitstring) const;

  /// Normalized distribution (sums to 1 when shots > 0).
  std::map<std::string, double> distribution() const;

  /// Most frequent outcome; throws InvalidArgument when empty.
  std::string mode() const;
};

/// Renders basis index `index` as a bitstring over `num_bits` bits,
/// most-significant (highest qubit) first.
std::string bitstring(std::size_t index, int num_bits);

/// Options for the trajectory sampler.
struct SampleOptions {
  std::size_t shots = 1000;
  /// Qubits to measure, in register order; empty means all qubits.
  std::vector<int> measured;
};

/// Samples measurement outcomes of `circuit` under `noise`.
///
/// Ideal (noise-free) parts are served from a single state-vector run; shots
/// on which at least one gate error fires are re-simulated as individual
/// Pauli trajectories. Readout errors are applied per shot.
Counts sample(const qir::Circuit& circuit, const NoiseModel& noise, Rng& rng,
              const SampleOptions& options = {});

/// Exact noise-free outcome distribution over the measured qubits
/// (marginalized if `measured` is a strict subset).
std::map<std::string, double> ideal_distribution(
    const qir::Circuit& circuit, const std::vector<int>& measured = {});

/// The single deterministic outcome of a classical (reversible) circuit on
/// |0...0>, restricted to `measured` (all qubits when empty). Throws
/// InvalidArgument if the circuit is not classical.
std::string classical_outcome(const qir::Circuit& circuit,
                              const std::vector<int>& measured = {});

}  // namespace tetris::sim
