#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "qir/circuit.h"
#include "sim/backend/backend.h"
#include "sim/noise.h"

namespace tetris::runtime {
class ThreadPool;
}

namespace tetris::sim {

/// \brief Shot histogram of a sampling run.
///
/// Keys are bitstrings in Qiskit convention: the character at position 0 is
/// the *highest-indexed* measured qubit, the last character is qubit 0 (or
/// the first entry of the measured list). "01" with measured qubits {0,1}
/// means qubit1=0, qubit0=1.
struct Counts {
  std::map<std::string, std::size_t> histogram;
  std::size_t shots = 0;

  /// \param bitstring outcome key in the convention above
  /// \return the count for `bitstring` (0 if absent)
  std::size_t count(const std::string& bitstring) const;

  /// \return normalized distribution (sums to 1 when shots > 0)
  std::map<std::string, double> distribution() const;

  /// \return the most frequent outcome
  /// \throws InvalidArgument when the histogram is empty
  std::string mode() const;
};

/// \brief Renders basis index `index` as a bitstring over `num_bits` bits,
/// most-significant (highest qubit) first.
std::string bitstring(std::size_t index, int num_bits);

/// \brief Options for the trajectory sampler.
///
/// **Choosing `shots` (variance-vs-shots guideline).** Every metric derived
/// from a `Counts` histogram is a Monte-Carlo estimate whose standard error
/// shrinks as 1/sqrt(shots): an outcome with true probability `p` is
/// estimated with standard error `sqrt(p*(1-p)/shots)`, at worst
/// `0.5/sqrt(shots)`. So 1000 shots (the paper's setting) resolve an
/// accuracy to about ±1.6% and 10000 shots to about ±0.5%; distinguishing
/// two accuracies that differ by `d` needs roughly `1/d^2` shots. The
/// closed-form helpers `sim::accuracy_standard_error` /
/// `sim::shots_for_standard_error` (estimate.h) compute these numbers, and
/// docs/ARCHITECTURE.md discusses the trade-off in detail.
struct SampleOptions {
  /// Number of Monte-Carlo trajectories; the paper uses 1000 per simulation.
  std::size_t shots = 1000;

  /// Qubits to measure, in register order; empty means all qubits.
  std::vector<int> measured;

  /// Worker fan-out of this call: shots are sharded over a thread pool in
  /// chunks of at least `shots_per_chunk`.
  ///   - 0 (default): auto — use the full width of the resolved pool;
  ///   - 1: run serially on the calling thread;
  ///   - N: use at most N workers (the caller plus N-1 pool helpers).
  /// Any value produces bit-identical `Counts` (see `sample`).
  unsigned threads = 0;

  /// Pool the helper tasks are submitted to. nullptr resolves to the pool
  /// whose worker is executing this call (`ThreadPool::current()`) so a
  /// sampler inside a `service::Service` flow job shares the service pool
  /// instead of oversubscribing, and to `ThreadPool::global()` on
  /// non-worker threads.
  runtime::ThreadPool* pool = nullptr;

  /// Minimum shots per shard chunk; runs with fewer than twice this many
  /// shots stay serial (scheduling a pool task costs more than a small
  /// chunk). Purely a performance knob — chunk boundaries never change the
  /// counts.
  std::size_t shots_per_chunk = 256;

  /// Fuse adjacent gates of the ideal (noise-free) run into combined
  /// kernels (sim/fusion.h) so each amplitude sweep does more arithmetic
  /// per byte. Errored trajectories replay the fused prefix up to their
  /// first noise-injection site (sim::apply_fused_prefix) and re-simulate
  /// only the tail gate by gate: an injection site is a fence a fused op
  /// must not cross, not a reason to abandon the plan.
  /// Fused sweeps reorder floating-point arithmetic, so fused counts are
  /// tolerance-equal — NOT bit-identical — to unfused ones; the knob is
  /// therefore off by default and, unlike `threads`, part of
  /// `service::flow_fingerprint`. With `fuse` fixed, counts remain
  /// bit-identical at any threads/pool/chunk setting as documented below.
  bool fuse = false;

  /// Simulation engine for this call (sim/backend/backend.h). kAuto keeps
  /// the statevector unless the circuit is Clifford *and* wider than
  /// `kAutoStateVectorCeilingQubits`, in which case the stabilizer tableau
  /// engine takes over (the 50+-qubit verification path). Every engine
  /// consumes the identical per-shot randomness — same base draw, same
  /// stream family, same Bernoulli/injection order — so a backend swap
  /// never shifts the caller's generator, and on the Clifford grid the
  /// stabilizer's counts match the statevector's shot for shot (squared
  /// Clifford amplitudes round to exact powers of two; see
  /// backend/stabilizer.h). `fuse` is a statevector kernel detail and is
  /// ignored by the other engines. Unlike `threads`, this knob is part of
  /// `service::flow_fingerprint` whenever it resolves off the default.
  BackendKind backend = BackendKind::kAuto;
};

/// \brief Samples measurement outcomes of `circuit` under `noise`.
///
/// Ideal (noise-free) parts are served from a single state-vector run; shots
/// on which at least one gate error fires are re-simulated as individual
/// Pauli trajectories. Readout errors are applied per shot.
///
/// **Determinism contract.** The call consumes exactly one 64-bit draw from
/// `rng` — the base of a SplitMix64 stream family — and trajectory `i` then
/// runs on its own generator `Rng::for_stream(base, i)`. A shot's randomness
/// therefore depends only on (rng state at entry, shot index): the returned
/// `Counts` are bit-identical at any `threads`, `pool`, or `shots_per_chunk`
/// value, and the caller's `rng` advances by the same single draw whatever
/// `shots` is. Chunks are merged in index order onto an ordered map, so even
/// the in-memory representation is identical.
///
/// **Pool sharing.** When executed on a worker of a thread pool (e.g. inside
/// a `service::Service` flow job), helper tasks are enqueued on that same
/// pool and the calling worker participates via a shared chunk cursor. Busy
/// pools simply never get to the helpers — they find the cursor exhausted
/// and return — so a saturated batch run degrades to serial per-job sampling
/// instead of oversubscribing the machine, while a lone job fans out over
/// the idle workers.
///
/// \param circuit circuit to sample (its width sets the register size)
/// \param noise   stochastic Pauli noise model (see noise.h)
/// \param rng     seed source; consumes exactly one draw
/// \param options shots, measured qubits, and sharding knobs
/// \return histogram over measured-qubit outcomes with `options.shots` shots
/// \throws InvalidArgument when a measured qubit is out of range, or when
///   the chosen backend cannot host the run (register wider than its
///   capability, gate noise on an engine with `supports_noise == false`)
/// \throws UnsupportedGate when the chosen backend cannot represent a gate
///   (e.g. a T gate on the stabilizer engine); the error names the gate and
///   its index
Counts sample(const qir::Circuit& circuit, const NoiseModel& noise, Rng& rng,
              const SampleOptions& options = {});

/// \brief Exact noise-free outcome distribution over the measured qubits
/// (marginalized if `measured` is a strict subset).
std::map<std::string, double> ideal_distribution(
    const qir::Circuit& circuit, const std::vector<int>& measured = {});

/// \brief The single deterministic outcome of a classical (reversible)
/// circuit on |0...0>, restricted to `measured` (all qubits when empty).
/// \throws InvalidArgument if the circuit is not classical.
std::string classical_outcome(const qir::Circuit& circuit,
                              const std::vector<int>& measured = {});

}  // namespace tetris::sim
