#pragma once

namespace tetris::sim::kernels {

/// Instruction-set variant the statevector sweep kernels execute with.
///
/// `kScalar` is the always-built reference: its per-amplitude arithmetic is
/// exactly the pre-SIMD gate loops, so scalar output is byte-identical to
/// historical builds. `kAvx2` runs the vectorized kernels (4 doubles / 2
/// complex amplitudes per register, FMA): the same formulas with reordered
/// and fused floating-point rounding, tolerance-equal (~1e-13 per sweep,
/// gated at 1e-9 by the differential harness) but NOT bit-identical to
/// scalar. Within one mode, every determinism contract of the repo holds
/// unchanged — serial vs parallel vs tiled sweeps of the same plan are
/// bit-identical at any thread count.
enum class SimdMode {
  kScalar,  ///< reference kernels, plain std::complex arithmetic
  kAvx2,    ///< AVX2+FMA kernels (x86-64, runtime-detected)
};

/// The active kernel mode. Resolved once, lazily, from the `TETRIS_SIMD`
/// environment variable:
///   - "scalar"        -> kScalar
///   - "avx2"          -> kAvx2; throws InvalidArgument when the AVX2
///                        kernels are not compiled in or the CPU lacks AVX2
///   - "auto" or unset -> kAvx2 when available, else kScalar
/// Any other value throws InvalidArgument (a feature gate should fail loud).
/// `set_simd_mode` overrides the resolved value for the current process.
SimdMode simd_mode();

/// Overrides the active mode (tests and the differential benches). Throws
/// InvalidArgument when `mode` is kAvx2 but AVX2 is unavailable.
void set_simd_mode(SimdMode mode);

/// "scalar" / "avx2".
const char* simd_mode_name(SimdMode mode);

/// True when this binary contains the AVX2 kernels (CMake `TETRIS_SIMD_AVX2`
/// and a compiler that accepts -mavx2 -mfma).
bool avx2_compiled();

/// True when the AVX2 kernels are compiled in AND the CPU reports AVX2+FMA.
bool avx2_available();

}  // namespace tetris::sim::kernels
