#include <algorithm>

#include "sim/kernels/kernels.h"

#ifdef TETRIS_HAVE_AVX2

#include <immintrin.h>

namespace tetris::sim::kernels {

namespace {

// Register layout: one __m256d holds TWO packed complex doubles,
// [re0, im0, re1, im1]. All arithmetic below is lane-local per complex
// number — a complex element's result never depends on which register
// slot (or register width) it occupied — so chunk boundaries and odd tails
// cannot change bits, which is what keeps parallel AVX2 sweeps
// bit-identical to serial ones.

/// Broadcasts one complex into both 128-bit lanes.
inline __m256d bcast(cplx c) {
  return _mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag());
}

/// Elementwise complex product x*y (two complex per register):
///   re = x.re*y.re - round(x.im*y.im)   [fmaddsub even lanes subtract]
///   im = x.im*y.re + round(x.re*y.im)   [odd lanes add]
/// The first operand is always the amplitude, the second the matrix
/// coefficient — the asymmetric FMA rounding makes cmul(x, y) != cmul(y, x)
/// in the last bit, so a single convention keeps the gang and 1q kernels
/// exactly interchangeable.
inline __m256d cmul(__m256d x, __m256d y) {
  const __m256d yr = _mm256_movedup_pd(y);       // [y.re, y.re, ...]
  const __m256d yi = _mm256_permute_pd(y, 0xF);  // [y.im, y.im, ...]
  const __m256d xs = _mm256_permute_pd(x, 0x5);  // [x.im, x.re, ...]
  return _mm256_fmaddsub_pd(x, yr, _mm256_mul_pd(xs, yi));
}

/// 128-bit cmul with per-lane arithmetic identical to the 256-bit one —
/// the odd-element tail path.
inline __m128d cmul1(__m128d x, __m128d y) {
  const __m128d yr = _mm_movedup_pd(y);
  const __m128d yi = _mm_permute_pd(y, 0x3);
  const __m128d xs = _mm_permute_pd(x, 0x1);
  return _mm_fmaddsub_pd(x, yr, _mm_mul_pd(xs, yi));
}

inline __m128d bcast1(cplx c) { return _mm_setr_pd(c.real(), c.imag()); }

/// A 2x2 matrix pre-broadcast for both register widths.
struct M2v {
  __m256d m00, m01, m10, m11;
  __m128d s00, s01, s10, s11;
};

inline M2v load_m2(const M2& m) {
  return M2v{bcast(m.m00), bcast(m.m01), bcast(m.m10), bcast(m.m11),
             bcast1(m.m00), bcast1(m.m01), bcast1(m.m10), bcast1(m.m11)};
}

/// Applies [m00 m01; m10 m11] to n pairs (p0[i], p1[i]) of contiguous
/// amplitudes — the stride >= 2 body of the 1q sweep and of every gang 2x2.
inline void rotate_run(cplx* p0, cplx* p1, std::size_t n, const M2v& v) {
  double* d0 = reinterpret_cast<double*>(p0);
  double* d1 = reinterpret_cast<double*>(p1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d a0 = _mm256_loadu_pd(d0 + 2 * i);
    const __m256d a1 = _mm256_loadu_pd(d1 + 2 * i);
    _mm256_storeu_pd(d0 + 2 * i,
                     _mm256_add_pd(cmul(a0, v.m00), cmul(a1, v.m01)));
    _mm256_storeu_pd(d1 + 2 * i,
                     _mm256_add_pd(cmul(a0, v.m10), cmul(a1, v.m11)));
  }
  for (; i < n; ++i) {
    const __m128d a0 = _mm_loadu_pd(d0 + 2 * i);
    const __m128d a1 = _mm_loadu_pd(d1 + 2 * i);
    _mm_storeu_pd(d0 + 2 * i,
                  _mm_add_pd(cmul1(a0, v.s00), cmul1(a1, v.s01)));
    _mm_storeu_pd(d1 + 2 * i,
                  _mm_add_pd(cmul1(a0, v.s10), cmul1(a1, v.s11)));
  }
}

/// The q == 0 body: pairs are adjacent amplitudes, so two pairs are
/// deinterleaved across two registers with 128-bit lane shuffles.
inline void rotate_interleaved(cplx* amps, std::size_t k_begin,
                               std::size_t k_end, const M2v& v) {
  double* d = reinterpret_cast<double*>(amps);
  std::size_t k = k_begin;
  for (; k + 2 <= k_end; k += 2) {
    const __m256d u = _mm256_loadu_pd(d + 4 * k);      // pair k
    const __m256d w = _mm256_loadu_pd(d + 4 * k + 4);  // pair k+1
    const __m256d a0 = _mm256_permute2f128_pd(u, w, 0x20);  // [u.a0, w.a0]
    const __m256d a1 = _mm256_permute2f128_pd(u, w, 0x31);  // [u.a1, w.a1]
    const __m256d r0 = _mm256_add_pd(cmul(a0, v.m00), cmul(a1, v.m01));
    const __m256d r1 = _mm256_add_pd(cmul(a0, v.m10), cmul(a1, v.m11));
    _mm256_storeu_pd(d + 4 * k, _mm256_permute2f128_pd(r0, r1, 0x20));
    _mm256_storeu_pd(d + 4 * k + 4, _mm256_permute2f128_pd(r0, r1, 0x31));
  }
  for (; k < k_end; ++k) {
    const __m128d a0 = _mm_loadu_pd(d + 4 * k);
    const __m128d a1 = _mm_loadu_pd(d + 4 * k + 2);
    _mm_storeu_pd(d + 4 * k,
                  _mm_add_pd(cmul1(a0, v.s00), cmul1(a1, v.s01)));
    _mm_storeu_pd(d + 4 * k + 2,
                  _mm_add_pd(cmul1(a0, v.s10), cmul1(a1, v.s11)));
  }
}

/// Multiplies n contiguous amplitudes by one coefficient.
inline void scale_run(cplx* p, std::size_t n, __m256d mv, __m128d ms) {
  double* d = reinterpret_cast<double*>(p);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm256_storeu_pd(d + 2 * i, cmul(_mm256_loadu_pd(d + 2 * i), mv));
  }
  for (; i < n; ++i) {
    _mm_storeu_pd(d + 2 * i, cmul1(_mm_loadu_pd(d + 2 * i), ms));
  }
}

}  // namespace

void sweep_1q_avx2(cplx* amps, std::size_t k_begin, std::size_t k_end,
                   int q, const M2& m) {
  const M2v v = load_m2(m);
  if (q == 0) {
    rotate_interleaved(amps, k_begin, k_end, v);
    return;
  }
  const std::size_t stride = std::size_t{1} << q;
  std::size_t k = k_begin;
  while (k < k_end) {
    // i0 runs contiguously for `run` pair indices before the spliced zero
    // bit forces a jump.
    const std::size_t i0 = ((k >> q) << (q + 1)) | (k & (stride - 1));
    const std::size_t run =
        std::min(stride - (k & (stride - 1)), k_end - k);
    rotate_run(amps + i0, amps + i0 + stride, run, v);
    k += run;
  }
}

void sweep_diag_avx2(cplx* amps, std::size_t i_begin, std::size_t i_end,
                     int q, cplx m00, cplx m11) {
  if (q == 0) {
    // The coefficient alternates per amplitude: pack [m00, m11] into one
    // register and peel to an even boundary so lane parity tracks index
    // parity (per-lane results are position-independent either way).
    const __m256d mv = _mm256_setr_pd(m00.real(), m00.imag(),
                                      m11.real(), m11.imag());
    const __m128d s00 = bcast1(m00);
    const __m128d s11 = bcast1(m11);
    double* d = reinterpret_cast<double*>(amps);
    std::size_t i = i_begin;
    if (i < i_end && (i & 1) != 0) {
      _mm_storeu_pd(d + 2 * i, cmul1(_mm_loadu_pd(d + 2 * i), s11));
      ++i;
    }
    for (; i + 2 <= i_end; i += 2) {
      _mm256_storeu_pd(d + 2 * i, cmul(_mm256_loadu_pd(d + 2 * i), mv));
    }
    for (; i < i_end; ++i) {
      _mm_storeu_pd(d + 2 * i, cmul1(_mm_loadu_pd(d + 2 * i), s00));
    }
    return;
  }
  const std::size_t stride = std::size_t{1} << q;
  const __m256d v00 = bcast(m00), v11 = bcast(m11);
  const __m128d s00 = bcast1(m00), s11 = bcast1(m11);
  std::size_t i = i_begin;
  while (i < i_end) {
    const std::size_t run = std::min(stride - (i & (stride - 1)), i_end - i);
    if ((i >> q) & 1) {
      scale_run(amps + i, run, v11, s11);
    } else {
      scale_run(amps + i, run, v00, s00);
    }
    i += run;
  }
}

void sweep_2q_avx2(cplx* amps, std::size_t idx_begin, std::size_t idx_end,
                   int a, int b, const M4& m) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  // Column vectors: c01[c] = [m[0][c], m[1][c]], c23[c] = [m[2][c], m[3][c]];
  // accumulating cmul(v_c, col_c) left to right mirrors the scalar kernel's
  // v0..v3 sum order.
  __m256d c01[4], c23[4];
  for (int c = 0; c < 4; ++c) {
    c01[c] = _mm256_setr_pd(m.v[0 * 4 + c].real(), m.v[0 * 4 + c].imag(),
                            m.v[1 * 4 + c].real(), m.v[1 * 4 + c].imag());
    c23[c] = _mm256_setr_pd(m.v[2 * 4 + c].real(), m.v[2 * 4 + c].imag(),
                            m.v[3 * 4 + c].real(), m.v[3 * 4 + c].imag());
  }
  const double* base_d = reinterpret_cast<const double*>(amps);
  for (std::size_t idx = idx_begin; idx < idx_end; ++idx) {
    std::size_t base = ((idx >> lo) << (lo + 1)) |
                       (idx & ((std::size_t{1} << lo) - 1));
    base = ((base >> hi) << (hi + 1)) |
           (base & ((std::size_t{1} << hi) - 1));
    const std::size_t i0 = base;
    const std::size_t i1 = base | bit_a;
    const std::size_t i2 = base | bit_b;
    const std::size_t i3 = base | bit_a | bit_b;
    const __m256d v0 = _mm256_broadcast_pd(
        reinterpret_cast<const __m128d*>(base_d + 2 * i0));
    const __m256d v1 = _mm256_broadcast_pd(
        reinterpret_cast<const __m128d*>(base_d + 2 * i1));
    const __m256d v2 = _mm256_broadcast_pd(
        reinterpret_cast<const __m128d*>(base_d + 2 * i2));
    const __m256d v3 = _mm256_broadcast_pd(
        reinterpret_cast<const __m128d*>(base_d + 2 * i3));
    __m256d r01 = cmul(v0, c01[0]);
    r01 = _mm256_add_pd(r01, cmul(v1, c01[1]));
    r01 = _mm256_add_pd(r01, cmul(v2, c01[2]));
    r01 = _mm256_add_pd(r01, cmul(v3, c01[3]));
    __m256d r23 = cmul(v0, c23[0]);
    r23 = _mm256_add_pd(r23, cmul(v1, c23[1]));
    r23 = _mm256_add_pd(r23, cmul(v2, c23[2]));
    r23 = _mm256_add_pd(r23, cmul(v3, c23[3]));
    double* d = reinterpret_cast<double*>(amps);
    _mm_storeu_pd(d + 2 * i0, _mm256_castpd256_pd128(r01));
    _mm_storeu_pd(d + 2 * i1, _mm256_extractf128_pd(r01, 1));
    _mm_storeu_pd(d + 2 * i2, _mm256_castpd256_pd128(r23));
    _mm_storeu_pd(d + 2 * i3, _mm256_extractf128_pd(r23, 1));
  }
}

void sweep_2q_monomial_avx2(cplx* amps, std::size_t idx_begin,
                            std::size_t idx_end, int a, int b,
                            const int src[4], const cplx coef[4]) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  const __m256d c01 = _mm256_setr_pd(coef[0].real(), coef[0].imag(),
                                     coef[1].real(), coef[1].imag());
  const __m256d c23 = _mm256_setr_pd(coef[2].real(), coef[2].imag(),
                                     coef[3].real(), coef[3].imag());
  const int s0 = src[0], s1 = src[1], s2 = src[2], s3 = src[3];
  double* d = reinterpret_cast<double*>(amps);
  for (std::size_t idx = idx_begin; idx < idx_end; ++idx) {
    std::size_t base = ((idx >> lo) << (lo + 1)) |
                       (idx & ((std::size_t{1} << lo) - 1));
    base = ((base >> hi) << (hi + 1)) |
           (base & ((std::size_t{1} << hi) - 1));
    std::size_t at[4];
    at[0] = base;
    at[1] = base | bit_a;
    at[2] = base | bit_b;
    at[3] = base | bit_a | bit_b;
    // Gather before the stores: src is a permutation, so sources alias the
    // destinations.
    const __m128d v0 = _mm_loadu_pd(d + 2 * at[s0]);
    const __m128d v1 = _mm_loadu_pd(d + 2 * at[s1]);
    const __m128d v2 = _mm_loadu_pd(d + 2 * at[s2]);
    const __m128d v3 = _mm_loadu_pd(d + 2 * at[s3]);
    const __m256d x01 =
        _mm256_insertf128_pd(_mm256_castpd128_pd256(v0), v1, 1);
    const __m256d x23 =
        _mm256_insertf128_pd(_mm256_castpd128_pd256(v2), v3, 1);
    const __m256d r01 = cmul(x01, c01);
    const __m256d r23 = cmul(x23, c23);
    _mm_storeu_pd(d + 2 * at[0], _mm256_castpd256_pd128(r01));
    _mm_storeu_pd(d + 2 * at[1], _mm256_extractf128_pd(r01, 1));
    _mm_storeu_pd(d + 2 * at[2], _mm256_castpd256_pd128(r23));
    _mm_storeu_pd(d + 2 * at[3], _mm256_extractf128_pd(r23, 1));
  }
}

void sweep_gang_avx2(cplx* amps, std::size_t outer_begin,
                     std::size_t outer_end, const GangPlan& g) {
  const int k = g.count;
  const std::size_t block = g.block;
  M2v mv[StateVector::kMaxGangQubits];
  for (int j = 0; j < k; ++j) mv[j] = load_m2(g.m[j]);
  cplx local[std::size_t{1} << StateVector::kMaxGangQubits];
  for (std::size_t outer = outer_begin; outer < outer_end; ++outer) {
    std::size_t base = outer;
    for (int p = 0; p < k; ++p) {
      const int q = g.sorted[p];
      base = ((base >> q) << (q + 1)) |
             (base & ((std::size_t{1} << q) - 1));
    }
    for (std::size_t l = 0; l < block; ++l) {
      local[l] = amps[base + g.offsets[l]];
    }
    // Per op: the same rotate bodies as sweep_1q_avx2 on the local block,
    // so a gang of single unmerged gates matches the unfused AVX2 stream
    // amplitude for amplitude.
    for (int j = 0; j < k; ++j) {
      const int p = g.local_pos[j];
      if (p == 0) {
        rotate_interleaved(local, 0, block >> 1, mv[j]);
      } else {
        const std::size_t s = std::size_t{1} << p;
        for (std::size_t top = 0; top < block; top += 2 * s) {
          rotate_run(local + top, local + top + s, s, mv[j]);
        }
      }
    }
    for (std::size_t l = 0; l < block; ++l) {
      amps[base + g.offsets[l]] = local[l];
    }
  }
}

}  // namespace tetris::sim::kernels

#else  // !TETRIS_HAVE_AVX2

namespace tetris::sim::kernels {

// Builds without the AVX2 toolchain flag still link every kernel symbol;
// simd_mode() can never resolve to kAvx2 here (avx2_available() is false),
// so these forwards are unreachable belt-and-braces.

void sweep_1q_avx2(cplx* amps, std::size_t k_begin, std::size_t k_end,
                   int q, const M2& m) {
  sweep_1q_scalar(amps, k_begin, k_end, q, m);
}

void sweep_diag_avx2(cplx* amps, std::size_t i_begin, std::size_t i_end,
                     int q, cplx m00, cplx m11) {
  sweep_diag_scalar(amps, i_begin, i_end, q, m00, m11);
}

void sweep_2q_avx2(cplx* amps, std::size_t idx_begin, std::size_t idx_end,
                   int a, int b, const M4& m) {
  sweep_2q_scalar(amps, idx_begin, idx_end, a, b, m);
}

void sweep_2q_monomial_avx2(cplx* amps, std::size_t idx_begin,
                            std::size_t idx_end, int a, int b,
                            const int src[4], const cplx coef[4]) {
  sweep_2q_monomial_scalar(amps, idx_begin, idx_end, a, b, src, coef);
}

void sweep_gang_avx2(cplx* amps, std::size_t outer_begin,
                     std::size_t outer_end, const GangPlan& g) {
  sweep_gang_scalar(amps, outer_begin, outer_end, g);
}

}  // namespace tetris::sim::kernels

#endif  // TETRIS_HAVE_AVX2
