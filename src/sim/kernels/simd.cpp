#include "sim/kernels/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.h"

namespace tetris::sim::kernels {

namespace {

/// -1 = not yet resolved; otherwise a SimdMode value.
std::atomic<int> g_mode{-1};

SimdMode resolve_from_env() {
  const char* env = std::getenv("TETRIS_SIMD");
  const std::string value = env == nullptr ? "auto" : env;
  if (value == "scalar") return SimdMode::kScalar;
  if (value == "avx2") {
    TETRIS_REQUIRE(avx2_compiled(),
                   "TETRIS_SIMD=avx2: the AVX2 kernels are not compiled into "
                   "this binary (build with TETRIS_SIMD_AVX2=ON)");
    TETRIS_REQUIRE(avx2_available(),
                   "TETRIS_SIMD=avx2: this CPU does not report AVX2+FMA");
    return SimdMode::kAvx2;
  }
  if (value == "auto" || value.empty()) {
    return avx2_available() ? SimdMode::kAvx2 : SimdMode::kScalar;
  }
  throw InvalidArgument("TETRIS_SIMD: unknown mode '" + value +
                        "' (expected scalar, avx2, or auto)");
}

}  // namespace

SimdMode simd_mode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    mode = static_cast<int>(resolve_from_env());
    g_mode.store(mode, std::memory_order_release);
  }
  return static_cast<SimdMode>(mode);
}

void set_simd_mode(SimdMode mode) {
  if (mode == SimdMode::kAvx2) {
    TETRIS_REQUIRE(avx2_available(),
                   "set_simd_mode: AVX2 kernels unavailable on this build/CPU");
  }
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
}

const char* simd_mode_name(SimdMode mode) {
  return mode == SimdMode::kAvx2 ? "avx2" : "scalar";
}

bool avx2_compiled() {
#ifdef TETRIS_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool avx2_available() {
#ifdef TETRIS_HAVE_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace tetris::sim::kernels
