#pragma once

#include <cstddef>

#include "sim/kernels/simd.h"
#include "sim/statevector.h"

namespace tetris::sim::kernels {

/// The amplitude-sweep kernels behind StateVector's gate application, in one
/// scalar and one AVX2 flavour each.
///
/// Every kernel operates on a REGION: a base pointer plus an index range in
/// the region's own coordinates. Passing the full amplitude array with a
/// chunk of its global range runs the classic whole-vector sweep (this is
/// what runtime::parallel_for chunks feed); passing a 2^t-amplitude tile
/// with its full local range runs the same gate on one cache-resident tile
/// (the L2 blocking path of StateVector::apply_fused). Both uses execute
/// identical per-amplitude arithmetic, so tiled and untiled sweeps of one
/// mode are bit-identical.
///
/// The scalar kernels are verbatim copies of the historical StateVector
/// loops — they are the byte-identity reference. The AVX2 kernels compute
/// each amplitude with a fixed per-element instruction sequence (packed
/// complex multiply via FMA) that does not depend on where a chunk boundary
/// falls, so parallel AVX2 sweeps are bit-identical to serial AVX2 sweeps;
/// against scalar they are tolerance-equal only (FMA fuses a rounding step).

/// One 2x2 complex matrix, flattened for by-value capture into kernels.
struct M2 {
  cplx m00, m01, m10, m11;
};

/// One 4x4 complex matrix, row-major.
struct M4 {
  cplx v[16];
};

/// Precomputed execution form of one gang sweep (k distinct-qubit 2x2s in
/// one gathered pass). Built once per apply_gang / tiled run by
/// make_gang_plan, then shared read-only by every chunk and tile.
struct GangPlan {
  int count = 0;            ///< number of ops == distinct qubits (k)
  std::size_t block = 0;    ///< 2^k amplitudes gathered per outer index
  int sorted[StateVector::kMaxGangQubits] = {};  ///< gang qubits, ascending
  /// offsets[l]: global offset of local index l from a block's base index
  /// (local bit p maps to wire sorted[p]).
  std::size_t offsets[std::size_t{1} << StateVector::kMaxGangQubits] = {};
  /// local_pos[j]: position of op j's qubit within `sorted` — its local
  /// "qubit" inside the gathered block. Ops stay in stream order.
  int local_pos[StateVector::kMaxGangQubits] = {};
  M2 m[StateVector::kMaxGangQubits];  ///< op j's matrix, stream order
};

/// Builds the gang execution plan. Preconditions (distinct qubits, count
/// within kMaxGangQubits) are the caller's — apply_gang validates them.
GangPlan make_gang_plan(const SingleQubitOp* ops, std::size_t count);

/// Decomposes `m` as a monomial matrix (exactly one nonzero per row):
/// row r's output is coef[r] * input[src[r]]. Returns false when any row has
/// zero or several nonzeros. The decomposition is mode-independent, so the
/// scalar and AVX2 paths always agree on which kernel runs.
bool monomial_decompose(const M4& m, int src[4], cplx coef[4]);

// --- 2x2 pair sweep over pair indices [k_begin, k_end), target qubit q ---
void sweep_1q_scalar(cplx* amps, std::size_t k_begin, std::size_t k_end,
                     int q, const M2& m);
void sweep_1q_avx2(cplx* amps, std::size_t k_begin, std::size_t k_end,
                   int q, const M2& m);

// --- diagonal 2x2 over amplitude indices [i_begin, i_end) ---
void sweep_diag_scalar(cplx* amps, std::size_t i_begin, std::size_t i_end,
                       int q, cplx m00, cplx m11);
void sweep_diag_avx2(cplx* amps, std::size_t i_begin, std::size_t i_end,
                     int q, cplx m00, cplx m11);

// --- dense 4x4 over quad indices [idx_begin, idx_end), wire pair (a, b) ---
// Local basis (bit_b << 1) | bit_a, exactly StateVector::apply_two_qubit.
void sweep_2q_scalar(cplx* amps, std::size_t idx_begin, std::size_t idx_end,
                     int a, int b, const M4& m);
void sweep_2q_avx2(cplx* amps, std::size_t idx_begin, std::size_t idx_end,
                   int a, int b, const M4& m);

// --- monomial 4x4 (src/coef from monomial_decompose), same index space ---
void sweep_2q_monomial_scalar(cplx* amps, std::size_t idx_begin,
                              std::size_t idx_end, int a, int b,
                              const int src[4], const cplx coef[4]);
void sweep_2q_monomial_avx2(cplx* amps, std::size_t idx_begin,
                            std::size_t idx_end, int a, int b,
                            const int src[4], const cplx coef[4]);

// --- gang sweep over outer (block) indices [outer_begin, outer_end) ---
// Each block applies the plan's 2x2s in op order with exactly the
// per-amplitude arithmetic of the 1q pair sweep above, so a gang of single
// unmerged gates reproduces the unfused stream amplitude-for-amplitude.
void sweep_gang_scalar(cplx* amps, std::size_t outer_begin,
                       std::size_t outer_end, const GangPlan& g);
void sweep_gang_avx2(cplx* amps, std::size_t outer_begin,
                     std::size_t outer_end, const GangPlan& g);

// --- mode dispatchers ---
inline void sweep_1q(SimdMode mode, cplx* amps, std::size_t k_begin,
                     std::size_t k_end, int q, const M2& m) {
  if (mode == SimdMode::kAvx2) {
    sweep_1q_avx2(amps, k_begin, k_end, q, m);
  } else {
    sweep_1q_scalar(amps, k_begin, k_end, q, m);
  }
}

inline void sweep_diag(SimdMode mode, cplx* amps, std::size_t i_begin,
                       std::size_t i_end, int q, cplx m00, cplx m11) {
  if (mode == SimdMode::kAvx2) {
    sweep_diag_avx2(amps, i_begin, i_end, q, m00, m11);
  } else {
    sweep_diag_scalar(amps, i_begin, i_end, q, m00, m11);
  }
}

inline void sweep_2q(SimdMode mode, cplx* amps, std::size_t idx_begin,
                     std::size_t idx_end, int a, int b, const M4& m) {
  if (mode == SimdMode::kAvx2) {
    sweep_2q_avx2(amps, idx_begin, idx_end, a, b, m);
  } else {
    sweep_2q_scalar(amps, idx_begin, idx_end, a, b, m);
  }
}

inline void sweep_2q_monomial(SimdMode mode, cplx* amps, std::size_t idx_begin,
                              std::size_t idx_end, int a, int b,
                              const int src[4], const cplx coef[4]) {
  if (mode == SimdMode::kAvx2) {
    sweep_2q_monomial_avx2(amps, idx_begin, idx_end, a, b, src, coef);
  } else {
    sweep_2q_monomial_scalar(amps, idx_begin, idx_end, a, b, src, coef);
  }
}

inline void sweep_gang(SimdMode mode, cplx* amps, std::size_t outer_begin,
                       std::size_t outer_end, const GangPlan& g) {
  if (mode == SimdMode::kAvx2) {
    sweep_gang_avx2(amps, outer_begin, outer_end, g);
  } else {
    sweep_gang_scalar(amps, outer_begin, outer_end, g);
  }
}

}  // namespace tetris::sim::kernels
