#include <algorithm>

#include "sim/kernels/kernels.h"

namespace tetris::sim::kernels {

// The scalar kernels below are the byte-identity reference: their loop
// bodies are verbatim the historical StateVector gate loops, so a scalar
// build reproduces pre-kernel-layer amplitudes bit for bit.

GangPlan make_gang_plan(const SingleQubitOp* ops, std::size_t count) {
  GangPlan g;
  g.count = static_cast<int>(count);
  const int k = g.count;
  // Ascending qubit list for the zero-splice index arithmetic; the ops keep
  // their own (stream) order, which is the order the matrices are applied in.
  for (int j = 0; j < k; ++j) g.sorted[j] = ops[static_cast<std::size_t>(j)].qubit;
  std::sort(g.sorted, g.sorted + k);
  g.block = std::size_t{1} << k;
  // offsets[l]: global offset of local index l relative to a block's base
  // (local bit p maps to wire sorted[p]).
  for (std::size_t l = 0; l < g.block; ++l) {
    std::size_t off = 0;
    for (int p = 0; p < k; ++p) {
      if ((l >> p) & 1) off |= std::size_t{1} << g.sorted[p];
    }
    g.offsets[l] = off;
  }
  for (int j = 0; j < k; ++j) {
    const SingleQubitOp& op = ops[static_cast<std::size_t>(j)];
    g.local_pos[j] = static_cast<int>(
        std::lower_bound(g.sorted, g.sorted + k, op.qubit) - g.sorted);
    g.m[j] = M2{op.m[0][0], op.m[0][1], op.m[1][0], op.m[1][1]};
  }
  return g;
}

bool monomial_decompose(const M4& m, int src[4], cplx coef[4]) {
  for (int r = 0; r < 4; ++r) {
    int nonzeros = 0;
    for (int c = 0; c < 4; ++c) {
      if (m.v[r * 4 + c] != cplx(0.0, 0.0)) {
        src[r] = c;
        ++nonzeros;
      }
    }
    if (nonzeros != 1) return false;
  }
  for (int r = 0; r < 4; ++r) coef[r] = m.v[r * 4 + src[r]];
  return true;
}

void sweep_1q_scalar(cplx* amps, std::size_t k_begin, std::size_t k_end,
                     int q, const M2& m) {
  const std::size_t stride = std::size_t{1} << q;
  const cplx m00 = m.m00, m01 = m.m01, m10 = m.m10, m11 = m.m11;
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t i0 = ((k >> q) << (q + 1)) | (k & (stride - 1));
    const std::size_t i1 = i0 + stride;
    const cplx a0 = amps[i0];
    const cplx a1 = amps[i1];
    amps[i0] = m00 * a0 + m01 * a1;
    amps[i1] = m10 * a0 + m11 * a1;
  }
}

void sweep_diag_scalar(cplx* amps, std::size_t i_begin, std::size_t i_end,
                       int q, cplx m00, cplx m11) {
  for (std::size_t i = i_begin; i < i_end; ++i) {
    amps[i] *= ((i >> q) & 1) ? m11 : m00;
  }
}

void sweep_2q_scalar(cplx* amps, std::size_t idx_begin, std::size_t idx_end,
                     int a, int b, const M4& m) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  const cplx* mm = m.v;
  for (std::size_t idx = idx_begin; idx < idx_end; ++idx) {
    // Splice zero bits at the two wires (lowest first).
    std::size_t base = ((idx >> lo) << (lo + 1)) |
                       (idx & ((std::size_t{1} << lo) - 1));
    base = ((base >> hi) << (hi + 1)) |
           (base & ((std::size_t{1} << hi) - 1));
    // Local basis l = (bit_b << 1) | bit_a.
    const std::size_t i0 = base;
    const std::size_t i1 = base | bit_a;
    const std::size_t i2 = base | bit_b;
    const std::size_t i3 = base | bit_a | bit_b;
    const cplx v0 = amps[i0], v1 = amps[i1], v2 = amps[i2], v3 = amps[i3];
    amps[i0] = mm[0] * v0 + mm[1] * v1 + mm[2] * v2 + mm[3] * v3;
    amps[i1] = mm[4] * v0 + mm[5] * v1 + mm[6] * v2 + mm[7] * v3;
    amps[i2] = mm[8] * v0 + mm[9] * v1 + mm[10] * v2 + mm[11] * v3;
    amps[i3] = mm[12] * v0 + mm[13] * v1 + mm[14] * v2 + mm[15] * v3;
  }
}

void sweep_2q_monomial_scalar(cplx* amps, std::size_t idx_begin,
                              std::size_t idx_end, int a, int b,
                              const int src[4], const cplx coef[4]) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  const cplx c0 = coef[0], c1 = coef[1], c2 = coef[2], c3 = coef[3];
  const int s0 = src[0], s1 = src[1], s2 = src[2], s3 = src[3];
  for (std::size_t idx = idx_begin; idx < idx_end; ++idx) {
    std::size_t base = ((idx >> lo) << (lo + 1)) |
                       (idx & ((std::size_t{1} << lo) - 1));
    base = ((base >> hi) << (hi + 1)) |
           (base & ((std::size_t{1} << hi) - 1));
    std::size_t at[4];
    at[0] = base;
    at[1] = base | bit_a;
    at[2] = base | bit_b;
    at[3] = base | bit_a | bit_b;
    const cplx v0 = amps[at[s0]], v1 = amps[at[s1]],
               v2 = amps[at[s2]], v3 = amps[at[s3]];
    amps[at[0]] = c0 * v0;
    amps[at[1]] = c1 * v1;
    amps[at[2]] = c2 * v2;
    amps[at[3]] = c3 * v3;
  }
}

void sweep_gang_scalar(cplx* amps, std::size_t outer_begin,
                       std::size_t outer_end, const GangPlan& g) {
  const int k = g.count;
  const std::size_t block = g.block;
  cplx local[std::size_t{1} << StateVector::kMaxGangQubits];
  for (std::size_t outer = outer_begin; outer < outer_end; ++outer) {
    // Splice a zero bit at each gang wire (ascending order keeps later
    // positions valid in the progressively widened index).
    std::size_t base = outer;
    for (int p = 0; p < k; ++p) {
      const int q = g.sorted[p];
      base = ((base >> q) << (q + 1)) |
             (base & ((std::size_t{1} << q) - 1));
    }
    for (std::size_t l = 0; l < block; ++l) {
      local[l] = amps[base + g.offsets[l]];
    }
    // Each 2x2 transforms its pairs with exactly the arithmetic of the
    // full-sweep kernel, in op order — per amplitude the operation sequence
    // matches the unfused gate stream.
    for (int j = 0; j < k; ++j) {
      sweep_1q_scalar(local, 0, block >> 1, g.local_pos[j], g.m[j]);
    }
    for (std::size_t l = 0; l < block; ++l) {
      amps[base + g.offsets[l]] = local[l];
    }
  }
}

}  // namespace tetris::sim::kernels
