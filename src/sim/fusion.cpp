#include "sim/fusion.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "runtime/thread_pool.h"
#include "sim/kernels/kernels.h"

namespace tetris::sim {

namespace {

/// True for the kinds the 1q-window scanner accepts.
bool is_single_qubit_gate(const qir::Gate& g) {
  return g.kind != qir::GateKind::Barrier && g.qubits.size() == 1;
}

/// True for the kinds the pair-window scanner can absorb into a 4x4: any
/// gate whose qubits are a subset of {a, b}.
bool acts_within_pair(const qir::Gate& g, int a, int b) {
  if (g.kind == qir::GateKind::Barrier) return false;
  if (g.qubits.empty() || g.qubits.size() > 2) return false;
  for (int q : g.qubits) {
    if (q != a && q != b) return false;
  }
  return true;
}

/// out = lhs * rhs (2x2).
void multiply2(const cplx lhs[2][2], const cplx rhs[2][2], cplx out[2][2]) {
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      out[r][c] = lhs[r][0] * rhs[0][c] + lhs[r][1] * rhs[1][c];
    }
  }
}

/// out = lhs * rhs (4x4).
void multiply4(const cplx lhs[4][4], const cplx rhs[4][4], cplx out[4][4]) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < 4; ++k) acc += lhs[r][k] * rhs[k][c];
      out[r][c] = acc;
    }
  }
}

}  // namespace

double FusionStats::sweep_reduction() const {
  if (gates_in == 0) return 0.0;
  return 1.0 - static_cast<double>(ops_out) / static_cast<double>(gates_in);
}

void two_qubit_matrix(const qir::Gate& gate, int a, int b, cplx out[4][4]) {
  TETRIS_REQUIRE(a != b, "two_qubit_matrix: qubits must be distinct");
  TETRIS_REQUIRE(acts_within_pair(gate, a, b),
                 "two_qubit_matrix: gate '" + gate.name() +
                     "' does not act within the qubit pair");
  // Execute the gate on a 2-wire register with a -> wire 0 and b -> wire 1;
  // basis index (bit1 << 1) | bit0 is then exactly apply_two_qubit's local
  // convention, and reusing apply_gate guarantees the embedded matrix agrees
  // with the unfused kernels for every kind.
  qir::Gate local = gate;
  for (int& q : local.qubits) q = (q == a) ? 0 : 1;
  StateVector sv(2);
  for (std::size_t col = 0; col < 4; ++col) {
    sv.set_basis_state(col);
    sv.apply_gate(local);
    const auto& amps = sv.amplitudes();
    for (std::size_t row = 0; row < 4; ++row) out[row][col] = amps[row];
  }
}

FusionPlan FusionPlan::build(const qir::Circuit& circuit,
                             const FusionOptions& options) {
  TETRIS_REQUIRE(
      std::is_sorted(options.boundaries.begin(), options.boundaries.end()),
      "FusionPlan: boundaries must be sorted ascending");
  TETRIS_REQUIRE(options.max_gang_qubits >= 1 &&
                     options.max_gang_qubits <= StateVector::kMaxGangQubits,
                 "FusionPlan: max_gang_qubits out of range");

  FusionPlan plan;
  plan.num_qubits_ = circuit.num_qubits();
  const auto& gates = circuit.gates();
  const auto fence_before = [&](std::size_t j) {
    return std::binary_search(options.boundaries.begin(),
                              options.boundaries.end(), j);
  };
  const auto emit_passthrough = [&](std::size_t index) {
    FusedOp op;
    op.kind = FusedOp::Kind::kGate;
    op.first_gate = index;
    op.gate_count = 1;
    op.gate = gates[index];
    plan.ops_.push_back(std::move(op));
  };

  std::size_t i = 0;
  while (i < gates.size()) {
    const qir::Gate& g = gates[i];
    if (g.kind == qir::GateKind::Barrier) {
      // Barriers have no unitary action; they survive only as fences (the
      // window scanners below stop at them).
      ++plan.stats_.barriers;
      ++i;
      continue;
    }

    if (is_single_qubit_gate(g)) {
      // Window of consecutive 1q gates on at most max_gang_qubits distinct
      // qubits, stopped by fences, barriers, and multi-qubit gates.
      std::vector<int> order;  // distinct qubits, first-occurrence order
      std::size_t j = i;
      while (j < gates.size()) {
        if (j > i && fence_before(j)) break;
        const qir::Gate& h = gates[j];
        if (!is_single_qubit_gate(h)) break;
        const int q = h.qubits[0];
        const bool known = std::find(order.begin(), order.end(), q) != order.end();
        if (!known) {
          if (static_cast<int>(order.size()) == options.max_gang_qubits) break;
          order.push_back(q);
        }
        ++j;
      }
      const std::size_t count = j - i;
      plan.stats_.gates_in += count;
      if (count == 1) {
        emit_passthrough(i);
      } else {
        // One 2x2 per distinct qubit: the first gate's matrix, then each
        // later same-qubit gate left-multiplied onto it (temporal order).
        std::vector<SingleQubitOp> gang;
        gang.reserve(order.size());
        for (int q : order) {
          SingleQubitOp entry;
          entry.qubit = q;
          gang.push_back(entry);
        }
        std::vector<bool> seeded(order.size(), false);
        for (std::size_t t = i; t < j; ++t) {
          const std::size_t slot = static_cast<std::size_t>(
              std::find(order.begin(), order.end(), gates[t].qubits[0]) -
              order.begin());
          cplx m[2][2];
          single_qubit_matrix(gates[t].kind, gates[t].params, m);
          if (!seeded[slot]) {
            std::memcpy(gang[slot].m, m, sizeof(m));
            seeded[slot] = true;
          } else {
            cplx product[2][2];
            multiply2(m, gang[slot].m, product);
            std::memcpy(gang[slot].m, product, sizeof(product));
          }
        }
        FusedOp op;
        op.first_gate = i;
        op.gate_count = count;
        if (gang.size() == 1) {
          op.kind = FusedOp::Kind::kSingle;
          op.single = gang[0];
        } else {
          op.kind = FusedOp::Kind::kGang;
          op.gang = std::move(gang);
        }
        plan.stats_.gates_fused += count;
        plan.ops_.push_back(std::move(op));
      }
      i = j;
      continue;
    }

    if (g.qubits.size() == 2) {
      // Pair window: absorb everything that stays within {a, b}.
      const int a = g.qubits[0];
      const int b = g.qubits[1];
      std::size_t j = i;
      while (j < gates.size()) {
        if (j > i && fence_before(j)) break;
        if (!acts_within_pair(gates[j], a, b)) break;
        ++j;
      }
      const std::size_t count = j - i;
      plan.stats_.gates_in += count;
      if (count == 1) {
        emit_passthrough(i);
      } else {
        FusedOp op;
        op.kind = FusedOp::Kind::kTwoQubit;
        op.first_gate = i;
        op.gate_count = count;
        op.a = a;
        op.b = b;
        two_qubit_matrix(gates[i], a, b, op.two);
        for (std::size_t t = i + 1; t < j; ++t) {
          cplx gm[4][4];
          two_qubit_matrix(gates[t], a, b, gm);
          cplx product[4][4];
          multiply4(gm, op.two, product);
          std::memcpy(op.two, product, sizeof(product));
        }
        plan.stats_.gates_fused += count;
        plan.ops_.push_back(std::move(op));
      }
      i = j;
      continue;
    }

    // 3+-qubit gates (CCX, CSWAP, MCX): keep the specialised kernels.
    plan.stats_.gates_in += 1;
    emit_passthrough(i);
    ++i;
  }
  plan.stats_.ops_out = plan.ops_.size();
  return plan;
}

namespace {

/// Execution form of one tile-local fused op: the kernel choice (diagonal /
/// monomial fast paths included, so tiled dispatch matches the whole-array
/// dispatch of apply_single_qubit / apply_two_qubit exactly) plus its
/// precomputed matrices, lowered once and shared read-only by every tile.
struct TileOp {
  enum class K { kDiag, kSingle, kGang, kTwoDense, kTwoMono };
  K k = K::kSingle;
  int q = 0, a = 0, b = 0;
  kernels::M2 m2{};
  cplx d00, d11;          ///< kDiag coefficients
  kernels::M4 m4{};
  int src[4] = {};        ///< kTwoMono permutation
  cplx coef[4];           ///< kTwoMono coefficients
  kernels::GangPlan gang;
};

/// True when `op` can run inside one 2^tile_qubits-amplitude tile: every
/// qubit it touches lies below the tile width, so its pair/quad/block index
/// arithmetic never reaches outside the tile.
bool is_tile_local(const FusedOp& op, int tile_qubits) {
  switch (op.kind) {
    case FusedOp::Kind::kSingle:
      return op.single.qubit < tile_qubits;
    case FusedOp::Kind::kGang:
      for (const SingleQubitOp& g : op.gang) {
        if (g.qubit >= tile_qubits) return false;
      }
      return true;
    case FusedOp::Kind::kTwoQubit:
      return op.a < tile_qubits && op.b < tile_qubits;
    case FusedOp::Kind::kGate:
      // Lone 1q passthroughs lower to the same 2x2 sweep the unfused path
      // runs; everything else (permutation / controlled kernels) keeps the
      // whole-array specialisations.
      return op.gate.kind != qir::GateKind::Barrier &&
             op.gate.qubits.size() == 1 && op.gate.qubits[0] < tile_qubits;
  }
  return false;
}

TileOp lower_tile_op(const FusedOp& op) {
  TileOp t;
  cplx m[2][2];
  switch (op.kind) {
    case FusedOp::Kind::kSingle:
    case FusedOp::Kind::kGate: {
      if (op.kind == FusedOp::Kind::kSingle) {
        std::memcpy(m, op.single.m, sizeof(m));
        t.q = op.single.qubit;
      } else {
        single_qubit_matrix(op.gate.kind, op.gate.params, m);
        t.q = op.gate.qubits[0];
      }
      if (m[0][1] == cplx(0.0, 0.0) && m[1][0] == cplx(0.0, 0.0)) {
        t.k = TileOp::K::kDiag;
        t.d00 = m[0][0];
        t.d11 = m[1][1];
      } else {
        t.k = TileOp::K::kSingle;
        t.m2 = kernels::M2{m[0][0], m[0][1], m[1][0], m[1][1]};
      }
      return t;
    }
    case FusedOp::Kind::kGang:
      t.k = TileOp::K::kGang;
      t.gang = kernels::make_gang_plan(op.gang.data(), op.gang.size());
      return t;
    case FusedOp::Kind::kTwoQubit: {
      t.a = op.a;
      t.b = op.b;
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) t.m4.v[r * 4 + c] = op.two[r][c];
      }
      t.k = kernels::monomial_decompose(t.m4, t.src, t.coef)
                ? TileOp::K::kTwoMono
                : TileOp::K::kTwoDense;
      return t;
    }
  }
  return t;
}

/// Runs one lowered op over a tile's full local index range.
void apply_tile_op(cplx* region, std::size_t tile, const TileOp& t,
                   kernels::SimdMode mode) {
  switch (t.k) {
    case TileOp::K::kDiag:
      kernels::sweep_diag(mode, region, 0, tile, t.q, t.d00, t.d11);
      return;
    case TileOp::K::kSingle:
      kernels::sweep_1q(mode, region, 0, tile >> 1, t.q, t.m2);
      return;
    case TileOp::K::kGang:
      kernels::sweep_gang(mode, region, 0, tile >> t.gang.count, t.gang);
      return;
    case TileOp::K::kTwoDense:
      kernels::sweep_2q(mode, region, 0, tile >> 2, t.a, t.b, t.m4);
      return;
    case TileOp::K::kTwoMono:
      kernels::sweep_2q_monomial(mode, region, 0, tile >> 2, t.a, t.b, t.src,
                                 t.coef);
      return;
  }
}

}  // namespace

void StateVector::apply_tiled_run(const FusedOp* ops, std::size_t count) {
  const int tq = tile_qubits_;
  const std::size_t tile = std::size_t{1} << tq;
  const std::size_t num_tiles = amps_.size() >> tq;
  std::vector<TileOp> lowered(count);
  for (std::size_t i = 0; i < count; ++i) lowered[i] = lower_tile_op(ops[i]);
  const kernels::SimdMode mode = kernels::simd_mode();
  cplx* amps = amps_.data();
  const TileOp* tops = lowered.data();
  // Each tile applies the run's ops in order before moving on. Ops are
  // tile-local, so tile t's amplitudes see exactly the operation sequence of
  // the whole-array sweeps — tiling reorders traversal, not arithmetic —
  // and tiles are disjoint, so parallel chunks of tiles stay bit-identical.
  const auto kernel = [=](std::size_t t_begin, std::size_t t_end) {
    for (std::size_t t = t_begin; t < t_end; ++t) {
      cplx* region = amps + (t << tq);
      for (std::size_t i = 0; i < count; ++i) {
        apply_tile_op(region, tile, tops[i], mode);
      }
    }
  };
  if (use_parallel()) {
    const std::size_t grain = std::max<std::size_t>(1, parallel_grain_ >> tq);
    runtime::parallel_for(0, num_tiles, kernel, {grain, nullptr});
  } else {
    kernel(0, num_tiles);
  }
}

void StateVector::apply_fused_op(const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kGate:
      apply_gate(op.gate);
      break;
    case FusedOp::Kind::kSingle:
      apply_matrix(op.single.m, op.single.qubit);
      break;
    case FusedOp::Kind::kGang:
      apply_gang(op.gang);
      break;
    case FusedOp::Kind::kTwoQubit:
      apply_two_qubit(op.two, op.a, op.b);
      break;
  }
}

void StateVector::apply_fused(const FusionPlan& plan) {
  TETRIS_REQUIRE(plan.num_qubits() <= num_qubits_,
                 "apply_fused: plan wider than register");
  const auto& ops = plan.ops();
  // Cache blocking pays once the register outgrows a tile; a run needs at
  // least two tile-local ops before the reordered traversal saves a pass.
  const bool tiling = num_qubits_ > tile_qubits_ && tile_qubits_ >= 2;
  std::size_t i = 0;
  while (i < ops.size()) {
    if (tiling && is_tile_local(ops[i], tile_qubits_)) {
      std::size_t j = i + 1;
      while (j < ops.size() && is_tile_local(ops[j], tile_qubits_)) ++j;
      if (j - i >= 2) {
        apply_tiled_run(ops.data() + i, j - i);
        i = j;
        continue;
      }
    }
    apply_fused_op(ops[i]);
    ++i;
  }
}

std::size_t apply_fused_prefix(StateVector& sv, const FusionPlan& plan,
                               std::size_t gate_end) {
  std::size_t next = 0;
  for (const FusedOp& op : plan.ops()) {
    if (op.first_gate + op.gate_count > gate_end) break;
    sv.apply_fused_op(op);
    next = op.first_gate + op.gate_count;
  }
  return next;
}

}  // namespace tetris::sim
