#include "sim/fusion.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace tetris::sim {

namespace {

/// True for the kinds the 1q-window scanner accepts.
bool is_single_qubit_gate(const qir::Gate& g) {
  return g.kind != qir::GateKind::Barrier && g.qubits.size() == 1;
}

/// True for the kinds the pair-window scanner can absorb into a 4x4: any
/// gate whose qubits are a subset of {a, b}.
bool acts_within_pair(const qir::Gate& g, int a, int b) {
  if (g.kind == qir::GateKind::Barrier) return false;
  if (g.qubits.empty() || g.qubits.size() > 2) return false;
  for (int q : g.qubits) {
    if (q != a && q != b) return false;
  }
  return true;
}

/// out = lhs * rhs (2x2).
void multiply2(const cplx lhs[2][2], const cplx rhs[2][2], cplx out[2][2]) {
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      out[r][c] = lhs[r][0] * rhs[0][c] + lhs[r][1] * rhs[1][c];
    }
  }
}

/// out = lhs * rhs (4x4).
void multiply4(const cplx lhs[4][4], const cplx rhs[4][4], cplx out[4][4]) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < 4; ++k) acc += lhs[r][k] * rhs[k][c];
      out[r][c] = acc;
    }
  }
}

}  // namespace

double FusionStats::sweep_reduction() const {
  if (gates_in == 0) return 0.0;
  return 1.0 - static_cast<double>(ops_out) / static_cast<double>(gates_in);
}

void two_qubit_matrix(const qir::Gate& gate, int a, int b, cplx out[4][4]) {
  TETRIS_REQUIRE(a != b, "two_qubit_matrix: qubits must be distinct");
  TETRIS_REQUIRE(acts_within_pair(gate, a, b),
                 "two_qubit_matrix: gate '" + gate.name() +
                     "' does not act within the qubit pair");
  // Execute the gate on a 2-wire register with a -> wire 0 and b -> wire 1;
  // basis index (bit1 << 1) | bit0 is then exactly apply_two_qubit's local
  // convention, and reusing apply_gate guarantees the embedded matrix agrees
  // with the unfused kernels for every kind.
  qir::Gate local = gate;
  for (int& q : local.qubits) q = (q == a) ? 0 : 1;
  StateVector sv(2);
  for (std::size_t col = 0; col < 4; ++col) {
    sv.set_basis_state(col);
    sv.apply_gate(local);
    const auto& amps = sv.amplitudes();
    for (std::size_t row = 0; row < 4; ++row) out[row][col] = amps[row];
  }
}

FusionPlan FusionPlan::build(const qir::Circuit& circuit,
                             const FusionOptions& options) {
  TETRIS_REQUIRE(
      std::is_sorted(options.boundaries.begin(), options.boundaries.end()),
      "FusionPlan: boundaries must be sorted ascending");
  TETRIS_REQUIRE(options.max_gang_qubits >= 1 &&
                     options.max_gang_qubits <= StateVector::kMaxGangQubits,
                 "FusionPlan: max_gang_qubits out of range");

  FusionPlan plan;
  plan.num_qubits_ = circuit.num_qubits();
  const auto& gates = circuit.gates();
  const auto fence_before = [&](std::size_t j) {
    return std::binary_search(options.boundaries.begin(),
                              options.boundaries.end(), j);
  };
  const auto emit_passthrough = [&](std::size_t index) {
    FusedOp op;
    op.kind = FusedOp::Kind::kGate;
    op.first_gate = index;
    op.gate_count = 1;
    op.gate = gates[index];
    plan.ops_.push_back(std::move(op));
  };

  std::size_t i = 0;
  while (i < gates.size()) {
    const qir::Gate& g = gates[i];
    if (g.kind == qir::GateKind::Barrier) {
      // Barriers have no unitary action; they survive only as fences (the
      // window scanners below stop at them).
      ++plan.stats_.barriers;
      ++i;
      continue;
    }

    if (is_single_qubit_gate(g)) {
      // Window of consecutive 1q gates on at most max_gang_qubits distinct
      // qubits, stopped by fences, barriers, and multi-qubit gates.
      std::vector<int> order;  // distinct qubits, first-occurrence order
      std::size_t j = i;
      while (j < gates.size()) {
        if (j > i && fence_before(j)) break;
        const qir::Gate& h = gates[j];
        if (!is_single_qubit_gate(h)) break;
        const int q = h.qubits[0];
        const bool known = std::find(order.begin(), order.end(), q) != order.end();
        if (!known) {
          if (static_cast<int>(order.size()) == options.max_gang_qubits) break;
          order.push_back(q);
        }
        ++j;
      }
      const std::size_t count = j - i;
      plan.stats_.gates_in += count;
      if (count == 1) {
        emit_passthrough(i);
      } else {
        // One 2x2 per distinct qubit: the first gate's matrix, then each
        // later same-qubit gate left-multiplied onto it (temporal order).
        std::vector<SingleQubitOp> gang;
        gang.reserve(order.size());
        for (int q : order) {
          SingleQubitOp entry;
          entry.qubit = q;
          gang.push_back(entry);
        }
        std::vector<bool> seeded(order.size(), false);
        for (std::size_t t = i; t < j; ++t) {
          const std::size_t slot = static_cast<std::size_t>(
              std::find(order.begin(), order.end(), gates[t].qubits[0]) -
              order.begin());
          cplx m[2][2];
          single_qubit_matrix(gates[t].kind, gates[t].params, m);
          if (!seeded[slot]) {
            std::memcpy(gang[slot].m, m, sizeof(m));
            seeded[slot] = true;
          } else {
            cplx product[2][2];
            multiply2(m, gang[slot].m, product);
            std::memcpy(gang[slot].m, product, sizeof(product));
          }
        }
        FusedOp op;
        op.first_gate = i;
        op.gate_count = count;
        if (gang.size() == 1) {
          op.kind = FusedOp::Kind::kSingle;
          op.single = gang[0];
        } else {
          op.kind = FusedOp::Kind::kGang;
          op.gang = std::move(gang);
        }
        plan.stats_.gates_fused += count;
        plan.ops_.push_back(std::move(op));
      }
      i = j;
      continue;
    }

    if (g.qubits.size() == 2) {
      // Pair window: absorb everything that stays within {a, b}.
      const int a = g.qubits[0];
      const int b = g.qubits[1];
      std::size_t j = i;
      while (j < gates.size()) {
        if (j > i && fence_before(j)) break;
        if (!acts_within_pair(gates[j], a, b)) break;
        ++j;
      }
      const std::size_t count = j - i;
      plan.stats_.gates_in += count;
      if (count == 1) {
        emit_passthrough(i);
      } else {
        FusedOp op;
        op.kind = FusedOp::Kind::kTwoQubit;
        op.first_gate = i;
        op.gate_count = count;
        op.a = a;
        op.b = b;
        two_qubit_matrix(gates[i], a, b, op.two);
        for (std::size_t t = i + 1; t < j; ++t) {
          cplx gm[4][4];
          two_qubit_matrix(gates[t], a, b, gm);
          cplx product[4][4];
          multiply4(gm, op.two, product);
          std::memcpy(op.two, product, sizeof(product));
        }
        plan.stats_.gates_fused += count;
        plan.ops_.push_back(std::move(op));
      }
      i = j;
      continue;
    }

    // 3+-qubit gates (CCX, CSWAP, MCX): keep the specialised kernels.
    plan.stats_.gates_in += 1;
    emit_passthrough(i);
    ++i;
  }
  plan.stats_.ops_out = plan.ops_.size();
  return plan;
}

void StateVector::apply_fused(const FusionPlan& plan) {
  TETRIS_REQUIRE(plan.num_qubits() <= num_qubits_,
                 "apply_fused: plan wider than register");
  for (const FusedOp& op : plan.ops()) {
    switch (op.kind) {
      case FusedOp::Kind::kGate:
        apply_gate(op.gate);
        break;
      case FusedOp::Kind::kSingle:
        apply_matrix(op.single.m, op.single.qubit);
        break;
      case FusedOp::Kind::kGang:
        apply_gang(op.gang);
        break;
      case FusedOp::Kind::kTwoQubit:
        apply_two_qubit(op.two, op.a, op.b);
        break;
    }
  }
}

}  // namespace tetris::sim
