#include "sim/estimate.h"

#include <cmath>

#include "common/error.h"

namespace tetris::sim {

AccuracyEstimate estimate_accuracy(const qir::Circuit& circuit,
                                   const NoiseModel& noise, int measured_bits,
                                   double error_miss_rate) {
  TETRIS_REQUIRE(measured_bits >= 0, "estimate_accuracy: negative bit count");
  TETRIS_REQUIRE(error_miss_rate >= 0.0 && error_miss_rate <= 1.0,
                 "estimate_accuracy: miss rate must be in [0,1]");

  AccuracyEstimate out;
  for (const auto& g : circuit.gates()) {
    if (g.kind == qir::GateKind::Barrier) continue;
    double p = g.num_qubits() >= 2 ? noise.p2 : noise.p1;
    out.p_no_gate_error *= (1.0 - p);
    out.expected_gate_errors += p;
  }
  out.p_clean_readout = std::pow(1.0 - noise.readout, measured_bits);

  double p_clean = out.p_no_gate_error * out.p_clean_readout;
  out.estimate = p_clean + (1.0 - p_clean) * (1.0 - error_miss_rate);
  return out;
}

}  // namespace tetris::sim
