#include "sim/estimate.h"

#include <cmath>

#include "common/error.h"

namespace tetris::sim {

AccuracyEstimate estimate_accuracy(const qir::Circuit& circuit,
                                   const NoiseModel& noise, int measured_bits,
                                   double error_miss_rate) {
  TETRIS_REQUIRE(measured_bits >= 0, "estimate_accuracy: negative bit count");
  TETRIS_REQUIRE(error_miss_rate >= 0.0 && error_miss_rate <= 1.0,
                 "estimate_accuracy: miss rate must be in [0,1]");

  AccuracyEstimate out;
  for (const auto& g : circuit.gates()) {
    if (g.kind == qir::GateKind::Barrier) continue;
    double p = g.num_qubits() >= 2 ? noise.p2 : noise.p1;
    out.p_no_gate_error *= (1.0 - p);
    out.expected_gate_errors += p;
  }
  out.p_clean_readout = std::pow(1.0 - noise.readout, measured_bits);

  double p_clean = out.p_no_gate_error * out.p_clean_readout;
  out.estimate = p_clean + (1.0 - p_clean) * (1.0 - error_miss_rate);
  return out;
}

double accuracy_standard_error(double accuracy, std::size_t shots) {
  TETRIS_REQUIRE(accuracy >= 0.0 && accuracy <= 1.0,
                 "accuracy_standard_error: accuracy must be in [0,1]");
  TETRIS_REQUIRE(shots > 0, "accuracy_standard_error: shots must be >= 1");
  return std::sqrt(accuracy * (1.0 - accuracy) /
                   static_cast<double>(shots));
}

std::size_t shots_for_standard_error(double accuracy, double target_se) {
  TETRIS_REQUIRE(accuracy >= 0.0 && accuracy <= 1.0,
                 "shots_for_standard_error: accuracy must be in [0,1]");
  TETRIS_REQUIRE(target_se > 0.0,
                 "shots_for_standard_error: target must be > 0");
  double needed = accuracy * (1.0 - accuracy) / (target_se * target_se);
  if (needed <= 1.0) return 1;
  // Casting a double above the size_t range is undefined behavior; any
  // target this tight (>~1e18 shots) is unreachable in practice anyway.
  TETRIS_REQUIRE(needed < 9.0e18,
                 "shots_for_standard_error: target needs more shots than "
                 "representable");
  return static_cast<std::size_t>(std::ceil(needed));
}

}  // namespace tetris::sim
