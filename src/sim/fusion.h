#pragma once

#include <cstddef>
#include <vector>

#include "qir/circuit.h"
#include "sim/statevector.h"

namespace tetris::sim {

/// Knobs of the fusion pass (FusionPlan::build).
struct FusionOptions {
  /// Fusion fences by gate index, sorted ascending: a boundary value `i`
  /// fences BEFORE gate i, so gates at indices < i never merge with gates at
  /// indices >= i. This is how callers express "something non-unitary happens
  /// here" — a measurement, a per-shot noise-injection site — without
  /// editing the circuit. Barrier gates are implicit fences on top of these.
  std::vector<std::size_t> boundaries;

  /// Largest number of distinct qubits one gang sweep may cover. Capped by
  /// StateVector::kMaxGangQubits (the kernel's scratch block is
  /// 2^max_gang_qubits amplitudes).
  int max_gang_qubits = StateVector::kMaxGangQubits;
};

/// What the pass did — each emitted op costs exactly one amplitude sweep, so
/// ops_out / gates_in is the memory-pass ratio fusion buys.
struct FusionStats {
  std::size_t gates_in = 0;     ///< non-barrier source gates scanned
  std::size_t barriers = 0;     ///< barrier gates dropped (they are fences)
  std::size_t ops_out = 0;      ///< fused ops emitted == amplitude sweeps
  std::size_t gates_fused = 0;  ///< source gates folded into multi-gate ops

  /// Fraction of amplitude sweeps eliminated: 1 - ops_out / gates_in.
  double sweep_reduction() const;
};

/// One executable unit of a FusionPlan — exactly one amplitude sweep.
///
/// `first_gate` / `gate_count` tie the op back to the source gate stream
/// (barriers included in the indexing), which is what the boundary tests and
/// the stats assert on.
struct FusedOp {
  enum class Kind {
    kGate,      ///< passthrough: apply `gate` via StateVector::apply_gate
    kSingle,    ///< one 2x2: a same-qubit run multiplied into one matrix
    kGang,      ///< several 2x2s on distinct qubits, one gathered sweep
    kTwoQubit,  ///< one 4x4 on the wire pair (a, b)
  };
  Kind kind = Kind::kGate;
  std::size_t first_gate = 0;  ///< index of the first source gate
  std::size_t gate_count = 1;  ///< source gates folded into this op
  qir::Gate gate;              ///< kGate payload
  SingleQubitOp single;        ///< kSingle payload
  std::vector<SingleQubitOp> gang;  ///< kGang payload, stream order
  cplx two[4][4] = {};         ///< kTwoQubit payload (apply_two_qubit basis)
  int a = 0, b = 0;            ///< kTwoQubit wires
};

/// A fused compilation of a gate stream: the same unitary as the source
/// circuit, expressed as fewer amplitude sweeps.
///
/// The greedy pass merges, in stream order:
///  (a) runs of single-qubit gates on the same qubit into one 2x2 product,
///  (b) windows of consecutive single-qubit gates on distinct qubits into a
///      gang applied in one sweep (they commute exactly), and
///  (c) adjacent gates acting within one qubit pair — 2q gates in either
///      orientation plus interleaved 1q gates on the pair — into one 4x4.
/// Multi-qubit gates (CCX, CSWAP, MCX) pass through unfused; a lone gate
/// that nothing merges with also passes through, keeping the specialised
/// permutation kernels on the fast path.
///
/// **Fences.** No fused op ever spans a Barrier gate or a
/// FusionOptions::boundaries index — the non-unitary-event contract the
/// trajectory sampler relies on. A per-shot noise-injection site is such a
/// fence: sim::sample replays the plan up to a shot's first injection site
/// with apply_fused_prefix (every op fully before the site is safe to fuse)
/// and runs the rest of that trajectory gate by gate.
///
/// **Floating point.** Merging gates multiplies their matrices, which
/// reorders FP arithmetic: a fused run is tolerance-equal to the unfused one
/// (~1e-13 per merged gate), not bit-identical. Gang ops whose entries are
/// single unmerged gates apply the exact per-amplitude operation sequence of
/// the unfused stream (the sweeps differ only in memory-access order).
/// Serial-vs-parallel execution of one plan is always bit-identical
/// (disjoint chunks, no reassociation) — see docs/ARCHITECTURE.md,
/// "Gate fusion".
class FusionPlan {
 public:
  /// Plans the fused execution of `circuit`. Throws InvalidArgument if
  /// `options.boundaries` is unsorted or `max_gang_qubits` is out of range.
  static FusionPlan build(const qir::Circuit& circuit,
                          const FusionOptions& options = {});

  int num_qubits() const { return num_qubits_; }
  const std::vector<FusedOp>& ops() const { return ops_; }
  const FusionStats& stats() const { return stats_; }

 private:
  int num_qubits_ = 0;
  std::vector<FusedOp> ops_;
  FusionStats stats_;
};

/// 4x4 matrix of `gate` acting on the wire pair (a, b), in the local basis
/// convention of StateVector::apply_two_qubit (qubit `a` = low local bit).
/// Accepts any single-qubit gate on a or b and any two-qubit gate on {a, b}
/// in either orientation; throws InvalidArgument otherwise.
void two_qubit_matrix(const qir::Gate& gate, int a, int b, cplx out[4][4]);

/// Applies every op of `plan` whose source gates lie entirely before
/// `gate_end` (an exclusive gate-stream index), in order, and returns the
/// index of the first gate NOT applied — the point a gate-by-gate replay
/// resumes from. An op that straddles `gate_end` is skipped along with
/// everything after it, so no fused arithmetic ever crosses the boundary.
/// This is the errored-trajectory primitive of sim::sample: a shot with its
/// first noise injection after gate g replays the fused prefix through
/// gate g (gate_end = g + 1) and only simulates the tail unfused. Ops are
/// applied via StateVector::apply_fused_op, so the prefix is exactly as
/// tolerance- or bit-equal to the unfused gates as apply_fused itself.
std::size_t apply_fused_prefix(StateVector& sv, const FusionPlan& plan,
                               std::size_t gate_end);

}  // namespace tetris::sim
