#include "service/service.h"

#include <chrono>
#include <utility>

#include "common/error.h"
#include "common/hash.h"

namespace tetris::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kCompileError: return "compile_error";
    case StatusCode::kLockError: return "lock_error";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternalError: return "internal_error";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

ServiceStatus ServiceStatus::from_current_exception() {
  // Rethrow-and-classify: most-derived tetris errors first, then the family
  // base, then anything else.
  try {
    throw;
  } catch (const InvalidArgument& e) {
    return {StatusCode::kInvalidArgument, e.what()};
  } catch (const ParseError& e) {
    return {StatusCode::kParseError, e.what()};
  } catch (const CompileError& e) {
    return {StatusCode::kCompileError, e.what()};
  } catch (const LockError& e) {
    return {StatusCode::kLockError, e.what()};
  } catch (const std::exception& e) {
    return {StatusCode::kInternalError, e.what()};
  } catch (...) {
    return {StatusCode::kInternalError, "unknown exception"};
  }
}

std::uint64_t flow_fingerprint(const lock::FlowJob& job) {
  Fnv64 f;
  // Measured qubits (order matters: it is the output-register order).
  f.mix(static_cast<std::uint64_t>(job.measured.size()));
  for (int q : job.measured) f.mix(static_cast<std::uint64_t>(q));
  // Target: topology, basis, and noise rates all change the outcome.
  f.mix(job.target.name);
  f.mix(static_cast<std::uint64_t>(job.target.num_qubits()));
  f.mix(static_cast<std::uint64_t>(job.target.coupling.edges().size()));
  for (const auto& [a, b] : job.target.coupling.edges()) {
    f.mix(static_cast<std::uint64_t>(a));
    f.mix(static_cast<std::uint64_t>(b));
  }
  f.mix(static_cast<std::uint64_t>(job.target.basis.size()));
  for (qir::GateKind kind : job.target.basis) {  // std::set: sorted, canonical
    f.mix(static_cast<std::uint64_t>(kind));
  }
  f.mix(job.target.noise.name);
  f.mix(job.target.noise.p1);
  f.mix(job.target.noise.p2);
  f.mix(job.target.noise.readout);
  // FlowConfig: insertion + split knobs and the shot count.
  const lock::InsertionConfig& ins = job.config.insertion;
  f.mix(static_cast<std::uint64_t>(ins.max_random_gates));
  f.mix(ins.cx_probability);
  f.mix(static_cast<std::uint64_t>(ins.alphabet));
  f.mix(static_cast<std::uint64_t>(ins.attempts_per_gate));
  f.mix(static_cast<std::uint64_t>(ins.ensure_x_gate ? 1 : 0));
  f.mix(static_cast<std::uint64_t>(ins.allow_gap_insertion ? 1 : 0));
  const lock::SplitConfig& split = job.config.split;
  f.mix(split.interlock_fraction);
  f.mix(split.max_cut_depth_fraction);
  f.mix(static_cast<std::uint64_t>(job.config.shots));
  // Gate fusion IS mixed: fused kernels reorder floating-point arithmetic,
  // so a fused run's metrics are only tolerance-equal to unfused ones — a
  // cached unfused result must not answer a fused request or vice versa.
  f.mix(static_cast<std::uint64_t>(job.config.fusion ? 1 : 0));
  // The simulation engine is mixed only when it resolves off the
  // statevector default: every fingerprint minted before engines were
  // selectable (default/auto/explicit-statevector runs all resolve to the
  // statevector) is preserved, so existing cached artifacts stay valid,
  // while a non-default engine gets its own key — its counts only provably
  // match the statevector's on the Clifford grid.
  const sim::BackendKind resolved =
      sim::resolve_backend(job.config.backend, job.circuit);
  if (resolved != sim::BackendKind::kStateVector) {
    f.mix(sim::backend_kind_name(resolved));
  }
  // config.sample_threads is deliberately NOT mixed: the sharded sampler is
  // bit-identical at any fan-out, so it cannot change the cached result.
  return f.digest();
}

// --------------------------------------------------------------- JobHandle

JobState JobHandle::poll() const {
  TETRIS_REQUIRE(valid(), "JobHandle::poll on invalid handle");
  return service_->poll(*this);
}

JobOutcome JobHandle::outcome() const {
  TETRIS_REQUIRE(valid(), "JobHandle::outcome on invalid handle");
  return service_->outcome(*this);
}

JobOutcome JobHandle::wait() const {
  TETRIS_REQUIRE(valid(), "JobHandle::wait on invalid handle");
  return service_->wait(*this);
}

bool JobHandle::cancel() const {
  TETRIS_REQUIRE(valid(), "JobHandle::cancel on invalid handle");
  return service_->cancel(*this);
}

// ----------------------------------------------------------------- Service

std::size_t Service::CacheKeyHash::operator()(const CacheKey& k) const {
  auto combine = [](std::uint64_t a, std::uint64_t b) {
    return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  };
  std::uint64_t h = combine(k.circuit_hash, k.seed);
  return static_cast<std::size_t>(combine(h, k.fingerprint));
}

Service::Service(ServiceConfig config) : config_(std::move(config)) {
  if (config_.num_threads > 0) {
    private_pool_ = std::make_unique<runtime::ThreadPool>(config_.num_threads);
  }
  if (!config_.store_dir.empty()) {
    store_ = std::make_unique<ArtifactStore>(
        ArtifactStoreConfig{config_.store_dir, config_.store_max_entries});
  }
  cache_stats_.capacity = config_.cache_capacity;
  telemetry_.add_collector(
      [this](std::vector<obs::Family>& out) { collect_families(out); });
}

Service::~Service() {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [this] { return outstanding_ == 0; });
  // private_pool_ (if any) tears down after every job has finished, so no
  // task can still reference this service.
}

runtime::ThreadPool& Service::pool() {
  return private_pool_ ? *private_pool_ : runtime::ThreadPool::global();
}

JobHandle Service::submit(lock::FlowJob job) {
  return submit(std::move(job), Rng::stream_seed(config_.base_seed, 0));
}

JobHandle Service::submit(lock::FlowJob job, std::uint64_t seed) {
  auto record = std::make_shared<JobRecord>();
  record->job = std::move(job);
  record->resolved_backend =
      sim::resolve_backend(record->job.config.backend, record->job.circuit);
  record->seed = seed;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    record->id = static_cast<std::uint64_t>(records_.size()) + 1;
    records_.push_back(record);
    ++outstanding_;
  }
  enqueue(record);
  return JobHandle(this, record->id);
}

std::vector<JobHandle> Service::submit_all(std::vector<lock::FlowJob> jobs) {
  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    handles.push_back(
        submit(std::move(jobs[i]), Rng::stream_seed(config_.base_seed, i)));
  }
  return handles;
}

void Service::enqueue(const std::shared_ptr<JobRecord>& record) {
  // From inside a worker of the shared global pool, queueing and waiting
  // would deadlock the fixed pool (a pool task waiting for a pool task); run
  // the job inline instead, exactly like BatchRunner and parallel_for do.
  if (!private_pool_ && runtime::ThreadPool::on_worker_thread()) {
    execute(record);
    return;
  }
  // The future is intentionally dropped: completion is tracked by
  // outstanding_/cv_, and execute() never throws.
  pool().submit([this, record] { execute(record); });
}

void Service::execute(const std::shared_ptr<JobRecord>& record) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (record->state == JobState::kCancelled) {
      --outstanding_;
      cv_.notify_all();
      return;
    }
    record->state = JobState::kRunning;
  }

  // Timing starts before the trace is constructed, so every span offset and
  // duration fits inside the `seconds` window (the "span durations sum to
  // <= seconds" contract tests pin). Tracing is pure observation — it never
  // feeds back into the flow — so results stay bit-identical.
  const auto start = Clock::now();
  obs::Trace trace;
  const bool cache_enabled = config_.cache_capacity > 0;
  const bool store_enabled = store_ != nullptr;
  CacheKey key;
  std::shared_ptr<const lock::FlowResult> cached;
  if (cache_enabled || store_enabled) {
    key.circuit_hash = record->job.circuit.content_hash();
    key.seed = record->seed;
    key.fingerprint = flow_fingerprint(record->job);
  }
  if (cache_enabled) {
    obs::ScopedSpan span(&trace, "cache.lookup");
    bool hit = false;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      auto it = cache_index_.find(key);
      if (it != cache_index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
        cached = it->second->result;
        hit = true;
        ++cache_stats_.hits;
      } else {
        ++cache_stats_.misses;
      }
    }
    span.attr("tier", "memory").attr("hit", hit ? "1" : "0");
  }

  // Memory miss -> disk tier. The load (file read + decode) runs outside
  // mutex_: artifact I/O must never serialize unrelated jobs. A disk hit is
  // promoted into the memory LRU so the next repeat stops in RAM.
  if (!cached && store_enabled) {
    obs::ScopedSpan span(&trace, "store.read");
    const ArtifactKey akey{key.circuit_hash, key.seed, key.fingerprint};
    if (auto loaded = store_->load(akey)) {
      cached = std::make_shared<const lock::FlowResult>(std::move(*loaded));
      if (cache_enabled) {
        std::lock_guard<std::mutex> lk(mutex_);
        if (cache_index_.find(key) == cache_index_.end()) {
          lru_.push_front(CacheEntry{key, cached});
          cache_index_[key] = lru_.begin();
          while (lru_.size() > config_.cache_capacity) {
            cache_index_.erase(lru_.back().key);
            lru_.pop_back();
            ++cache_stats_.evictions;
          }
          cache_stats_.entries = lru_.size();
        }
      }
    }
    span.attr("hit", cached ? "1" : "0");
  }

  if (cached) {
    observe_stages(trace);
    std::lock_guard<std::mutex> lk(mutex_);
    record->result = std::move(cached);
    record->trace = std::make_shared<const obs::Trace>(std::move(trace));
    record->cache_hit = true;
    record->state = JobState::kDone;
    record->seconds = seconds_since(start);
    ++backend_counters_[sim::backend_kind_name(record->resolved_backend)].done;
    --outstanding_;
    cv_.notify_all();
    return;
  }

  // The actual work happens outside any lock.
  std::shared_ptr<const lock::FlowResult> result;
  ServiceStatus status;
  try {
    Rng rng(record->seed);
    result = std::make_shared<const lock::FlowResult>(
        lock::run_flow(record->job.circuit, record->job.measured,
                       record->job.target, record->job.config, rng, &trace));
  } catch (...) {
    status = ServiceStatus::from_current_exception();
  }

  // Persist before publishing, still outside mutex_ (the store has its own
  // synchronization and the write is atomic on its side). Failures are
  // absorbed by the store — a broken disk degrades durability, not the job.
  if (result && store_enabled) {
    obs::ScopedSpan span(&trace, "store.write");
    store_->store(ArtifactKey{key.circuit_hash, key.seed, key.fingerprint},
                  *result);
  }

  observe_stages(trace);
  std::lock_guard<std::mutex> lk(mutex_);
  record->trace = std::make_shared<const obs::Trace>(std::move(trace));
  record->seconds = seconds_since(start);
  if (result) {
    // Insert only if a concurrent job with the same triple didn't beat us to
    // it (cache stampede): a blind push would leave an unindexed duplicate
    // in lru_ whose eviction would erase the live entry's index.
    if (cache_enabled && cache_index_.find(key) == cache_index_.end()) {
      lru_.push_front(CacheEntry{key, result});
      cache_index_[key] = lru_.begin();
      while (lru_.size() > config_.cache_capacity) {
        cache_index_.erase(lru_.back().key);
        lru_.pop_back();
        ++cache_stats_.evictions;
      }
      cache_stats_.entries = lru_.size();
    }
    record->result = std::move(result);
    record->state = JobState::kDone;
    ++backend_counters_[sim::backend_kind_name(record->resolved_backend)].done;
  } else {
    record->status = status;
    record->state = JobState::kFailed;
    ++backend_counters_[sim::backend_kind_name(record->resolved_backend)]
          .failed;
  }
  --outstanding_;
  cv_.notify_all();
}

std::shared_ptr<Service::JobRecord> Service::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(mutex_);
  TETRIS_REQUIRE(id >= 1 && id <= records_.size(),
                 "Service: unknown job id " + std::to_string(id));
  return records_[static_cast<std::size_t>(id) - 1];
}

JobOutcome Service::outcome_locked(const JobRecord& record) const {
  JobOutcome out;
  out.id = record.id;
  out.name = record.job.name;
  out.seed = record.seed;
  out.state = record.state;
  out.status = record.status;
  out.cache_hit = record.cache_hit;
  out.seconds = record.seconds;
  out.shots = record.job.config.shots;
  out.sample_threads = record.job.config.sample_threads;
  out.fusion = record.job.config.fusion;
  out.backend = record.resolved_backend;
  out.warnings = record.job.warnings;
  // A terminal record's trace pointer is immutable; the span list is small
  // (a dozen entries), so the copy stays under the lock unlike the result.
  if (record.trace) out.trace = *record.trace;
  return out;
}

JobOutcome Service::make_outcome(const std::shared_ptr<JobRecord>& record,
                                 std::unique_lock<std::mutex>& lk) const {
  JobOutcome out = outcome_locked(*record);
  std::shared_ptr<const lock::FlowResult> result = record->result;
  // The FlowResult deep copy (several circuits) happens without the lock;
  // a terminal record's result pointer never changes.
  lk.unlock();
  if (out.state == JobState::kDone && result) out.result = *result;
  lk.lock();
  return out;
}

JobHandle Service::handle(std::uint64_t id) {
  find(id);  // validates the id (throws InvalidArgument when unknown)
  return JobHandle(this, id);
}

JobState Service::poll(const JobHandle& handle) const {
  auto record = find(handle.id());
  std::lock_guard<std::mutex> lk(mutex_);
  return record->state;
}

JobOutcome Service::outcome(const JobHandle& handle) const {
  auto record = find(handle.id());
  std::unique_lock<std::mutex> lk(mutex_);
  // make_outcome copies the result only for terminal (kDone) records, where
  // the result pointer is immutable; the drain cursor is never consulted.
  return make_outcome(record, lk);
}

JobOutcome Service::wait(const JobHandle& handle) const {
  auto record = find(handle.id());
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [&] { return is_terminal(record->state); });
  return make_outcome(record, lk);
}

bool Service::cancel(const JobHandle& handle) {
  auto record = find(handle.id());
  std::lock_guard<std::mutex> lk(mutex_);
  if (record->state != JobState::kQueued) return false;
  record->state = JobState::kCancelled;
  record->status = {StatusCode::kCancelled, "cancelled before execution"};
  cv_.notify_all();
  return true;
}

std::size_t Service::drain(
    const std::function<void(const JobOutcome&)>& sink) {
  std::unique_lock<std::mutex> lk(mutex_);
  const std::size_t end = records_.size();  // jobs submitted before the call
  std::size_t delivered = 0;
  while (drained_ < end) {
    // The cursor — not a captured record — is the wait predicate's anchor: a
    // concurrent drain may advance it while we sleep, and re-delivering the
    // job we captured would break the exactly-once contract.
    const std::size_t index = drained_;
    auto record = records_[index];
    cv_.wait(lk, [&] {
      return drained_ != index || is_terminal(record->state);
    });
    if (drained_ != index) continue;  // a sibling drain delivered this job
    JobOutcome out = outcome_locked(*record);
    auto result = record->result;
    ++drained_;
    ++delivered;
    cv_.notify_all();  // wake sibling drains watching the cursor
    lk.unlock();  // never hold the service lock across the copy or user code
    if (out.state == JobState::kDone && result) out.result = *result;
    sink(out);
    lk.lock();
  }
  return delivered;
}

std::vector<JobOutcome> Service::wait_all() const {
  std::unique_lock<std::mutex> lk(mutex_);
  const std::size_t end = records_.size();
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(end);
  for (std::size_t i = 0; i < end; ++i) {
    auto record = records_[i];
    cv_.wait(lk, [&] { return is_terminal(record->state); });
    outcomes.push_back(make_outcome(record, lk));
  }
  return outcomes;
}

std::size_t Service::jobs_submitted() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return records_.size();
}

std::map<std::string, BackendCounters> Service::backend_counters() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return backend_counters_;
}

CacheStats Service::cache_stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  CacheStats stats = cache_stats_;
  stats.entries = lru_.size();
  stats.capacity = config_.cache_capacity;
  return stats;
}

void Service::clear_cache() {
  std::lock_guard<std::mutex> lk(mutex_);
  lru_.clear();
  cache_index_.clear();
  cache_stats_.entries = 0;
}

std::string Service::artifact_bytes(const JobHandle& handle) const {
  auto record = find(handle.id());
  std::shared_ptr<const lock::FlowResult> result;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (record->state == JobState::kDone) result = record->result;
  }
  TETRIS_REQUIRE(result != nullptr,
                 "Service: job " + std::to_string(handle.id()) +
                     " has no artifact (only kDone jobs do)");
  // job and seed are immutable after submit, and the encode (several circuit
  // copies) runs without the service lock.
  return encode_artifact(artifact_key(record->job, record->seed), *result);
}

unsigned Service::threads() const {
  return private_pool_ ? private_pool_->size()
                       : runtime::ThreadPool::global().size();
}

runtime::ThreadPool::Stats Service::pool_stats() const {
  return private_pool_ ? private_pool_->stats()
                       : runtime::ThreadPool::global().stats();
}

void Service::observe_stages(const obs::Trace& trace) {
  for (const obs::Span& span : trace.spans()) {
    telemetry_
        .histogram("tetris_job_stage_seconds",
                   "Wall time of one pipeline/service stage of a job.",
                   obs::latency_buckets(), {{"stage", span.name}})
        .observe(span.duration_seconds);
  }
}

void Service::collect_families(std::vector<obs::Family>& out) const {
  std::size_t submitted = 0;
  std::map<std::string, BackendCounters> backends;
  CacheStats cache;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    submitted = records_.size();
    backends = backend_counters_;
    cache = cache_stats_;
    cache.entries = lru_.size();
    cache.capacity = config_.cache_capacity;
  }

  auto family = [&out](const char* name, const char* help, obs::Kind kind,
                       double value, obs::Labels labels = {}) {
    obs::Family f;
    f.name = name;
    f.help = help;
    f.kind = kind;
    f.samples.push_back(obs::Sample{std::move(labels), value});
    out.push_back(std::move(f));
  };
  const auto kCounter = obs::Kind::kCounter;
  const auto kGauge = obs::Kind::kGauge;

  family("tetris_jobs_submitted_total", "Jobs accepted by the service.",
         kCounter, static_cast<double>(submitted));
  {
    obs::Family f;
    f.name = "tetris_jobs_terminal_total";
    f.help = "Finished jobs by resolved engine and terminal state.";
    f.kind = kCounter;
    for (const auto& [engine, counters] : backends) {
      f.samples.push_back(obs::Sample{
          {{"backend", engine}, {"state", "done"}},
          static_cast<double>(counters.done)});
      f.samples.push_back(obs::Sample{
          {{"backend", engine}, {"state", "failed"}},
          static_cast<double>(counters.failed)});
    }
    out.push_back(std::move(f));
  }

  family("tetris_cache_hits_total", "Result-cache hits (memory LRU).",
         kCounter, static_cast<double>(cache.hits));
  family("tetris_cache_misses_total", "Result-cache misses (memory LRU).",
         kCounter, static_cast<double>(cache.misses));
  family("tetris_cache_evictions_total",
         "Result-cache entries dropped by the capacity bound.", kCounter,
         static_cast<double>(cache.evictions));
  family("tetris_cache_entries", "Results resident in the memory LRU.",
         kGauge, static_cast<double>(cache.entries));
  family("tetris_cache_capacity", "Configured LRU bound (0 = disabled).",
         kGauge, static_cast<double>(cache.capacity));

  if (store_) {
    const ArtifactStoreStats stats = store_->stats();
    family("tetris_store_hits_total", "Artifact-store loads that hit.",
           kCounter, static_cast<double>(stats.hits));
    family("tetris_store_misses_total", "Artifact-store loads with no file.",
           kCounter, static_cast<double>(stats.misses));
    family("tetris_store_writes_total", "Artifacts persisted to disk.",
           kCounter, static_cast<double>(stats.writes));
    family("tetris_store_corrupt_total",
           "Artifact loads rejected as corrupt.", kCounter,
           static_cast<double>(stats.corrupt));
    family("tetris_store_evictions_total",
           "Artifact files removed by the entry cap.", kCounter,
           static_cast<double>(stats.evictions));
    family("tetris_store_entries", "Artifact files currently on disk.",
           kGauge, static_cast<double>(stats.entries));
  }

  const runtime::ThreadPool::Stats pool = pool_stats();
  family("tetris_pool_threads", "Worker threads of the service pool.",
         kGauge, static_cast<double>(pool.threads));
  family("tetris_pool_queue_depth", "Tasks waiting in the pool queue.",
         kGauge, static_cast<double>(pool.queued));
  family("tetris_pool_active_workers", "Workers currently running a task.",
         kGauge, static_cast<double>(pool.active));
  family("tetris_pool_tasks_submitted_total",
         "Tasks ever accepted by the pool.", kCounter,
         static_cast<double>(pool.submitted));
  family("tetris_pool_tasks_completed_total",
         "Tasks the pool finished running.", kCounter,
         static_cast<double>(pool.completed));
}

}  // namespace tetris::service
