#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "lock/pipeline.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "service/artifact_store.h"

namespace tetris::service {

/// Structured error family of the service layer. Exceptions thrown by the
/// pipeline never escape a Service call — they are mapped onto one of these
/// codes plus the exception message, so a front-end can branch on the class
/// of failure without parsing strings.
enum class StatusCode {
  kOk,
  kInvalidArgument,  ///< tetris::InvalidArgument (bad qubit index, shots, ...)
  kParseError,       ///< tetris::ParseError (malformed .real / .qasm input)
  kCompileError,     ///< tetris::CompileError (could not lower to target)
  kLockError,        ///< tetris::LockError (locking invariant violated)
  kCancelled,        ///< job cancelled before it started executing
  kInternalError,    ///< any other exception
};

/// Stable lower-snake name of a code ("ok", "invalid_argument", ...), used in
/// JSON output and log lines.
const char* status_code_name(StatusCode code);

/// Outcome classification of one service operation or job.
struct ServiceStatus {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  /// Maps the in-flight exception to a status; call only inside a catch
  /// block. Specific tetris errors keep their class, everything else becomes
  /// kInternalError.
  static ServiceStatus from_current_exception();
};

/// Lifecycle of a submitted job.
enum class JobState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is executing the flow
  kDone,       ///< finished successfully; result is valid
  kFailed,     ///< finished with an error; status carries the code + message
  kCancelled,  ///< cancelled while still queued; it never executed
};

/// Stable lower-snake name of a state ("queued", "running", ...).
const char* job_state_name(JobState state);

/// True for kDone/kFailed/kCancelled — states a job can no longer leave.
/// Poll loops must test this, not `== kDone`, or they spin forever on a
/// failed or cancelled job.
bool is_terminal(JobState state);

/// Everything the service reports about one finished (or cancelled) job.
struct JobOutcome {
  std::uint64_t id = 0;       ///< submission-order id, starting at 1
  std::string name;           ///< FlowJob::name
  std::uint64_t seed = 0;     ///< effective RNG seed of this job
  JobState state = JobState::kQueued;
  ServiceStatus status;       ///< ok() iff state == kDone
  /// Result was served from a cache tier — the in-memory LRU or the disk
  /// artifact store — instead of re-running the flow. Indistinguishable from
  /// a re-run by the determinism contract.
  bool cache_hit = false;
  double seconds = 0.0;       ///< execution wall time (≈0 for cache hits)
  /// Sampler settings the job was configured with (FlowConfig::shots /
  /// ::sample_threads / ::fusion), echoed so JSON consumers can judge the
  /// statistical resolution of the fidelity metrics without the submitting
  /// code.
  std::size_t shots = 0;
  unsigned sample_threads = 0;  ///< 0 = shared the service pool
  bool fusion = false;          ///< gate fusion in the sampled runs
  /// Simulation engine the flow's sampled runs execute on: the job's
  /// FlowConfig::backend with kAuto already resolved against its circuit
  /// (sim::resolve_backend), fixed at submission. Never kAuto.
  sim::BackendKind backend = sim::BackendKind::kStateVector;
  /// Setup caveats carried over from FlowJob::warnings (e.g. the
  /// device_for_checked ring-topology fallback). Serialized as a "warnings"
  /// array only when non-empty, so warning-free documents stay byte-identical
  /// to the pre-warnings schema.
  std::vector<std::string> warnings;
  /// Stage trace of this job's execution (docs/OBSERVABILITY.md): pipeline
  /// spans from lock::run_flow plus the service's own cache.lookup /
  /// store.read / store.write spans. Timing telemetry only — NOT part of the
  /// default JSON document, the artifact bytes, or the flow fingerprint, so
  /// every byte-identity pin is unaffected. Empty for cancelled jobs and for
  /// jobs finished before tracing existed.
  obs::Trace trace;
  lock::FlowResult result;    ///< valid only when state == kDone
};

/// Terminal-job tallies of one simulation engine (GET /v1/status).
struct BackendCounters {
  std::size_t done = 0;    ///< kDone jobs, cache hits included
  std::size_t failed = 0;  ///< kFailed jobs
};

/// Hit/miss counters of the result cache.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;      ///< lookups the memory tier could not answer
                               ///< (the disk store may still avoid the run)
  std::size_t evictions = 0;   ///< entries dropped by the LRU capacity bound
  std::size_t entries = 0;     ///< currently resident results
  std::size_t capacity = 0;    ///< configured bound (0 = cache disabled)
};

/// Service knobs.
struct ServiceConfig {
  /// Worker threads. 0 shares the process-global pool (sized by --jobs /
  /// TETRIS_THREADS); a positive value gives this service a private pool of
  /// exactly that size.
  unsigned num_threads = 0;
  /// Base seed from which per-job seeds are derived (see Service::submit).
  std::uint64_t base_seed = 2025;
  /// Result-cache capacity in entries; 0 disables caching entirely.
  std::size_t cache_capacity = 0;
  /// Directory of the disk-backed artifact store; empty disables it. When
  /// set, finished flows are persisted as versioned artifacts
  /// (service/artifact_store.h) and looked up behind the memory LRU, so a
  /// restarted service — or a sibling process sharing the directory — warm-
  /// starts from disk instead of recomputing.
  std::string store_dir;
  /// Artifact-store entry cap (oldest files evicted past it); 0 = unbounded.
  std::size_t store_max_entries = 0;
};

class Service;

/// Lightweight reference to a submitted job. Copyable; valid for the
/// lifetime of the Service that issued it.
class JobHandle {
 public:
  JobHandle() = default;

  std::uint64_t id() const { return id_; }
  bool valid() const { return service_ != nullptr; }

  /// Non-blocking state query.
  JobState poll() const;
  /// Non-blocking outcome snapshot (see Service::outcome).
  JobOutcome outcome() const;
  /// Blocks until the job is terminal and returns its full outcome.
  JobOutcome wait() const;
  /// Cancels the job if it has not started; returns true on success. A job
  /// that is already running, finished, or cancelled is unaffected.
  bool cancel() const;

 private:
  friend class Service;
  JobHandle(Service* service, std::uint64_t id) : service_(service), id_(id) {}

  Service* service_ = nullptr;
  std::uint64_t id_ = 0;
};

/// A stable fingerprint of everything besides the circuit and the seed that
/// influences a flow's outcome: the measured-qubit list, the full target
/// (topology, basis, noise rates), and the FlowConfig knobs. Together with
/// `Circuit::content_hash()` and the job seed this identifies a flow run
/// exactly — the triple the result cache keys on. Knobs that provably do
/// not change the outcome (FlowConfig::sample_threads: the sampler is
/// bit-identical at any fan-out) are excluded, so a cached result is shared
/// across thread settings. FlowConfig::backend is mixed only when it
/// *resolves* (sim::resolve_backend against the job's circuit) to a
/// non-statevector engine: default/auto/explicit-statevector runs keep the
/// fingerprints — and thus the cached artifacts — minted before engines
/// were selectable.
std::uint64_t flow_fingerprint(const lock::FlowJob& job);

/// The programmatic front door of the TetrisLock stack.
///
/// `Service` owns the worker pool and the result cache and turns the
/// synchronous `lock::run_flow` pipeline into an async job API:
///
///   service::Service svc({/*num_threads=*/0, /*base_seed=*/7,
///                         /*cache_capacity=*/128});
///   auto handle = svc.submit(lock::make_flow_job("adder", circuit));
///   while (!service::is_terminal(handle.poll())) { /* do other work */ }
///   auto outcome = handle.wait();  // kDone, kFailed, or kCancelled
///
/// Determinism: a job's randomness comes exclusively from its seed. The
/// two-argument `submit` takes the seed verbatim; the one-argument overload
/// uses `Rng::stream_seed(base_seed, 0)` and `submit_all` gives the i-th job
/// `Rng::stream_seed(base_seed, i)` — the same derivation `run_flow_batch`
/// has always used, so a batch through the service is bit-identical to the
/// legacy API at any thread count. Because outputs are a pure function of
/// (circuit, seed, fingerprint), serving a repeated triple from the cache is
/// indistinguishable from re-running it — with one caveat: circuit *names*
/// are reporting metadata excluded from `content_hash()`, so a cached
/// FlowResult's embedded circuits carry the names of the job that first
/// computed it (JobOutcome::name is always the submitting job's own name).
///
/// Thread safety: all public methods may be called concurrently. Exceptions
/// from the pipeline never escape — they surface as JobOutcome::status.
class Service {
 public:
  explicit Service(ServiceConfig config = {});
  /// Blocks until every accepted job has reached a terminal state.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Async submission. Returns immediately (unless called from inside a
  /// worker of the shared global pool, where the job runs inline to avoid
  /// pool deadlock — the handle is then already terminal).
  JobHandle submit(lock::FlowJob job);
  JobHandle submit(lock::FlowJob job, std::uint64_t seed);

  /// Submits jobs[i] with seed `Rng::stream_seed(base_seed, i)`; handles are
  /// in job order.
  std::vector<JobHandle> submit_all(std::vector<lock::FlowJob> jobs);

  /// Re-creates the handle of an already-submitted job from its id — the
  /// lookup a network front-end needs, where the caller holds only the id it
  /// was given at submission. Throws InvalidArgument for ids never issued.
  JobHandle handle(std::uint64_t id);

  JobState poll(const JobHandle& handle) const;
  /// Non-blocking snapshot of a job's current outcome. For a terminal job
  /// this is the same document `wait` returns; for a queued/running job the
  /// state is reported and the result fields are empty. Unlike `drain` this
  /// is repeatable — it never touches the once-only drain cursor, so a
  /// front-end can serve `GET /v1/jobs/{id}` any number of times.
  JobOutcome outcome(const JobHandle& handle) const;
  JobOutcome wait(const JobHandle& handle) const;
  bool cancel(const JobHandle& handle);

  /// Streaming consumption: delivers the outcome of every not-yet-drained
  /// job submitted before this call, in submission order, invoking `sink` as
  /// each job completes (it waits for stragglers, it does not reorder).
  /// Returns the number delivered. Each job is delivered exactly once across
  /// all drain calls.
  std::size_t drain(const std::function<void(const JobOutcome&)>& sink);

  /// Blocks until all jobs are terminal and returns every outcome in
  /// submission order (does not interact with drain's once-only cursor).
  std::vector<JobOutcome> wait_all() const;

  std::size_t jobs_submitted() const;
  /// Terminal-job tallies keyed by engine name ("statevector", ...), for
  /// every engine that has finished at least one job. Resolved (never
  /// "auto") names; cancelled jobs are not counted — they never ran.
  std::map<std::string, BackendCounters> backend_counters() const;
  CacheStats cache_stats() const;
  /// Drops all cached results (counters keep accumulating). Disk artifacts
  /// are untouched — clearing memory must not destroy durable state.
  void clear_cache();

  /// The versioned artifact encoding of a finished job: the
  /// docs/FORMATS.md envelope around its FlowResult, keyed with the job's
  /// own (content hash, seed, fingerprint) triple. Encoded on the fly from
  /// the in-memory result — available whether or not a store is configured,
  /// and byte-identical to the store's file for the same job (the encoder is
  /// deterministic). Throws InvalidArgument if the job is not kDone.
  std::string artifact_bytes(const JobHandle& handle) const;

  /// The disk artifact store, or nullptr when ServiceConfig::store_dir is
  /// empty. Exposed for stats reporting (GET /v1/status) and tests.
  ArtifactStore* artifact_store() { return store_.get(); }
  const ArtifactStore* artifact_store() const { return store_.get(); }

  const ServiceConfig& config() const { return config_; }
  /// Width of the pool this service executes on.
  unsigned threads() const;

  /// Point-in-time telemetry of the pool this service executes on.
  runtime::ThreadPool::Stats pool_stats() const;

  /// The service's metrics registry: per-stage duration histograms
  /// (`tetris_job_stage_seconds{stage=...}`) plus snapshot collectors that
  /// re-export the job/cache/store/backend/pool counters above as Prometheus
  /// families. `GET /metrics` concatenates this with the server's own
  /// HTTP-layer registry (obs::render_prometheus merges the two).
  obs::Registry& telemetry() { return telemetry_; }
  const obs::Registry& telemetry() const { return telemetry_; }

 private:
  struct JobRecord {
    std::uint64_t id = 0;
    lock::FlowJob job;
    /// FlowConfig::backend resolved against the job's circuit at submission
    /// (one is_clifford scan there instead of one per outcome snapshot).
    sim::BackendKind resolved_backend = sim::BackendKind::kStateVector;
    std::uint64_t seed = 0;
    JobState state = JobState::kQueued;
    ServiceStatus status;
    bool cache_hit = false;
    double seconds = 0.0;
    /// Shared with the cache; immutable once the record is terminal. Held by
    /// pointer so completion and delivery are O(1) under the service mutex —
    /// the per-outcome deep copy happens outside the lock.
    std::shared_ptr<const lock::FlowResult> result;
    /// Stage trace recorded by execute(); attached when the record turns
    /// terminal and immutable afterwards (same discipline as `result`).
    std::shared_ptr<const obs::Trace> trace;
  };

  struct CacheKey {
    std::uint64_t circuit_hash = 0;
    std::uint64_t seed = 0;
    std::uint64_t fingerprint = 0;
    bool operator==(const CacheKey& o) const {
      return circuit_hash == o.circuit_hash && seed == o.seed &&
             fingerprint == o.fingerprint;
    }
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };
  struct CacheEntry {
    CacheKey key;
    std::shared_ptr<const lock::FlowResult> result;
  };

  runtime::ThreadPool& pool();
  void enqueue(const std::shared_ptr<JobRecord>& record);
  void execute(const std::shared_ptr<JobRecord>& record);
  /// Collector callback: re-exports the ad-hoc job/cache/store/backend/pool
  /// counters as metric families at scrape time.
  void collect_families(std::vector<obs::Family>& out) const;
  /// Records every span of a finished trace into the per-stage histograms.
  void observe_stages(const obs::Trace& trace);
  /// Copies the metadata fields only; the result is attached by
  /// make_outcome, which drops the lock for the deep copy.
  JobOutcome outcome_locked(const JobRecord& record) const;
  JobOutcome make_outcome(const std::shared_ptr<JobRecord>& record,
                          std::unique_lock<std::mutex>& lk) const;
  std::shared_ptr<JobRecord> find(std::uint64_t id) const;

  ServiceConfig config_;
  std::unique_ptr<runtime::ThreadPool> private_pool_;
  /// Disk tier behind the memory LRU; internally synchronized, so execute()
  /// does its file I/O without holding mutex_.
  std::unique_ptr<ArtifactStore> store_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::vector<std::shared_ptr<JobRecord>> records_;  // submission order
  std::size_t outstanding_ = 0;  // accepted but not yet terminal
  std::size_t drained_ = 0;      // drain cursor into records_

  // LRU result cache: most-recently-used at the front of lru_, with an index
  // into it by key. Guarded by mutex_.
  std::list<CacheEntry> lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      cache_index_;
  CacheStats cache_stats_;
  /// Terminal-job tallies per resolved engine name. Guarded by mutex_.
  std::map<std::string, BackendCounters> backend_counters_;

  /// Internally synchronized; never touched while mutex_ is held (the
  /// collector callback takes mutex_ from inside a registry collect, so the
  /// reverse order would invert the lock hierarchy).
  obs::Registry telemetry_;
};

}  // namespace tetris::service
